/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out:
 *
 *  1. Predictor family behind PFI: exact-match table (deployed) vs
 *     decision tree vs random forest — held-out prediction error on
 *     the full and the PFI-selected feature sets.
 *  2. Selection budgets: how the error budget trades necessary-set
 *     size against runtime coverage/error.
 *  3. Profile length: selection quality vs amount of profile data
 *     (the insufficient-profile regime of Fig. 12).
 */

#include <iostream>

#include "bench/bench_common.h"
#include "ml/dataset.h"
#include "ml/feature_selection.h"
#include "ml/random_forest.h"
#include "util/bytes.h"
#include "util/table_printer.h"

using namespace snip;

namespace {

/** Error of predictor @p p on the last 30% of rows, trained on the
 *  first 70% (tree/forest train on all — table supports rows). */
double
holdoutError(ml::Predictor &p, const ml::Dataset &ds,
             const std::vector<size_t> &cols)
{
    p.train(ds, cols);
    size_t start = ds.numRows() * 7 / 10;
    uint64_t wrong = 0, total = 0;
    for (size_t row = start; row < ds.numRows(); ++row) {
        total += ds.weight(row);
        if (p.predict(ds, row) != ds.label(row))
            wrong += ds.weight(row);
    }
    return total ? static_cast<double>(wrong) /
                       static_cast<double>(total)
                 : 0.0;
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader("Ablations: predictor family, budgets, "
                       "profile length",
                       "design-choice ablations (DESIGN.md §5)");

    bench::ProfiledGame pg = bench::profileGame("ab_evolution", opts);
    const events::FieldSchema &schema = pg.game->schema();
    ml::Dataset ds(pg.profile.ofType(events::EventType::Drag), schema);

    std::vector<size_t> all_cols(ds.numFeatures());
    for (size_t i = 0; i < all_cols.size(); ++i)
        all_cols[i] = i;

    ml::SelectionConfig scfg;
    scfg.max_error = 0.002;
    scfg.max_conditional_error = 0.012;
    scfg.pfi.threads = opts.threads;
    ml::SelectionResult sel = ml::selectNecessaryInputs(ds, scfg);
    std::vector<size_t> sel_cols;
    for (events::FieldId fid : sel.selected)
        sel_cols.push_back(ds.columnOf(fid));

    // --- 1. predictor family ---
    std::cout << "(1) predictor family (drag events, "
              << ds.numRows() << " records)\n";
    util::TablePrinter fam({"predictor", "features", "holdout error"});
    {
        ml::TablePredictor table;
        ml::DecisionTree tree;
        ml::RandomForest forest;
        fam.addRow({"exact-match table", "all",
                    util::TablePrinter::pct(
                        holdoutError(table, ds, all_cols), 2)});
        fam.addRow({"exact-match table", "PFI-selected",
                    util::TablePrinter::pct(
                        holdoutError(table, ds, sel_cols), 2)});
        fam.addRow({"decision tree", "PFI-selected",
                    util::TablePrinter::pct(
                        holdoutError(tree, ds, sel_cols), 2)});
        fam.addRow({"random forest (16 trees)", "PFI-selected",
                    util::TablePrinter::pct(
                        holdoutError(forest, ds, sel_cols), 2)});
    }
    fam.print(std::cout);
    std::cout << "(the deployed mechanism must be the exact-match "
                 "table: only exact matches\n justify substituting "
                 "memoized outputs)\n\n";

    // --- 2. error-budget sweep (each budget point is independent,
    //        so the sweep fans out over the session workers) ---
    std::cout << "(2) selection error-budget sweep (drag events)\n";
    util::TablePrinter bud({"abs budget", "cond budget",
                            "selected bytes", "holdout hit rate",
                            "holdout wrong hits"});
    const double abs_budgets[] = {0.05, 0.01, 0.002, 0.0005};
    constexpr size_t kNumBudgets =
        sizeof(abs_budgets) / sizeof(abs_budgets[0]);
    ml::SelectionResult bud_results[kNumBudgets];
    opts.runner().forEach(kNumBudgets, [&](size_t i) {
        ml::SelectionConfig c;
        c.max_error = abs_budgets[i];
        c.max_conditional_error = abs_budgets[i] * 6;
        // Already inside a parallel loop — keep the inner PFI
        // serial rather than oversubscribing (output is identical).
        c.pfi.threads = 1;
        bud_results[i] = ml::selectNecessaryInputs(ds, c);
    });
    for (size_t i = 0; i < kNumBudgets; ++i) {
        const ml::SelectionResult &r = bud_results[i];
        bud.addRow({util::TablePrinter::pct(abs_budgets[i], 2),
                    util::TablePrinter::pct(abs_budgets[i] * 6, 2),
                    util::formatSize(
                        static_cast<double>(r.selected_bytes)),
                    util::TablePrinter::pct(r.selected_hit_rate),
                    util::TablePrinter::pct(r.selected_error, 3)});
    }
    bud.print(std::cout);
    std::cout << "\n";

    // --- 3. profile-length sweep (parallel, same pattern) ---
    std::cout << "(3) profile-length sweep (drag events)\n";
    util::TablePrinter len({"records", "selected fields",
                            "selected bytes", "wrong hits"});
    const size_t fractions[] = {20, 60, 200, 1000, SIZE_MAX};
    constexpr size_t kNumFractions =
        sizeof(fractions) / sizeof(fractions[0]);
    struct LenRow {
        size_t rows = 0;
        ml::SelectionResult r;
    };
    LenRow len_results[kNumFractions];
    opts.runner().forEach(kNumFractions, [&](size_t i) {
        auto recs = pg.profile.ofType(events::EventType::Drag);
        if (fractions[i] != SIZE_MAX && recs.size() > fractions[i])
            recs.resize(fractions[i]);
        if (recs.size() < 16)
            return;
        ml::Dataset d2(std::move(recs), schema);
        len_results[i].rows = d2.numRows();
        len_results[i].r = ml::selectNecessaryInputs(d2, scfg);
    });
    for (const LenRow &lr : len_results) {
        if (lr.rows == 0)
            continue;
        len.addRow({std::to_string(lr.rows),
                    std::to_string(lr.r.selected.size()),
                    util::formatSize(
                        static_cast<double>(lr.r.selected_bytes)),
                    util::TablePrinter::pct(lr.r.selected_error, 3)});
    }
    len.print(std::cout);
    std::cout << "(small profiles under-select: the Fig. 12 "
                 "insufficient-profile regime)\n";
    return 0;
}
