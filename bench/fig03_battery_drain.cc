/**
 * @file
 * Fig. 3: rampant battery drain — hours from a 100%-charged
 * 3450 mAh pack to empty for each game, plus the idle-phone
 * reference. Paper anchors: idle ~20 h, Colorphun ~8.5 h,
 * Race Kings ~3 h (6x faster than idle).
 */

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "soc/battery.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

using namespace snip;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader("Fig. 3: battery drain",
                       "Fig. 3 — idle ~20 h, Colorphun ~8.5 h, "
                       "Race Kings ~3 h on a 3450 mAh pack");

    soc::EnergyModel model = soc::EnergyModel::snapdragon821();
    soc::Battery battery(model.battery_mah, model.battery_volts);

    util::TablePrinter table(
        {"workload", "avg power", "hours 100%->0%", "vs idle"});
    std::unique_ptr<util::CsvWriter> csv;
    std::ofstream csv_file;
    if (!opts.csv_path.empty()) {
        csv_file.open(opts.csv_path);
        csv = std::make_unique<util::CsvWriter>(
            csv_file, std::vector<std::string>{"workload", "power_w",
                                               "hours"});
    }

    util::Power idle_w = core::idlePhonePower(model);
    double idle_h = battery.hoursToEmpty(idle_w);
    table.addRow({"(idle phone)", util::formatPower(idle_w),
                  util::TablePrinter::num(idle_h, 1), "1.0x"});
    if (csv)
        csv->row({"idle", std::to_string(idle_w),
                  std::to_string(idle_h)});

    // One independent baseline session per game — run the whole
    // catalog in parallel, then print rows in catalog order.
    const auto &names = games::allGameNames();
    std::vector<core::SessionSpec> specs;
    for (const auto &name : names) {
        core::SessionSpec spec;
        spec.make_game = [name] { return games::makeGame(name); };
        spec.make_scheme = [](games::Game &) {
            return std::make_unique<core::BaselineScheme>();
        };
        spec.cfg = bench::evalConfig(opts);
        spec.cfg.duration_s = opts.profileSeconds() / 2;
        specs.push_back(std::move(spec));
    }
    std::vector<core::SessionResult> results =
        opts.runner().runSessions(specs);

    for (size_t i = 0; i < names.size(); ++i) {
        auto game = games::makeGame(names[i]);
        util::Power p = results[i].report.averagePower();
        double h = battery.hoursToEmpty(p);
        char speedup[32];
        std::snprintf(speedup, sizeof(speedup), "%.1fx", idle_h / h);
        table.addRow({game->displayName(), util::formatPower(p),
                      util::TablePrinter::num(h, 1), speedup});
        if (csv)
            csv->row({names[i], std::to_string(p), std::to_string(h)});
    }
    table.print(std::cout);
    std::cout << "\npaper anchors: idle ~20 h; lightest game ~8.5 h; "
                 "heaviest ~3 h (~6x idle)\n";
    return 0;
}
