/**
 * @file
 * Fig. 4: the share of user events whose processing changes nothing
 * in the game ("useless" events), and the share of battery energy
 * wasted processing them. Paper: 17-43% of events, wasting ~34% of
 * the energy spent on event processing; AB Evolution highest (43%,
 * the maxed-catapult plateau).
 */

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "trace/field_stats.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

using namespace snip;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Fig. 4: useless events and wasted energy",
        "Fig. 4 — 17-43% of events cause no change; processing them "
        "wastes a third of the energy");

    util::TablePrinter table({"game", "% useless events",
                              "% instr on useless",
                              "% device energy wasted",
                              "% exact repeats"});
    std::unique_ptr<util::CsvWriter> csv;
    std::ofstream csv_file;
    if (!opts.csv_path.empty()) {
        csv_file.open(opts.csv_path);
        csv = std::make_unique<util::CsvWriter>(
            csv_file, std::vector<std::string>{
                          "game", "useless_events", "useless_instr",
                          "energy_wasted", "exact_repeats"});
    }

    soc::EnergyModel model = soc::EnergyModel::snapdragon821();
    for (const auto &name : games::allGameNames()) {
        bench::ProfiledGame pg = bench::profileGame(name, opts);
        trace::FieldStatistics stats(pg.profile, pg.game->schema());

        // Wasted device energy: dynamic energy of useless handler
        // executions relative to the session's total energy
        // (re-measured with a baseline session of equal length).
        core::BaselineScheme baseline;
        core::SimulationConfig cfg = bench::evalConfig(opts);
        cfg.duration_s = opts.profileSeconds();
        cfg.seed = opts.seed;
        core::SessionResult res =
            core::runSession(*pg.game, baseline, cfg);
        util::Energy wasted = 0.0;
        for (const auto &rec : pg.profile.records)
            if (rec.useless)
                wasted += trace::dynamicEnergyOf(rec, model);
        double wasted_frac = wasted / res.report.total();

        table.addRow({pg.game->displayName(),
                      util::TablePrinter::pct(stats.uselessFraction()),
                      util::TablePrinter::pct(
                          stats.uselessInstructionFraction()),
                      util::TablePrinter::pct(wasted_frac),
                      util::TablePrinter::pct(
                          stats.exactRepeatFraction())});
        if (csv) {
            csv->row({name, std::to_string(stats.uselessFraction()),
                      std::to_string(
                          stats.uselessInstructionFraction()),
                      std::to_string(wasted_frac),
                      std::to_string(stats.exactRepeatFraction())});
        }
    }
    table.print(std::cout);
    std::cout << "\npaper: useless events 17-43% (AB Evolution "
                 "highest); exact repeats only 2-5%\n";
    return 0;
}
