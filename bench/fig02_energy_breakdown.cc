/**
 * @file
 * Fig. 2: normalized SoC energy breakdown (sensors / memory / CPU /
 * IPs) of the seven games under baseline execution. Paper bands:
 * CPU 40-60%, IPs 34-51%, sensors+memory < 10%.
 */

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

using namespace snip;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader("Fig. 2: component energy breakdown",
                       "Fig. 2 — CPU 40-60%, IPs 34-51%, "
                       "sensors+memory < 10% of SoC energy");

    util::TablePrinter table({"game", "sensors", "memory", "cpu",
                              "ips", "avg power"});
    std::unique_ptr<util::CsvWriter> csv;
    std::ofstream csv_file;
    if (!opts.csv_path.empty()) {
        csv_file.open(opts.csv_path);
        csv = std::make_unique<util::CsvWriter>(
            csv_file, std::vector<std::string>{
                          "game", "sensors", "memory", "cpu", "ips",
                          "avg_power_w"});
    }

    for (const auto &name : games::allGameNames()) {
        auto game = games::makeGame(name);
        core::BaselineScheme baseline;
        core::SimulationConfig cfg = bench::evalConfig(opts);
        cfg.duration_s = opts.profileSeconds() / 2;
        core::SessionResult res =
            core::runSession(*game, baseline, cfg);
        const soc::EnergyReport &r = res.report;

        double sens = r.socGroupFraction(soc::EnergyGroup::Sensors);
        double mem = r.socGroupFraction(soc::EnergyGroup::Memory);
        double cpu = r.socGroupFraction(soc::EnergyGroup::Cpu);
        double ips = r.socGroupFraction(soc::EnergyGroup::Ips);
        table.addRow({game->displayName(), util::TablePrinter::pct(sens),
                      util::TablePrinter::pct(mem),
                      util::TablePrinter::pct(cpu),
                      util::TablePrinter::pct(ips),
                      util::formatPower(r.averagePower())});
        if (csv) {
            csv->row({name, std::to_string(sens), std::to_string(mem),
                      std::to_string(cpu), std::to_string(ips),
                      std::to_string(r.averagePower())});
        }
    }
    table.print(std::cout);
    std::cout << "\npaper bands: cpu 40-60%, ips 34-51%, "
                 "sensors+memory < 10%\n";
    return 0;
}
