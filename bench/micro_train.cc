/**
 * @file
 * Training-side (Shrink phase, paper §V-A) microbenchmark: forest
 * training throughput, PFI throughput, and full necessary-input
 * selection wall time at 1 vs N threads, plus the determinism and
 * allocation contracts the parallel pipeline promises:
 *
 *   - forests / PFI importances / SelectionResult / packed OTA
 *     model bytes are byte-identical at every thread count;
 *   - the forest vote path does zero heap allocations per
 *     prediction (counted by a global counting allocator);
 *   - cached-PFI selection (SelectionConfig::cache_pfi) matches the
 *     full-recompute selection exactly;
 *   - Dataset construction does a bounded number of allocations
 *     (never O(rows));
 *   - training through a memory-mapped ml::ChunkedDataset — any
 *     block size — reproduces the in-memory selection and packed
 *     model byte for byte (the out-of-core digest contract).
 *
 * With --rows N the bench additionally generates an N-row synthetic
 * SNCT v2 training trace on disk (trace::TrainingWriter, streaming,
 * bounded memory), trains a forest through the mmap'd view, and
 * reports rows_per_sec plus peak_rss_bytes (VmHWM) — optionally
 * asserting the peak against --rss-cap-mb, which is how tools/ci.sh
 * proves multi-GB-trace training stays under a fixed footprint.
 *
 * Emits JSON (default BENCH_micro_train.json, also printed to
 * stdout) so BENCH_* files carry a training-side perf trajectory,
 * and exits non-zero when any contract above is violated — which is
 * what lets tools/ci.sh use it as a determinism smoke.
 *
 * Flags: --quick (smaller profile/forest), --seed <n>,
 * --threads <n> (the "N" side; default: all cores / SNIP_THREADS),
 * --profile-s <sec>, --trees <n>, --out <path>, --rows <n>
 * (synthetic out-of-core rows; 0 = skip), --block-rows <n>,
 * --rss-budget-mb <mb> (chunked residency budget),
 * --rss-cap-mb <mb> (hard VmHWM assertion; 0 = report only).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/model_codec.h"
#include "ml/chunked_dataset.h"
#include "ml/dataset.h"
#include "ml/feature_selection.h"
#include "ml/random_forest.h"
#include "trace/columnar_log.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace snip;

// ------------------------------------------------ counting allocator
// Same instrumentation as micro_lookup: any allocation anywhere in
// the process inflates the count, which only makes the
// zero-allocation claim stronger.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<uint64_t> g_allocs{0};
}

void *
operator new(size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, size_t) noexcept { std::free(p); }
void operator delete[](void *p, size_t) noexcept { std::free(p); }

namespace {

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Order-sensitive digest of a SelectionResult. */
uint32_t
selectionDigest(const ml::SelectionResult &r)
{
    util::ByteBuffer b;
    b.putU64(static_cast<uint64_t>(r.full_error * 1e12));
    b.putU64(r.full_bytes);
    b.putU64(r.selected_bytes);
    b.putU64(static_cast<uint64_t>(r.selected_error * 1e12));
    b.putU64(static_cast<uint64_t>(r.selected_hit_rate * 1e12));
    for (events::FieldId f : r.selected)
        b.putU32(f);
    for (const auto &s : r.curve) {
        b.putU32(s.dropped);
        b.putU64(s.remaining_bytes);
        b.putU64(static_cast<uint64_t>(s.error * 1e12));
    }
    return util::crc32(b.data().data(), b.size());
}

bool
sameSelection(const ml::SelectionResult &a, const ml::SelectionResult &b)
{
    return selectionDigest(a) == selectionDigest(b) &&
           a.selected == b.selected && a.curve.size() == b.curve.size();
}

/** Peak resident set (VmHWM) of this process, in bytes. */
uint64_t
peakRssBytes()
{
    FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    char line[256];
    unsigned long long kb = 0;
    while (std::fgets(line, sizeof(line), f)) {
        if (std::sscanf(line, "VmHWM: %llu", &kb) == 1)
            break;
    }
    std::fclose(f);
    return static_cast<uint64_t>(kb) * 1024;
}

struct Args {
    bench::BenchOptions opts;
    double profile_s = 60.0;
    int trees = 32;
    std::string out = "BENCH_micro_train.json";
    /** Synthetic out-of-core rows; 0 = skip that stage. */
    uint64_t rows = 0;
    size_t block_rows = 4096;
    /** Chunked residency budget (MB). */
    size_t rss_budget_mb = 64;
    /** Hard VmHWM assertion (MB); 0 = report only. */
    size_t rss_cap_mb = 0;
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            a.opts.quick = true;
            a.profile_s = 20.0;
            a.trees = 12;
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            a.opts.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            a.opts.threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--profile-s") == 0 &&
                   i + 1 < argc) {
            a.profile_s = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--trees") == 0 &&
                   i + 1 < argc) {
            a.trees = static_cast<int>(
                std::strtol(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            a.out = argv[++i];
        } else if (std::strcmp(argv[i], "--rows") == 0 &&
                   i + 1 < argc) {
            a.rows = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--block-rows") == 0 &&
                   i + 1 < argc) {
            a.block_rows = static_cast<size_t>(
                std::strtoull(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--rss-budget-mb") == 0 &&
                   i + 1 < argc) {
            a.rss_budget_mb = static_cast<size_t>(
                std::strtoull(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--rss-cap-mb") == 0 &&
                   i + 1 < argc) {
            a.rss_cap_mb = static_cast<size_t>(
                std::strtoull(argv[++i], nullptr, 0));
        } else {
            util::fatal("unknown argument '%s' (expected --quick, "
                        "--seed <n>, --threads <n>, --profile-s "
                        "<sec>, --trees <n>, --out <path>, "
                        "--rows <n>, --block-rows <n>, "
                        "--rss-budget-mb <mb>, --rss-cap-mb <mb>)",
                        argv[i]);
        }
    }
    return a;
}

}  // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);
    unsigned nthreads = args.opts.threads ? args.opts.threads
                                          : util::defaultThreadCount();
    bench::printHeader("micro_train: Shrink-phase throughput",
                       "training-side perf trajectory (§V-A)");

    bench::ProfiledGame pg =
        bench::profileGame("ab_evolution", args.opts, args.profile_s);

    // Dataset construction allocation contract: a fixed number of
    // allocations (the column/label/weight arrays + the id union),
    // never O(rows).
    auto drag_recs = pg.profile.ofType(events::EventType::Drag);
    uint64_t ctor_a0 = g_allocs.load(std::memory_order_relaxed);
    ml::Dataset ds(drag_recs, pg.game->schema());
    uint64_t ctor_allocs =
        g_allocs.load(std::memory_order_relaxed) - ctor_a0;
    bool ctor_bounded = ctor_allocs <= 16;

    std::vector<size_t> cols(ds.numFeatures());
    for (size_t i = 0; i < cols.size(); ++i)
        cols[i] = i;
    std::printf("dataset: %zu rows x %zu features, N=%u threads\n\n",
                ds.numRows(), ds.numFeatures(), nthreads);
    bool ok = true;

    // ---- 1. forest training throughput, 1 vs N threads ----------
    ml::ForestConfig fc;
    fc.num_trees = args.trees;
    ml::RandomForest forest1(fc), forestN(fc);
    double train_1t = wallSeconds([&] {
        ml::ForestConfig c = fc;
        c.threads = 1;
        forest1 = ml::RandomForest(c);
        forest1.train(ds, cols);
    });
    double train_nt = wallSeconds([&] {
        ml::ForestConfig c = fc;
        c.threads = nthreads;
        forestN = ml::RandomForest(c);
        forestN.train(ds, cols);
    });

    // Thread-count invariance: label-for-label identical forests.
    std::vector<uint64_t> p1(ds.numRows()), pn(ds.numRows());
    forest1.predictRows(ds, 0, ds.numRows(), p1.data());
    forestN.predictRows(ds, 0, ds.numRows(), pn.data());
    bool train_identical =
        forest1.treeCount() == forestN.treeCount() && p1 == pn;
    ok = ok && train_identical;

    // Batched API vs per-row predictions, label for label.
    bool batched_matches = true;
    for (size_t r = 0; r < ds.numRows(); ++r)
        batched_matches =
            batched_matches && p1[r] == forest1.predict(ds, r);
    ok = ok && batched_matches;

    // ---- 2. zero-allocation vote path ---------------------------
    uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    uint64_t sink = 0;
    for (size_t r = 0; r < ds.numRows(); ++r)
        sink += forest1.predict(ds, r);
    uint64_t single_allocs =
        g_allocs.load(std::memory_order_relaxed) - a0;
    a0 = g_allocs.load(std::memory_order_relaxed);
    forest1.predictRows(ds, 0, ds.numRows(), p1.data());
    uint64_t batched_allocs =
        g_allocs.load(std::memory_order_relaxed) - a0;
    double allocs_per_pred =
        static_cast<double>(single_allocs) /
        static_cast<double>(ds.numRows());
    double allocs_per_row_batched =
        static_cast<double>(batched_allocs) /
        static_cast<double>(ds.numRows());
    ok = ok && single_allocs == 0 && batched_allocs == 0;

    // ---- 3. PFI throughput, 1 vs N threads ----------------------
    ml::PfiConfig pc;
    pc.seed = util::mixCombine(args.opts.seed, 0x9f1ULL);
    ml::PfiResult pfi_1, pfi_n;
    double pfi_1t = wallSeconds([&] {
        ml::PfiConfig c = pc;
        c.threads = 1;
        pfi_1 = ml::computePfi(forest1, ds, cols, c);
    });
    double pfi_nt = wallSeconds([&] {
        ml::PfiConfig c = pc;
        c.threads = nthreads;
        pfi_n = ml::computePfi(forest1, ds, cols, c);
    });
    bool pfi_identical = pfi_1.importance == pfi_n.importance &&
                         pfi_1.base_error == pfi_n.base_error;
    ok = ok && pfi_identical;

    // ---- 4. selection wall time, 1 vs N threads -----------------
    ml::SelectionConfig sc;
    sc.pfi.seed = util::mixCombine(args.opts.seed, 0x5e1ULL);
    ml::SelectionResult sel_1, sel_n, sel_full;
    double sel_1t = wallSeconds([&] {
        ml::SelectionConfig c = sc;
        c.pfi.threads = 1;
        sel_1 = ml::selectNecessaryInputs(ds, c);
    });
    double sel_nt = wallSeconds([&] {
        ml::SelectionConfig c = sc;
        c.pfi.threads = nthreads;
        sel_n = ml::selectNecessaryInputs(ds, c);
    });
    // Cached PFI (the default) vs full recompute: must be exact.
    double sel_full_t = wallSeconds([&] {
        ml::SelectionConfig c = sc;
        c.pfi.threads = nthreads;
        c.cache_pfi = false;
        sel_full = ml::selectNecessaryInputs(ds, c);
    });
    bool sel_identical =
        sameSelection(sel_1, sel_n) && sameSelection(sel_n, sel_full);
    ok = ok && sel_identical;
    uint32_t digest = selectionDigest(sel_1);

    // ---- 5. OTA package bytes across thread counts --------------
    core::SnipConfig scfg;
    scfg.seed = util::mixCombine(args.opts.seed, 0x07aULL);
    scfg.threads = 1;
    core::SnipModel m1 = core::buildSnipModel(pg.profile, *pg.game,
                                              scfg);
    scfg.threads = nthreads;
    core::SnipModel mn = core::buildSnipModel(pg.profile, *pg.game,
                                              scfg);
    util::ByteBuffer pkg1, pkgn;
    core::packModel(m1, pkg1);
    core::packModel(mn, pkgn);
    bool model_identical = pkg1.data() == pkgn.data();
    ok = ok && model_identical;
    uint32_t model_digest = util::crc32(pkg1.data().data(),
                                        pkg1.size());
    ok = ok && ctor_bounded;

    // ---- 6. out-of-core equivalence (mmap'd training trace) -----
    // Convert the profile to an SNCT v2 training trace on disk,
    // train through the memory-mapped ChunkedDataset view, and
    // require selection + packed model bytes identical to the
    // in-memory path — at two different block sizes.
    ml::ChunkedConfig ccfg;
    ccfg.block_rows = args.block_rows;
    ccfg.residency_budget_bytes = args.rss_budget_mb << 20;
    bool chunked_sel_identical = false;
    bool chunked_blocks_identical = false;
    bool chunked_model_identical = false;
    std::string tpath = args.out + ".profile.snct";
    {
        std::vector<uint8_t> tbytes;
        util::Status enc =
            trace::ColumnarLog::encodeTraining(pg.profile, &tbytes);
        if (!enc.ok())
            util::fatal("encodeTraining: %s", enc.message().c_str());
        util::Status sv = trace::ColumnarLog::save(tbytes, tpath);
        if (!sv.ok())
            util::fatal("save: %s", sv.message().c_str());
        auto tlog = trace::ColumnarLog::open(tpath);
        if (!tlog.ok())
            util::fatal("open: %s", tlog.status().message().c_str());

        auto cds = ml::ChunkedDataset::attach(
            tlog.value(), events::EventType::Drag, pg.game->schema(),
            ccfg);
        if (!cds.ok())
            util::fatal("chunked attach: %s",
                        cds.status().message().c_str());
        ml::SelectionConfig c = sc;
        c.pfi.threads = 1;
        ml::SelectionResult sel_c =
            ml::selectNecessaryInputs(*cds.value(), c);
        chunked_sel_identical = sameSelection(sel_1, sel_c);

        ml::ChunkedConfig ccfg_b = ccfg;
        ccfg_b.block_rows = ccfg.block_rows == 64 ? 4096 : 64;
        auto cds_b = ml::ChunkedDataset::attach(
            tlog.value(), events::EventType::Drag, pg.game->schema(),
            ccfg_b);
        if (!cds_b.ok())
            util::fatal("chunked attach: %s",
                        cds_b.status().message().c_str());
        ml::SelectionResult sel_cb =
            ml::selectNecessaryInputs(*cds_b.value(), c);
        chunked_blocks_identical = sameSelection(sel_c, sel_cb);

        core::SnipConfig s1 = scfg;
        s1.threads = 1;
        auto cm = core::buildSnipModel(tlog.value(), *pg.game, s1,
                                       ccfg);
        if (!cm.ok())
            util::fatal("chunked buildSnipModel: %s",
                        cm.status().message().c_str());
        util::ByteBuffer cpkg;
        core::packModel(cm.value(), cpkg);
        chunked_model_identical = cpkg.data() == pkg1.data();
    }
    std::remove(tpath.c_str());
    ok = ok && chunked_sel_identical && chunked_blocks_identical &&
         chunked_model_identical;

    // ---- 7. synthetic out-of-core training (--rows) -------------
    double oo_wall = 0.0;
    double rows_per_sec = 0.0;
    uint64_t oo_fingerprint = 0;
    bool oo_threads_identical = true;
    int oo_trees = args.opts.quick ? 2 : 4;
    std::string spath = args.out + ".synth.snct";
    if (args.rows > 0) {
        // Borrow real Drag field ids so the synthetic section
        // validates against the game schema.
        std::vector<uint32_t> fids, oids;
        {
            std::vector<uint8_t> tbytes;
            util::Status enc = trace::ColumnarLog::encodeTraining(
                pg.profile.truncated(64), &tbytes);
            if (!enc.ok())
                util::fatal("encodeTraining: %s",
                            enc.message().c_str());
            auto small = trace::ColumnarLog::attach(
                tbytes.data(), tbytes.size(), nullptr);
            if (!small.ok())
                util::fatal("attach: %s",
                            small.status().message().c_str());
            const auto *tc =
                small.value()->training(events::EventType::Drag);
            if (!tc)
                util::fatal("profile has no Drag training section");
            fids.assign(tc->feat_ids, tc->feat_ids + tc->nfeat);
            oids.assign(tc->out_ids, tc->out_ids + tc->nout);
        }
        std::printf("out-of-core: writing %llu synthetic rows x %zu "
                    "features...\n",
                    static_cast<unsigned long long>(args.rows),
                    fids.size());
        trace::TrainingWriter w;
        util::Status st = w.create(spath, "synthetic",
                                   events::EventType::Drag, fids,
                                   oids, args.rows);
        util::Rng rng(util::mixCombine(args.opts.seed, 0x00cULL));
        std::vector<uint64_t> feat(fids.size()), outv(oids.size());
        for (uint64_t r = 0; st.ok() && r < args.rows; ++r) {
            for (size_t f = 0; f < feat.size(); ++f)
                feat[f] = rng.uniformInt(0, 15);
            uint64_t label = util::mixCombine(
                feat[0], feat.size() > 1 ? feat[1] : 0) & 7;
            for (size_t o = 0; o < outv.size(); ++o)
                outv[o] = label + o;
            st = w.addRow(feat.data(), label, 1 + (r % 97),
                          outv.data());
        }
        if (st.ok())
            st = w.finish();
        if (!st.ok())
            util::fatal("TrainingWriter: %s", st.message().c_str());

        auto slog = trace::ColumnarLog::open(spath);
        if (!slog.ok())
            util::fatal("open synthetic: %s",
                        slog.status().message().c_str());
        auto sds = ml::ChunkedDataset::attach(
            slog.value(), events::EventType::Drag, pg.game->schema(),
            ccfg);
        if (!sds.ok())
            util::fatal("attach synthetic: %s",
                        sds.status().message().c_str());
        std::vector<size_t> scols(sds.value()->numFeatures());
        for (size_t i = 0; i < scols.size(); ++i)
            scols[i] = i;
        ml::ForestConfig ofc;
        ofc.num_trees = oo_trees;
        ofc.threads = 1;
        ml::RandomForest oforest(ofc);
        oo_wall = wallSeconds(
            [&] { oforest.train(*sds.value(), scols); });
        rows_per_sec = static_cast<double>(args.rows) * oo_trees /
                       (oo_wall > 0 ? oo_wall : 1e-9);
        oo_fingerprint = oforest.fingerprint();
        if (nthreads > 1) {
            ml::ForestConfig nfc = ofc;
            nfc.threads = nthreads;
            ml::RandomForest nforest(nfc);
            nforest.train(*sds.value(), scols);
            oo_threads_identical =
                nforest.fingerprint() == oo_fingerprint;
        }
        ok = ok && oo_threads_identical;
    }
    std::remove(spath.c_str());

    uint64_t peak_rss = peakRssBytes();
    uint64_t rss_cap = static_cast<uint64_t>(args.rss_cap_mb) << 20;
    bool rss_ok = rss_cap == 0 || peak_rss <= rss_cap;
    ok = ok && rss_ok;

    // ---- JSON ---------------------------------------------------
    std::string json;
    char buf[4096];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"micro_train\",\n"
        "  \"game\": \"ab_evolution\",\n"
        "  \"rows\": %zu, \"features\": %zu, \"threads\": %u,\n"
        "  \"train\": {\"trees\": %d, \"wall_s_1t\": %.6f, "
        "\"wall_s_nt\": %.6f, \"trees_per_sec_1t\": %.2f, "
        "\"trees_per_sec_nt\": %.2f, \"speedup\": %.3f, "
        "\"identical\": %s},\n"
        "  \"pfi\": {\"columns\": %zu, \"repeats\": %d, "
        "\"wall_s_1t\": %.6f, \"wall_s_nt\": %.6f, "
        "\"cols_per_sec_1t\": %.2f, \"cols_per_sec_nt\": %.2f, "
        "\"speedup\": %.3f, \"identical\": %s},\n"
        "  \"selection\": {\"wall_s_1t\": %.6f, \"wall_s_nt\": %.6f, "
        "\"speedup\": %.3f, \"wall_s_full_recompute\": %.6f, "
        "\"cache_speedup\": %.3f, \"identical\": %s, "
        "\"digest\": \"%08x\"},\n"
        "  \"predict\": {\"allocs_per_prediction\": %.4f, "
        "\"allocs_per_row_batched\": %.4f},\n"
        "  \"model_codec\": {\"bytes\": %zu, "
        "\"identical_across_threads\": %s, \"digest\": \"%08x\"},\n"
        "  \"dataset_ctor\": {\"allocs\": %llu, \"bounded\": %s},\n"
        "  \"chunked\": {\"block_rows\": %zu, "
        "\"sel_identical\": %s, \"blocks_identical\": %s, "
        "\"model_identical\": %s},\n"
        "  \"out_of_core\": {\"rows\": %llu, \"trees\": %d, "
        "\"wall_s\": %.3f, \"rows_per_sec\": %.0f, "
        "\"fingerprint\": \"%016llx\", \"threads_identical\": %s},\n"
        "  \"rows_per_sec\": %.0f,\n"
        "  \"peak_rss_bytes\": %llu, \"rss_cap_bytes\": %llu, "
        "\"rss_ok\": %s,\n"
        "  \"contracts_ok\": %s\n"
        "}\n",
        ds.numRows(), ds.numFeatures(), nthreads, args.trees,
        train_1t, train_nt,
        args.trees / (train_1t > 0 ? train_1t : 1e-9),
        args.trees / (train_nt > 0 ? train_nt : 1e-9),
        train_1t / (train_nt > 0 ? train_nt : 1e-9),
        train_identical && batched_matches ? "true" : "false",
        cols.size(), pc.repeats, pfi_1t, pfi_nt,
        cols.size() / (pfi_1t > 0 ? pfi_1t : 1e-9),
        cols.size() / (pfi_nt > 0 ? pfi_nt : 1e-9),
        pfi_1t / (pfi_nt > 0 ? pfi_nt : 1e-9),
        pfi_identical ? "true" : "false",
        sel_1t, sel_nt, sel_1t / (sel_nt > 0 ? sel_nt : 1e-9),
        sel_full_t,
        sel_full_t / (sel_nt > 0 ? sel_nt : 1e-9),
        sel_identical ? "true" : "false", digest,
        allocs_per_pred, allocs_per_row_batched, pkg1.size(),
        model_identical ? "true" : "false", model_digest,
        static_cast<unsigned long long>(ctor_allocs),
        ctor_bounded ? "true" : "false",
        args.block_rows,
        chunked_sel_identical ? "true" : "false",
        chunked_blocks_identical ? "true" : "false",
        chunked_model_identical ? "true" : "false",
        static_cast<unsigned long long>(args.rows), oo_trees,
        oo_wall, rows_per_sec,
        static_cast<unsigned long long>(oo_fingerprint),
        oo_threads_identical ? "true" : "false",
        rows_per_sec,
        static_cast<unsigned long long>(peak_rss),
        static_cast<unsigned long long>(rss_cap),
        rss_ok ? "true" : "false",
        ok ? "true" : "false");
    json = buf;
    std::fputs(json.c_str(), stdout);
    if (FILE *f = std::fopen(args.out.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("wrote %s\n", args.out.c_str());
    } else {
        util::warn("could not write %s", args.out.c_str());
    }

    if (!ok) {
        std::fprintf(stderr, "micro_train: CONTRACT VIOLATION — see "
                             "\"identical\"/alloc fields above\n");
        return 1;
    }
    (void)sink;
    return 0;
}
