/**
 * @file
 * Training-side (Shrink phase, paper §V-A) microbenchmark: forest
 * training throughput, PFI throughput, and full necessary-input
 * selection wall time at 1 vs N threads, plus the determinism and
 * allocation contracts the parallel pipeline promises:
 *
 *   - forests / PFI importances / SelectionResult / packed OTA
 *     model bytes are byte-identical at every thread count;
 *   - the forest vote path does zero heap allocations per
 *     prediction (counted by a global counting allocator);
 *   - cached-PFI selection (SelectionConfig::cache_pfi) matches the
 *     full-recompute selection exactly.
 *
 * Emits JSON (default BENCH_micro_train.json, also printed to
 * stdout) so BENCH_* files carry a training-side perf trajectory,
 * and exits non-zero when any contract above is violated — which is
 * what lets tools/ci.sh use it as a determinism smoke.
 *
 * Flags: --quick (smaller profile/forest), --seed <n>,
 * --threads <n> (the "N" side; default: all cores / SNIP_THREADS),
 * --profile-s <sec>, --trees <n>, --out <path>.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/model_codec.h"
#include "ml/dataset.h"
#include "ml/feature_selection.h"
#include "ml/random_forest.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/parallel.h"

using namespace snip;

// ------------------------------------------------ counting allocator
// Same instrumentation as micro_lookup: any allocation anywhere in
// the process inflates the count, which only makes the
// zero-allocation claim stronger.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<uint64_t> g_allocs{0};
}

void *
operator new(size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, size_t) noexcept { std::free(p); }
void operator delete[](void *p, size_t) noexcept { std::free(p); }

namespace {

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Order-sensitive digest of a SelectionResult. */
uint32_t
selectionDigest(const ml::SelectionResult &r)
{
    util::ByteBuffer b;
    b.putU64(static_cast<uint64_t>(r.full_error * 1e12));
    b.putU64(r.full_bytes);
    b.putU64(r.selected_bytes);
    b.putU64(static_cast<uint64_t>(r.selected_error * 1e12));
    b.putU64(static_cast<uint64_t>(r.selected_hit_rate * 1e12));
    for (events::FieldId f : r.selected)
        b.putU32(f);
    for (const auto &s : r.curve) {
        b.putU32(s.dropped);
        b.putU64(s.remaining_bytes);
        b.putU64(static_cast<uint64_t>(s.error * 1e12));
    }
    return util::crc32(b.data().data(), b.size());
}

bool
sameSelection(const ml::SelectionResult &a, const ml::SelectionResult &b)
{
    return selectionDigest(a) == selectionDigest(b) &&
           a.selected == b.selected && a.curve.size() == b.curve.size();
}

struct Args {
    bench::BenchOptions opts;
    double profile_s = 60.0;
    int trees = 32;
    std::string out = "BENCH_micro_train.json";
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            a.opts.quick = true;
            a.profile_s = 20.0;
            a.trees = 12;
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            a.opts.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            a.opts.threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--profile-s") == 0 &&
                   i + 1 < argc) {
            a.profile_s = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--trees") == 0 &&
                   i + 1 < argc) {
            a.trees = static_cast<int>(
                std::strtol(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            a.out = argv[++i];
        } else {
            util::fatal("unknown argument '%s' (expected --quick, "
                        "--seed <n>, --threads <n>, --profile-s "
                        "<sec>, --trees <n>, --out <path>)",
                        argv[i]);
        }
    }
    return a;
}

}  // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);
    unsigned nthreads = args.opts.threads ? args.opts.threads
                                          : util::defaultThreadCount();
    bench::printHeader("micro_train: Shrink-phase throughput",
                       "training-side perf trajectory (§V-A)");

    bench::ProfiledGame pg =
        bench::profileGame("ab_evolution", args.opts, args.profile_s);
    ml::Dataset ds(pg.profile.ofType(events::EventType::Drag),
                   pg.game->schema());
    std::vector<size_t> cols(ds.numFeatures());
    for (size_t i = 0; i < cols.size(); ++i)
        cols[i] = i;
    std::printf("dataset: %zu rows x %zu features, N=%u threads\n\n",
                ds.numRows(), ds.numFeatures(), nthreads);
    bool ok = true;

    // ---- 1. forest training throughput, 1 vs N threads ----------
    ml::ForestConfig fc;
    fc.num_trees = args.trees;
    ml::RandomForest forest1(fc), forestN(fc);
    double train_1t = wallSeconds([&] {
        ml::ForestConfig c = fc;
        c.threads = 1;
        forest1 = ml::RandomForest(c);
        forest1.train(ds, cols);
    });
    double train_nt = wallSeconds([&] {
        ml::ForestConfig c = fc;
        c.threads = nthreads;
        forestN = ml::RandomForest(c);
        forestN.train(ds, cols);
    });

    // Thread-count invariance: label-for-label identical forests.
    std::vector<uint64_t> p1(ds.numRows()), pn(ds.numRows());
    forest1.predictRows(ds, 0, ds.numRows(), p1.data());
    forestN.predictRows(ds, 0, ds.numRows(), pn.data());
    bool train_identical =
        forest1.treeCount() == forestN.treeCount() && p1 == pn;
    ok = ok && train_identical;

    // Batched API vs per-row predictions, label for label.
    bool batched_matches = true;
    for (size_t r = 0; r < ds.numRows(); ++r)
        batched_matches =
            batched_matches && p1[r] == forest1.predict(ds, r);
    ok = ok && batched_matches;

    // ---- 2. zero-allocation vote path ---------------------------
    uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    uint64_t sink = 0;
    for (size_t r = 0; r < ds.numRows(); ++r)
        sink += forest1.predict(ds, r);
    uint64_t single_allocs =
        g_allocs.load(std::memory_order_relaxed) - a0;
    a0 = g_allocs.load(std::memory_order_relaxed);
    forest1.predictRows(ds, 0, ds.numRows(), p1.data());
    uint64_t batched_allocs =
        g_allocs.load(std::memory_order_relaxed) - a0;
    double allocs_per_pred =
        static_cast<double>(single_allocs) /
        static_cast<double>(ds.numRows());
    double allocs_per_row_batched =
        static_cast<double>(batched_allocs) /
        static_cast<double>(ds.numRows());
    ok = ok && single_allocs == 0 && batched_allocs == 0;

    // ---- 3. PFI throughput, 1 vs N threads ----------------------
    ml::PfiConfig pc;
    pc.seed = util::mixCombine(args.opts.seed, 0x9f1ULL);
    ml::PfiResult pfi_1, pfi_n;
    double pfi_1t = wallSeconds([&] {
        ml::PfiConfig c = pc;
        c.threads = 1;
        pfi_1 = ml::computePfi(forest1, ds, cols, c);
    });
    double pfi_nt = wallSeconds([&] {
        ml::PfiConfig c = pc;
        c.threads = nthreads;
        pfi_n = ml::computePfi(forest1, ds, cols, c);
    });
    bool pfi_identical = pfi_1.importance == pfi_n.importance &&
                         pfi_1.base_error == pfi_n.base_error;
    ok = ok && pfi_identical;

    // ---- 4. selection wall time, 1 vs N threads -----------------
    ml::SelectionConfig sc;
    sc.pfi.seed = util::mixCombine(args.opts.seed, 0x5e1ULL);
    ml::SelectionResult sel_1, sel_n, sel_full;
    double sel_1t = wallSeconds([&] {
        ml::SelectionConfig c = sc;
        c.pfi.threads = 1;
        sel_1 = ml::selectNecessaryInputs(ds, c);
    });
    double sel_nt = wallSeconds([&] {
        ml::SelectionConfig c = sc;
        c.pfi.threads = nthreads;
        sel_n = ml::selectNecessaryInputs(ds, c);
    });
    // Cached PFI (the default) vs full recompute: must be exact.
    double sel_full_t = wallSeconds([&] {
        ml::SelectionConfig c = sc;
        c.pfi.threads = nthreads;
        c.cache_pfi = false;
        sel_full = ml::selectNecessaryInputs(ds, c);
    });
    bool sel_identical =
        sameSelection(sel_1, sel_n) && sameSelection(sel_n, sel_full);
    ok = ok && sel_identical;
    uint32_t digest = selectionDigest(sel_1);

    // ---- 5. OTA package bytes across thread counts --------------
    core::SnipConfig scfg;
    scfg.seed = util::mixCombine(args.opts.seed, 0x07aULL);
    scfg.threads = 1;
    core::SnipModel m1 = core::buildSnipModel(pg.profile, *pg.game,
                                              scfg);
    scfg.threads = nthreads;
    core::SnipModel mn = core::buildSnipModel(pg.profile, *pg.game,
                                              scfg);
    util::ByteBuffer pkg1, pkgn;
    core::packModel(m1, pkg1);
    core::packModel(mn, pkgn);
    bool model_identical = pkg1.data() == pkgn.data();
    ok = ok && model_identical;
    uint32_t model_digest = util::crc32(pkg1.data().data(),
                                        pkg1.size());

    // ---- JSON ---------------------------------------------------
    std::string json;
    char buf[2048];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"micro_train\",\n"
        "  \"game\": \"ab_evolution\",\n"
        "  \"rows\": %zu, \"features\": %zu, \"threads\": %u,\n"
        "  \"train\": {\"trees\": %d, \"wall_s_1t\": %.6f, "
        "\"wall_s_nt\": %.6f, \"trees_per_sec_1t\": %.2f, "
        "\"trees_per_sec_nt\": %.2f, \"speedup\": %.3f, "
        "\"identical\": %s},\n"
        "  \"pfi\": {\"columns\": %zu, \"repeats\": %d, "
        "\"wall_s_1t\": %.6f, \"wall_s_nt\": %.6f, "
        "\"cols_per_sec_1t\": %.2f, \"cols_per_sec_nt\": %.2f, "
        "\"speedup\": %.3f, \"identical\": %s},\n"
        "  \"selection\": {\"wall_s_1t\": %.6f, \"wall_s_nt\": %.6f, "
        "\"speedup\": %.3f, \"wall_s_full_recompute\": %.6f, "
        "\"cache_speedup\": %.3f, \"identical\": %s, "
        "\"digest\": \"%08x\"},\n"
        "  \"predict\": {\"allocs_per_prediction\": %.4f, "
        "\"allocs_per_row_batched\": %.4f},\n"
        "  \"model_codec\": {\"bytes\": %zu, "
        "\"identical_across_threads\": %s, \"digest\": \"%08x\"},\n"
        "  \"contracts_ok\": %s\n"
        "}\n",
        ds.numRows(), ds.numFeatures(), nthreads, args.trees,
        train_1t, train_nt,
        args.trees / (train_1t > 0 ? train_1t : 1e-9),
        args.trees / (train_nt > 0 ? train_nt : 1e-9),
        train_1t / (train_nt > 0 ? train_nt : 1e-9),
        train_identical && batched_matches ? "true" : "false",
        cols.size(), pc.repeats, pfi_1t, pfi_nt,
        cols.size() / (pfi_1t > 0 ? pfi_1t : 1e-9),
        cols.size() / (pfi_nt > 0 ? pfi_nt : 1e-9),
        pfi_1t / (pfi_nt > 0 ? pfi_nt : 1e-9),
        pfi_identical ? "true" : "false",
        sel_1t, sel_nt, sel_1t / (sel_nt > 0 ? sel_nt : 1e-9),
        sel_full_t,
        sel_full_t / (sel_nt > 0 ? sel_nt : 1e-9),
        sel_identical ? "true" : "false", digest,
        allocs_per_pred, allocs_per_row_batched, pkg1.size(),
        model_identical ? "true" : "false", model_digest,
        ok ? "true" : "false");
    json = buf;
    std::fputs(json.c_str(), stdout);
    if (FILE *f = std::fopen(args.out.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("wrote %s\n", args.out.c_str());
    } else {
        util::warn("could not write %s", args.out.c_str());
    }

    if (!ok) {
        std::fprintf(stderr, "micro_train: CONTRACT VIOLATION — see "
                             "\"identical\"/alloc fields above\n");
        return 1;
    }
    (void)sink;
    return 0;
}
