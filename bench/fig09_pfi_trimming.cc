/**
 * @file
 * Fig. 9: PFI-driven input trimming for AB Evolution — starting
 * from the full union-of-locations input record, drop fields in
 * ascending importance and chart (remaining necessary-input bytes,
 * % erroneously short-circuited outputs), color-coded by the
 * category of the dropped field. Paper anchors: ~1.2 kB of the
 * ~1 MB record (≈0.2% of the input fields) predicts ~99% of
 * outputs with 100% accuracy; error ramps steeply past the knee;
 * the last ~50 B of In.Event alone still short-circuits ~12%.
 */

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "ml/dataset.h"
#include "ml/feature_selection.h"
#include "util/bytes.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

using namespace snip;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Fig. 9: PFI necessary-input trimming (AB Evolution)",
        "Fig. 9 — ~1.2 kB of ~1 MB inputs short-circuits ~99% of "
        "outputs at 100% accuracy; error ramps past the knee");

    bench::ProfiledGame pg = bench::profileGame("ab_evolution", opts);
    const events::FieldSchema &schema = pg.game->schema();

    std::cout << "full input record (union of locations): "
              << util::formatSize(
                     static_cast<double>(schema.totalInputBytes()))
              << "\n\n";

    std::unique_ptr<util::CsvWriter> csv;
    std::ofstream csv_file;
    if (!opts.csv_path.empty()) {
        csv_file.open(opts.csv_path);
        csv = std::make_unique<util::CsvWriter>(
            csv_file,
            std::vector<std::string>{"event_type", "dropped",
                                     "category", "remaining_bytes",
                                     "wrong_hit_rate", "hit_rate"});
    }

    uint64_t total_selected = 0;
    for (events::EventType t : pg.profile.typesPresent()) {
        ml::Dataset ds(pg.profile.ofType(t), schema);
        ml::SelectionConfig cfg;
        cfg.max_error = 0.002;
        cfg.max_conditional_error = 0.012;
        cfg.pfi.seed = opts.seed;
        cfg.pfi.threads = opts.threads;
        ml::SelectionResult sel = ml::selectNecessaryInputs(ds, cfg);

        std::cout << "--- " << events::eventTypeName(t) << " events ("
                  << ds.numRows() << " records, " << ds.numFeatures()
                  << " input locations) ---\n";
        util::TablePrinter table({"dropped field", "category",
                                  "remaining", "% wrong hits",
                                  "% hits"});
        // Compact: print every step near the knee, every 4th in the
        // flat region.
        const auto &curve = sel.curve;
        for (size_t i = 0; i < curve.size(); ++i) {
            const auto &s = curve[i];
            bool interesting = s.error > 0.0005 ||
                               i + 8 >= curve.size() || i % 4 == 0;
            if (!interesting)
                continue;
            table.addRow({schema.def(s.dropped).name,
                          events::inputCategoryName(s.dropped_cat),
                          util::formatSize(static_cast<double>(
                              s.remaining_bytes)),
                          util::TablePrinter::pct(s.error, 2),
                          util::TablePrinter::pct(s.hit_rate)});
            if (csv) {
                csv->row({events::eventTypeName(t),
                          schema.def(s.dropped).name,
                          events::inputCategoryName(s.dropped_cat),
                          std::to_string(s.remaining_bytes),
                          std::to_string(s.error),
                          std::to_string(s.hit_rate)});
            }
        }
        table.print(std::cout);
        std::cout << "selected necessary inputs: "
                  << sel.selected.size() << " fields, "
                  << util::formatSize(
                         static_cast<double>(sel.selected_bytes))
                  << " (wrong-hit rate "
                  << util::TablePrinter::pct(sel.selected_error, 2)
                  << ", hit rate "
                  << util::TablePrinter::pct(sel.selected_hit_rate)
                  << ")\n  kept:";
        for (events::FieldId fid : sel.selected)
            std::cout << " " << schema.def(fid).name;
        std::cout << "\n\n";
        total_selected += sel.selected_bytes;
    }

    std::cout << "total necessary inputs across event types: "
              << util::formatSize(static_cast<double>(total_selected))
              << " of "
              << util::formatSize(
                     static_cast<double>(schema.totalInputBytes()))
              << " ("
              << util::TablePrinter::pct(
                     static_cast<double>(total_selected) /
                         static_cast<double>(schema.totalInputBytes()),
                     3)
              << ")  [paper: ~1.2 kB of ~1 MB, ~0.2%]\n";
    return 0;
}
