/**
 * @file
 * Fig. 12: continuous learning without developer intervention
 * (AB Evolution). The first deployment is built from an
 * artificially insufficient profile, so early sessions produce a
 * large fraction of erroneous output fields; as each session's
 * events are uploaded, replayed, and re-learned, the error rate
 * collapses. Paper anchors: ~40% erroneous initially, < 0.1%
 * within ~40 training epochs.
 */

#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "core/continuous_learning.h"
#include "util/bytes.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

using namespace snip;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Fig. 12: continuous learning (AB Evolution)",
        "Fig. 12 — ~40% erroneous output fields initially, < 0.1% "
        "within ~40 epochs of record/replay/re-learn");

    core::LearningConfig cfg;
    cfg.epochs = opts.epochs ? opts.epochs : (opts.quick ? 16 : 48);
    cfg.session_s = opts.quick ? 8.0 : 10.0;
    cfg.initial_profile_records = 24;
    cfg.max_profile_records = 16000;
    cfg.snip.min_records_per_type = 8;
    cfg.snip.seed = opts.seed;
    cfg.snip.threads = opts.threads;
    cfg.sim.seed = opts.seed;

    // The epochs of one trajectory are inherently sequential (each
    // session's events feed the next re-learn), but independent
    // trajectories are not: run the paper's ungated learner and the
    // confidence-gated variant (§V-B, withhold deployment until the
    // tested error clears the gate) side by side.
    core::LearningConfig gated_cfg = cfg;
    gated_cfg.confidence_gate = true;

    core::LearningConfig *cfgs[] = {&cfg, &gated_cfg};
    // One registry per trajectory task (a Registry is
    // single-writer), merged after the join for --obs-json.
    obs::Registry regs[2];
    std::vector<core::EpochResult> trajectories[2];
    opts.runner().forEach(2, [&](size_t i) {
        if (!opts.obs_json.empty())
            cfgs[i]->obs = &regs[i];
        auto game = games::makeGame("ab_evolution");
        auto replica = games::makeGame("ab_evolution");
        core::ContinuousLearner learner(*game, *replica, *cfgs[i]);
        trajectories[i] = learner.run();
    });
    const std::vector<core::EpochResult> &epochs = trajectories[0];
    const std::vector<core::EpochResult> &gated = trajectories[1];

    util::TablePrinter table({"epoch", "profile records",
                              "table size", "% erroneous fields",
                              "coverage"});
    std::unique_ptr<util::CsvWriter> csv;
    std::ofstream csv_file;
    if (!opts.csv_path.empty()) {
        csv_file.open(opts.csv_path);
        csv = std::make_unique<util::CsvWriter>(
            csv_file, std::vector<std::string>{
                          "epoch", "profile_records", "table_bytes",
                          "error_field_rate", "coverage"});
    }

    double first_err = 0.0, last_err = 0.0;
    // Convergence = first epoch after which the error *stays*
    // below 0.1%.
    int converged_at = -1;
    for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
        if (it->error_field_rate >= 0.001)
            break;
        converged_at = it->epoch;
    }
    for (const auto &e : epochs) {
        if (e.epoch == 0)
            first_err = e.error_field_rate;
        last_err = e.error_field_rate;
        bool print = e.epoch < 8 || e.epoch % 4 == 0 ||
                     &e == &epochs.back();
        if (print) {
            table.addRow(
                {std::to_string(e.epoch),
                 std::to_string(e.profile_records),
                 util::formatSize(static_cast<double>(e.table_bytes)),
                 util::TablePrinter::pct(e.error_field_rate, 3),
                 util::TablePrinter::pct(e.coverage)});
        }
        if (csv) {
            csv->row({std::to_string(e.epoch),
                      std::to_string(e.profile_records),
                      std::to_string(e.table_bytes),
                      std::to_string(e.error_field_rate),
                      std::to_string(e.coverage)});
        }
    }
    table.print(std::cout);

    std::cout << "\ninitial error "
              << util::TablePrinter::pct(first_err, 2)
              << " [paper ~40%], final "
              << util::TablePrinter::pct(last_err, 3)
              << " [paper < 0.1%]";
    if (converged_at >= 0)
        std::cout << ", first epoch below 0.1%: " << converged_at
                  << " [paper ~40]";
    std::cout << "\n";

    // Confidence-gate comparison: worst user-visible epoch error
    // with and without withholding deployment early on.
    double worst_ungated = 0.0, worst_gated = 0.0;
    int gate_deployed_at = -1;
    for (const auto &e : epochs)
        worst_ungated = std::max(worst_ungated, e.error_field_rate);
    for (const auto &e : gated) {
        worst_gated = std::max(worst_gated, e.error_field_rate);
        if (gate_deployed_at < 0 && e.deployed)
            gate_deployed_at = e.epoch;
    }
    std::cout << "confidence gate: worst epoch error "
              << util::TablePrinter::pct(worst_ungated, 2)
              << " ungated vs "
              << util::TablePrinter::pct(worst_gated, 2)
              << " gated (first deployed epoch "
              << gate_deployed_at << ")\n";

    if (!opts.obs_json.empty()) {
        obs::Registry merged;
        merged.merge(regs[0]);
        merged.merge(regs[1]);
        bench::writeObsJson(merged, opts);
    }
    return 0;
}
