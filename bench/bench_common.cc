#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "trace/columnar_log.h"
#include "util/logging.h"

namespace snip {
namespace bench {

BenchOptions
parseOptions(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
            opts.csv_path = argv[++i];
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            opts.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            opts.threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
            if (opts.threads == 0)
                util::fatal("--threads must be >= 1");
        } else if (std::strcmp(argv[i], "--obs-json") == 0 &&
                   i + 1 < argc) {
            opts.obs_json = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-cache") == 0 &&
                   i + 1 < argc) {
            opts.trace_cache = argv[++i];
        } else if (std::strcmp(argv[i], "--pipeline") == 0) {
            opts.pipeline = true;
        } else if (std::strcmp(argv[i], "--epochs") == 0 &&
                   i + 1 < argc) {
            opts.epochs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
            if (opts.epochs == 0)
                util::fatal("--epochs must be >= 1");
        } else {
            util::fatal("unknown argument '%s' (expected --quick, "
                        "--csv <path>, --seed <n>, --threads <n>, "
                        "--obs-json <path>, --trace-cache <dir>, "
                        "--pipeline, --epochs <n>)",
                        argv[i]);
        }
    }
    if (opts.trace_cache.empty()) {
        if (const char *env = std::getenv("SNIP_TRACE_CACHE"))
            opts.trace_cache = env;
    }
    return opts;
}

namespace {

/** Cache key of one baseline recording: game, seed, duration. */
std::string
traceCachePath(const std::string &dir, const std::string &game,
               uint64_t seed, double secs)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "-s%llu-%gs.snct",
                  static_cast<unsigned long long>(seed), secs);
    return dir + "/" + game + buf;
}

}  // namespace

ProfiledGame
profileGame(const std::string &game_name, const BenchOptions &opts,
            double profile_s)
{
    ProfiledGame pg;
    pg.game = games::makeGame(game_name);

    double secs = profile_s > 0 ? profile_s : opts.profileSeconds();
    std::string cache_path;
    if (!opts.trace_cache.empty()) {
        cache_path = traceCachePath(opts.trace_cache, game_name,
                                    opts.seed, secs);
        auto log = trace::ColumnarLog::open(cache_path);
        if (log.ok() && log.value()->game() == game_name) {
            trace::EventTrace tr;
            log.value()->toTrace(&tr);
            auto replica = games::makeGame(game_name);
            pg.profile = trace::Replayer::replay(tr, *replica);
            return pg;
        }
    }

    core::BaselineScheme baseline;
    core::SimulationConfig cfg;
    cfg.duration_s = secs;
    cfg.record_events = true;
    cfg.seed = opts.seed;
    core::SessionResult res =
        core::runSession(*pg.game, baseline, cfg);

    if (!cache_path.empty()) {
        // Best-effort: a failed write (missing dir, full disk) only
        // costs the next run a re-record.
        std::vector<uint8_t> bytes;
        if (trace::ColumnarLog::encode(res.trace, &bytes).ok())
            (void)trace::ColumnarLog::save(bytes, cache_path);
    }

    auto replica = games::makeGame(game_name);
    pg.profile = trace::Replayer::replay(res.trace, *replica);
    return pg;
}

std::vector<ProfiledGame>
profileAllGames(const BenchOptions &opts, double profile_s)
{
    const auto &names = games::allGameNames();
    std::vector<ProfiledGame> pgs(names.size());
    opts.runner().forEach(names.size(), [&](size_t i) {
        pgs[i] = profileGame(names[i], opts, profile_s);
    });
    return pgs;
}

core::SnipModel
buildModel(const ProfiledGame &pg, const BenchOptions &opts,
           obs::Registry *obs)
{
    core::SnipConfig cfg;
    cfg.seed = util::mixCombine(opts.seed, 0x5e1ec7ULL);
    cfg.overrides.force_keep = pg.game->params().recommended_overrides;
    // --threads governs training-side (Shrink) parallelism too;
    // selection output does not depend on it.
    cfg.threads = opts.threads;
    cfg.obs = obs;
    return core::buildSnipModel(pg.profile, *pg.game, cfg);
}

void
writeObsJson(const obs::Registry &reg, const BenchOptions &opts)
{
    if (opts.obs_json.empty())
        return;
    // The pool gauges snapshot process-lifetime totals; stamp them
    // into an export-side copy (after any shard merging in the
    // bench) so a merged registry reports them exactly once and the
    // caller's registry stays untouched.
    obs::Registry out;
    out.merge(reg);
    obs::exportTaskPoolStats(out);
    util::Status st = obs::writeJsonFile(out, opts.obs_json);
    if (!st.ok())
        util::fatal("--obs-json: %s", st.message().c_str());
    std::printf("obs metrics -> %s\n", opts.obs_json.c_str());
}

core::SimulationConfig
evalConfig(const BenchOptions &opts)
{
    core::SimulationConfig cfg;
    cfg.duration_s = opts.evalSeconds();
    cfg.seed = util::mixCombine(opts.seed, 0xe7a1ULL);
    cfg.pipeline.enabled = opts.pipeline;
    return cfg;
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("=== %s ===\n", title.c_str());
    std::printf("reproduces: %s (SNIP, IISWC 2020)\n\n",
                paper_ref.c_str());
}

}  // namespace bench
}  // namespace snip
