/**
 * @file
 * Fleet-scale OTA backend bench: one continuous-learning lineage is
 * published into a fleet::ModelRegistry (through the learner's
 * deploy seam), then
 *
 *   1. a simulated 1M-device fleet, partitioned into staleness
 *      cohorts, receives the head epoch — reporting full-package vs
 *      delta OTA bytes (the fig06_ota_payload baseline vs SNPD
 *      patches) and asserting delta is strictly below full;
 *   2. a batch of per-device upload payloads is aggregated serially
 *      (the core federated merge chain) and sharded
 *      (fleet::aggregateUploads) at shard counts {1, 2, 8},
 *      asserting the frozen arenas are byte-identical and reporting
 *      both wall times;
 *   3. each cohort's stale-version lookup hit rate is reported
 *      (staleness skew = max - min).
 *
 * Exits non-zero when the delta-beats-full or sharded-equivalence
 * contract is violated, which is what lets tools/ci.sh run it as a
 * fleet smoke. Emits single-line JSON (default
 * BENCH_fleet_sim.json, also printed to stdout).
 *
 * Flags: --quick (shorter sessions, smaller lineage), --seed <n>,
 * --threads <n>, --devices <n>, --shards <n>, --uploads <n>,
 * --epochs <n>, --out <path>.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include "core/continuous_learning.h"
#include "core/model_codec.h"
#include "fleet/aggregate.h"
#include "fleet/delta.h"
#include "fleet/fleet_sim.h"
#include "fleet/registry.h"
#include "games/registry.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/rng.h"

using namespace snip;

// ------------------------------------------------ counting allocator
// Same instrumentation as micro_lookup/micro_train: every allocation
// in the process counts, making the per-upload figure an upper
// bound.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<uint64_t> g_allocs{0};
}

void *
operator new(size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, size_t) noexcept { std::free(p); }
void operator delete[](void *p, size_t) noexcept { std::free(p); }

namespace {

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

struct Args {
    bool quick = false;
    uint64_t seed = 0xf1ee7ULL;
    unsigned threads = 0;
    uint64_t devices = 1000000;
    size_t shards = 8;
    size_t uploads = 24;
    int epochs = 5;
    std::string game = "candy_crush";
    std::string out = "BENCH_fleet_sim.json";
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            a.quick = true;
            a.uploads = 8;
            a.epochs = 4;
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            a.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            a.threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--devices") == 0 &&
                   i + 1 < argc) {
            a.devices = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--shards") == 0 &&
                   i + 1 < argc) {
            a.shards = std::strtoul(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--uploads") == 0 &&
                   i + 1 < argc) {
            a.uploads = std::strtoul(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--epochs") == 0 &&
                   i + 1 < argc) {
            a.epochs =
                static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--game") == 0 &&
                   i + 1 < argc) {
            a.game = argv[++i];
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            a.out = argv[++i];
        } else {
            util::fatal("fleet_sim: unknown argument '%s'", argv[i]);
        }
    }
    return a;
}

/** Deep copies of the upload payloads (cursor-fresh). */
std::vector<util::ByteBuffer>
copyUploads(const std::vector<util::ByteBuffer> &uploads)
{
    std::vector<util::ByteBuffer> out(uploads.size());
    for (size_t i = 0; i < uploads.size(); ++i)
        out[i].putBytes(uploads[i].data().data(), uploads[i].size());
    return out;
}

/** Fresh aggregate destination with @p agreed's selections. */
core::MemoTable
makeDest(const games::Game &game, const core::SnipModel &agreed)
{
    core::MemoTable dest(game.schema());
    for (const core::TypeModel &t : agreed.types)
        dest.setSelected(t.type, t.selection.selected);
    return dest;
}

/** The serial reference: the core federated merge chain. */
void
serialAggregate(core::MemoTable &dest,
                std::vector<util::ByteBuffer> &uploads)
{
    for (size_t u = 0; u < uploads.size(); ++u) {
        util::Result<core::SnipModel> decoded =
            core::unpackModel(uploads[u]);
        if (!decoded.ok() || !decoded.value().table) {
            util::warn("fleet_sim: dropping upload %zu: %s", u,
                       decoded.status().message().c_str());
            continue;
        }
        dest.mergeFrom(*decoded.value().table);
    }
}

bool
sameArena(const core::MemoTable &a, const core::MemoTable &b)
{
    auto fa = a.freeze();
    auto fb = b.freeze();
    return fa->arenaSize() == fb->arenaSize() &&
           std::memcmp(fa->arenaData(), fb->arenaData(),
                       fa->arenaSize()) == 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    Args a = parseArgs(argc, argv);
    obs::Registry obs;

    // ---- lineage: continuous learning publishes into the registry
    fleet::ModelRegistry reg(&obs);
    {
        auto game = games::makeGame(a.game);
        auto replica = games::makeGame(a.game);
        core::LearningConfig lc;
        lc.epochs = a.epochs;
        lc.session_s = a.quick ? 12.0 : 25.0;
        fleet::bindLearner(lc, reg, a.game);
        core::ContinuousLearner learner(*game, *replica, lc);
        learner.run();
    }
    size_t versions = reg.versionCount(a.game);
    std::printf("fleet_sim: %zu versions published for %s\n",
                versions, a.game.c_str());
    if (versions == 0)
        util::fatal("fleet_sim: learner published no versions");

    // ---- delta OTA push to the cohort fleet
    fleet::FleetSimConfig fcfg;
    fcfg.game = a.game;
    fcfg.devices = a.devices;
    fcfg.threads = a.threads;
    fcfg.seed = a.seed;
    fcfg.eval_seconds = a.quick ? 10.0 : 20.0;
    fcfg.shards = a.shards;
    fcfg.obs = &obs;
    util::Result<fleet::EpochPushReport> pushed =
        fleet::pushEpoch(reg, fcfg);
    if (!pushed.ok())
        util::fatal("fleet_sim: push failed: %s",
                    pushed.status().message().c_str());
    const fleet::EpochPushReport &push = pushed.value();

    bool delta_beats_full = push.delta_bytes < push.full_bytes;
    if (!delta_beats_full)
        std::fprintf(stderr,
                     "fleet_sim: FAIL delta OTA (%llu bytes) does "
                     "not beat full packages (%llu bytes)\n",
                     static_cast<unsigned long long>(
                         push.delta_bytes),
                     static_cast<unsigned long long>(
                         push.full_bytes));

    // ---- sharded vs serial aggregation
    auto game = games::makeGame(a.game);
    core::SnipModel agreed;
    {
        // The agreed fleet model whose selections devices project
        // onto: decode the registry head (the latest epoch).
        auto head = reg.fetch(a.game, push.head);
        if (!head.ok())
            util::fatal("fleet_sim: head fetch failed: %s",
                        head.status().message().c_str());
        util::ByteBuffer pkg;
        pkg.putBytes(head.value()->data().data(),
                     head.value()->size());
        util::Result<core::SnipModel> decoded =
            core::unpackModel(pkg);
        if (!decoded.ok())
            util::fatal("fleet_sim: head decode failed: %s",
                        decoded.status().message().c_str());
        agreed = std::move(decoded.value());
    }

    uint64_t allocs_before = g_allocs.load();
    std::vector<util::ByteBuffer> uploads =
        fleet::recordUploadPayloads(a.game, agreed, a.uploads,
                                    a.seed, a.quick ? 6.0 : 12.0,
                                    a.threads);
    uint64_t allocs_per_upload =
        a.uploads ? (g_allocs.load() - allocs_before) / a.uploads
                  : 0;

    core::MemoTable serial_dest = makeDest(*game, agreed);
    double serial_s = wallSeconds([&] {
        auto ups = copyUploads(uploads);
        serialAggregate(serial_dest, ups);
    });

    bool sharded_identical = true;
    double sharded_s = 0.0;
    std::vector<size_t> shard_counts = {1, 2, 8};
    if (a.shards != 1 && a.shards != 2 && a.shards != 8)
        shard_counts.push_back(a.shards);
    for (size_t shards : shard_counts) {
        core::MemoTable dest = makeDest(*game, agreed);
        fleet::AggregateConfig acfg;
        acfg.shards = shards;
        acfg.threads = a.threads;
        acfg.obs = &obs;
        double t = wallSeconds([&] {
            auto ups = copyUploads(uploads);
            fleet::aggregateUploads(dest, ups, acfg);
        });
        if (shards == a.shards)
            sharded_s = t;
        if (!sameArena(serial_dest, dest)) {
            sharded_identical = false;
            std::fprintf(stderr,
                         "fleet_sim: FAIL sharded aggregate at %zu "
                         "shards differs from the serial chain\n",
                         shards);
        }
    }

    // ---- report
    std::string cohorts_json;
    for (const fleet::CohortReport &c : push.cohorts) {
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"name\":\"%s\",\"devices\":%llu,"
            "\"versions_behind\":%u,\"patch_bytes\":%llu,"
            "\"full_bytes\":%llu,\"delta_bytes\":%llu,"
            "\"used_delta\":%s,\"stale_hit_rate\":%.4f}",
            cohorts_json.empty() ? "" : ",", c.name.c_str(),
            static_cast<unsigned long long>(c.devices),
            c.versions_behind,
            static_cast<unsigned long long>(c.patch_bytes),
            static_cast<unsigned long long>(c.full_bytes),
            static_cast<unsigned long long>(c.delta_bytes),
            c.used_delta ? "true" : "false", c.hit_rate);
        cohorts_json += buf;
    }

    char json[2048];
    std::snprintf(
        json, sizeof(json),
        "{\"bench\":\"fleet_sim\",\"game\":\"%s\",\"devices\":%llu,"
        "\"versions\":%zu,\"head_bytes\":%llu,"
        "\"ota_full_bytes\":%llu,\"ota_delta_bytes\":%llu,"
        "\"delta_ratio\":%.4f,\"delta_beats_full\":%s,"
        "\"fallbacks\":%zu,\"staleness_skew\":%.4f,"
        "\"uploads\":%zu,\"allocs_per_upload\":%llu,"
        "\"agg_serial_s\":%.4f,\"agg_sharded_s\":%.4f,"
        "\"agg_shards\":%zu,\"sharded_identical\":%s,"
        "\"cohorts\":[%s]}",
        a.game.c_str(), static_cast<unsigned long long>(a.devices),
        versions, static_cast<unsigned long long>(push.head_bytes),
        static_cast<unsigned long long>(push.full_bytes),
        static_cast<unsigned long long>(push.delta_bytes),
        push.full_bytes
            ? static_cast<double>(push.delta_bytes) /
                  static_cast<double>(push.full_bytes)
            : 0.0,
        delta_beats_full ? "true" : "false", push.fallbacks,
        push.staleness_skew, a.uploads,
        static_cast<unsigned long long>(allocs_per_upload),
        serial_s, sharded_s, a.shards,
        sharded_identical ? "true" : "false", cohorts_json.c_str());
    std::printf("%s\n", json);
    if (FILE *f = std::fopen(a.out.c_str(), "w")) {
        std::fprintf(f, "%s\n", json);
        std::fclose(f);
    } else {
        util::fatal("fleet_sim: cannot write %s", a.out.c_str());
    }

    return delta_beats_full && sharded_identical ? 0 : 1;
}
