/**
 * @file
 * Fig. 8: the In.Event-only lookup table for AB Evolution —
 * (a) a table ~1.5% the size of the naive one covering ~27% of
 * execution, but with ~22% of execution matching ambiguously; and
 * (b) of its erroneous short-circuits, 44% damage only Out.Temp
 * while 56% corrupt Out.History/Out.Extern, which is what makes the
 * scheme non-viable without SNIP's extra necessary inputs.
 */

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "core/lookup_table.h"
#include "util/bytes.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

using namespace snip;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Fig. 8: In.Event-only lookup table (AB Evolution)",
        "Fig. 8a/b — 1.5% of naive size covering ~27%, 22% "
        "ambiguous; errors split 44% Out.Temp / 56% "
        "Out.History+Extern");

    bench::ProfiledGame pg = bench::profileGame("ab_evolution", opts);
    core::InEventTableResult r =
        core::analyzeInEventTable(pg.profile, pg.game->schema());

    util::TablePrinter table({"metric", "value", "paper"});
    table.addRow({"distinct In.Event keys", std::to_string(r.entries),
                  "-"});
    table.addRow({"table size",
                  util::formatSize(static_cast<double>(r.table_bytes)),
                  "~290 MB"});
    table.addRow({"naive table size",
                  util::formatSize(static_cast<double>(r.naive_bytes)),
                  "~19 GB"});
    table.addRow(
        {"size vs naive",
         util::TablePrinter::pct(static_cast<double>(r.table_bytes) /
                                 static_cast<double>(r.naive_bytes)),
         "~1.5%"});
    table.addRow({"execution coverage",
                  util::TablePrinter::pct(r.coverage), "~27%"});
    table.addRow({"ambiguous-match execution",
                  util::TablePrinter::pct(r.ambiguous), "~22%"});
    table.addRow({"erroneous hits",
                  util::TablePrinter::pct(r.erroneous_hit_fraction),
                  "-"});
    table.addRow({"errors: Out.Temp only",
                  util::TablePrinter::pct(r.err_temp_only), "44%"});
    table.addRow({"errors: Out.History",
                  util::TablePrinter::pct(r.err_history), "56% (with"});
    table.addRow({"errors: Out.Extern",
                  util::TablePrinter::pct(r.err_extern), " Extern)"});
    table.print(std::cout);

    if (!opts.csv_path.empty()) {
        std::ofstream csv_file(opts.csv_path);
        util::CsvWriter csv(csv_file, {"metric", "value"});
        csv.row({"entries", std::to_string(r.entries)});
        csv.row({"table_bytes", std::to_string(r.table_bytes)});
        csv.row({"naive_bytes", std::to_string(r.naive_bytes)});
        csv.row({"coverage", std::to_string(r.coverage)});
        csv.row({"ambiguous", std::to_string(r.ambiguous)});
        csv.row({"erroneous_hits",
                 std::to_string(r.erroneous_hit_fraction)});
        csv.row({"err_temp_only", std::to_string(r.err_temp_only)});
        csv.row({"err_history", std::to_string(r.err_history)});
        csv.row({"err_extern", std::to_string(r.err_extern)});
    }
    return 0;
}
