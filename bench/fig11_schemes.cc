/**
 * @file
 * Fig. 11: the headline evaluation — for every game, the energy
 * saved by Max CPU / Max IP / SNIP / No-Overheads-SNIP relative to
 * baseline (11a), the % of execution each scheme short-circuits
 * (11b), and SNIP's lookup overheads (11c). Paper anchors:
 * Max CPU 0.5-13%, Max IP 0.7-9%, SNIP 24-37% (avg 32%, ~1.6 h
 * extra battery), coverage 40-61% (avg 52%), overheads avg ~3%
 * with Memory Game the ~12% outlier, Colorphun comparing ~7.5 kB
 * per event.
 */

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "core/scheme.h"
#include "obs/metrics.h"
#include "soc/battery.h"
#include "util/bytes.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

using namespace snip;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Fig. 11: energy benefits, coverage, and overheads",
        "Fig. 11a/b/c — SNIP saves 24-37% (avg 32%) by "
        "short-circuiting 40-61% (avg 52%) of execution; overheads "
        "avg ~3%");

    util::TablePrinter savings({"game", "Max CPU", "Max IP", "SNIP",
                                "No Overheads", "extra battery"});
    util::TablePrinter coverage({"game", "Max CPU", "Max IP (ip work)",
                                 "SNIP", "SNIP err fields"});
    util::TablePrinter overheads({"game", "overhead energy",
                                  "compares/event", "bytes/event",
                                  "table size"});

    std::unique_ptr<util::CsvWriter> csv;
    std::ofstream csv_file;
    if (!opts.csv_path.empty()) {
        csv_file.open(opts.csv_path);
        csv = std::make_unique<util::CsvWriter>(
            csv_file, std::vector<std::string>{
                          "game", "scheme", "energy_j", "savings",
                          "coverage_instr", "coverage_ip",
                          "err_field_rate", "lookup_bytes_per_event"});
    }

    soc::EnergyModel em = soc::EnergyModel::snapdragon821();
    soc::Battery battery(em.battery_mah, em.battery_volts);
    double save_sum = 0.0, cov_sum = 0.0, extra_h_sum = 0.0;
    int n_games = 0;

    const core::SchemeKind kinds[] = {
        core::SchemeKind::Baseline, core::SchemeKind::MaxCpu,
        core::SchemeKind::MaxIp, core::SchemeKind::Snip,
        core::SchemeKind::NoOverheads};
    constexpr size_t kNumKinds = 5;

    // Phase 1: profile every game in parallel. Phase 2: every
    // (game, scheme) evaluation session is an independent task —
    // its own game clone and its own freshly built model (the table
    // mutates via online fill during evaluation) — so per-session
    // stats are bitwise identical for any --threads value.
    core::ParallelRunner runner = opts.runner();
    std::vector<bench::ProfiledGame> pgs = bench::profileAllGames(opts);

    struct SchemeRun {
        core::SessionResult res;
        uint64_t table_bytes = 0;
        /** Per-run metrics (SNIP runs under --obs-json only); the
         *  run's task is the sole writer until the join. */
        obs::Registry reg;
    };
    const auto &names = games::allGameNames();
    std::vector<SchemeRun> evals(names.size() * kNumKinds);
    runner.forEach(evals.size(), [&](size_t i) {
        const bench::ProfiledGame &pg = pgs[i / kNumKinds];
        core::SchemeKind kind = kinds[i % kNumKinds];
        obs::Registry *reg = !opts.obs_json.empty() &&
                                     kind == core::SchemeKind::Snip
                                 ? &evals[i].reg
                                 : nullptr;
        core::SimulationConfig ecfg = bench::evalConfig(opts);
        ecfg.obs = reg;
        core::SnipModel model = bench::buildModel(pg, opts, reg);
        auto game = games::makeGame(pg.game->name());
        std::unique_ptr<core::Scheme> scheme;
        if (reg) {
            core::SnipRuntimeConfig rcfg;
            rcfg.obs = reg;
            scheme = std::make_unique<core::SnipScheme>(model, rcfg);
        } else {
            scheme = core::makeScheme(kind, &model);
        }
        evals[i].res = core::runSession(*game, *scheme, ecfg);
        // Deployed bytes = frozen arena + online-fill overlay (the
        // layouts actually serving lookups), not the build table.
        auto *snip = dynamic_cast<core::SnipScheme *>(scheme.get());
        evals[i].table_bytes = snip ? snip->deployedTableBytes()
                                    : model.tableBytes();
        if (reg && snip)
            snip->recordTableStats(*reg);
    });

    for (size_t g = 0; g < names.size(); ++g) {
        const std::string &name = names[g];
        const bench::ProfiledGame &pg = pgs[g];

        double baseline_e = 0.0, baseline_p = 0.0;
        double row_save[4] = {};
        double snip_cov = 0.0, snip_err = 0.0, maxcpu_cov = 0.0,
               maxip_cov = 0.0;
        double lookup_e = 0.0, snip_e = 1.0;
        double cand_per_ev = 0.0, bytes_per_ev = 0.0;
        uint64_t table_bytes = 0;

        for (size_t k = 0; k < kNumKinds; ++k) {
            const SchemeRun &run = evals[g * kNumKinds + k];
            const core::SessionResult &res = run.res;
            double e = res.report.total();
            if (k == 0) {
                baseline_e = e;
                baseline_p = res.report.averagePower();
            } else {
                row_save[k - 1] = 1.0 - e / baseline_e;
            }
            switch (kinds[k]) {
              case core::SchemeKind::MaxCpu:
                maxcpu_cov = res.stats.coverageInstr();
                break;
              case core::SchemeKind::MaxIp:
                maxip_cov = res.stats.coverageIpWork();
                break;
              case core::SchemeKind::Snip:
                snip_cov = res.stats.coverageInstr();
                snip_err = res.stats.errorFieldRate();
                lookup_e = res.stats.lookup_energy_j;
                snip_e = e;
                cand_per_ev =
                    static_cast<double>(res.stats.lookup_candidates) /
                    static_cast<double>(res.stats.events);
                bytes_per_ev =
                    static_cast<double>(res.stats.lookup_bytes) /
                    static_cast<double>(res.stats.events);
                table_bytes = run.table_bytes;
                break;
              default:
                break;
            }
            if (csv) {
                csv->row({name, core::schemeName(kinds[k]),
                          std::to_string(e),
                          std::to_string(1.0 - e / baseline_e),
                          std::to_string(res.stats.coverageInstr()),
                          std::to_string(res.stats.coverageIpWork()),
                          std::to_string(res.stats.errorFieldRate()),
                          std::to_string(bytes_per_ev)});
            }
        }

        double base_h = battery.hoursToEmpty(baseline_p);
        double snip_h =
            battery.hoursToEmpty(baseline_p * (1.0 - row_save[2]));
        char extra[32];
        std::snprintf(extra, sizeof(extra), "+%.1f h",
                      snip_h - base_h);

        savings.addRow({pg.game->displayName(),
                        util::TablePrinter::pct(row_save[0]),
                        util::TablePrinter::pct(row_save[1]),
                        util::TablePrinter::pct(row_save[2]),
                        util::TablePrinter::pct(row_save[3]), extra});
        coverage.addRow({pg.game->displayName(),
                         util::TablePrinter::pct(maxcpu_cov),
                         util::TablePrinter::pct(maxip_cov),
                         util::TablePrinter::pct(snip_cov),
                         util::TablePrinter::pct(snip_err, 3)});
        overheads.addRow(
            {pg.game->displayName(),
             util::TablePrinter::pct(lookup_e / snip_e),
             util::TablePrinter::num(cand_per_ev, 1),
             util::formatSize(bytes_per_ev),
             util::formatSize(static_cast<double>(table_bytes))});

        save_sum += row_save[2];
        cov_sum += snip_cov;
        extra_h_sum += snip_h - base_h;
        ++n_games;
    }

    std::cout << "(a) energy savings vs baseline "
                 "[paper: MaxCPU 0.5-13%, MaxIP 0.7-9%, SNIP 24-37%]\n";
    savings.print(std::cout);
    std::cout << "\n(b) % execution short-circuited "
                 "[paper: SNIP 40-61%, avg 52%]\n";
    coverage.print(std::cout);
    std::cout << "\n(c) SNIP lookup overheads "
                 "[paper: avg ~3%, Memory Game ~12%, Colorphun "
                 "~7.5 kB/event]\n";
    overheads.print(std::cout);
    std::cout << "\naverages: SNIP saves "
              << util::TablePrinter::pct(save_sum / n_games)
              << " [paper 32%], coverage "
              << util::TablePrinter::pct(cov_sum / n_games)
              << " [paper 52%], extra battery "
              << util::TablePrinter::num(extra_h_sum / n_games, 1)
              << " h [paper ~1.6 h]\n";

    if (!opts.obs_json.empty()) {
        obs::Registry merged;
        for (const SchemeRun &run : evals)
            merged.merge(run.reg);
        // Gauges are last-writer-wins under merge, so the per-game
        // rate gauges must be recomputed from the merged counters
        // to describe the whole bench.
        auto ratio = [&](const char *num, const char *den) {
            double d = static_cast<double>(merged.counterValue(den));
            return d > 0 ? static_cast<double>(
                               merged.counterValue(num)) / d
                         : 0.0;
        };
        double hits = static_cast<double>(
            merged.counterValue("lookup.hits"));
        double looks =
            hits + static_cast<double>(
                       merged.counterValue("lookup.misses"));
        merged.gauge("session.hit_rate")
            .set(looks > 0 ? hits / looks : 0.0);
        merged.gauge("session.error_field_rate")
            .set(ratio("session.output_fields_wrong",
                       "session.output_fields"));
        merged.gauge("session.coverage_instr")
            .set(ratio("session.instr_skipped",
                       "session.instr_total"));
        bench::writeObsJson(merged, opts);
    }
    return 0;
}
