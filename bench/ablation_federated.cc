/**
 * @file
 * Federated vs centralized SNIP backend (paper §VII-C future
 * direction). The centralized backend replays every user's raw
 * event upload and runs one big PFI job ("2 days on a 48-core Xeon
 * for 2 minutes of play"); the federated backend runs selection
 * per device, majority-votes the necessary-input sets, and unions
 * locally-projected tables — a fraction of the upload volume and a
 * per-device-sized serial compute job, at (ideally) no loss in
 * deployed coverage or correctness.
 */

#include <iostream>

#include "bench/bench_common.h"
#include "core/federated.h"
#include "util/bytes.h"
#include "util/table_printer.h"

using namespace snip;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader("Ablation: federated vs centralized backend",
                       "§VII-C — federated learning as a backend-"
                       "cost reduction");

    const char *game = "chase_whisply";
    core::FederatedConfig cfg;
    cfg.num_users = opts.quick ? 3 : 6;
    cfg.session_s = opts.quick ? 60.0 : 150.0;
    cfg.seed = opts.seed;
    cfg.snip.threads = opts.threads;

    core::FederatedResult central = core::buildCentralized(game, cfg);
    core::FederatedResult fed = core::buildFederated(game, cfg);

    uint64_t eval_seed = util::mixCombine(opts.seed, 0x4e1dULL);
    core::FederatedEval ec =
        core::evaluateModel(game, central.model, eval_seed);
    core::FederatedEval ef =
        core::evaluateModel(game, fed.model, eval_seed);

    util::TablePrinter table({"metric", "centralized", "federated"});
    table.addRow({"raw bytes uploaded",
                  util::formatSize(static_cast<double>(
                      central.cost.uploaded_bytes)),
                  util::formatSize(static_cast<double>(
                      fed.cost.uploaded_bytes))});
    table.addRow({"records per selection job",
                  std::to_string(central.cost.selection_records),
                  std::to_string(fed.cost.selection_records)});
    table.addRow({"deployed table",
                  util::formatSize(static_cast<double>(
                      central.model.table->totalBytes())),
                  util::formatSize(static_cast<double>(
                      fed.model.table->totalBytes()))});
    table.addRow({"necessary-input bytes",
                  std::to_string(central.model.selectedBytes()),
                  std::to_string(fed.model.selectedBytes())});
    table.addRow({"held-out coverage",
                  util::TablePrinter::pct(ec.coverage),
                  util::TablePrinter::pct(ef.coverage)});
    table.addRow({"held-out error fields",
                  util::TablePrinter::pct(ec.error_field_rate, 3),
                  util::TablePrinter::pct(ef.error_field_rate, 3)});
    table.addRow({"held-out energy savings",
                  util::TablePrinter::pct(ec.energy_savings),
                  util::TablePrinter::pct(ef.energy_savings)});
    table.print(std::cout);

    std::cout << "\nfederated uploads "
              << util::TablePrinter::num(
                     static_cast<double>(central.cost.uploaded_bytes) /
                         static_cast<double>(
                             std::max<uint64_t>(
                                 1, fed.cost.uploaded_bytes)),
                     1)
              << "x less raw data and shrinks the serial selection "
                 "job by "
              << util::TablePrinter::num(
                     static_cast<double>(
                         central.cost.selection_records) /
                         static_cast<double>(std::max<uint64_t>(
                             1, fed.cost.selection_records)),
                     1)
              << "x\n";
    return 0;
}
