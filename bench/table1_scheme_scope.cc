/**
 * @file
 * Table I: what each scheme can optimize in the example game event
 * handler — a sequence of CPU functions interleaved with IP
 * invocations. Max CPU can only reuse the repeated CPU functions,
 * Max IP only the IP invocations, SNIP snips the entire end-to-end
 * execution. Demonstrated quantitatively on one AB Evolution drag
 * handler execution under each scheme.
 */

#include <iostream>
#include <unordered_map>

#include "bench/bench_common.h"
#include "util/bytes.h"
#include "util/table_printer.h"

using namespace snip;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Table I: optimization scope per scheme",
        "Table I — prior works optimize CPUFunc_i or IP_i alone; "
        "SNIP short-circuits the whole event");

    bench::ProfiledGame pg = bench::profileGame("ab_evolution", opts);

    // Pick a representative drag execution that repeats (so every
    // scheme has the opportunity to act on its second occurrence).
    const games::HandlerExecution *sample = nullptr;
    {
        std::unordered_map<uint64_t, int> seen;
        for (const auto &rec : pg.profile.records) {
            if (rec.type != events::EventType::Drag)
                continue;
            if (++seen[rec.necessary_hash] >= 2 && !rec.useless) {
                sample = &rec;
                break;
            }
        }
    }
    if (!sample) {
        std::cout << "no repeating drag execution found\n";
        return 0;
    }

    double cpu_minstr =
        static_cast<double>(sample->cpu_instructions) / 1e6;
    double ip_units = sample->ipWorkUnits();
    uint64_t mem = sample->memory_bytes;

    std::cout << "handler execution under study: drag event, "
              << util::TablePrinter::num(cpu_minstr, 1)
              << " M instructions across nested functions, "
              << util::TablePrinter::num(ip_units, 1)
              << " IP work units ("
              << sample->ip_calls.size() << " accelerator calls), "
              << util::formatSize(static_cast<double>(mem))
              << " memory traffic\n\n";

    util::TablePrinter table({"scheme", "CPU functions skipped",
                              "IP invocations skipped",
                              "outputs from table"});
    auto pct_cpu = [&](double f) {
        return util::TablePrinter::pct(f) + " (" +
               util::TablePrinter::num(cpu_minstr * f, 1) + " M)";
    };
    table.addRow({"Baseline", pct_cpu(0.0), "0%", "no"});
    table.addRow({"Max CPU [3,14,42]",
                  pct_cpu(sample->maxcpu_fraction), "0%", "no"});
    table.addRow({"Max IP [43]", pct_cpu(0.0), "100% (on repeat)",
                  "no"});
    table.addRow({"SNIP", pct_cpu(1.0), "100%", "yes"});
    table.print(std::cout);

    std::cout <<
        "\nexample code shape (paper Table I):\n"
        "  onDragEvent(e):\n"
        "    ctx   = CPUFunc1(e, state)        <- Max CPU reuses\n"
        "    phys  = CPUFunc2(ctx)             <- Max CPU reuses\n"
        "    frame = IP_gpu(phys)              <- Max IP skips\n"
        "    IP_display(frame)                 <- Max IP skips\n"
        "    state = CPUFunc3(phys)            <- Max CPU reuses\n"
        "  SNIP: entire onDragEvent() replaced by table outputs\n";
    return 0;
}
