/**
 * @file
 * Microbenchmarks (google-benchmark) of the SNIP runtime hot path:
 * MemoTable lookup (hash + candidate compare) and insert, across
 * table sizes, plus the handler-execution ground-truth computation
 * the simulator performs per event.
 *
 * The lookup benchmarks run single- and multi-threaded against ONE
 * shared const table (the concurrency contract the simulator's
 * parallel session runner relies on) and report:
 *   - items_per_second per thread count (the scaling trajectory);
 *   - allocs_per_iter, counted by a global counting allocator, to
 *     prove the scratch-based hit path does zero heap allocations.
 *
 * Unless the caller passes its own --benchmark_out, results are
 * also written as JSON to BENCH_micro_lookup.json.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "core/memo_table.h"
#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "trace/recorder.h"

using namespace snip;

// ------------------------------------------------ counting allocator
// Global operator new/delete instrumentation: cheap relaxed atomic,
// good enough to assert "zero allocations per lookup" on the hot
// path (any alloc anywhere in the process inflates the count, which
// only makes the zero-allocation claim stronger).
//
// GCC flags malloc-backed replacement allocators as mismatched with
// the deletes it inlines elsewhere in the TU; the pair below is
// consistent (new->malloc, delete->free), so silence it.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<uint64_t> g_allocs{0};
}

void *
operator new(size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, size_t) noexcept { std::free(p); }
void operator delete[](void *p, size_t) noexcept { std::free(p); }

namespace {

/** Shared fixture: a profiled game + deployed model. */
struct Fixture {
    std::unique_ptr<games::Game> game;
    trace::Profile profile;
    core::SnipModel model;
    std::vector<events::EventObject> events;

    Fixture()
    {
        game = games::makeGame("ab_evolution");
        core::BaselineScheme baseline;
        core::SimulationConfig cfg;
        cfg.duration_s = 60.0;
        cfg.record_events = true;
        core::SessionResult res =
            core::runSession(*game, baseline, cfg);
        auto replica = games::makeGame("ab_evolution");
        profile = trace::Replayer::replay(res.trace, *replica);
        core::SnipConfig scfg;
        model = core::buildSnipModel(profile, *game, scfg);
        events = res.trace.events;
        game->reset();
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

/**
 * The hot path as the runtime drives it: per-caller scratch, shared
 * const table, shared const game (all reads). With ->Threads(N),
 * N threads hammer the same table concurrently; items_per_second is
 * the aggregate lookup throughput.
 */
void
BM_MemoTableLookup(benchmark::State &state)
{
    Fixture &f = fixture();
    const core::MemoTable &table = *f.model.table;
    const games::Game &game = *f.game;
    core::LookupScratch scratch;
    // Stride the event stream by thread so threads don't walk in
    // lockstep; warm the scratch before counting allocations.
    size_t i = static_cast<size_t>(state.thread_index()) * 7919;
    core::MemoLookup warm =
        table.lookup(f.events[i % f.events.size()], game, scratch);
    benchmark::DoNotOptimize(warm);

    uint64_t hits = 0;
    uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
    for (auto _ : state) {
        const auto &ev = f.events[i++ % f.events.size()];
        core::MemoLookup res = table.lookup(ev, game, scratch);
        hits += res.hit;
        benchmark::DoNotOptimize(res);
    }
    uint64_t allocs =
        g_allocs.load(std::memory_order_relaxed) - allocs_before;
    // Per-thread rates: averaged (not summed) across threads.
    state.counters["hit_rate"] = benchmark::Counter(
        static_cast<double>(hits) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
    state.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(allocs) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoTableLookup)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void
BM_MemoTableInsert(benchmark::State &state)
{
    Fixture &f = fixture();
    core::MemoTable table(f.game->schema());
    for (const auto &t : f.model.types)
        table.setSelected(t.type, t.selection.selected);
    size_t i = 0;
    for (auto _ : state) {
        table.insert(f.profile.records[i++ % f.profile.records.size()]);
    }
    state.counters["entries"] =
        static_cast<double>(table.entryCount());
}
BENCHMARK(BM_MemoTableInsert);

void
BM_HandlerProcess(benchmark::State &state)
{
    Fixture &f = fixture();
    size_t i = 0;
    for (auto _ : state) {
        games::HandlerExecution ex =
            f.game->process(f.events[i++ % f.events.size()]);
        benchmark::DoNotOptimize(ex);
    }
}
BENCHMARK(BM_HandlerProcess);

void
BM_EventGeneration(benchmark::State &state)
{
    Fixture &f = fixture();
    util::Rng rng(42);
    double now = 0.0;
    for (auto _ : state) {
        events::EventObject ev =
            f.game->makeEvent(events::EventType::Drag, now, rng);
        now += 0.01;
        benchmark::DoNotOptimize(ev);
    }
}
BENCHMARK(BM_EventGeneration);

}  // namespace

int
main(int argc, char **argv)
{
    // Default to also emitting machine-readable JSON (the BENCH_*
    // trajectory file) unless the caller picked an output already.
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--benchmark_out", 15) == 0)
            has_out = true;
    std::vector<char *> args(argv, argv + argc);
    std::string out_flag = "--benchmark_out=BENCH_micro_lookup.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int args_argc = static_cast<int>(args.size());
    benchmark::Initialize(&args_argc, args.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
