/**
 * @file
 * Microbenchmarks (google-benchmark) of the SNIP runtime hot path:
 * MemoTable lookup (hash + candidate compare) and insert, across
 * table sizes, plus the handler-execution ground-truth computation
 * the simulator performs per event.
 *
 * The lookup benchmarks run single- and multi-threaded against ONE
 * shared const table (the concurrency contract the simulator's
 * parallel session runner relies on) and report:
 *   - items_per_second per thread count (the scaling trajectory);
 *   - allocs_per_iter, counted by a thread-local counting
 *     allocator, to prove the scratch-based hit path does zero heap
 *     allocations on every thread (a global counter would blame one
 *     thread's bookkeeping allocations on another's timed window);
 *   - BM_FrozenTableLookup vs BM_MemoTableLookup side by side: the
 *     same event stream against the deployed flat arena and the
 *     mutable build-side table.
 *
 * The binary is also a self-check: it exits nonzero if any lookup
 * thread allocated during its timed loop, or if the frozen and
 * mutable layouts disagree on any hit/miss, candidate count,
 * bytes_scanned, or matched output over the fixture's event stream.
 *
 * Unless the caller passes its own --benchmark_out, results are
 * also written as JSON to BENCH_micro_lookup.json.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "core/frozen_table.h"
#include "core/memo_table.h"
#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "trace/recorder.h"

using namespace snip;

// ------------------------------------------------ counting allocator
// operator new/delete instrumentation with a THREAD-LOCAL counter:
// each benchmark thread reads only its own allocation count, so one
// thread's post-loop bookkeeping (google-benchmark's counter maps,
// thread teardown) can never land inside another thread's timed
// window — the failure mode that made the multi-threaded runs
// report spurious nonzero allocs_per_iter with a global counter.
//
// GCC flags malloc-backed replacement allocators as mismatched with
// the deletes it inlines elsewhere in the TU; the pair below is
// consistent (new->malloc, delete->free), so silence it.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
thread_local uint64_t t_allocs = 0;
/** Lookup threads that allocated inside their timed loop. */
std::atomic<uint64_t> g_alloc_violations{0};
}

void *
operator new(size_t size)
{
    ++t_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t size)
{
    ++t_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, size_t) noexcept { std::free(p); }
void operator delete[](void *p, size_t) noexcept { std::free(p); }

namespace {

/** Shared fixture: a profiled game + deployed model, both layouts. */
struct Fixture {
    std::unique_ptr<games::Game> game;
    trace::Profile profile;
    core::SnipModel model;
    std::shared_ptr<const core::FrozenTable> frozen;
    std::vector<events::EventObject> events;
    size_t max_selected = 0;

    Fixture()
    {
        game = games::makeGame("ab_evolution");
        core::BaselineScheme baseline;
        core::SimulationConfig cfg;
        cfg.duration_s = 60.0;
        cfg.record_events = true;
        core::SessionResult res =
            core::runSession(*game, baseline, cfg);
        auto replica = games::makeGame("ab_evolution");
        profile = trace::Replayer::replay(res.trace, *replica);
        core::SnipConfig scfg;
        model = core::buildSnipModel(profile, *game, scfg);
        frozen = model.table->freeze();
        events = res.trace.events;
        for (const auto &t : model.types)
            max_selected = std::max(max_selected,
                                    t.selection.selected.size());
        game->reset();
    }

    /** Scratch pre-sized to the widest selection: lookups against
     *  either layout then resize within capacity (no allocation). */
    core::LookupScratch sizedScratch() const
    {
        core::LookupScratch s;
        s.values.reserve(max_selected);
        s.present.reserve(max_selected);
        return s;
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

/**
 * The hot path as the runtime drives it: per-caller scratch, shared
 * const table, shared const game (all reads). With ->Threads(N),
 * N threads hammer the same table concurrently; items_per_second is
 * the aggregate lookup throughput.
 */
void
BM_MemoTableLookup(benchmark::State &state)
{
    Fixture &f = fixture();
    const core::MemoTable &table = *f.model.table;
    const games::Game &game = *f.game;
    // Pre-size the scratch to the widest selection and stride the
    // event stream by thread so threads don't walk in lockstep.
    core::LookupScratch scratch = f.sizedScratch();
    size_t i = static_cast<size_t>(state.thread_index()) * 7919;
    core::MemoLookup warm =
        table.lookup(f.events[i % f.events.size()], game, scratch);
    benchmark::DoNotOptimize(warm);

    uint64_t hits = 0;
    uint64_t allocs_before = t_allocs;
    for (auto _ : state) {
        const auto &ev = f.events[i++ % f.events.size()];
        core::MemoLookup res = table.lookup(ev, game, scratch);
        hits += res.hit;
        benchmark::DoNotOptimize(res);
    }
    uint64_t allocs = t_allocs - allocs_before;
    if (allocs != 0)
        g_alloc_violations.fetch_add(1, std::memory_order_relaxed);
    // Per-thread rates: averaged (not summed) across threads.
    state.counters["hit_rate"] = benchmark::Counter(
        static_cast<double>(hits) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
    state.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(allocs) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoTableLookup)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/** Same workload against the deployed flat arena. */
void
BM_FrozenTableLookup(benchmark::State &state)
{
    Fixture &f = fixture();
    const core::FrozenTable &table = *f.frozen;
    const games::Game &game = *f.game;
    core::LookupScratch scratch = f.sizedScratch();
    size_t i = static_cast<size_t>(state.thread_index()) * 7919;
    core::FrozenLookup warm =
        table.lookup(f.events[i % f.events.size()], game, scratch);
    benchmark::DoNotOptimize(warm);

    uint64_t hits = 0;
    uint64_t allocs_before = t_allocs;
    for (auto _ : state) {
        const auto &ev = f.events[i++ % f.events.size()];
        core::FrozenLookup res = table.lookup(ev, game, scratch);
        hits += res.hit;
        benchmark::DoNotOptimize(res);
    }
    uint64_t allocs = t_allocs - allocs_before;
    if (allocs != 0)
        g_alloc_violations.fetch_add(1, std::memory_order_relaxed);
    state.counters["hit_rate"] = benchmark::Counter(
        static_cast<double>(hits) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
    state.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(allocs) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FrozenTableLookup)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void
BM_MemoTableInsert(benchmark::State &state)
{
    Fixture &f = fixture();
    core::MemoTable table(f.game->schema());
    for (const auto &t : f.model.types)
        table.setSelected(t.type, t.selection.selected);
    size_t i = 0;
    for (auto _ : state) {
        table.insert(f.profile.records[i++ % f.profile.records.size()]);
    }
    state.counters["entries"] =
        static_cast<double>(table.entryCount());
}
BENCHMARK(BM_MemoTableInsert);

void
BM_HandlerProcess(benchmark::State &state)
{
    Fixture &f = fixture();
    size_t i = 0;
    for (auto _ : state) {
        games::HandlerExecution ex =
            f.game->process(f.events[i++ % f.events.size()]);
        benchmark::DoNotOptimize(ex);
    }
}
BENCHMARK(BM_HandlerProcess);

void
BM_EventGeneration(benchmark::State &state)
{
    Fixture &f = fixture();
    util::Rng rng(42);
    double now = 0.0;
    for (auto _ : state) {
        events::EventObject ev =
            f.game->makeEvent(events::EventType::Drag, now, rng);
        now += 0.01;
        benchmark::DoNotOptimize(ev);
    }
}
BENCHMARK(BM_EventGeneration);

}  // namespace

int
main(int argc, char **argv)
{
    // Default to also emitting machine-readable JSON (the BENCH_*
    // trajectory file) unless the caller picked an output already.
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--benchmark_out", 15) == 0)
            has_out = true;
    std::vector<char *> args(argv, argv + argc);
    std::string out_flag = "--benchmark_out=BENCH_micro_lookup.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int args_argc = static_cast<int>(args.size());
    benchmark::Initialize(&args_argc, args.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Self-check 1: no lookup thread may have allocated inside its
    // timed loop, at any thread count.
    uint64_t alloc_violations =
        g_alloc_violations.load(std::memory_order_relaxed);
    if (alloc_violations != 0)
        std::fprintf(stderr,
                     "FAIL: %llu lookup thread(s) allocated during "
                     "the timed loop\n",
                     static_cast<unsigned long long>(alloc_violations));

    // Self-check 2: the frozen and mutable layouts must make
    // bitwise-identical decisions — hit/miss, candidates scanned,
    // bytes charged, and matched outputs — over the whole fixture
    // event stream.
    Fixture &f = fixture();
    core::LookupScratch ms = f.sizedScratch();
    core::LookupScratch fs = f.sizedScratch();
    uint64_t mismatches = 0;
    for (const auto &ev : f.events) {
        core::MemoLookup mres = f.model.table->lookup(ev, *f.game, ms);
        core::FrozenLookup fres = f.frozen->lookup(ev, *f.game, fs);
        bool same = mres.hit == fres.hit &&
                    mres.candidates == fres.candidates &&
                    mres.bytes_scanned == fres.bytes_scanned;
        if (same && mres.hit) {
            same = mres.entry->outputs.size() == fres.nout;
            for (uint32_t o = 0; same && o < fres.nout; ++o)
                same = mres.entry->outputs[o].id == fres.out_ids[o] &&
                       mres.entry->outputs[o].value ==
                           fres.out_values[o];
        }
        if (!same)
            ++mismatches;
    }
    if (mismatches != 0)
        std::fprintf(stderr,
                     "FAIL: frozen vs mutable lookup disagreed on "
                     "%llu of %zu events\n",
                     static_cast<unsigned long long>(mismatches),
                     f.events.size());
    else
        std::fprintf(stderr,
                     "equivalence: frozen == mutable over %zu events "
                     "(hits, candidates, bytes, outputs)\n",
                     f.events.size());
    return (alloc_violations != 0 || mismatches != 0) ? 1 : 0;
}
