/**
 * @file
 * Microbenchmarks (google-benchmark) of the SNIP runtime hot path:
 * MemoTable lookup (hash + candidate compare) and insert, across
 * table sizes, plus the handler-execution ground-truth computation
 * the simulator performs per event.
 *
 * The lookup benchmarks run single- and multi-threaded against ONE
 * shared const table (the concurrency contract the simulator's
 * parallel session runner relies on) and report:
 *   - items_per_second per thread count (the scaling trajectory);
 *   - allocs_per_iter, counted by a thread-local counting
 *     allocator, to prove the scratch-based hit path does zero heap
 *     allocations on every thread (a global counter would blame one
 *     thread's bookkeeping allocations on another's timed window);
 *   - BM_FrozenTableLookup vs BM_MemoTableLookup side by side: the
 *     same event stream against the deployed flat arena and the
 *     mutable build-side table.
 *
 * The binary is also a self-check: it exits nonzero if any lookup
 * thread allocated during its timed loop, or if the frozen and
 * mutable layouts disagree on any hit/miss, candidate count,
 * bytes_scanned, or matched output over the fixture's event stream.
 *
 * Unless the caller passes its own --benchmark_out, results are
 * also written as JSON to BENCH_micro_lookup.json.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/frozen_table.h"
#include "core/memo_table.h"
#include "core/scheme.h"
#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "trace/recorder.h"
#include "util/parallel.h"

using namespace snip;

// ------------------------------------------------ counting allocator
// operator new/delete instrumentation with a THREAD-LOCAL counter:
// each benchmark thread reads only its own allocation count, so one
// thread's post-loop bookkeeping (google-benchmark's counter maps,
// thread teardown) can never land inside another thread's timed
// window — the failure mode that made the multi-threaded runs
// report spurious nonzero allocs_per_iter with a global counter.
//
// GCC flags malloc-backed replacement allocators as mismatched with
// the deletes it inlines elsewhere in the TU; the pair below is
// consistent (new->malloc, delete->free), so silence it.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
thread_local uint64_t t_allocs = 0;
/** Lookup threads that allocated inside their timed loop. */
std::atomic<uint64_t> g_alloc_violations{0};
}

void *
operator new(size_t size)
{
    ++t_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t size)
{
    ++t_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, size_t) noexcept { std::free(p); }
void operator delete[](void *p, size_t) noexcept { std::free(p); }

namespace {

/** Shared fixture: a profiled game + deployed model, both layouts. */
struct Fixture {
    std::unique_ptr<games::Game> game;
    trace::Profile profile;
    core::SnipModel model;
    std::shared_ptr<const core::FrozenTable> frozen;
    std::vector<events::EventObject> events;
    size_t max_selected = 0;

    Fixture()
    {
        game = games::makeGame("ab_evolution");
        core::BaselineScheme baseline;
        core::SimulationConfig cfg;
        cfg.duration_s = 60.0;
        cfg.record_events = true;
        core::SessionResult res =
            core::runSession(*game, baseline, cfg);
        auto replica = games::makeGame("ab_evolution");
        profile = trace::Replayer::replay(res.trace, *replica);
        core::SnipConfig scfg;
        model = core::buildSnipModel(profile, *game, scfg);
        frozen = model.table->freeze();
        events = res.trace.events;
        for (const auto &t : model.types)
            max_selected = std::max(max_selected,
                                    t.selection.selected.size());
        game->reset();
    }

    /** Scratch pre-sized to the widest selection: lookups against
     *  either layout then resize within capacity (no allocation). */
    core::LookupScratch sizedScratch() const
    {
        core::LookupScratch s;
        s.values.reserve(max_selected);
        s.present.reserve(max_selected);
        return s;
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

/**
 * The hot path as the runtime drives it: per-caller scratch, shared
 * const table, shared const game (all reads). With ->Threads(N),
 * N threads hammer the same table concurrently; items_per_second is
 * the aggregate lookup throughput.
 */
void
BM_MemoTableLookup(benchmark::State &state)
{
    Fixture &f = fixture();
    const core::MemoTable &table = *f.model.table;
    const games::Game &game = *f.game;
    // Pre-size the scratch to the widest selection and stride the
    // event stream by thread so threads don't walk in lockstep.
    core::LookupScratch scratch = f.sizedScratch();
    size_t i = static_cast<size_t>(state.thread_index()) * 7919;
    core::MemoLookup warm =
        table.lookup(f.events[i % f.events.size()], game, scratch);
    benchmark::DoNotOptimize(warm);

    uint64_t hits = 0;
    uint64_t allocs_before = t_allocs;
    for (auto _ : state) {
        const auto &ev = f.events[i++ % f.events.size()];
        core::MemoLookup res = table.lookup(ev, game, scratch);
        hits += res.hit;
        benchmark::DoNotOptimize(res);
    }
    uint64_t allocs = t_allocs - allocs_before;
    if (allocs != 0)
        g_alloc_violations.fetch_add(1, std::memory_order_relaxed);
    // Per-thread rates: averaged (not summed) across threads.
    state.counters["hit_rate"] = benchmark::Counter(
        static_cast<double>(hits) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
    state.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(allocs) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoTableLookup)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/** Same workload against the deployed flat arena. */
void
BM_FrozenTableLookup(benchmark::State &state)
{
    Fixture &f = fixture();
    const core::FrozenTable &table = *f.frozen;
    const games::Game &game = *f.game;
    core::LookupScratch scratch = f.sizedScratch();
    size_t i = static_cast<size_t>(state.thread_index()) * 7919;
    core::FrozenLookup warm =
        table.lookup(f.events[i % f.events.size()], game, scratch);
    benchmark::DoNotOptimize(warm);

    uint64_t hits = 0;
    uint64_t allocs_before = t_allocs;
    for (auto _ : state) {
        const auto &ev = f.events[i++ % f.events.size()];
        core::FrozenLookup res = table.lookup(ev, game, scratch);
        hits += res.hit;
        benchmark::DoNotOptimize(res);
    }
    uint64_t allocs = t_allocs - allocs_before;
    if (allocs != 0)
        g_alloc_violations.fetch_add(1, std::memory_order_relaxed);
    state.counters["hit_rate"] = benchmark::Counter(
        static_cast<double>(hits) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
    state.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(allocs) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FrozenTableLookup)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/**
 * Batched hot path: the same stream drained block-at-a-time through
 * FrozenTable::lookupBatch (type grouping + index prefetch +
 * column-wise key compare). ns/item is the amortized per-event cost;
 * the Arg is the block size. Single-threaded: the batch path's win
 * is per-core, the scaling story is the scalar bench's.
 */
void
BM_FrozenTableLookupBatch(benchmark::State &state)
{
    Fixture &f = fixture();
    const core::FrozenTable &table = *f.frozen;
    const games::Game &game = *f.game;
    const size_t batch = static_cast<size_t>(state.range(0));
    const size_t n = f.events.size();
    core::BatchLookupScratch scratch;
    scratch.gather = f.sizedScratch();
    std::vector<core::FrozenLookup> out(batch);
    // Warm over the whole stream once so every scratch vector
    // reaches its high-water capacity before the timed loop.
    for (size_t w = 0; w + batch <= n; w += batch)
        table.lookupBatch({f.events.data() + w, batch}, game,
                          {out.data(), batch}, scratch);

    uint64_t hits = 0;
    size_t i = 0;
    uint64_t allocs_before = t_allocs;
    for (auto _ : state) {
        if (i + batch > n)
            i = 0;
        table.lookupBatch({f.events.data() + i, batch}, game,
                          {out.data(), batch}, scratch);
        i += batch;
        for (size_t k = 0; k < batch; ++k)
            hits += out[k].hit;
        benchmark::DoNotOptimize(out.data());
    }
    uint64_t allocs = t_allocs - allocs_before;
    if (allocs != 0)
        g_alloc_violations.fetch_add(1, std::memory_order_relaxed);
    state.counters["hit_rate"] = benchmark::Counter(
        static_cast<double>(hits) /
            static_cast<double>(state.iterations() * batch),
        benchmark::Counter::kAvgThreads);
    state.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(allocs) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(batch));
}
BENCHMARK(BM_FrozenTableLookupBatch)->Arg(16)->Arg(64)->Arg(256);

void
BM_MemoTableInsert(benchmark::State &state)
{
    Fixture &f = fixture();
    core::MemoTable table(f.game->schema());
    for (const auto &t : f.model.types)
        table.setSelected(t.type, t.selection.selected);
    size_t i = 0;
    for (auto _ : state) {
        table.insert(f.profile.records[i++ % f.profile.records.size()]);
    }
    state.counters["entries"] =
        static_cast<double>(table.entryCount());
}
BENCHMARK(BM_MemoTableInsert);

void
BM_HandlerProcess(benchmark::State &state)
{
    Fixture &f = fixture();
    size_t i = 0;
    for (auto _ : state) {
        games::HandlerExecution ex =
            f.game->process(f.events[i++ % f.events.size()]);
        benchmark::DoNotOptimize(ex);
    }
}
BENCHMARK(BM_HandlerProcess);

void
BM_EventGeneration(benchmark::State &state)
{
    Fixture &f = fixture();
    util::Rng rng(42);
    double now = 0.0;
    for (auto _ : state) {
        events::EventObject ev =
            f.game->makeEvent(events::EventType::Drag, now, rng);
        now += 0.01;
        benchmark::DoNotOptimize(ev);
    }
}
BENCHMARK(BM_EventGeneration);

// ------------------------------------------------ parallel dispatch

/** Fan-out used by both dispatch benches (explicit, so SNIP_THREADS
 *  and the container's core count don't change what is measured). */
constexpr unsigned kDispatchThreads = 4;

/**
 * The verbatim pre-pool util::parallelFor engine: spawn and join
 * fresh std::threads per call. Kept here (not in the library) as
 * the dispatch-latency baseline for BM_ParallelDispatch.
 */
void
spawnParallelFor(size_t n, const std::function<void(size_t)> &fn,
                 unsigned threads)
{
    unsigned workers =
        static_cast<unsigned>(std::min<size_t>(threads, n));
    std::atomic<size_t> next{0};
    auto body = [&] {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(body);
    body();
    for (auto &t : pool)
        t.join();
}

/**
 * ns/dispatch of a small-n parallel loop on the persistent pool.
 * Each iteration is one complete parallelFor (submit + drain +
 * wind-down); the body is a token so the measurement is dispatch
 * latency, not compute. The caller thread must not allocate per
 * dispatch — Job is stack-resident, the callable is a FunctionRef,
 * and tickets ride preallocated rings — so allocs_per_iter feeds
 * the binary's alloc self-check like the lookup benches.
 */
void
BM_ParallelDispatch(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    std::atomic<uint64_t> sink{0};
    auto body = [&](size_t i) {
        sink.fetch_add(i + 1, std::memory_order_relaxed);
    };
    // Warm the pool: worker spawn is a one-time cost by design and
    // must not land in the timed loop (or the alloc counter).
    util::parallelFor(n, body, kDispatchThreads);
    uint64_t allocs_before = t_allocs;
    for (auto _ : state) {
        util::parallelFor(n, body, kDispatchThreads);
    }
    uint64_t allocs = t_allocs - allocs_before;
    if (allocs != 0)
        g_alloc_violations.fetch_add(1, std::memory_order_relaxed);
    state.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(allocs) /
        static_cast<double>(state.iterations()));
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ParallelDispatch)->Arg(4)->Arg(64)->UseRealTime();

/** The same loop on the old spawn-per-call engine, for the ratio. */
void
BM_ParallelDispatchSpawn(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    std::atomic<uint64_t> sink{0};
    auto body = [&](size_t i) {
        sink.fetch_add(i + 1, std::memory_order_relaxed);
    };
    for (auto _ : state) {
        spawnParallelFor(n, body, kDispatchThreads);
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ParallelDispatchSpawn)->Arg(4)->Arg(64)->UseRealTime();

}  // namespace

int
main(int argc, char **argv)
{
    // Default to also emitting machine-readable JSON (the BENCH_*
    // trajectory file) unless the caller picked an output already.
    // `--batch N` (ours, stripped before google-benchmark sees it)
    // registers an extra BM_FrozenTableLookupBatch block size.
    bool has_out = false;
    bool check_pipeline = false;
    long extra_batch = 0;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
            extra_batch = std::strtol(argv[++i], nullptr, 0);
            if (extra_batch <= 0) {
                std::fprintf(stderr, "--batch requires a positive "
                                     "block size\n");
                return 1;
            }
            continue;
        }
        if (std::strcmp(argv[i], "--pipeline") == 0) {
            check_pipeline = true;
            continue;
        }
        if (std::strncmp(argv[i], "--benchmark_out", 15) == 0)
            has_out = true;
        args.push_back(argv[i]);
    }
    if (extra_batch > 0)
        benchmark::RegisterBenchmark("BM_FrozenTableLookupBatch",
                                     BM_FrozenTableLookupBatch)
            ->Arg(extra_batch);
    std::string out_flag = "--benchmark_out=BENCH_micro_lookup.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int args_argc = static_cast<int>(args.size());
    benchmark::Initialize(&args_argc, args.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Self-check 1: no lookup thread may have allocated inside its
    // timed loop, at any thread count.
    uint64_t alloc_violations =
        g_alloc_violations.load(std::memory_order_relaxed);
    if (alloc_violations != 0)
        std::fprintf(stderr,
                     "FAIL: %llu lookup thread(s) allocated during "
                     "the timed loop\n",
                     static_cast<unsigned long long>(alloc_violations));

    // Self-check 2: the frozen and mutable layouts must make
    // bitwise-identical decisions — hit/miss, candidates scanned,
    // bytes charged, and matched outputs — over the whole fixture
    // event stream.
    Fixture &f = fixture();
    core::LookupScratch ms = f.sizedScratch();
    core::LookupScratch fs = f.sizedScratch();
    uint64_t mismatches = 0;
    for (const auto &ev : f.events) {
        core::MemoLookup mres = f.model.table->lookup(ev, *f.game, ms);
        core::FrozenLookup fres = f.frozen->lookup(ev, *f.game, fs);
        bool same = mres.hit == fres.hit &&
                    mres.candidates == fres.candidates &&
                    mres.bytes_scanned == fres.bytes_scanned;
        if (same && mres.hit) {
            same = mres.entry->outputs.size() == fres.nout;
            for (uint32_t o = 0; same && o < fres.nout; ++o)
                same = mres.entry->outputs[o].id == fres.out_ids[o] &&
                       mres.entry->outputs[o].value ==
                           fres.out_values[o];
        }
        if (!same)
            ++mismatches;
    }
    if (mismatches != 0)
        std::fprintf(stderr,
                     "FAIL: frozen vs mutable lookup disagreed on "
                     "%llu of %zu events\n",
                     static_cast<unsigned long long>(mismatches),
                     f.events.size());
    else
        std::fprintf(stderr,
                     "equivalence: frozen == mutable over %zu events "
                     "(hits, candidates, bytes, outputs)\n",
                     f.events.size());

    // Self-check 3: the batched paths must be bitwise-identical to
    // the scalar ones. (a) lookupBatch vs per-event lookup over
    // every window of the stream (including the ragged tail);
    // (b) SnipScheme::decideBatch vs the scalar decide/observe
    // protocol, with the audit watchdog and online fill live.
    uint64_t batch_mismatches = 0;
    {
        const size_t kBatch = 32;
        core::BatchLookupScratch bs;
        bs.gather = f.sizedScratch();
        core::LookupScratch ss = f.sizedScratch();
        std::vector<core::FrozenLookup> bout(kBatch);
        for (size_t base = 0; base < f.events.size();
             base += kBatch) {
            size_t len =
                std::min(kBatch, f.events.size() - base);
            f.frozen->lookupBatch({f.events.data() + base, len},
                                  *f.game, {bout.data(), len}, bs);
            for (size_t k = 0; k < len; ++k) {
                core::FrozenLookup sres = f.frozen->lookup(
                    f.events[base + k], *f.game, ss);
                const core::FrozenLookup &bres = bout[k];
                bool same = sres.hit == bres.hit &&
                            sres.candidates == bres.candidates &&
                            sres.bytes_scanned == bres.bytes_scanned &&
                            sres.entry_ordinal == bres.entry_ordinal &&
                            sres.nout == bres.nout;
                for (uint32_t o = 0; same && o < sres.nout; ++o)
                    same = sres.out_ids[o] == bres.out_ids[o] &&
                           sres.out_values[o] == bres.out_values[o];
                if (!same)
                    ++batch_mismatches;
            }
        }
    }
    {
        core::SnipRuntimeConfig rcfg;
        rcfg.online_fill = true;
        rcfg.audit_every = 4;
        core::SnipScheme scalar(f.model, rcfg);
        core::SnipScheme batched(f.model, rcfg);
        const size_t kBlock = 32;
        std::vector<core::Decision> bdec(kBlock);
        size_t nrec =
            std::min(f.events.size(), f.profile.records.size());
        for (size_t base = 0; base < nrec; base += kBlock) {
            size_t len = std::min(kBlock, nrec - base);
            batched.prepareBatch({f.events.data() + base, len});
            batched.decideBatch(
                *f.game, {f.events.data() + base, len},
                {f.profile.records.data() + base, len},
                {bdec.data(), len});
            for (size_t k = 0; k < len; ++k) {
                core::Decision sd = scalar.decide(
                    *f.game, f.events[base + k],
                    f.profile.records[base + k]);
                if (!sd.shortcircuit)
                    scalar.observe(f.profile.records[base + k]);
                const core::Decision &bd = bdec[k];
                bool same =
                    sd.shortcircuit == bd.shortcircuit &&
                    sd.outputs == bd.outputs &&
                    sd.cpu_skip_fraction == bd.cpu_skip_fraction &&
                    sd.skip_ips == bd.skip_ips &&
                    sd.lookup_bytes == bd.lookup_bytes &&
                    sd.lookup_candidates == bd.lookup_candidates &&
                    sd.charge_lookup == bd.charge_lookup &&
                    sd.lookup_ran == bd.lookup_ran &&
                    sd.lookup_hit == bd.lookup_hit &&
                    sd.audited == bd.audited;
                if (!same)
                    ++batch_mismatches;
            }
        }
        if (scalar.hitCounts() != batched.hitCounts() ||
            scalar.auditsRun() != batched.auditsRun() ||
            scalar.auditsFailed() != batched.auditsFailed() ||
            scalar.tableClears() != batched.tableClears() ||
            scalar.overlayEntries() != batched.overlayEntries())
            ++batch_mismatches;
    }
    if (batch_mismatches != 0)
        std::fprintf(stderr,
                     "FAIL: batched vs scalar paths diverged on "
                     "%llu checks\n",
                     static_cast<unsigned long long>(
                         batch_mismatches));
    else
        std::fprintf(stderr,
                     "equivalence: lookupBatch == lookup and "
                     "decideBatch == decide/observe over %zu "
                     "events\n",
                     f.events.size());

    // Self-check 4 (--pipeline): a whole session through the staged
    // pipeline runtime must be bitwise-identical to the sequential
    // loop — stats and per-component energy — across worker counts
    // and queue capacities.
    uint64_t pipeline_mismatches = 0;
    if (check_pipeline) {
        auto run = [&](bool pipelined, unsigned workers,
                       uint32_t capacity) {
            auto game = games::makeGame("ab_evolution");
            core::SnipRuntimeConfig rcfg;
            rcfg.audit_every = 8;
            core::SnipScheme scheme(f.model, rcfg);
            core::SimulationConfig cfg;
            cfg.duration_s = 20.0;
            cfg.seed = 99;
            cfg.pipeline.enabled = pipelined;
            cfg.pipeline.workers = workers;
            cfg.pipeline.queue_capacity = capacity;
            return core::runSession(*game, scheme, cfg);
        };
        core::SessionResult seq = run(false, 0, 0);
        struct {
            unsigned workers;
            uint32_t capacity;
        } combos[] = {{1, 1}, {2, 4}, {3, 16}};
        for (const auto &c : combos) {
            core::SessionResult pip =
                run(true, c.workers, c.capacity);
            bool same =
                pip.stats.events == seq.stats.events &&
                pip.stats.shortcircuits == seq.stats.shortcircuits &&
                pip.stats.instr_total == seq.stats.instr_total &&
                pip.stats.instr_skipped == seq.stats.instr_skipped &&
                pip.stats.lookup_bytes == seq.stats.lookup_bytes &&
                pip.stats.lookup_energy_j ==
                    seq.stats.lookup_energy_j &&
                pip.stats.erroneous_shortcircuits ==
                    seq.stats.erroneous_shortcircuits &&
                pip.stats.output_fields_wrong ==
                    seq.stats.output_fields_wrong &&
                pip.report.total() == seq.report.total() &&
                pip.report.components().size() ==
                    seq.report.components().size();
            for (size_t k = 0;
                 same && k < seq.report.components().size(); ++k)
                same = pip.report.components()[k].dynamic_j ==
                           seq.report.components()[k].dynamic_j &&
                       pip.report.components()[k].static_j ==
                           seq.report.components()[k].static_j;
            if (!same)
                ++pipeline_mismatches;
        }
        if (pipeline_mismatches != 0)
            std::fprintf(stderr,
                         "FAIL: pipelined session diverged from "
                         "sequential on %llu of %zu configs\n",
                         static_cast<unsigned long long>(
                             pipeline_mismatches),
                         std::size(combos));
        else
            std::fprintf(stderr,
                         "equivalence: pipelined session == "
                         "sequential (stats + energy) across %zu "
                         "worker/queue configs\n",
                         std::size(combos));
    }
    // Self-check 5: warm pool dispatch must beat spawn-per-call
    // decisively. The acceptance bar is 10x; the runtime gate is 5x
    // to keep CI robust against scheduler noise on small containers
    // (the measured ratio on this hardware is far above both).
    uint64_t dispatch_fail = 0;
    {
        const size_t kN = 4;
        const int kReps = 5000;
        std::atomic<uint64_t> sink{0};
        auto body = [&](size_t i) {
            sink.fetch_add(i + 1, std::memory_order_relaxed);
        };
        util::parallelFor(kN, body, kDispatchThreads);  // warm
        auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < kReps; ++r)
            util::parallelFor(kN, body, kDispatchThreads);
        auto t1 = std::chrono::steady_clock::now();
        for (int r = 0; r < kReps; ++r)
            spawnParallelFor(kN, body, kDispatchThreads);
        auto t2 = std::chrono::steady_clock::now();
        double pool_ns =
            std::chrono::duration<double, std::nano>(t1 - t0)
                .count() / kReps;
        double spawn_ns =
            std::chrono::duration<double, std::nano>(t2 - t1)
                .count() / kReps;
        double ratio = pool_ns > 0 ? spawn_ns / pool_ns : 0.0;
        if (ratio < 5.0) {
            ++dispatch_fail;
            std::fprintf(stderr,
                         "FAIL: pool dispatch only %.1fx faster "
                         "than spawn-per-call (%.0f vs %.0f "
                         "ns/dispatch, need >= 5x)\n",
                         ratio, pool_ns, spawn_ns);
        } else {
            std::fprintf(stderr,
                         "dispatch: pool %.0f ns vs spawn %.0f ns "
                         "per parallelFor (%.1fx)\n",
                         pool_ns, spawn_ns, ratio);
        }
        benchmark::DoNotOptimize(sink);
    }
    return (alloc_violations != 0 || mismatches != 0 ||
            batch_mismatches != 0 || pipeline_mismatches != 0 ||
            dispatch_fail != 0)
               ? 1
               : 0;
}
