/**
 * @file
 * Microbenchmarks (google-benchmark) of the SNIP runtime hot path:
 * MemoTable lookup (hash + candidate compare) and insert, across
 * table sizes, plus the handler-execution ground-truth computation
 * the simulator performs per event.
 */

#include <benchmark/benchmark.h>

#include "core/memo_table.h"
#include "core/snip.h"
#include "games/registry.h"
#include "trace/recorder.h"
#include "core/simulation.h"

using namespace snip;

namespace {

/** Shared fixture: a profiled game + deployed model. */
struct Fixture {
    std::unique_ptr<games::Game> game;
    trace::Profile profile;
    core::SnipModel model;
    std::vector<events::EventObject> events;

    Fixture()
    {
        game = games::makeGame("ab_evolution");
        core::BaselineScheme baseline;
        core::SimulationConfig cfg;
        cfg.duration_s = 60.0;
        cfg.record_events = true;
        core::SessionResult res =
            core::runSession(*game, baseline, cfg);
        auto replica = games::makeGame("ab_evolution");
        profile = trace::Replayer::replay(res.trace, *replica);
        core::SnipConfig scfg;
        model = core::buildSnipModel(profile, *game, scfg);
        events = res.trace.events;
        game->reset();
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

void
BM_MemoTableLookup(benchmark::State &state)
{
    Fixture &f = fixture();
    size_t i = 0;
    uint64_t hits = 0;
    for (auto _ : state) {
        const auto &ev = f.events[i++ % f.events.size()];
        core::MemoLookup res = f.model.table->lookup(ev, *f.game);
        hits += res.hit;
        benchmark::DoNotOptimize(res);
    }
    state.counters["hit_rate"] = benchmark::Counter(
        static_cast<double>(hits) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_MemoTableLookup);

void
BM_MemoTableInsert(benchmark::State &state)
{
    Fixture &f = fixture();
    core::MemoTable table(f.game->schema());
    for (const auto &t : f.model.types)
        table.setSelected(t.type, t.selection.selected);
    size_t i = 0;
    for (auto _ : state) {
        table.insert(f.profile.records[i++ % f.profile.records.size()]);
    }
    state.counters["entries"] =
        static_cast<double>(table.entryCount());
}
BENCHMARK(BM_MemoTableInsert);

void
BM_HandlerProcess(benchmark::State &state)
{
    Fixture &f = fixture();
    size_t i = 0;
    for (auto _ : state) {
        games::HandlerExecution ex =
            f.game->process(f.events[i++ % f.events.size()]);
        benchmark::DoNotOptimize(ex);
    }
}
BENCHMARK(BM_HandlerProcess);

void
BM_EventGeneration(benchmark::State &state)
{
    Fixture &f = fixture();
    util::Rng rng(42);
    double now = 0.0;
    for (auto _ : state) {
        events::EventObject ev =
            f.game->makeEvent(events::EventType::Drag, now, rng);
        now += 0.01;
        benchmark::DoNotOptimize(ev);
    }
}
BENCHMARK(BM_EventGeneration);

}  // namespace

BENCHMARK_MAIN();
