/**
 * @file
 * The sensor-level alternative the paper examines and rejects
 * (§II-C): running sensors in a low-fidelity mode saves sampling
 * energy, but sensors are < 10% of SoC energy to begin with, so
 * even a free halving of all sensor/sampling energy moves the
 * needle by well under a percent — whole-SoC event snipping is
 * where the energy is. This bench quantifies that argument.
 */

#include <iostream>

#include "bench/bench_common.h"
#include "util/table_printer.h"

using namespace snip;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Ablation: low-fidelity sensors vs SNIP",
        "§II-C — sensor-level optimization cannot matter; the "
        "energy is in the whole-SoC event processing");

    util::TablePrinter table({"game", "baseline", "low-fi sensors",
                              "sensor saving", "SNIP saving"});

    // Each game's profile + three evaluation sessions form one
    // independent task; the catalog runs in parallel.
    const auto &names = games::allGameNames();
    struct Row {
        std::string display;
        double e_base = 0.0, e_lofi = 0.0, e_snip = 0.0;
    };
    std::vector<Row> rows(names.size());
    opts.runner().forEach(names.size(), [&](size_t i) {
        bench::ProfiledGame pg = bench::profileGame(names[i], opts);
        core::SimulationConfig ecfg = bench::evalConfig(opts);
        Row &row = rows[i];
        row.display = pg.game->displayName();

        core::BaselineScheme b1;
        row.e_base = core::runSession(*pg.game, b1, ecfg)
                         .report.total();

        // Low-fidelity mode: halve sensor sampling and camera
        // capture energy (an optimistic bound on [13]-style
        // sensor optimization).
        core::SimulationConfig lofi = ecfg;
        lofi.model.sensor_sample_j *= 0.5;
        lofi.model.camera_frame_j *= 0.5;
        core::BaselineScheme b2;
        row.e_lofi =
            core::runSession(*pg.game, b2, lofi).report.total();

        core::SnipModel model = bench::buildModel(pg, opts);
        core::SnipScheme snip(model);
        row.e_snip = core::runSession(*pg.game, snip, ecfg)
                         .report.total();
    });

    for (const Row &row : rows) {
        table.addRow({row.display,
                      util::formatEnergy(row.e_base),
                      util::formatEnergy(row.e_lofi),
                      util::TablePrinter::pct(
                          1.0 - row.e_lofi / row.e_base, 2),
                      util::TablePrinter::pct(
                          1.0 - row.e_snip / row.e_base, 1)});
    }
    table.print(std::cout);
    std::cout << "\n(paper §II-C: \"the drawback ... is that our "
                 "workloads do not consume much energy at the "
                 "sensors itself\")\n";
    return 0;
}
