/**
 * @file
 * Fig. 6: the impracticality of the naive union-of-locations lookup
 * table — table size (input-only and input+output rows) versus the
 * % of execution it can short-circuit, for AB Evolution. Paper
 * anchors: ~5 GB at 1% coverage, exceeds 6 GB memory at ~3%, and
 * 64 GB SD-card capacity at ~39%.
 */

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "core/lookup_table.h"
#include "util/bytes.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

using namespace snip;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Fig. 6: naive lookup-table size vs execution coverage",
        "Fig. 6 — 5 GB @ 1%, > memory (6 GB) @ 3%, > SD card "
        "(64 GB) @ 39% for AB Evolution");

    // Long trace: the naive table only gains coverage as records
    // accumulate, which is exactly the point of the figure.
    double secs = opts.quick ? 300.0 : 1500.0;
    bench::ProfiledGame pg =
        bench::profileGame("ab_evolution", opts, secs);
    core::NaiveTableAnalysis naive(pg.profile, pg.game->schema(), 48);

    std::cout << "row size: input-only "
              << util::formatSize(
                     static_cast<double>(naive.rowInputBytes()))
              << ", input+output "
              << util::formatSize(
                     static_cast<double>(naive.rowTotalBytes()))
              << " (union of all locations)\n\n";

    util::TablePrinter table({"coverage", "entries", "input-only",
                              "input+output"});
    std::unique_ptr<util::CsvWriter> csv;
    std::ofstream csv_file;
    if (!opts.csv_path.empty()) {
        csv_file.open(opts.csv_path);
        csv = std::make_unique<util::CsvWriter>(
            csv_file, std::vector<std::string>{
                          "coverage", "entries", "input_bytes",
                          "input_output_bytes"});
    }

    double last_cov = -1.0;
    for (const auto &p : naive.curve()) {
        if (p.coverage - last_cov < 0.01 &&
            &p != &naive.curve().back())
            continue;  // compact the printed curve
        last_cov = p.coverage;
        table.addRow({util::TablePrinter::pct(p.coverage),
                      std::to_string(p.entries),
                      util::formatSize(
                          static_cast<double>(p.input_bytes)),
                      util::formatSize(static_cast<double>(
                          p.input_output_bytes))});
        if (csv) {
            csv->row({std::to_string(p.coverage),
                      std::to_string(p.entries),
                      std::to_string(p.input_bytes),
                      std::to_string(p.input_output_bytes)});
        }
    }
    table.print(std::cout);

    const double kGb = 1024.0 * 1024.0 * 1024.0;
    uint64_t at1 = naive.bytesForCoverage(0.01);
    std::cout << "\ntable at 1% coverage: "
              << (at1 ? util::formatSize(static_cast<double>(at1))
                      : std::string("(not reached)"))
              << "  [paper: ~5 GB]\n";
    std::cout << "exceeds 6 GB memory at coverage: ";
    bool found = false;
    for (const auto &p : naive.curve()) {
        if (static_cast<double>(p.input_output_bytes) > 6 * kGb) {
            std::cout << util::TablePrinter::pct(p.coverage)
                      << "  [paper: ~3%]\n";
            found = true;
            break;
        }
    }
    if (!found)
        std::cout << "(not reached in this trace)\n";
    std::cout << "final coverage "
              << util::TablePrinter::pct(naive.finalCoverage())
              << " needs "
              << util::formatSize(static_cast<double>(
                     naive.curve().back().input_output_bytes))
              << "  [paper: 39% needs 64 GB]\n";
    return 0;
}
