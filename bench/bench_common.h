/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses: the
 * canonical profile -> model -> evaluation flow with the default
 * durations and seeds every bench uses, plus CSV dumping.
 *
 * Every bench accepts:
 *   --quick          shorter sessions (CI-friendly)
 *   --csv <path>     also dump the series as CSV
 *   --seed <n>       override the default seed
 *   --threads <n>    session-level worker threads (default: all
 *                    cores, or SNIP_THREADS); results are bitwise
 *                    independent of the thread count
 *   --obs-json <path> export the bench's snip::obs metrics registry
 *                    (lookup hit/miss, erroneous-shortcircuit
 *                    classes, per-Shrink-phase wall times, ...) as
 *                    JSON; benches that don't populate a registry
 *                    ignore it
 *   --trace-cache <dir> reuse baseline recordings across runs as
 *                    mmap'd columnar traces (see BenchOptions;
 *                    default: $SNIP_TRACE_CACHE)
 */

#ifndef SNIP_BENCH_BENCH_COMMON_H
#define SNIP_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <memory>
#include <string>

#include "core/parallel_runner.h"
#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "obs/sink.h"
#include "trace/recorder.h"

namespace snip {
namespace bench {

/** Common command-line options. */
struct BenchOptions {
    bool quick = false;
    std::string csv_path;
    uint64_t seed = 77;
    /** Worker threads for independent sessions (0 = default). */
    unsigned threads = 0;
    /** Export the bench's obs registry as JSON here (empty = off). */
    std::string obs_json;
    /**
     * Directory of cached baseline traces in the binary columnar
     * format (empty = record every run). profileGame() keys files by
     * game/seed/duration, so a cache hit replays the mmap'd columnar
     * trace instead of re-running the recording session; a miss
     * records as usual and writes the cache entry. Defaults to the
     * SNIP_TRACE_CACHE environment variable.
     */
    std::string trace_cache;
    /**
     * Run evaluation sessions through the staged pipeline runtime
     * (core::Pipeline) instead of the sequential loop. Results are
     * bitwise identical; with --obs-json the registry additionally
     * carries the `pipeline.*` stage metrics.
     */
    bool pipeline = false;
    /**
     * Epoch-count override for the continuous-learning benches
     * (0 = the bench's default). Used by CI to run a short fixed
     * number of epochs when checking per-epoch invariants (e.g.
     * that `pool.threads_spawned` stays flat across epochs).
     */
    unsigned epochs = 0;

    /** Profiling session length (s). */
    double profileSeconds() const { return quick ? 90.0 : 300.0; }
    /** Evaluation session length (s). */
    double evalSeconds() const { return quick ? 30.0 : 60.0; }

    /** Session-parallel runner configured by --threads. */
    core::ParallelRunner runner() const
    {
        return core::ParallelRunner(threads);
    }
};

/** Parse the common options; fatal() on unknown arguments. */
BenchOptions parseOptions(int argc, char **argv);

/** A game together with its recorded profile. */
struct ProfiledGame {
    std::unique_ptr<games::Game> game;
    trace::Profile profile;
};

/**
 * Run a baseline profiling session of @p game_name, replay it on a
 * replica (the offline-emulator step), and return both.
 *
 * @param profile_s Session length; <= 0 uses opts.profileSeconds().
 */
ProfiledGame profileGame(const std::string &game_name,
                         const BenchOptions &opts,
                         double profile_s = 0.0);

/**
 * Profile every catalog game (one parallel task per game), returned
 * in games::allGameNames() order. Identical to calling profileGame()
 * serially for each name.
 */
std::vector<ProfiledGame> profileAllGames(const BenchOptions &opts,
                                          double profile_s = 0.0);

/**
 * Build the deployable SNIP model for a profiled game using the
 * game's recommended developer overrides (paper §V-B Option 1).
 * @p obs, when set, receives the Shrink-phase spans and counters.
 */
core::SnipModel buildModel(const ProfiledGame &pg,
                           const BenchOptions &opts,
                           obs::Registry *obs = nullptr);

/**
 * Write @p reg to opts.obs_json when the flag was given (no-op
 * otherwise); fatal() on I/O failure.
 */
void writeObsJson(const obs::Registry &reg, const BenchOptions &opts);

/** Evaluation-session config with the bench defaults. */
core::SimulationConfig evalConfig(const BenchOptions &opts);

/** Print the standard bench header line. */
void printHeader(const std::string &title, const std::string &paper_ref);

}  // namespace bench
}  // namespace snip

#endif  // SNIP_BENCH_BENCH_COMMON_H
