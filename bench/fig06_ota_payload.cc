/**
 * @file
 * OTA payload companion to Fig. 6/9: the figure's argument is that
 * the naive union-of-locations table is gigabytes while the
 * PFI-trimmed deployable model is a headline ~kB-scale over-the-air
 * payload. This bench materializes both as actual serialized bytes
 * (core/model_codec.h) — a trimmed model and an untrimmed model
 * whose per-type "necessary" set is every input location — and
 * emits the comparison as JSON for downstream tooling.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "core/model_codec.h"
#include "util/bytes.h"

using namespace snip;

namespace {

/** A model that skips PFI: every input location is "necessary". */
core::SnipModel
buildUntrimmedModel(const bench::ProfiledGame &pg)
{
    core::SnipModel model;
    model.game = pg.game->name();
    model.table =
        std::make_unique<core::MemoTable>(pg.game->schema());

    std::vector<events::FieldId> all_inputs;
    for (const auto &d : pg.game->schema().defs())
        if (d.side == events::FieldSide::Input)
            all_inputs.push_back(d.id);

    for (events::EventType t : pg.profile.typesPresent()) {
        model.table->setSelected(t, all_inputs);
        core::TypeModel tm;
        tm.type = t;
        tm.records = pg.profile.ofType(t).size();
        tm.selection.selected = all_inputs;
        for (events::FieldId fid : all_inputs)
            tm.selection.selected_bytes +=
                pg.game->schema().def(fid).size_bytes;
        model.types.push_back(std::move(tm));
    }
    for (const auto &rec : pg.profile.records)
        model.table->insert(rec);
    return model;
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Fig. 6/9 companion: OTA payload bytes, trimmed vs untrimmed",
        "paper: PFI trims the deployable table to a ~kB-scale OTA "
        "payload; untrimmed tables are orders of magnitude larger");

    const char *game_name = "ab_evolution";
    bench::ProfiledGame pg = bench::profileGame(game_name, opts);

    core::SnipModel trimmed = bench::buildModel(pg, opts);
    core::SnipModel untrimmed = buildUntrimmedModel(pg);

    uint64_t trimmed_wire = core::packedModelBytes(trimmed);
    uint64_t untrimmed_wire = core::packedModelBytes(untrimmed);

    std::printf(
        "{\"bench\":\"fig06_ota_payload\",\"game\":\"%s\","
        "\"profile_records\":%zu,"
        "\"trimmed\":{\"payload_bytes\":%llu,\"entries\":%zu,"
        "\"modeled_table_bytes\":%llu,\"selected_bytes\":%llu},"
        "\"untrimmed\":{\"payload_bytes\":%llu,\"entries\":%zu,"
        "\"modeled_table_bytes\":%llu,\"selected_bytes\":%llu},"
        "\"wire_reduction\":%.2f}\n",
        game_name, pg.profile.records.size(),
        static_cast<unsigned long long>(trimmed_wire),
        trimmed.table->entryCount(),
        static_cast<unsigned long long>(trimmed.table->totalBytes()),
        static_cast<unsigned long long>(trimmed.selectedBytes()),
        static_cast<unsigned long long>(untrimmed_wire),
        untrimmed.table->entryCount(),
        static_cast<unsigned long long>(
            untrimmed.table->totalBytes()),
        static_cast<unsigned long long>(untrimmed.selectedBytes()),
        trimmed_wire
            ? static_cast<double>(untrimmed_wire) /
                  static_cast<double>(trimmed_wire)
            : 0.0);
    return 0;
}
