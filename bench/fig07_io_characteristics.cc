/**
 * @file
 * Fig. 7: input/output characteristics of event processing for
 * AB Evolution — per-category size spreads and occurrence rates.
 * Paper anchors: In.Event 2-640 B fixed-size (53% of executions...
 * consumed by all), In.History 600 B-119 kB (47%), In.Extern
 * < 0.05% of executions but ~1 MB when read; Out.Temp < 64 B.
 */

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "trace/field_stats.h"
#include "util/bytes.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

using namespace snip;

namespace {

void
addCategoryRow(util::TablePrinter &table, const std::string &name,
               const util::EmpiricalCdf &cdf, double presence)
{
    if (cdf.count() == 0) {
        table.addRow({name, "-", "-", "-", "-",
                      util::TablePrinter::pct(presence)});
        return;
    }
    table.addRow({name,
                  util::formatSize(cdf.minValue()),
                  util::formatSize(cdf.quantile(0.5)),
                  util::formatSize(cdf.quantile(0.95)),
                  util::formatSize(cdf.maxValue()),
                  util::TablePrinter::pct(presence)});
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Fig. 7: input/output size characteristics (AB Evolution)",
        "Fig. 7a/b — In.Event 2-640 B, In.History 600 B-119 kB, "
        "In.Extern ~1 MB in <0.05% of executions; Out.Temp < 64 B");

    bench::ProfiledGame pg = bench::profileGame("ab_evolution", opts);
    trace::FieldStatistics stats(pg.profile, pg.game->schema());

    util::TablePrinter table({"category", "min", "median", "p95",
                              "max", "% executions"});
    addCategoryRow(table, "In.Event", stats.inEventSizes(),
                   stats.inEventPresence());
    addCategoryRow(table, "In.History", stats.inHistorySizes(),
                   stats.inHistoryPresence());
    addCategoryRow(table, "In.Extern", stats.inExternSizes(),
                   stats.inExternPresence());
    auto out_presence = [&](const util::EmpiricalCdf &cdf) {
        return static_cast<double>(cdf.count()) /
               static_cast<double>(stats.recordCount());
    };
    addCategoryRow(table, "Out.Temp", stats.outTempSizes(),
                   out_presence(stats.outTempSizes()));
    addCategoryRow(table, "Out.History", stats.outHistorySizes(),
                   out_presence(stats.outHistorySizes()));
    addCategoryRow(table, "Out.Extern", stats.outExternSizes(),
                   out_presence(stats.outExternSizes()));
    table.print(std::cout);

    std::cout << "\noutput redundancy: "
              << util::TablePrinter::pct(
                     stats.outputRedundancyFraction())
              << " of state-changing executions produce an output "
                 "set seen before\n";

    if (!opts.csv_path.empty()) {
        std::ofstream csv_file(opts.csv_path);
        util::CsvWriter csv(csv_file,
                            {"category", "quantile", "bytes"});
        auto dump = [&](const char *name,
                        const util::EmpiricalCdf &cdf) {
            if (cdf.count() == 0)
                return;
            for (double q = 0.05; q <= 1.0001; q += 0.05) {
                csv.row({name, std::to_string(q),
                         std::to_string(cdf.quantile(q))});
            }
        };
        dump("in_event", stats.inEventSizes());
        dump("in_history", stats.inHistorySizes());
        dump("in_extern", stats.inExternSizes());
        dump("out_temp", stats.outTempSizes());
        dump("out_history", stats.outHistorySizes());
        dump("out_extern", stats.outExternSizes());
    }
    return 0;
}
