/**
 * @file
 * Tests for the OTA model codec (core/model_codec.h): byte-identical
 * serialization round-trips, bitwise-identical runtime behaviour of
 * a shipped model, and — the safety half of the format — rejection
 * of truncated, bit-flipped, and crafted-malicious packages without
 * ever aborting. Includes the corruption fuzz smoke that tools/ci.sh
 * runs under sanitizers (gtest filter: ModelCodec*Fuzz*).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/model_codec.h"
#include "core/scheme.h"
#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "trace/recorder.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace snip {
namespace core {
namespace {

/** Record + replay + PFI-select: a deployable model for @p game. */
SnipModel
buildModelFor(const std::string &game_name, double secs,
              uint64_t seed)
{
    auto game = games::makeGame(game_name);
    BaselineScheme baseline;
    SimulationConfig cfg;
    cfg.duration_s = secs;
    cfg.record_events = true;
    cfg.seed = seed;
    SessionResult res = runSession(*game, baseline, cfg);
    auto replica = games::makeGame(game_name);
    trace::Profile profile =
        trace::Replayer::replay(res.trace, *replica);
    SnipConfig scfg;
    scfg.overrides.force_keep = game->params().recommended_overrides;
    return buildSnipModel(profile, *game, scfg);
}

util::ByteBuffer
copyOf(const util::ByteBuffer &src)
{
    util::ByteBuffer out;
    out.putBytes(src.data().data(), src.size());
    return out;
}

/** Wrap @p payload in a well-formed envelope with a correct CRC. */
util::ByteBuffer
envelope(const util::ByteBuffer &payload,
         uint32_t version = kModelVersion)
{
    util::ByteBuffer pkg;
    pkg.putU32(kModelMagic);
    pkg.putU32(version);
    pkg.putU32(static_cast<uint32_t>(payload.size()));
    pkg.putBytes(payload.data().data(), payload.size());
    pkg.putU32(util::crc32(payload.data().data(), payload.size()));
    return pkg;
}

TEST(ModelCodecTest, RoundTripIsByteIdentical)
{
    // The property the OTA pipeline relies on:
    // pack(unpack(pack(m))) == pack(m), byte for byte, across games
    // and seeds (canonical entry order makes this hold despite the
    // unordered bucket map).
    for (const char *game : {"colorphun", "greenwall"}) {
        for (uint64_t seed : {7ull, 4242ull}) {
            SnipModel model = buildModelFor(game, 20.0, seed);
            ASSERT_TRUE(model.table != nullptr);
            ASSERT_GT(model.table->entryCount(), 0u);

            util::ByteBuffer first;
            packModel(model, first);

            util::Result<SnipModel> back = unpackModel(first);
            ASSERT_TRUE(back.ok()) << back.status().message();

            util::ByteBuffer second;
            packModel(back.value(), second);
            EXPECT_EQ(first.data(), second.data())
                << game << " seed " << seed;
        }
    }
}

TEST(ModelCodecTest, RoundTripPreservesModelContents)
{
    SnipModel model = buildModelFor("ab_evolution", 20.0, 99);
    util::ByteBuffer pkg;
    packModel(model, pkg);
    util::Result<SnipModel> back = unpackModel(pkg);
    ASSERT_TRUE(back.ok()) << back.status().message();

    const SnipModel &m = back.value();
    EXPECT_EQ(m.game, model.game);
    ASSERT_EQ(m.types.size(), model.types.size());
    for (size_t i = 0; i < m.types.size(); ++i) {
        EXPECT_EQ(m.types[i].type, model.types[i].type);
        EXPECT_EQ(m.types[i].records, model.types[i].records);
        EXPECT_EQ(m.types[i].selection.selected,
                  model.types[i].selection.selected);
        EXPECT_EQ(m.types[i].selection.selected_bytes,
                  model.types[i].selection.selected_bytes);
        EXPECT_EQ(m.types[i].selection.selected_error,
                  model.types[i].selection.selected_error);
        EXPECT_EQ(m.types[i].selection.full_error,
                  model.types[i].selection.full_error);
    }
    ASSERT_TRUE(m.table != nullptr);
    EXPECT_EQ(m.table->entryCount(), model.table->entryCount());
    EXPECT_EQ(m.table->totalBytes(), model.table->totalBytes());
    EXPECT_EQ(m.selectedBytes(), model.selectedBytes());
}

TEST(ModelCodecTest, ShippedModelRunsBitwiseIdentical)
{
    // Deploying the unpacked model must behave exactly like keeping
    // the in-memory original: same short-circuits, same energy, to
    // the last bit.
    SnipModel original = buildModelFor("colorphun", 20.0, 1234);
    util::ByteBuffer pkg;
    packModel(original, pkg);
    util::Result<SnipModel> shipped = unpackModel(pkg);
    ASSERT_TRUE(shipped.ok()) << shipped.status().message();

    SimulationConfig cfg;
    cfg.duration_s = 20.0;
    cfg.seed = 777;

    auto game_a = games::makeGame("colorphun");
    SnipScheme scheme_a(original);
    SessionResult a = runSession(*game_a, scheme_a, cfg);

    auto game_b = games::makeGame("colorphun");
    SnipScheme scheme_b(shipped.value());
    SessionResult b = runSession(*game_b, scheme_b, cfg);

    EXPECT_GT(a.stats.shortcircuits, 0u);
    EXPECT_EQ(a.stats.events, b.stats.events);
    EXPECT_EQ(a.stats.shortcircuits, b.stats.shortcircuits);
    EXPECT_EQ(a.stats.instr_total, b.stats.instr_total);
    EXPECT_EQ(a.stats.instr_skipped, b.stats.instr_skipped);
    EXPECT_EQ(a.stats.lookup_bytes, b.stats.lookup_bytes);
    EXPECT_EQ(a.stats.lookup_candidates, b.stats.lookup_candidates);
    EXPECT_EQ(a.stats.erroneous_shortcircuits,
              b.stats.erroneous_shortcircuits);
    EXPECT_EQ(a.stats.output_fields_wrong,
              b.stats.output_fields_wrong);
    // Doubles compared with ==: bitwise-identical arithmetic.
    EXPECT_EQ(a.stats.ip_work_skipped, b.stats.ip_work_skipped);
    EXPECT_EQ(a.stats.lookup_energy_j, b.stats.lookup_energy_j);
    EXPECT_EQ(a.report.total(), b.report.total());
}

TEST(ModelCodecTest, SaveLoadRoundTrip)
{
    SnipModel model = buildModelFor("greenwall", 10.0, 5);
    std::string path =
        ::testing::TempDir() + "/snip_model_codec_test.snpm";
    ASSERT_TRUE(saveModel(model, path).ok());
    util::Result<SnipModel> loaded = loadModel(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_EQ(packedModelBytes(loaded.value()),
              packedModelBytes(model));
    std::remove(path.c_str());

    EXPECT_FALSE(loadModel("/nonexistent/dir/m.snpm").ok());
    EXPECT_FALSE(saveModel(model, "/nonexistent/dir/m.snpm").ok());
}

TEST(ModelCodecTest, InspectReportsHeaderAndCrc)
{
    SnipModel model = buildModelFor("greenwall", 10.0, 6);
    util::ByteBuffer pkg;
    packModel(model, pkg);

    PackageInfo info;
    ASSERT_TRUE(inspectPackage(pkg, &info).ok());
    EXPECT_EQ(info.version, kModelVersion);
    EXPECT_EQ(info.payload_bytes + 16u, pkg.size());
    EXPECT_TRUE(info.crc_ok);

    // Flip a payload byte: inspect still reads the header but flags
    // the CRC; unpack rejects.
    util::ByteBuffer bad = copyOf(pkg);
    const_cast<std::vector<uint8_t> &>(bad.data())[12 + 3] ^= 0x10;
    PackageInfo bad_info;
    ASSERT_TRUE(inspectPackage(bad, &bad_info).ok());
    EXPECT_FALSE(bad_info.crc_ok);
    util::Result<SnipModel> r = unpackModel(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("CRC"), std::string::npos);
}

TEST(ModelCodecTest, TruncationRejectedAtEveryPrefix)
{
    SnipModel model = buildModelFor("colorphun", 10.0, 8);
    util::ByteBuffer pkg;
    packModel(model, pkg);
    ASSERT_GT(pkg.size(), 64u);

    for (size_t len = 0; len < pkg.size(); len += 1 + len / 9) {
        util::ByteBuffer cut;
        cut.putBytes(pkg.data().data(), len);
        util::Result<SnipModel> r = unpackModel(cut);
        EXPECT_FALSE(r.ok()) << "prefix " << len;
    }
}

TEST(ModelCodecTest, EveryBitFlipRejected)
{
    // Any single-bit flip lands in the magic, version, length,
    // payload (CRC-protected), or the CRC footer itself — all of
    // which unpack must detect.
    SnipModel model = buildModelFor("greenwall", 10.0, 9);
    util::ByteBuffer pkg;
    packModel(model, pkg);

    for (size_t pos = 0; pos < pkg.size(); pos += 1 + pos / 13) {
        for (uint8_t bit : {0, 4, 7}) {
            util::ByteBuffer flipped = copyOf(pkg);
            const_cast<std::vector<uint8_t> &>(
                flipped.data())[pos] ^=
                static_cast<uint8_t>(1u << bit);
            util::Result<SnipModel> r = unpackModel(flipped);
            EXPECT_FALSE(r.ok())
                << "byte " << pos << " bit " << int(bit);
        }
    }
}

TEST(ModelCodecTest, VersionMismatchRejected)
{
    util::ByteBuffer payload;  // empty model payload
    payload.putString("");
    payload.putU32(0);  // schema fields
    payload.putU32(0);  // type models
    payload.putU8(0);   // no table

    util::ByteBuffer ok_pkg = envelope(payload);
    EXPECT_TRUE(unpackModel(ok_pkg).ok());

    util::ByteBuffer future = envelope(payload, kModelVersion + 1);
    util::Result<SnipModel> r = unpackModel(future);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("version"),
              std::string::npos);
}

TEST(ModelCodecTest, ValidCrcBadContentRejected)
{
    // Integrity checks passing must not imply acceptance: a payload
    // with a correct CRC but malformed content (here: an event type
    // beyond the enum range) is still rejected.
    util::ByteBuffer payload;
    payload.putString("g");
    payload.putU32(1);  // one schema field
    payload.putString("f");
    payload.putU8(0);   // input side
    payload.putU8(0);
    payload.putU32(4);
    payload.putU32(1);    // one type model
    payload.putU8(0xee);  // invalid event type
    util::ByteBuffer pkg = envelope(payload);
    util::Result<SnipModel> r = unpackModel(pkg);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("type"), std::string::npos);
}

TEST(ModelCodecTest, TrailingPayloadBytesRejected)
{
    util::ByteBuffer payload;
    payload.putString("");
    payload.putU32(0);
    payload.putU32(0);
    payload.putU8(0);
    payload.putU32(0xabadcafe);  // junk past a complete payload
    util::ByteBuffer pkg = envelope(payload);
    util::Result<SnipModel> r = unpackModel(pkg);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("trailing"),
              std::string::npos);
}

TEST(ModelCodecTest, GarbageCountsDoNotOverAllocate)
{
    // A CRC-correct payload claiming 2^32-1 schema fields must be
    // rejected by the remaining-bytes bound, not by reserving GBs.
    util::ByteBuffer payload;
    payload.putString("g");
    payload.putU32(0xffffffffu);
    util::ByteBuffer pkg = envelope(payload);
    util::Result<SnipModel> r = unpackModel(pkg);
    EXPECT_FALSE(r.ok());
}

TEST(ModelCodecTest, RejectedPackageFallsBackToBaseline)
{
    // The deploy contract: a corrupt package yields an error — the
    // device keeps running at baseline (full execution, zero
    // short-circuits), it never crashes or ships a garbage table.
    SnipModel model = buildModelFor("colorphun", 10.0, 11);
    util::ByteBuffer pkg;
    packModel(model, pkg);
    util::ByteBuffer cut;
    cut.putBytes(pkg.data().data(), pkg.size() / 2);

    util::Result<SnipModel> shipped = unpackModel(cut);
    ASSERT_FALSE(shipped.ok());

    auto game = games::makeGame("colorphun");
    BaselineScheme baseline;
    SimulationConfig cfg;
    cfg.duration_s = 10.0;
    cfg.seed = 11;
    SessionResult res = runSession(*game, baseline, cfg);
    EXPECT_GT(res.stats.events, 0u);
    EXPECT_EQ(res.stats.shortcircuits, 0u);
}

TEST(ModelCodecTest, V1PackageStillLoads)
{
    // Fleets upgrade gradually: a legacy v1 package (per-entry table
    // wire format) must still unpack on the server and deploy on the
    // device (rebuild + freeze). There is no v1 encoder any more, so
    // hand-craft the payload.
    auto game = games::makeGame("colorphun");
    std::vector<events::FieldId> selected =
        game->necessaryInputIds(events::EventType::Touch);
    std::sort(selected.begin(), selected.end());
    util::Rng rng(31337);
    std::vector<games::HandlerExecution> recs;
    std::vector<events::EventObject> evs;
    for (int i = 0; i < 8; ++i) {
        events::EventObject ev =
            game->makeEvent(events::EventType::Touch, 0.0, rng);
        evs.push_back(ev);
        recs.push_back(game->process(ev));
    }

    util::ByteBuffer payload;
    payload.putString("colorphun");
    const events::FieldSchema &schema = game->schema();
    payload.putU32(static_cast<uint32_t>(schema.size()));
    for (const auto &d : schema.defs()) {
        payload.putString(d.name);
        payload.putU8(static_cast<uint8_t>(d.side));
        payload.putU8(d.side == events::FieldSide::Input
                          ? static_cast<uint8_t>(d.in_cat)
                          : static_cast<uint8_t>(d.out_cat));
        payload.putU32(d.size_bytes);
    }
    payload.putU32(0);  // no per-type metadata
    payload.putU8(1);   // has table
    payload.putU32(1);  // one deployed type
    payload.putU8(static_cast<uint8_t>(events::EventType::Touch));
    payload.putU32(static_cast<uint32_t>(selected.size()));
    for (events::FieldId fid : selected)
        payload.putU32(fid);
    payload.putU32(static_cast<uint32_t>(recs.size()));
    for (const auto &rec : recs) {
        payload.putU32(static_cast<uint32_t>(rec.inputs.size()));
        for (const auto &fv : rec.inputs) {
            payload.putU32(fv.id);
            payload.putU64(fv.value);
        }
        payload.putU32(static_cast<uint32_t>(rec.outputs.size()));
        for (const auto &fv : rec.outputs) {
            payload.putU32(fv.id);
            payload.putU64(fv.value);
        }
    }
    util::ByteBuffer pkg = envelope(payload, kLegacyModelVersion);

    util::Result<SnipModel> r = unpackModel(pkg);
    ASSERT_TRUE(r.ok()) << r.status().message();
    ASSERT_TRUE(r.value().table != nullptr);
    EXPECT_GT(r.value().table->entryCount(), 0u);
    // The most recent record matches the game's current state.
    MemoLookup hit = r.value().table->lookup(evs.back(), *game);
    EXPECT_TRUE(hit.hit);

    auto shared_pkg = std::make_shared<util::ByteBuffer>(copyOf(pkg));
    util::Result<SnipModel> dep = deployModel(shared_pkg);
    ASSERT_TRUE(dep.ok()) << dep.status().message();
    ASSERT_TRUE(dep.value().frozen != nullptr);
    // v1 deploys via rebuild: the arena is built, not borrowed.
    EXPECT_FALSE(dep.value().frozen->zeroCopy());
    EXPECT_EQ(dep.value().frozen->entryCount(),
              r.value().table->entryCount());
}

TEST(ModelCodecTest, DeployModelZeroCopyRunsBitwiseIdentical)
{
    // Device-side deploy: the v2 arena is attached as a validated
    // view over the package bytes — no per-entry rebuild — and runs
    // bit-for-bit like the in-memory original.
    SnipModel original = buildModelFor("colorphun", 20.0, 4321);
    auto pkg = std::make_shared<util::ByteBuffer>();
    packModel(original, *pkg);

    util::Result<SnipModel> dep = deployModel(pkg);
    ASSERT_TRUE(dep.ok()) << dep.status().message();
    ASSERT_TRUE(dep.value().frozen != nullptr);
    EXPECT_TRUE(dep.value().frozen->zeroCopy());
    EXPECT_TRUE(dep.value().table == nullptr);

    SimulationConfig cfg;
    cfg.duration_s = 20.0;
    cfg.seed = 888;

    auto game_a = games::makeGame("colorphun");
    SnipScheme scheme_a(original);
    SessionResult a = runSession(*game_a, scheme_a, cfg);

    auto game_b = games::makeGame("colorphun");
    SnipScheme scheme_b(dep.value());
    SessionResult b = runSession(*game_b, scheme_b, cfg);

    EXPECT_GT(a.stats.shortcircuits, 0u);
    EXPECT_EQ(a.stats.events, b.stats.events);
    EXPECT_EQ(a.stats.shortcircuits, b.stats.shortcircuits);
    EXPECT_EQ(a.stats.instr_skipped, b.stats.instr_skipped);
    EXPECT_EQ(a.stats.lookup_bytes, b.stats.lookup_bytes);
    EXPECT_EQ(a.stats.lookup_candidates, b.stats.lookup_candidates);
    EXPECT_EQ(a.stats.output_fields_wrong,
              b.stats.output_fields_wrong);
    EXPECT_EQ(a.report.total(), b.report.total());
}

TEST(ModelCodecTest, DeployModelCorruptionFuzz)
{
    // The zero-copy deploy path has no rebuild step to trip over
    // garbage, so the arena validation must catch everything the
    // CRC does not: every mutated package comes back as a clean
    // error, never a crash, and clean packages still deploy.
    size_t iters = 64;
    if (const char *env = std::getenv("SNIP_FUZZ_ITERS"))
        iters = static_cast<size_t>(std::strtoull(env, nullptr, 10));

    SnipModel model = buildModelFor("ab_evolution", 15.0, 22);
    util::ByteBuffer pkg;
    packModel(model, pkg);
    ASSERT_GT(pkg.size(), 32u);

    util::Rng rng(0xdeb70cafeULL);
    for (size_t i = 0; i < iters; ++i) {
        auto mutant = std::make_shared<util::ByteBuffer>();
        if (rng.next() % 2 == 0) {
            size_t len = rng.next() % pkg.size();
            mutant->putBytes(pkg.data().data(), len);
        } else {
            *mutant = copyOf(pkg);
            auto &bytes =
                const_cast<std::vector<uint8_t> &>(mutant->data());
            size_t flips = 1 + rng.next() % 8;
            for (size_t f = 0; f < flips; ++f)
                bytes[rng.next() % bytes.size()] ^=
                    static_cast<uint8_t>(1u + rng.next() % 255);
        }
        bool changed = mutant->data() != pkg.data();
        util::Result<SnipModel> r = deployModel(mutant);
        EXPECT_EQ(r.ok(), !changed) << "iteration " << i;
        if (r.ok())
            EXPECT_TRUE(r.value().frozen != nullptr);
    }
}

TEST(ModelCodecTest, CorruptionFuzzSmoke)
{
    // Random truncations and 1-8 byte corruptions, SNIP_FUZZ_ITERS
    // iterations (default 64; tools/ci.sh cranks it up under asan).
    // Every mutation must come back as a clean accept/reject — no
    // aborts, no sanitizer reports.
    size_t iters = 64;
    if (const char *env = std::getenv("SNIP_FUZZ_ITERS"))
        iters = static_cast<size_t>(std::strtoull(env, nullptr, 10));

    SnipModel model = buildModelFor("ab_evolution", 15.0, 21);
    util::ByteBuffer pkg;
    packModel(model, pkg);
    ASSERT_GT(pkg.size(), 32u);

    util::Rng rng(0xf022f022ULL);
    for (size_t i = 0; i < iters; ++i) {
        util::ByteBuffer mutant;
        if (rng.next() % 2 == 0) {
            size_t len = rng.next() % pkg.size();
            mutant.putBytes(pkg.data().data(), len);
        } else {
            mutant = copyOf(pkg);
            auto &bytes =
                const_cast<std::vector<uint8_t> &>(mutant.data());
            size_t flips = 1 + rng.next() % 8;
            for (size_t f = 0; f < flips; ++f)
                bytes[rng.next() % bytes.size()] ^=
                    static_cast<uint8_t>(1u + rng.next() % 255);
        }
        // Multiple flips can land on the same byte and cancel out;
        // only a mutant that actually differs must be rejected.
        bool changed = mutant.data() != pkg.data();
        util::Result<SnipModel> r = unpackModel(mutant);
        EXPECT_EQ(r.ok(), !changed) << "iteration " << i;
    }
}

}  // namespace
}  // namespace core
}  // namespace snip
