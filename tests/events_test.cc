/**
 * @file
 * Unit tests for the event framework: field schemas, event objects,
 * sensors, SensorManager accounting, and the Binder channel.
 */

#include <gtest/gtest.h>

#include <set>

#include "events/binder.h"
#include "events/event.h"
#include "events/field.h"
#include "events/sensor.h"
#include "events/sensor_manager.h"
#include "soc/soc.h"
#include "util/logging.h"

namespace snip {
namespace events {
namespace {

// -------------------------------------------------------- FieldSchema

TEST(FieldSchema, RegistersInputsAndOutputs)
{
    FieldSchema s;
    FieldId a = s.addInput("in.a", InputCategory::Event, 4);
    FieldId b = s.addOutput("out.b", OutputCategory::Temp, 16);
    EXPECT_NE(a, b);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.def(a).name, "in.a");
    EXPECT_EQ(s.def(a).side, FieldSide::Input);
    EXPECT_EQ(s.def(b).out_cat, OutputCategory::Temp);
    EXPECT_EQ(s.find("in.a"), a);
    EXPECT_EQ(s.find("nope"), kInvalidField);
}

TEST(FieldSchema, DuplicateNameFatal)
{
    bool prev = util::setThrowOnError(true);
    FieldSchema s;
    s.addInput("x", InputCategory::Event, 4);
    EXPECT_THROW(s.addInput("x", InputCategory::History, 4),
                 std::runtime_error);
    util::setThrowOnError(prev);
}

TEST(FieldSchema, ZeroSizeFatal)
{
    bool prev = util::setThrowOnError(true);
    FieldSchema s;
    EXPECT_THROW(s.addInput("x", InputCategory::Event, 0),
                 std::runtime_error);
    util::setThrowOnError(prev);
}

TEST(FieldSchema, BytesOf)
{
    FieldSchema s;
    FieldId a = s.addInput("a", InputCategory::Event, 4);
    FieldId b = s.addInput("b", InputCategory::History, 100);
    s.addOutput("c", OutputCategory::Temp, 16);
    std::vector<FieldValue> vals = {{a, 1}, {b, 2}};
    EXPECT_EQ(s.bytesOf(vals), 104u);
    EXPECT_EQ(s.totalInputBytes(), 104u);
    EXPECT_EQ(s.totalOutputBytes(), 16u);
}

TEST(FieldSchema, UnknownIdPanics)
{
    bool prev = util::setThrowOnError(true);
    FieldSchema s;
    EXPECT_THROW(s.def(99), std::runtime_error);
    util::setThrowOnError(prev);
}

TEST(FieldValues, CanonicalizeSorts)
{
    std::vector<FieldValue> v = {{3, 30}, {1, 10}, {2, 20}};
    canonicalize(v);
    EXPECT_EQ(v[0].id, 1u);
    EXPECT_EQ(v[2].id, 3u);
}

TEST(FieldValues, FindField)
{
    std::vector<FieldValue> v = {{1, 10}, {5, 50}};
    ASSERT_NE(findField(v, 5), nullptr);
    EXPECT_EQ(findField(v, 5)->value, 50u);
    EXPECT_EQ(findField(v, 2), nullptr);
}

TEST(FieldValues, HashOrderInsensitive)
{
    std::vector<FieldValue> a = {{1, 10}, {2, 20}};
    std::vector<FieldValue> b = {{2, 20}, {1, 10}};
    EXPECT_EQ(hashFields(a), hashFields(b));
}

TEST(FieldValues, HashValueSensitive)
{
    std::vector<FieldValue> a = {{1, 10}};
    std::vector<FieldValue> b = {{1, 11}};
    std::vector<FieldValue> c = {{2, 10}};
    EXPECT_NE(hashFields(a), hashFields(b));
    EXPECT_NE(hashFields(a), hashFields(c));
}

TEST(CategoryNames, AllNamed)
{
    EXPECT_STREQ(inputCategoryName(InputCategory::Event), "In.Event");
    EXPECT_STREQ(inputCategoryName(InputCategory::History),
                 "In.History");
    EXPECT_STREQ(inputCategoryName(InputCategory::Extern),
                 "In.Extern");
    EXPECT_STREQ(outputCategoryName(OutputCategory::Temp), "Out.Temp");
    EXPECT_STREQ(outputCategoryName(OutputCategory::History),
                 "Out.History");
    EXPECT_STREQ(outputCategoryName(OutputCategory::Extern),
                 "Out.Extern");
}

// -------------------------------------------------------------- Event

TEST(EventObject, SizesInPaperRange)
{
    for (int t = 0; t < kNumEventTypes; ++t) {
        uint32_t bytes = eventObjectBytes(static_cast<EventType>(t));
        EXPECT_GE(bytes, 2u) << eventTypeName(static_cast<EventType>(t));
        EXPECT_LE(bytes, 640u)
            << eventTypeName(static_cast<EventType>(t));
    }
    EXPECT_EQ(eventObjectBytes(EventType::CameraFrame), 640u);
}

TEST(EventObject, RawSamplesPositive)
{
    for (int t = 0; t < kNumEventTypes; ++t) {
        EXPECT_GE(rawSamplesPerEvent(static_cast<EventType>(t)), 1u);
    }
    // A swipe is a series of touch samples.
    EXPECT_GT(rawSamplesPerEvent(EventType::Swipe),
              rawSamplesPerEvent(EventType::Touch));
}

TEST(EventObject, NamesDistinct)
{
    std::set<std::string> names;
    for (int t = 0; t < kNumEventTypes; ++t)
        names.insert(eventTypeName(static_cast<EventType>(t)));
    EXPECT_EQ(names.size(), static_cast<size_t>(kNumEventTypes));
}

// ------------------------------------------------------------- Sensor

TEST(Sensor, QuantizeEndpoints)
{
    Sensor s(SensorKind::Gyroscope, 200.0, 8);
    EXPECT_EQ(s.quantize(0.0, 0.0, 360.0), 0u);
    EXPECT_EQ(s.quantize(360.0, 0.0, 360.0), 255u);
    EXPECT_EQ(s.quantize(-5.0, 0.0, 360.0), 0u);  // clamps
}

TEST(Sensor, LowFidelityHalvesResolution)
{
    Sensor s(SensorKind::Gyroscope, 200.0, 12);
    EXPECT_EQ(s.effectiveBits(), 12);
    s.setLowFidelity(true);
    EXPECT_EQ(s.effectiveBits(), 6);
    EXPECT_LE(s.quantize(180.0, 0.0, 360.0), 63u);
}

TEST(Sensor, SensorForEventMapping)
{
    EXPECT_EQ(sensorForEvent(EventType::Touch),
              SensorKind::Touchscreen);
    EXPECT_EQ(sensorForEvent(EventType::Swipe),
              SensorKind::Touchscreen);
    EXPECT_EQ(sensorForEvent(EventType::Gyro), SensorKind::Gyroscope);
    EXPECT_EQ(sensorForEvent(EventType::CameraFrame),
              SensorKind::Camera);
    EXPECT_EQ(sensorForEvent(EventType::Gps), SensorKind::Gps);
}

TEST(Sensor, InvalidConfigFatal)
{
    bool prev = util::setThrowOnError(true);
    EXPECT_THROW(Sensor(SensorKind::Gps, 0.0, 8), std::runtime_error);
    EXPECT_THROW(Sensor(SensorKind::Gps, 1.0, 0), std::runtime_error);
    util::setThrowOnError(prev);
}

// ------------------------------------------------------ SensorManager

TEST(SensorManager, ChargesSamplingAndAssembly)
{
    soc::Soc soc;
    SensorManager mgr(soc);
    EventObject ev;
    ev.type = EventType::Swipe;
    mgr.deliver(ev);
    EXPECT_EQ(mgr.eventsDelivered(), 1u);
    EXPECT_EQ(soc.sensorHub().samplesTaken(),
              rawSamplesPerEvent(EventType::Swipe));
    EXPECT_GT(soc.cpu().littleInstructions(), 0u);
    EXPECT_GT(soc.memory().bytesMoved(), 0u);
    EXPECT_EQ(soc.cpu().bigInstructions(), 0u);
}

TEST(SensorManager, CameraGoesThroughCapture)
{
    soc::Soc soc;
    SensorManager mgr(soc);
    EventObject ev;
    ev.type = EventType::CameraFrame;
    mgr.deliver(ev);
    EXPECT_EQ(soc.sensorHub().cameraFrames(), 1u);
    EXPECT_EQ(soc.sensorHub().samplesTaken(), 0u);
}

// ------------------------------------------------------------- Binder

TEST(Binder, ChargesTransactionAndCountsBytes)
{
    soc::Soc soc;
    BinderChannel binder(soc);
    EventObject ev;
    ev.type = EventType::Touch;
    binder.transfer(ev);
    EXPECT_EQ(binder.transactions(), 1u);
    EXPECT_EQ(binder.payloadBytes(), eventObjectBytes(EventType::Touch));
    // Two copies per transaction by default.
    EXPECT_EQ(soc.memory().bytesMoved(),
              2ull * eventObjectBytes(EventType::Touch));
}

TEST(Binder, TapSeesEveryEvent)
{
    soc::Soc soc;
    BinderChannel binder(soc);
    int taps = 0;
    uint64_t last_seq = 0;
    binder.setTap([&](const EventObject &ev) {
        ++taps;
        last_seq = ev.seq;
    });
    EventObject ev;
    ev.type = EventType::Gyro;
    ev.seq = 41;
    binder.transfer(ev);
    ev.seq = 42;
    binder.transfer(ev);
    EXPECT_EQ(taps, 2);
    EXPECT_EQ(last_seq, 42u);
}

}  // namespace
}  // namespace events
}  // namespace snip
