/**
 * @file
 * Unit and property tests for the game workload models: schema
 * construction, deterministic handler semantics, the ground-truth
 * necessary-input property (outputs depend on necessary fields
 * only), state evolution, and the user model's repetition
 * statistics — parameterized across all seven games.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "games/catalog.h"
#include "games/registry.h"
#include "util/logging.h"

namespace snip {
namespace games {
namespace {

// ---------------------------------------------------------- GameState

TEST(GameState, BoundedWrapAndAccumulator)
{
    std::vector<HistoryFieldDecl> decls = {
        {"mode", 4, 4, 1, 0, 1},   // in_fid 0, out_fid 1
        {"score", 8, 0, 0, 2, 3},  // accumulator
    };
    GameState st;
    st.build(decls);
    EXPECT_EQ(st.get(0), 1u);
    EXPECT_TRUE(st.apply(1, 7));  // wraps to 7 % 4 = 3
    EXPECT_EQ(st.get(0), 3u);
    EXPECT_TRUE(st.apply(3, 1000));
    EXPECT_EQ(st.get(2), 1000u);
    EXPECT_FALSE(st.apply(3, 1000));  // unchanged -> no change
}

TEST(GameState, EpochBumpsOnRealChangeOnly)
{
    std::vector<HistoryFieldDecl> decls = {{"m", 4, 4, 0, 0, 1}};
    GameState st;
    st.build(decls);
    uint64_t e0 = st.epoch();
    st.apply(1, 0);  // same value
    EXPECT_EQ(st.epoch(), e0);
    st.apply(1, 2);
    EXPECT_EQ(st.epoch(), e0 + 1);
}

TEST(GameState, NonHistoryOutputIgnored)
{
    std::vector<HistoryFieldDecl> decls = {{"m", 4, 4, 0, 0, 1}};
    GameState st;
    st.build(decls);
    EXPECT_FALSE(st.apply(99, 5));
    EXPECT_FALSE(st.isHistoryOutput(99));
    EXPECT_TRUE(st.isHistoryOutput(1));
}

TEST(GameState, WouldChangeDoesNotMutate)
{
    std::vector<HistoryFieldDecl> decls = {{"m", 4, 4, 0, 0, 1}};
    GameState st;
    st.build(decls);
    EXPECT_TRUE(st.wouldChange(1, 2));
    EXPECT_EQ(st.get(0), 0u);
    EXPECT_EQ(st.epoch(), 0u);
}

TEST(GameState, TryGet)
{
    std::vector<HistoryFieldDecl> decls = {{"m", 4, 4, 5, 0, 1}};
    GameState st;
    st.build(decls);
    uint64_t v = 0;
    EXPECT_TRUE(st.tryGet(0, v));
    EXPECT_EQ(v, 5u % 4u);
    EXPECT_FALSE(st.tryGet(42, v));
}

TEST(GameState, FingerprintTracksBoundedState)
{
    std::vector<HistoryFieldDecl> decls = {
        {"m", 4, 4, 0, 0, 1},
        {"acc", 8, 0, 0, 2, 3},
    };
    GameState st;
    st.build(decls);
    uint64_t fp0 = st.boundedFingerprint();
    st.apply(3, 123);  // accumulator: fingerprint unchanged
    EXPECT_EQ(st.boundedFingerprint(), fp0);
    st.apply(1, 2);
    EXPECT_NE(st.boundedFingerprint(), fp0);
}

TEST(GameState, BlockContentIsStale)
{
    std::vector<HistoryFieldDecl> decls = {{"m", 4, 16, 0, 0, 1}};
    GameState st;
    st.build(decls);
    uint64_t b0 = st.blockContent(0);
    st.apply(1, 1);  // one change: refresh period is 3
    EXPECT_EQ(st.blockContent(0), b0);
    st.apply(1, 2);
    st.apply(1, 3);  // third change -> refresh
    EXPECT_NE(st.blockContent(0), b0);
}

TEST(GameState, ResetRestoresInitialConditions)
{
    std::vector<HistoryFieldDecl> decls = {{"m", 4, 8, 5, 0, 1}};
    GameState st;
    st.build(decls);
    st.apply(1, 7);
    uint64_t fp_dirty = st.boundedFingerprint();
    st.reset();
    EXPECT_EQ(st.get(0), 5u);
    EXPECT_EQ(st.epoch(), 0u);
    EXPECT_NE(st.boundedFingerprint(), fp_dirty);
}

// ----------------------------------------------------------- Registry

TEST(Registry, SevenGamesInComplexityOrder)
{
    const auto &names = allGameNames();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names.front(), "colorphun");
    EXPECT_EQ(names.back(), "race_kings");
}

TEST(Registry, UnknownGameFatal)
{
    bool prev = util::setThrowOnError(true);
    EXPECT_THROW(paramsFor("tetris"), std::runtime_error);
    util::setThrowOnError(prev);
}

TEST(Registry, MakeAllGames)
{
    auto games = makeAllGames();
    EXPECT_EQ(games.size(), 7u);
    for (const auto &g : games)
        EXPECT_GT(g->totalEventRate(), 0.0);
}

// ----------------------------------------------- parameterized suite

class GameTest : public ::testing::TestWithParam<std::string>
{
  protected:
    void SetUp() override { game_ = makeGame(GetParam()); }

    /** Run n events through the game, applying truth outputs. */
    std::vector<HandlerExecution>
    drive(size_t n, uint64_t seed = 99)
    {
        util::Rng rng(seed);
        std::vector<HandlerExecution> execs;
        const auto &mix = game_->params().mix;
        for (size_t i = 0; i < n; ++i) {
            const auto &entry = mix[i % mix.size()];
            events::EventObject ev = game_->makeEvent(
                entry.type, static_cast<double>(i) * 0.05, rng);
            HandlerExecution ex = game_->process(ev);
            game_->applyOutputs(ex.outputs);
            execs.push_back(std::move(ex));
        }
        return execs;
    }

    std::unique_ptr<Game> game_;
};

TEST_P(GameTest, EventFieldSizesSumToObjectSize)
{
    for (const auto &spec : game_->params().handlers) {
        uint32_t sum = 0;
        for (const auto &efs : spec.event_fields)
            sum += efs.size_bytes;
        EXPECT_EQ(sum, events::eventObjectBytes(spec.type))
            << events::eventTypeName(spec.type);
    }
}

TEST_P(GameTest, ProcessIsDeterministic)
{
    util::Rng rng(7);
    events::EventObject ev =
        game_->makeEvent(game_->params().mix[0].type, 0.0, rng);
    HandlerExecution a = game_->process(ev);
    HandlerExecution b = game_->process(ev);
    EXPECT_EQ(a.inputs, b.inputs);
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.necessary_hash, b.necessary_hash);
    EXPECT_EQ(a.cpu_instructions, b.cpu_instructions);
    EXPECT_EQ(a.useless, b.useless);
}

TEST_P(GameTest, NoiseFieldsDoNotAffectOutputs)
{
    // Ground-truth property: mutating a non-necessary event field
    // must leave outputs and the necessary hash unchanged.
    util::Rng rng(13);
    const HandlerSpec &spec =
        game_->handler(game_->params().mix[0].type);
    for (int trial = 0; trial < 20; ++trial) {
        events::EventObject ev =
            game_->makeEvent(spec.type, 0.0, rng);
        HandlerExecution base = game_->process(ev);
        for (const auto &efs : spec.event_fields) {
            if (efs.necessary)
                continue;
            events::EventObject mutated = ev;
            for (auto &fv : mutated.fields)
                if (fv.id == efs.fid)
                    fv.value ^= 0x5a5a5a5aULL;
            HandlerExecution mut = game_->process(mutated);
            EXPECT_EQ(mut.outputs, base.outputs)
                << "noise field " << efs.name << " affected outputs";
            EXPECT_EQ(mut.necessary_hash, base.necessary_hash);
            EXPECT_EQ(mut.useless, base.useless);
        }
    }
}

TEST_P(GameTest, NecessaryFieldsDoAffectOutputs)
{
    // Across many draws, changing a necessary field's value must
    // change the necessary hash (and usually the outputs).
    util::Rng rng(17);
    const HandlerSpec &spec =
        game_->handler(game_->params().mix[0].type);
    int hash_changes = 0, trials = 0;
    for (int trial = 0; trial < 20; ++trial) {
        events::EventObject ev =
            game_->makeEvent(spec.type, 0.0, rng);
        HandlerExecution base = game_->process(ev);
        for (const auto &efs : spec.event_fields) {
            if (!efs.necessary)
                continue;
            events::EventObject mutated = ev;
            for (auto &fv : mutated.fields)
                if (fv.id == efs.fid)
                    fv.value = (fv.value + 1) % efs.cardinality;
            HandlerExecution mut = game_->process(mutated);
            ++trials;
            hash_changes += (mut.necessary_hash != base.necessary_hash);
        }
    }
    EXPECT_EQ(hash_changes, trials);
}

TEST_P(GameTest, InputsAndOutputsCanonical)
{
    auto execs = drive(50);
    for (const auto &ex : execs) {
        for (size_t i = 1; i < ex.inputs.size(); ++i)
            EXPECT_LT(ex.inputs[i - 1].id, ex.inputs[i].id);
        for (size_t i = 1; i < ex.outputs.size(); ++i)
            EXPECT_LT(ex.outputs[i - 1].id, ex.outputs[i].id);
    }
}

TEST_P(GameTest, UselessExecutionsWriteNothing)
{
    auto execs = drive(300);
    int useless = 0;
    for (const auto &ex : execs) {
        if (ex.useless) {
            ++useless;
            EXPECT_TRUE(ex.outputs.empty());
            EXPECT_FALSE(ex.state_changed);
        }
    }
    EXPECT_GT(useless, 0);
}

TEST_P(GameTest, CostsArePositiveAndBounded)
{
    auto execs = drive(200);
    for (const auto &ex : execs) {
        EXPECT_GT(ex.cpu_instructions, 0u);
        EXPECT_LT(ex.cpu_instructions, 5'000'000'000ull);
        EXPECT_GT(ex.memory_bytes, 0u);
        EXPECT_GE(ex.maxcpu_fraction, 0.0);
        EXPECT_LE(ex.maxcpu_fraction, 1.0);
        for (const auto &c : ex.ip_calls)
            EXPECT_GT(c.work_units, 0.0);
    }
}

TEST_P(GameTest, StateChangedFlagConsistent)
{
    util::Rng rng(23);
    const auto &mix = game_->params().mix;
    for (int i = 0; i < 100; ++i) {
        const auto &entry = mix[i % mix.size()];
        events::EventObject ev = game_->makeEvent(
            entry.type, i * 0.05, rng);
        HandlerExecution ex = game_->process(ev);
        bool any = false;
        for (const auto &fv : ex.outputs)
            any |= game_->state().wouldChange(fv.id, fv.value);
        EXPECT_EQ(ex.state_changed, any);
        game_->applyOutputs(ex.outputs);
    }
}

TEST_P(GameTest, EventGenerationReproducible)
{
    auto g2 = makeGame(GetParam());
    util::Rng a(31), b(31);
    for (int i = 0; i < 50; ++i) {
        events::EventObject ea = game_->makeEvent(
            game_->params().mix[0].type, i * 0.1, a);
        events::EventObject eb =
            g2->makeEvent(g2->params().mix[0].type, i * 0.1, b);
        EXPECT_EQ(ea.fields, eb.fields);
    }
}

TEST_P(GameTest, ExactRepeatsInPaperBand)
{
    // Paper: 2-5% of full input records exactly repeat. Allow a
    // generous band (1-10%) — it is a stochastic property.
    auto execs = drive(1500, 101);
    std::unordered_set<uint64_t> seen;
    int repeats = 0;
    for (const auto &ex : execs) {
        uint64_t h = events::hashFields(ex.inputs);
        if (!seen.insert(h).second)
            ++repeats;
    }
    double frac = static_cast<double>(repeats) / execs.size();
    EXPECT_GT(frac, 0.005);
    EXPECT_LT(frac, 0.20);
}

TEST_P(GameTest, NecessaryInputIdsMatchDeclaredSpecs)
{
    for (const auto &entry : game_->params().mix) {
        auto ids = game_->necessaryInputIds(entry.type);
        EXPECT_FALSE(ids.empty());
        const HandlerSpec &spec = game_->handler(entry.type);
        size_t expected = spec.necessary_history.size() +
                          spec.scoring_history.size();
        for (const auto &efs : spec.event_fields)
            expected += efs.necessary;
        EXPECT_EQ(ids.size(), expected);
    }
}

TEST_P(GameTest, GatherInputValueCoversNonEventInputs)
{
    auto execs = drive(100);
    for (const auto &ex : execs) {
        for (const auto &fv : ex.inputs) {
            const auto &d = game_->schema().def(fv.id);
            uint64_t v = 0;
            bool ok = game_->gatherInputValue(fv.id, v);
            if (d.in_cat == events::InputCategory::Event) {
                EXPECT_FALSE(ok);
            } else {
                EXPECT_TRUE(ok) << d.name;
            }
        }
    }
}

TEST_P(GameTest, ResetRestoresDeterminism)
{
    auto first = drive(40, 55);
    game_->reset();
    auto second = drive(40, 55);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].inputs, second[i].inputs);
        EXPECT_EQ(first[i].outputs, second[i].outputs);
    }
}

TEST_P(GameTest, RecommendedOverridesNameRealFields)
{
    for (const auto &name :
         game_->params().recommended_overrides) {
        EXPECT_NE(game_->schema().find(name), events::kInvalidField)
            << name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllGames, GameTest,
                         ::testing::ValuesIn(allGameNames()));

// --------------------------------------------------- game specifics

TEST(AbEvolution, PlateauMakesMaxedDragUseless)
{
    auto game = makeGame("ab_evolution");
    const HandlerSpec &drag = game->handler(events::EventType::Drag);
    ASSERT_EQ(drag.plateau_history_field, "stretch");

    // Force the catapult to max stretch.
    events::FieldId stretch_in = game->schema().find("h.stretch");
    events::FieldId stretch_out = game->schema().find("o.stretch");
    ASSERT_NE(stretch_out, events::kInvalidField);
    uint64_t buckets = 0;
    for (const auto &d : game->params().history_fields)
        if (d.name == "stretch")
            buckets = d.buckets;
    game->state().apply(stretch_out, buckets - 1);
    ASSERT_EQ(game->state().get(stretch_in), buckets - 1);

    // Build a drag event with dist in the top quartile.
    util::Rng rng(3);
    events::EventObject ev =
        game->makeEvent(events::EventType::Drag, 0.0, rng);
    for (const auto &efs : drag.event_fields) {
        if (efs.name == "dist") {
            for (auto &fv : ev.fields)
                if (fv.id == efs.fid)
                    fv.value = efs.cardinality - 1;
        }
    }
    HandlerExecution ex = game->process(ev);
    EXPECT_TRUE(ex.useless);
}

TEST(ChaseWhisply, CameraEventsDriveTheIsp)
{
    auto game = makeGame("chase_whisply");
    util::Rng rng(5);
    events::EventObject ev =
        game->makeEvent(events::EventType::CameraFrame, 0.0, rng);
    HandlerExecution ex = game->process(ev);
    bool uses_isp = false;
    for (const auto &c : ex.ip_calls)
        uses_isp |= (c.kind == soc::IpKind::CameraIsp);
    EXPECT_TRUE(uses_isp);
}

TEST(MemoryGame, WideNecessaryState)
{
    auto game = makeGame("memory_game");
    auto ids = game->necessaryInputIds(events::EventType::Touch);
    uint64_t bytes = 0;
    for (auto fid : ids)
        bytes += game->schema().def(fid).size_bytes;
    // The board rows make the necessary set much wider than other
    // games' (the Fig. 11c overhead outlier).
    EXPECT_GT(bytes, 1000u);
}

TEST(GameValidation, MismatchedHandlerCountFatal)
{
    bool prev = util::setThrowOnError(true);
    GameParams p = makeColorphun();
    p.handlers.clear();
    EXPECT_THROW(Game{p}, std::runtime_error);
    util::setThrowOnError(prev);
}

TEST(GameValidation, UnknownHistoryFieldFatal)
{
    bool prev = util::setThrowOnError(true);
    GameParams p = makeColorphun();
    p.handlers[0].necessary_history.push_back("no_such_field");
    EXPECT_THROW(Game{p}, std::runtime_error);
    util::setThrowOnError(prev);
}

TEST(GameValidation, WrongEventFieldSizesFatal)
{
    bool prev = util::setThrowOnError(true);
    GameParams p = makeColorphun();
    p.handlers[0].event_fields[0].size_bytes += 2;
    EXPECT_THROW(Game{p}, std::runtime_error);
    util::setThrowOnError(prev);
}

}  // namespace
}  // namespace games
}  // namespace snip
