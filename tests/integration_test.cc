/**
 * @file
 * End-to-end integration tests: the full profile -> PFI -> deploy ->
 * evaluate pipeline per game, with shape assertions against the
 * paper's reported bands (with generous tolerances — these are
 * regression guards for the reproduction, not exact-number checks).
 */

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "trace/field_stats.h"
#include "trace/recorder.h"

namespace snip {
namespace core {
namespace {

/** One full pipeline evaluation of a game. */
struct PipelineResult {
    double baseline_energy = 0.0;
    double snip_energy = 0.0;
    double noover_energy = 0.0;
    SessionStats snip_stats;
    soc::EnergyReport baseline_report{{{"x",
                                        soc::EnergyGroup::Platform,
                                        0, 0}},
                                      1.0};
    trace::Profile profile;
};

PipelineResult
runPipeline(const std::string &name, double profile_s = 300.0,
            double eval_s = 30.0)
{
    auto game = games::makeGame(name);
    BaselineScheme baseline;
    SimulationConfig pcfg;
    pcfg.duration_s = profile_s;
    pcfg.record_events = true;
    pcfg.seed = 77;
    SessionResult prof = runSession(*game, baseline, pcfg);
    auto replica = games::makeGame(name);
    trace::Profile profile =
        trace::Replayer::replay(prof.trace, *replica);

    SimulationConfig ecfg;
    ecfg.duration_s = eval_s;
    ecfg.seed = 991;

    PipelineResult out;
    out.profile = profile;

    SnipConfig scfg;
    scfg.overrides.force_keep =
        game->params().recommended_overrides;

    {
        BaselineScheme b;
        SessionResult r = runSession(*game, b, ecfg);
        out.baseline_energy = r.report.total();
        out.baseline_report = r.report;
    }
    {
        SnipModel model = buildSnipModel(profile, *game, scfg);
        SnipScheme s(model);
        SessionResult r = runSession(*game, s, ecfg);
        out.snip_energy = r.report.total();
        out.snip_stats = r.stats;
    }
    {
        SnipModel model = buildSnipModel(profile, *game, scfg);
        SnipScheme s(model, SnipRuntimeConfig{}, false);
        SessionResult r = runSession(*game, s, ecfg);
        out.noover_energy = r.report.total();
    }
    return out;
}

class PipelineTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PipelineTest, SnipSavesMeaningfulEnergy)
{
    PipelineResult r = runPipeline(GetParam());
    double savings = 1.0 - r.snip_energy / r.baseline_energy;
    EXPECT_GT(savings, 0.10) << "SNIP should save >10% on "
                             << GetParam();
    EXPECT_LT(savings, 0.70);
}

TEST_P(PipelineTest, SchemeEnergyOrdering)
{
    PipelineResult r = runPipeline(GetParam());
    // No-overheads SNIP <= SNIP <= Baseline.
    EXPECT_LE(r.noover_energy, r.snip_energy * 1.001);
    EXPECT_LT(r.snip_energy, r.baseline_energy);
}

TEST_P(PipelineTest, CoverageInPlausibleBand)
{
    PipelineResult r = runPipeline(GetParam());
    double cov = r.snip_stats.coverageInstr();
    EXPECT_GT(cov, 0.20) << GetParam();
    EXPECT_LT(cov, 0.90) << GetParam();
}

TEST_P(PipelineTest, AlmostErrorFree)
{
    PipelineResult r = runPipeline(GetParam());
    EXPECT_LT(r.snip_stats.errorFieldRate(), 0.02) << GetParam();
}

TEST_P(PipelineTest, ComponentBreakdownInPaperBands)
{
    PipelineResult r = runPipeline(GetParam(), 60.0, 20.0);
    double cpu =
        r.baseline_report.socGroupFraction(soc::EnergyGroup::Cpu);
    double ips =
        r.baseline_report.socGroupFraction(soc::EnergyGroup::Ips);
    double small =
        r.baseline_report.socGroupFraction(soc::EnergyGroup::Sensors) +
        r.baseline_report.socGroupFraction(soc::EnergyGroup::Memory);
    EXPECT_GT(cpu, 0.35) << GetParam();
    EXPECT_LT(cpu, 0.65) << GetParam();
    EXPECT_GT(ips, 0.28) << GetParam();
    EXPECT_LT(ips, 0.58) << GetParam();
    EXPECT_LT(small, 0.12) << GetParam();
}

TEST_P(PipelineTest, UselessEventsInPaperBand)
{
    PipelineResult r = runPipeline(GetParam(), 120.0, 20.0);
    trace::FieldStatistics stats(
        r.profile, games::makeGame(GetParam())->schema());
    EXPECT_GT(stats.uselessFraction(), 0.08) << GetParam();
    EXPECT_LT(stats.uselessFraction(), 0.55) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllGames, PipelineTest,
                         ::testing::ValuesIn(games::allGameNames()));

TEST(IntegrationShape, BatteryLifeOrderingLightToHeavy)
{
    // Fig. 3's ordering: the lightest game outlives the heaviest by
    // a wide margin.
    SimulationConfig cfg;
    cfg.duration_s = 40.0;
    auto light = games::makeGame("colorphun");
    auto heavy = games::makeGame("race_kings");
    BaselineScheme a, b;
    double p_light =
        runSession(*light, a, cfg).report.averagePower();
    double p_heavy =
        runSession(*heavy, b, cfg).report.averagePower();
    EXPECT_GT(p_heavy, p_light * 2.0);
}

TEST(IntegrationShape, SnipBeatsMaxCpuAndMaxIpEverywhere)
{
    // The paper's central comparison (Fig. 11a): end-to-end
    // snipping dominates CPU-only and IP-only optimization.
    for (const auto &name : games::allGameNames()) {
        auto game = games::makeGame(name);
        BaselineScheme baseline;
        SimulationConfig pcfg;
        pcfg.duration_s = 300.0;
        pcfg.record_events = true;
        pcfg.seed = 77;
        SessionResult prof = runSession(*game, baseline, pcfg);
        auto replica = games::makeGame(name);
        trace::Profile profile =
            trace::Replayer::replay(prof.trace, *replica);
        SnipConfig scfg;
        scfg.overrides.force_keep =
            game->params().recommended_overrides;

        SimulationConfig ecfg;
        ecfg.duration_s = 25.0;
        ecfg.seed = 991;

        BaselineScheme b;
        double e_base = runSession(*game, b, ecfg).report.total();
        MaxCpuScheme mc;
        double e_maxcpu = runSession(*game, mc, ecfg).report.total();
        MaxIpScheme mi;
        double e_maxip = runSession(*game, mi, ecfg).report.total();
        SnipModel model = buildSnipModel(profile, *game, scfg);
        SnipScheme snip(model);
        double e_snip = runSession(*game, snip, ecfg).report.total();

        EXPECT_LT(e_maxcpu, e_base) << name;
        EXPECT_LT(e_maxip, e_base) << name;
        EXPECT_LT(e_snip, e_maxcpu) << name;
        EXPECT_LT(e_snip, e_maxip) << name;
    }
}

TEST(IntegrationShape, MemoryGameIsTheOverheadOutlier)
{
    // Fig. 11c: Memory Game's wide necessary state makes its
    // lookup overhead several times the other games'.
    auto overhead = [](const std::string &name) {
        auto game = games::makeGame(name);
        BaselineScheme baseline;
        SimulationConfig pcfg;
        pcfg.duration_s = 300.0;
        pcfg.record_events = true;
        pcfg.seed = 77;
        SessionResult prof = runSession(*game, baseline, pcfg);
        auto replica = games::makeGame(name);
        trace::Profile profile =
            trace::Replayer::replay(prof.trace, *replica);
        SnipConfig scfg;
        scfg.overrides.force_keep =
            game->params().recommended_overrides;
        SnipModel model = buildSnipModel(profile, *game, scfg);
        SnipScheme s(model);
        SimulationConfig ecfg;
        ecfg.duration_s = 25.0;
        ecfg.seed = 991;
        SessionResult r = runSession(*game, s, ecfg);
        return r.stats.lookup_energy_j / r.report.total();
    };
    double memory = overhead("memory_game");
    double colorphun = overhead("colorphun");
    double abevo = overhead("ab_evolution");
    EXPECT_GT(memory, 2.0 * colorphun);
    EXPECT_GT(memory, 2.0 * abevo);
    EXPECT_GT(memory, 0.04);
}

}  // namespace
}  // namespace core
}  // namespace snip
