/**
 * @file
 * Tests for the ML layer on synthetic data with known ground truth:
 * dataset construction, the table predictor's exact-match
 * semantics, decision tree / random forest learning, PFI importance
 * ranking, and the necessary-input selector recovering planted
 * necessary features.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "ml/chunked_dataset.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/feature_selection.h"
#include "ml/pfi.h"
#include "ml/random_forest.h"
#include "ml/table_predictor.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace snip {
namespace ml {
namespace {

/**
 * Synthetic world: inputs a (necessary, 4 values), b (necessary,
 * 3 values), n (noise, 16 values), h (big noisy history blob).
 * Output label = f(a, b). Returns records + schema.
 */
struct Synthetic {
    events::FieldSchema schema;
    events::FieldId fa, fb, fn, fh, out;
    std::vector<games::HandlerExecution> records;

    explicit Synthetic(size_t n_records, uint64_t seed = 1)
    {
        fa = schema.addInput("a", events::InputCategory::Event, 2);
        fb = schema.addInput("b", events::InputCategory::History, 4);
        fn = schema.addInput("n", events::InputCategory::Event, 8);
        fh = schema.addInput("h", events::InputCategory::History,
                             4096);
        out = schema.addOutput("o", events::OutputCategory::History,
                               8);
        util::Rng rng(seed);
        for (size_t i = 0; i < n_records; ++i) {
            games::HandlerExecution r;
            r.type = events::EventType::Touch;
            r.seq = i;
            uint64_t a = rng.uniformInt(0, 3);
            uint64_t b = rng.uniformInt(0, 2);
            uint64_t noise = rng.uniformInt(0, 15);
            uint64_t blob = util::mix64(i);  // row-id-like feature
            r.inputs = {{fa, a}, {fb, b}, {fn, noise}, {fh, blob}};
            r.outputs = {{out, util::mixCombine(a * 31 + b, 7)}};
            r.cpu_instructions = 1000;
            records.push_back(std::move(r));
        }
    }

    std::vector<const games::HandlerExecution *> ptrs() const
    {
        std::vector<const games::HandlerExecution *> p;
        for (const auto &r : records)
            p.push_back(&r);
        return p;
    }
};

// ------------------------------------------------------------ Dataset

TEST(DatasetTest, ColumnsAndValues)
{
    Synthetic syn(50);
    Dataset ds(syn.ptrs(), syn.schema);
    EXPECT_EQ(ds.numRows(), 50u);
    EXPECT_EQ(ds.numFeatures(), 4u);
    size_t col_a = ds.columnOf(syn.fa);
    ASSERT_NE(col_a, SIZE_MAX);
    EXPECT_EQ(ds.featureField(col_a), syn.fa);
    EXPECT_EQ(ds.value(0, col_a), syn.records[0].inputs[0].value);
    EXPECT_EQ(ds.columnOf(9999), SIZE_MAX);
    EXPECT_EQ(ds.weight(0), 1000u);
    EXPECT_EQ(ds.totalWeight(), 50u * 1000u);
}

TEST(DatasetTest, AbsentMarkerForMissingFields)
{
    Synthetic syn(10);
    // Remove field fn from half the records.
    for (size_t i = 0; i < syn.records.size(); i += 2) {
        auto &in = syn.records[i].inputs;
        in.erase(in.begin() + 2);
    }
    Dataset ds(syn.ptrs(), syn.schema);
    size_t col_n = ds.columnOf(syn.fn);
    ASSERT_NE(col_n, SIZE_MAX);
    EXPECT_EQ(ds.value(0, col_n), kAbsent);
    EXPECT_NE(ds.value(1, col_n), kAbsent);
}

TEST(DatasetTest, LabelIsOutputSignature)
{
    Synthetic syn(30);
    Dataset ds(syn.ptrs(), syn.schema);
    for (size_t i = 0; i < ds.numRows(); ++i) {
        EXPECT_EQ(ds.label(i),
                  events::hashFields(syn.records[i].outputs));
    }
}

TEST(DatasetTest, FeatureBytes)
{
    Synthetic syn(5);
    Dataset ds(syn.ptrs(), syn.schema);
    EXPECT_EQ(ds.featureBytes(ds.columnOf(syn.fh)), 4096u);
    std::vector<size_t> all(ds.numFeatures());
    for (size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    EXPECT_EQ(ds.bytesOfColumns(all), 2u + 4u + 8u + 4096u);
}

// ----------------------------------------------------- TablePredictor

TEST(TablePredictorTest, PerfectOnTrainingWithAllFeatures)
{
    Synthetic syn(200);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {0, 1, 2, 3};
    TablePredictor tp;
    tp.train(ds, cols);
    EXPECT_DOUBLE_EQ(weightedErrorRate(tp, ds), 0.0);
}

TEST(TablePredictorTest, NecessaryOnlyStillPerfect)
{
    Synthetic syn(200);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {ds.columnOf(syn.fa),
                                ds.columnOf(syn.fb)};
    TablePredictor tp;
    tp.train(ds, cols);
    EXPECT_DOUBLE_EQ(weightedErrorRate(tp, ds), 0.0);
    // 4 x 3 joint values -> at most 12 keys.
    EXPECT_LE(tp.tableRows(), 12u);
}

TEST(TablePredictorTest, MissingNecessaryFeatureErrs)
{
    Synthetic syn(400);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {ds.columnOf(syn.fb)};  // drop a
    TablePredictor tp;
    tp.train(ds, cols);
    EXPECT_GT(weightedErrorRate(tp, ds), 0.3);
    EXPECT_GT(tp.ambiguousWeightFraction(), 0.5);
    EXPECT_GT(tp.meanLabelsPerKey(), 1.5);
}

TEST(TablePredictorTest, StrictLookupMissesUnseenKeys)
{
    Synthetic syn(20);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {ds.columnOf(syn.fh)};  // row ids
    std::vector<size_t> train_rows = {0, 1, 2, 3, 4};
    TablePredictor tp;
    tp.trainOnRows(ds, cols, train_rows);
    uint64_t label;
    EXPECT_TRUE(tp.lookupLabel(ds, 0, label));
    EXPECT_FALSE(tp.lookupLabel(ds, 10, label));
}

TEST(TablePredictorTest, InsertRowFirstWins)
{
    Synthetic syn(20);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {ds.columnOf(syn.fa),
                                ds.columnOf(syn.fb)};
    TablePredictor tp;
    tp.trainOnRows(ds, cols, {});
    tp.insertRow(ds, 3);
    uint64_t label;
    ASSERT_TRUE(tp.lookupLabel(ds, 3, label));
    EXPECT_EQ(label, ds.label(3));
    // Re-inserting a row with the same key does not overwrite.
    size_t rows_before = tp.tableRows();
    tp.insertRow(ds, 3);
    EXPECT_EQ(tp.tableRows(), rows_before);
}

TEST(TablePredictorTest, PredictRowReturnsRepresentative)
{
    Synthetic syn(100);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {ds.columnOf(syn.fa),
                                ds.columnOf(syn.fb)};
    TablePredictor tp;
    tp.train(ds, cols);
    size_t repr = tp.predictRow(ds, 7);
    ASSERT_NE(repr, SIZE_MAX);
    EXPECT_EQ(ds.label(repr), ds.label(7));
}

TEST(TablePredictorTest, PredictRowsMatchesPerRowPredict)
{
    Synthetic syn(300);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {ds.columnOf(syn.fa),
                                ds.columnOf(syn.fb)};
    TablePredictor tp;
    tp.train(ds, cols);

    std::vector<uint64_t> batched(ds.numRows());
    tp.predictRows(ds, 0, ds.numRows(), batched.data());
    for (size_t r = 0; r < ds.numRows(); ++r)
        EXPECT_EQ(batched[r], tp.predict(ds, r)) << "row " << r;

    // Sub-range placement: out[r - begin] receives row r.
    std::vector<uint64_t> window(20);
    tp.predictRows(ds, 50, 70, window.data());
    for (size_t r = 50; r < 70; ++r)
        EXPECT_EQ(window[r - 50], tp.predict(ds, r));

    // Override path: per-row override values, indexed by absolute
    // row (the PFI permuted-column calling convention).
    size_t col_a = ds.columnOf(syn.fa);
    std::vector<uint64_t> shifted(ds.numRows());
    for (size_t r = 0; r < ds.numRows(); ++r)
        shifted[r] = ds.value((r + 1) % ds.numRows(), col_a);
    tp.predictRows(ds, 0, ds.numRows(), batched.data(), col_a,
                   shifted.data());
    for (size_t r = 0; r < ds.numRows(); ++r)
        EXPECT_EQ(batched[r], tp.predict(ds, r, col_a, shifted[r]));
}

// ------------------------------------------------------ DecisionTree

TEST(DecisionTreeTest, LearnsSeparableFunction)
{
    Synthetic syn(600);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {ds.columnOf(syn.fa),
                                ds.columnOf(syn.fb)};
    DecisionTree tree;
    tree.train(ds, cols);
    EXPECT_LT(weightedErrorRate(tree, ds), 0.02);
    EXPECT_GT(tree.nodeCount(), 3u);
}

TEST(DecisionTreeTest, RespectsMaxDepth)
{
    Synthetic syn(600);
    Dataset ds(syn.ptrs(), syn.schema);
    TreeConfig cfg;
    cfg.max_depth = 1;
    DecisionTree stump(cfg);
    std::vector<size_t> cols = {ds.columnOf(syn.fa),
                                ds.columnOf(syn.fb)};
    stump.train(ds, cols);
    EXPECT_LE(stump.nodeCount(), 3u);
}

TEST(DecisionTreeTest, OverrideValueChangesPath)
{
    Synthetic syn(600);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {ds.columnOf(syn.fa),
                                ds.columnOf(syn.fb)};
    DecisionTree tree;
    tree.train(ds, cols);
    // Overriding the necessary column with varying values must
    // produce at least two distinct predictions.
    std::set<uint64_t> preds;
    for (uint64_t v = 0; v < 4; ++v)
        preds.insert(tree.predict(ds, 0, ds.columnOf(syn.fa), v));
    EXPECT_GE(preds.size(), 2u);
}

// ------------------------------------------------------ RandomForest

TEST(RandomForestTest, LearnsSeparableFunction)
{
    Synthetic syn(600);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {0, 1, 2, 3};
    ForestConfig cfg;
    cfg.num_trees = 12;
    RandomForest forest(cfg);
    forest.train(ds, cols);
    EXPECT_EQ(forest.treeCount(), 12u);
    EXPECT_LT(weightedErrorRate(forest, ds), 0.1);
}

TEST(RandomForestTest, PredictRowsMatchesPerRowPredict)
{
    Synthetic syn(400);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {0, 1, 2, 3};
    ForestConfig cfg;
    cfg.num_trees = 9;
    RandomForest forest(cfg);
    forest.train(ds, cols);

    std::vector<uint64_t> batched(ds.numRows());
    forest.predictRows(ds, 0, ds.numRows(), batched.data());
    for (size_t r = 0; r < ds.numRows(); ++r)
        EXPECT_EQ(batched[r], forest.predict(ds, r)) << "row " << r;

    // A range that is not block-aligned (exercises the tail of the
    // kVoteBlock loop) placed at out[r - begin].
    std::vector<uint64_t> window(77);
    forest.predictRows(ds, 13, 90, window.data());
    for (size_t r = 13; r < 90; ++r)
        EXPECT_EQ(window[r - 13], forest.predict(ds, r));

    // Override path with per-row values (absolute-row indexing).
    size_t col_a = ds.columnOf(syn.fa);
    std::vector<uint64_t> shifted(ds.numRows());
    for (size_t r = 0; r < ds.numRows(); ++r)
        shifted[r] = ds.value((r + 7) % ds.numRows(), col_a);
    forest.predictRows(ds, 0, ds.numRows(), batched.data(), col_a,
                       shifted.data());
    for (size_t r = 0; r < ds.numRows(); ++r) {
        EXPECT_EQ(batched[r],
                  forest.predict(ds, r, col_a, shifted[r]))
            << "row " << r;
    }
}

TEST(RandomForestTest, TrainingRecordsObsMetrics)
{
    Synthetic syn(400);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {0, 1, 2, 3};
    obs::Registry reg;
    ForestConfig cfg;
    cfg.num_trees = 6;
    cfg.obs = &reg;
    RandomForest forest(cfg);
    forest.train(ds, cols);
    EXPECT_EQ(reg.counterValue("shrink.forest.trees"), 6u);
    ASSERT_NE(reg.findTimer("span.train_forest"), nullptr);
    EXPECT_EQ(reg.findTimer("span.train_forest")->count(), 1u);

    // PFI attributes per-task work through the same registry.
    PfiConfig pcfg;
    pcfg.obs = &reg;
    computePfi(forest, ds, cols, pcfg);
    // One task per (feature, repeat).
    uint64_t tasks =
        cols.size() * static_cast<uint64_t>(pcfg.repeats);
    EXPECT_EQ(reg.counterValue("shrink.pfi.tasks"), tasks);
    ASSERT_NE(reg.findTimer("shrink.pfi.task_s"), nullptr);
    EXPECT_EQ(reg.findTimer("shrink.pfi.task_s")->count(), tasks);
    EXPECT_GE(reg.gaugeValue("shrink.pfi.workers"), 1.0);
}

TEST(RandomForestTest, TrainDeterministicAcrossThreadCounts)
{
    Synthetic syn(500);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {0, 1, 2, 3};

    ForestConfig c1;
    c1.num_trees = 10;
    c1.threads = 1;
    RandomForest f1(c1);
    f1.train(ds, cols);

    ForestConfig c8 = c1;
    c8.threads = 8;
    RandomForest f8(c8);
    f8.train(ds, cols);

    ASSERT_EQ(f1.treeCount(), f8.treeCount());
    EXPECT_EQ(f1.labelCount(), f8.labelCount());
    for (size_t r = 0; r < ds.numRows(); ++r) {
        EXPECT_EQ(f1.predict(ds, r), f8.predict(ds, r))
            << "row " << r;
        EXPECT_EQ(f1.predictRow(ds, r), f8.predictRow(ds, r))
            << "row " << r;
    }
}

/**
 * predictRow must return a representative of the *majority-vote*
 * label, not re-derive a possibly different answer (the old
 * implementation re-descended every tree after predict() had
 * already tallied the votes).
 */
TEST(RandomForestTest, PredictRowRepresentativeCarriesVotedLabel)
{
    Synthetic syn(400);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {0, 1, 2, 3};
    ForestConfig cfg;
    cfg.num_trees = 7;
    RandomForest forest(cfg);
    forest.train(ds, cols);
    for (size_t r = 0; r < ds.numRows(); ++r) {
        size_t repr = forest.predictRow(ds, r);
        ASSERT_NE(repr, SIZE_MAX) << "row " << r;
        EXPECT_EQ(ds.label(repr), forest.predict(ds, r))
            << "row " << r;
    }
}

// ---------------------------------------------------------------- PFI

TEST(PfiTest, NecessaryFeaturesRankAboveNoise)
{
    Synthetic syn(800);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {ds.columnOf(syn.fa),
                                ds.columnOf(syn.fb),
                                ds.columnOf(syn.fn)};
    TablePredictor tp;
    tp.train(ds, cols);
    PfiResult pfi = computePfi(tp, ds, cols);
    EXPECT_DOUBLE_EQ(pfi.base_error, 0.0);
    // Permuting a or b destroys predictions strictly more than
    // permuting the (coarser) noise column would be expected to...
    // with an exact-match table all permutations cause misses, but
    // necessary columns additionally cause wrong outputs. Require
    // they are at least comparable and positive.
    EXPECT_GT(pfi.importance[0], 0.0);
    EXPECT_GT(pfi.importance[1], 0.0);
}

TEST(PfiTest, DeterministicForSeed)
{
    Synthetic syn(300);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {0, 1, 2};
    TablePredictor tp;
    tp.train(ds, cols);
    PfiConfig cfg;
    cfg.seed = 99;
    PfiResult a = computePfi(tp, ds, cols, cfg);
    PfiResult b = computePfi(tp, ds, cols, cfg);
    EXPECT_EQ(a.importance, b.importance);
}

TEST(PfiTest, DeterministicAcrossThreadCounts)
{
    Synthetic syn(400);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {0, 1, 2, 3};
    ForestConfig fcfg;
    fcfg.num_trees = 8;
    RandomForest forest(fcfg);
    forest.train(ds, cols);

    PfiConfig c1;
    c1.seed = 42;
    c1.threads = 1;
    PfiConfig c8 = c1;
    c8.threads = 8;
    PfiResult a = computePfi(forest, ds, cols, c1);
    PfiResult b = computePfi(forest, ds, cols, c8);
    EXPECT_EQ(a.base_error, b.base_error);
    EXPECT_EQ(a.importance, b.importance);  // bitwise, not approx
}

/**
 * Per-column permutation streams are keyed by column id, so the
 * importance of a column does not depend on which other columns are
 * computed alongside it — the property that makes selection-side
 * PFI caching exact.
 */
TEST(PfiTest, ColumnImportanceIndependentOfSubset)
{
    Synthetic syn(300);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols = {0, 1, 2};
    TablePredictor tp;
    tp.train(ds, cols);
    PfiConfig cfg;
    cfg.seed = 77;
    PfiResult full = computePfi(tp, ds, cols, cfg);
    PfiResult solo = computePfi(tp, ds, {1}, cfg);
    ASSERT_EQ(solo.importance.size(), 1u);
    EXPECT_EQ(solo.importance[0], full.importance[1]);  // bitwise
}

// ------------------------------------------------- FeatureSelection

TEST(SelectionTest, RecoversPlantedNecessarySet)
{
    Synthetic syn(1200);
    Dataset ds(syn.ptrs(), syn.schema);
    SelectionConfig cfg;
    cfg.max_error = 0.002;
    cfg.max_conditional_error = 0.012;
    SelectionResult r = selectNecessaryInputs(ds, cfg);
    // Must keep a and b; must drop the 4 kB row-id blob.
    EXPECT_NE(std::find(r.selected.begin(), r.selected.end(), syn.fa),
              r.selected.end());
    EXPECT_NE(std::find(r.selected.begin(), r.selected.end(), syn.fb),
              r.selected.end());
    EXPECT_EQ(std::find(r.selected.begin(), r.selected.end(), syn.fh),
              r.selected.end());
    EXPECT_LE(r.selected_bytes, 14u);
    EXPECT_LE(r.selected_error, 0.002);
    EXPECT_GT(r.selected_hit_rate, 0.8);
}

TEST(SelectionTest, CurveBytesMonotonicallyDecrease)
{
    Synthetic syn(400);
    Dataset ds(syn.ptrs(), syn.schema);
    SelectionResult r = selectNecessaryInputs(ds);
    uint64_t prev = ~0ull;
    for (const auto &step : r.curve) {
        EXPECT_LT(step.remaining_bytes, prev);
        prev = step.remaining_bytes;
    }
    EXPECT_FALSE(r.curve.empty());
}

TEST(SelectionTest, ForcedKeepHonored)
{
    Synthetic syn(400);
    Dataset ds(syn.ptrs(), syn.schema);
    SelectionConfig cfg;
    cfg.forced_keep = {syn.fn};  // force the noise field
    SelectionResult r = selectNecessaryInputs(ds, cfg);
    EXPECT_NE(std::find(r.selected.begin(), r.selected.end(), syn.fn),
              r.selected.end());
}

TEST(SelectionTest, TailExploresPastTheKnee)
{
    Synthetic syn(800);
    Dataset ds(syn.ptrs(), syn.schema);
    SelectionConfig cfg;
    cfg.max_error = 0.002;
    cfg.max_conditional_error = 0.012;
    SelectionResult r = selectNecessaryInputs(ds, cfg);
    // The exploratory tail must record at least one step whose
    // error exceeds the budget (the Fig. 9 ramp).
    bool past_knee = false;
    for (const auto &s : r.curve)
        past_knee |= (s.error > cfg.max_error);
    EXPECT_TRUE(past_knee);
}

TEST(SelectionTest, TinyProfileStillTerminates)
{
    Synthetic syn(8);
    Dataset ds(syn.ptrs(), syn.schema);
    SelectionResult r = selectNecessaryInputs(ds);
    EXPECT_FALSE(r.selected.empty());
}

/**
 * The cached-PFI fast path must be invisible in the output: because
 * per-column PFI streams are keyed by column id, recomputing only
 * the still-droppable columns at each refresh yields the same
 * SelectionResult as recomputing the full matrix every time.
 */
TEST(SelectionTest, CachedPfiMatchesFullRecompute)
{
    Synthetic syn(900);
    Dataset ds(syn.ptrs(), syn.schema);
    SelectionConfig cached;
    cached.max_error = 0.002;
    cached.max_conditional_error = 0.012;
    cached.cache_pfi = true;
    SelectionConfig full = cached;
    full.cache_pfi = false;

    SelectionResult a = selectNecessaryInputs(ds, cached);
    SelectionResult b = selectNecessaryInputs(ds, full);

    EXPECT_EQ(a.selected, b.selected);
    EXPECT_EQ(a.selected_bytes, b.selected_bytes);
    EXPECT_EQ(a.selected_error, b.selected_error);
    EXPECT_EQ(a.selected_hit_rate, b.selected_hit_rate);
    EXPECT_EQ(a.full_error, b.full_error);
    EXPECT_EQ(a.full_bytes, b.full_bytes);
    ASSERT_EQ(a.curve.size(), b.curve.size());
    for (size_t i = 0; i < a.curve.size(); ++i) {
        EXPECT_EQ(a.curve[i].dropped, b.curve[i].dropped);
        EXPECT_EQ(a.curve[i].remaining_bytes,
                  b.curve[i].remaining_bytes);
        EXPECT_EQ(a.curve[i].error, b.curve[i].error);
        EXPECT_EQ(a.curve[i].hit_rate, b.curve[i].hit_rate);
    }
}

// Parameterized: selection quality vs dataset size.
class SelectionSizeTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(SelectionSizeTest, ErrorWithinBudget)
{
    Synthetic syn(GetParam(), GetParam() * 13 + 7);
    Dataset ds(syn.ptrs(), syn.schema);
    SelectionConfig cfg;
    cfg.max_error = 0.002;
    cfg.max_conditional_error = 0.012;
    SelectionResult r = selectNecessaryInputs(ds, cfg);
    EXPECT_LE(r.selected_error, cfg.max_error);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SelectionSizeTest,
                         ::testing::Values(32, 100, 400, 1500));

// ----------------------------------------------------- ChunkedDataset

/** Synthetic records encoded as an SNCT v2 training trace. */
std::shared_ptr<const trace::ColumnarLog>
trainingLog(const Synthetic &syn)
{
    trace::Profile p;
    p.game = "synthetic";
    p.records = syn.records;
    auto bytes = std::make_shared<std::vector<uint8_t>>();
    util::Status st =
        trace::ColumnarLog::encodeTraining(p, bytes.get());
    EXPECT_TRUE(st.ok()) << st.message();
    auto log = trace::ColumnarLog::attach(bytes->data(),
                                          bytes->size(), bytes);
    EXPECT_TRUE(log.ok()) << log.status().message();
    return log.value();
}

void
expectSameSelection(const SelectionResult &a, const SelectionResult &b)
{
    EXPECT_EQ(a.selected, b.selected);
    EXPECT_EQ(a.selected_bytes, b.selected_bytes);
    EXPECT_EQ(a.selected_error, b.selected_error);
    EXPECT_EQ(a.selected_hit_rate, b.selected_hit_rate);
    ASSERT_EQ(a.curve.size(), b.curve.size());
    for (size_t i = 0; i < a.curve.size(); ++i) {
        EXPECT_EQ(a.curve[i].dropped, b.curve[i].dropped);
        EXPECT_EQ(a.curve[i].error, b.curve[i].error);
    }
}

// The mmap-shaped view must be cell-for-cell the in-memory Dataset:
// same columns, values, absent markers, labels, weights — and
// therefore train bitwise-identical models and selections.
TEST(ChunkedDatasetTest, MatchesInMemoryDataset)
{
    Synthetic syn(400);
    // Punch holes so the absent marker crosses the format too.
    for (size_t i = 0; i < syn.records.size(); i += 3)
        syn.records[i].inputs.erase(syn.records[i].inputs.begin() +
                                    2);
    Dataset mem(syn.ptrs(), syn.schema);
    auto log = trainingLog(syn);
    auto cds = ChunkedDataset::attach(log, events::EventType::Touch,
                                      syn.schema);
    ASSERT_TRUE(cds.ok()) << cds.status().message();
    const ChunkedDataset &ch = *cds.value();

    ASSERT_EQ(ch.numRows(), mem.numRows());
    ASSERT_EQ(ch.numFeatures(), mem.numFeatures());
    EXPECT_EQ(ch.totalWeight(), mem.totalWeight());
    for (size_t c = 0; c < mem.numFeatures(); ++c) {
        EXPECT_EQ(ch.featureField(c), mem.featureField(c));
        for (size_t r = 0; r < mem.numRows(); ++r)
            ASSERT_EQ(ch.value(r, c), mem.value(r, c))
                << "row " << r << " col " << c;
    }
    for (size_t r = 0; r < mem.numRows(); ++r) {
        ASSERT_EQ(ch.label(r), mem.label(r));
        ASSERT_EQ(ch.weight(r), mem.weight(r));
    }

    std::vector<size_t> cols(mem.numFeatures());
    for (size_t i = 0; i < cols.size(); ++i)
        cols[i] = i;
    ForestConfig fc;
    fc.num_trees = 8;
    RandomForest fm(fc), fch(fc);
    fm.train(mem, cols);
    fch.train(ch, cols);
    EXPECT_EQ(fm.fingerprint(), fch.fingerprint());

    SelectionConfig sc;
    expectSameSelection(selectNecessaryInputs(mem, sc),
                        selectNecessaryInputs(ch, sc));
}

// materializeRecord must reconstruct exactly the records the table
// prefill consumes: canonical input/output order, holes skipped,
// weight carried as instructions.
TEST(ChunkedDatasetTest, MaterializeRecordRoundTrip)
{
    Synthetic syn(60);
    for (size_t i = 1; i < syn.records.size(); i += 4)
        syn.records[i].inputs.erase(syn.records[i].inputs.begin());
    auto log = trainingLog(syn);
    auto cds = ChunkedDataset::attach(log, events::EventType::Touch,
                                      syn.schema);
    ASSERT_TRUE(cds.ok()) << cds.status().message();
    games::HandlerExecution rec;
    for (size_t r = 0; r < syn.records.size(); ++r) {
        cds.value()->materializeRecord(r, &rec);
        EXPECT_EQ(rec.type, syn.records[r].type);
        EXPECT_EQ(rec.inputs, syn.records[r].inputs) << r;
        EXPECT_EQ(rec.outputs, syn.records[r].outputs) << r;
        EXPECT_EQ(rec.cpu_instructions,
                  syn.records[r].cpu_instructions);
    }
}

// The digest-equality contract, block-size axis: any block geometry
// ({1, 64, 4096, all-rows}) must produce bitwise-identical forests
// and selections — noteStreamed cadence only drops clean pages,
// never changes bytes.
TEST(ChunkedDatasetTest, BlockSizeInvarianceFuzz)
{
    Synthetic syn(500, 9);
    auto log = trainingLog(syn);
    std::vector<size_t> blocks = {1, 64, 4096, syn.records.size()};

    uint64_t want_fp = 0;
    SelectionResult want_sel;
    for (size_t bi = 0; bi < blocks.size(); ++bi) {
        ChunkedConfig cfg;
        cfg.block_rows = blocks[bi];
        cfg.residency_budget_bytes = 1 << 16;  // aggressive drops
        auto cds = ChunkedDataset::attach(
            log, events::EventType::Touch, syn.schema, cfg);
        ASSERT_TRUE(cds.ok()) << cds.status().message();
        std::vector<size_t> cols(cds.value()->numFeatures());
        for (size_t i = 0; i < cols.size(); ++i)
            cols[i] = i;
        ForestConfig fc;
        fc.num_trees = 6;
        RandomForest f(fc);
        f.train(*cds.value(), cols);
        SelectionResult sel =
            selectNecessaryInputs(*cds.value(), {});
        if (bi == 0) {
            want_fp = f.fingerprint();
            want_sel = sel;
        } else {
            EXPECT_EQ(f.fingerprint(), want_fp)
                << "block " << blocks[bi];
            expectSameSelection(sel, want_sel);
        }
    }
}

// Thread axis of the same contract, on one SHARED mmap-shaped view:
// 1 vs 8 threads must agree bitwise (and under TSan this doubles as
// the shared-residency-accounting race smoke).
TEST(ChunkedDatasetTest, ThreadInvarianceOnSharedView)
{
    Synthetic syn(400, 5);
    auto log = trainingLog(syn);
    ChunkedConfig cfg;
    cfg.residency_budget_bytes = 1 << 16;
    auto cds = ChunkedDataset::attach(log, events::EventType::Touch,
                                      syn.schema, cfg);
    ASSERT_TRUE(cds.ok()) << cds.status().message();
    const ChunkedDataset &ds = *cds.value();
    std::vector<size_t> cols(ds.numFeatures());
    for (size_t i = 0; i < cols.size(); ++i)
        cols[i] = i;

    ForestConfig f1;
    f1.num_trees = 8;
    f1.threads = 1;
    ForestConfig f8 = f1;
    f8.threads = 8;
    RandomForest forest1(f1), forest8(f8);
    forest1.train(ds, cols);
    forest8.train(ds, cols);
    EXPECT_EQ(forest1.fingerprint(), forest8.fingerprint());

    PfiConfig p1;
    p1.threads = 1;
    PfiConfig p8 = p1;
    p8.threads = 8;
    PfiResult r1 = computePfi(forest1, ds, cols, p1);
    PfiResult r8 = computePfi(forest1, ds, cols, p8);
    EXPECT_EQ(r1.importance, r8.importance);
    EXPECT_EQ(r1.base_error, r8.base_error);
}

// A training section recorded against a different game must come
// back as an error Status, never a panic or out-of-bounds read.
TEST(ChunkedDatasetTest, RejectsForeignSchema)
{
    Synthetic syn(50);
    auto log = trainingLog(syn);
    events::FieldSchema tiny;
    tiny.addInput("only", events::InputCategory::Event, 2);
    auto cds = ChunkedDataset::attach(log, events::EventType::Touch,
                                      tiny);
    EXPECT_FALSE(cds.ok());
    // And a type with no section at all.
    auto none = ChunkedDataset::attach(log, events::EventType::Gps,
                                       syn.schema);
    EXPECT_FALSE(none.ok());
}

// ----------------------------------------------------------- PfiCache

// A cache hit must be byte-exact and observable: the second run
// re-scores nothing (shrink.pfi.cols_rescored unchanged) yet
// returns the identical result; changing the seed misses.
TEST(PfiTest, CacheServesExactHits)
{
    Synthetic syn(300);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols(ds.numFeatures());
    for (size_t i = 0; i < cols.size(); ++i)
        cols[i] = i;
    ForestConfig fc;
    fc.num_trees = 6;
    RandomForest forest(fc);
    forest.train(ds, cols);

    PfiCache cache;
    obs::Registry reg;
    PfiConfig pc;
    pc.cache = &cache;
    pc.obs = &reg;

    PfiResult a = computePfi(forest, ds, cols, pc);
    uint64_t rescored =
        reg.counter("shrink.pfi.cols_rescored").value();
    EXPECT_EQ(rescored, cols.size());
    EXPECT_EQ(reg.counter("shrink.pfi.cols_cached").value(), 0u);

    PfiResult b = computePfi(forest, ds, cols, pc);
    EXPECT_EQ(reg.counter("shrink.pfi.cols_rescored").value(),
              rescored);  // nothing re-scored
    EXPECT_EQ(reg.counter("shrink.pfi.cols_cached").value(),
              cols.size());
    EXPECT_EQ(a.importance, b.importance);
    EXPECT_EQ(a.base_error, b.base_error);

    // A different seed is a different key: must re-score.
    PfiConfig other = pc;
    other.seed = pc.seed + 1;
    (void)computePfi(forest, ds, cols, other);
    EXPECT_GT(reg.counter("shrink.pfi.cols_rescored").value(),
              rescored);
}

// The key must cover the dataset content: perturbing one value in a
// scored column forces a re-score.
TEST(PfiTest, CacheKeyTracksColumnContent)
{
    Synthetic syn(200);
    Dataset ds(syn.ptrs(), syn.schema);
    std::vector<size_t> cols(ds.numFeatures());
    for (size_t i = 0; i < cols.size(); ++i)
        cols[i] = i;
    ForestConfig fc;
    fc.num_trees = 4;
    RandomForest forest(fc);
    forest.train(ds, cols);

    PfiConfig pc;
    uint64_t k1 = pfiCacheKey(forest, ds, cols, pc);
    ASSERT_NE(k1, 0u);
    EXPECT_EQ(pfiCacheKey(forest, ds, cols, pc), k1);

    syn.records[7].inputs[0].value ^= 1;
    Dataset ds2(syn.ptrs(), syn.schema);
    EXPECT_NE(pfiCacheKey(forest, ds2, cols, pc), k1);

    // Dropping a column from the scored set changes the key too.
    std::vector<size_t> fewer(cols.begin(), cols.end() - 1);
    EXPECT_NE(pfiCacheKey(forest, ds, fewer, pc), k1);
}

}  // namespace
}  // namespace ml
}  // namespace snip
