/**
 * @file
 * Tests for the core SNIP layer: output diffing, the deployed memo
 * table, the naive / In.Event table analyses, the pipeline facade,
 * scheme decision policies, the session runner, and the continuous
 * learner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "core/continuous_learning.h"
#include "core/frozen_table.h"
#include "core/lookup_table.h"
#include "core/memo_table.h"
#include "core/model_codec.h"
#include "core/output_diff.h"
#include "core/scheme.h"
#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "obs/metrics.h"
#include "trace/columnar_log.h"
#include "trace/recorder.h"
#include "util/logging.h"

namespace snip {
namespace core {
namespace {

// --------------------------------------------------------- OutputDiff

class OutputDiffTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        t_ = schema_.addOutput("t", events::OutputCategory::Temp, 16);
        h_ = schema_.addOutput("h", events::OutputCategory::History, 4);
        x_ = schema_.addOutput("x", events::OutputCategory::Extern,
                               256);
    }

    events::FieldSchema schema_;
    events::FieldId t_, h_, x_;
};

TEST_F(OutputDiffTest, IdenticalIsClean)
{
    std::vector<events::FieldValue> a = {{t_, 1}, {h_, 2}};
    OutputDiff d = diffOutputs(a, a, schema_);
    EXPECT_FALSE(d.anyWrong());
    EXPECT_EQ(d.fields_total, 2u);
}

TEST_F(OutputDiffTest, TempOnlyDamage)
{
    std::vector<events::FieldValue> applied = {{t_, 1}, {h_, 2}};
    std::vector<events::FieldValue> truth = {{t_, 9}, {h_, 2}};
    OutputDiff d = diffOutputs(applied, truth, schema_);
    EXPECT_TRUE(d.anyWrong());
    EXPECT_TRUE(d.tempOnly());
    EXPECT_EQ(d.wrong_temp, 1u);
    EXPECT_EQ(d.wrong_history, 0u);
}

TEST_F(OutputDiffTest, HistoryDamageNotTempOnly)
{
    std::vector<events::FieldValue> applied = {{h_, 1}};
    std::vector<events::FieldValue> truth = {{h_, 2}};
    OutputDiff d = diffOutputs(applied, truth, schema_);
    EXPECT_FALSE(d.tempOnly());
    EXPECT_EQ(d.wrong_history, 1u);
}

TEST_F(OutputDiffTest, MissingAndSpuriousCountWrong)
{
    std::vector<events::FieldValue> applied = {{t_, 1}};
    std::vector<events::FieldValue> truth = {{h_, 2}};
    OutputDiff d = diffOutputs(applied, truth, schema_);
    EXPECT_EQ(d.fields_total, 2u);
    EXPECT_EQ(d.fields_wrong, 2u);
    EXPECT_EQ(d.wrong_temp, 1u);   // spurious temp write
    EXPECT_EQ(d.wrong_history, 1u);  // missing history write
}

TEST_F(OutputDiffTest, ExternDamage)
{
    std::vector<events::FieldValue> applied = {};
    std::vector<events::FieldValue> truth = {{x_, 7}};
    OutputDiff d = diffOutputs(applied, truth, schema_);
    EXPECT_EQ(d.wrong_extern, 1u);
    EXPECT_FALSE(d.tempOnly());
}

// ---------------------------------------------------------- MemoTable

class MemoTableTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        game_ = games::makeGame("colorphun");
        // Deploy the ground-truth necessary set.
        selected_ =
            game_->necessaryInputIds(events::EventType::Touch);
        table_ = std::make_unique<MemoTable>(game_->schema());
        table_->setSelected(events::EventType::Touch, selected_);
    }

    games::HandlerExecution
    nextExecution(util::Rng &rng)
    {
        events::EventObject ev =
            game_->makeEvent(events::EventType::Touch, 0.0, rng);
        last_event_ = ev;
        return game_->process(ev);
    }

    std::unique_ptr<games::Game> game_;
    std::vector<events::FieldId> selected_;
    std::unique_ptr<MemoTable> table_;
    events::EventObject last_event_;
};

TEST_F(MemoTableTest, MissOnEmptyTable)
{
    util::Rng rng(1);
    nextExecution(rng);
    MemoLookup res = table_->lookup(last_event_, *game_);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(res.candidates, 0u);
    // Gathering the necessary inputs still costs their bytes.
    EXPECT_EQ(res.bytes_scanned,
              table_->selectedBytes(events::EventType::Touch));
}

TEST_F(MemoTableTest, HitAfterInsertWithUnchangedState)
{
    util::Rng rng(2);
    games::HandlerExecution ex = nextExecution(rng);
    table_->insert(ex);
    EXPECT_EQ(table_->entryCount(), 1u);
    MemoLookup res = table_->lookup(last_event_, *game_);
    ASSERT_TRUE(res.hit);
    EXPECT_EQ(res.entry->outputs, ex.outputs);
    EXPECT_GE(res.candidates, 1u);
}

TEST_F(MemoTableTest, StateChangeInvalidatesMatch)
{
    util::Rng rng(3);
    games::HandlerExecution ex = nextExecution(rng);
    table_->insert(ex);
    // Perturb a necessary history field the entry stored.
    events::FieldId mode_out = game_->schema().find("o.mode");
    ASSERT_NE(mode_out, events::kInvalidField);
    uint64_t cur = game_->state().get(game_->schema().find("h.mode"));
    game_->state().apply(mode_out, cur + 1);
    MemoLookup res = table_->lookup(last_event_, *game_);
    EXPECT_FALSE(res.hit);
}

TEST_F(MemoTableTest, DuplicateInsertIgnored)
{
    util::Rng rng(4);
    games::HandlerExecution ex = nextExecution(rng);
    table_->insert(ex);
    table_->insert(ex);
    EXPECT_EQ(table_->entryCount(), 1u);
}

TEST_F(MemoTableTest, BytesAccounting)
{
    util::Rng rng(5);
    table_->insert(nextExecution(rng));
    EXPECT_GT(table_->totalBytes(), MemoTable::kEntryHeaderBytes);
    uint64_t one = table_->totalBytes();
    // Different state -> different key -> new entry.
    events::FieldId streak_out = game_->schema().find("o.streak");
    uint64_t cur =
        game_->state().get(game_->schema().find("h.streak"));
    game_->state().apply(streak_out, cur + 1);
    table_->insert(nextExecution(rng));
    EXPECT_GE(table_->totalBytes(), one);
}

TEST_F(MemoTableTest, ClearEmptiesTable)
{
    util::Rng rng(6);
    table_->insert(nextExecution(rng));
    table_->clear();
    EXPECT_EQ(table_->entryCount(), 0u);
    EXPECT_EQ(table_->totalBytes(), 0u);
}

TEST_F(MemoTableTest, UndeployedTypeMisses)
{
    // colorphun has no Gyro handler deployed in this table.
    events::EventObject ev;
    ev.type = events::EventType::Gyro;
    MemoLookup res = table_->lookup(ev, *game_);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(res.bytes_scanned, 0u);
}

TEST_F(MemoTableTest, SetSelectedAfterInsertFatal)
{
    bool prev = util::setThrowOnError(true);
    util::Rng rng(7);
    table_->insert(nextExecution(rng));
    EXPECT_THROW(
        table_->setSelected(events::EventType::Touch, selected_),
        std::runtime_error);
    util::setThrowOnError(prev);
}

// Regression: lookup() must be genuinely const (callable through a
// const MemoTable& — the shape concurrent readers use) and carries
// no mutable hit state at all; hit accounting lives in the caller's
// dense counter array indexed by the FrozenTable entry ordinal.
TEST_F(MemoTableTest, ConstLookupHitsFlowViaCallerOwnedOrdinals)
{
    util::Rng rng(8);
    table_->insert(nextExecution(rng));

    const MemoTable &ct = *table_;
    LookupScratch scratch;
    MemoLookup res = ct.lookup(last_event_, *game_, scratch);
    ASSERT_TRUE(res.hit);

    auto frozen = ct.freeze();
    std::vector<uint64_t> hit_counts(frozen->entryCount(), 0);
    FrozenLookup fres = frozen->lookup(last_event_, *game_, scratch);
    ASSERT_TRUE(fres.hit);
    ASSERT_LT(fres.entry_ordinal, hit_counts.size());
    EXPECT_EQ(hit_counts[fres.entry_ordinal], 0u);
    ++hit_counts[fres.entry_ordinal];

    FrozenLookup again = frozen->lookup(last_event_, *game_, scratch);
    ASSERT_TRUE(again.hit);
    EXPECT_EQ(again.entry_ordinal, fres.entry_ordinal);
    EXPECT_EQ(hit_counts[again.entry_ordinal], 1u);
}

// Regression: an insert whose inputs are not sorted by FieldId must
// project the same key as the canonical record (the two-pointer
// projection used to silently drop every field after the first
// out-of-order one).
TEST_F(MemoTableTest, UnsortedInsertKeepsAllKeyFields)
{
    util::Rng rng(9);
    games::HandlerExecution ex = nextExecution(rng);
    ASSERT_GT(ex.inputs.size(), 1u);

    games::HandlerExecution reversed = ex;
    std::reverse(reversed.inputs.begin(), reversed.inputs.end());

    MemoTable other(game_->schema());
    other.setSelected(events::EventType::Touch, selected_);
    other.insert(reversed);
    table_->insert(ex);

    EXPECT_EQ(other.entryCount(), table_->entryCount());
    EXPECT_EQ(other.totalBytes(), table_->totalBytes());
    MemoLookup res = other.lookup(last_event_, *game_);
    EXPECT_TRUE(res.hit);
}

// Regression: a missing In.Event field must not hash (and therefore
// match) like a present field whose value is UINT64_MAX — the old
// code used ~0ULL as the absence sentinel.
TEST_F(MemoTableTest, MissingFieldDoesNotCollideWithMaxValue)
{
    // Deploy a single In.Event key field.
    events::FieldId key_fid = events::kInvalidField;
    for (events::FieldId fid : selected_) {
        const auto &d = game_->schema().def(fid);
        if (d.side == events::FieldSide::Input &&
            d.in_cat == events::InputCategory::Event) {
            key_fid = fid;
            break;
        }
    }
    ASSERT_NE(key_fid, events::kInvalidField);
    MemoTable table(game_->schema());
    table.setSelected(events::EventType::Touch, {key_fid});

    // Entry recorded from an execution that never read the field.
    games::HandlerExecution rec;
    rec.type = events::EventType::Touch;
    rec.outputs = {{game_->schema().find("o.mode"), 1}};
    table.insert(rec);
    ASSERT_EQ(table.entryCount(), 1u);

    // An event carrying the legitimate value UINT64_MAX must not
    // land in the missing-field bucket (a false short-circuit).
    events::EventObject ev;
    ev.type = events::EventType::Touch;
    ev.fields = {{key_fid, ~0ULL}};
    MemoLookup res = table.lookup(ev, *game_);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(res.candidates, 0u);

    // And the converse: an event missing the field must not match
    // an entry keyed on value UINT64_MAX.
    games::HandlerExecution rec_max;
    rec_max.type = events::EventType::Touch;
    rec_max.inputs = {{key_fid, ~0ULL}};
    rec_max.outputs = {{game_->schema().find("o.mode"), 2}};
    MemoTable table2(game_->schema());
    table2.setSelected(events::EventType::Touch, {key_fid});
    table2.insert(rec_max);
    events::EventObject missing;
    missing.type = events::EventType::Touch;
    MemoLookup res2 = table2.lookup(missing, *game_);
    EXPECT_FALSE(res2.hit);
    EXPECT_EQ(res2.candidates, 0u);
}

// Duplicate inserts must leave both entryCount() and totalBytes()
// untouched (append-only semantics keep the first outputs).
TEST_F(MemoTableTest, DuplicateInsertAccountingUnchanged)
{
    util::Rng rng(10);
    games::HandlerExecution ex = nextExecution(rng);
    table_->insert(ex);
    size_t count = table_->entryCount();
    uint64_t bytes = table_->totalBytes();
    table_->insert(ex);
    table_->insert(ex);
    EXPECT_EQ(table_->entryCount(), count);
    EXPECT_EQ(table_->totalBytes(), bytes);
}

// clear() then re-inserting the same records must reproduce the
// exact accounting and hit behaviour of the first fill.
TEST_F(MemoTableTest, ClearThenReinsertRoundTrip)
{
    util::Rng rng(11);
    games::HandlerExecution ex = nextExecution(rng);
    table_->insert(ex);
    size_t count = table_->entryCount();
    uint64_t bytes = table_->totalBytes();

    table_->clear();
    EXPECT_EQ(table_->entryCount(), 0u);
    EXPECT_EQ(table_->totalBytes(), 0u);

    table_->insert(ex);
    EXPECT_EQ(table_->entryCount(), count);
    EXPECT_EQ(table_->totalBytes(), bytes);
    MemoLookup res = table_->lookup(last_event_, *game_);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.entry->outputs, ex.outputs);
}

// The reusable scratch must produce results identical to the
// convenience overload, whatever type width was looked up before.
TEST_F(MemoTableTest, ScratchReuseAcrossLookupsIsEquivalent)
{
    util::Rng rng(12);
    LookupScratch scratch;
    for (int i = 0; i < 20; ++i) {
        games::HandlerExecution ex = nextExecution(rng);
        table_->insert(ex);
        MemoLookup a = table_->lookup(last_event_, *game_, scratch);
        MemoLookup b = table_->lookup(last_event_, *game_);
        EXPECT_EQ(a.hit, b.hit);
        EXPECT_EQ(a.candidates, b.candidates);
        EXPECT_EQ(a.bytes_scanned, b.bytes_scanned);
        EXPECT_EQ(a.entry, b.entry);
    }
}

// A second table over the same schema whose entries are unioned in
// must behave like inserting the underlying records directly, with
// first-wins dedup preserved.
TEST_F(MemoTableTest, MergeFromUnionsEntries)
{
    util::Rng rng(13);
    games::HandlerExecution shared = nextExecution(rng);
    events::EventObject shared_event = last_event_;
    table_->insert(shared);
    size_t before = table_->entryCount();

    MemoTable other(game_->schema());
    other.setSelected(events::EventType::Touch, selected_);
    other.insert(shared);  // duplicate key: must not grow the union
    games::HandlerExecution fresh{};
    size_t other_only = 0;
    for (int i = 0; i < 50 && other_only == 0; ++i) {
        fresh = nextExecution(rng);
        other.insert(fresh);
        other_only = other.entryCount() - 1;
    }
    ASSERT_EQ(other_only, 1u);

    table_->mergeFrom(other);
    EXPECT_EQ(table_->entryCount(), before + 1);
    MemoLookup hit = table_->lookup(last_event_, *game_);
    ASSERT_TRUE(hit.hit);
    EXPECT_EQ(hit.entry->outputs, fresh.outputs);
    // Merging again is idempotent, and the shared entry kept the
    // first-inserted outputs.
    table_->mergeFrom(other);
    EXPECT_EQ(table_->entryCount(), before + 1);
    MemoLookup dup = table_->lookup(shared_event, *game_);
    ASSERT_TRUE(dup.hit);
    EXPECT_EQ(dup.entry->outputs, shared.outputs);
}

// -------------------------------------------------------- FrozenTable

// The deployed flat arena must make exactly the decisions of the
// mutable table it was frozen from: hit/miss, candidate count, byte
// accounting and matched outputs, over a large randomized event
// stream mixing replays of profiled events with fresh ones.
TEST_F(MemoTableTest, FrozenEquivalenceOverRandomEvents)
{
    util::Rng rng(0xf00d);
    std::vector<events::EventObject> seen;
    for (int i = 0; i < 256; ++i) {
        table_->insert(nextExecution(rng));
        seen.push_back(last_event_);
    }
    auto frozen = table_->freeze();
    ASSERT_EQ(frozen->entryCount(), table_->entryCount());
    ASSERT_EQ(frozen->totalBytes(), table_->totalBytes());

    LookupScratch ms, fs;
    uint64_t hits = 0;
    for (int i = 0; i < 10000; ++i) {
        events::EventObject ev =
            rng.next() % 2 == 0
                ? seen[rng.next() % seen.size()]
                : game_->makeEvent(events::EventType::Touch, 0.0,
                                   rng);
        MemoLookup m = table_->lookup(ev, *game_, ms);
        FrozenLookup f = frozen->lookup(ev, *game_, fs);
        ASSERT_EQ(m.hit, f.hit) << "event " << i;
        ASSERT_EQ(m.candidates, f.candidates) << "event " << i;
        ASSERT_EQ(m.bytes_scanned, f.bytes_scanned) << "event " << i;
        if (m.hit) {
            ++hits;
            ASSERT_EQ(m.entry->outputs.size(), f.nout);
            for (uint32_t o = 0; o < f.nout; ++o) {
                ASSERT_EQ(m.entry->outputs[o].id, f.out_ids[o]);
                ASSERT_EQ(m.entry->outputs[o].value,
                          f.out_values[o]);
            }
        }
    }
    // The stream replays profiled events, so some must still hit
    // (the most recent insert matches the current game state).
    EXPECT_GT(hits, 0u);
}

// attach() over a copy of the arena bytes must reproduce the
// freeze()-built view exactly — this is the wire round trip the v2
// package performs — and the copy is a zero-copy view over the
// caller's buffer.
TEST_F(MemoTableTest, FrozenArenaAttachRoundTrip)
{
    util::Rng rng(0xa77ac4);
    std::vector<events::EventObject> seen;
    for (int i = 0; i < 64; ++i) {
        table_->insert(nextExecution(rng));
        seen.push_back(last_event_);
    }
    auto frozen = table_->freeze();
    EXPECT_FALSE(frozen->zeroCopy());  // freeze() owns its arena

    auto bytes = std::make_shared<std::vector<uint64_t>>(
        (frozen->arenaSize() + 7) / 8);
    std::memcpy(bytes->data(), frozen->arenaData(),
                frozen->arenaSize());
    auto attached = FrozenTable::attach(
        reinterpret_cast<const uint8_t *>(bytes->data()),
        frozen->arenaSize(), bytes, game_->schema());
    ASSERT_TRUE(attached.ok()) << attached.status().message();
    const FrozenTable &view = *attached.value();
    EXPECT_TRUE(view.zeroCopy());
    EXPECT_EQ(view.entryCount(), frozen->entryCount());
    EXPECT_EQ(view.totalBytes(), frozen->totalBytes());

    LookupScratch a, b;
    for (const auto &ev : seen) {
        FrozenLookup x = frozen->lookup(ev, *game_, a);
        FrozenLookup y = view.lookup(ev, *game_, b);
        ASSERT_EQ(x.hit, y.hit);
        ASSERT_EQ(x.candidates, y.candidates);
        ASSERT_EQ(x.bytes_scanned, y.bytes_scanned);
        if (x.hit) {
            ASSERT_EQ(x.entry_ordinal, y.entry_ordinal);
            ASSERT_EQ(x.nout, y.nout);
            for (uint32_t o = 0; o < x.nout; ++o)
                ASSERT_EQ(x.out_values[o], y.out_values[o]);
        }
    }
}

// Corrupted "SNPF" arenas must never crash attach(): truncations are
// always rejected (the header's total_size can't match), and bit
// flips either fail validation or land in stored values, in which
// case the view must still be safely probeable (asan/ubsan verify
// the bounds). SNIP_FUZZ_ITERS cranks the iteration count in CI.
TEST_F(MemoTableTest, FrozenArenaCorruptionFuzz)
{
    size_t iters = 64;
    if (const char *env = std::getenv("SNIP_FUZZ_ITERS"))
        iters = static_cast<size_t>(std::strtoull(env, nullptr, 10));

    util::Rng rng(0xc0441457ULL);
    std::vector<events::EventObject> seen;
    for (int i = 0; i < 48; ++i) {
        table_->insert(nextExecution(rng));
        seen.push_back(last_event_);
    }
    auto frozen = table_->freeze();
    size_t n = frozen->arenaSize();
    ASSERT_GT(n, 32u);

    for (size_t i = 0; i < iters; ++i) {
        auto bytes = std::make_shared<std::vector<uint64_t>>(
            (n + 7) / 8);
        std::memcpy(bytes->data(), frozen->arenaData(), n);
        auto *raw = reinterpret_cast<uint8_t *>(bytes->data());
        size_t len = n;
        if (rng.next() % 2 == 0) {
            len = rng.next() % n;  // truncate
        } else {
            size_t flips = 1 + rng.next() % 8;
            for (size_t f = 0; f < flips; ++f)
                raw[rng.next() % n] ^=
                    static_cast<uint8_t>(1u + rng.next() % 255);
        }
        auto res = FrozenTable::attach(raw, len, bytes,
                                       game_->schema());
        if (len < n) {
            EXPECT_FALSE(res.ok()) << "truncation accepted, " << len;
            continue;
        }
        if (!res.ok())
            continue;  // structural validation caught the flip
        // Flip landed in stored data: still a valid, bounded view.
        LookupScratch scratch;
        for (size_t e = 0; e < 8 && e < seen.size(); ++e) {
            FrozenLookup r =
                res.value()->lookup(seen[e], *game_, scratch);
            (void)r;
        }
    }
}

// lookupBatch() must agree with per-event lookup() on every field of
// every FrozenLookup, for any window size (including ragged tails and
// single-event blocks), over a stream mixing profiled and fresh
// events.
TEST_F(MemoTableTest, FrozenLookupBatchMatchesScalar)
{
    util::Rng rng(0xba7c4);
    std::vector<events::EventObject> seen;
    for (int i = 0; i < 256; ++i) {
        table_->insert(nextExecution(rng));
        seen.push_back(last_event_);
    }
    auto frozen = table_->freeze();

    std::vector<events::EventObject> stream;
    for (int i = 0; i < 4096; ++i)
        stream.push_back(
            rng.next() % 2 == 0
                ? seen[rng.next() % seen.size()]
                : game_->makeEvent(events::EventType::Touch, 0.0,
                                   rng));

    LookupScratch ss;
    BatchLookupScratch bs;
    uint64_t hits = 0;
    for (size_t block : {size_t(1), size_t(7), size_t(32),
                         size_t(211)}) {
        std::vector<FrozenLookup> out(block);
        for (size_t base = 0; base < stream.size(); base += block) {
            size_t len = std::min(block, stream.size() - base);
            frozen->lookupBatch({stream.data() + base, len}, *game_,
                                {out.data(), len}, bs);
            for (size_t k = 0; k < len; ++k) {
                FrozenLookup s = frozen->lookup(stream[base + k],
                                                *game_, ss);
                const FrozenLookup &b = out[k];
                ASSERT_EQ(s.hit, b.hit) << base + k;
                ASSERT_EQ(s.candidates, b.candidates) << base + k;
                ASSERT_EQ(s.bytes_scanned, b.bytes_scanned)
                    << base + k;
                if (s.hit) {
                    ++hits;
                    ASSERT_EQ(s.entry_ordinal, b.entry_ordinal);
                    ASSERT_EQ(s.nout, b.nout);
                    for (uint32_t o = 0; o < s.nout; ++o) {
                        ASSERT_EQ(s.out_ids[o], b.out_ids[o]);
                        ASSERT_EQ(s.out_values[o], b.out_values[o]);
                    }
                }
            }
        }
    }
    EXPECT_GT(hits, 0u);
}

// probeBatch() resolves the same index ranges the scalar probe does,
// and a probe finished later via finishLookup() equals a direct
// lookup (the prepareBatch()/decide() split in SnipScheme).
TEST_F(MemoTableTest, ProbeBatchMatchesScalarProbe)
{
    util::Rng rng(0x9e0be);
    std::vector<events::EventObject> seen;
    for (int i = 0; i < 128; ++i) {
        table_->insert(nextExecution(rng));
        seen.push_back(last_event_);
    }
    auto frozen = table_->freeze();

    std::vector<events::EventObject> stream;
    for (int i = 0; i < 512; ++i)
        stream.push_back(
            rng.next() % 2 == 0
                ? seen[rng.next() % seen.size()]
                : game_->makeEvent(events::EventType::Touch, 0.0,
                                   rng));

    BatchLookupScratch bs;
    std::vector<FrozenProbe> probes(stream.size());
    frozen->probeBatch({stream.data(), stream.size()},
                       {probes.data(), probes.size()}, bs);
    LookupScratch a, b;
    for (size_t i = 0; i < stream.size(); ++i) {
        FrozenProbe p = frozen->probeEvent(stream[i]);
        ASSERT_EQ(p.begin, probes[i].begin) << i;
        ASSERT_EQ(p.count, probes[i].count) << i;
        FrozenLookup via =
            frozen->finishLookup(stream[i], *game_, a, probes[i]);
        FrozenLookup direct = frozen->lookup(stream[i], *game_, b);
        ASSERT_EQ(via.hit, direct.hit) << i;
        ASSERT_EQ(via.candidates, direct.candidates) << i;
        ASSERT_EQ(via.bytes_scanned, direct.bytes_scanned) << i;
    }
}

// ------------------------------------------------------ lookup tables

class AnalysisTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        game_ = games::makeGame("ab_evolution");
        BaselineScheme baseline;
        SimulationConfig cfg;
        cfg.duration_s = 40.0;
        cfg.record_events = true;
        cfg.seed = 31;
        SessionResult res = runSession(*game_, baseline, cfg);
        auto replica = games::makeGame("ab_evolution");
        profile_ = trace::Replayer::replay(res.trace, *replica);
    }

    std::unique_ptr<games::Game> game_;
    trace::Profile profile_;
};

TEST_F(AnalysisTest, NaiveCurveMonotone)
{
    NaiveTableAnalysis naive(profile_, game_->schema());
    ASSERT_FALSE(naive.curve().empty());
    double prev_cov = -1.0;
    uint64_t prev_entries = 0;
    for (const auto &p : naive.curve()) {
        EXPECT_GE(p.coverage, prev_cov);
        EXPECT_GE(p.entries, prev_entries);
        EXPECT_EQ(p.input_bytes, p.entries * naive.rowInputBytes());
        prev_cov = p.coverage;
        prev_entries = p.entries;
    }
    EXPECT_GT(naive.rowInputBytes(), 1000000u);  // ~1 MB rows
}

TEST_F(AnalysisTest, NaiveBytesForCoverage)
{
    NaiveTableAnalysis naive(profile_, game_->schema());
    double final_cov = naive.finalCoverage();
    if (final_cov > 0.005) {
        EXPECT_GT(naive.bytesForCoverage(final_cov / 2), 0u);
    }
    EXPECT_EQ(naive.bytesForCoverage(0.999), 0u);
}

TEST_F(AnalysisTest, InEventTableSmallerButErroneous)
{
    InEventTableResult r =
        analyzeInEventTable(profile_, game_->schema());
    EXPECT_GT(r.entries, 0u);
    EXPECT_LT(r.table_bytes, r.naive_bytes / 100);
    EXPECT_GT(r.coverage, 0.02);
    EXPECT_GT(r.erroneous_hit_fraction, 0.01);
    double cat_sum = r.err_temp_only + r.err_history + r.err_extern;
    EXPECT_NEAR(cat_sum, 1.0, 1e-9);
}

// -------------------------------------------------------- SnipModel

TEST_F(AnalysisTest, BuildModelSelectsPerType)
{
    SnipModel model = buildSnipModel(profile_, *game_);
    EXPECT_EQ(model.game, "ab_evolution");
    EXPECT_GE(model.types.size(), 2u);
    ASSERT_NE(model.table, nullptr);
    EXPECT_GT(model.table->entryCount(), 10u);
    EXPECT_GT(model.selectedBytes(), 0u);
    // Selected sets must be small relative to the full record.
    EXPECT_LT(model.selectedBytes(),
              game_->schema().totalInputBytes() / 20);
}

TEST_F(AnalysisTest, DeveloperOverrideForcesField)
{
    SnipConfig cfg;
    cfg.overrides.force_keep = {"drag.path"};  // a noise field
    SnipModel model = buildSnipModel(profile_, *game_, cfg);
    events::FieldId path = game_->schema().find("drag.path");
    bool kept = false;
    for (const auto &t : model.types) {
        if (t.type != events::EventType::Drag)
            continue;
        kept = std::find(t.selection.selected.begin(),
                         t.selection.selected.end(),
                         path) != t.selection.selected.end();
    }
    EXPECT_TRUE(kept);
}

TEST_F(AnalysisTest, UnknownOverrideFatal)
{
    bool prev = util::setThrowOnError(true);
    SnipConfig cfg;
    cfg.overrides.force_keep = {"not.a.field"};
    EXPECT_THROW(buildSnipModel(profile_, *game_, cfg),
                 std::runtime_error);
    util::setThrowOnError(prev);
}

TEST_F(AnalysisTest, SparseTypesLeftUndeployed)
{
    SnipConfig cfg;
    cfg.min_records_per_type = 1u << 30;
    SnipModel model = buildSnipModel(profile_, *game_, cfg);
    EXPECT_TRUE(model.types.empty());
    EXPECT_EQ(model.table->entryCount(), 0u);
}

// ------------------------------------------------------------ Schemes

TEST(Schemes, BaselineNeverSkips)
{
    auto game = games::makeGame("colorphun");
    BaselineScheme s;
    util::Rng rng(1);
    events::EventObject ev =
        game->makeEvent(events::EventType::Touch, 0.0, rng);
    games::HandlerExecution truth = game->process(ev);
    Decision d = s.decide(*game, ev, truth);
    EXPECT_FALSE(d.shortcircuit);
    EXPECT_DOUBLE_EQ(d.cpu_skip_fraction, 0.0);
    EXPECT_FALSE(d.skip_ips);
}

TEST(Schemes, MaxCpuSkipsOnRepeat)
{
    auto game = games::makeGame("colorphun");
    MaxCpuScheme s;
    util::Rng rng(2);
    events::EventObject ev =
        game->makeEvent(events::EventType::Touch, 0.0, rng);
    games::HandlerExecution truth = game->process(ev);
    Decision first = s.decide(*game, ev, truth);
    EXPECT_DOUBLE_EQ(first.cpu_skip_fraction, 0.0);
    s.observe(truth);
    Decision second = s.decide(*game, ev, truth);
    EXPECT_DOUBLE_EQ(second.cpu_skip_fraction,
                     truth.maxcpu_fraction);
    EXPECT_FALSE(second.shortcircuit);
}

TEST(Schemes, MaxIpSkipsIpsOnExactEventRepeat)
{
    auto game = games::makeGame("colorphun");
    MaxIpScheme s;
    util::Rng rng(3);
    events::EventObject ev =
        game->makeEvent(events::EventType::Touch, 0.0, rng);
    games::HandlerExecution truth = game->process(ev);
    Decision first = s.decide(*game, ev, truth);
    EXPECT_FALSE(first.skip_ips);
    s.observe(truth);
    Decision second = s.decide(*game, ev, truth);
    EXPECT_TRUE(second.skip_ips);
    EXPECT_LT(s.ipSleepTimeout(), BaselineScheme().ipSleepTimeout());
}

TEST(Schemes, MaxIpDecideAloneDoesNotLearn)
{
    // decide() must be read-only: a pipelined caller that separates
    // decide from observe must not see the event as "seen" until
    // observe() runs, and re-deciding without observing must never
    // change the answer.
    auto game = games::makeGame("colorphun");
    MaxIpScheme s;
    util::Rng rng(3);
    events::EventObject ev =
        game->makeEvent(events::EventType::Touch, 0.0, rng);
    games::HandlerExecution truth = game->process(ev);
    EXPECT_FALSE(s.decide(*game, ev, truth).skip_ips);
    EXPECT_FALSE(s.decide(*game, ev, truth).skip_ips);
    EXPECT_FALSE(s.decide(*game, ev, truth).skip_ips);
    s.observe(truth);
    EXPECT_TRUE(s.decide(*game, ev, truth).skip_ips);
}

TEST(Schemes, SnipHitsAfterObserve)
{
    auto game = games::makeGame("colorphun");
    // Empty-profile model with ground-truth selection.
    SnipModel model;
    model.game = game->name();
    model.table = std::make_unique<MemoTable>(game->schema());
    model.table->setSelected(
        events::EventType::Touch,
        game->necessaryInputIds(events::EventType::Touch));

    SnipScheme s(model);
    util::Rng rng(4);
    events::EventObject ev =
        game->makeEvent(events::EventType::Touch, 0.0, rng);
    games::HandlerExecution truth = game->process(ev);
    Decision miss = s.decide(*game, ev, truth);
    EXPECT_FALSE(miss.shortcircuit);
    s.observe(truth);  // online fill
    Decision hit = s.decide(*game, ev, truth);
    ASSERT_TRUE(hit.shortcircuit);
    EXPECT_EQ(hit.outputs, truth.outputs);
    EXPECT_GT(hit.lookup_bytes, 0u);
}

TEST(Schemes, NoOverheadsVariant)
{
    auto game = games::makeGame("colorphun");
    SnipModel model;
    model.game = game->name();
    model.table = std::make_unique<MemoTable>(game->schema());
    model.table->setSelected(
        events::EventType::Touch,
        game->necessaryInputIds(events::EventType::Touch));
    auto s = makeScheme(SchemeKind::NoOverheads, &model);
    EXPECT_EQ(s->kind(), SchemeKind::NoOverheads);
    util::Rng rng(5);
    events::EventObject ev =
        game->makeEvent(events::EventType::Touch, 0.0, rng);
    games::HandlerExecution truth = game->process(ev);
    Decision d = s->decide(*game, ev, truth);
    EXPECT_FALSE(d.charge_lookup);
}

TEST(Schemes, FactoryRequiresModelForSnip)
{
    bool prev = util::setThrowOnError(true);
    EXPECT_THROW(makeScheme(SchemeKind::Snip, nullptr),
                 std::runtime_error);
    EXPECT_NO_THROW(makeScheme(SchemeKind::Baseline));
    util::setThrowOnError(prev);
}

TEST(Schemes, Names)
{
    EXPECT_STREQ(schemeName(SchemeKind::Baseline), "Baseline");
    EXPECT_STREQ(schemeName(SchemeKind::Snip), "SNIP");
    EXPECT_STREQ(schemeName(SchemeKind::NoOverheads), "No Overheads");
}

// On the overlay-fallback path (frozen miss, overlay consulted) the
// overlay's shared gather cost is already covered by the frozen
// charge; an overlay scan charged no more than that cost must
// contribute zero extra lookup bytes — never wrap the subtraction.
TEST(Schemes, OverlayFallbackLookupBytesNoUnderflow)
{
    auto game = games::makeGame("colorphun");
    SnipModel model;
    model.game = game->name();
    model.table = std::make_unique<MemoTable>(game->schema());
    model.table->setSelected(
        events::EventType::Touch,
        game->necessaryInputIds(events::EventType::Touch));

    SnipScheme s(model);
    util::Rng rng(21);
    events::EventObject ev1 =
        game->makeEvent(events::EventType::Touch, 0.0, rng);
    games::HandlerExecution truth1 = game->process(ev1);
    EXPECT_FALSE(s.decide(*game, ev1, truth1).lookup_hit);
    s.observe(truth1);  // online fill: overlay now non-empty
    ASSERT_GT(s.overlayEntries(), 0u);

    // A fresh event missing in both tables: the frozen (empty)
    // lookup charges the gather cost, the overlay scan hits an
    // empty bucket and may charge no more than that same cost.
    events::EventObject ev2 =
        game->makeEvent(events::EventType::Touch, 1.0, rng);
    games::HandlerExecution truth2 = game->process(ev2);
    LookupScratch scratch;
    FrozenLookup f = s.frozen().lookup(ev2, *game, scratch);
    ASSERT_FALSE(f.hit);
    Decision d = s.decide(*game, ev2, truth2);
    EXPECT_FALSE(d.lookup_hit);
    // No underflow: the total can only be the frozen charge plus a
    // small non-negative overlay surplus, not a wrapped uint64.
    EXPECT_GE(d.lookup_bytes, f.bytes_scanned);
    EXPECT_LT(d.lookup_bytes, f.bytes_scanned + (1u << 20));
    if (d.lookup_candidates == 0) {
        EXPECT_EQ(d.lookup_bytes, f.bytes_scanned);
    }
}

// The 10k-event batch-vs-scalar fuzz: mixed event types, the audit
// watchdog live, online fill on. decideBatch() must produce
// bitwise-identical Decision sequences and leave both schemes with
// identical hit counts, audit counters and overlay contents.
TEST(Schemes, DecideBatchMatchesScalarFuzz)
{
    auto game = games::makeGame("ab_evolution");
    BaselineScheme baseline;
    SimulationConfig cfg;
    cfg.duration_s = 60.0;
    cfg.record_events = true;
    cfg.seed = 99;
    SessionResult res = runSession(*game, baseline, cfg);
    auto replica = games::makeGame("ab_evolution");
    trace::Profile profile =
        trace::Replayer::replay(res.trace, *replica);
    SnipConfig scfg;
    scfg.min_records_per_type = 8;
    SnipModel model = buildSnipModel(profile, *game, scfg);
    ASSERT_NE(model.table, nullptr);

    // Tile the recorded stream to 10k events (duplicates are what
    // make the hit/audit paths fire); the game keeps its
    // end-of-session state, matching the most recent records.
    const auto &evs = res.trace.events;
    const auto &recs = profile.records;
    ASSERT_EQ(evs.size(), recs.size());
    ASSERT_GT(evs.size(), 0u);
    const size_t kTotal = 10000;
    std::vector<events::EventObject> stream(kTotal);
    std::vector<games::HandlerExecution> truths(kTotal);
    for (size_t i = 0; i < kTotal; ++i) {
        stream[i] = evs[i % evs.size()];
        truths[i] = recs[i % recs.size()];
    }

    SnipRuntimeConfig rcfg;
    rcfg.online_fill = true;
    rcfg.audit_every = 4;
    SnipScheme scalar(model, rcfg);
    SnipScheme batched(model, rcfg);

    util::Rng brng(0xb10c);
    std::vector<Decision> bdec;
    uint64_t hits = 0;
    size_t base = 0;
    while (base < kTotal) {
        size_t len = std::min<size_t>(1 + brng.next() % 64,
                                      kTotal - base);
        bdec.resize(len);
        batched.prepareBatch({stream.data() + base, len});
        batched.decideBatch(*game, {stream.data() + base, len},
                            {truths.data() + base, len},
                            {bdec.data(), len});
        for (size_t k = 0; k < len; ++k) {
            Decision sd =
                scalar.decide(*game, stream[base + k],
                              truths[base + k]);
            if (!sd.shortcircuit)
                scalar.observe(truths[base + k]);
            const Decision &bd = bdec[k];
            ASSERT_EQ(sd.shortcircuit, bd.shortcircuit) << base + k;
            ASSERT_EQ(sd.outputs, bd.outputs) << base + k;
            ASSERT_EQ(sd.cpu_skip_fraction, bd.cpu_skip_fraction);
            ASSERT_EQ(sd.skip_ips, bd.skip_ips) << base + k;
            ASSERT_EQ(sd.lookup_bytes, bd.lookup_bytes) << base + k;
            ASSERT_EQ(sd.lookup_candidates, bd.lookup_candidates)
                << base + k;
            ASSERT_EQ(sd.charge_lookup, bd.charge_lookup);
            ASSERT_EQ(sd.lookup_ran, bd.lookup_ran) << base + k;
            ASSERT_EQ(sd.lookup_hit, bd.lookup_hit) << base + k;
            ASSERT_EQ(sd.audited, bd.audited) << base + k;
            hits += sd.lookup_hit;
        }
        base += len;
    }
    EXPECT_EQ(scalar.hitCounts(), batched.hitCounts());
    EXPECT_EQ(scalar.auditsRun(), batched.auditsRun());
    EXPECT_EQ(scalar.auditsFailed(), batched.auditsFailed());
    EXPECT_EQ(scalar.tableClears(), batched.tableClears());
    EXPECT_EQ(scalar.overlayEntries(), batched.overlayEntries());
    EXPECT_EQ(scalar.frozenActive(), batched.frozenActive());
    // The tiled duplicates must actually exercise the hit path
    // (and with it the audit watchdog).
    EXPECT_GT(hits, 0u);
    EXPECT_GT(scalar.auditsRun(), 0u);
    EXPECT_GT(scalar.overlayEntries(), 0u);
}

// --------------------------------------------------------- Simulation

TEST(Simulation, SessionStatsConsistent)
{
    auto game = games::makeGame("greenwall");
    BaselineScheme baseline;
    SimulationConfig cfg;
    cfg.duration_s = 20.0;
    SessionResult res = runSession(*game, baseline, cfg);
    EXPECT_GT(res.stats.events, 100u);
    EXPECT_EQ(res.stats.shortcircuits, 0u);
    EXPECT_EQ(res.stats.instr_skipped, 0u);
    EXPECT_GT(res.stats.instr_total, 0u);
    EXPECT_GT(res.report.total(), 0.0);
    EXPECT_NEAR(res.report.elapsed(), 20.0, 0.2);
    EXPECT_DOUBLE_EQ(res.stats.errorFieldRate(), 0.0);
}

TEST(Simulation, RecordingCapturesAllEvents)
{
    auto game = games::makeGame("colorphun");
    BaselineScheme baseline;
    SimulationConfig cfg;
    cfg.duration_s = 15.0;
    cfg.record_events = true;
    SessionResult res = runSession(*game, baseline, cfg);
    EXPECT_EQ(res.trace.events.size(), res.stats.events);
    EXPECT_EQ(res.trace.game, "colorphun");
}

TEST(Simulation, SameSeedSameEnergy)
{
    auto game = games::makeGame("candy_crush");
    BaselineScheme a, b;
    SimulationConfig cfg;
    cfg.duration_s = 10.0;
    cfg.seed = 777;
    double e1 = runSession(*game, a, cfg).report.total();
    double e2 = runSession(*game, b, cfg).report.total();
    EXPECT_DOUBLE_EQ(e1, e2);
}

// Sessions must be bitwise-identical at every batch_block setting:
// the batched drain only hoists event generation and the frozen
// index probes, never any state-dependent work.
TEST(Simulation, BatchedSessionBitwiseIdentical)
{
    auto game = games::makeGame("colorphun");
    BaselineScheme baseline;
    SimulationConfig pcfg;
    pcfg.duration_s = 30.0;
    pcfg.record_events = true;
    SessionResult prof = runSession(*game, baseline, pcfg);
    auto replica = games::makeGame("colorphun");
    trace::Profile profile =
        trace::Replayer::replay(prof.trace, *replica);
    SnipConfig scfg;
    scfg.min_records_per_type = 8;
    SnipModel model = buildSnipModel(profile, *game, scfg);
    ASSERT_NE(model.table, nullptr);

    auto runWith = [&](uint32_t block) {
        SnipRuntimeConfig rcfg;
        rcfg.audit_every = 8;
        SnipScheme scheme(model, rcfg);
        SimulationConfig ecfg;
        ecfg.duration_s = 15.0;
        ecfg.seed = 5;
        ecfg.batch_block = block;
        return runSession(*game, scheme, ecfg);
    };
    SessionResult scalar = runWith(1);
    for (uint32_t block : {0u, 8u, 256u}) {
        SessionResult batched = runWith(block);
        const SessionStats &a = scalar.stats;
        const SessionStats &b = batched.stats;
        EXPECT_EQ(a.events, b.events) << block;
        EXPECT_EQ(a.shortcircuits, b.shortcircuits) << block;
        EXPECT_EQ(a.instr_total, b.instr_total) << block;
        EXPECT_EQ(a.instr_skipped, b.instr_skipped) << block;
        EXPECT_DOUBLE_EQ(a.ip_work_total, b.ip_work_total) << block;
        EXPECT_DOUBLE_EQ(a.ip_work_skipped, b.ip_work_skipped)
            << block;
        EXPECT_EQ(a.lookup_bytes, b.lookup_bytes) << block;
        EXPECT_EQ(a.lookup_candidates, b.lookup_candidates) << block;
        EXPECT_DOUBLE_EQ(a.lookup_energy_j, b.lookup_energy_j)
            << block;
        EXPECT_EQ(a.erroneous_shortcircuits, b.erroneous_shortcircuits)
            << block;
        EXPECT_EQ(a.output_fields_total, b.output_fields_total)
            << block;
        EXPECT_EQ(a.output_fields_wrong, b.output_fields_wrong)
            << block;
        EXPECT_EQ(a.useless_events, b.useless_events) << block;
        EXPECT_DOUBLE_EQ(scalar.report.total(), batched.report.total())
            << block;
    }
    // The stream must actually exercise the hit path.
    EXPECT_GT(scalar.stats.shortcircuits, 0u);
}

TEST(Simulation, DifferentSeedsDiffer)
{
    auto game = games::makeGame("candy_crush");
    BaselineScheme a, b;
    SimulationConfig cfg;
    cfg.duration_s = 10.0;
    cfg.seed = 1;
    double e1 = runSession(*game, a, cfg).report.total();
    cfg.seed = 2;
    double e2 = runSession(*game, b, cfg).report.total();
    EXPECT_NE(e1, e2);
}

// The obs counters must be bookkeeping-identical to SessionStats
// and to the scheme's own audit/watchdog counters; the registry
// must stay empty when observability is off.
TEST(Simulation, ObsCountersMatchSessionStats)
{
    auto game = games::makeGame("colorphun");
    BaselineScheme baseline;
    SimulationConfig pcfg;
    pcfg.duration_s = 30.0;
    pcfg.record_events = true;
    SessionResult prof = runSession(*game, baseline, pcfg);
    auto replica = games::makeGame("colorphun");
    trace::Profile profile =
        trace::Replayer::replay(prof.trace, *replica);

    SnipConfig scfg;
    scfg.min_records_per_type = 8;
    SnipModel model = buildSnipModel(profile, *game, scfg);
    ASSERT_NE(model.table, nullptr);

    obs::Registry reg;
    SnipRuntimeConfig rcfg;
    rcfg.obs = &reg;
    SnipScheme scheme(model, rcfg);
    SimulationConfig ecfg;
    ecfg.duration_s = 15.0;
    ecfg.seed = 5;
    ecfg.obs = &reg;
    SessionResult res = runSession(*game, scheme, ecfg);

    const SessionStats &st = res.stats;
    EXPECT_EQ(reg.counterValue("session.events"), st.events);
    EXPECT_EQ(reg.counterValue("session.useless_events"),
              st.useless_events);
    EXPECT_EQ(reg.counterValue("session.instr_total"),
              st.instr_total);
    EXPECT_EQ(reg.counterValue("session.instr_skipped"),
              st.instr_skipped);
    EXPECT_EQ(reg.counterValue("session.output_fields"),
              st.output_fields_total);
    EXPECT_EQ(reg.counterValue("session.output_fields_wrong"),
              st.output_fields_wrong);
    EXPECT_EQ(reg.counterValue("decide.shortcircuit"),
              st.shortcircuits);
    EXPECT_EQ(reg.counterValue("decide.err.shortcircuits"),
              st.erroneous_shortcircuits);
    EXPECT_EQ(reg.counterValue("decide.err.temp_only"),
              st.err_temp_only);
    EXPECT_EQ(reg.counterValue("decide.err.history"),
              st.err_history);
    EXPECT_EQ(reg.counterValue("decide.err.extern"), st.err_extern);
    EXPECT_EQ(reg.counterValue("lookup.bytes"), st.lookup_bytes);
    EXPECT_EQ(reg.counterValue("lookup.candidates"),
              st.lookup_candidates);
    EXPECT_EQ(reg.counterValue("decide.audits"), scheme.auditsRun());
    EXPECT_EQ(reg.counterValue("decide.audit_failures"),
              scheme.auditsFailed());
    EXPECT_EQ(reg.counterValue("decide.table_clears"),
              scheme.tableClears());

    // Every lookup either hits or misses; hits are what
    // short-circuits and audits are made of.
    uint64_t hits = reg.counterValue("lookup.hits");
    uint64_t misses = reg.counterValue("lookup.misses");
    EXPECT_EQ(hits + misses, reg.counterValue("lookup.lookups"));
    EXPECT_GT(hits, 0u);
    EXPECT_EQ(hits, st.shortcircuits + scheme.auditsRun());
    EXPECT_DOUBLE_EQ(
        reg.gaugeValue("session.hit_rate"),
        static_cast<double>(hits) /
            static_cast<double>(hits + misses));
    EXPECT_DOUBLE_EQ(reg.gaugeValue("session.error_field_rate"),
                     st.errorFieldRate());
    EXPECT_DOUBLE_EQ(reg.gaugeValue("session.energy_j"),
                     res.report.total());

    // Observability off (the default): a second run must leave the
    // existing registry untouched and behave identically.
    uint64_t events_before = reg.counterValue("session.events");
    SnipScheme plain(model);
    SimulationConfig off_cfg = ecfg;
    off_cfg.obs = nullptr;
    runSession(*game, plain, off_cfg);
    EXPECT_EQ(reg.counterValue("session.events"), events_before);
}

TEST(Simulation, IdlePhoneCheaperThanAnyGame)
{
    soc::EnergyModel m = soc::EnergyModel::snapdragon821();
    util::Power idle = idlePhonePower(m);
    EXPECT_GT(idle, 0.3);
    EXPECT_LT(idle, 1.0);
}

TEST(Simulation, InvalidDurationFatal)
{
    bool prev = util::setThrowOnError(true);
    auto game = games::makeGame("colorphun");
    BaselineScheme s;
    SimulationConfig cfg;
    cfg.duration_s = 0.0;
    EXPECT_THROW(runSession(*game, s, cfg), std::runtime_error);
    util::setThrowOnError(prev);
}

// ------------------------------------------------ ContinuousLearner

TEST(ContinuousLearnerTest, ErrorDecaysAcrossEpochs)
{
    auto game = games::makeGame("ab_evolution");
    auto replica = games::makeGame("ab_evolution");
    LearningConfig cfg;
    cfg.epochs = 8;
    cfg.session_s = 8.0;
    cfg.initial_profile_records = 20;
    cfg.snip.min_records_per_type = 8;
    ContinuousLearner learner(*game, *replica, cfg);
    auto epochs = learner.run();
    ASSERT_EQ(epochs.size(), 8u);
    EXPECT_GT(epochs.front().error_field_rate, 0.02);
    EXPECT_LT(epochs.back().error_field_rate,
              epochs.front().error_field_rate / 2);
    // Profile grows monotonically.
    for (size_t i = 1; i < epochs.size(); ++i)
        EXPECT_GT(epochs[i].profile_records,
                  epochs[i - 1].profile_records);
}

TEST(ContinuousLearnerTest, TestedErrorWeightsByRecordCount)
{
    // Regression: the gate error used to average types with equal
    // weight, so one high-error type backed by a handful of records
    // could hold the confidence gate closed forever. The tested
    // error must weight each type by its profiled evidence.
    SnipModel model;
    TypeModel common;
    common.type = events::EventType::Touch;
    common.records = 1000;
    common.selection.selected_error = 0.001;
    TypeModel rare;
    rare.type = events::EventType::Gyro;
    rare.records = 5;
    rare.selection.selected_error = 0.5;
    model.types.push_back(std::move(common));
    model.types.push_back(std::move(rare));

    double err = testedModelError(model);
    // Weighted: (0.001*1000 + 0.5*5) / 1005 ~= 0.00348. The old
    // unweighted mean would be ~0.25 and fail a 0.005 gate.
    EXPECT_NEAR(err, 3.5 / 1005.0, 1e-12);
    EXPECT_LT(err, 0.005);

    // No evidence at all: maximally pessimistic.
    SnipModel empty;
    EXPECT_EQ(testedModelError(empty), 1.0);
}

TEST(ContinuousLearnerTest, EpochsReportOtaPayloadBytes)
{
    auto game = games::makeGame("colorphun");
    auto replica = games::makeGame("colorphun");
    LearningConfig cfg;
    cfg.epochs = 3;
    cfg.session_s = 6.0;
    cfg.initial_profile_records = 20;
    cfg.snip.min_records_per_type = 8;
    ContinuousLearner learner(*game, *replica, cfg);
    auto epochs = learner.run();
    ASSERT_EQ(epochs.size(), 3u);
    for (const auto &er : epochs) {
        // Every epoch deploys through the OTA transport; the
        // package always carries at least the envelope.
        EXPECT_GT(er.payload_bytes, 16u);
        if (er.table_bytes > 0) {
            EXPECT_TRUE(er.deployed);
        }
    }
}

TEST(ContinuousLearnerTest, OtaRejectionFallsBackToBaseline)
{
    auto game = games::makeGame("colorphun");
    auto replica = games::makeGame("colorphun");
    LearningConfig cfg;
    cfg.epochs = 3;
    cfg.session_s = 6.0;
    cfg.initial_profile_records = 20;
    cfg.snip.min_records_per_type = 8;
    // Lossy transport: every package arrives truncated, so every
    // push fails the integrity check and is rejected.
    cfg.ota_tamper = [](util::ByteBuffer &pkg) {
        util::ByteBuffer cut;
        cut.putBytes(pkg.data().data(), pkg.size() / 2);
        pkg = cut;
    };
    obs::Registry reg;
    cfg.obs = &reg;
    ContinuousLearner learner(*game, *replica, cfg);
    auto epochs = learner.run();
    ASSERT_EQ(epochs.size(), 3u);
    for (const auto &er : epochs) {
        // Regression: a rejected epoch used to report the dead
        // package's size. Nothing was deployed, so the epoch must
        // report no payload, no table, and a baseline session.
        EXPECT_EQ(er.payload_bytes, 0u);
        EXPECT_EQ(er.table_bytes, 0u);
        EXPECT_FALSE(er.deployed);
        EXPECT_FALSE(er.gate_withheld);
        EXPECT_EQ(er.rejected_packages,
                  static_cast<uint64_t>(er.epoch) + 1);
        EXPECT_DOUBLE_EQ(er.error_field_rate, 0.0);
        EXPECT_DOUBLE_EQ(er.coverage, 0.0);
        EXPECT_GT(er.energy_j, 0.0);
    }
    EXPECT_EQ(reg.counterValue("learn.epochs"), 3u);
    EXPECT_EQ(reg.counterValue("learn.deployed_epochs"), 0u);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("learn.rejected_packages"), 3.0);
    ASSERT_NE(reg.findHistogram("learn.payload_bytes"), nullptr);
    // All three payload samples are 0 bytes -> underflow bucket.
    EXPECT_EQ(reg.findHistogram("learn.payload_bytes")
                  ->buckets()
                  .at(util::Log2Histogram::kUnderflowBucket),
              3u);
}

TEST(ContinuousLearnerTest, ConfidenceGateWithholdsEarlyEpochs)
{
    auto game = games::makeGame("colorphun");
    auto replica = games::makeGame("colorphun");
    LearningConfig cfg;
    cfg.epochs = 4;
    cfg.session_s = 6.0;
    cfg.initial_profile_records = 20;
    cfg.snip.min_records_per_type = 8;
    cfg.confidence_gate = true;
    // Gate on evidence volume only, so the trajectory is
    // deterministic: 20 seed records < 100, then each session's
    // replay grows the profile well past it.
    cfg.gate_min_records = 100;
    cfg.gate_threshold = 1.0;
    ContinuousLearner learner(*game, *replica, cfg);
    auto epochs = learner.run();
    ASSERT_EQ(epochs.size(), 4u);

    // Epoch 0: a model was built and shipped (there is a table and
    // an OTA payload), but the gate withheld it.
    EXPECT_GT(epochs[0].table_bytes, 0u);
    EXPECT_GT(epochs[0].payload_bytes, 0u);
    EXPECT_TRUE(epochs[0].gate_withheld);
    EXPECT_FALSE(epochs[0].deployed);
    EXPECT_DOUBLE_EQ(epochs[0].coverage, 0.0);

    // Once the profile clears the evidence bar the gate opens.
    bool any_deployed = false;
    for (const auto &er : epochs) {
        EXPECT_NE(er.deployed, er.gate_withheld);
        EXPECT_EQ(er.rejected_packages, 0u);
        any_deployed |= er.deployed;
        if (er.profile_records >= cfg.gate_min_records)
            EXPECT_TRUE(er.deployed);
    }
    EXPECT_TRUE(any_deployed);
}

TEST(ContinuousLearnerTest, MismatchedReplicaFatal)
{
    bool prev = util::setThrowOnError(true);
    auto game = games::makeGame("colorphun");
    auto replica = games::makeGame("race_kings");
    EXPECT_THROW(ContinuousLearner(*game, *replica, {}),
                 std::runtime_error);
    util::setThrowOnError(prev);
}

// --------------------------------------------- Out-of-core Shrink

/** A replayed profile of a short ab_evolution session. */
trace::Profile
recordedProfile(double secs, uint64_t seed = 99)
{
    auto game = games::makeGame("ab_evolution");
    BaselineScheme baseline;
    SimulationConfig cfg;
    cfg.duration_s = secs;
    cfg.record_events = true;
    cfg.seed = seed;
    SessionResult res = runSession(*game, baseline, cfg);
    auto replica = games::makeGame("ab_evolution");
    return trace::Replayer::replay(res.trace, *replica);
}

// The chunked pipeline (mmap'd SNCT training sections through
// ml::ChunkedDataset) must produce byte-for-byte the package the
// in-memory pipeline builds from the same records.
TEST(SnipPipelineTest, ChunkedBuildMatchesInMemory)
{
    trace::Profile profile = recordedProfile(45.0);
    auto game = games::makeGame("ab_evolution");
    SnipConfig scfg;
    scfg.min_records_per_type = 8;
    SnipModel mem = buildSnipModel(profile, *game, scfg);

    std::vector<uint8_t> bytes;
    ASSERT_TRUE(
        trace::ColumnarLog::encodeTraining(profile, &bytes).ok());
    std::string path = ::testing::TempDir() + "/snip_oos.snct";
    ASSERT_TRUE(trace::ColumnarLog::save(bytes, path).ok());
    auto tlog = trace::ColumnarLog::open(path);
    ASSERT_TRUE(tlog.ok()) << tlog.status().message();

    ml::ChunkedConfig chunked;
    chunked.residency_budget_bytes = 1 << 18;  // aggressive drops
    auto oos = buildSnipModel(tlog.value(), *game, scfg, chunked);
    ASSERT_TRUE(oos.ok()) << oos.status().message();

    ASSERT_EQ(oos.value().types.size(), mem.types.size());
    for (size_t i = 0; i < mem.types.size(); ++i) {
        EXPECT_EQ(oos.value().types[i].type, mem.types[i].type);
        EXPECT_EQ(oos.value().types[i].selection.selected,
                  mem.types[i].selection.selected);
    }
    util::ByteBuffer pkg_mem, pkg_oos;
    packModel(mem, pkg_mem);
    packModel(oos.value(), pkg_oos);
    EXPECT_EQ(pkg_mem.data(), pkg_oos.data());
    std::remove(path.c_str());

    // And a trace with no training sections errors cleanly.
    auto none = buildSnipModel(
        std::shared_ptr<const trace::ColumnarLog>(), *game, scfg);
    EXPECT_FALSE(none.ok());
}

// The incremental-Shrink acceptance contract: rebuilding from an
// unchanged profile must skip selection wholesale (types served
// from ShrinkCaches, zero columns re-scored) and still produce the
// identical package; a changed profile must invalidate.
TEST(SnipPipelineTest, ShrinkCachesReplayUnchangedEpochs)
{
    trace::Profile profile = recordedProfile(30.0);
    auto game = games::makeGame("ab_evolution");
    obs::Registry reg;
    ShrinkCaches caches;
    SnipConfig scfg;
    scfg.min_records_per_type = 8;
    scfg.obs = &reg;
    scfg.caches = &caches;

    SnipModel first = buildSnipModel(profile, *game, scfg);
    ASSERT_FALSE(first.types.empty());
    uint64_t rescored0 =
        reg.counter("shrink.pfi.cols_rescored").value();
    EXPECT_GT(rescored0, 0u);
    EXPECT_EQ(reg.counter("shrink.types_cached").value(), 0u);

    SnipModel second = buildSnipModel(profile, *game, scfg);
    EXPECT_EQ(reg.counter("shrink.types_cached").value(),
              first.types.size());
    EXPECT_EQ(reg.counter("shrink.pfi.cols_rescored").value(),
              rescored0);  // nothing re-scored
    util::ByteBuffer p1, p2;
    packModel(first, p1);
    packModel(second, p2);
    EXPECT_EQ(p1.data(), p2.data());

    // Grow the profile: the changed types must re-run.
    trace::Profile more = recordedProfile(10.0, 123);
    profile.append(more);
    SnipModel third = buildSnipModel(profile, *game, scfg);
    EXPECT_GT(reg.counter("shrink.pfi.cols_rescored").value(),
              rescored0);

    // Caches must never leak across configs: a different error
    // budget is a different key.
    SnipConfig other = scfg;
    other.max_error = 0.05;
    (void)buildSnipModel(profile, *game, other);
    EXPECT_GT(reg.counter("shrink.types_deployed").value(), 0u);
}

// Incremental mode in the learner: the persistent caches and the
// stable (un-remixed) seed must never alter an epoch's produced
// model — two identical incremental runs agree bitwise, epoch for
// epoch. (The unchanged-epoch skip itself is pinned down above in
// ShrinkCachesReplayUnchangedEpochs, where the profile can be held
// truly constant between builds.)
TEST(ContinuousLearnerTest, IncrementalShrinkDeterministic)
{
    auto runOnce = [] {
        auto game = games::makeGame("ab_evolution");
        auto replica = games::makeGame("ab_evolution");
        LearningConfig cfg;
        cfg.epochs = 4;
        cfg.session_s = 6.0;
        cfg.initial_profile_records = 30;
        cfg.snip.min_records_per_type = 8;
        cfg.incremental_shrink = true;
        ContinuousLearner learner(*game, *replica, cfg);
        return learner.run();
    };
    auto a = runOnce();
    auto b = runOnce();
    ASSERT_EQ(a.size(), 4u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].error_field_rate, b[i].error_field_rate) << i;
        EXPECT_EQ(a[i].coverage, b[i].coverage) << i;
        EXPECT_EQ(a[i].payload_bytes, b[i].payload_bytes) << i;
        EXPECT_EQ(a[i].table_bytes, b[i].table_bytes) << i;
    }
}

}  // namespace
}  // namespace core
}  // namespace snip
