/**
 * @file
 * Unit tests for the SoC energy model: component busy/static
 * accounting, sleep/wake transitions, CPU/memory/IP/sensor charging,
 * the assembled Soc, battery, and report grouping.
 */

#include <gtest/gtest.h>

#include "soc/soc.h"
#include "util/logging.h"

namespace snip {
namespace soc {
namespace {

EnergyModel
model()
{
    return EnergyModel::snapdragon821();
}

// ---------------------------------------------------------- Component

TEST(Component, StaticAccrualIdle)
{
    Component c("c", 1.0, 0.1, 0.01);
    c.accrue(10.0);
    EXPECT_DOUBLE_EQ(c.staticEnergy(), 1.0);  // 10 s at 0.1 W idle
    EXPECT_DOUBLE_EQ(c.dynamicEnergy(), 0.0);
}

TEST(Component, BusyTimeAccruesAtActivePower)
{
    Component c("c", 1.0, 0.1, 0.01);
    c.recordBusy(2.0);
    c.accrue(10.0);
    // 2 s active (1 W) + 8 s idle (0.1 W).
    EXPECT_DOUBLE_EQ(c.staticEnergy(), 2.0 + 0.8);
    EXPECT_DOUBLE_EQ(c.busyTime(), 2.0);
}

TEST(Component, BusyCarriesAcrossIntervals)
{
    Component c("c", 1.0, 0.0, 0.0);
    c.recordBusy(3.0);
    c.accrue(1.0);
    c.accrue(1.0);
    c.accrue(2.0);  // only 1 s of busy left here
    EXPECT_DOUBLE_EQ(c.staticEnergy(), 3.0);
    EXPECT_DOUBLE_EQ(c.busyTime(), 3.0);
}

TEST(Component, SleepFloorAndWakeEnergy)
{
    Component c("c", 1.0, 0.1, 0.01);
    c.setWakeEnergy(0.5);
    c.setSleeping(true);
    c.accrue(10.0);
    EXPECT_DOUBLE_EQ(c.staticEnergy(), 0.1);  // 10 s at sleep floor
    EXPECT_EQ(c.wakeCount(), 0u);
    c.setSleeping(false);
    EXPECT_DOUBLE_EQ(c.dynamicEnergy(), 0.5);
    EXPECT_EQ(c.wakeCount(), 1u);
}

TEST(Component, RecordBusyWakes)
{
    Component c("c", 1.0, 0.1, 0.01);
    c.setWakeEnergy(0.25);
    c.setSleeping(true);
    c.recordBusy(1.0);
    EXPECT_FALSE(c.sleeping());
    EXPECT_DOUBLE_EQ(c.dynamicEnergy(), 0.25);
}

TEST(Component, RedundantSleepIsFree)
{
    Component c("c", 1.0, 0.1, 0.01);
    c.setWakeEnergy(1.0);
    c.setSleeping(true);
    c.setSleeping(true);
    c.setSleeping(false);
    c.setSleeping(false);
    EXPECT_EQ(c.wakeCount(), 1u);
    EXPECT_DOUBLE_EQ(c.dynamicEnergy(), 1.0);
}

TEST(Component, ResetClearsEverything)
{
    Component c("c", 1.0, 0.1, 0.01);
    c.recordBusy(1.0);
    c.accrue(2.0);
    c.reset();
    EXPECT_DOUBLE_EQ(c.totalEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(c.busyTime(), 0.0);
    EXPECT_FALSE(c.sleeping());
}

TEST(Component, NegativeInputsPanic)
{
    bool prev = util::setThrowOnError(true);
    Component c("c", 1.0, 0.1, 0.01);
    EXPECT_THROW(c.recordBusy(-1.0), std::runtime_error);
    EXPECT_THROW(c.accrue(-1.0), std::runtime_error);
    util::setThrowOnError(prev);
}

// ---------------------------------------------------------------- Cpu

TEST(Cpu, ChargesPerInstruction)
{
    EnergyModel m = model();
    Cpu cpu(m);
    cpu.execute(1'000'000, CpuCluster::Big);
    EXPECT_NEAR(cpu.dynamicEnergy(), m.cpu_big_instr_j * 1e6, 1e-12);
    EXPECT_EQ(cpu.bigInstructions(), 1'000'000u);
    EXPECT_EQ(cpu.totalInstructions(), 1'000'000u);
}

TEST(Cpu, LittleClusterCheaper)
{
    EnergyModel m = model();
    Cpu big(m), little(m);
    big.execute(1'000'000, CpuCluster::Big);
    little.execute(1'000'000, CpuCluster::Little);
    EXPECT_GT(big.dynamicEnergy(), little.dynamicEnergy());
    EXPECT_EQ(little.littleInstructions(), 1'000'000u);
}

TEST(Cpu, BusyTimeFromThroughput)
{
    EnergyModel m = model();
    Cpu cpu(m);
    uint64_t instr = static_cast<uint64_t>(m.cpu_giga_ips * 1e9);
    cpu.execute(instr, CpuCluster::Big);
    cpu.accrue(2.0);
    EXPECT_NEAR(cpu.busyTime(), 1.0, 1e-9);
}

TEST(Cpu, ZeroInstructionsNoCharge)
{
    Cpu cpu(model());
    cpu.execute(0, CpuCluster::Big);
    EXPECT_DOUBLE_EQ(cpu.dynamicEnergy(), 0.0);
}

// ------------------------------------------------------------ IpBlock

TEST(IpBlock, ChargesPerWorkUnit)
{
    EnergyModel m = model();
    IpBlock gpu(IpKind::Gpu, m.ip[static_cast<int>(IpKind::Gpu)]);
    gpu.invoke(3.0);
    EXPECT_NEAR(gpu.dynamicEnergy(),
                3.0 * m.ip[static_cast<int>(IpKind::Gpu)].work_j,
                1e-12);
    EXPECT_EQ(gpu.invocations(), 1u);
    EXPECT_DOUBLE_EQ(gpu.workUnits(), 3.0);
}

TEST(IpBlock, WakeOnInvoke)
{
    EnergyModel m = model();
    IpBlock gpu(IpKind::Gpu, m.ip[static_cast<int>(IpKind::Gpu)]);
    gpu.setSleeping(true);
    gpu.invoke(1.0);
    EXPECT_FALSE(gpu.sleeping());
    EXPECT_EQ(gpu.wakeCount(), 1u);
}

TEST(IpBlock, NegativeWorkPanics)
{
    bool prev = util::setThrowOnError(true);
    EnergyModel m = model();
    IpBlock gpu(IpKind::Gpu, m.ip[static_cast<int>(IpKind::Gpu)]);
    EXPECT_THROW(gpu.invoke(-1.0), std::runtime_error);
    util::setThrowOnError(prev);
}

TEST(IpKindNames, AllNamed)
{
    for (int k = 0; k < kNumIpKinds; ++k) {
        EXPECT_STRNE(ipKindName(static_cast<IpKind>(k)), "?");
    }
}

// ------------------------------------------------------------- Memory

TEST(Memory, ChargesPerByte)
{
    EnergyModel m = model();
    Memory mem(m);
    mem.access(1000);
    EXPECT_NEAR(mem.dynamicEnergy(), 1000 * m.mem_byte_j, 1e-15);
    EXPECT_EQ(mem.bytesMoved(), 1000u);
}

// ---------------------------------------------------------- SensorHub

TEST(SensorHub, SamplesAndCamera)
{
    EnergyModel m = model();
    SensorHubDevice hub(m);
    hub.sample(10);
    hub.captureCameraFrame();
    EXPECT_EQ(hub.samplesTaken(), 10u);
    EXPECT_EQ(hub.cameraFrames(), 1u);
    EXPECT_NEAR(hub.dynamicEnergy(),
                10 * m.sensor_sample_j + m.camera_frame_j, 1e-12);
}

// ------------------------------------------------------------ Battery

TEST(Battery, DrainAndRemaining)
{
    Battery b(1000, 3.6);  // 12960 J
    EXPECT_NEAR(b.capacity(), 12960.0, 0.1);
    b.drain(6480.0);
    EXPECT_NEAR(b.remainingFraction(), 0.5, 1e-9);
    EXPECT_FALSE(b.empty());
    b.drain(1e9);
    EXPECT_TRUE(b.empty());
    EXPECT_DOUBLE_EQ(b.remainingFraction(), 0.0);
    b.recharge();
    EXPECT_DOUBLE_EQ(b.remainingFraction(), 1.0);
}

TEST(Battery, HoursToEmpty)
{
    Battery b(3450, 3.85);
    EXPECT_NEAR(b.hoursToEmpty(1.0), 13.28, 0.05);
}

// ---------------------------------------------------------------- Soc

TEST(Soc, AdvanceAccruesAllComponents)
{
    Soc soc;
    soc.setInUse(true);
    soc.advance(1.0);
    EXPECT_GT(soc.cpu().staticEnergy(), 0.0);
    EXPECT_GT(soc.memory().staticEnergy(), 0.0);
    EXPECT_GT(soc.platform().staticEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(soc.now(), 1.0);
}

TEST(Soc, ChargingRoutes)
{
    Soc soc;
    soc.executeCpu(1000, CpuCluster::Big);
    soc.accessMemory(64);
    soc.sampleSensors(2);
    soc.captureCameraFrame();
    soc.invokeIp(IpKind::Dsp, 1.5);
    EXPECT_GT(soc.cpu().dynamicEnergy(), 0.0);
    EXPECT_GT(soc.memory().dynamicEnergy(), 0.0);
    EXPECT_GT(soc.sensorHub().dynamicEnergy(), 0.0);
    EXPECT_GT(soc.ip(IpKind::Dsp).dynamicEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(soc.ip(IpKind::Gpu).dynamicEnergy(), 0.0);
}

TEST(Soc, ResetZeroesEverything)
{
    Soc soc;
    soc.executeCpu(1000, CpuCluster::Big);
    soc.advance(1.0);
    soc.reset();
    EXPECT_DOUBLE_EQ(soc.now(), 0.0);
    EXPECT_DOUBLE_EQ(soc.report().total(), 0.0);
}

TEST(Soc, ReportGroupsSumToTotal)
{
    Soc soc;
    soc.setInUse(true);
    soc.executeCpu(5'000'000, CpuCluster::Big);
    soc.invokeIp(IpKind::Gpu, 2.0);
    soc.accessMemory(4096);
    soc.advance(0.5);
    EnergyReport r = soc.report();
    double groups = 0.0;
    for (int g = 0; g < static_cast<int>(EnergyGroup::NumGroups); ++g)
        groups += r.groupEnergy(static_cast<EnergyGroup>(g));
    EXPECT_NEAR(groups, r.total(), 1e-9);
}

TEST(Soc, SocGroupFractionsSumToOne)
{
    Soc soc;
    soc.setInUse(true);
    soc.executeCpu(5'000'000, CpuCluster::Big);
    soc.advance(0.5);
    EnergyReport r = soc.report();
    double f = r.socGroupFraction(EnergyGroup::Sensors) +
               r.socGroupFraction(EnergyGroup::Memory) +
               r.socGroupFraction(EnergyGroup::Cpu) +
               r.socGroupFraction(EnergyGroup::Ips);
    EXPECT_NEAR(f, 1.0, 1e-9);
}

TEST(Soc, InUseRaisesPlatformPower)
{
    Soc active, idle;
    active.setInUse(true);
    idle.setInUse(false);
    active.advance(10.0);
    idle.advance(10.0);
    EXPECT_GT(active.platform().staticEnergy(),
              idle.platform().staticEnergy());
}

TEST(Soc, AveragePower)
{
    Soc soc;
    soc.setInUse(true);
    soc.advance(10.0);
    EnergyReport r = soc.report();
    EXPECT_NEAR(r.averagePower(), r.total() / 10.0, 1e-9);
}

TEST(EnergyReportTest, ToStringMentionsComponents)
{
    Soc soc;
    soc.advance(1.0);
    std::string s = soc.report().toString();
    EXPECT_NE(s.find("cpu"), std::string::npos);
    EXPECT_NE(s.find("gpu"), std::string::npos);
    EXPECT_NE(s.find("platform"), std::string::npos);
}

TEST(EnergyModelTest, DefaultsSane)
{
    EnergyModel m = model();
    EXPECT_GT(m.cpu_big_instr_j, m.cpu_little_instr_j);
    EXPECT_GT(m.cpu_giga_ips, 0.0);
    EXPECT_GT(m.battery_mah, 0.0);
    for (int k = 0; k < kNumIpKinds; ++k) {
        EXPECT_GT(m.ip[k].work_j, 0.0) << ipKindName(
            static_cast<IpKind>(k));
        EXPECT_GE(m.ip[k].active_static_w, m.ip[k].idle_static_w);
        EXPECT_GE(m.ip[k].idle_static_w, m.ip[k].sleep_static_w);
        EXPECT_GT(m.ip[k].unit_time_s, 0.0);
    }
}

// Parameterized: every IP kind wakes, charges, and sleeps correctly.
class IpKindTest : public ::testing::TestWithParam<int>
{
};

TEST_P(IpKindTest, LifecycleInvariants)
{
    EnergyModel m = model();
    auto kind = static_cast<IpKind>(GetParam());
    IpBlock ip(kind, m.ip[GetParam()]);
    EXPECT_EQ(ip.kind(), kind);
    ip.setSleeping(true);
    ip.accrue(1.0);
    double sleep_static = ip.staticEnergy();
    ip.invoke(1.0);
    EXPECT_FALSE(ip.sleeping());
    EXPECT_EQ(ip.wakeCount(), 1u);
    ip.accrue(1.0);
    EXPECT_GT(ip.staticEnergy(), sleep_static);
    EXPECT_GT(ip.dynamicEnergy(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, IpKindTest,
                         ::testing::Range(0, kNumIpKinds));

}  // namespace
}  // namespace soc
}  // namespace snip
