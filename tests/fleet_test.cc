/**
 * @file
 * Tests for the fleet backend (src/fleet): SNPD delta patches
 * (round-trip byte identity, corruption fuzz with the full-fetch
 * fallback — gtest filter Fleet*Fuzz* is the ci.sh asan stage),
 * sharded federated aggregation (bitwise equality with the serial
 * merge chain at shard counts {1, 2, 8} — FleetAggregate* is the
 * ci.sh tsan stage), the versioned model registry (lineage,
 * idempotent publish, integrity rejection, persistence), and the
 * cohort epoch-push simulation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/federated.h"
#include "core/model_codec.h"
#include "core/scheme.h"
#include "core/simulation.h"
#include "fleet/aggregate.h"
#include "fleet/delta.h"
#include "fleet/fleet_sim.h"
#include "fleet/registry.h"
#include "games/registry.h"
#include "trace/recorder.h"
#include "util/rng.h"

namespace snip {
namespace fleet {
namespace {

util::ByteBuffer
copyOf(const util::ByteBuffer &src)
{
    util::ByteBuffer out;
    out.putBytes(src.data().data(), src.size());
    return out;
}

util::ByteBuffer
randomBuffer(util::Rng &rng, size_t len)
{
    util::ByteBuffer b;
    for (size_t i = 0; i < len; ++i)
        b.putU8(static_cast<uint8_t>(rng.next()));
    return b;
}

std::span<const uint8_t>
spanOf(const util::ByteBuffer &b)
{
    return std::span<const uint8_t>(b.data());
}

/** Record + replay + PFI-select: a deployable model for @p game. */
core::SnipModel
buildModelFor(const std::string &game_name, double secs,
              uint64_t seed)
{
    auto game = games::makeGame(game_name);
    core::BaselineScheme baseline;
    core::SimulationConfig cfg;
    cfg.duration_s = secs;
    cfg.record_events = true;
    cfg.seed = seed;
    core::SessionResult res = core::runSession(*game, baseline, cfg);
    auto replica = games::makeGame(game_name);
    trace::Profile profile =
        trace::Replayer::replay(res.trace, *replica);
    core::SnipConfig scfg;
    scfg.overrides.force_keep = game->params().recommended_overrides;
    return core::buildSnipModel(profile, *game, scfg);
}

/** Packed SNPM package of @p model as a shared buffer. */
std::shared_ptr<util::ByteBuffer>
packageOf(const core::SnipModel &model)
{
    auto pkg = std::make_shared<util::ByteBuffer>();
    core::packModel(model, *pkg);
    return pkg;
}

size_t
fuzzIters(size_t dflt)
{
    if (const char *env = std::getenv("SNIP_FUZZ_ITERS"))
        return static_cast<size_t>(std::strtoull(env, nullptr, 10));
    return dflt;
}

// ------------------------------------------------------ delta (SNPD)

TEST(FleetDeltaTest, RoundTripRandomBuffers)
{
    // apply(diff(A, B), A) == B for assorted shapes: disjoint,
    // shared prefix/suffix, insertions in the middle, B shorter than
    // A, and tiny/empty endpoints.
    util::Rng rng(0x5d1ffULL);
    std::vector<std::pair<util::ByteBuffer, util::ByteBuffer>> cases;

    cases.emplace_back(randomBuffer(rng, 4096),
                       randomBuffer(rng, 4096));  // nothing shared
    {
        util::ByteBuffer a = randomBuffer(rng, 8192);
        util::ByteBuffer b = copyOf(a);  // identical
        cases.emplace_back(std::move(a), std::move(b));
    }
    {
        // Shared body with an insertion in the middle and a mutated
        // tail — the incremental-epoch shape.
        util::ByteBuffer a = randomBuffer(rng, 6000);
        util::ByteBuffer b;
        b.putBytes(a.data().data(), 2500);
        util::ByteBuffer mid = randomBuffer(rng, 333);
        b.putBytes(mid.data().data(), mid.size());
        b.putBytes(a.data().data() + 2500, 3000);
        util::ByteBuffer tail = randomBuffer(rng, 100);
        b.putBytes(tail.data().data(), tail.size());
        cases.emplace_back(std::move(a), std::move(b));
    }
    {
        util::ByteBuffer a = randomBuffer(rng, 5000);
        util::ByteBuffer b;  // target shrinks to a slice
        b.putBytes(a.data().data() + 1000, 2000);
        cases.emplace_back(std::move(a), std::move(b));
    }
    cases.emplace_back(util::ByteBuffer{}, randomBuffer(rng, 200));
    cases.emplace_back(randomBuffer(rng, 200), util::ByteBuffer{});
    cases.emplace_back(randomBuffer(rng, 7),
                       randomBuffer(rng, 5));  // below block size

    for (size_t i = 0; i < cases.size(); ++i) {
        const auto &[a, b] = cases[i];
        util::ByteBuffer patch;
        diffBytes(spanOf(a), spanOf(b), patch);
        util::Result<util::ByteBuffer> got =
            applyPatch(spanOf(a), patch);
        ASSERT_TRUE(got.ok()) << "case " << i << ": "
                              << got.status().message();
        EXPECT_EQ(got.value().data(), b.data()) << "case " << i;

        PatchInfo info;
        util::ByteBuffer probe = copyOf(patch);
        ASSERT_TRUE(inspectPatch(probe, &info).ok()) << "case " << i;
        EXPECT_EQ(info.src_bytes, a.size());
        EXPECT_EQ(info.tgt_bytes, b.size());
        EXPECT_EQ(info.copied_bytes + info.inserted_bytes, b.size());
    }
}

TEST(FleetDeltaTest, DeterministicPatchBytes)
{
    util::Rng rng(0x0d57ULL);
    util::ByteBuffer a = randomBuffer(rng, 3000);
    util::ByteBuffer b = randomBuffer(rng, 1000);
    b.putBytes(a.data().data(), 1500);
    util::ByteBuffer p1, p2;
    diffBytes(spanOf(a), spanOf(b), p1);
    diffBytes(spanOf(a), spanOf(b), p2);
    EXPECT_EQ(p1.data(), p2.data());
}

TEST(FleetDeltaTest, RoundTripRealEpochPackages)
{
    // Consecutive continuous-learning epochs share most of their
    // arena: the patch must reconstruct exactly AND be meaningfully
    // smaller than the full package.
    core::SnipModel m1 = buildModelFor("colorphun", 12.0, 31);
    core::SnipModel m2 = buildModelFor("colorphun", 16.0, 32);
    auto p1 = packageOf(m1);
    auto p2 = packageOf(m2);

    util::ByteBuffer patch;
    diffBytes(spanOf(*p1), spanOf(*p2), patch);
    util::Result<util::ByteBuffer> got =
        applyPatch(spanOf(*p1), patch);
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(got.value().data(), p2->data());
}

TEST(FleetDeltaTest, RejectsWrongBase)
{
    util::Rng rng(0xbadba5eULL);
    util::ByteBuffer a = randomBuffer(rng, 2000);
    util::ByteBuffer b = randomBuffer(rng, 2000);
    util::ByteBuffer c = randomBuffer(rng, 2000);
    util::ByteBuffer patch;
    diffBytes(spanOf(a), spanOf(b), patch);
    EXPECT_FALSE(applyPatch(spanOf(c), patch).ok());
    // Same length, different bytes: the source CRC catches it.
    util::ByteBuffer patch2 = copyOf(patch);
    EXPECT_FALSE(applyPatch(spanOf(c), patch2).ok());
}

TEST(FleetDeltaTest, CorruptionFuzzFallback)
{
    // Truncations and bit flips over the patch: every mutant is
    // cleanly rejected (never a crash, never a wrong
    // reconstruction), and the device receive path always comes
    // back with the exact target via the full-package fallback.
    size_t iters = fuzzIters(64);
    util::Rng rng(0xfa11bacULL);
    util::ByteBuffer base = randomBuffer(rng, 4000);
    util::ByteBuffer tgt;
    tgt.putBytes(base.data().data(), 3000);
    util::ByteBuffer extra = randomBuffer(rng, 500);
    tgt.putBytes(extra.data().data(), extra.size());

    util::ByteBuffer patch;
    diffBytes(spanOf(base), spanOf(tgt), patch);
    ASSERT_GT(patch.size(), 16u);

    for (size_t i = 0; i < iters; ++i) {
        util::ByteBuffer mutant;
        if (rng.next() % 2 == 0) {
            size_t len = rng.next() % patch.size();
            mutant.putBytes(patch.data().data(), len);
        } else {
            mutant = copyOf(patch);
            auto &bytes =
                const_cast<std::vector<uint8_t> &>(mutant.data());
            size_t flips = 1 + rng.next() % 8;
            for (size_t f = 0; f < flips; ++f)
                bytes[rng.next() % bytes.size()] ^=
                    static_cast<uint8_t>(1u + rng.next() % 255);
        }
        // Flips can cancel; only a real mutation must be rejected.
        bool changed = mutant.data() != patch.data();
        util::ByteBuffer probe = copyOf(mutant);
        util::Result<util::ByteBuffer> direct =
            applyPatch(spanOf(base), probe);
        EXPECT_EQ(direct.ok(), !changed) << "iteration " << i;
        if (direct.ok())
            EXPECT_EQ(direct.value().data(), tgt.data());

        bool used_delta = false;
        util::ByteBuffer got = fetchWithDelta(spanOf(base), mutant,
                                              tgt, &used_delta);
        EXPECT_EQ(used_delta, !changed) << "iteration " << i;
        EXPECT_EQ(got.data(), tgt.data()) << "iteration " << i;
    }
}

// ------------------------------------------------ sharded aggregation

TEST(FleetAggregateTest, ShardedMatchesSerialBitwise)
{
    // The tentpole contract: aggregateUploads at shard counts
    // {1, 2, 8} freezes to the exact arena bytes of the core serial
    // merge chain over the same uploads.
    const std::string game_name = "memory_game";
    auto game = games::makeGame(game_name);
    core::SnipModel agreed = buildModelFor(game_name, 15.0, 41);

    constexpr size_t kUploads = 10;
    std::vector<util::ByteBuffer> uploads = recordUploadPayloads(
        game_name, agreed, kUploads, 0x51a9d5ULL, 5.0);
    ASSERT_EQ(uploads.size(), kUploads);

    auto make_dest = [&] {
        core::MemoTable dest(game->schema());
        for (const core::TypeModel &t : agreed.types)
            dest.setSelected(t.type, t.selection.selected);
        return dest;
    };

    // Serial reference: the buildFederated chain.
    core::MemoTable serial = make_dest();
    for (auto &up : uploads) {
        util::ByteBuffer probe = copyOf(up);
        util::Result<core::SnipModel> decoded =
            core::unpackModel(probe);
        ASSERT_TRUE(decoded.ok()) << decoded.status().message();
        serial.mergeFrom(*decoded.value().table);
    }
    auto serial_frozen = serial.freeze();
    ASSERT_GT(serial_frozen->arenaSize(), 0u);

    for (size_t shards : {1u, 2u, 8u}) {
        core::MemoTable dest = make_dest();
        std::vector<util::ByteBuffer> ups;
        for (const auto &u : uploads)
            ups.push_back(copyOf(u));
        AggregateConfig cfg;
        cfg.shards = shards;
        AggregateStats stats = aggregateUploads(dest, ups, cfg);
        EXPECT_EQ(stats.uploads, kUploads);
        EXPECT_EQ(stats.dropped, 0u);
        EXPECT_EQ(stats.shards, shards);

        auto frozen = dest.freeze();
        ASSERT_EQ(frozen->arenaSize(), serial_frozen->arenaSize())
            << shards << " shards";
        EXPECT_EQ(std::memcmp(frozen->arenaData(),
                              serial_frozen->arenaData(),
                              frozen->arenaSize()),
                  0)
            << shards << " shards";
    }
}

TEST(FleetAggregateTest, DropsCorruptUploadsLikeSerial)
{
    const std::string game_name = "memory_game";
    auto game = games::makeGame(game_name);
    core::SnipModel agreed = buildModelFor(game_name, 12.0, 43);
    std::vector<util::ByteBuffer> uploads = recordUploadPayloads(
        game_name, agreed, 6, 0xc0bb1eULL, 4.0);

    // Corrupt two payloads; both pipelines must drop exactly those.
    for (size_t victim : {1u, 4u}) {
        auto &bytes = const_cast<std::vector<uint8_t> &>(
            uploads[victim].data());
        bytes[bytes.size() / 2] ^= 0x5a;
    }

    core::MemoTable serial(game->schema());
    for (const core::TypeModel &t : agreed.types)
        serial.setSelected(t.type, t.selection.selected);
    for (auto &up : uploads) {
        util::ByteBuffer probe = copyOf(up);
        util::Result<core::SnipModel> decoded =
            core::unpackModel(probe);
        if (decoded.ok())
            serial.mergeFrom(*decoded.value().table);
    }
    auto serial_frozen = serial.freeze();

    core::MemoTable dest(game->schema());
    for (const core::TypeModel &t : agreed.types)
        dest.setSelected(t.type, t.selection.selected);
    AggregateStats stats = aggregateUploads(dest, uploads, {});
    EXPECT_EQ(stats.dropped, 2u);
    auto frozen = dest.freeze();
    ASSERT_EQ(frozen->arenaSize(), serial_frozen->arenaSize());
    EXPECT_EQ(std::memcmp(frozen->arenaData(),
                          serial_frozen->arenaData(),
                          frozen->arenaSize()),
              0);
}

// --------------------------------------------------------- registry

TEST(FleetRegistryTest, PublishLineageFetch)
{
    core::SnipModel m1 = buildModelFor("greenwall", 10.0, 51);
    core::SnipModel m2 = buildModelFor("greenwall", 14.0, 52);
    core::SnipModel m3 = buildModelFor("greenwall", 18.0, 53);

    ModelRegistry reg;
    auto v1 = reg.publish("greenwall", packageOf(m1));
    auto v2 = reg.publish("greenwall", packageOf(m2));
    auto v3 = reg.publish("greenwall", packageOf(m3));
    ASSERT_TRUE(v1.ok() && v2.ok() && v3.ok());
    EXPECT_EQ(reg.versionCount("greenwall"), 3u);

    // Auto-chained lineage: v3 -> v2 -> v1.
    const ModelVersion *head = reg.head("greenwall");
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(head->id, v3.value());
    EXPECT_EQ(head->parent, v2.value());
    EXPECT_EQ(head->epoch, 2u);

    auto chain = reg.lineage("greenwall", v3.value());
    ASSERT_TRUE(chain.ok());
    ASSERT_EQ(chain.value().size(), 3u);
    EXPECT_EQ(chain.value()[0], v3.value());
    EXPECT_EQ(chain.value()[2], v1.value());

    EXPECT_EQ(reg.behindHead("greenwall", 1)->id, v2.value());
    EXPECT_EQ(reg.behindHead("greenwall", 2)->id, v1.value());
    EXPECT_EQ(reg.behindHead("greenwall", 99), nullptr);

    // Fetch re-verifies and serves the exact bytes.
    auto fetched = reg.fetch("greenwall", v2.value());
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetched.value()->data(), packageOf(m2)->data());

    EXPECT_EQ(reg.find("greenwall", 0xdeadULL), nullptr);
    EXPECT_FALSE(reg.fetch("greenwall", 0xdeadULL).ok());
    EXPECT_FALSE(reg.fetch("nope", v1.value()).ok());
}

TEST(FleetRegistryTest, IdempotentAndIntegrityChecked)
{
    core::SnipModel m = buildModelFor("greenwall", 10.0, 54);
    ModelRegistry reg;
    auto v1 = reg.publish("greenwall", packageOf(m));
    ASSERT_TRUE(v1.ok());
    // Identical bytes republished: same id, no new version.
    auto v1b = reg.publish("greenwall", packageOf(m));
    ASSERT_TRUE(v1b.ok());
    EXPECT_EQ(v1.value(), v1b.value());
    EXPECT_EQ(reg.versionCount("greenwall"), 1u);

    // A corrupt package is refused outright.
    auto bad = packageOf(m);
    const_cast<std::vector<uint8_t> &>(
        bad->data())[bad->size() / 2] ^= 0x40;
    EXPECT_FALSE(reg.publish("greenwall", bad).ok());
    EXPECT_EQ(reg.versionCount("greenwall"), 1u);

    // An unknown explicit parent is refused.
    core::SnipModel m2 = buildModelFor("greenwall", 12.0, 55);
    EXPECT_FALSE(
        reg.publish("greenwall", packageOf(m2), 0x12345ULL).ok());
    EXPECT_EQ(reg.versionCount("greenwall"), 1u);
}

TEST(FleetRegistryTest, DeltaMemoizedAndSaveLoadRoundTrip)
{
    core::SnipModel m1 = buildModelFor("colorphun", 10.0, 61);
    core::SnipModel m2 = buildModelFor("colorphun", 14.0, 62);
    ModelRegistry reg;
    auto v1 = reg.publish("colorphun", packageOf(m1));
    auto v2 = reg.publish("colorphun", packageOf(m2));
    ASSERT_TRUE(v1.ok() && v2.ok());

    auto d1 = reg.delta("colorphun", v1.value(), v2.value());
    auto d2 = reg.delta("colorphun", v1.value(), v2.value());
    ASSERT_TRUE(d1.ok() && d2.ok());
    EXPECT_EQ(d1.value().get(), d2.value().get());  // memoized

    // The patch upgrades v1's bytes to exactly v2's.
    util::ByteBuffer wire = copyOf(*d1.value());
    auto got = applyPatch(
        std::span<const uint8_t>(
            reg.find("colorphun", v1.value())->package->data()),
        wire);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().data(), packageOf(m2)->data());

    // Persist and reload: identical catalog, lineage intact.
    std::string dir = ::testing::TempDir() + "fleet_reg_rt";
    ASSERT_TRUE(reg.saveDir(dir).ok());
    auto loaded = ModelRegistry::loadDir(dir);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_EQ(loaded.value().versionCount("colorphun"), 2u);
    const ModelVersion *head = loaded.value().head("colorphun");
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(head->id, v2.value());
    EXPECT_EQ(head->parent, v1.value());
    auto fetched = loaded.value().fetch("colorphun", v1.value());
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetched.value()->data(), packageOf(m1)->data());
}

// ------------------------------------------------------- epoch push

TEST(FleetSimTest, PushEpochCohortReport)
{
    const std::string game_name = "memory_game";
    ModelRegistry reg;
    for (int e = 0; e < 3; ++e) {
        core::SnipModel m =
            buildModelFor(game_name, 8.0 + 4.0 * e, 70 + e);
        ASSERT_TRUE(reg.publish(game_name, packageOf(m)).ok());
    }

    FleetSimConfig cfg;
    cfg.game = game_name;
    cfg.devices = 1000000;
    cfg.eval_seconds = 5.0;
    cfg.cohorts = {
        {"stable", 0.6, 1},
        {"lagging", 0.3, 2},
        {"fresh", 0.1, 1000},
    };
    auto pushed = pushEpoch(reg, cfg);
    ASSERT_TRUE(pushed.ok()) << pushed.status().message();
    const EpochPushReport &r = pushed.value();

    EXPECT_EQ(r.head, reg.head(game_name)->id);
    ASSERT_EQ(r.cohorts.size(), 3u);
    uint64_t devices = 0;
    for (const CohortReport &c : r.cohorts)
        devices += c.devices;
    EXPECT_EQ(devices, cfg.devices);

    // Delta-updated cohorts ship patches; the fresh cohort
    // full-fetches. Fleet-wide, delta OTA strictly beats full.
    EXPECT_TRUE(r.cohorts[0].used_delta);
    EXPECT_GT(r.cohorts[0].patch_bytes, 0u);
    EXPECT_LT(r.cohorts[0].delta_bytes, r.cohorts[0].full_bytes);
    EXPECT_FALSE(r.cohorts[2].used_delta);
    EXPECT_EQ(r.cohorts[2].delta_bytes, r.cohorts[2].full_bytes);
    EXPECT_LT(r.delta_bytes, r.full_bytes);
    EXPECT_EQ(r.fallbacks, 0u);

    // Hit rates are rates; the no-model cohort misses everything.
    for (const CohortReport &c : r.cohorts) {
        EXPECT_GE(c.hit_rate, 0.0);
        EXPECT_LE(c.hit_rate, 1.0);
    }
    EXPECT_EQ(r.cohorts[2].hit_rate, 0.0);
    EXPECT_GE(r.staleness_skew, 0.0);

    EXPECT_FALSE(pushEpoch(reg, FleetSimConfig{.game = "nope"}).ok());
}

}  // namespace
}  // namespace fleet
}  // namespace snip
