/**
 * @file
 * Tests of the multi-session parallel harness (core::ParallelRunner)
 * and of the concurrency contracts it depends on: const MemoTable
 * lookups from many threads, const-Game reads, and bitwise-identical
 * session results regardless of worker count.
 *
 * ConcurrentLookupsOnSharedConstTable and the ShrinkParallelTest
 * suite are the TSan smoke targets (tools/ci.sh runs this binary
 * under -fsanitize=thread).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/frozen_table.h"
#include "core/memo_table.h"
#include "core/model_codec.h"
#include "core/parallel_runner.h"
#include "core/scheme.h"
#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "ml/dataset.h"
#include "ml/pfi.h"
#include "ml/random_forest.h"
#include "obs/metrics.h"
#include "trace/recorder.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/task_pool.h"
#include "util/stats.h"

namespace snip {
namespace core {
namespace {

TEST(ParallelRunnerTest, DefaultThreadCountRespectsEnv)
{
    ::setenv("SNIP_THREADS", "3", 1);
    EXPECT_EQ(defaultThreadCount(), 3u);
    ::setenv("SNIP_THREADS", "bogus", 1);
    EXPECT_GE(defaultThreadCount(), 1u);  // falls back, never 0
    ::unsetenv("SNIP_THREADS");
    EXPECT_GE(defaultThreadCount(), 1u);
}

TEST(ParallelRunnerTest, DefaultThreadCountRejectsPartialParses)
{
    // A trailing-garbage value must be ignored (warn + fallback),
    // not silently truncated to its numeric prefix.
    unsigned fallback;
    {
        ::unsetenv("SNIP_THREADS");
        fallback = defaultThreadCount();
    }
    ::setenv("SNIP_THREADS", "4abc", 1);
    EXPECT_EQ(defaultThreadCount(), fallback);
    ::setenv("SNIP_THREADS", "4 8", 1);
    EXPECT_EQ(defaultThreadCount(), fallback);
    ::setenv("SNIP_THREADS", "", 1);
    EXPECT_EQ(defaultThreadCount(), fallback);
    ::setenv("SNIP_THREADS", "0", 1);
    EXPECT_EQ(defaultThreadCount(), fallback);
    ::setenv("SNIP_THREADS", "-2", 1);
    EXPECT_EQ(defaultThreadCount(), fallback);
    // Complete parses still work, including the 0x base prefix.
    ::setenv("SNIP_THREADS", "0x10", 1);
    EXPECT_EQ(defaultThreadCount(), 16u);
    ::unsetenv("SNIP_THREADS");
}

TEST(ParallelRunnerTest, SessionSeedsAreDistinct)
{
    const uint64_t base = 0x5e551011ULL;
    std::vector<uint64_t> seeds;
    for (uint64_t i = 0; i < 64; ++i)
        seeds.push_back(ParallelRunner::sessionSeed(base, i));
    for (size_t i = 0; i < seeds.size(); ++i) {
        EXPECT_NE(seeds[i], base);  // never the undecorated base
        for (size_t j = i + 1; j < seeds.size(); ++j)
            EXPECT_NE(seeds[i], seeds[j]);
    }
    // Derivation is a pure function of (base, index).
    EXPECT_EQ(ParallelRunner::sessionSeed(base, 5),
              ParallelRunner::sessionSeed(base, 5));
}

TEST(ParallelRunnerTest, ForEachCoversEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        ParallelRunner runner(threads);
        EXPECT_EQ(runner.threads(), threads);
        constexpr size_t kN = 100;
        std::vector<std::atomic<int>> counts(kN);
        runner.forEach(kN, [&](size_t i) {
            counts[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (size_t i = 0; i < kN; ++i)
            EXPECT_EQ(counts[i].load(), 1) << "index " << i;
    }
    // n smaller than the pool, and n == 0, must both work.
    ParallelRunner wide(8);
    std::atomic<int> total{0};
    wide.forEach(3, [&](size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 3);
    wide.forEach(0, [&](size_t) { ADD_FAILURE() << "fn called"; });
}

// ------------------------------------------------------- task pool

TEST(TaskPoolTest, NestedParallelForCompletesAtEveryPoolSize)
{
    // A task running on a pool worker submits a nested loop and
    // help-waits; at pool size 1 the owner must retire its own
    // queued tickets, at larger sizes thieves race it. Deadlock
    // here hangs the test binary, which is the assertion.
    for (unsigned threads : {1u, 2u, 8u}) {
        constexpr size_t kOuter = 6;
        constexpr size_t kInner = 5;
        std::vector<std::atomic<int>> counts(kOuter * kInner);
        util::parallelFor(kOuter, [&](size_t o) {
            util::parallelFor(kInner, [&](size_t i) {
                counts[o * kInner + i].fetch_add(
                    1, std::memory_order_relaxed);
            }, threads);
        }, threads);
        for (size_t k = 0; k < counts.size(); ++k)
            EXPECT_EQ(counts[k].load(), 1)
                << "threads " << threads << " slot " << k;
    }
    // Three levels deep, for good measure.
    std::atomic<int> total{0};
    util::parallelFor(3, [&](size_t) {
        util::parallelFor(3, [&](size_t) {
            util::parallelFor(3, [&](size_t) {
                total.fetch_add(1, std::memory_order_relaxed);
            }, 8);
        }, 8);
    }, 8);
    EXPECT_EQ(total.load(), 27);
}

TEST(TaskPoolTest, ConcurrentExternalCallersShareThePool)
{
    // Eight raw std::threads (none of them pool workers) each drive
    // their own parallelFor against the shared pool at once — the
    // TSan smoke for the overflow ring, parking, and reclaim paths.
    constexpr size_t kCallers = 8;
    constexpr size_t kN = 64;
    std::vector<std::vector<std::atomic<int>>> counts(kCallers);
    for (auto &c : counts) {
        std::vector<std::atomic<int>> fresh(kN);
        c.swap(fresh);
    }
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (size_t c = 0; c < kCallers; ++c) {
        callers.emplace_back([&, c] {
            for (int round = 0; round < 4; ++round) {
                util::parallelFor(kN, [&, c](size_t i) {
                    counts[c][i].fetch_add(
                        1, std::memory_order_relaxed);
                }, 4);
            }
        });
    }
    for (auto &t : callers)
        t.join();
    for (size_t c = 0; c < kCallers; ++c)
        for (size_t i = 0; i < kN; ++i)
            EXPECT_EQ(counts[c][i].load(), 4)
                << "caller " << c << " index " << i;
}

TEST(TaskPoolTest, ExceptionsPropagateToTheSubmitter)
{
    // The first fn exception must surface on the calling thread
    // after the loop winds down (never std::terminate), and the
    // pool must stay usable afterwards.
    EXPECT_THROW(
        util::parallelFor(16, [&](size_t i) {
            if (i % 2 == 0)
                throw std::runtime_error("boom");
        }, 4),
        std::runtime_error);
    std::atomic<int> total{0};
    util::parallelFor(16, [&](size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
    }, 4);
    EXPECT_EQ(total.load(), 16);
}

TEST(TaskPoolTest, StatsAreMonotonicAndSpawnsStayBounded)
{
    util::TaskPool &pool = util::TaskPool::instance();
    util::TaskPool::Stats before = pool.stats();
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round) {
        util::parallelFor(32, [&](size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        }, 8);
    }
    util::TaskPool::Stats after = pool.stats();
    EXPECT_EQ(total.load(), 50 * 32);
    EXPECT_GE(after.tasks, before.tasks);
    EXPECT_GE(after.steals, before.steals);
    EXPECT_GE(after.overflow, before.overflow);
    // The warm-path contract: the pool grows (once) toward the
    // largest requested fan-out — threads=8 needs 7 helpers — and
    // repeated dispatch never creates another thread.
    EXPECT_EQ(after.threads_spawned,
              std::max<uint64_t>(before.threads_spawned, 7u));
    EXPECT_EQ(after.threads_spawned,
              static_cast<uint64_t>(pool.size()));
    util::TaskPool::Stats again = pool.stats();
    for (int round = 0; round < 20; ++round)
        util::parallelFor(32, [&](size_t) {}, 8);
    EXPECT_EQ(pool.stats().threads_spawned, again.threads_spawned);
}

/** Field-by-field equality of two session stats blocks. */
void
expectStatsEqual(const SessionStats &a, const SessionStats &b)
{
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.shortcircuits, b.shortcircuits);
    EXPECT_EQ(a.instr_total, b.instr_total);
    EXPECT_EQ(a.instr_skipped, b.instr_skipped);
    EXPECT_EQ(a.ip_work_total, b.ip_work_total);
    EXPECT_EQ(a.ip_work_skipped, b.ip_work_skipped);
    EXPECT_EQ(a.lookup_bytes, b.lookup_bytes);
    EXPECT_EQ(a.lookup_candidates, b.lookup_candidates);
    EXPECT_EQ(a.lookup_energy_j, b.lookup_energy_j);
    EXPECT_EQ(a.erroneous_shortcircuits, b.erroneous_shortcircuits);
    EXPECT_EQ(a.err_temp_only, b.err_temp_only);
    EXPECT_EQ(a.err_history, b.err_history);
    EXPECT_EQ(a.err_extern, b.err_extern);
    EXPECT_EQ(a.output_fields_total, b.output_fields_total);
    EXPECT_EQ(a.output_fields_wrong, b.output_fields_wrong);
    EXPECT_EQ(a.useless_events, b.useless_events);
    EXPECT_EQ(a.useless_instr_executed, b.useless_instr_executed);
}

/**
 * The tentpole determinism guarantee: running the same session
 * specs on a 4-worker pool produces results bitwise identical to a
 * plain serial loop (scheduling order must not leak into results).
 */
TEST(ParallelRunnerTest, RunSessionsMatchesSerialBitwise)
{
    constexpr size_t kSessions = 6;
    const uint64_t base = 0xab5e5510ULL;

    std::vector<SessionSpec> specs;
    for (size_t i = 0; i < kSessions; ++i) {
        SessionSpec spec;
        spec.make_game = [] { return games::makeGame("colorphun"); };
        spec.make_scheme = [](games::Game &) {
            return std::make_unique<BaselineScheme>();
        };
        spec.cfg.duration_s = 10.0;
        spec.cfg.seed = ParallelRunner::sessionSeed(base, i);
        specs.push_back(std::move(spec));
    }

    ParallelRunner pool(4);
    std::vector<SessionResult> par = pool.runSessions(specs);
    ASSERT_EQ(par.size(), kSessions);

    for (size_t i = 0; i < kSessions; ++i) {
        auto game = specs[i].make_game();
        auto scheme = specs[i].make_scheme(*game);
        SessionResult ser = runSession(*game, *scheme, specs[i].cfg);
        expectStatsEqual(par[i].stats, ser.stats);
        EXPECT_EQ(par[i].report.total(), ser.report.total());
        EXPECT_EQ(par[i].report.elapsed(), ser.report.elapsed());
        ASSERT_EQ(par[i].report.components().size(),
                  ser.report.components().size());
        for (size_t c = 0; c < ser.report.components().size(); ++c) {
            EXPECT_EQ(par[i].report.components()[c].dynamic_j,
                      ser.report.components()[c].dynamic_j);
            EXPECT_EQ(par[i].report.components()[c].static_j,
                      ser.report.components()[c].static_j);
        }
    }
}

/**
 * The parallel benches give each task a *fresh clone* of the game
 * where the serial loops reused one instance (runSession resets it).
 * Those must be equivalent, or parallelizing would change results.
 */
TEST(ParallelRunnerTest, FreshCloneEquivalentToReset)
{
    SimulationConfig cfg;
    cfg.duration_s = 10.0;

    auto reused = games::makeGame("memory_game");
    BaselineScheme s1;
    SessionResult warm = runSession(*reused, s1, cfg);
    (void)warm;  // dirty the instance, then rely on reset()
    BaselineScheme s2;
    SessionResult again = runSession(*reused, s2, cfg);

    auto fresh = games::makeGame("memory_game");
    BaselineScheme s3;
    SessionResult clone = runSession(*fresh, s3, cfg);

    expectStatsEqual(again.stats, clone.stats);
    EXPECT_EQ(again.report.total(), clone.report.total());
}

/**
 * The shared-read contract the whole design rests on: many threads
 * doing lookups against ONE const MemoTable + ONE const Game must
 * race-free (this is the TSan smoke target) and must each see the
 * same results a serial reader sees.
 */
TEST(ParallelRunnerTest, ConcurrentLookupsOnSharedConstTable)
{
    // Build a deployed model the way the runtime does.
    auto game = games::makeGame("colorphun");
    BaselineScheme baseline;
    SimulationConfig cfg;
    cfg.duration_s = 30.0;
    cfg.record_events = true;
    SessionResult res = runSession(*game, baseline, cfg);
    auto replica = games::makeGame("colorphun");
    trace::Profile profile =
        trace::Replayer::replay(res.trace, *replica);
    SnipConfig scfg;
    SnipModel model = buildSnipModel(profile, *game, scfg);
    ASSERT_GT(model.table->entryCount(), 0u);

    game->reset();
    const MemoTable &table = *model.table;      // shared, const
    const games::Game &cgame = *game;           // shared, const
    const auto &events = res.trace.events;
    ASSERT_FALSE(events.empty());

    // Serial reference pass.
    uint64_t ref_hits = 0, ref_candidates = 0;
    {
        LookupScratch scratch;
        for (const auto &ev : events) {
            MemoLookup r = table.lookup(ev, cgame, scratch);
            ref_hits += r.hit;
            ref_candidates += r.candidates;
        }
    }

    constexpr unsigned kThreads = 8;
    constexpr int kRounds = 4;
    std::vector<uint64_t> hits(kThreads, 0);
    std::vector<uint64_t> candidates(kThreads, 0);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            LookupScratch scratch;  // per-caller, reused
            for (int round = 0; round < kRounds; ++round) {
                for (const auto &ev : events) {
                    MemoLookup r = table.lookup(ev, cgame, scratch);
                    hits[t] += r.hit;
                    candidates[t] += r.candidates;
                }
            }
        });
    }
    for (auto &th : pool)
        th.join();

    for (unsigned t = 0; t < kThreads; ++t) {
        EXPECT_EQ(hits[t], ref_hits * kRounds) << "thread " << t;
        EXPECT_EQ(candidates[t], ref_candidates * kRounds)
            << "thread " << t;
    }
    EXPECT_GT(ref_hits, 0u);
}

TEST(ParallelRunnerTest, ConcurrentLookupsOnSharedConstFrozenTable)
{
    // Same contract as the mutable-table test above, for the
    // deployed layout: one shared const FrozenTable, 8 threads,
    // per-caller scratch, results identical to a serial pass. The
    // frozen view is immutable by construction, so TSan has nothing
    // to flag (tools/ci.sh runs this under -fsanitize=thread).
    auto game = games::makeGame("colorphun");
    BaselineScheme baseline;
    SimulationConfig cfg;
    cfg.duration_s = 30.0;
    cfg.record_events = true;
    SessionResult res = runSession(*game, baseline, cfg);
    auto replica = games::makeGame("colorphun");
    trace::Profile profile =
        trace::Replayer::replay(res.trace, *replica);
    SnipConfig scfg;
    SnipModel model = buildSnipModel(profile, *game, scfg);
    ASSERT_GT(model.table->entryCount(), 0u);

    game->reset();
    std::shared_ptr<const FrozenTable> frozen =
        model.table->freeze();
    const FrozenTable &table = *frozen;         // shared, const
    const games::Game &cgame = *game;           // shared, const
    const auto &events = res.trace.events;
    ASSERT_FALSE(events.empty());

    uint64_t ref_hits = 0, ref_bytes = 0;
    {
        LookupScratch scratch;
        for (const auto &ev : events) {
            FrozenLookup r = table.lookup(ev, cgame, scratch);
            ref_hits += r.hit;
            ref_bytes += r.bytes_scanned;
        }
    }

    constexpr unsigned kThreads = 8;
    constexpr int kRounds = 4;
    std::vector<uint64_t> hits(kThreads, 0);
    std::vector<uint64_t> bytes(kThreads, 0);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            LookupScratch scratch;  // per-caller, reused
            for (int round = 0; round < kRounds; ++round) {
                for (const auto &ev : events) {
                    FrozenLookup r = table.lookup(ev, cgame, scratch);
                    hits[t] += r.hit;
                    bytes[t] += r.bytes_scanned;
                }
            }
        });
    }
    for (auto &th : pool)
        th.join();

    for (unsigned t = 0; t < kThreads; ++t) {
        EXPECT_EQ(hits[t], ref_hits * kRounds) << "thread " << t;
        EXPECT_EQ(bytes[t], ref_bytes * kRounds) << "thread " << t;
    }
    EXPECT_GT(ref_hits, 0u);
}

TEST(ParallelRunnerTest, ConcurrentBatchLookupsOnSharedConstFrozenTable)
{
    // The batched path under the same concurrency contract: one
    // shared const FrozenTable, 8 threads draining the stream
    // through lookupBatch() with per-caller batch scratch, results
    // identical to a serial scalar pass (tools/ci.sh runs this
    // under -fsanitize=thread).
    auto game = games::makeGame("colorphun");
    BaselineScheme baseline;
    SimulationConfig cfg;
    cfg.duration_s = 30.0;
    cfg.record_events = true;
    SessionResult res = runSession(*game, baseline, cfg);
    auto replica = games::makeGame("colorphun");
    trace::Profile profile =
        trace::Replayer::replay(res.trace, *replica);
    SnipConfig scfg;
    SnipModel model = buildSnipModel(profile, *game, scfg);
    ASSERT_GT(model.table->entryCount(), 0u);

    game->reset();
    std::shared_ptr<const FrozenTable> frozen =
        model.table->freeze();
    const FrozenTable &table = *frozen;         // shared, const
    const games::Game &cgame = *game;           // shared, const
    const auto &events = res.trace.events;
    ASSERT_FALSE(events.empty());

    uint64_t ref_hits = 0, ref_bytes = 0;
    {
        LookupScratch scratch;
        for (const auto &ev : events) {
            FrozenLookup r = table.lookup(ev, cgame, scratch);
            ref_hits += r.hit;
            ref_bytes += r.bytes_scanned;
        }
    }

    constexpr unsigned kThreads = 8;
    constexpr int kRounds = 4;
    constexpr size_t kBlock = 32;
    std::vector<uint64_t> hits(kThreads, 0);
    std::vector<uint64_t> bytes(kThreads, 0);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            BatchLookupScratch scratch;  // per-caller, reused
            std::vector<FrozenLookup> out(kBlock);
            for (int round = 0; round < kRounds; ++round) {
                for (size_t base = 0; base < events.size();
                     base += kBlock) {
                    size_t len =
                        std::min(kBlock, events.size() - base);
                    table.lookupBatch({events.data() + base, len},
                                      cgame, {out.data(), len},
                                      scratch);
                    for (size_t k = 0; k < len; ++k) {
                        hits[t] += out[k].hit;
                        bytes[t] += out[k].bytes_scanned;
                    }
                }
            }
        });
    }
    for (auto &th : pool)
        th.join();

    for (unsigned t = 0; t < kThreads; ++t) {
        EXPECT_EQ(hits[t], ref_hits * kRounds) << "thread " << t;
        EXPECT_EQ(bytes[t], ref_bytes * kRounds) << "thread " << t;
    }
    EXPECT_GT(ref_hits, 0u);
}

// -------------------------------------------- Shrink-phase parallelism

/** Profile colorphun the way the offline pipeline does. */
trace::Profile
profileColorphun(double duration_s)
{
    auto game = games::makeGame("colorphun");
    BaselineScheme baseline;
    SimulationConfig cfg;
    cfg.duration_s = duration_s;
    cfg.record_events = true;
    SessionResult res = runSession(*game, baseline, cfg);
    auto replica = games::makeGame("colorphun");
    return trace::Replayer::replay(res.trace, *replica);
}

/**
 * End-to-end thread invariance of the Shrink phase: buildSnipModel
 * at 1 worker and at 8 workers must produce identical selections
 * and byte-identical packed models (the OTA payload).
 */
TEST(ShrinkParallelTest, ModelBytesInvariantAcrossThreadCounts)
{
    auto game = games::makeGame("colorphun");
    trace::Profile profile = profileColorphun(30.0);

    SnipConfig c1;
    c1.threads = 1;
    SnipConfig c8 = c1;
    c8.threads = 8;
    SnipModel m1 = buildSnipModel(profile, *game, c1);
    SnipModel m8 = buildSnipModel(profile, *game, c8);

    ASSERT_EQ(m1.types.size(), m8.types.size());
    ASSERT_FALSE(m1.types.empty());
    for (size_t i = 0; i < m1.types.size(); ++i) {
        const auto &a = m1.types[i].selection;
        const auto &b = m8.types[i].selection;
        EXPECT_EQ(a.selected, b.selected);
        EXPECT_EQ(a.selected_bytes, b.selected_bytes);
        EXPECT_EQ(a.selected_error, b.selected_error);
        EXPECT_EQ(a.selected_hit_rate, b.selected_hit_rate);
        EXPECT_EQ(a.curve.size(), b.curve.size());
    }

    util::ByteBuffer p1, p8;
    packModel(m1, p1);
    packModel(m8, p8);
    ASSERT_EQ(p1.size(), p8.size());
    EXPECT_EQ(p1.data(), p8.data());  // byte-identical OTA payload
}

/**
 * TSan smoke for the training-side shared-read contract: many
 * threads running batched prediction and PFI against ONE const
 * Dataset and ONE const RandomForest (scratch is thread_local) must
 * be race-free and each see what a serial caller sees.
 */
TEST(ShrinkParallelTest, ConcurrentPfiOnSharedConstForest)
{
    auto game = games::makeGame("colorphun");
    trace::Profile profile = profileColorphun(30.0);

    // Dataset of the busiest event type.
    events::EventType busiest = events::EventType::Touch;
    size_t best = 0;
    for (events::EventType t : profile.typesPresent()) {
        size_t n = profile.ofType(t).size();
        if (n > best) {
            best = n;
            busiest = t;
        }
    }
    ASSERT_GE(best, 64u);
    const ml::Dataset ds(profile.ofType(busiest), game->schema());
    std::vector<size_t> cols(ds.numFeatures());
    for (size_t i = 0; i < cols.size(); ++i)
        cols[i] = i;

    ml::ForestConfig fcfg;
    fcfg.num_trees = 8;
    ml::RandomForest forest(fcfg);
    forest.train(ds, cols);
    const ml::RandomForest &cforest = forest;  // shared, const

    // Serial reference pass.
    std::vector<uint64_t> ref(ds.numRows());
    cforest.predictRows(ds, 0, ds.numRows(), ref.data());
    ml::PfiConfig pcfg;
    pcfg.threads = 1;
    ml::PfiResult ref_pfi = ml::computePfi(cforest, ds, cols, pcfg);

    constexpr unsigned kThreads = 8;
    std::vector<int> ok(kThreads, 0);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            std::vector<uint64_t> mine(ds.numRows());
            cforest.predictRows(ds, 0, ds.numRows(), mine.data());
            ml::PfiResult pfi =
                ml::computePfi(cforest, ds, cols, pcfg);
            ok[t] = (mine == ref &&
                     pfi.importance == ref_pfi.importance &&
                     pfi.base_error == ref_pfi.base_error);
        });
    }
    for (auto &th : pool)
        th.join();
    for (unsigned t = 0; t < kThreads; ++t)
        EXPECT_EQ(ok[t], 1) << "thread " << t;
}

/**
 * TSan smoke for util::EmpiricalCdf's lazily-sorted const reads.
 * The old implementation mutated the sample vector from const
 * accessors with no synchronization, so the first concurrent
 * readers raced on the sort; reads of a shared const CDF must now
 * be safe and agree with a serial reference.
 */
TEST(ShrinkParallelTest, ConcurrentEmpiricalCdfReads)
{
    util::EmpiricalCdf cdf;
    util::Rng rng(99);
    for (int i = 0; i < 5000; ++i)
        cdf.add(rng.uniformReal(0.0, 1000.0));

    // Serial reference from a copy (the copy sorts independently,
    // leaving `cdf` unsorted for the concurrent first-read below).
    util::EmpiricalCdf ref_cdf(cdf);
    const double quantiles[] = {0.0, 0.25, 0.5, 0.9, 0.99, 1.0};
    double ref_q[6];
    for (int i = 0; i < 6; ++i)
        ref_q[i] = ref_cdf.quantile(quantiles[i]);
    double ref_at = ref_cdf.cdfAt(500.0);

    const util::EmpiricalCdf &shared = cdf;
    constexpr unsigned kThreads = 8;
    std::vector<int> ok(kThreads, 0);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            bool good = true;
            for (int rep = 0; rep < 50; ++rep) {
                for (int i = 0; i < 6; ++i) {
                    good &= shared.quantile(quantiles[i]) ==
                            ref_q[i];
                }
                good &= shared.cdfAt(500.0) == ref_at;
            }
            ok[t] = good;
        });
    }
    for (auto &th : pool)
        th.join();
    for (unsigned t = 0; t < kThreads; ++t)
        EXPECT_EQ(ok[t], 1) << "thread " << t;
}

/**
 * Regression: a SessionSpec without a factory must surface as an
 * error on the *calling* thread. The old code validated inside the
 * parallelFor worker, where util::fatal's throw (with throw-on-error
 * configured, as tests and library embedders use) escapes the worker
 * and lands in std::terminate instead of the caller's catch scope.
 */
TEST(ParallelRunnerTest, InvalidSpecThrowsOnCallerThread)
{
    bool prev = util::setThrowOnError(true);
    std::vector<SessionSpec> specs(3);  // no factories at all
    ParallelRunner pool(4);
    EXPECT_THROW(pool.runSessions(specs), std::runtime_error);

    // A single bad spec among good ones must also throw before any
    // session work is dispatched.
    std::vector<SessionSpec> mixed;
    for (int i = 0; i < 3; ++i) {
        SessionSpec spec;
        spec.make_game = [] { return games::makeGame("colorphun"); };
        spec.make_scheme = [](games::Game &) {
            return std::make_unique<BaselineScheme>();
        };
        spec.cfg.duration_s = 1.0;
        mixed.push_back(std::move(spec));
    }
    mixed[1].make_scheme = nullptr;
    EXPECT_THROW(pool.runSessions(mixed), std::runtime_error);
    util::setThrowOnError(prev);
}

/** Bitwise equality of two energy reports. */
void
expectReportEqual(const soc::EnergyReport &a,
                  const soc::EnergyReport &b)
{
    EXPECT_EQ(a.total(), b.total());
    EXPECT_EQ(a.elapsed(), b.elapsed());
    ASSERT_EQ(a.components().size(), b.components().size());
    for (size_t c = 0; c < a.components().size(); ++c) {
        EXPECT_EQ(a.components()[c].dynamic_j,
                  b.components()[c].dynamic_j);
        EXPECT_EQ(a.components()[c].static_j,
                  b.components()[c].static_j);
    }
}

/**
 * Shared SNIP fixture for the pipeline suite: one profiled + built
 * model (the expensive part), reused across tests. The model is
 * only read through per-test SnipScheme instances.
 */
SnipModel &
pipelineFixtureModel()
{
    static SnipModel model = [] {
        auto game = games::makeGame("colorphun");
        BaselineScheme baseline;
        SimulationConfig pcfg;
        pcfg.duration_s = 30.0;
        pcfg.record_events = true;
        SessionResult prof = runSession(*game, baseline, pcfg);
        auto replica = games::makeGame("colorphun");
        trace::Profile profile =
            trace::Replayer::replay(prof.trace, *replica);
        SnipConfig scfg;
        scfg.min_records_per_type = 8;
        return buildSnipModel(profile, *game, scfg);
    }();
    return model;
}

/** One SNIP session (sequential or pipelined) against the fixture. */
SessionResult
runFixtureSession(const SimulationConfig &cfg)
{
    auto game = games::makeGame("colorphun");
    SnipRuntimeConfig rcfg;
    rcfg.audit_every = 8;
    SnipScheme scheme(pipelineFixtureModel(), rcfg);
    return runSession(*game, scheme, cfg);
}

/**
 * The tentpole determinism contract: a pipelined session reproduces
 * the sequential session bitwise — stats, energy report and the
 * recorded event stream — at every queue capacity and worker count.
 */
TEST(PipelineTest, MatchesSequentialBitwise)
{
    SimulationConfig cfg;
    cfg.duration_s = 10.0;
    cfg.seed = 7;
    cfg.record_events = true;
    SessionResult seq = runFixtureSession(cfg);
    ASSERT_GT(seq.stats.events, 0u);
    ASSERT_GT(seq.stats.shortcircuits, 0u);

    for (unsigned workers : {1u, 2u, 3u}) {
        for (uint32_t capacity : {1u, 2u, 16u, 64u}) {
            SimulationConfig pcfg = cfg;
            pcfg.pipeline.enabled = true;
            pcfg.pipeline.workers = workers;
            pcfg.pipeline.queue_capacity = capacity;
            SessionResult pip = runFixtureSession(pcfg);
            SCOPED_TRACE(testing::Message()
                         << "workers=" << workers
                         << " capacity=" << capacity);
            expectStatsEqual(pip.stats, seq.stats);
            expectReportEqual(pip.report, seq.report);
            ASSERT_EQ(pip.trace.events.size(),
                      seq.trace.events.size());
            for (size_t i = 0; i < seq.trace.events.size(); ++i) {
                EXPECT_EQ(pip.trace.events[i].seq,
                          seq.trace.events[i].seq);
                EXPECT_EQ(pip.trace.events[i].timestamp,
                          seq.trace.events[i].timestamp);
            }
        }
    }
}

/** The baseline (no-probe, no-batch) scheme through the pipeline. */
TEST(PipelineTest, BaselineSchemeMatchesSequential)
{
    auto run = [](bool pipelined) {
        auto game = games::makeGame("colorphun");
        BaselineScheme scheme;
        SimulationConfig cfg;
        cfg.duration_s = 8.0;
        cfg.seed = 11;
        cfg.pipeline.enabled = pipelined;
        cfg.pipeline.workers = 2;
        return runSession(*game, scheme, cfg);
    };
    SessionResult seq = run(false);
    SessionResult pip = run(true);
    expectStatsEqual(pip.stats, seq.stats);
    expectReportEqual(pip.report, seq.report);
}

/**
 * Determinism fuzz: random queue capacities, random batch blocks
 * and randomized stage stalls (injected through the test hook, so
 * every interleaving of backpressure and starvation gets exercised)
 * must never change a single bit of the result.
 */
TEST(PipelineTest, DeterminismFuzz)
{
    util::Rng fuzz(0xf022);
    std::map<uint32_t, SessionResult> seq_by_block;

    for (int iter = 0; iter < 10; ++iter) {
        uint32_t capacity =
            1 + static_cast<uint32_t>(fuzz.uniformInt(0, 63));
        uint32_t block =
            1 + static_cast<uint32_t>(fuzz.uniformInt(0, 47));
        unsigned workers =
            1 + static_cast<unsigned>(fuzz.uniformInt(0, 2));
        uint64_t stall_salt = fuzz.next();

        SimulationConfig cfg;
        cfg.duration_s = 5.0;
        cfg.seed = 21;
        cfg.batch_block = block;

        auto it = seq_by_block.find(block);
        if (it == seq_by_block.end())
            it = seq_by_block
                     .emplace(block, runFixtureSession(cfg))
                     .first;
        const SessionResult &seq = it->second;

        SimulationConfig pcfg = cfg;
        pcfg.pipeline.enabled = true;
        pcfg.pipeline.queue_capacity = capacity;
        pcfg.pipeline.workers = workers;
        // Stateless stall: a deterministic hash of (stage, item)
        // picks ~1/32 of the items on each stage and parks them,
        // creating both output-full and input-empty phases.
        pcfg.pipeline.test_stall = [stall_salt](int stage,
                                                uint64_t item) {
            uint64_t h = util::mix64(
                stall_salt ^ (static_cast<uint64_t>(stage) << 32) ^
                item);
            if (h % 32 == 0)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(h % 200));
        };
        SessionResult pip = runFixtureSession(pcfg);

        SCOPED_TRACE(testing::Message()
                     << "iter=" << iter << " capacity=" << capacity
                     << " block=" << block
                     << " workers=" << workers);
        expectStatsEqual(pip.stats, seq.stats);
        expectReportEqual(pip.report, seq.report);
    }
}

/**
 * The pipeline's obs surface: per-stage item/blocked counters,
 * queue-depth histograms, occupancy gauges, and deadline misses
 * when a (deliberately unmeetable) per-stage deadline is set.
 */
TEST(PipelineTest, ExportsStageMetrics)
{
    obs::Registry reg;
    SimulationConfig cfg;
    cfg.duration_s = 5.0;
    cfg.seed = 3;
    cfg.obs = &reg;
    cfg.pipeline.enabled = true;
    cfg.pipeline.workers = 2;
    cfg.pipeline.queue_capacity = 4;
    cfg.pipeline.stage_deadline_us = 1e-3;  // 1 ns: every item misses
    SessionResult res = runFixtureSession(cfg);
    ASSERT_GT(res.stats.events, 0u);

    for (const char *stage : {"gen", "decide", "exec"}) {
        std::string p = std::string("pipeline.stage.") + stage + ".";
        EXPECT_GT(reg.counterValue(p + "items"), 0u) << stage;
        EXPECT_GT(reg.counterValue(p + "busy_ns"), 0u) << stage;
        EXPECT_GT(reg.counterValue(p + "deadline_misses"), 0u)
            << stage;
        EXPECT_GT(reg.gaugeValue(p + "occupancy"), 0.0) << stage;
        const util::Log2Histogram *depth =
            reg.findHistogram(p + "queue_depth");
        ASSERT_NE(depth, nullptr) << stage;
        EXPECT_GT(depth->count(), 0u) << stage;
    }
    EXPECT_EQ(reg.gaugeValue("pipeline.workers"), 2.0);
    EXPECT_EQ(reg.gaugeValue("pipeline.queue_capacity"), 4.0);
    // gen and decide produce exactly what exec consumes.
    EXPECT_EQ(reg.counterValue("pipeline.stage.gen.items"),
              reg.counterValue("pipeline.stage.exec.items"));

    // The session-path metrics flow unchanged through the pipeline.
    EXPECT_EQ(reg.counterValue("session.events"), res.stats.events);
}

/**
 * TSan smoke: 8 concurrent pipelined sessions, each with up to 3
 * stage workers, all deciding against the one shared const
 * FrozenTable of the fixture model. Results must equal the
 * sequential reference (tools/ci.sh runs this under
 * -fsanitize=thread).
 */
TEST(PipelineTest, ConcurrentPipelinedSessionsOnSharedFrozenTable)
{
    SimulationConfig cfg;
    cfg.duration_s = 5.0;
    cfg.seed = 17;
    SessionResult seq = runFixtureSession(cfg);

    constexpr unsigned kThreads = 8;
    std::vector<SessionResult> results(kThreads);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            SimulationConfig pcfg = cfg;
            pcfg.pipeline.enabled = true;
            pcfg.pipeline.workers = 1 + t % 3;
            pcfg.pipeline.queue_capacity = 1u << (t % 5);
            results[t] = runFixtureSession(pcfg);
        });
    }
    for (auto &th : pool)
        th.join();
    for (unsigned t = 0; t < kThreads; ++t) {
        SCOPED_TRACE(testing::Message() << "thread " << t);
        expectStatsEqual(results[t].stats, seq.stats);
        expectReportEqual(results[t].report, seq.report);
    }
}

}  // namespace
}  // namespace core
}  // namespace snip
