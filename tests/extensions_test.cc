/**
 * @file
 * Tests for the paper's future-work extensions implemented here:
 * the runtime audit watchdog (§VII-B), the QoE model for tolerable
 * Out.Temp errors (§IV-B / §V-B), and the federated backend
 * (§VII-C).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/federated.h"
#include "core/qoe.h"
#include "core/scheme.h"
#include "core/simulation.h"
#include "games/registry.h"
#include "trace/recorder.h"
#include "util/logging.h"

namespace snip {
namespace core {
namespace {

// ----------------------------------------------------------- QoE

TEST(Qoe, GlitchPerceptibilityIsSmallAt60Fps)
{
    QoeModel m;
    // One 16.7 ms frame vs ~190 ms reaction time.
    EXPECT_NEAR(m.glitchPerceptibility(), 0.0877, 0.01);
}

TEST(Qoe, CleanSessionIsAcceptable)
{
    SessionStats stats;
    stats.events = 100;
    QoeReport r = scoreQoe(stats, 60.0);
    EXPECT_TRUE(r.acceptable);
    EXPECT_DOUBLE_EQ(r.glitches_per_minute, 0.0);
}

TEST(Qoe, TempGlitchesDiscountedByPerceptibility)
{
    SessionStats stats;
    stats.err_temp_only = 6;  // 6 glitches in 1 minute
    QoeReport r = scoreQoe(stats, 60.0);
    EXPECT_DOUBLE_EQ(r.glitches_per_minute, 6.0);
    EXPECT_LT(r.perceptible_glitches_per_minute, 1.0);
    EXPECT_TRUE(r.acceptable);
}

TEST(Qoe, HistoryCorruptionNeverAcceptable)
{
    SessionStats stats;
    stats.err_history = 1;
    QoeReport r = scoreQoe(stats, 60.0);
    EXPECT_FALSE(r.acceptable);
    EXPECT_GT(r.corruptions_per_minute, 0.0);
}

TEST(Qoe, InvalidSessionLengthFatal)
{
    bool prev = util::setThrowOnError(true);
    SessionStats stats;
    EXPECT_THROW(scoreQoe(stats, 0.0), std::runtime_error);
    util::setThrowOnError(prev);
}

// ------------------------------------------------------- Watchdog

/** Model with a deliberately broken selection: the necessary
 *  history fields are omitted, so hits go wrong. */
SnipModel
brokenModel(games::Game &game)
{
    SnipModel model;
    model.game = game.name();
    model.table = std::make_unique<MemoTable>(game.schema());
    std::vector<events::FieldId> only_zone;
    const auto &spec = game.handler(events::EventType::Touch);
    for (const auto &efs : spec.event_fields)
        if (efs.necessary)
            only_zone.push_back(efs.fid);
    model.table->setSelected(events::EventType::Touch, only_zone);
    return model;
}

TEST(Watchdog, AuditsCatchBrokenTable)
{
    auto game = games::makeGame("colorphun");
    SnipModel model = brokenModel(*game);
    SnipRuntimeConfig rcfg;
    rcfg.audit_every = 4;
    rcfg.audit_window = 8;
    rcfg.audit_clear_threshold = 0.05;
    SnipScheme scheme(model, rcfg);

    SimulationConfig cfg;
    cfg.duration_s = 120.0;
    SessionResult res = runSession(*game, scheme, cfg);
    (void)res;
    EXPECT_GT(scheme.auditsRun(), 5u);
    EXPECT_GT(scheme.auditsFailed(), 0u);
    EXPECT_GT(scheme.tableClears(), 0u);
}

TEST(Watchdog, HealthyTableNeverCleared)
{
    auto game = games::makeGame("colorphun");
    SnipModel model;
    model.game = game->name();
    model.table = std::make_unique<MemoTable>(game->schema());
    model.table->setSelected(
        events::EventType::Touch,
        game->necessaryInputIds(events::EventType::Touch));
    SnipRuntimeConfig rcfg;
    rcfg.audit_every = 4;
    rcfg.audit_window = 8;
    SnipScheme scheme(model, rcfg);

    SimulationConfig cfg;
    cfg.duration_s = 120.0;
    SessionResult res = runSession(*game, scheme, cfg);
    (void)res;
    EXPECT_GT(scheme.auditsRun(), 5u);
    EXPECT_EQ(scheme.auditsFailed(), 0u);
    EXPECT_EQ(scheme.tableClears(), 0u);
}

TEST(Watchdog, AuditedEventsAreNotShortcircuited)
{
    auto game = games::makeGame("colorphun");
    SnipModel model;
    model.game = game->name();
    model.table = std::make_unique<MemoTable>(game->schema());
    model.table->setSelected(
        events::EventType::Touch,
        game->necessaryInputIds(events::EventType::Touch));
    SnipRuntimeConfig audit_on, audit_off;
    audit_on.audit_every = 2;  // every other hit audited
    SnipScheme with(model, audit_on);
    SimulationConfig cfg;
    cfg.duration_s = 60.0;
    SessionResult r_with = runSession(*game, with, cfg);

    SnipModel model2;
    model2.game = game->name();
    model2.table = std::make_unique<MemoTable>(game->schema());
    model2.table->setSelected(
        events::EventType::Touch,
        game->necessaryInputIds(events::EventType::Touch));
    SnipScheme without(model2, audit_off);
    SessionResult r_without = runSession(*game, without, cfg);

    // Auditing halves the effective short-circuits (same stream).
    EXPECT_LT(r_with.stats.shortcircuits,
              r_without.stats.shortcircuits);
}

// ------------------------------------------------------ Federated

TEST(Federated, MatchesCentralizedQualityAtLowerCost)
{
    // Camera-driven game: raw uploads must include the recorded
    // feed, which is where federation pays off.
    FederatedConfig cfg;
    cfg.num_users = 5;
    cfg.session_s = 150.0;
    FederatedResult central = buildCentralized("chase_whisply", cfg);
    FederatedResult fed = buildFederated("chase_whisply", cfg);

    // Costs: federated never uploads more raw data, and its serial
    // selection job is at most one user's profile.
    EXPECT_LT(fed.cost.selection_records,
              central.cost.selection_records);
    EXPECT_LT(fed.cost.uploaded_bytes, central.cost.uploaded_bytes);

    // Deployed quality on a held-out user.
    uint64_t seed = 0xeeeeULL;
    FederatedEval ec =
        evaluateModel("chase_whisply", central.model, seed);
    FederatedEval ef = evaluateModel("chase_whisply", fed.model, seed);
    EXPECT_GT(ef.coverage, 0.2);
    EXPECT_GT(ef.coverage, ec.coverage * 0.6);
    EXPECT_LT(ef.error_field_rate, 0.02);
}

TEST(Federated, VoteThresholdFiltersMinorityFields)
{
    FederatedConfig cfg;
    cfg.num_users = 3;
    cfg.session_s = 60.0;
    cfg.vote_fraction = 1.01;  // impossible: nothing deployed
    FederatedResult fed = buildFederated("colorphun", cfg);
    EXPECT_TRUE(fed.model.types.empty());
}

TEST(Federated, VotesNeededExactCeiling)
{
    // The regression the epsilon fudge (f * N + 0.9999) got wrong:
    // the threshold must be the exact ceiling of vote_fraction *
    // num_users at every representable fraction.
    struct Case {
        double fraction;
        int users;
        size_t expected;
    };
    const Case cases[] = {
        {0.5, 2, 1},  {0.5, 3, 2},  {0.5, 10, 5},
        {1.0, 2, 2},  {1.0, 3, 3},  {1.0, 10, 10},
        {0.25, 4, 1}, {0.75, 4, 3}, {2.0, 5, 10},
    };
    for (const Case &c : cases)
        EXPECT_EQ(federatedVotesNeeded(c.fraction, c.users),
                  c.expected)
            << c.fraction << " x " << c.users;

    // Adversarial boundaries: a fraction one ulp off an exact
    // product must round to the mathematically exact ceiling of the
    // value the double actually holds.
    double below_half = std::nextafter(0.5, 0.0);
    EXPECT_EQ(federatedVotesNeeded(below_half, 10), 5u);  // 4.9999...
    double above_half = std::nextafter(0.5, 1.0);
    EXPECT_EQ(federatedVotesNeeded(above_half, 10), 6u);  // 5.0000...1
    double below_one = std::nextafter(1.0, 0.0);
    EXPECT_EQ(federatedVotesNeeded(below_one, 3), 3u);

    // Degenerate inputs.
    EXPECT_EQ(federatedVotesNeeded(0.5, 0), 0u);
    EXPECT_EQ(federatedVotesNeeded(0.0, 7), 1u);
    EXPECT_EQ(federatedVotesNeeded(-1.0, 7), 1u);
    // An impossible fraction needs more votes than users exist.
    EXPECT_GT(federatedVotesNeeded(1.01, 5), 5u);
}

TEST(Federated, EvaluateModelTakesConstModel)
{
    // evaluateModel must accept a const (already frozen) model; the
    // SnipScheme const overload serves lookups without freezing.
    FederatedConfig cfg;
    cfg.num_users = 2;
    cfg.session_s = 45.0;
    FederatedResult fed = buildFederated("colorphun", cfg);
    const SnipModel &frozen_view = fed.model;
    FederatedEval ev =
        evaluateModel("colorphun", frozen_view, 909, 20.0);
    EXPECT_GE(ev.coverage, 0.0);
    EXPECT_LE(ev.coverage, 1.0);
}

TEST(Federated, DeployedTypesReported)
{
    FederatedConfig cfg;
    cfg.num_users = 2;
    cfg.session_s = 60.0;
    FederatedResult fed = buildFederated("colorphun", cfg);
    ASSERT_FALSE(fed.deployed_types.empty());
    EXPECT_EQ(fed.deployed_types[0].first, events::EventType::Touch);
    EXPECT_GT(fed.deployed_types[0].second, 0u);
}

}  // namespace
}  // namespace core
}  // namespace snip
