/**
 * @file
 * Unit tests for the util layer: RNG determinism and distribution
 * properties, byte buffers and hashing, statistics primitives,
 * table/CSV rendering, and unit conversions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "util/bytes.h"
#include "util/crc32.h"
#include "util/csv_writer.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/units.h"

namespace snip {
namespace util {
namespace {

class ThrowOnErrorGuard
{
  public:
    ThrowOnErrorGuard() { prev_ = setThrowOnError(true); }
    ~ThrowOnErrorGuard() { setThrowOnError(prev_); }

  private:
    bool prev_;
};

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    uint64_t first = a.next();
    a.next();
    a.seed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        uint64_t v = rng.uniformInt(5, 17);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 17u);
    }
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(3);
    EXPECT_EQ(rng.uniformInt(9, 9), 9u);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(0, 7));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniformReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0, sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double v = rng.gaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(14);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LogNormalMedian)
{
    Rng rng(15);
    std::vector<double> vals;
    for (int i = 0; i < 20001; ++i)
        vals.push_back(rng.logNormal(100.0, 0.5));
    std::sort(vals.begin(), vals.end());
    EXPECT_NEAR(vals[10000], 100.0, 5.0);
}

TEST(Rng, LogNormalRejectsNonPositiveMedian)
{
    ThrowOnErrorGuard guard;
    Rng rng(1);
    EXPECT_THROW(rng.logNormal(0.0, 1.0), std::runtime_error);
}

TEST(Rng, PermutationIsBijection)
{
    Rng rng(21);
    auto p = rng.permutation(257);
    std::set<size_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 257u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, PermutationEmpty)
{
    Rng rng(1);
    EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(31);
    std::vector<double> w = {0.0, 1.0, 3.0};
    int counts[3] = {};
    for (int i = 0; i < 20000; ++i)
        ++counts[rng.weightedIndex(w)];
    EXPECT_EQ(counts[0], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsAllZero)
{
    ThrowOnErrorGuard guard;
    Rng rng(1);
    std::vector<double> w = {0.0, 0.0};
    EXPECT_THROW(rng.weightedIndex(w), std::runtime_error);
}

TEST(Rng, BurstLengthBounds)
{
    Rng rng(33);
    for (int i = 0; i < 1000; ++i) {
        uint64_t len = rng.burstLength(4.0, 10);
        EXPECT_GE(len, 1u);
        EXPECT_LE(len, 10u);
    }
}

TEST(Rng, ForkDecorrelates)
{
    Rng a(55);
    Rng child = a.fork(1);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == child.next());
    EXPECT_LT(same, 2);
}

TEST(Mix64, AvalancheOnSingleBit)
{
    uint64_t a = mix64(0x1234);
    uint64_t b = mix64(0x1235);
    int diff = __builtin_popcountll(a ^ b);
    EXPECT_GT(diff, 16);
}

TEST(Mix64, CombineOrderSensitive)
{
    EXPECT_NE(mixCombine(1, 2), mixCombine(2, 1));
}

// -------------------------------------------------------------- bytes

TEST(Fnv1a, KnownProperties)
{
    EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ULL);
    EXPECT_NE(fnv1a(std::string("a")), fnv1a(std::string("b")));
    EXPECT_EQ(fnv1a(std::string("hello")), fnv1a(std::string("hello")));
}

TEST(HashWords, OrderSensitive)
{
    EXPECT_NE(hashWords({1, 2}), hashWords({2, 1}));
    EXPECT_NE(hashWords({1}), hashWords({1, 0}));
}

TEST(ByteBuffer, RoundTripPrimitives)
{
    ByteBuffer buf;
    buf.putU8(0xab);
    buf.putU32(0xdeadbeef);
    buf.putU64(0x0123456789abcdefULL);
    buf.putString("snip");
    EXPECT_EQ(buf.getU8(), 0xab);
    EXPECT_EQ(buf.getU32(), 0xdeadbeefu);
    EXPECT_EQ(buf.getU64(), 0x0123456789abcdefULL);
    EXPECT_EQ(buf.getString(), "snip");
    EXPECT_EQ(buf.remaining(), 0u);
}

TEST(ByteBuffer, RewindRereads)
{
    ByteBuffer buf;
    buf.putU32(7);
    EXPECT_EQ(buf.getU32(), 7u);
    buf.rewind();
    EXPECT_EQ(buf.getU32(), 7u);
}

TEST(ByteBuffer, UnderrunPanics)
{
    ThrowOnErrorGuard guard;
    ByteBuffer buf;
    buf.putU8(1);
    buf.getU8();
    EXPECT_THROW(buf.getU8(), std::runtime_error);
}

TEST(ByteBuffer, HashChangesWithContent)
{
    ByteBuffer a, b;
    a.putU32(1);
    b.putU32(2);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(ByteBuffer, TryGettersFailWithoutPanicking)
{
    ByteBuffer buf;
    buf.putU32(0xfeedf00d);
    buf.putString("ok");

    uint32_t u = 0;
    EXPECT_TRUE(buf.tryGetU32(&u));
    EXPECT_EQ(u, 0xfeedf00du);
    std::string s;
    EXPECT_TRUE(buf.tryGetString(&s));
    EXPECT_EQ(s, "ok");

    // Underruns return false and leave the cursor where it was.
    size_t at = buf.cursor();
    uint64_t big = 0;
    uint8_t byte = 0;
    EXPECT_FALSE(buf.tryGetU64(&big));
    EXPECT_FALSE(buf.tryGetU8(&byte));
    EXPECT_EQ(buf.cursor(), at);

    // A string whose length prefix overruns the data must also fail
    // without consuming the prefix.
    ByteBuffer lying;
    lying.putU32(1000);
    lying.putU8('x');
    at = lying.cursor();
    EXPECT_FALSE(lying.tryGetString(&s));
    EXPECT_EQ(lying.cursor(), at);
}

TEST(ByteBuffer, PutBytesAppendsRaw)
{
    ByteBuffer src;
    src.putU32(0x01020304);
    ByteBuffer dst;
    dst.putU8(0xff);
    dst.putBytes(src.data().data(), src.size());
    EXPECT_EQ(dst.size(), 5u);
    EXPECT_EQ(dst.getU8(), 0xff);
    EXPECT_EQ(dst.getU32(), 0x01020304u);
}

TEST(ByteReader, LatchesFailure)
{
    ByteBuffer buf;
    buf.putU32(42);
    ByteReader r(buf);
    EXPECT_EQ(r.u32(), 42u);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.u64(), 0u);  // underrun
    EXPECT_FALSE(r.ok());
    // Once failed, stays failed even though a byte is conceptually
    // available.
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(ByteReader, FitsBoundsCounts)
{
    ByteBuffer buf;
    for (int i = 0; i < 16; ++i)
        buf.putU8(0);
    ByteReader r(buf);
    EXPECT_TRUE(r.fits(4, 4));
    EXPECT_TRUE(r.fits(0, 1000));
    EXPECT_FALSE(r.fits(5, 4));
    EXPECT_FALSE(r.fits(0xffffffffu, 4));  // would overflow naive mul
}

TEST(Crc32, KnownAnswers)
{
    // The CRC-32/IEEE check value ("123456789" -> 0xCBF43926) plus
    // edge cases.
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(crc32("", 0), 0u);
    EXPECT_NE(crc32("a", 1), crc32("b", 1));
}

TEST(Crc32, SeedChainsPartials)
{
    const char *msg = "snip ota payload";
    uint32_t whole = crc32(msg, 16);
    uint32_t chained = crc32(msg + 7, 9, crc32(msg, 7));
    EXPECT_EQ(whole, chained);
}

TEST(Crc32, DetectsEveryBitFlip)
{
    uint8_t data[32];
    for (size_t i = 0; i < sizeof data; ++i)
        data[i] = static_cast<uint8_t>(i * 37 + 1);
    uint32_t base = crc32(data, sizeof data);
    for (size_t i = 0; i < sizeof data; ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            data[i] ^= static_cast<uint8_t>(1 << bit);
            EXPECT_NE(crc32(data, sizeof data), base);
            data[i] ^= static_cast<uint8_t>(1 << bit);
        }
    }
}

TEST(ToHex, Formats)
{
    uint8_t data[] = {0x00, 0xff, 0x1a};
    EXPECT_EQ(toHex(data, 3), "00ff1a");
}

TEST(FormatSize, Scales)
{
    EXPECT_EQ(formatSize(640), "640 B");
    EXPECT_EQ(formatSize(1536), "1.50 kB");
    EXPECT_EQ(formatSize(5.0 * 1024 * 1024 * 1024), "5.00 GB");
}

// -------------------------------------------------------------- stats

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Summary, MergeEqualsCombined)
{
    Summary a, b, all;
    for (int i = 0; i < 10; ++i) {
        double v = i * 1.7 - 3;
        (i < 5 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Summary, MergeWithEmpty)
{
    Summary a, empty;
    a.add(5.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(EmpiricalCdf, Quantiles)
{
    EmpiricalCdf cdf;
    for (int i = 1; i <= 100; ++i)
        cdf.add(i);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(cdf.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(cdf.maxValue(), 100.0);
}

TEST(EmpiricalCdf, CdfAt)
{
    EmpiricalCdf cdf;
    for (int i = 1; i <= 10; ++i)
        cdf.add(i);
    EXPECT_DOUBLE_EQ(cdf.cdfAt(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.cdfAt(5.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.cdfAt(10.0), 1.0);
}

TEST(EmpiricalCdf, EmptyPanics)
{
    ThrowOnErrorGuard guard;
    EmpiricalCdf cdf;
    EXPECT_THROW(cdf.quantile(0.5), std::runtime_error);
}

TEST(Log2Histogram, Buckets)
{
    Log2Histogram h;
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(1024);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.buckets().at(1), 1u);
    EXPECT_EQ(h.buckets().at(2), 2u);
    EXPECT_EQ(h.buckets().at(1024), 1u);
}

// Regression: sub-1.0 samples used to alias into the [1, 2) bucket
// because 1 << floor(log2(x)) is 1 for any negative exponent (and
// log2 of zero/negatives is garbage). They must land in a dedicated
// underflow bucket instead, and NaN must be ignored outright.
TEST(Log2Histogram, UnderflowBucket)
{
    Log2Histogram h;
    h.add(0.5);
    h.add(0.0);
    h.add(-3.0);
    h.add(0.999999);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.buckets().at(Log2Histogram::kUnderflowBucket), 4u);
    EXPECT_EQ(h.buckets().count(1), 0u);
}

TEST(Log2Histogram, BucketBoundaries)
{
    Log2Histogram h;
    h.add(1.0);   // exactly the first real bucket's lower bound
    h.add(1.99);  // still [1, 2)
    h.add(2.0);   // first value of [2, 4)
    h.add(3.99);
    h.add(4.0);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.buckets().at(1), 2u);
    EXPECT_EQ(h.buckets().at(2), 2u);
    EXPECT_EQ(h.buckets().at(4), 1u);
    EXPECT_EQ(h.buckets().count(Log2Histogram::kUnderflowBucket), 0u);
}

TEST(Log2Histogram, NanIgnored)
{
    Log2Histogram h;
    h.add(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(h.buckets().empty());
    h.add(7.0);
    h.add(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 1u);
}

TEST(Log2Histogram, Merge)
{
    Log2Histogram a, b;
    a.add(1.0);
    a.add(0.25);
    b.add(1.5);
    b.add(100.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.buckets().at(1), 2u);
    EXPECT_EQ(a.buckets().at(Log2Histogram::kUnderflowBucket), 1u);
    EXPECT_EQ(a.buckets().at(64), 1u);
}

TEST(EmpiricalCdf, CopyPreservesSamples)
{
    EmpiricalCdf cdf;
    for (int i = 1; i <= 10; ++i)
        cdf.add(i);
    EmpiricalCdf copy(cdf);
    EXPECT_DOUBLE_EQ(copy.quantile(0.5), 5.0);
    EmpiricalCdf assigned;
    assigned.add(999.0);
    assigned = cdf;
    EXPECT_DOUBLE_EQ(assigned.quantile(1.0), 10.0);
}

TEST(CounterSet, IncrementAndRead)
{
    CounterSet c;
    c.inc("a");
    c.inc("a", 2);
    EXPECT_EQ(c.get("a"), 3u);
    EXPECT_EQ(c.get("missing"), 0u);
}

// ---------------------------------------------------- table / csv

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"x", "1.5"});
    t.addRow({"longer", "22.25"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("22.25"), std::string::npos);
}

TEST(TablePrinter, RowArityMismatchPanics)
{
    ThrowOnErrorGuard guard;
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), std::runtime_error);
}

TEST(TablePrinter, Formatters)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::pct(0.5), "50.0%");
    EXPECT_EQ(TablePrinter::pct(0.123456, 2), "12.35%");
}

TEST(CsvWriter, EscapesSpecials)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a", "b"});
    csv.row({"plain", "with,comma"});
    csv.row({"quote\"inside", "multi\nline"});
    std::string out = os.str();
    EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
    EXPECT_EQ(csv.rowsWritten(), 2u);
}

TEST(CsvWriter, ArityEnforced)
{
    ThrowOnErrorGuard guard;
    std::ostringstream os;
    CsvWriter csv(os, {"a"});
    EXPECT_THROW(csv.row({"1", "2"}), std::runtime_error);
}

// -------------------------------------------------------------- units

TEST(Units, BatteryCapacity)
{
    // 3450 mAh at 3.85 V = 3.45 * 3600 * 3.85 J.
    EXPECT_NEAR(batteryCapacityJoules(3450, 3.85), 47816.0, 1.0);
}

TEST(Units, HoursToDrain)
{
    EXPECT_NEAR(hoursToDrain(3600.0, 1.0), 1.0, 1e-12);
    EXPECT_NEAR(hoursToDrain(47816.0, 4.43), 3.0, 0.01);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(nanojoules(1e9), 1.0);
    EXPECT_DOUBLE_EQ(millijoules(1000), 1.0);
    EXPECT_DOUBLE_EQ(milliwatts(500), 0.5);
    EXPECT_DOUBLE_EQ(hours(2), 7200.0);
}

TEST(Units, Formatters)
{
    EXPECT_EQ(formatEnergy(1500.0), "1.50 kJ");
    EXPECT_EQ(formatEnergy(0.002), "2.00 mJ");
    EXPECT_EQ(formatPower(0.5), "500 mW");
    EXPECT_EQ(formatTime(7200.0), "2.00 h");
    EXPECT_EQ(formatTime(0.0167), "16.70 ms");
}

TEST(Units, InvalidBatteryFatal)
{
    ThrowOnErrorGuard guard;
    EXPECT_THROW(batteryCapacityJoules(0, 3.85), std::runtime_error);
    EXPECT_THROW(hoursToDrain(100.0, 0.0), std::runtime_error);
}

// Parameterized sweep: uniformInt is unbiased across ranges.
class RngRangeTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RngRangeTest, UniformIntMeanIsCentered)
{
    uint64_t hi = GetParam();
    Rng rng(hi * 7 + 1);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.uniformInt(0, hi));
    double mean = sum / n;
    double expect = static_cast<double>(hi) / 2.0;
    EXPECT_NEAR(mean, expect, std::max(0.05, expect * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngRangeTest,
                         ::testing::Values(1, 2, 7, 16, 100, 1023,
                                           65535));

// ------------------------------------------------------------ Logging

/**
 * Log lines must reach stderr as single atomic writes: the SNIP
 * audit watchdog warns from whatever thread runs a session, and a
 * multi-chunk fprintf to the unbuffered stderr interleaves lines
 * from concurrent sessions. Redirect stderr to a file, hammer warn()
 * from 8 threads, and require every line to come back whole.
 */
TEST(Logging, ConcurrentWarnLinesStayIntact)
{
    const std::string path =
        ::testing::TempDir() + "/snip_warn_lines.txt";
    const std::string filler(40, '-');

    int saved = ::dup(STDERR_FILENO);
    ASSERT_GE(saved, 0);
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
    ASSERT_GE(fd, 0);
    ASSERT_GE(::dup2(fd, STDERR_FILENO), 0);
    ::close(fd);

    constexpr int kThreads = 8;
    constexpr int kLines = 200;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([t, &filler] {
            for (int i = 0; i < kLines; ++i)
                warn("t%d line %d %s", t, i, filler.c_str());
        });
    }
    for (auto &th : pool)
        th.join();

    ::dup2(saved, STDERR_FILENO);
    ::close(saved);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::set<std::pair<int, int>> seen;
    std::string line;
    size_t total = 0;
    while (std::getline(in, line)) {
        ++total;
        int t = -1, i = -1;
        char tail[64] = {0};
        ASSERT_EQ(std::sscanf(line.c_str(), "warn: t%d line %d %63s",
                              &t, &i, tail),
                  3)
            << "mangled line: '" << line << "'";
        EXPECT_TRUE(t >= 0 && t < kThreads) << line;
        EXPECT_TRUE(i >= 0 && i < kLines) << line;
        EXPECT_EQ(filler, tail) << line;
        EXPECT_TRUE(seen.emplace(t, i).second)
            << "duplicate line: '" << line << "'";
    }
    EXPECT_EQ(total, static_cast<size_t>(kThreads) * kLines);
    EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads) * kLines);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace util
}  // namespace snip
