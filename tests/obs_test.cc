/**
 * @file
 * Unit tests for the obs layer: registry find-or-create semantics
 * and handle stability, merge rules (counters sum, gauges last
 * writer, timers/histograms merge), span nesting and the disabled
 * no-op contract, per-worker sharding under parallelFor, and the
 * JSON/table sinks.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <thread>

#include "core/memo_table.h"
#include "core/scheme.h"
#include "games/registry.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/span.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace snip {
namespace obs {
namespace {

// ----------------------------------------------------------- Registry

TEST(Registry, FindOrCreate)
{
    Registry reg;
    EXPECT_TRUE(reg.empty());
    reg.counter("a").add(2);
    reg.counter("a").add(3);
    EXPECT_EQ(reg.counterValue("a"), 5u);
    EXPECT_EQ(reg.counterValue("missing"), 0u);
    EXPECT_FALSE(reg.empty());

    reg.gauge("g").set(1.5);
    reg.gauge("g").set(2.5);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("g"), 2.5);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("missing"), 0.0);

    reg.timer("t").add(0.1);
    ASSERT_NE(reg.findTimer("t"), nullptr);
    EXPECT_EQ(reg.findTimer("t")->count(), 1u);
    EXPECT_EQ(reg.findTimer("missing"), nullptr);

    reg.histogram("h").add(4.0);
    ASSERT_NE(reg.findHistogram("h"), nullptr);
    EXPECT_EQ(reg.findHistogram("h")->count(), 1u);
    EXPECT_EQ(reg.findHistogram("missing"), nullptr);
}

// The hot-path contract: a Counter handle resolved once must stay
// valid while later metric creations rebalance the maps.
TEST(Registry, HandlesAreStable)
{
    Registry reg;
    Counter &c = reg.counter("first");
    for (int i = 0; i < 256; ++i)
        reg.counter("extra." + std::to_string(i));
    c.add(7);
    EXPECT_EQ(reg.counterValue("first"), 7u);
    EXPECT_EQ(&c, &reg.counter("first"));
}

TEST(Registry, MergeSemantics)
{
    Registry a, b;
    a.counter("c").add(1);
    b.counter("c").add(2);
    b.counter("only_b").add(9);
    a.gauge("g").set(1.0);
    b.gauge("g").set(5.0);
    a.timer("t").add(1.0);
    b.timer("t").add(3.0);
    a.histogram("h").add(2.0);
    b.histogram("h").add(2.0);

    a.merge(b);
    EXPECT_EQ(a.counterValue("c"), 3u);
    EXPECT_EQ(a.counterValue("only_b"), 9u);
    // Gauges are last-writer-wins.
    EXPECT_DOUBLE_EQ(a.gaugeValue("g"), 5.0);
    EXPECT_EQ(a.findTimer("t")->count(), 2u);
    EXPECT_DOUBLE_EQ(a.findTimer("t")->sum(), 4.0);
    EXPECT_EQ(a.findHistogram("h")->buckets().at(2), 2u);
}

TEST(Registry, MergeEmptyIsNoop)
{
    Registry a, empty;
    a.counter("c").add(1);
    a.merge(empty);
    EXPECT_EQ(a.counterValue("c"), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.counterValue("c"), 1u);
}

// --------------------------------------------------------------- Span

TEST(Span, RecordsIntoTimer)
{
    Registry reg;
    {
        Span s(&reg, "phase");
        EXPECT_EQ(s.path(), "phase");
        EXPECT_GE(s.elapsedSeconds(), 0.0);
    }
    const util::Summary *t = reg.findTimer("span.phase");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->count(), 1u);
    EXPECT_GE(t->sum(), 0.0);
}

TEST(Span, NestedPaths)
{
    Registry reg;
    {
        Span outer(&reg, "shrink");
        EXPECT_EQ(Span::current(), &outer);
        {
            Span inner(&reg, "pfi");
            EXPECT_EQ(inner.path(), "shrink.pfi");
            EXPECT_EQ(Span::current(), &inner);
        }
        EXPECT_EQ(Span::current(), &outer);
    }
    EXPECT_EQ(Span::current(), nullptr);
    EXPECT_NE(reg.findTimer("span.shrink"), nullptr);
    EXPECT_NE(reg.findTimer("span.shrink.pfi"), nullptr);
}

// A disabled span must not perturb the ambient parent chain: an
// enabled child opened under it attaches to the enabled grandparent.
TEST(Span, NullRegistryIsInert)
{
    Registry reg;
    {
        Span outer(&reg, "outer");
        {
            Span off(nullptr, "invisible");
            EXPECT_EQ(off.path(), "");
            EXPECT_DOUBLE_EQ(off.elapsedSeconds(), 0.0);
            EXPECT_EQ(Span::current(), &outer);
            Span child(&reg, "child");
            EXPECT_EQ(child.path(), "outer.child");
        }
    }
    EXPECT_TRUE(reg.findTimer("span.invisible") == nullptr);
    EXPECT_NE(reg.findTimer("span.outer.child"), nullptr);
}

// ----------------------------------------------------- ShardedRegistry

TEST(ShardedRegistry, OneShardPerThread)
{
    ShardedRegistry shards;
    Registry &main_shard = shards.local();
    main_shard.counter("n").add(1);
    std::thread other([&] { shards.local().counter("n").add(2); });
    other.join();
    ASSERT_EQ(shards.shards().size(), 2u);

    Registry merged;
    shards.mergeInto(merged);
    EXPECT_EQ(merged.counterValue("n"), 3u);
    // Repeated local() on the same thread returns the same shard.
    EXPECT_EQ(&shards.local(), &main_shard);
}

TEST(ShardedRegistry, ParallelForAttribution)
{
    constexpr size_t kTasks = 64;
    ShardedRegistry shards;
    util::parallelFor(kTasks, [&](size_t) {
        Registry &local = shards.local();
        local.counter("tasks").add(1);
        local.timer("task_s").add(0.001);
    });
    Registry merged;
    shards.mergeInto(merged);
    EXPECT_EQ(merged.counterValue("tasks"), kTasks);
    EXPECT_EQ(merged.findTimer("task_s")->count(), kTasks);

    // Per-worker busy time is attributable before the merge.
    double busy = 0.0;
    for (const Registry *shard : shards.shards()) {
        const util::Summary *t = shard->findTimer("task_s");
        if (t)
            busy += t->sum();
    }
    EXPECT_NEAR(busy, 0.001 * kTasks, 1e-9);
}

// -------------------------------------------------------------- Sinks

TEST(Sinks, JsonShape)
{
    Registry reg;
    reg.counter("lookup.hits").add(3);
    reg.gauge("session.hit_rate").set(0.75);
    reg.timer("span.shrink").add(1.25);
    reg.histogram("lookup.bytes_hist").add(0.5);
    reg.histogram("lookup.bytes_hist").add(100.0);

    std::string json = toJson(reg);
    EXPECT_NE(json.find("\"lookup.hits\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"session.hit_rate\": 0.75"),
              std::string::npos);
    EXPECT_NE(json.find("\"span.shrink\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
    // The underflow bucket serializes under its sentinel key 0; the
    // human-readable "<1" form is TableSink-only.
    EXPECT_NE(json.find("\"0\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"64\": 1"), std::string::npos);

    std::ostringstream os;
    JsonSink sink(os);
    sink.write(reg);
    EXPECT_EQ(os.str(), json);
}

TEST(Sinks, JsonEscapesAndNonFinite)
{
    Registry reg;
    reg.counter("weird \"name\"\n").add(1);
    reg.gauge("bad").set(std::numeric_limits<double>::quiet_NaN());
    std::string json = toJson(reg);
    EXPECT_NE(json.find("\\\"name\\\"\\n"), std::string::npos);
    // Non-finite values serialize as 0 so the output always parses.
    EXPECT_NE(json.find("\"bad\": 0"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(Sinks, EmptyRegistryJsonParses)
{
    Registry reg;
    std::string json = toJson(reg);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '\n');
}

TEST(Sinks, TableListsMetrics)
{
    Registry reg;
    reg.counter("decide.shortcircuit").add(42);
    reg.gauge("session.energy_j").set(3.5);
    std::ostringstream os;
    TableSink sink(os);
    sink.write(reg);
    std::string out = os.str();
    EXPECT_NE(out.find("decide.shortcircuit"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("session.energy_j"), std::string::npos);
}

TEST(Sinks, NullSinkDiscards)
{
    Registry reg;
    reg.counter("c").add(1);
    NullSink sink;
    sink.write(reg);  // Must not crash or print.
    EXPECT_EQ(reg.counterValue("c"), 1u);
}

// ------------------------------------------------- scheme telemetry

// Regression: decide.online_inserts must count actual overlay
// growth. Observing the same record twice (the second insert is
// deduplicated) or a record the frozen table already memoizes (the
// insert is skipped) must leave the counter unchanged.
TEST(SchemeTelemetry, OnlineInsertsCountOverlayGrowthOnly)
{
    auto game = games::makeGame("colorphun");
    core::SnipModel model;
    model.game = game->name();
    model.table =
        std::make_unique<core::MemoTable>(game->schema());
    model.table->setSelected(
        events::EventType::Touch,
        game->necessaryInputIds(events::EventType::Touch));
    // One record memoized by the deployed (frozen) table.
    util::Rng rng(8);
    events::EventObject frozen_ev =
        game->makeEvent(events::EventType::Touch, 0.0, rng);
    games::HandlerExecution frozen_truth = game->process(frozen_ev);
    model.table->insert(frozen_truth);

    Registry reg;
    core::SnipRuntimeConfig rcfg;
    rcfg.obs = &reg;
    core::SnipScheme s(model, rcfg);

    // A genuinely new observation grows the overlay: one insert.
    events::EventObject ev =
        game->makeEvent(events::EventType::Touch, 1.0, rng);
    games::HandlerExecution truth = game->process(ev);
    s.observe(truth);
    EXPECT_EQ(reg.counterValue("decide.online_inserts"), 1u);
    EXPECT_EQ(s.overlayEntries(), 1u);

    // Observing it again deduplicates: no growth, no count.
    s.observe(truth);
    EXPECT_EQ(reg.counterValue("decide.online_inserts"), 1u);
    EXPECT_EQ(s.overlayEntries(), 1u);

    // A record the frozen table holds is skipped entirely.
    s.observe(frozen_truth);
    EXPECT_EQ(reg.counterValue("decide.online_inserts"), 1u);
    EXPECT_EQ(s.overlayEntries(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace snip
