/**
 * @file
 * Tests for the trace layer: event recording, offline replay
 * fidelity (the emulator must reproduce the on-device execution
 * exactly), serialization round-trips, and profile statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/simulation.h"
#include "games/registry.h"
#include "trace/columnar_log.h"
#include "trace/field_stats.h"
#include "trace/recorder.h"
#include "trace/trace_log.h"
#include "util/logging.h"
#include "util/rng.h"

namespace snip {
namespace trace {
namespace {

/** A short recorded baseline session of the given game. */
core::SessionResult
record(const std::string &game_name, games::Game &game,
       double secs = 20.0)
{
    core::BaselineScheme baseline;
    core::SimulationConfig cfg;
    cfg.duration_s = secs;
    cfg.record_events = true;
    cfg.seed = 4242;
    (void)game_name;
    return core::runSession(game, baseline, cfg);
}

TEST(EventRecorderTest, CapturesEventsInOrder)
{
    EventRecorder rec("g");
    events::EventObject a, b;
    a.seq = 1;
    b.seq = 2;
    rec.onEvent(a);
    rec.onEvent(b);
    ASSERT_EQ(rec.size(), 2u);
    EXPECT_EQ(rec.trace().events[0].seq, 1u);
    EXPECT_EQ(rec.trace().events[1].seq, 2u);
    rec.clear();
    EXPECT_EQ(rec.size(), 0u);
}

TEST(ReplayerTest, ReplayMatchesLiveExecution)
{
    // The cloud replay must reproduce the on-device execution
    // record-for-record: same inputs, outputs, and costs.
    auto game = games::makeGame("colorphun");
    core::SessionResult res = record("colorphun", *game);
    ASSERT_GT(res.trace.events.size(), 20u);

    auto replica = games::makeGame("colorphun");
    Profile profile = Replayer::replay(res.trace, *replica);
    ASSERT_EQ(profile.records.size(), res.trace.events.size());

    // Re-replay gives identical records (determinism).
    auto replica2 = games::makeGame("colorphun");
    Profile again = Replayer::replay(res.trace, *replica2);
    ASSERT_EQ(again.records.size(), profile.records.size());
    for (size_t i = 0; i < profile.records.size(); ++i) {
        EXPECT_EQ(profile.records[i].inputs, again.records[i].inputs);
        EXPECT_EQ(profile.records[i].outputs,
                  again.records[i].outputs);
        EXPECT_EQ(profile.records[i].cpu_instructions,
                  again.records[i].cpu_instructions);
    }
}

TEST(ProfileTest, HelpersAndTruncation)
{
    auto game = games::makeGame("ab_evolution");
    core::SessionResult res = record("ab_evolution", *game);
    auto replica = games::makeGame("ab_evolution");
    Profile p = Replayer::replay(res.trace, *replica);

    EXPECT_GT(p.totalInstructions(), 0u);
    auto types = p.typesPresent();
    EXPECT_GE(types.size(), 2u);
    size_t sum = 0;
    for (auto t : types)
        sum += p.ofType(t).size();
    EXPECT_EQ(sum, p.records.size());

    Profile t10 = p.truncated(10);
    EXPECT_EQ(t10.records.size(), 10u);
    Profile huge = p.truncated(1u << 30);
    EXPECT_EQ(huge.records.size(), p.records.size());

    size_t before = p.records.size();
    p.append(t10);
    EXPECT_EQ(p.records.size(), before + 10);
}

TEST(TraceLogTest, EventTraceRoundTrip)
{
    auto game = games::makeGame("greenwall");
    core::SessionResult res = record("greenwall", *game, 10.0);

    util::ByteBuffer buf;
    encodeEventTrace(res.trace, buf);
    buf.rewind();
    EventTrace back;
    ASSERT_TRUE(decodeEventTrace(buf, &back).ok());
    EXPECT_EQ(back.game, res.trace.game);
    ASSERT_EQ(back.events.size(), res.trace.events.size());
    for (size_t i = 0; i < back.events.size(); ++i) {
        EXPECT_EQ(back.events[i].type, res.trace.events[i].type);
        EXPECT_EQ(back.events[i].seq, res.trace.events[i].seq);
        EXPECT_EQ(back.events[i].fields, res.trace.events[i].fields);
    }
}

TEST(TraceLogTest, ProfileRoundTrip)
{
    auto game = games::makeGame("greenwall");
    core::SessionResult res = record("greenwall", *game, 10.0);
    auto replica = games::makeGame("greenwall");
    Profile p = Replayer::replay(res.trace, *replica);

    util::ByteBuffer buf;
    encodeProfile(p, buf);
    buf.rewind();
    Profile back;
    ASSERT_TRUE(decodeProfile(buf, &back).ok());
    ASSERT_EQ(back.records.size(), p.records.size());
    for (size_t i = 0; i < p.records.size(); ++i) {
        EXPECT_EQ(back.records[i].inputs, p.records[i].inputs);
        EXPECT_EQ(back.records[i].outputs, p.records[i].outputs);
        EXPECT_EQ(back.records[i].useless, p.records[i].useless);
        EXPECT_EQ(back.records[i].cpu_instructions,
                  p.records[i].cpu_instructions);
        EXPECT_EQ(back.records[i].ip_calls.size(),
                  p.records[i].ip_calls.size());
    }
}

TEST(TraceLogTest, BadMagicReturnsError)
{
    util::ByteBuffer buf;
    buf.putU32(0xdeadbeef);
    buf.putU32(1);
    buf.rewind();
    EventTrace trace;
    util::Status st = decodeEventTrace(buf, &trace);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find("magic"), std::string::npos);
}

TEST(TraceLogTest, UnsupportedVersionReturnsError)
{
    auto game = games::makeGame("greenwall");
    core::SessionResult res = record("greenwall", *game, 5.0);
    util::ByteBuffer buf;
    encodeEventTrace(res.trace, buf);

    // Bump the version word (bytes 4..7) to an unknown value.
    util::ByteBuffer bumped;
    const auto &raw = buf.data();
    for (size_t i = 0; i < raw.size(); ++i)
        bumped.putU8(i == 4 ? raw[i] + 1 : raw[i]);
    EventTrace trace;
    util::Status st = decodeEventTrace(bumped, &trace);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find("version"), std::string::npos);
}

TEST(TraceLogTest, TruncatedBuffersReturnErrors)
{
    // Every strict prefix of a valid encoding must be rejected with
    // an error Status — never a panic/abort — for both formats.
    auto game = games::makeGame("greenwall");
    core::SessionResult res = record("greenwall", *game, 5.0);
    auto replica = games::makeGame("greenwall");
    Profile p = Replayer::replay(res.trace, *replica);

    util::ByteBuffer tbuf, pbuf;
    encodeEventTrace(res.trace, tbuf);
    encodeProfile(p, pbuf);

    for (const util::ByteBuffer *full : {&tbuf, &pbuf}) {
        ASSERT_GT(full->size(), 64u);
        for (size_t len = 0; len < full->size();
             len += 1 + len / 7) {
            util::ByteBuffer cut;
            cut.putBytes(full->data().data(), len);
            EventTrace trace;
            Profile profile;
            if (full == &tbuf)
                EXPECT_FALSE(decodeEventTrace(cut, &trace).ok())
                    << "prefix " << len;
            else
                EXPECT_FALSE(decodeProfile(cut, &profile).ok())
                    << "prefix " << len;
        }
    }
}

TEST(TraceLogTest, BitFlippedBuffersNeverAbort)
{
    // The trace format carries no checksum, so a flipped value byte
    // may decode to different content — but a flip must never crash
    // or abort, and flips in structure (counts, types) must come
    // back as clean errors.
    auto game = games::makeGame("colorphun");
    core::SessionResult res = record("colorphun", *game, 5.0);
    util::ByteBuffer buf;
    encodeEventTrace(res.trace, buf);

    for (size_t pos = 0; pos < buf.size(); pos += 1 + pos / 11) {
        for (uint8_t bit : {0, 3, 7}) {
            util::ByteBuffer flipped;
            flipped.putBytes(buf.data().data(), buf.size());
            const_cast<std::vector<uint8_t> &>(flipped.data())[pos] ^=
                static_cast<uint8_t>(1u << bit);
            EventTrace trace;
            util::Status st = decodeEventTrace(flipped, &trace);
            if (st.ok()) {
                EXPECT_EQ(trace.events.size(),
                          res.trace.events.size());
            }
        }
    }
}

TEST(TraceLogTest, GarbageCountDoesNotOverAllocate)
{
    // A corrupt event count in the header must be rejected by the
    // remaining-bytes bound instead of reserving gigabytes.
    util::ByteBuffer buf;
    buf.putU32(0x534e5045);  // event-trace magic
    buf.putU32(1);           // version
    buf.putString("g");
    buf.putU32(0xffffffffu);  // impossible event count
    EventTrace trace;
    EXPECT_FALSE(decodeEventTrace(buf, &trace).ok());
}

TEST(TraceLogTest, FileSaveLoadRoundTrip)
{
    util::ByteBuffer buf;
    buf.putString("snip test payload");
    std::string path = ::testing::TempDir() + "/snip_trace_test.bin";
    ASSERT_TRUE(saveBuffer(buf, path).ok());
    util::ByteBuffer loaded;
    ASSERT_TRUE(loadBuffer(path, &loaded).ok());
    EXPECT_EQ(loaded.data(), buf.data());
    std::remove(path.c_str());
}

TEST(TraceLogTest, FileErrorsReturnStatus)
{
    util::ByteBuffer buf;
    util::Status st =
        loadBuffer("/nonexistent/dir/snip.bin", &buf);
    EXPECT_FALSE(st.ok());
    buf.putU8(1);
    st = saveBuffer(buf, "/nonexistent/dir/snip.bin");
    EXPECT_FALSE(st.ok());
}

// ------------------------------------------------------- ColumnarLog

// The columnar encoding must round-trip an event trace losslessly —
// including timestamps, stored as raw double bits (the row format
// truncates them to ns).
TEST(ColumnarLogTest, EncodeAttachRoundTripLossless)
{
    auto game = games::makeGame("ab_evolution");
    core::SessionResult res = record("ab_evolution", *game, 15.0);
    ASSERT_GT(res.trace.events.size(), 50u);

    std::vector<uint8_t> bytes;
    ASSERT_TRUE(ColumnarLog::encode(res.trace, &bytes).ok());
    auto log = ColumnarLog::attach(bytes.data(), bytes.size(),
                                   nullptr);
    ASSERT_TRUE(log.ok()) << log.status().message();
    const ColumnarLog &cl = *log.value();
    EXPECT_EQ(cl.game(), res.trace.game);
    ASSERT_EQ(cl.eventCount(), res.trace.events.size());

    events::EventObject ev;
    for (size_t i = 0; i < cl.eventCount(); ++i) {
        cl.event(i, &ev);
        const events::EventObject &want = res.trace.events[i];
        EXPECT_EQ(ev.type, want.type) << i;
        EXPECT_EQ(ev.seq, want.seq) << i;
        EXPECT_EQ(ev.timestamp, want.timestamp) << i;  // bit-exact
        EXPECT_EQ(ev.fields, want.fields) << i;
    }

    EventTrace back;
    cl.toTrace(&back);
    EXPECT_EQ(back.game, res.trace.game);
    ASSERT_EQ(back.events.size(), res.trace.events.size());
}

// The converter path: row transport bytes -> columnar -> row bytes
// must preserve the trace at the decoded level (the row encoding
// itself truncates timestamps to ns, so compare decoded traces).
TEST(ColumnarLogTest, RowColumnarRowRoundTrip)
{
    auto game = games::makeGame("colorphun");
    core::SessionResult res = record("colorphun", *game, 10.0);

    util::ByteBuffer rows;
    encodeEventTrace(res.trace, rows);
    rows.rewind();
    EventTrace decoded;
    ASSERT_TRUE(decodeEventTrace(rows, &decoded).ok());

    std::vector<uint8_t> bytes;
    ASSERT_TRUE(ColumnarLog::encode(decoded, &bytes).ok());
    auto log = ColumnarLog::attach(bytes.data(), bytes.size(),
                                   nullptr);
    ASSERT_TRUE(log.ok()) << log.status().message();
    EventTrace back;
    log.value()->toTrace(&back);

    util::ByteBuffer rows2;
    encodeEventTrace(back, rows2);
    // Row bytes are identical: the columnar hop lost nothing the
    // row encoding can represent.
    EXPECT_EQ(rows2.data(), rows.data());
}

TEST(ColumnarLogTest, FileSaveOpenRoundTrip)
{
    auto game = games::makeGame("greenwall");
    core::SessionResult res = record("greenwall", *game, 10.0);
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(ColumnarLog::encode(res.trace, &bytes).ok());

    std::string path = ::testing::TempDir() + "/snip_columnar.snct";
    ASSERT_TRUE(ColumnarLog::save(bytes, path).ok());
    auto log = ColumnarLog::open(path);
    ASSERT_TRUE(log.ok()) << log.status().message();
    EXPECT_TRUE(log.value()->zeroCopy());  // mmap'd view
    EventTrace back;
    log.value()->toTrace(&back);
    EXPECT_EQ(back.game, res.trace.game);
    ASSERT_EQ(back.events.size(), res.trace.events.size());
    for (size_t i = 0; i < back.events.size(); ++i) {
        EXPECT_EQ(back.events[i].seq, res.trace.events[i].seq);
        EXPECT_EQ(back.events[i].timestamp,
                  res.trace.events[i].timestamp);
        EXPECT_EQ(back.events[i].fields, res.trace.events[i].fields);
    }
    std::remove(path.c_str());

    EXPECT_FALSE(ColumnarLog::open("/nonexistent/x.snct").ok());
}

// Truncations must always be rejected (total_size can't match); bit
// flips either fail validation or land in stored values, in which
// case every event must still decode safely (bounds hold).
TEST(ColumnarLogTest, CorruptionRejectedOrSafe)
{
    auto game = games::makeGame("colorphun");
    core::SessionResult res = record("colorphun", *game, 5.0);
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(ColumnarLog::encode(res.trace, &bytes).ok());
    const size_t n = bytes.size();

    util::Rng rng(0xc07a7);
    for (int i = 0; i < 64; ++i) {
        std::vector<uint8_t> mut = bytes;
        size_t len = n;
        if (rng.next() % 2 == 0) {
            len = rng.next() % n;  // truncate
        } else {
            size_t flips = 1 + rng.next() % 8;
            for (size_t f = 0; f < flips; ++f)
                mut[rng.next() % n] ^=
                    static_cast<uint8_t>(1u + rng.next() % 255);
        }
        auto log = ColumnarLog::attach(mut.data(), len, nullptr);
        if (len < n) {
            EXPECT_FALSE(log.ok()) << "truncation accepted: " << len;
            continue;
        }
        if (!log.ok())
            continue;  // structural validation caught the flip
        events::EventObject ev;
        for (size_t e = 0; e < log.value()->eventCount(); ++e)
            log.value()->event(e, &ev);
    }
}

// The same corruption discipline through the file path: every mut
// goes to disk and comes back through open()'s mmap'd attach (not
// the in-memory one), so the zero-copy decode validation and the
// mapping's cleanup on rejection are what's exercised — under asan
// a leaked or double-unmapped mapping fails the run.
TEST(ColumnarLogTest, MmapCorruptionRejectedCleanly)
{
    auto game = games::makeGame("colorphun");
    core::SessionResult res = record("colorphun", *game, 5.0);
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(ColumnarLog::encode(res.trace, &bytes).ok());
    const size_t n = bytes.size();
    std::string path = ::testing::TempDir() + "/snip_corrupt.snct";

    util::Rng rng(0x5c07);
    for (int i = 0; i < 32; ++i) {
        std::vector<uint8_t> mut = bytes;
        bool truncated = rng.next() % 2 == 0;
        if (truncated) {
            mut.resize(rng.next() % n);
        } else {
            size_t flips = 1 + rng.next() % 8;
            for (size_t f = 0; f < flips; ++f)
                mut[rng.next() % n] ^=
                    static_cast<uint8_t>(1u + rng.next() % 255);
        }
        ASSERT_TRUE(ColumnarLog::save(mut, path).ok());
        auto log = ColumnarLog::open(path);
        if (truncated) {
            // total_size can no longer match the buffer size.
            EXPECT_FALSE(log.ok()) << "truncation accepted";
            continue;
        }
        if (!log.ok())
            continue;  // structural validation caught the flip
        EXPECT_TRUE(log.value()->zeroCopy());
        events::EventObject ev;
        for (size_t e = 0; e < log.value()->eventCount(); ++e)
            log.value()->event(e, &ev);
    }

    // Degenerate on-disk shapes: empty file and header-only stub
    // must come back as clean errors, not crashes or leaks.
    ASSERT_TRUE(ColumnarLog::save({}, path).ok());
    EXPECT_FALSE(ColumnarLog::open(path).ok());
    std::vector<uint8_t> stub(bytes.begin(), bytes.begin() + 16);
    ASSERT_TRUE(ColumnarLog::save(stub, path).ok());
    EXPECT_FALSE(ColumnarLog::open(path).ok());
    std::remove(path.c_str());
}

// encode() must reject a trace whose per-type rows do not share one
// field-id set in one order (the columns would be ill-formed).
TEST(ColumnarLogTest, EncodeRejectsNonUniformFieldSets)
{
    auto game = games::makeGame("colorphun");
    core::SessionResult res = record("colorphun", *game, 5.0);
    ASSERT_GT(res.trace.events.size(), 1u);
    EventTrace bad = res.trace;
    // Find two events of the same type and corrupt one's field ids.
    bad.events[0].fields[0].id += 1000;
    bool same_type_exists = false;
    for (size_t i = 1; i < bad.events.size(); ++i)
        if (bad.events[i].type == bad.events[0].type)
            same_type_exists = true;
    if (same_type_exists) {
        std::vector<uint8_t> bytes;
        EXPECT_FALSE(ColumnarLog::encode(bad, &bytes).ok());
    }
}

TEST(FieldStatisticsTest, CategoriesAccounted)
{
    auto game = games::makeGame("ab_evolution");
    core::SessionResult res = record("ab_evolution", *game, 30.0);
    auto replica = games::makeGame("ab_evolution");
    Profile p = Replayer::replay(res.trace, *replica);

    FieldStatistics stats(p, game->schema());
    EXPECT_EQ(stats.recordCount(), p.records.size());
    EXPECT_NEAR(stats.inEventPresence(), 1.0, 1e-9);
    EXPECT_GT(stats.inHistoryPresence(), 0.5);
    EXPECT_GT(stats.uselessFraction(), 0.05);
    EXPECT_LT(stats.uselessFraction(), 0.7);
    // In.Event sizes must be within the paper's 2-640 B envelope.
    EXPECT_GE(stats.inEventSizes().minValue(), 2.0);
    EXPECT_LE(stats.inEventSizes().maxValue(), 640.0);
}

TEST(FieldStatisticsTest, RecordBytesSplitsByCategory)
{
    auto game = games::makeGame("colorphun");
    core::SessionResult res = record("colorphun", *game, 10.0);
    auto replica = games::makeGame("colorphun");
    Profile p = Replayer::replay(res.trace, *replica);
    ASSERT_FALSE(p.records.empty());

    for (const auto &rec : p.records) {
        RecordBytes rb = recordBytes(rec, game->schema());
        EXPECT_EQ(rb.inputs(),
                  game->schema().bytesOf(rec.inputs));
        EXPECT_EQ(rb.outputs(),
                  game->schema().bytesOf(rec.outputs));
        EXPECT_EQ(rb.in_event,
                  events::eventObjectBytes(rec.type));
    }
}

TEST(DynamicEnergy, MonotoneInWork)
{
    soc::EnergyModel m = soc::EnergyModel::snapdragon821();
    games::HandlerExecution small, big;
    small.cpu_instructions = 1'000'000;
    small.memory_bytes = 1000;
    big = small;
    big.cpu_instructions = 10'000'000;
    big.ip_calls.push_back({soc::IpKind::Gpu, 5.0});
    EXPECT_GT(dynamicEnergyOf(big, m), dynamicEnergyOf(small, m));
    EXPECT_GT(dynamicEnergyOf(small, m), 0.0);
}

// --------------------------------------------- Training sections (v2)

/** Replay a short session into a profile. */
Profile
shortProfile(const std::string &game_name, double secs = 20.0)
{
    auto game = games::makeGame(game_name);
    core::SessionResult res = record(game_name, *game, secs);
    return Replayer::replay(res.trace, *game);
}

// encodeTraining must lay down, per event type, exactly the
// union-of-locations matrix the ML layer trains on: ascending field
// ids, column-major values with explicit absent markers, output-
// signature labels, max(1, instructions) weights.
TEST(TrainingSectionTest, EncodeAttachRoundTrip)
{
    Profile profile = shortProfile("ab_evolution");
    ASSERT_GT(profile.records.size(), 100u);

    std::vector<uint8_t> bytes;
    ASSERT_TRUE(ColumnarLog::encodeTraining(profile, &bytes).ok());
    auto log = ColumnarLog::attach(bytes.data(), bytes.size(),
                                   nullptr);
    ASSERT_TRUE(log.ok()) << log.status().message();
    const ColumnarLog &cl = *log.value();
    EXPECT_EQ(cl.game(), profile.game);
    EXPECT_EQ(cl.eventCount(), 0u);  // training-only trace

    std::vector<events::EventType> ttypes = cl.trainingTypes();
    ASSERT_EQ(ttypes.size(), profile.typesPresent().size());

    for (events::EventType t : ttypes) {
        const ColumnarLog::TrainingCols *tc = cl.training(t);
        ASSERT_NE(tc, nullptr);
        auto recs = profile.ofType(t);
        ASSERT_EQ(tc->nrows, recs.size());
        for (uint32_t f = 1; f < tc->nfeat; ++f)
            EXPECT_LT(tc->feat_ids[f - 1], tc->feat_ids[f]);
        for (uint32_t o = 1; o < tc->nout; ++o)
            EXPECT_LT(tc->out_ids[o - 1], tc->out_ids[o]);
        for (size_t r = 0; r < recs.size(); ++r) {
            EXPECT_EQ(tc->labels[r],
                      events::hashFields(recs[r]->outputs));
            EXPECT_EQ(tc->weights[r],
                      std::max<uint64_t>(
                          1, recs[r]->cpu_instructions));
            // Every recorded input lands in its column; columns of
            // unread locations carry the absent marker.
            for (uint32_t f = 0; f < tc->nfeat; ++f) {
                uint64_t got = tc->feat_cols[f * tc->nrows + r];
                uint64_t want = kTrainingAbsent;
                for (const auto &fv : recs[r]->inputs)
                    if (fv.id == tc->feat_ids[f])
                        want = fv.value;
                ASSERT_EQ(got, want)
                    << "type " << static_cast<int>(t) << " row "
                    << r << " feat " << f;
            }
        }
    }
}

// Training payloads are CRC-chained per column: truncation is
// always rejected, and — unlike the event arrays, where a flip can
// land in a stored value — any bit flip below the directory level
// must be rejected too. Flips that do slip through (header/name
// bytes) must still leave every column walk in bounds under asan.
TEST(TrainingSectionTest, CorruptionFuzzRejectedOrSafe)
{
    Profile profile = shortProfile("colorphun", 10.0);
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(ColumnarLog::encodeTraining(profile, &bytes).ok());
    const size_t n = bytes.size();
    std::string path = ::testing::TempDir() + "/snip_train.snct";

    int iters = 48;
    if (const char *env = std::getenv("SNIP_FUZZ_ITERS"))
        iters = std::atoi(env);
    util::Rng rng(0x7a41);
    for (int i = 0; i < iters; ++i) {
        std::vector<uint8_t> mut = bytes;
        bool truncated = rng.next() % 2 == 0;
        if (truncated) {
            mut.resize(rng.next() % n);
        } else {
            size_t flips = 1 + rng.next() % 8;
            for (size_t f = 0; f < flips; ++f)
                mut[rng.next() % n] ^=
                    static_cast<uint8_t>(1u + rng.next() % 255);
        }
        // Through the file path: open() attaches the mmap'd view,
        // so the streaming CRC verify (with its residency drops) is
        // what accepts or rejects.
        ASSERT_TRUE(ColumnarLog::save(mut, path).ok());
        auto log = ColumnarLog::open(path);
        if (truncated) {
            EXPECT_FALSE(log.ok()) << "truncation accepted";
            continue;
        }
        if (!log.ok())
            continue;
        for (events::EventType t : log.value()->trainingTypes()) {
            const auto *tc = log.value()->training(t);
            if (tc->nrows == 0)
                continue;
            uint64_t sink = 0;
            for (uint32_t f = 0; f < tc->nfeat; ++f)
                sink ^= tc->feat_cols[f * tc->nrows];
            for (uint64_t r = 0; r < tc->nrows; ++r)
                sink ^= tc->labels[r] + tc->weights[r];
            (void)sink;
        }
    }
    std::remove(path.c_str());
}

// Flipping a single bit inside a LABEL column must be caught by the
// section CRC (the targeted version of the fuzz above: labels sit
// deep in the payload, past the structural checks).
TEST(TrainingSectionTest, LabelColumnBitFlipRejected)
{
    Profile profile = shortProfile("colorphun", 10.0);
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(ColumnarLog::encodeTraining(profile, &bytes).ok());
    auto ok_log = ColumnarLog::attach(bytes.data(), bytes.size(),
                                      nullptr);
    ASSERT_TRUE(ok_log.ok());
    auto ttypes = ok_log.value()->trainingTypes();
    ASSERT_FALSE(ttypes.empty());
    const auto *tc = ok_log.value()->training(ttypes[0]);
    size_t label_off = static_cast<size_t>(
        reinterpret_cast<const uint8_t *>(tc->labels) -
        bytes.data());

    for (uint64_t r : {uint64_t{0}, tc->nrows / 2, tc->nrows - 1}) {
        std::vector<uint8_t> mut = bytes;
        mut[label_off + r * 8 + 3] ^= 0x10;
        auto log = ColumnarLog::attach(mut.data(), mut.size(),
                                       nullptr);
        EXPECT_FALSE(log.ok()) << "label flip at row " << r;
        if (!log.ok())
            EXPECT_NE(log.status().message().find("crc"),
                      std::string::npos)
                << log.status().message();
    }
}

// The streaming writer must produce byte-for-byte the section
// encodeTraining lays down for the same rows — same offsets, same
// values, same chained CRC — so converted and generated traces are
// interchangeable.
TEST(TrainingWriterTest, MatchesEncodeTraining)
{
    Profile profile = shortProfile("colorphun", 10.0);
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(ColumnarLog::encodeTraining(profile, &bytes).ok());
    auto ref = ColumnarLog::attach(bytes.data(), bytes.size(),
                                   nullptr);
    ASSERT_TRUE(ref.ok());
    auto ttypes = ref.value()->trainingTypes();
    ASSERT_FALSE(ttypes.empty());
    events::EventType t = ttypes[0];
    const auto *rc = ref.value()->training(t);

    std::vector<uint32_t> fids(rc->feat_ids,
                               rc->feat_ids + rc->nfeat);
    std::vector<uint32_t> oids(rc->out_ids, rc->out_ids + rc->nout);
    std::string path = ::testing::TempDir() + "/snip_writer.snct";
    TrainingWriter w;
    ASSERT_TRUE(w.create(path, profile.game, t, fids, oids,
                         rc->nrows)
                    .ok());
    std::vector<uint64_t> feat(rc->nfeat), outv(rc->nout);
    for (uint64_t r = 0; r < rc->nrows; ++r) {
        for (uint32_t f = 0; f < rc->nfeat; ++f)
            feat[f] = rc->feat_cols[f * rc->nrows + r];
        for (uint32_t o = 0; o < rc->nout; ++o)
            outv[o] = rc->out_cols[o * rc->nrows + r];
        ASSERT_TRUE(w.addRow(feat.data(), rc->labels[r],
                             rc->weights[r], outv.data())
                        .ok());
    }
    ASSERT_TRUE(w.finish().ok());

    auto got = ColumnarLog::open(path);
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(got.value()->game(), profile.game);
    const auto *gc = got.value()->training(t);
    ASSERT_NE(gc, nullptr);
    ASSERT_EQ(gc->nrows, rc->nrows);
    ASSERT_EQ(gc->nfeat, rc->nfeat);
    ASSERT_EQ(gc->nout, rc->nout);
    EXPECT_EQ(0, std::memcmp(gc->feat_cols, rc->feat_cols,
                             rc->nfeat * rc->nrows * 8));
    EXPECT_EQ(0, std::memcmp(gc->labels, rc->labels, rc->nrows * 8));
    EXPECT_EQ(0,
              std::memcmp(gc->weights, rc->weights, rc->nrows * 8));
    EXPECT_EQ(0, std::memcmp(gc->out_cols, rc->out_cols,
                             rc->nout * rc->nrows * 8));
    std::remove(path.c_str());
}

// Misuse must come back as Status, and an unfinished file must be
// rejected at attach (its section CRC is still the 0 placeholder).
TEST(TrainingWriterTest, RejectsMisuseAndUnfinishedFiles)
{
    std::string path = ::testing::TempDir() + "/snip_writer2.snct";
    std::vector<uint32_t> bad_ids = {3, 1};  // not ascending
    TrainingWriter w0;
    EXPECT_FALSE(w0.create(path, "g", events::EventType::Touch,
                           bad_ids, {}, 4)
                     .ok());

    std::vector<uint32_t> fids = {0, 2};
    std::vector<uint32_t> oids = {5};
    TrainingWriter w;
    ASSERT_TRUE(w.create(path, "g", events::EventType::Touch, fids,
                         oids, 3)
                    .ok());
    uint64_t feat[2] = {7, 9}, outv[1] = {1};
    EXPECT_FALSE(w.addRow(feat, 11, 0, outv).ok());  // zero weight
    ASSERT_TRUE(w.addRow(feat, 11, 1, outv).ok());
    EXPECT_FALSE(w.finish().ok());  // 1 of 3 declared rows

    // Partially written file on disk: must not attach.
    auto log = ColumnarLog::open(path);
    EXPECT_FALSE(log.ok());
    std::remove(path.c_str());
}

}  // namespace
}  // namespace trace
}  // namespace snip
