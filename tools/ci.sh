#!/usr/bin/env bash
# CI driver: build + test the default config, build + test the
# asan/ubsan config, run the TSan smoke of the shared-const
# concurrent-lookup contract the parallel session runner relies on,
# then fuzz the OTA model codec with corrupt packages under asan
# (truncations and random bit flips must be rejected cleanly — no
# crashes, no sanitizer reports).
#
# Usage: tools/ci.sh [jobs]   (jobs defaults to nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> default build + ctest"
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

echo "==> asan/ubsan build + ctest"
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$JOBS"
ctest --preset asan-ubsan -j "$JOBS"

echo "==> tsan smoke (concurrent const-table lookups)"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS" --target parallel_test
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/parallel_test \
    --gtest_filter='ParallelRunnerTest.ConcurrentLookupsOnSharedConstTable:ParallelRunnerTest.RunSessionsMatchesSerialBitwise'

echo "==> corruption fuzz smoke (OTA model codec, asan)"
SNIP_FUZZ_ITERS=512 \
    ./build-asan/tests/model_codec_test \
    --gtest_filter='ModelCodec*Fuzz*'

echo "==> all green"
