#!/usr/bin/env bash
# CI driver: build + test the default config, run the micro_train
# Shrink-phase smoke (twice — the selection/model digests must match
# across runs, and the binary itself exits non-zero on any broken
# determinism/zero-alloc contract), build + test the asan/ubsan
# config, run the TSan smokes of the shared-const concurrency
# contracts (parallel session runner lookups + parallel training/PFI
# on a shared const forest, including micro_train itself), then fuzz
# the OTA model codec with corrupt packages under asan (truncations
# and random bit flips must be rejected cleanly — no crashes, no
# sanitizer reports).
#
# Usage: tools/ci.sh [jobs]   (jobs defaults to nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> default build + ctest"
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

echo "==> micro_train smoke (Shrink-phase contracts, two runs)"
./build/bench/micro_train --quick --out build/micro_train_a.json \
    >/dev/null
./build/bench/micro_train --quick --out build/micro_train_b.json \
    >/dev/null
DIGESTS_A=$(grep -o '"digest": "[^"]*"' build/micro_train_a.json)
DIGESTS_B=$(grep -o '"digest": "[^"]*"' build/micro_train_b.json)
if [ -z "$DIGESTS_A" ] || [ "$DIGESTS_A" != "$DIGESTS_B" ]; then
    echo "micro_train: selection/model digests differ across runs" >&2
    exit 1
fi

echo "==> asan/ubsan build + ctest"
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$JOBS"
ctest --preset asan-ubsan -j "$JOBS"

echo "==> tsan smoke (concurrent lookups + parallel Shrink phase)"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS" --target parallel_test \
    --target micro_train
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/parallel_test \
    --gtest_filter='ParallelRunnerTest.ConcurrentLookupsOnSharedConstTable:ParallelRunnerTest.RunSessionsMatchesSerialBitwise:ShrinkParallelTest.*'
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/bench/micro_train --quick --profile-s 10 --trees 8 \
    --threads 4 --out build-tsan/micro_train_tsan.json >/dev/null

echo "==> corruption fuzz smoke (OTA model codec, asan)"
SNIP_FUZZ_ITERS=512 \
    ./build-asan/tests/model_codec_test \
    --gtest_filter='ModelCodec*Fuzz*'

echo "==> all green"
