#!/usr/bin/env bash
# CI driver: build + test the default config, run the micro_train
# Shrink-phase smoke (twice — the selection/model digests must match
# across runs, and the binary itself exits non-zero on any broken
# determinism/zero-alloc contract), validate the snip::obs telemetry
# export (fig11 --obs-json must parse and carry the hit-rate /
# erroneous-field-rate / per-Shrink-phase-timing signals), run the
# out-of-core micro_train stage (2M synthetic rows trained through
# the mmap'd SNCT view under a hard RSS cap, with the forest
# fingerprint required identical across two block geometries), build +
# test the asan/ubsan config (which reruns the obs, Log2Histogram,
# and EmpiricalCdf regression tests under sanitizers), run the TSan
# smokes of the shared-const concurrency contracts (parallel session
# runner lookups + parallel training/PFI on a shared const forest +
# lazily-sorted EmpiricalCdf reads + ShardedRegistry attribution,
# including micro_train itself), run the micro_lookup hot-path smoke
# (the binary exits non-zero if any lookup thread allocated in its
# timed loop or the frozen and mutable layouts disagree on a single
# decision; the JSON is additionally checked for zero allocs_per_iter
# at every thread count of both lookup benchmarks and the batched
# lookup benchmark must be present with zero allocs), then fuzz the
# OTA model codec and the frozen "SNPF" arena with corrupt packages
# under asan (truncations and random bit flips must be rejected
# cleanly — no crashes, no sanitizer reports, including the mmap'd
# SNCT attach path), and finally replay a 10k-event stream through
# decideBatch/lookupBatch under asan asserting bitwise-identical
# decisions against the scalar path. The pipelined session runtime
# gets three stages of its own: the sequential-vs---pipeline bitwise
# equivalence replay under asan, the fig11 --pipeline --obs-json
# export check (per-stage occupancy/items/queue-depth must be
# present and consistent), and the pipeline TSan smokes. The fleet
# OTA backend gets three more: the fleet_sim --quick epoch push
# (delta payload must undercut the full baseline, sharded
# aggregation must stay bitwise-identical to serial, and the
# per-cohort staleness report must be present and sane), the SNPD
# patch corruption fuzz under asan (every real mutation of a patch
# must be rejected and the device receive path must still converge
# on the published head via full-fetch fallback), and the TSan
# sharded-merge equivalence smoke.
#
# Usage: tools/ci.sh [jobs]   (jobs defaults to nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> default build + ctest"
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

echo "==> micro_train smoke (Shrink-phase contracts, two runs)"
./build/bench/micro_train --quick --out build/micro_train_a.json \
    >/dev/null
./build/bench/micro_train --quick --out build/micro_train_b.json \
    >/dev/null
DIGESTS_A=$(grep -o '"digest": "[^"]*"' build/micro_train_a.json)
DIGESTS_B=$(grep -o '"digest": "[^"]*"' build/micro_train_b.json)
if [ -z "$DIGESTS_A" ] || [ "$DIGESTS_A" != "$DIGESTS_B" ]; then
    echo "micro_train: selection/model digests differ across runs" >&2
    exit 1
fi

echo "==> out-of-core micro_train (bounded RSS + block-size invariance)"
# 2M synthetic rows trained through the mmap'd SNCT view under a hard
# in-binary RSS cap (micro_train exits non-zero if VmHWM exceeds it),
# at two block geometries — the forest fingerprints must agree.
./build/bench/micro_train --quick --rows 2000000 --block-rows 4096 \
    --rss-budget-mb 64 --rss-cap-mb 512 \
    --out build/micro_train_oo_a.json >/dev/null
./build/bench/micro_train --quick --rows 2000000 --block-rows 512 \
    --rss-budget-mb 64 --rss-cap-mb 512 \
    --out build/micro_train_oo_b.json >/dev/null
OO_A=$(grep -o '"fingerprint": "[^"]*"' build/micro_train_oo_a.json)
OO_B=$(grep -o '"fingerprint": "[^"]*"' build/micro_train_oo_b.json)
if [ -z "$OO_A" ] || [ "$OO_A" != "$OO_B" ]; then
    echo "micro_train: out-of-core fingerprints differ across" \
         "block sizes" >&2
    exit 1
fi

echo "==> obs telemetry export smoke (fig11 --obs-json)"
./build/bench/fig11_schemes --quick --obs-json build/fig11_obs.json \
    >/dev/null
python3 - <<'EOF'
import json, sys

with open('build/fig11_obs.json') as f:
    d = json.load(f)

missing = []
for section, key in [
    ('gauges', 'session.hit_rate'),
    ('gauges', 'session.error_field_rate'),
    ('counters', 'lookup.hits'),
    ('counters', 'lookup.misses'),
    ('counters', 'lookup.bytes'),
    ('counters', 'decide.err.shortcircuits'),
    ('timers', 'span.shrink'),
    ('timers', 'span.shrink.select'),
    ('timers', 'span.shrink.select.train'),
    ('timers', 'span.shrink.select.pfi'),
]:
    if key not in d.get(section, {}):
        missing.append(f'{section}/{key}')
if missing:
    sys.exit('fig11 --obs-json missing: ' + ', '.join(missing))

rate = d['gauges']['session.hit_rate']
if not 0.0 <= rate <= 1.0:
    sys.exit(f'session.hit_rate out of range: {rate}')
if d['timers']['span.shrink']['sum_s'] <= 0.0:
    sys.exit('span.shrink recorded no wall time')
EOF

echo "==> micro_lookup smoke (hot-path zero-alloc + frozen equivalence)"
( cd build && ./bench/micro_lookup --pipeline \
    --benchmark_min_time=0.05s \
    --benchmark_out=micro_lookup_ci.json \
    --benchmark_out_format=json >/dev/null )
python3 - <<'EOF'
import json, sys

with open('build/micro_lookup_ci.json') as f:
    d = json.load(f)

lookups = [b for b in d['benchmarks']
           if 'TableLookup' in b['name']]
if not any('BM_FrozenTableLookup' in b['name'] for b in lookups):
    sys.exit('micro_lookup: BM_FrozenTableLookup missing from JSON')
if not any('BM_MemoTableLookup' in b['name'] for b in lookups):
    sys.exit('micro_lookup: BM_MemoTableLookup missing from JSON')
if not any('BM_FrozenTableLookupBatch' in b['name'] for b in lookups):
    sys.exit('micro_lookup: BM_FrozenTableLookupBatch missing from JSON')
bad = [(b['name'], b['allocs_per_iter']) for b in lookups
       if b.get('allocs_per_iter', 0) != 0]
if bad:
    sys.exit('micro_lookup: nonzero allocs_per_iter: %r' % bad)
EOF

echo "==> fleet OTA smoke (fleet_sim --quick epoch push)"
./build/bench/fleet_sim --quick --out build/fleet_sim_ci.json \
    >/dev/null
python3 - <<'EOF'
import json, sys

with open('build/fleet_sim_ci.json') as f:
    d = json.load(f)

missing = [k for k in (
    'ota_full_bytes', 'ota_delta_bytes', 'delta_ratio',
    'delta_beats_full', 'fallbacks', 'staleness_skew',
    'sharded_identical', 'agg_serial_s', 'agg_sharded_s',
    'cohorts') if k not in d]
if missing:
    sys.exit('fleet_sim json missing: ' + ', '.join(missing))
if not d['delta_beats_full']:
    sys.exit('fleet_sim: delta OTA payload does not beat the '
             'full-package baseline')
if not d['sharded_identical']:
    sys.exit('fleet_sim: sharded aggregation diverged from serial')
for c in d['cohorts']:
    for k in ('name', 'devices', 'versions_behind', 'patch_bytes',
              'full_bytes', 'delta_bytes', 'used_delta',
              'stale_hit_rate'):
        if k not in c:
            sys.exit(f'fleet_sim cohort missing field: {k}')
    if not 0.0 <= c['stale_hit_rate'] <= 1.0:
        sys.exit('fleet_sim: stale_hit_rate out of range: %r'
                 % c['stale_hit_rate'])
EOF

echo "==> asan/ubsan build + ctest"
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$JOBS"
ctest --preset asan-ubsan -j "$JOBS"

echo "==> pipeline bitwise-equivalence replay (sequential vs --pipeline, asan)"
./build-asan/tests/parallel_test \
    --gtest_filter='PipelineTest.MatchesSequentialBitwise:PipelineTest.DeterminismFuzz:PipelineTest.BaselineSchemeMatchesSequential'

echo "==> pipeline obs export smoke (fig11 --pipeline --obs-json)"
./build/bench/fig11_schemes --quick --pipeline \
    --obs-json build/fig11_obs_pipeline.json >/dev/null
python3 - <<'EOF'
import json, sys

with open('build/fig11_obs_pipeline.json') as f:
    d = json.load(f)

missing = []
for stage in ('gen', 'decide', 'exec'):
    for section, key in [
        ('gauges', f'pipeline.stage.{stage}.occupancy'),
        ('counters', f'pipeline.stage.{stage}.items'),
        ('counters', f'pipeline.stage.{stage}.blocked'),
        ('counters', f'pipeline.stage.{stage}.deadline_misses'),
        ('histograms', f'pipeline.stage.{stage}.queue_depth'),
    ]:
        if key not in d.get(section, {}):
            missing.append(f'{section}/{key}')
if missing:
    sys.exit('fig11 --pipeline --obs-json missing: ' +
             ', '.join(missing))
for stage in ('gen', 'exec'):
    occ = d['gauges'][f'pipeline.stage.{stage}.occupancy']
    if occ <= 0.0:
        sys.exit(f'pipeline.stage.{stage}.occupancy not positive')
if (d['counters']['pipeline.stage.gen.items'] !=
        d['counters']['pipeline.stage.exec.items']):
    sys.exit('pipeline: gen/exec item counts disagree')
EOF

echo "==> tsan smoke (concurrent lookups + parallel Shrink phase + pipeline)"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS" --target parallel_test \
    --target obs_test --target ml_test --target micro_train \
    --target fleet_test
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/ml_test \
    --gtest_filter='ChunkedDatasetTest.ThreadInvarianceOnSharedView'
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/parallel_test \
    --gtest_filter='ParallelRunnerTest.ConcurrentLookupsOnSharedConstTable:ParallelRunnerTest.ConcurrentLookupsOnSharedConstFrozenTable:ParallelRunnerTest.ConcurrentBatchLookupsOnSharedConstFrozenTable:ParallelRunnerTest.RunSessionsMatchesSerialBitwise:ShrinkParallelTest.*:PipelineTest.MatchesSequentialBitwise:PipelineTest.ConcurrentPipelinedSessionsOnSharedFrozenTable'
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/obs_test \
    --gtest_filter='ShardedRegistry.*'
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/bench/micro_train --quick --profile-s 10 --trees 8 \
    --threads 4 --out build-tsan/micro_train_tsan.json >/dev/null

echo "==> tsan sharded-merge equivalence (fleet aggregation)"
TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/fleet_test \
    --gtest_filter='FleetAggregateTest.*'

echo "==> task pool (tsan parallel_test @ 8 threads + steady-state spawn check)"
# The whole parallel suite — pool internals, nested submission,
# concurrent external callers, leased pipeline workers — racing on
# an 8-way shared pool under tsan.
SNIP_THREADS=8 TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/parallel_test
# Zero steady-state respawns: across a 5-epoch continuous-learning
# run every epoch's Shrink/PFI/session parallelism must reuse the
# same resident workers, so the lifetime spawn total cannot exceed
# the resident pool size.
./build/bench/fig12_continuous_learning --quick --epochs 5 \
    --threads 4 --obs-json build/fig12_obs_pool.json >/dev/null
python3 - <<'EOF'
import json, sys

with open('build/fig12_obs_pool.json') as f:
    d = json.load(f)

g = d.get('gauges', {})
for k in ('pool.threads_spawned', 'pool.size', 'pool.tasks',
          'pool.steals', 'pool.overflow', 'pool.park_ns'):
    if k not in g:
        sys.exit('fig12 --obs-json missing gauge: ' + k)
spawned, size = g['pool.threads_spawned'], g['pool.size']
if spawned > size:
    sys.exit('pool: threads_spawned %r > pool size %r — workers '
             'were respawned across ContinuousLearner epochs'
             % (spawned, size))
if g['pool.tasks'] <= 0:
    sys.exit('pool: no tasks executed despite --threads 4')
EOF

echo "==> corruption fuzz smoke (OTA model codec + SNPF arena, asan)"
SNIP_FUZZ_ITERS=512 \
    ./build-asan/tests/model_codec_test \
    --gtest_filter='ModelCodec*Fuzz*'
SNIP_FUZZ_ITERS=512 \
    ./build-asan/tests/core_test \
    --gtest_filter='*FrozenArenaCorruptionFuzz*'
./build-asan/tests/trace_test \
    --gtest_filter='ColumnarLogTest.MmapCorruptionRejectedCleanly:ColumnarLogTest.CorruptionRejectedOrSafe'
SNIP_FUZZ_ITERS=256 \
    ./build-asan/tests/trace_test \
    --gtest_filter='TrainingSectionTest.CorruptionFuzzRejectedOrSafe:TrainingSectionTest.LabelColumnBitFlipRejected:TrainingWriterTest.RejectsMisuseAndUnfinishedFiles'
./build-asan/tests/ml_test \
    --gtest_filter='ChunkedDatasetTest.BlockSizeInvarianceFuzz:ChunkedDatasetTest.RejectsForeignSchema'

echo "==> SNPD patch corruption fuzz (delta OTA receive path, asan)"
SNIP_FUZZ_ITERS=512 \
    ./build-asan/tests/fleet_test \
    --gtest_filter='Fleet*Fuzz*'

echo "==> batch-equivalence fuzz (decideBatch/lookupBatch vs scalar, asan)"
./build-asan/tests/core_test \
    --gtest_filter='Schemes.DecideBatchMatchesScalarFuzz:MemoTableTest.FrozenLookupBatchMatchesScalar'

echo "==> all green"
