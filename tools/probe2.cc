#include <cstdio>
#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "trace/recorder.h"
#include "util/bytes.h"

using namespace snip;

int main(int argc, char **argv) {
    double profile_s = argc > 1 ? atof(argv[1]) : 120.0;
    double eval_s = argc > 2 ? atof(argv[2]) : 90.0;
    for (const auto &name : games::allGameNames()) {
        auto game = games::makeGame(name);
        // 1. profile session (baseline, recorded)
        core::BaselineScheme base;
        core::SimulationConfig pcfg; pcfg.duration_s = profile_s; pcfg.record_events = true; pcfg.seed = 77;
        auto prof_res = core::runSession(*game, base, pcfg);
        auto replica = games::makeGame(name);
        auto profile = trace::Replayer::replay(prof_res.trace, *replica);
        // 2. build model (with the game's recommended Option-1 overrides)
        core::SnipConfig scfg0;
        scfg0.overrides.force_keep = game->params().recommended_overrides;
        auto model = core::buildSnipModel(profile, *game, scfg0);
        uint64_t selbytes = 0; int ntypes = 0;
        for (auto &t : model.types) { selbytes += t.selection.selected_bytes; ntypes++; }
        // 3. eval sessions
        core::SimulationConfig ecfg; ecfg.duration_s = eval_s; ecfg.seed = 991;
        double eb = 0;
        std::printf("%-14s seltypes=%d selbytes=%llu tbl=%s\n", name.c_str(), ntypes,
                    (unsigned long long)selbytes, util::formatSize((double)model.table->totalBytes()).c_str());
        for (auto kind : {core::SchemeKind::Baseline, core::SchemeKind::MaxCpu, core::SchemeKind::MaxIp,
                          core::SchemeKind::Snip, core::SchemeKind::NoOverheads}) {
            // fresh table copy per run? table is shared & mutated (hits/online fill). Rebuild for snip/noover.
            auto m2 = core::buildSnipModel(profile, *game, scfg0);
            auto scheme = core::makeScheme(kind, &m2);
            auto res = core::runSession(*game, *scheme, ecfg);
            double e = res.report.total();
            if (kind == core::SchemeKind::Baseline) eb = e;
            std::printf("  %-12s E=%7.1fJ save=%5.1f%% cov=%5.1f%% covIP=%5.1f%% sc=%llu/%llu errSC=%llu fieldErr=%.3f%% lookupE=%.2fJ cand/ev=%.0f bytes/ev=%s\n",
                core::schemeName(kind), e, 100*(1-e/eb), 100*res.stats.coverageInstr(),
                100*res.stats.coverageIpWork(),
                (unsigned long long)res.stats.shortcircuits, (unsigned long long)res.stats.events,
                (unsigned long long)res.stats.erroneous_shortcircuits,
                100*res.stats.errorFieldRate(), res.stats.lookup_energy_j,
                res.stats.events? (double)res.stats.lookup_candidates/res.stats.events : 0,
                util::formatSize(res.stats.events? (double)res.stats.lookup_bytes/res.stats.events:0).c_str());
        }
    }
    return 0;
}
