#include <cstdio>
#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "trace/recorder.h"
#include "trace/field_stats.h"
#include "util/units.h"

using namespace snip;

int main() {
    auto model = soc::EnergyModel::snapdragon821();
    std::printf("idle power: %s -> %.1f h\n",
        util::formatPower(core::idlePhonePower(model)).c_str(),
        util::hoursToDrain(util::batteryCapacityJoules(3450), core::idlePhonePower(model)));
    for (const auto &name : games::allGameNames()) {
        auto game = games::makeGame(name);
        core::BaselineScheme base;
        core::SimulationConfig cfg;
        cfg.duration_s = 60.0;
        cfg.record_events = true;
        auto res = core::runSession(*game, base, cfg);
        auto replica = games::makeGame(name);
        auto profile = trace::Replayer::replay(res.trace, *replica);
        trace::FieldStatistics fs(profile, game->schema());
        double p = res.report.averagePower();
        std::printf("%-14s P=%.2fW h=%.1f cpu=%.0f%% ip=%.0f%% s+m=%.0f%% useless=%.0f%%/%.0f%%i rep=%.1f%% outred=%.0f%% ev=%llu\n",
            name.c_str(), p,
            util::hoursToDrain(util::batteryCapacityJoules(3450), p),
            100*res.report.socGroupFraction(soc::EnergyGroup::Cpu),
            100*res.report.socGroupFraction(soc::EnergyGroup::Ips),
            100*(res.report.socGroupFraction(soc::EnergyGroup::Sensors)+res.report.socGroupFraction(soc::EnergyGroup::Memory)),
            100*fs.uselessFraction(), 100*fs.uselessInstructionFraction(),
            100*fs.exactRepeatFraction(), 100*fs.outputRedundancyFraction(),
            (unsigned long long)res.stats.events);
    }
    return 0;
}
