#include <cstdio>
#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "trace/recorder.h"

using namespace snip;

int main(int argc, char **argv) {
    const char *gname = argc > 1 ? argv[1] : "ab_evolution";
    auto game = games::makeGame(gname);
    core::BaselineScheme base;
    core::SimulationConfig pcfg; pcfg.duration_s = argc > 2 ? atof(argv[2]) : 60; pcfg.record_events = true; pcfg.seed = 77;
    auto prof_res = core::runSession(*game, base, pcfg);
    auto replica = games::makeGame(gname);
    auto profile = trace::Replayer::replay(prof_res.trace, *replica);
    auto model = core::buildSnipModel(profile, *game);
    for (auto &t : model.types) {
        std::printf("type %s: full_err=%.4f sel_err=%.4f sel_bytes=%llu fields:\n",
            events::eventTypeName(t.type), t.selection.full_error, t.selection.selected_error,
            (unsigned long long)t.selection.selected_bytes);
        for (auto fid : t.selection.selected)
            std::printf("   %s (%uB)\n", game->schema().def(fid).name.c_str(), game->schema().def(fid).size_bytes);
        // ground truth
        std::printf("   GROUND TRUTH:");
        for (auto fid : game->necessaryInputIds(t.type))
            std::printf(" %s", game->schema().def(fid).name.c_str());
        std::printf("\n");
    }
    return 0;
}
