file(REMOVE_RECURSE
  "CMakeFiles/ar_game_session.dir/ar_game_session.cpp.o"
  "CMakeFiles/ar_game_session.dir/ar_game_session.cpp.o.d"
  "ar_game_session"
  "ar_game_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ar_game_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
