# Empty dependencies file for profile_and_deploy.
# This may be replaced when dependencies are built.
