file(REMOVE_RECURSE
  "CMakeFiles/profile_and_deploy.dir/profile_and_deploy.cpp.o"
  "CMakeFiles/profile_and_deploy.dir/profile_and_deploy.cpp.o.d"
  "profile_and_deploy"
  "profile_and_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_and_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
