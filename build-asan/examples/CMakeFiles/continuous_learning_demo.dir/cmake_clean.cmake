file(REMOVE_RECURSE
  "CMakeFiles/continuous_learning_demo.dir/continuous_learning_demo.cpp.o"
  "CMakeFiles/continuous_learning_demo.dir/continuous_learning_demo.cpp.o.d"
  "continuous_learning_demo"
  "continuous_learning_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_learning_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
