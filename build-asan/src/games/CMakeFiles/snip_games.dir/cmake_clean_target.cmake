file(REMOVE_RECURSE
  "libsnip_games.a"
)
