file(REMOVE_RECURSE
  "CMakeFiles/snip_games.dir/catalog.cc.o"
  "CMakeFiles/snip_games.dir/catalog.cc.o.d"
  "CMakeFiles/snip_games.dir/game.cc.o"
  "CMakeFiles/snip_games.dir/game.cc.o.d"
  "CMakeFiles/snip_games.dir/game_state.cc.o"
  "CMakeFiles/snip_games.dir/game_state.cc.o.d"
  "CMakeFiles/snip_games.dir/handler.cc.o"
  "CMakeFiles/snip_games.dir/handler.cc.o.d"
  "CMakeFiles/snip_games.dir/registry.cc.o"
  "CMakeFiles/snip_games.dir/registry.cc.o.d"
  "libsnip_games.a"
  "libsnip_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snip_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
