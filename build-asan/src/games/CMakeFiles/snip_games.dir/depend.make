# Empty dependencies file for snip_games.
# This may be replaced when dependencies are built.
