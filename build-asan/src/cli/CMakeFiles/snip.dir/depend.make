# Empty dependencies file for snip.
# This may be replaced when dependencies are built.
