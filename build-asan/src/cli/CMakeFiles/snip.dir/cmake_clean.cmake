file(REMOVE_RECURSE
  "CMakeFiles/snip.dir/snip_cli.cc.o"
  "CMakeFiles/snip.dir/snip_cli.cc.o.d"
  "snip"
  "snip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
