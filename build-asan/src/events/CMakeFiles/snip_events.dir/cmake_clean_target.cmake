file(REMOVE_RECURSE
  "libsnip_events.a"
)
