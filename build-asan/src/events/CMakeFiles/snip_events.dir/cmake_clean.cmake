file(REMOVE_RECURSE
  "CMakeFiles/snip_events.dir/binder.cc.o"
  "CMakeFiles/snip_events.dir/binder.cc.o.d"
  "CMakeFiles/snip_events.dir/event.cc.o"
  "CMakeFiles/snip_events.dir/event.cc.o.d"
  "CMakeFiles/snip_events.dir/field.cc.o"
  "CMakeFiles/snip_events.dir/field.cc.o.d"
  "CMakeFiles/snip_events.dir/sensor.cc.o"
  "CMakeFiles/snip_events.dir/sensor.cc.o.d"
  "CMakeFiles/snip_events.dir/sensor_manager.cc.o"
  "CMakeFiles/snip_events.dir/sensor_manager.cc.o.d"
  "libsnip_events.a"
  "libsnip_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snip_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
