# Empty dependencies file for snip_events.
# This may be replaced when dependencies are built.
