file(REMOVE_RECURSE
  "libsnip_ml.a"
)
