# Empty dependencies file for snip_ml.
# This may be replaced when dependencies are built.
