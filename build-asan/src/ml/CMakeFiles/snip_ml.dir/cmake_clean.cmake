file(REMOVE_RECURSE
  "CMakeFiles/snip_ml.dir/dataset.cc.o"
  "CMakeFiles/snip_ml.dir/dataset.cc.o.d"
  "CMakeFiles/snip_ml.dir/decision_tree.cc.o"
  "CMakeFiles/snip_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/snip_ml.dir/feature_selection.cc.o"
  "CMakeFiles/snip_ml.dir/feature_selection.cc.o.d"
  "CMakeFiles/snip_ml.dir/pfi.cc.o"
  "CMakeFiles/snip_ml.dir/pfi.cc.o.d"
  "CMakeFiles/snip_ml.dir/random_forest.cc.o"
  "CMakeFiles/snip_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/snip_ml.dir/table_predictor.cc.o"
  "CMakeFiles/snip_ml.dir/table_predictor.cc.o.d"
  "libsnip_ml.a"
  "libsnip_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snip_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
