file(REMOVE_RECURSE
  "CMakeFiles/snip_trace.dir/field_stats.cc.o"
  "CMakeFiles/snip_trace.dir/field_stats.cc.o.d"
  "CMakeFiles/snip_trace.dir/profile.cc.o"
  "CMakeFiles/snip_trace.dir/profile.cc.o.d"
  "CMakeFiles/snip_trace.dir/recorder.cc.o"
  "CMakeFiles/snip_trace.dir/recorder.cc.o.d"
  "CMakeFiles/snip_trace.dir/trace_log.cc.o"
  "CMakeFiles/snip_trace.dir/trace_log.cc.o.d"
  "libsnip_trace.a"
  "libsnip_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snip_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
