file(REMOVE_RECURSE
  "libsnip_trace.a"
)
