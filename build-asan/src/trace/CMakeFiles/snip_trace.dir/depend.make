# Empty dependencies file for snip_trace.
# This may be replaced when dependencies are built.
