# Empty dependencies file for snip_util.
# This may be replaced when dependencies are built.
