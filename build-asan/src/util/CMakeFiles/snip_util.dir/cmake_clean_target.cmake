file(REMOVE_RECURSE
  "libsnip_util.a"
)
