file(REMOVE_RECURSE
  "CMakeFiles/snip_util.dir/bytes.cc.o"
  "CMakeFiles/snip_util.dir/bytes.cc.o.d"
  "CMakeFiles/snip_util.dir/csv_writer.cc.o"
  "CMakeFiles/snip_util.dir/csv_writer.cc.o.d"
  "CMakeFiles/snip_util.dir/logging.cc.o"
  "CMakeFiles/snip_util.dir/logging.cc.o.d"
  "CMakeFiles/snip_util.dir/rng.cc.o"
  "CMakeFiles/snip_util.dir/rng.cc.o.d"
  "CMakeFiles/snip_util.dir/stats.cc.o"
  "CMakeFiles/snip_util.dir/stats.cc.o.d"
  "CMakeFiles/snip_util.dir/table_printer.cc.o"
  "CMakeFiles/snip_util.dir/table_printer.cc.o.d"
  "CMakeFiles/snip_util.dir/units.cc.o"
  "CMakeFiles/snip_util.dir/units.cc.o.d"
  "libsnip_util.a"
  "libsnip_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snip_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
