# Empty dependencies file for snip_soc.
# This may be replaced when dependencies are built.
