file(REMOVE_RECURSE
  "libsnip_soc.a"
)
