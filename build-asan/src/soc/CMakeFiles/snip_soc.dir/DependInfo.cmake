
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/battery.cc" "src/soc/CMakeFiles/snip_soc.dir/battery.cc.o" "gcc" "src/soc/CMakeFiles/snip_soc.dir/battery.cc.o.d"
  "/root/repo/src/soc/component.cc" "src/soc/CMakeFiles/snip_soc.dir/component.cc.o" "gcc" "src/soc/CMakeFiles/snip_soc.dir/component.cc.o.d"
  "/root/repo/src/soc/cpu.cc" "src/soc/CMakeFiles/snip_soc.dir/cpu.cc.o" "gcc" "src/soc/CMakeFiles/snip_soc.dir/cpu.cc.o.d"
  "/root/repo/src/soc/energy_model.cc" "src/soc/CMakeFiles/snip_soc.dir/energy_model.cc.o" "gcc" "src/soc/CMakeFiles/snip_soc.dir/energy_model.cc.o.d"
  "/root/repo/src/soc/energy_report.cc" "src/soc/CMakeFiles/snip_soc.dir/energy_report.cc.o" "gcc" "src/soc/CMakeFiles/snip_soc.dir/energy_report.cc.o.d"
  "/root/repo/src/soc/ip_block.cc" "src/soc/CMakeFiles/snip_soc.dir/ip_block.cc.o" "gcc" "src/soc/CMakeFiles/snip_soc.dir/ip_block.cc.o.d"
  "/root/repo/src/soc/memory.cc" "src/soc/CMakeFiles/snip_soc.dir/memory.cc.o" "gcc" "src/soc/CMakeFiles/snip_soc.dir/memory.cc.o.d"
  "/root/repo/src/soc/sensor_hub.cc" "src/soc/CMakeFiles/snip_soc.dir/sensor_hub.cc.o" "gcc" "src/soc/CMakeFiles/snip_soc.dir/sensor_hub.cc.o.d"
  "/root/repo/src/soc/soc.cc" "src/soc/CMakeFiles/snip_soc.dir/soc.cc.o" "gcc" "src/soc/CMakeFiles/snip_soc.dir/soc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/snip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
