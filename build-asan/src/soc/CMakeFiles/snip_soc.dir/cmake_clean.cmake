file(REMOVE_RECURSE
  "CMakeFiles/snip_soc.dir/battery.cc.o"
  "CMakeFiles/snip_soc.dir/battery.cc.o.d"
  "CMakeFiles/snip_soc.dir/component.cc.o"
  "CMakeFiles/snip_soc.dir/component.cc.o.d"
  "CMakeFiles/snip_soc.dir/cpu.cc.o"
  "CMakeFiles/snip_soc.dir/cpu.cc.o.d"
  "CMakeFiles/snip_soc.dir/energy_model.cc.o"
  "CMakeFiles/snip_soc.dir/energy_model.cc.o.d"
  "CMakeFiles/snip_soc.dir/energy_report.cc.o"
  "CMakeFiles/snip_soc.dir/energy_report.cc.o.d"
  "CMakeFiles/snip_soc.dir/ip_block.cc.o"
  "CMakeFiles/snip_soc.dir/ip_block.cc.o.d"
  "CMakeFiles/snip_soc.dir/memory.cc.o"
  "CMakeFiles/snip_soc.dir/memory.cc.o.d"
  "CMakeFiles/snip_soc.dir/sensor_hub.cc.o"
  "CMakeFiles/snip_soc.dir/sensor_hub.cc.o.d"
  "CMakeFiles/snip_soc.dir/soc.cc.o"
  "CMakeFiles/snip_soc.dir/soc.cc.o.d"
  "libsnip_soc.a"
  "libsnip_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snip_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
