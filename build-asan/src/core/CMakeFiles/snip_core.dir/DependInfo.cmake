
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/continuous_learning.cc" "src/core/CMakeFiles/snip_core.dir/continuous_learning.cc.o" "gcc" "src/core/CMakeFiles/snip_core.dir/continuous_learning.cc.o.d"
  "/root/repo/src/core/federated.cc" "src/core/CMakeFiles/snip_core.dir/federated.cc.o" "gcc" "src/core/CMakeFiles/snip_core.dir/federated.cc.o.d"
  "/root/repo/src/core/lookup_table.cc" "src/core/CMakeFiles/snip_core.dir/lookup_table.cc.o" "gcc" "src/core/CMakeFiles/snip_core.dir/lookup_table.cc.o.d"
  "/root/repo/src/core/memo_table.cc" "src/core/CMakeFiles/snip_core.dir/memo_table.cc.o" "gcc" "src/core/CMakeFiles/snip_core.dir/memo_table.cc.o.d"
  "/root/repo/src/core/output_diff.cc" "src/core/CMakeFiles/snip_core.dir/output_diff.cc.o" "gcc" "src/core/CMakeFiles/snip_core.dir/output_diff.cc.o.d"
  "/root/repo/src/core/parallel_runner.cc" "src/core/CMakeFiles/snip_core.dir/parallel_runner.cc.o" "gcc" "src/core/CMakeFiles/snip_core.dir/parallel_runner.cc.o.d"
  "/root/repo/src/core/qoe.cc" "src/core/CMakeFiles/snip_core.dir/qoe.cc.o" "gcc" "src/core/CMakeFiles/snip_core.dir/qoe.cc.o.d"
  "/root/repo/src/core/scheme.cc" "src/core/CMakeFiles/snip_core.dir/scheme.cc.o" "gcc" "src/core/CMakeFiles/snip_core.dir/scheme.cc.o.d"
  "/root/repo/src/core/simulation.cc" "src/core/CMakeFiles/snip_core.dir/simulation.cc.o" "gcc" "src/core/CMakeFiles/snip_core.dir/simulation.cc.o.d"
  "/root/repo/src/core/snip.cc" "src/core/CMakeFiles/snip_core.dir/snip.cc.o" "gcc" "src/core/CMakeFiles/snip_core.dir/snip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/snip_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/soc/CMakeFiles/snip_soc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/events/CMakeFiles/snip_events.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/games/CMakeFiles/snip_games.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/trace/CMakeFiles/snip_trace.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ml/CMakeFiles/snip_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
