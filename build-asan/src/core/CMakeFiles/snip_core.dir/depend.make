# Empty dependencies file for snip_core.
# This may be replaced when dependencies are built.
