file(REMOVE_RECURSE
  "CMakeFiles/snip_core.dir/continuous_learning.cc.o"
  "CMakeFiles/snip_core.dir/continuous_learning.cc.o.d"
  "CMakeFiles/snip_core.dir/federated.cc.o"
  "CMakeFiles/snip_core.dir/federated.cc.o.d"
  "CMakeFiles/snip_core.dir/lookup_table.cc.o"
  "CMakeFiles/snip_core.dir/lookup_table.cc.o.d"
  "CMakeFiles/snip_core.dir/memo_table.cc.o"
  "CMakeFiles/snip_core.dir/memo_table.cc.o.d"
  "CMakeFiles/snip_core.dir/output_diff.cc.o"
  "CMakeFiles/snip_core.dir/output_diff.cc.o.d"
  "CMakeFiles/snip_core.dir/parallel_runner.cc.o"
  "CMakeFiles/snip_core.dir/parallel_runner.cc.o.d"
  "CMakeFiles/snip_core.dir/qoe.cc.o"
  "CMakeFiles/snip_core.dir/qoe.cc.o.d"
  "CMakeFiles/snip_core.dir/scheme.cc.o"
  "CMakeFiles/snip_core.dir/scheme.cc.o.d"
  "CMakeFiles/snip_core.dir/simulation.cc.o"
  "CMakeFiles/snip_core.dir/simulation.cc.o.d"
  "CMakeFiles/snip_core.dir/snip.cc.o"
  "CMakeFiles/snip_core.dir/snip.cc.o.d"
  "libsnip_core.a"
  "libsnip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
