file(REMOVE_RECURSE
  "libsnip_core.a"
)
