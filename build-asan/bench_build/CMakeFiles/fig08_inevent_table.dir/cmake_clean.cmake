file(REMOVE_RECURSE
  "../bench/fig08_inevent_table"
  "../bench/fig08_inevent_table.pdb"
  "CMakeFiles/fig08_inevent_table.dir/fig08_inevent_table.cc.o"
  "CMakeFiles/fig08_inevent_table.dir/fig08_inevent_table.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_inevent_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
