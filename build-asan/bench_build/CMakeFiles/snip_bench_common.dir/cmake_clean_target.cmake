file(REMOVE_RECURSE
  "libsnip_bench_common.a"
)
