file(REMOVE_RECURSE
  "CMakeFiles/snip_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/snip_bench_common.dir/bench_common.cc.o.d"
  "libsnip_bench_common.a"
  "libsnip_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snip_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
