file(REMOVE_RECURSE
  "../bench/ablation_federated"
  "../bench/ablation_federated.pdb"
  "CMakeFiles/ablation_federated.dir/ablation_federated.cc.o"
  "CMakeFiles/ablation_federated.dir/ablation_federated.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
