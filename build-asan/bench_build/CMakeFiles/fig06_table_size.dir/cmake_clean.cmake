file(REMOVE_RECURSE
  "../bench/fig06_table_size"
  "../bench/fig06_table_size.pdb"
  "CMakeFiles/fig06_table_size.dir/fig06_table_size.cc.o"
  "CMakeFiles/fig06_table_size.dir/fig06_table_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_table_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
