file(REMOVE_RECURSE
  "../bench/ablation_pfi"
  "../bench/ablation_pfi.pdb"
  "CMakeFiles/ablation_pfi.dir/ablation_pfi.cc.o"
  "CMakeFiles/ablation_pfi.dir/ablation_pfi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
