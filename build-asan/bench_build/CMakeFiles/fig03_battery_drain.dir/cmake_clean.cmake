file(REMOVE_RECURSE
  "../bench/fig03_battery_drain"
  "../bench/fig03_battery_drain.pdb"
  "CMakeFiles/fig03_battery_drain.dir/fig03_battery_drain.cc.o"
  "CMakeFiles/fig03_battery_drain.dir/fig03_battery_drain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_battery_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
