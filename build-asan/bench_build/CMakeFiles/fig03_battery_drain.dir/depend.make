# Empty dependencies file for fig03_battery_drain.
# This may be replaced when dependencies are built.
