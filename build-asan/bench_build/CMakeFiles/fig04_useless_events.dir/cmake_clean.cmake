file(REMOVE_RECURSE
  "../bench/fig04_useless_events"
  "../bench/fig04_useless_events.pdb"
  "CMakeFiles/fig04_useless_events.dir/fig04_useless_events.cc.o"
  "CMakeFiles/fig04_useless_events.dir/fig04_useless_events.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_useless_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
