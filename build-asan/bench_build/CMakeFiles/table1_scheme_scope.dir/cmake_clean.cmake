file(REMOVE_RECURSE
  "../bench/table1_scheme_scope"
  "../bench/table1_scheme_scope.pdb"
  "CMakeFiles/table1_scheme_scope.dir/table1_scheme_scope.cc.o"
  "CMakeFiles/table1_scheme_scope.dir/table1_scheme_scope.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_scheme_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
