# Empty dependencies file for table1_scheme_scope.
# This may be replaced when dependencies are built.
