file(REMOVE_RECURSE
  "../bench/ablation_sensor_fidelity"
  "../bench/ablation_sensor_fidelity.pdb"
  "CMakeFiles/ablation_sensor_fidelity.dir/ablation_sensor_fidelity.cc.o"
  "CMakeFiles/ablation_sensor_fidelity.dir/ablation_sensor_fidelity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sensor_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
