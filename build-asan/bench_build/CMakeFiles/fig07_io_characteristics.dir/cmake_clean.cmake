file(REMOVE_RECURSE
  "../bench/fig07_io_characteristics"
  "../bench/fig07_io_characteristics.pdb"
  "CMakeFiles/fig07_io_characteristics.dir/fig07_io_characteristics.cc.o"
  "CMakeFiles/fig07_io_characteristics.dir/fig07_io_characteristics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_io_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
