# Empty dependencies file for fig07_io_characteristics.
# This may be replaced when dependencies are built.
