file(REMOVE_RECURSE
  "../bench/micro_lookup"
  "../bench/micro_lookup.pdb"
  "CMakeFiles/micro_lookup.dir/micro_lookup.cc.o"
  "CMakeFiles/micro_lookup.dir/micro_lookup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
