file(REMOVE_RECURSE
  "../bench/fig11_schemes"
  "../bench/fig11_schemes.pdb"
  "CMakeFiles/fig11_schemes.dir/fig11_schemes.cc.o"
  "CMakeFiles/fig11_schemes.dir/fig11_schemes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
