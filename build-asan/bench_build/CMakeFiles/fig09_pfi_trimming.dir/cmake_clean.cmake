file(REMOVE_RECURSE
  "../bench/fig09_pfi_trimming"
  "../bench/fig09_pfi_trimming.pdb"
  "CMakeFiles/fig09_pfi_trimming.dir/fig09_pfi_trimming.cc.o"
  "CMakeFiles/fig09_pfi_trimming.dir/fig09_pfi_trimming.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_pfi_trimming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
