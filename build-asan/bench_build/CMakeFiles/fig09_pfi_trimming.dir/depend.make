# Empty dependencies file for fig09_pfi_trimming.
# This may be replaced when dependencies are built.
