file(REMOVE_RECURSE
  "../bench/fig12_continuous_learning"
  "../bench/fig12_continuous_learning.pdb"
  "CMakeFiles/fig12_continuous_learning.dir/fig12_continuous_learning.cc.o"
  "CMakeFiles/fig12_continuous_learning.dir/fig12_continuous_learning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_continuous_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
