file(REMOVE_RECURSE
  "CMakeFiles/probe2.dir/probe2.cc.o"
  "CMakeFiles/probe2.dir/probe2.cc.o.d"
  "probe2"
  "probe2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
