file(REMOVE_RECURSE
  "CMakeFiles/probe3.dir/probe3.cc.o"
  "CMakeFiles/probe3.dir/probe3.cc.o.d"
  "probe3"
  "probe3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
