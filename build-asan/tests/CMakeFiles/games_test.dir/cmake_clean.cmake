file(REMOVE_RECURSE
  "CMakeFiles/games_test.dir/games_test.cc.o"
  "CMakeFiles/games_test.dir/games_test.cc.o.d"
  "games_test"
  "games_test.pdb"
  "games_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/games_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
