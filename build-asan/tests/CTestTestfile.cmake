# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/util_test[1]_include.cmake")
include("/root/repo/build-asan/tests/soc_test[1]_include.cmake")
include("/root/repo/build-asan/tests/events_test[1]_include.cmake")
include("/root/repo/build-asan/tests/games_test[1]_include.cmake")
include("/root/repo/build-asan/tests/trace_test[1]_include.cmake")
include("/root/repo/build-asan/tests/ml_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/parallel_test[1]_include.cmake")
include("/root/repo/build-asan/tests/extensions_test[1]_include.cmake")
