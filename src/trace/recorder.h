/**
 * @file
 * On-device event recording and offline replay.
 *
 * EventRecorder is the lightweight tap installed on the Binder
 * channel (paper: "future android versions can instrument the
 * Binder instances ... to dump all the events"); it accumulates the
 * EventTrace that the device uploads.
 *
 * Replayer is the cloud side: it feeds a recorded event stream
 * through a *fresh* instance of the game "as if the user is playing
 * the game once again in the emulator" and captures the complete
 * input/output record of every handler execution.
 */

#ifndef SNIP_TRACE_RECORDER_H
#define SNIP_TRACE_RECORDER_H

#include "events/event.h"
#include "games/game.h"
#include "trace/profile.h"

namespace snip {
namespace trace {

/** Accumulates the on-device event stream. */
class EventRecorder
{
  public:
    /** @param game_name Name stamped into the trace. */
    explicit EventRecorder(std::string game_name);

    /** Record one delivered event (Binder tap). */
    void onEvent(const events::EventObject &ev);

    /** The trace collected so far. */
    const EventTrace &trace() const { return trace_; }

    /** Number of recorded events. */
    size_t size() const { return trace_.events.size(); }

    /** Drop everything recorded so far. */
    void clear() { trace_.events.clear(); }

  private:
    EventTrace trace_;
};

/** Offline replay: event stream -> full I/O profile. */
class Replayer
{
  public:
    /**
     * Replay @p trace against @p game (which is reset() first so
     * the emulator reproduces the original session's state
     * evolution) and return the full profile.
     */
    static Profile replay(const EventTrace &trace, games::Game &game);
};

}  // namespace trace
}  // namespace snip

#endif  // SNIP_TRACE_RECORDER_H
