#include "trace/columnar_log.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/logging.h"

namespace snip {
namespace trace {

namespace {

constexpr size_t kHeaderBytes = 72;
constexpr size_t kDirRecBytes = 32;

uint32_t
readU32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

uint64_t
readU64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

void
writeU32(uint8_t *p, uint32_t v)
{
    std::memcpy(p, &v, 4);
}

void
writeU64(uint8_t *p, uint64_t v)
{
    std::memcpy(p, &v, 8);
}

size_t
align8(size_t off)
{
    return (off + 7) & ~size_t{7};
}

}  // namespace

util::Status
ColumnarLog::encode(const EventTrace &trace, std::vector<uint8_t> *out)
{
    size_t n = trace.events.size();

    // Pass 1: per-type field-id template + row counts. The columns
    // are only well-formed when every row of a type carries the same
    // fields in the same order.
    struct TypeBuild {
        bool present = false;
        std::vector<uint32_t> ids;
        uint64_t nrows = 0;
    };
    std::array<TypeBuild, events::kNumEventTypes> builds;
    std::vector<uint32_t> row(n);
    for (size_t i = 0; i < n; ++i) {
        const events::EventObject &ev = trace.events[i];
        int t = static_cast<int>(ev.type);
        if (t < 0 || t >= events::kNumEventTypes)
            return util::Status::Errorf(
                "columnar: bad event type %d", t);
        TypeBuild &b = builds[t];
        if (!b.present) {
            b.present = true;
            b.ids.reserve(ev.fields.size());
            for (const auto &fv : ev.fields)
                b.ids.push_back(fv.id);
        } else {
            bool same = b.ids.size() == ev.fields.size();
            for (size_t f = 0; same && f < b.ids.size(); ++f)
                same = b.ids[f] == ev.fields[f].id;
            if (!same)
                return util::Status::Errorf(
                    "columnar: type %d rows do not share one field "
                    "set (event %zu)", t, i);
        }
        row[i] = static_cast<uint32_t>(b.nrows++);
    }

    // Layout.
    uint32_t ntypes = 0;
    for (const auto &b : builds)
        ntypes += b.present;
    size_t game_len = trace.game.size();
    size_t off = align8(kHeaderBytes + game_len);
    size_t type_off = off;
    off = align8(off + n);
    size_t row_off = off;
    off = align8(off + n * 4);
    size_t seq_off = off;
    off += n * 8;
    size_t ts_off = off;
    off += n * 8;
    size_t dir_off = off;
    off += static_cast<size_t>(ntypes) * kDirRecBytes;
    struct TypeOffsets {
        size_t ids = 0, cols = 0;
    };
    std::array<TypeOffsets, events::kNumEventTypes> offsets{};
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        const TypeBuild &b = builds[t];
        if (!b.present)
            continue;
        offsets[t].ids = off;
        off = align8(off + b.ids.size() * 4);
        offsets[t].cols = off;
        off += b.nrows * b.ids.size() * 8;
    }
    size_t total = off;

    out->assign(total, 0);
    uint8_t *base = out->data();
    writeU32(base + 0, kColumnarMagic);
    writeU32(base + 4, kColumnarVersion);
    writeU64(base + 8, total);
    writeU64(base + 16, n);
    writeU32(base + 24, ntypes);
    writeU32(base + 28, static_cast<uint32_t>(game_len));
    writeU64(base + 32, type_off);
    writeU64(base + 40, row_off);
    writeU64(base + 48, seq_off);
    writeU64(base + 56, ts_off);
    writeU64(base + 64, dir_off);
    std::memcpy(base + kHeaderBytes, trace.game.data(), game_len);

    uint32_t dir_i = 0;
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        const TypeBuild &b = builds[t];
        if (!b.present)
            continue;
        uint8_t *rec = base + dir_off + dir_i++ * kDirRecBytes;
        writeU32(rec + 0, static_cast<uint32_t>(t));
        writeU32(rec + 4, static_cast<uint32_t>(b.ids.size()));
        writeU64(rec + 8, b.nrows);
        writeU64(rec + 16, offsets[t].ids);
        writeU64(rec + 24, offsets[t].cols);
        for (size_t f = 0; f < b.ids.size(); ++f)
            writeU32(base + offsets[t].ids + f * 4, b.ids[f]);
    }

    // Pass 2: fill the global arrays and the column-major values.
    for (size_t i = 0; i < n; ++i) {
        const events::EventObject &ev = trace.events[i];
        int t = static_cast<int>(ev.type);
        const TypeBuild &b = builds[t];
        base[type_off + i] = static_cast<uint8_t>(t);
        writeU32(base + row_off + i * 4, row[i]);
        writeU64(base + seq_off + i * 8, ev.seq);
        uint64_t bits;
        std::memcpy(&bits, &ev.timestamp, 8);
        writeU64(base + ts_off + i * 8, bits);
        for (size_t f = 0; f < ev.fields.size(); ++f)
            writeU64(base + offsets[t].cols +
                         (f * b.nrows + row[i]) * 8,
                     ev.fields[f].value);
    }
    return util::Status::Ok();
}

util::Result<std::shared_ptr<const ColumnarLog>>
ColumnarLog::attach(const uint8_t *data, size_t size,
                    std::shared_ptr<const void> owner)
{
    auto log = std::shared_ptr<ColumnarLog>(new ColumnarLog());
    if (reinterpret_cast<uintptr_t>(data) % 8 == 0) {
        log->data_ = data;
        log->size_ = size;
        log->owner_ = std::move(owner);
    } else {
        log->owned_.assign((size + 7) / 8, 0);
        std::memcpy(log->owned_.data(), data, size);
        log->data_ = reinterpret_cast<uint8_t *>(log->owned_.data());
        log->size_ = size;
    }
    util::Status st = log->decode();
    if (!st.ok())
        return st;
    return util::Result<std::shared_ptr<const ColumnarLog>>(
        std::shared_ptr<const ColumnarLog>(std::move(log)));
}

util::Status
ColumnarLog::decode()
{
    const uint8_t *base = data_;
    const size_t size = size_;
    if (size < kHeaderBytes)
        return util::Status::Error("columnar: truncated header");
    if (readU32(base) != kColumnarMagic)
        return util::Status::Errorf("columnar: bad magic 0x%08x",
                                    readU32(base));
    if (readU32(base + 4) != kColumnarVersion)
        return util::Status::Errorf(
            "columnar: unsupported version %u", readU32(base + 4));
    if (readU64(base + 8) != size)
        return util::Status::Errorf(
            "columnar: size %llu does not match buffer size %zu",
            static_cast<unsigned long long>(readU64(base + 8)), size);
    uint64_t nevents = readU64(base + 16);
    uint32_t ntypes = readU32(base + 24);
    uint32_t game_len = readU32(base + 28);
    uint64_t type_off = readU64(base + 32);
    uint64_t row_off = readU64(base + 40);
    uint64_t seq_off = readU64(base + 48);
    uint64_t ts_off = readU64(base + 56);
    uint64_t dir_off = readU64(base + 64);
    if (ntypes > events::kNumEventTypes)
        return util::Status::Errorf("columnar: %u types out of range",
                                    ntypes);
    if (game_len > size - kHeaderBytes)
        return util::Status::Error("columnar: game name out of bounds");

    // Same span discipline as the frozen arena decoder: count
    // elements of elem bytes at off, inside the buffer and aligned
    // for the typed view over them.
    auto span = [&](uint64_t off, uint64_t count, uint64_t elem,
                    uint64_t align) {
        return off <= size && count <= (size - off) / elem &&
               off % align == 0;
    };
    if (!span(type_off, nevents, 1, 1) ||
        !span(row_off, nevents, 4, 4) ||
        !span(seq_off, nevents, 8, 8) ||
        !span(ts_off, nevents, 8, 8) ||
        !span(dir_off, ntypes, kDirRecBytes, 8))
        return util::Status::Error(
            "columnar: global arrays out of bounds");

    game_.assign(reinterpret_cast<const char *>(base + kHeaderBytes),
                 game_len);
    nevents_ = nevents;
    type_ = base + type_off;
    row_ = reinterpret_cast<const uint32_t *>(base + row_off);
    seq_ = reinterpret_cast<const uint64_t *>(base + seq_off);
    ts_ = reinterpret_cast<const uint64_t *>(base + ts_off);

    int prev_type = -1;
    for (uint32_t i = 0; i < ntypes; ++i) {
        const uint8_t *rec = base + dir_off + i * kDirRecBytes;
        uint32_t type = readU32(rec + 0);
        if (type >= events::kNumEventTypes ||
            static_cast<int>(type) <= prev_type)
            return util::Status::Errorf(
                "columnar: bad or out-of-order type %u", type);
        prev_type = static_cast<int>(type);
        TypeCols tc;
        tc.nfields = readU32(rec + 4);
        tc.nrows = readU64(rec + 8);
        uint64_t ids_off = readU64(rec + 16);
        uint64_t cols_off = readU64(rec + 24);
        if (tc.nfields != 0 &&
            tc.nrows > UINT64_MAX / tc.nfields)
            return util::Status::Error(
                "columnar: column count overflow");
        if (!span(ids_off, tc.nfields, 4, 4) ||
            !span(cols_off, tc.nrows * tc.nfields, 8, 8))
            return util::Status::Errorf(
                "columnar: type %u columns out of bounds", type);
        tc.ids = reinterpret_cast<const uint32_t *>(base + ids_off);
        tc.cols = reinterpret_cast<const uint64_t *>(base + cols_off);
        types_[type] = tc;
        has_type_[type] = true;
    }

    // Every event must land in a directory type, and its row index
    // must equal the running per-type counter — the invariant that
    // makes event(i) a safe O(1) column access.
    std::array<uint64_t, events::kNumEventTypes> counters{};
    for (uint64_t i = 0; i < nevents; ++i) {
        uint8_t t = type_[i];
        if (t >= events::kNumEventTypes || !has_type_[t])
            return util::Status::Errorf(
                "columnar: event %llu has undeclared type %u",
                static_cast<unsigned long long>(i), t);
        if (row_[i] != counters[t]++)
            return util::Status::Errorf(
                "columnar: event %llu row index mismatch",
                static_cast<unsigned long long>(i));
    }
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        if (has_type_[t] && counters[t] != types_[t].nrows)
            return util::Status::Errorf(
                "columnar: type %d row count mismatch", t);
    }
    return util::Status::Ok();
}

util::Result<std::shared_ptr<const ColumnarLog>>
ColumnarLog::open(const std::string &path)
{
    // RAII descriptor: every exit path — including an allocation
    // throw while building the fallback buffer or an error Status —
    // closes it exactly once.
    struct Fd {
        int fd = -1;
        ~Fd()
        {
            if (fd >= 0)
                ::close(fd);
        }
    } fd;
    fd.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd.fd < 0)
        return util::Status::Errorf("columnar: cannot open '%s'",
                                    path.c_str());
    struct stat st;
    if (::fstat(fd.fd, &st) != 0 || st.st_size < 0)
        return util::Status::Errorf("columnar: cannot stat '%s'",
                                    path.c_str());
    size_t size = static_cast<size_t>(st.st_size);
    if (size > 0) {
        void *p =
            ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.fd, 0);
        if (p != MAP_FAILED) {
            // shared_ptr(p, d) invokes d(p) if the control block
            // cannot be allocated, so the mapping cannot leak; a
            // failed attach() unmaps when `owner` dies.
            std::shared_ptr<const void> owner(
                p, [size](const void *q) {
                    ::munmap(const_cast<void *>(q), size);
                });
            return attach(static_cast<const uint8_t *>(p), size,
                          std::move(owner));
        }
    }
    // mmap unavailable (or empty file): read through the descriptor
    // we already hold rather than reopening by path, so the bytes
    // come from the same file the stat above measured.
    std::vector<uint8_t> bytes(size);
    size_t off = 0;
    while (off < size) {
        ssize_t n = ::read(fd.fd, bytes.data() + off, size - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return util::Status::Errorf(
                "columnar: short read on '%s'", path.c_str());
        off += static_cast<size_t>(n);
    }
    auto owned =
        std::make_shared<std::vector<uint8_t>>(std::move(bytes));
    return attach(owned->data(), owned->size(), owned);
}

util::Status
ColumnarLog::save(const std::vector<uint8_t> &bytes,
                  const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return util::Status::Errorf("columnar: cannot write '%s'",
                                    path.c_str());
    size_t wrote =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1,
                                        bytes.size(), f);
    bool ok = wrote == bytes.size() && std::fclose(f) == 0;
    if (!ok)
        return util::Status::Errorf("columnar: short write on '%s'",
                                    path.c_str());
    return util::Status::Ok();
}

void
ColumnarLog::event(size_t i, events::EventObject *ev) const
{
    uint8_t t = type_[i];
    const TypeCols &tc = types_[t];
    ev->type = static_cast<events::EventType>(t);
    ev->seq = seq_[i];
    uint64_t bits = ts_[i];
    double d;
    std::memcpy(&d, &bits, 8);
    ev->timestamp = d;
    uint64_t r = row_[i];
    ev->fields.resize(tc.nfields);
    for (uint32_t f = 0; f < tc.nfields; ++f)
        ev->fields[f] = {tc.ids[f], tc.cols[f * tc.nrows + r]};
}

void
ColumnarLog::toTrace(EventTrace *out) const
{
    out->game = game_;
    out->events.resize(nevents_);
    for (size_t i = 0; i < nevents_; ++i)
        event(i, &out->events[i]);
}

}  // namespace trace
}  // namespace snip
