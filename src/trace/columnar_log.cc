#include "trace/columnar_log.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "events/field.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace snip {
namespace trace {

namespace {

constexpr size_t kHeaderBytesV1 = 72;
constexpr size_t kHeaderBytesV2 = 88;
constexpr size_t kDirRecBytes = 32;
constexpr size_t kTrainRecBytes = 80;

/** Bytes scanned per step of the streaming CRC verify. */
constexpr uint64_t kVerifyBlockBytes = uint64_t{16} << 20;

uint32_t
readU32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

uint64_t
readU64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

void
writeU32(uint8_t *p, uint32_t v)
{
    std::memcpy(p, &v, 4);
}

void
writeU64(uint8_t *p, uint64_t v)
{
    std::memcpy(p, &v, 8);
}

size_t
align8(size_t off)
{
    return (off + 7) & ~size_t{7};
}

/**
 * Advise the kernel to drop the (clean, read-only, MAP_PRIVATE)
 * pages behind [p, p + len): they refault from the page cache on
 * the next touch, so this only caps RSS, never changes bytes.
 */
void
dropPages(const void *p, size_t len)
{
    long page = ::sysconf(_SC_PAGESIZE);
    if (page <= 0 || len == 0)
        return;
    uintptr_t mask = static_cast<uintptr_t>(page) - 1;
    uintptr_t start = reinterpret_cast<uintptr_t>(p) & ~mask;
    uintptr_t end = reinterpret_cast<uintptr_t>(p) + len;
    ::madvise(reinterpret_cast<void *>(start), end - start,
              MADV_DONTNEED);
}

/**
 * CRC of @p n u64s in bounded-RSS steps: on an mmap-backed view
 * every scanned block is madvised away after hashing, so verifying
 * a multi-GB column costs one block of residency.
 */
uint32_t
columnCrc(const uint64_t *p, uint64_t n, bool mmap_backed)
{
    const uint8_t *bytes = reinterpret_cast<const uint8_t *>(p);
    uint64_t total = n * 8;
    uint32_t crc = 0;
    for (uint64_t off = 0; off < total; off += kVerifyBlockBytes) {
        uint64_t len = std::min(kVerifyBlockBytes, total - off);
        crc = util::crc32(bytes + off, len, crc);
        if (mmap_backed)
            dropPages(bytes + off, len);
    }
    return crc;
}

/**
 * Section CRC: the id arrays, then one chained crc32 word per value
 * column (features, labels, weights, outputs, in that order). Word
 * chaining is what lets TrainingWriter accumulate per-column CRCs
 * across incremental flushes and still land on this exact value.
 */
uint32_t
trainingCrc(const ColumnarLog::TrainingCols &tc, bool mmap_backed)
{
    uint32_t crc = util::crc32(tc.feat_ids, tc.nfeat * 4, 0);
    crc = util::crc32(tc.out_ids, tc.nout * 4, crc);
    auto mix = [&](const uint64_t *col) {
        uint32_t c = columnCrc(col, tc.nrows, mmap_backed);
        crc = util::crc32(&c, 4, crc);
    };
    for (uint32_t f = 0; f < tc.nfeat; ++f)
        mix(tc.feat_cols + f * tc.nrows);
    mix(tc.labels);
    mix(tc.weights);
    for (uint32_t o = 0; o < tc.nout; ++o)
        mix(tc.out_cols + o * tc.nrows);
    return crc;
}

}  // namespace

util::Status
ColumnarLog::encode(const EventTrace &trace, std::vector<uint8_t> *out)
{
    size_t n = trace.events.size();

    // Pass 1: per-type field-id template + row counts. The columns
    // are only well-formed when every row of a type carries the same
    // fields in the same order.
    struct TypeBuild {
        bool present = false;
        std::vector<uint32_t> ids;
        uint64_t nrows = 0;
    };
    std::array<TypeBuild, events::kNumEventTypes> builds;
    std::vector<uint32_t> row(n);
    for (size_t i = 0; i < n; ++i) {
        const events::EventObject &ev = trace.events[i];
        int t = static_cast<int>(ev.type);
        if (t < 0 || t >= events::kNumEventTypes)
            return util::Status::Errorf(
                "columnar: bad event type %d", t);
        TypeBuild &b = builds[t];
        if (!b.present) {
            b.present = true;
            b.ids.reserve(ev.fields.size());
            for (const auto &fv : ev.fields)
                b.ids.push_back(fv.id);
        } else {
            bool same = b.ids.size() == ev.fields.size();
            for (size_t f = 0; same && f < b.ids.size(); ++f)
                same = b.ids[f] == ev.fields[f].id;
            if (!same)
                return util::Status::Errorf(
                    "columnar: type %d rows do not share one field "
                    "set (event %zu)", t, i);
        }
        row[i] = static_cast<uint32_t>(b.nrows++);
    }

    // Layout.
    uint32_t ntypes = 0;
    for (const auto &b : builds)
        ntypes += b.present;
    size_t game_len = trace.game.size();
    size_t off = align8(kHeaderBytesV2 + game_len);
    size_t type_off = off;
    off = align8(off + n);
    size_t row_off = off;
    off = align8(off + n * 4);
    size_t seq_off = off;
    off += n * 8;
    size_t ts_off = off;
    off += n * 8;
    size_t dir_off = off;
    off += static_cast<size_t>(ntypes) * kDirRecBytes;
    struct TypeOffsets {
        size_t ids = 0, cols = 0;
    };
    std::array<TypeOffsets, events::kNumEventTypes> offsets{};
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        const TypeBuild &b = builds[t];
        if (!b.present)
            continue;
        offsets[t].ids = off;
        off = align8(off + b.ids.size() * 4);
        offsets[t].cols = off;
        off += b.nrows * b.ids.size() * 8;
    }
    size_t total = off;

    out->assign(total, 0);
    uint8_t *base = out->data();
    writeU32(base + 0, kColumnarMagic);
    writeU32(base + 4, kColumnarVersion);
    writeU64(base + 8, total);
    writeU64(base + 16, n);
    writeU32(base + 24, ntypes);
    writeU32(base + 28, static_cast<uint32_t>(game_len));
    writeU64(base + 32, type_off);
    writeU64(base + 40, row_off);
    writeU64(base + 48, seq_off);
    writeU64(base + 56, ts_off);
    writeU64(base + 64, dir_off);
    writeU64(base + 72, 0);  // train_dir_off: no training sections
    writeU32(base + 80, 0);  // ntrain
    writeU32(base + 84, 0);  // pad
    std::memcpy(base + kHeaderBytesV2, trace.game.data(), game_len);

    uint32_t dir_i = 0;
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        const TypeBuild &b = builds[t];
        if (!b.present)
            continue;
        uint8_t *rec = base + dir_off + dir_i++ * kDirRecBytes;
        writeU32(rec + 0, static_cast<uint32_t>(t));
        writeU32(rec + 4, static_cast<uint32_t>(b.ids.size()));
        writeU64(rec + 8, b.nrows);
        writeU64(rec + 16, offsets[t].ids);
        writeU64(rec + 24, offsets[t].cols);
        for (size_t f = 0; f < b.ids.size(); ++f)
            writeU32(base + offsets[t].ids + f * 4, b.ids[f]);
    }

    // Pass 2: fill the global arrays and the column-major values.
    for (size_t i = 0; i < n; ++i) {
        const events::EventObject &ev = trace.events[i];
        int t = static_cast<int>(ev.type);
        const TypeBuild &b = builds[t];
        base[type_off + i] = static_cast<uint8_t>(t);
        writeU32(base + row_off + i * 4, row[i]);
        writeU64(base + seq_off + i * 8, ev.seq);
        uint64_t bits;
        std::memcpy(&bits, &ev.timestamp, 8);
        writeU64(base + ts_off + i * 8, bits);
        for (size_t f = 0; f < ev.fields.size(); ++f)
            writeU64(base + offsets[t].cols +
                         (f * b.nrows + row[i]) * 8,
                     ev.fields[f].value);
    }
    return util::Status::Ok();
}

util::Status
ColumnarLog::encodeTraining(const Profile &profile,
                            std::vector<uint8_t> *out)
{
    // One section per event type present: the union-of-locations
    // feature matrix plus labels / weights / output columns — the
    // exact bytes ml::ChunkedDataset maps, built here once offline.
    struct Section {
        int type = 0;
        std::vector<const games::HandlerExecution *> recs;
        std::vector<uint32_t> feat_ids, out_ids;
        size_t rec_off = 0, feat_ids_off = 0, out_ids_off = 0;
        size_t feat_cols_off = 0, labels_off = 0, weights_off = 0;
        size_t out_cols_off = 0;
    };
    std::vector<Section> secs;
    for (events::EventType t : profile.typesPresent()) {
        Section s;
        s.type = static_cast<int>(t);
        s.recs = profile.ofType(t);
        size_t nin = 0, nout = 0;
        for (const auto *r : s.recs) {
            nin += r->inputs.size();
            nout += r->outputs.size();
        }
        s.feat_ids.reserve(nin);
        s.out_ids.reserve(nout);
        for (const auto *r : s.recs) {
            for (const auto &fv : r->inputs)
                s.feat_ids.push_back(fv.id);
            for (const auto &fv : r->outputs)
                s.out_ids.push_back(fv.id);
        }
        for (auto *ids : {&s.feat_ids, &s.out_ids}) {
            std::sort(ids->begin(), ids->end());
            ids->erase(std::unique(ids->begin(), ids->end()),
                       ids->end());
        }
        secs.push_back(std::move(s));
    }

    // Layout: v2 header, game name, no event stream (all global
    // arrays empty at one aligned offset), then the training
    // directory and each section's arrays.
    size_t game_len = profile.game.size();
    size_t off = align8(kHeaderBytesV2 + game_len);
    size_t empty_off = off;
    size_t train_dir_off = off;
    off += secs.size() * kTrainRecBytes;
    for (Section &s : secs) {
        uint64_t nrows = s.recs.size();
        s.feat_ids_off = off;
        off = align8(off + s.feat_ids.size() * 4);
        s.out_ids_off = off;
        off = align8(off + s.out_ids.size() * 4);
        s.feat_cols_off = off;
        off += s.feat_ids.size() * nrows * 8;
        s.labels_off = off;
        off += nrows * 8;
        s.weights_off = off;
        off += nrows * 8;
        s.out_cols_off = off;
        off += s.out_ids.size() * nrows * 8;
    }
    size_t total = off;

    out->assign(total, 0);
    uint8_t *base = out->data();
    writeU32(base + 0, kColumnarMagic);
    writeU32(base + 4, kColumnarVersion);
    writeU64(base + 8, total);
    writeU64(base + 16, 0);  // nevents
    writeU32(base + 24, 0);  // ntypes
    writeU32(base + 28, static_cast<uint32_t>(game_len));
    writeU64(base + 32, empty_off);  // type_off
    writeU64(base + 40, empty_off);  // row_off
    writeU64(base + 48, empty_off);  // seq_off
    writeU64(base + 56, empty_off);  // ts_off
    writeU64(base + 64, empty_off);  // dir_off
    writeU64(base + 72, train_dir_off);
    writeU32(base + 80, static_cast<uint32_t>(secs.size()));
    writeU32(base + 84, 0);
    std::memcpy(base + kHeaderBytesV2, profile.game.data(), game_len);

    for (size_t si = 0; si < secs.size(); ++si) {
        Section &s = secs[si];
        uint64_t nrows = s.recs.size();
        size_t nfeat = s.feat_ids.size();
        size_t nout = s.out_ids.size();
        for (size_t f = 0; f < nfeat; ++f)
            writeU32(base + s.feat_ids_off + f * 4, s.feat_ids[f]);
        for (size_t o = 0; o < nout; ++o)
            writeU32(base + s.out_ids_off + o * 4, s.out_ids[o]);

        uint64_t *feat_cols =
            reinterpret_cast<uint64_t *>(base + s.feat_cols_off);
        uint64_t *labels =
            reinterpret_cast<uint64_t *>(base + s.labels_off);
        uint64_t *weights =
            reinterpret_cast<uint64_t *>(base + s.weights_off);
        uint64_t *out_cols =
            reinterpret_cast<uint64_t *>(base + s.out_cols_off);
        std::fill(feat_cols, feat_cols + nfeat * nrows,
                  kTrainingAbsent);
        std::fill(out_cols, out_cols + nout * nrows,
                  kTrainingAbsent);

        for (uint64_t row = 0; row < nrows; ++row) {
            const games::HandlerExecution *r = s.recs[row];
            // Inputs/outputs are canonical (ascending ids): lockstep
            // walk against the sorted union, as the in-memory
            // Dataset constructor does.
            size_t col = 0;
            for (const auto &fv : r->inputs) {
                while (col < nfeat && s.feat_ids[col] < fv.id)
                    ++col;
                if (col < nfeat && s.feat_ids[col] == fv.id)
                    feat_cols[col * nrows + row] = fv.value;
            }
            size_t oc = 0;
            for (const auto &fv : r->outputs) {
                while (oc < nout && s.out_ids[oc] < fv.id)
                    ++oc;
                if (oc < nout && s.out_ids[oc] == fv.id)
                    out_cols[oc * nrows + row] = fv.value;
            }
            labels[row] = events::hashFields(r->outputs);
            weights[row] =
                std::max<uint64_t>(1, r->cpu_instructions);
        }

        TrainingCols tc;
        tc.nfeat = static_cast<uint32_t>(nfeat);
        tc.nout = static_cast<uint32_t>(nout);
        tc.nrows = nrows;
        tc.feat_ids =
            reinterpret_cast<const uint32_t *>(base + s.feat_ids_off);
        tc.out_ids =
            reinterpret_cast<const uint32_t *>(base + s.out_ids_off);
        tc.feat_cols = feat_cols;
        tc.labels = labels;
        tc.weights = weights;
        tc.out_cols = out_cols;

        uint8_t *rec = base + train_dir_off + si * kTrainRecBytes;
        writeU32(rec + 0, static_cast<uint32_t>(s.type));
        writeU32(rec + 4, tc.nfeat);
        writeU32(rec + 8, tc.nout);
        writeU32(rec + 12, trainingCrc(tc, false));
        writeU64(rec + 16, nrows);
        writeU64(rec + 24, s.feat_ids_off);
        writeU64(rec + 32, s.feat_cols_off);
        writeU64(rec + 40, s.labels_off);
        writeU64(rec + 48, s.weights_off);
        writeU64(rec + 56, s.out_ids_off);
        writeU64(rec + 64, s.out_cols_off);
        writeU64(rec + 72, 0);  // reserved
    }
    return util::Status::Ok();
}

util::Result<std::shared_ptr<const ColumnarLog>>
ColumnarLog::attach(const uint8_t *data, size_t size,
                    std::shared_ptr<const void> owner,
                    bool mmap_backed)
{
    auto log = std::shared_ptr<ColumnarLog>(new ColumnarLog());
    if (reinterpret_cast<uintptr_t>(data) % 8 == 0) {
        log->data_ = data;
        log->size_ = size;
        log->owner_ = std::move(owner);
        log->mmap_backed_ = mmap_backed;
    } else {
        log->owned_.assign((size + 7) / 8, 0);
        std::memcpy(log->owned_.data(), data, size);
        log->data_ = reinterpret_cast<uint8_t *>(log->owned_.data());
        log->size_ = size;
    }
    util::Status st = log->decode();
    if (!st.ok())
        return st;
    return util::Result<std::shared_ptr<const ColumnarLog>>(
        std::shared_ptr<const ColumnarLog>(std::move(log)));
}

util::Status
ColumnarLog::decode()
{
    const uint8_t *base = data_;
    const size_t size = size_;
    if (size < kHeaderBytesV1)
        return util::Status::Error("columnar: truncated header");
    if (readU32(base) != kColumnarMagic)
        return util::Status::Errorf("columnar: bad magic 0x%08x",
                                    readU32(base));
    uint32_t version = readU32(base + 4);
    if (version < kColumnarMinVersion || version > kColumnarVersion)
        return util::Status::Errorf(
            "columnar: unsupported version %u", version);
    size_t header_bytes =
        version >= 2 ? kHeaderBytesV2 : kHeaderBytesV1;
    if (size < header_bytes)
        return util::Status::Error("columnar: truncated header");
    if (readU64(base + 8) != size)
        return util::Status::Errorf(
            "columnar: size %llu does not match buffer size %zu",
            static_cast<unsigned long long>(readU64(base + 8)), size);
    uint64_t nevents = readU64(base + 16);
    uint32_t ntypes = readU32(base + 24);
    uint32_t game_len = readU32(base + 28);
    uint64_t type_off = readU64(base + 32);
    uint64_t row_off = readU64(base + 40);
    uint64_t seq_off = readU64(base + 48);
    uint64_t ts_off = readU64(base + 56);
    uint64_t dir_off = readU64(base + 64);
    uint64_t train_dir_off = 0;
    uint32_t ntrain = 0;
    if (version >= 2) {
        train_dir_off = readU64(base + 72);
        ntrain = readU32(base + 80);
    }
    if (ntypes > events::kNumEventTypes ||
        ntrain > events::kNumEventTypes)
        return util::Status::Errorf("columnar: %u types out of range",
                                    ntypes > events::kNumEventTypes
                                        ? ntypes
                                        : ntrain);
    if (game_len > size - header_bytes)
        return util::Status::Error("columnar: game name out of bounds");

    // Same span discipline as the frozen arena decoder: count
    // elements of elem bytes at off, inside the buffer and aligned
    // for the typed view over them.
    auto span = [&](uint64_t off, uint64_t count, uint64_t elem,
                    uint64_t align) {
        return off <= size && count <= (size - off) / elem &&
               off % align == 0;
    };
    if (!span(type_off, nevents, 1, 1) ||
        !span(row_off, nevents, 4, 4) ||
        !span(seq_off, nevents, 8, 8) ||
        !span(ts_off, nevents, 8, 8) ||
        !span(dir_off, ntypes, kDirRecBytes, 8) ||
        !span(train_dir_off, ntrain, kTrainRecBytes, 8))
        return util::Status::Error(
            "columnar: global arrays out of bounds");

    game_.assign(reinterpret_cast<const char *>(base + header_bytes),
                 game_len);
    nevents_ = nevents;
    type_ = base + type_off;
    row_ = reinterpret_cast<const uint32_t *>(base + row_off);
    seq_ = reinterpret_cast<const uint64_t *>(base + seq_off);
    ts_ = reinterpret_cast<const uint64_t *>(base + ts_off);

    int prev_type = -1;
    for (uint32_t i = 0; i < ntypes; ++i) {
        const uint8_t *rec = base + dir_off + i * kDirRecBytes;
        uint32_t type = readU32(rec + 0);
        if (type >= events::kNumEventTypes ||
            static_cast<int>(type) <= prev_type)
            return util::Status::Errorf(
                "columnar: bad or out-of-order type %u", type);
        prev_type = static_cast<int>(type);
        TypeCols tc;
        tc.nfields = readU32(rec + 4);
        tc.nrows = readU64(rec + 8);
        uint64_t ids_off = readU64(rec + 16);
        uint64_t cols_off = readU64(rec + 24);
        if (tc.nfields != 0 &&
            tc.nrows > UINT64_MAX / tc.nfields)
            return util::Status::Error(
                "columnar: column count overflow");
        if (!span(ids_off, tc.nfields, 4, 4) ||
            !span(cols_off, tc.nrows * tc.nfields, 8, 8))
            return util::Status::Errorf(
                "columnar: type %u columns out of bounds", type);
        tc.ids = reinterpret_cast<const uint32_t *>(base + ids_off);
        tc.cols = reinterpret_cast<const uint64_t *>(base + cols_off);
        types_[type] = tc;
        has_type_[type] = true;
    }

    // Every event must land in a directory type, and its row index
    // must equal the running per-type counter — the invariant that
    // makes event(i) a safe O(1) column access.
    std::array<uint64_t, events::kNumEventTypes> counters{};
    for (uint64_t i = 0; i < nevents; ++i) {
        uint8_t t = type_[i];
        if (t >= events::kNumEventTypes || !has_type_[t])
            return util::Status::Errorf(
                "columnar: event %llu has undeclared type %u",
                static_cast<unsigned long long>(i), t);
        if (row_[i] != counters[t]++)
            return util::Status::Errorf(
                "columnar: event %llu row index mismatch",
                static_cast<unsigned long long>(i));
    }
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        if (has_type_[t] && counters[t] != types_[t].nrows)
            return util::Status::Errorf(
                "columnar: type %d row count mismatch", t);
    }

    // Training sections (v2): bounds-check every array, require
    // ascending id arrays, then CRC-verify the payload — a bit flip
    // anywhere in a section (including a label or weight column)
    // turns into an error Status here, never into silently wrong
    // training data.
    int prev_train = -1;
    for (uint32_t i = 0; i < ntrain; ++i) {
        const uint8_t *rec = base + train_dir_off + i * kTrainRecBytes;
        uint32_t type = readU32(rec + 0);
        if (type >= events::kNumEventTypes ||
            static_cast<int>(type) <= prev_train)
            return util::Status::Errorf(
                "columnar: bad or out-of-order training type %u",
                type);
        prev_train = static_cast<int>(type);
        TrainingCols tc;
        tc.nfeat = readU32(rec + 4);
        tc.nout = readU32(rec + 8);
        uint32_t want_crc = readU32(rec + 12);
        tc.nrows = readU64(rec + 16);
        uint64_t feat_ids_off = readU64(rec + 24);
        uint64_t feat_cols_off = readU64(rec + 32);
        uint64_t labels_off = readU64(rec + 40);
        uint64_t weights_off = readU64(rec + 48);
        uint64_t out_ids_off = readU64(rec + 56);
        uint64_t out_cols_off = readU64(rec + 64);
        if ((tc.nfeat != 0 && tc.nrows > UINT64_MAX / tc.nfeat) ||
            (tc.nout != 0 && tc.nrows > UINT64_MAX / tc.nout))
            return util::Status::Error(
                "columnar: training column count overflow");
        if (!span(feat_ids_off, tc.nfeat, 4, 4) ||
            !span(feat_cols_off, tc.nrows * tc.nfeat, 8, 8) ||
            !span(labels_off, tc.nrows, 8, 8) ||
            !span(weights_off, tc.nrows, 8, 8) ||
            !span(out_ids_off, tc.nout, 4, 4) ||
            !span(out_cols_off, tc.nrows * tc.nout, 8, 8))
            return util::Status::Errorf(
                "columnar: training type %u arrays out of bounds",
                type);
        tc.feat_ids =
            reinterpret_cast<const uint32_t *>(base + feat_ids_off);
        tc.feat_cols =
            reinterpret_cast<const uint64_t *>(base + feat_cols_off);
        tc.labels =
            reinterpret_cast<const uint64_t *>(base + labels_off);
        tc.weights =
            reinterpret_cast<const uint64_t *>(base + weights_off);
        tc.out_ids =
            reinterpret_cast<const uint32_t *>(base + out_ids_off);
        tc.out_cols =
            reinterpret_cast<const uint64_t *>(base + out_cols_off);
        for (uint32_t f = 1; f < tc.nfeat; ++f) {
            if (tc.feat_ids[f] <= tc.feat_ids[f - 1])
                return util::Status::Errorf(
                    "columnar: training type %u feature ids not "
                    "ascending", type);
        }
        for (uint32_t o = 1; o < tc.nout; ++o) {
            if (tc.out_ids[o] <= tc.out_ids[o - 1])
                return util::Status::Errorf(
                    "columnar: training type %u output ids not "
                    "ascending", type);
        }
        if (trainingCrc(tc, mmap_backed_) != want_crc)
            return util::Status::Errorf(
                "columnar: training type %u crc mismatch (corrupt "
                "or truncated section)", type);
        training_[type] = tc;
        has_training_[type] = true;
    }
    return util::Status::Ok();
}

std::vector<events::EventType>
ColumnarLog::trainingTypes() const
{
    std::vector<events::EventType> out;
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        if (has_training_[t])
            out.push_back(static_cast<events::EventType>(t));
    }
    return out;
}

void
ColumnarLog::releaseResidency() const
{
    if (!mmap_backed_ || size_ == 0)
        return;
    dropPages(data_, size_);
}

util::Result<std::shared_ptr<const ColumnarLog>>
ColumnarLog::open(const std::string &path)
{
    // RAII descriptor: every exit path — including an allocation
    // throw while building the fallback buffer or an error Status —
    // closes it exactly once.
    struct Fd {
        int fd = -1;
        ~Fd()
        {
            if (fd >= 0)
                ::close(fd);
        }
    } fd;
    fd.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd.fd < 0)
        return util::Status::Errorf("columnar: cannot open '%s'",
                                    path.c_str());
    struct stat st;
    if (::fstat(fd.fd, &st) != 0 || st.st_size < 0)
        return util::Status::Errorf("columnar: cannot stat '%s'",
                                    path.c_str());
    size_t size = static_cast<size_t>(st.st_size);
    if (size > 0) {
        void *p =
            ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.fd, 0);
        if (p != MAP_FAILED) {
            // shared_ptr(p, d) invokes d(p) if the control block
            // cannot be allocated, so the mapping cannot leak; a
            // failed attach() unmaps when `owner` dies.
            std::shared_ptr<const void> owner(
                p, [size](const void *q) {
                    ::munmap(const_cast<void *>(q), size);
                });
            return attach(static_cast<const uint8_t *>(p), size,
                          std::move(owner), /*mmap_backed=*/true);
        }
    }
    // mmap unavailable (or empty file): read through the descriptor
    // we already hold rather than reopening by path, so the bytes
    // come from the same file the stat above measured.
    std::vector<uint8_t> bytes(size);
    size_t off = 0;
    while (off < size) {
        ssize_t n = ::read(fd.fd, bytes.data() + off, size - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return util::Status::Errorf(
                "columnar: short read on '%s'", path.c_str());
        off += static_cast<size_t>(n);
    }
    auto owned =
        std::make_shared<std::vector<uint8_t>>(std::move(bytes));
    return attach(owned->data(), owned->size(), owned);
}

util::Status
ColumnarLog::save(const std::vector<uint8_t> &bytes,
                  const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return util::Status::Errorf("columnar: cannot write '%s'",
                                    path.c_str());
    size_t wrote =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1,
                                        bytes.size(), f);
    bool ok = wrote == bytes.size() && std::fclose(f) == 0;
    if (!ok)
        return util::Status::Errorf("columnar: short write on '%s'",
                                    path.c_str());
    return util::Status::Ok();
}

void
ColumnarLog::event(size_t i, events::EventObject *ev) const
{
    uint8_t t = type_[i];
    const TypeCols &tc = types_[t];
    ev->type = static_cast<events::EventType>(t);
    ev->seq = seq_[i];
    uint64_t bits = ts_[i];
    double d;
    std::memcpy(&d, &bits, 8);
    ev->timestamp = d;
    uint64_t r = row_[i];
    ev->fields.resize(tc.nfields);
    for (uint32_t f = 0; f < tc.nfields; ++f)
        ev->fields[f] = {tc.ids[f], tc.cols[f * tc.nrows + r]};
}

void
ColumnarLog::toTrace(EventTrace *out) const
{
    out->game = game_;
    out->events.resize(nevents_);
    for (size_t i = 0; i < nevents_; ++i)
        event(i, &out->events[i]);
}

/* ----------------------------- TrainingWriter ------------------- */

/** Rows buffered per column before a flush. */
static constexpr size_t kWriterBufRows = 4096;

struct TrainingWriter::Impl {
    int fd = -1;
    std::string path;
    uint64_t nrows = 0;    // declared
    uint64_t added = 0;    // rows accepted so far
    uint64_t flushed = 0;  // rows already on disk
    uint32_t nfeat = 0, nout = 0;
    uint64_t feat_cols_off = 0, labels_off = 0, weights_off = 0;
    uint64_t out_cols_off = 0;
    uint64_t crc_field_off = 0;
    /** Per-column row buffers (kWriterBufRows capacity). */
    std::vector<std::vector<uint64_t>> feat_buf, out_buf;
    std::vector<uint64_t> label_buf, weight_buf;
    /** Per-column running CRCs, chained across flushes. */
    std::vector<uint32_t> feat_crc, out_crc;
    uint32_t label_crc = 0, weight_crc = 0;
    /** CRC prefix over the two id arrays (fixed at create()). */
    uint32_t ids_crc = 0;

    ~Impl()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

namespace {

/** Full pwrite with EINTR/short-write handling. */
util::Status
pwriteAll(int fd, const void *buf, size_t len, uint64_t off,
          const std::string &path)
{
    const uint8_t *p = static_cast<const uint8_t *>(buf);
    while (len > 0) {
        ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(off));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return util::Status::Errorf(
                "columnar: short write on '%s'", path.c_str());
        p += n;
        off += static_cast<uint64_t>(n);
        len -= static_cast<size_t>(n);
    }
    return util::Status::Ok();
}

}  // namespace

TrainingWriter::TrainingWriter() = default;
TrainingWriter::~TrainingWriter() = default;

util::Status
TrainingWriter::create(const std::string &path, const std::string &game,
                       events::EventType t,
                       const std::vector<uint32_t> &feat_ids,
                       const std::vector<uint32_t> &out_ids,
                       uint64_t nrows)
{
    if (impl_)
        return util::Status::Error("columnar: writer already open");
    for (auto *ids : {&feat_ids, &out_ids}) {
        for (size_t i = 1; i < ids->size(); ++i) {
            if ((*ids)[i] <= (*ids)[i - 1])
                return util::Status::Error(
                    "columnar: writer ids not ascending");
        }
    }

    auto impl = std::make_unique<Impl>();
    impl->path = path;
    impl->nrows = nrows;
    impl->nfeat = static_cast<uint32_t>(feat_ids.size());
    impl->nout = static_cast<uint32_t>(out_ids.size());

    // Same layout encodeTraining() emits for a single section.
    size_t game_len = game.size();
    size_t off = align8(kHeaderBytesV2 + game_len);
    size_t empty_off = off;
    size_t train_dir_off = off;
    off += kTrainRecBytes;
    size_t feat_ids_off = off;
    off = align8(off + feat_ids.size() * 4);
    size_t out_ids_off = off;
    off = align8(off + out_ids.size() * 4);
    impl->feat_cols_off = off;
    off += feat_ids.size() * nrows * 8;
    impl->labels_off = off;
    off += nrows * 8;
    impl->weights_off = off;
    off += nrows * 8;
    impl->out_cols_off = off;
    off += out_ids.size() * nrows * 8;
    size_t total = off;
    impl->crc_field_off = train_dir_off + 12;

    // The full prefix (header + game + directory + id arrays) is
    // tiny; build it in memory and write it once. The directory CRC
    // stays 0 until finish() patches it, so a crashed/abandoned
    // write is rejected by attach().
    std::vector<uint8_t> prefix(impl->feat_cols_off, 0);
    uint8_t *base = prefix.data();
    writeU32(base + 0, kColumnarMagic);
    writeU32(base + 4, kColumnarVersion);
    writeU64(base + 8, total);
    writeU64(base + 16, 0);  // nevents
    writeU32(base + 24, 0);  // ntypes
    writeU32(base + 28, static_cast<uint32_t>(game_len));
    for (size_t h = 32; h <= 64; h += 8)
        writeU64(base + h, empty_off);
    writeU64(base + 72, train_dir_off);
    writeU32(base + 80, 1);  // ntrain
    writeU32(base + 84, 0);
    std::memcpy(base + kHeaderBytesV2, game.data(), game_len);
    uint8_t *rec = base + train_dir_off;
    writeU32(rec + 0, static_cast<uint32_t>(t));
    writeU32(rec + 4, impl->nfeat);
    writeU32(rec + 8, impl->nout);
    writeU32(rec + 12, 0);  // crc patched by finish()
    writeU64(rec + 16, nrows);
    writeU64(rec + 24, feat_ids_off);
    writeU64(rec + 32, impl->feat_cols_off);
    writeU64(rec + 40, impl->labels_off);
    writeU64(rec + 48, impl->weights_off);
    writeU64(rec + 56, out_ids_off);
    writeU64(rec + 64, impl->out_cols_off);
    writeU64(rec + 72, 0);
    for (size_t f = 0; f < feat_ids.size(); ++f)
        writeU32(base + feat_ids_off + f * 4, feat_ids[f]);
    for (size_t o = 0; o < out_ids.size(); ++o)
        writeU32(base + out_ids_off + o * 4, out_ids[o]);

    impl->ids_crc =
        util::crc32(feat_ids.data(), feat_ids.size() * 4, 0);
    impl->ids_crc = util::crc32(out_ids.data(), out_ids.size() * 4,
                                impl->ids_crc);

    impl->fd = ::open(path.c_str(),
                      O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (impl->fd < 0)
        return util::Status::Errorf("columnar: cannot create '%s'",
                                    path.c_str());
    if (::ftruncate(impl->fd, static_cast<off_t>(total)) != 0)
        return util::Status::Errorf("columnar: cannot size '%s'",
                                    path.c_str());
    util::Status st =
        pwriteAll(impl->fd, prefix.data(), prefix.size(), 0, path);
    if (!st.ok())
        return st;

    impl->feat_buf.assign(impl->nfeat, {});
    impl->out_buf.assign(impl->nout, {});
    for (auto &b : impl->feat_buf)
        b.reserve(kWriterBufRows);
    for (auto &b : impl->out_buf)
        b.reserve(kWriterBufRows);
    impl->label_buf.reserve(kWriterBufRows);
    impl->weight_buf.reserve(kWriterBufRows);
    impl->feat_crc.assign(impl->nfeat, 0);
    impl->out_crc.assign(impl->nout, 0);
    impl_ = std::move(impl);
    return util::Status::Ok();
}

util::Status
TrainingWriter::flush()
{
    Impl &im = *impl_;
    size_t n = im.label_buf.size();
    if (n == 0)
        return util::Status::Ok();
    // Each buffered column slice lands at its column's next file
    // position; CRCs chain across flushes, so the per-column CRC at
    // finish() equals a one-pass CRC of the full column.
    auto put = [&](const std::vector<uint64_t> &buf, uint64_t col_off,
                   uint64_t col_index, uint64_t col_rows,
                   uint32_t *crc) {
        uint64_t off =
            col_off + (col_index * col_rows + im.flushed) * 8;
        *crc = util::crc32(buf.data(), n * 8, *crc);
        return pwriteAll(im.fd, buf.data(), n * 8, off, im.path);
    };
    for (uint32_t f = 0; f < im.nfeat; ++f) {
        util::Status st = put(im.feat_buf[f], im.feat_cols_off, f,
                              im.nrows, &im.feat_crc[f]);
        if (!st.ok())
            return st;
        im.feat_buf[f].clear();
    }
    util::Status st = put(im.label_buf, im.labels_off, 0, im.nrows,
                          &im.label_crc);
    if (!st.ok())
        return st;
    st = put(im.weight_buf, im.weights_off, 0, im.nrows,
             &im.weight_crc);
    if (!st.ok())
        return st;
    for (uint32_t o = 0; o < im.nout; ++o) {
        st = put(im.out_buf[o], im.out_cols_off, o, im.nrows,
                 &im.out_crc[o]);
        if (!st.ok())
            return st;
        im.out_buf[o].clear();
    }
    im.label_buf.clear();
    im.weight_buf.clear();
    im.flushed += n;
    return util::Status::Ok();
}

util::Status
TrainingWriter::addRow(const uint64_t *feat, uint64_t label,
                       uint64_t weight, const uint64_t *out)
{
    if (!impl_)
        return util::Status::Error("columnar: writer not open");
    Impl &im = *impl_;
    if (im.added >= im.nrows)
        return util::Status::Error(
            "columnar: writer row count exceeded");
    if (weight == 0)
        return util::Status::Error("columnar: writer weight 0");
    for (uint32_t f = 0; f < im.nfeat; ++f)
        im.feat_buf[f].push_back(feat[f]);
    for (uint32_t o = 0; o < im.nout; ++o)
        im.out_buf[o].push_back(out[o]);
    im.label_buf.push_back(label);
    im.weight_buf.push_back(weight);
    ++im.added;
    if (im.label_buf.size() >= kWriterBufRows)
        return flush();
    return util::Status::Ok();
}

util::Status
TrainingWriter::finish()
{
    if (!impl_)
        return util::Status::Error("columnar: writer not open");
    Impl &im = *impl_;
    if (im.added != im.nrows)
        return util::Status::Errorf(
            "columnar: writer got %llu of %llu declared rows",
            static_cast<unsigned long long>(im.added),
            static_cast<unsigned long long>(im.nrows));
    util::Status st = flush();
    if (!st.ok())
        return st;
    // Assemble the section CRC exactly as trainingCrc() would from
    // the finished file, then patch the directory record.
    uint32_t crc = im.ids_crc;
    for (uint32_t f = 0; f < im.nfeat; ++f)
        crc = util::crc32(&im.feat_crc[f], 4, crc);
    crc = util::crc32(&im.label_crc, 4, crc);
    crc = util::crc32(&im.weight_crc, 4, crc);
    for (uint32_t o = 0; o < im.nout; ++o)
        crc = util::crc32(&im.out_crc[o], 4, crc);
    uint8_t word[4];
    writeU32(word, crc);
    st = pwriteAll(im.fd, word, 4, im.crc_field_off, im.path);
    if (!st.ok())
        return st;
    bool ok = ::fsync(im.fd) == 0 && ::close(im.fd) == 0;
    im.fd = -1;
    impl_.reset();
    if (!ok)
        return util::Status::Error("columnar: writer close failed");
    return util::Status::Ok();
}

}  // namespace trace
}  // namespace snip
