/**
 * @file
 * Profile characterization: per-category input/output size spreads
 * (Fig. 7), useless-event and repeated-event rates (Fig. 4, §I),
 * and per-record byte accounting shared by the table-sizing
 * analyses (Figs. 6 and 8).
 */

#ifndef SNIP_TRACE_FIELD_STATS_H
#define SNIP_TRACE_FIELD_STATS_H

#include <cstdint>

#include "events/field.h"
#include "trace/profile.h"
#include "util/stats.h"

namespace snip {
namespace trace {

/** Byte totals of one record, split by category. */
struct RecordBytes {
    uint64_t in_event = 0;
    uint64_t in_history = 0;
    uint64_t in_extern = 0;
    uint64_t out_temp = 0;
    uint64_t out_history = 0;
    uint64_t out_extern = 0;

    uint64_t inputs() const { return in_event + in_history + in_extern; }
    uint64_t outputs() const
    {
        return out_temp + out_history + out_extern;
    }
};

/** Split one record's bytes by category. */
RecordBytes recordBytes(const games::HandlerExecution &ex,
                        const events::FieldSchema &schema);

/** Aggregated profile characterization. */
class FieldStatistics
{
  public:
    /** Analyze a profile against its game's schema. */
    FieldStatistics(const Profile &profile,
                    const events::FieldSchema &schema);

    /** Size spread of In.Event bytes across records that have any. */
    const util::EmpiricalCdf &inEventSizes() const { return inEvent_; }
    /** Size spread of In.History bytes (records that have any). */
    const util::EmpiricalCdf &inHistorySizes() const { return inHistory_; }
    /** Size spread of In.Extern bytes (records that have any). */
    const util::EmpiricalCdf &inExternSizes() const { return inExtern_; }
    /** Output-side spreads. */
    const util::EmpiricalCdf &outTempSizes() const { return outTemp_; }
    const util::EmpiricalCdf &outHistorySizes() const
    {
        return outHistory_;
    }
    const util::EmpiricalCdf &outExternSizes() const { return outExtern_; }

    /** Fraction of records consuming any In.Event / History / Extern. */
    double inEventPresence() const;
    double inHistoryPresence() const;
    double inExternPresence() const;

    /** Fraction of records that were useless (no output change). */
    double uselessFraction() const;
    /** Instruction-weighted useless fraction. */
    double uselessInstructionFraction() const;

    /**
     * Fraction of records whose *entire input record* (all fields,
     * noise included) exactly repeats an earlier record — the
     * paper's 2-5% "repeated events".
     */
    double exactRepeatFraction() const { return exactRepeatFraction_; }

    /**
     * Fraction of non-useless records whose output set exactly
     * matches some earlier record's outputs — the paper's
     * "redundant events" (output redundancy, up to 43%).
     */
    double outputRedundancyFraction() const
    {
        return outputRedundancyFraction_;
    }

    /** Number of records analyzed. */
    size_t recordCount() const { return count_; }

  private:
    size_t count_ = 0;
    size_t inEventPresent_ = 0;
    size_t inHistoryPresent_ = 0;
    size_t inExternPresent_ = 0;
    size_t useless_ = 0;
    uint64_t uselessInstr_ = 0;
    uint64_t totalInstr_ = 0;
    double exactRepeatFraction_ = 0.0;
    double outputRedundancyFraction_ = 0.0;
    util::EmpiricalCdf inEvent_;
    util::EmpiricalCdf inHistory_;
    util::EmpiricalCdf inExtern_;
    util::EmpiricalCdf outTemp_;
    util::EmpiricalCdf outHistory_;
    util::EmpiricalCdf outExtern_;
};

}  // namespace trace
}  // namespace snip

#endif  // SNIP_TRACE_FIELD_STATS_H
