#include "trace/profile.h"

#include <array>

namespace snip {
namespace trace {

uint64_t
Profile::totalInstructions() const
{
    uint64_t total = 0;
    for (const auto &r : records)
        total += r.cpu_instructions;
    return total;
}

std::vector<const games::HandlerExecution *>
Profile::ofType(events::EventType t) const
{
    std::vector<const games::HandlerExecution *> out;
    for (const auto &r : records)
        if (r.type == t)
            out.push_back(&r);
    return out;
}

std::vector<events::EventType>
Profile::typesPresent() const
{
    std::array<bool, events::kNumEventTypes> seen = {};
    for (const auto &r : records)
        seen[static_cast<int>(r.type)] = true;
    std::vector<events::EventType> types;
    for (int t = 0; t < events::kNumEventTypes; ++t)
        if (seen[t])
            types.push_back(static_cast<events::EventType>(t));
    return types;
}

void
Profile::append(const Profile &more)
{
    records.insert(records.end(), more.records.begin(),
                   more.records.end());
}

Profile
Profile::truncated(size_t n) const
{
    Profile p;
    p.game = game;
    p.records.assign(records.begin(),
                     records.begin() +
                         static_cast<long>(std::min(n, records.size())));
    return p;
}

util::Energy
dynamicEnergyOf(const games::HandlerExecution &ex,
                const soc::EnergyModel &model)
{
    util::Energy e = model.cpu_big_instr_j *
                     static_cast<double>(ex.cpu_instructions);
    e += model.mem_byte_j * static_cast<double>(ex.memory_bytes);
    for (const auto &c : ex.ip_calls)
        e += model.ip[static_cast<int>(c.kind)].work_j * c.work_units;
    return e;
}

}  // namespace trace
}  // namespace snip
