#include "trace/field_stats.h"

#include <unordered_set>

#include "util/bytes.h"

namespace snip {
namespace trace {

RecordBytes
recordBytes(const games::HandlerExecution &ex,
            const events::FieldSchema &schema)
{
    RecordBytes rb;
    for (const auto &fv : ex.inputs) {
        const auto &d = schema.def(fv.id);
        switch (d.in_cat) {
          case events::InputCategory::Event:
            rb.in_event += d.size_bytes;
            break;
          case events::InputCategory::History:
            rb.in_history += d.size_bytes;
            break;
          case events::InputCategory::Extern:
            rb.in_extern += d.size_bytes;
            break;
        }
    }
    for (const auto &fv : ex.outputs) {
        const auto &d = schema.def(fv.id);
        switch (d.out_cat) {
          case events::OutputCategory::Temp:
            rb.out_temp += d.size_bytes;
            break;
          case events::OutputCategory::History:
            rb.out_history += d.size_bytes;
            break;
          case events::OutputCategory::Extern:
            rb.out_extern += d.size_bytes;
            break;
        }
    }
    return rb;
}

FieldStatistics::FieldStatistics(const Profile &profile,
                                 const events::FieldSchema &schema)
{
    std::unordered_set<uint64_t> seen_inputs;
    std::unordered_set<uint64_t> seen_outputs;
    size_t exact_repeats = 0;
    size_t output_redundant = 0;
    size_t output_candidates = 0;

    for (const auto &ex : profile.records) {
        ++count_;
        totalInstr_ += ex.cpu_instructions;
        RecordBytes rb = recordBytes(ex, schema);

        if (rb.in_event) {
            ++inEventPresent_;
            inEvent_.add(static_cast<double>(rb.in_event));
        }
        if (rb.in_history) {
            ++inHistoryPresent_;
            inHistory_.add(static_cast<double>(rb.in_history));
        }
        if (rb.in_extern) {
            ++inExternPresent_;
            inExtern_.add(static_cast<double>(rb.in_extern));
        }
        if (rb.out_temp)
            outTemp_.add(static_cast<double>(rb.out_temp));
        if (rb.out_history)
            outHistory_.add(static_cast<double>(rb.out_history));
        if (rb.out_extern)
            outExtern_.add(static_cast<double>(rb.out_extern));

        if (ex.useless) {
            ++useless_;
            uselessInstr_ += ex.cpu_instructions;
        }

        uint64_t in_hash = events::hashFields(ex.inputs);
        if (!seen_inputs.insert(in_hash).second)
            ++exact_repeats;

        if (!ex.useless) {
            ++output_candidates;
            uint64_t out_hash = events::hashFields(ex.outputs);
            if (!seen_outputs.insert(out_hash).second)
                ++output_redundant;
        }
    }
    if (count_) {
        exactRepeatFraction_ =
            static_cast<double>(exact_repeats) /
            static_cast<double>(count_);
    }
    if (output_candidates) {
        outputRedundancyFraction_ =
            static_cast<double>(output_redundant) /
            static_cast<double>(output_candidates);
    }
}

double
FieldStatistics::inEventPresence() const
{
    return count_ ? static_cast<double>(inEventPresent_) /
                        static_cast<double>(count_)
                  : 0.0;
}

double
FieldStatistics::inHistoryPresence() const
{
    return count_ ? static_cast<double>(inHistoryPresent_) /
                        static_cast<double>(count_)
                  : 0.0;
}

double
FieldStatistics::inExternPresence() const
{
    return count_ ? static_cast<double>(inExternPresent_) /
                        static_cast<double>(count_)
                  : 0.0;
}

double
FieldStatistics::uselessFraction() const
{
    return count_ ? static_cast<double>(useless_) /
                        static_cast<double>(count_)
                  : 0.0;
}

double
FieldStatistics::uselessInstructionFraction() const
{
    return totalInstr_ ? static_cast<double>(uselessInstr_) /
                             static_cast<double>(totalInstr_)
                       : 0.0;
}

}  // namespace trace
}  // namespace snip
