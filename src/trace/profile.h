/**
 * @file
 * Profiles: the collected input/output records of event-handler
 * executions. The on-device tracer captures only the *event stream*
 * (EventTrace — cheap, what the phone uploads); the offline
 * replayer re-executes it against a fresh game instance to produce
 * the full Profile with every input/output field and cost, playing
 * the role of the paper's instrumented AOSP emulator.
 */

#ifndef SNIP_TRACE_PROFILE_H
#define SNIP_TRACE_PROFILE_H

#include <cstdint>
#include <vector>

#include "events/event.h"
#include "games/handler.h"
#include "soc/energy_model.h"

namespace snip {
namespace trace {

/** The event stream recorded on-device (paper Fig. 10, step 1). */
struct EventTrace {
    std::string game;
    std::vector<events::EventObject> events;
};

/** Full input/output profile built offline (Fig. 10, step 2). */
struct Profile {
    std::string game;
    std::vector<games::HandlerExecution> records;

    /** Total dynamic instructions across records. */
    uint64_t totalInstructions() const;

    /** Records of one event type. */
    std::vector<const games::HandlerExecution *>
    ofType(events::EventType t) const;

    /** Event types present, in enum order. */
    std::vector<events::EventType> typesPresent() const;

    /** Append another profile's records (continuous learning). */
    void append(const Profile &more);

    /** Keep only the first @p n records (insufficient-profile runs). */
    Profile truncated(size_t n) const;
};

/**
 * Estimate the dynamic energy one handler execution costs on the
 * SoC (CPU instructions + IP work + memory traffic). Used by the
 * characterization benches (Fig. 4's wasted-energy bars) without
 * running a full simulation.
 */
util::Energy dynamicEnergyOf(const games::HandlerExecution &ex,
                             const soc::EnergyModel &model);

}  // namespace trace
}  // namespace snip

#endif  // SNIP_TRACE_PROFILE_H
