/**
 * @file
 * Binary columnar event-trace format ("SNCT"): the replay-side
 * counterpart of the row-oriented "SNPE" transport encoding. A
 * ColumnarLog stores the trace as flat per-type value columns plus
 * global type/seq/timestamp arrays, so the fig/micro benches can
 * mmap a converted trace once and replay it without re-parsing the
 * row encoding per run — and a reader never materializes more than
 * the events it asks for (the seed of the out-of-core Shrink path).
 *
 * Layout (little-endian, all array offsets 8-aligned):
 *
 *   header (72 B): magic "SNCT", version, total_size u64,
 *     nevents u64, ntypes u32, game_len u32, then five u64 offsets:
 *     type_off  -> u8[nevents]   event type codes
 *     row_off   -> u32[nevents]  per-type row index (O(1) random
 *                                access into the type's columns)
 *     seq_off   -> u64[nevents]  sequence numbers
 *     ts_off    -> u64[nevents]  timestamps as raw double bits
 *                                (lossless, unlike SNPE's ns u64)
 *     dir_off   -> ntypes directory records
 *   game name bytes [game_len] at offset 72
 *   directory record (32 B): type u32, nfields u32, nrows u64,
 *     ids_off u64 -> u32[nfields], cols_off u64 ->
 *     u64[nrows * nfields] *column-major* (field f's values are
 *     adjacent: cols[f * nrows .. (f + 1) * nrows)).
 *
 * Events of one type always carry exactly the handler's event
 * fields in canonical order, which is what makes uniform per-type
 * columns valid; encode() rejects a trace violating that.
 *
 * Like the SNPE decoder, attach()/open() validate everything before
 * trusting it: a malformed, truncated, or bit-flipped file yields
 * an error Status, never UB.
 */

#ifndef SNIP_TRACE_COLUMNAR_LOG_H
#define SNIP_TRACE_COLUMNAR_LOG_H

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "trace/profile.h"
#include "util/status.h"

namespace snip {
namespace trace {

/** Columnar trace magic ("SNCT"), first word of the layout. */
constexpr uint32_t kColumnarMagic = 0x534e4354;
/** Columnar trace format version. */
constexpr uint32_t kColumnarVersion = 1;

/**
 * Immutable reader over a columnar trace buffer. All methods are
 * const; any number of threads may read concurrently.
 */
class ColumnarLog
{
  public:
    /**
     * Convert a row trace to the columnar encoding. Errors when the
     * rows of one event type do not share a single field-id set in
     * one order (the per-type columns would be ill-formed).
     */
    static util::Status encode(const EventTrace &trace,
                               std::vector<uint8_t> *out);

    /**
     * Attach a validated view over columnar bytes. Every offset,
     * count and type code is bounds-checked before the view is
     * returned. @p owner keeps the backing buffer alive (zero-copy);
     * misaligned buffers are copied into owned aligned storage.
     */
    static util::Result<std::shared_ptr<const ColumnarLog>>
    attach(const uint8_t *data, size_t size,
           std::shared_ptr<const void> owner);

    /**
     * Open a columnar trace file: mmap(2) when available (the
     * mapping is dropped with the last reader reference), falling
     * back to reading the file into an owned buffer.
     */
    static util::Result<std::shared_ptr<const ColumnarLog>>
    open(const std::string &path);

    /** Write encoded bytes to a file; error Status on I/O errors. */
    static util::Status save(const std::vector<uint8_t> &bytes,
                             const std::string &path);

    /** Game name recorded with the trace. */
    const std::string &game() const { return game_; }
    /** Number of events. */
    size_t eventCount() const { return nevents_; }
    /** Whether the buffer is a borrowed (mmap/attach) view. */
    bool zeroCopy() const { return owned_.empty(); }

    /**
     * Decode event @p i into @p ev, reusing its field storage (no
     * allocation once the vector capacity covers the widest type).
     */
    void event(size_t i, events::EventObject *ev) const;

    /** Materialize the whole trace back into row form. */
    void toTrace(EventTrace *out) const;

  private:
    ColumnarLog() = default;

    /** Decoded directory entry of one event type. */
    struct TypeCols {
        uint32_t nfields = 0;
        uint64_t nrows = 0;
        const uint32_t *ids = nullptr;
        const uint64_t *cols = nullptr;  // column-major
    };

    util::Status decode();

    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
    std::shared_ptr<const void> owner_;
    /** Owned storage (read fallback / misaligned attach). */
    std::vector<uint64_t> owned_;

    std::string game_;
    size_t nevents_ = 0;
    const uint8_t *type_ = nullptr;
    const uint32_t *row_ = nullptr;
    const uint64_t *seq_ = nullptr;
    const uint64_t *ts_ = nullptr;
    std::array<TypeCols, events::kNumEventTypes> types_{};
    /** Directory entry present for this type code. */
    std::array<bool, events::kNumEventTypes> has_type_{};
};

}  // namespace trace
}  // namespace snip

#endif  // SNIP_TRACE_COLUMNAR_LOG_H
