/**
 * @file
 * Binary columnar event-trace format ("SNCT"): the replay-side
 * counterpart of the row-oriented "SNPE" transport encoding. A
 * ColumnarLog stores the trace as flat per-type value columns plus
 * global type/seq/timestamp arrays, so the fig/micro benches can
 * mmap a converted trace once and replay it without re-parsing the
 * row encoding per run — and a reader never materializes more than
 * the events it asks for (the seed of the out-of-core Shrink path).
 *
 * Layout (little-endian, all array offsets 8-aligned):
 *
 *   header (72 B, v1): magic "SNCT", version, total_size u64,
 *     nevents u64, ntypes u32, game_len u32, then five u64 offsets:
 *     type_off  -> u8[nevents]   event type codes
 *     row_off   -> u32[nevents]  per-type row index (O(1) random
 *                                access into the type's columns)
 *     seq_off   -> u64[nevents]  sequence numbers
 *     ts_off    -> u64[nevents]  timestamps as raw double bits
 *                                (lossless, unlike SNPE's ns u64)
 *     dir_off   -> ntypes directory records
 *   game name bytes [game_len] at offset 72
 *   directory record (32 B): type u32, nfields u32, nrows u64,
 *     ids_off u64 -> u32[nfields], cols_off u64 ->
 *     u64[nrows * nfields] *column-major* (field f's values are
 *     adjacent: cols[f * nrows .. (f + 1) * nrows)).
 *
 * Version 2 extends the header to 88 B for *training sections* —
 * per-type feature/label/weight columns in exactly the shape the ML
 * layer trains on (ml::ChunkedDataset maps them directly):
 *
 *   header v2 additions: train_dir_off u64 at 72, ntrain u32 at 80,
 *     pad u32 at 84; the game name moves to offset 88.
 *   training directory record (80 B): type u32, nfeat u32, nout u32,
 *     crc u32, nrows u64, then six u64 offsets — feat_ids ->
 *     u32[nfeat] (ascending field ids), feat_cols ->
 *     u64[nfeat * nrows] column-major feature values (the
 *     union-of-locations matrix; kTrainingAbsent marks "record did
 *     not read this location"), labels -> u64[nrows] output-
 *     signature hashes, weights -> u64[nrows] max(1, instructions),
 *     out_ids -> u32[nout] and out_cols -> u64[nout * nrows] (the
 *     output fields, for reconstructing records, e.g. table
 *     prefill) — and a reserved u64. crc chains the per-column
 *     crc32 words (see columnar_log.cc) so bit flips anywhere in a
 *     section are rejected at attach() time.
 *
 * Events of one type always carry exactly the handler's event
 * fields in canonical order, which is what makes uniform per-type
 * columns valid; encode() rejects a trace violating that.
 *
 * Like the SNPE decoder, attach()/open() validate everything before
 * trusting it: a malformed, truncated, or bit-flipped file yields
 * an error Status, never UB. Training-section payloads are CRC-
 * verified with a streaming scan (block-sized, with MADV_DONTNEED
 * between blocks on mmap-backed views, so verifying a multi-GB
 * trace never grows RSS past one block).
 */

#ifndef SNIP_TRACE_COLUMNAR_LOG_H
#define SNIP_TRACE_COLUMNAR_LOG_H

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "trace/profile.h"
#include "util/status.h"

namespace snip {
namespace trace {

/** Columnar trace magic ("SNCT"), first word of the layout. */
constexpr uint32_t kColumnarMagic = 0x534e4354;
/** Columnar trace format version (2 adds training sections). */
constexpr uint32_t kColumnarVersion = 2;
/** Oldest version attach() still reads. */
constexpr uint32_t kColumnarMinVersion = 1;

/**
 * "Record did not read this location" marker in training feature /
 * output columns. ml::kAbsent mirrors this value (static_assert'd
 * where the two meet) so mapped columns feed the ML layer verbatim.
 */
constexpr uint64_t kTrainingAbsent = 0xab5e9700ab5e9700ULL;

/**
 * Immutable reader over a columnar trace buffer. All methods are
 * const; any number of threads may read concurrently.
 */
class ColumnarLog
{
  public:
    /**
     * Convert a row trace to the columnar encoding. Errors when the
     * rows of one event type do not share a single field-id set in
     * one order (the per-type columns would be ill-formed).
     */
    static util::Status encode(const EventTrace &trace,
                               std::vector<uint8_t> *out);

    /**
     * Encode a profile's per-type training sections (v2): for every
     * event type with records, the union-of-locations feature
     * matrix, output-signature labels, instruction weights and
     * output columns, in the exact shape ml::ChunkedDataset maps.
     * The result carries no event stream (nevents = 0).
     */
    static util::Status encodeTraining(const Profile &profile,
                                       std::vector<uint8_t> *out);

    /**
     * Attach a validated view over columnar bytes. Every offset,
     * count and type code is bounds-checked — and training sections
     * CRC-verified — before the view is returned. @p owner keeps
     * the backing buffer alive (zero-copy); misaligned buffers are
     * copied into owned aligned storage. @p mmap_backed marks the
     * buffer as a private file mapping whose clean pages the reader
     * may drop (releaseResidency / the streaming CRC verify).
     */
    static util::Result<std::shared_ptr<const ColumnarLog>>
    attach(const uint8_t *data, size_t size,
           std::shared_ptr<const void> owner,
           bool mmap_backed = false);

    /**
     * Open a columnar trace file: mmap(2) when available (the
     * mapping is dropped with the last reader reference), falling
     * back to reading the file into an owned buffer.
     */
    static util::Result<std::shared_ptr<const ColumnarLog>>
    open(const std::string &path);

    /** Write encoded bytes to a file; error Status on I/O errors. */
    static util::Status save(const std::vector<uint8_t> &bytes,
                             const std::string &path);

    /** Game name recorded with the trace. */
    const std::string &game() const { return game_; }
    /** Number of events. */
    size_t eventCount() const { return nevents_; }
    /** Whether the buffer is a borrowed (mmap/attach) view. */
    bool zeroCopy() const { return owned_.empty(); }
    /** Whether the buffer is a droppable private file mapping. */
    bool mmapBacked() const { return mmap_backed_; }

    /** Mapped training section of one event type (v2). */
    struct TrainingCols {
        uint32_t nfeat = 0;
        uint32_t nout = 0;
        uint64_t nrows = 0;
        const uint32_t *feat_ids = nullptr;  // ascending field ids
        const uint64_t *feat_cols = nullptr; // column-major
        const uint64_t *labels = nullptr;
        const uint64_t *weights = nullptr;
        const uint32_t *out_ids = nullptr;   // ascending field ids
        const uint64_t *out_cols = nullptr;  // column-major
    };

    /** Training section for @p t, or nullptr when absent. */
    const TrainingCols *training(events::EventType t) const
    {
        int i = static_cast<int>(t);
        return has_training_[i] ? &training_[i] : nullptr;
    }

    /** Event types with training sections, in enum order. */
    std::vector<events::EventType> trainingTypes() const;

    /**
     * Drop resident pages of an mmap-backed view (MADV_DONTNEED on
     * the private read-only mapping: clean pages refault from the
     * page cache on next touch). No-op otherwise; never changes the
     * bytes seen through the view.
     */
    void releaseResidency() const;

    /**
     * Decode event @p i into @p ev, reusing its field storage (no
     * allocation once the vector capacity covers the widest type).
     */
    void event(size_t i, events::EventObject *ev) const;

    /** Materialize the whole trace back into row form. */
    void toTrace(EventTrace *out) const;

  private:
    ColumnarLog() = default;

    /** Decoded directory entry of one event type. */
    struct TypeCols {
        uint32_t nfields = 0;
        uint64_t nrows = 0;
        const uint32_t *ids = nullptr;
        const uint64_t *cols = nullptr;  // column-major
    };

    util::Status decode();

    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
    std::shared_ptr<const void> owner_;
    /** Owned storage (read fallback / misaligned attach). */
    std::vector<uint64_t> owned_;

    std::string game_;
    size_t nevents_ = 0;
    bool mmap_backed_ = false;
    const uint8_t *type_ = nullptr;
    const uint32_t *row_ = nullptr;
    const uint64_t *seq_ = nullptr;
    const uint64_t *ts_ = nullptr;
    std::array<TypeCols, events::kNumEventTypes> types_{};
    /** Directory entry present for this type code. */
    std::array<bool, events::kNumEventTypes> has_type_{};
    std::array<TrainingCols, events::kNumEventTypes> training_{};
    std::array<bool, events::kNumEventTypes> has_training_{};
};

/**
 * Streaming writer of a v2 trace that holds ONE training section,
 * for generating / converting multi-GB training files with bounded
 * memory: the full layout (declared row count) is reserved up
 * front, rows are appended through a fixed-size buffer that flushes
 * each column slice to its file offset (pwrite), per-column CRCs
 * are chained across flushes, and finish() patches the section CRC.
 * The file is invalid (attach() rejects it) until finish() returns
 * Ok with exactly the declared number of rows added.
 */
class TrainingWriter
{
  public:
    TrainingWriter();
    ~TrainingWriter();
    TrainingWriter(const TrainingWriter &) = delete;
    TrainingWriter &operator=(const TrainingWriter &) = delete;

    /**
     * Create @p path and reserve the layout. @p feat_ids /
     * @p out_ids must be ascending; @p nrows is the exact row count
     * finish() will require.
     */
    util::Status create(const std::string &path,
                        const std::string &game, events::EventType t,
                        const std::vector<uint32_t> &feat_ids,
                        const std::vector<uint32_t> &out_ids,
                        uint64_t nrows);

    /**
     * Append one row: @p feat / @p out are parallel to the id
     * arrays given to create() (kTrainingAbsent for unread
     * locations); @p weight must be >= 1.
     */
    util::Status addRow(const uint64_t *feat, uint64_t label,
                        uint64_t weight, const uint64_t *out);

    /** Flush, patch CRCs, close. Errors unless rows == declared. */
    util::Status finish();

  private:
    util::Status flush();

    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace trace
}  // namespace snip

#endif  // SNIP_TRACE_COLUMNAR_LOG_H
