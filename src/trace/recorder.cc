#include "trace/recorder.h"

namespace snip {
namespace trace {

EventRecorder::EventRecorder(std::string game_name)
{
    trace_.game = std::move(game_name);
}

void
EventRecorder::onEvent(const events::EventObject &ev)
{
    trace_.events.push_back(ev);
}

Profile
Replayer::replay(const EventTrace &trace, games::Game &game)
{
    game.reset();
    Profile profile;
    profile.game = trace.game;
    profile.records.reserve(trace.events.size());
    for (const auto &ev : trace.events) {
        games::HandlerExecution ex = game.process(ev);
        game.applyOutputs(ex.outputs);
        profile.records.push_back(std::move(ex));
    }
    return profile;
}

}  // namespace trace
}  // namespace snip
