#include "trace/trace_log.h"

#include <cstdio>

#include "util/logging.h"

namespace snip {
namespace trace {

namespace {

constexpr uint32_t kEventTraceMagic = 0x534e5045;  // "SNPE"
constexpr uint32_t kProfileMagic = 0x534e5050;     // "SNPP"
constexpr uint32_t kVersion = 1;

void
encodeFields(const std::vector<events::FieldValue> &fields,
             util::ByteBuffer &buf)
{
    buf.putU32(static_cast<uint32_t>(fields.size()));
    for (const auto &fv : fields) {
        buf.putU32(fv.id);
        buf.putU64(fv.value);
    }
}

std::vector<events::FieldValue>
decodeFields(util::ByteBuffer &buf)
{
    uint32_t n = buf.getU32();
    std::vector<events::FieldValue> fields;
    fields.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        events::FieldValue fv;
        fv.id = buf.getU32();
        fv.value = buf.getU64();
        fields.push_back(fv);
    }
    return fields;
}

}  // namespace

void
encodeEventTrace(const EventTrace &trace, util::ByteBuffer &buf)
{
    buf.putU32(kEventTraceMagic);
    buf.putU32(kVersion);
    buf.putString(trace.game);
    buf.putU32(static_cast<uint32_t>(trace.events.size()));
    for (const auto &ev : trace.events) {
        buf.putU8(static_cast<uint8_t>(ev.type));
        buf.putU64(ev.seq);
        buf.putU64(static_cast<uint64_t>(ev.timestamp * 1e9));
        encodeFields(ev.fields, buf);
    }
}

EventTrace
decodeEventTrace(util::ByteBuffer &buf)
{
    if (buf.getU32() != kEventTraceMagic)
        util::fatal("decodeEventTrace: bad magic");
    if (buf.getU32() != kVersion)
        util::fatal("decodeEventTrace: unsupported version");
    EventTrace trace;
    trace.game = buf.getString();
    uint32_t n = buf.getU32();
    trace.events.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        events::EventObject ev;
        ev.type = static_cast<events::EventType>(buf.getU8());
        ev.seq = buf.getU64();
        ev.timestamp = static_cast<double>(buf.getU64()) * 1e-9;
        ev.fields = decodeFields(buf);
        trace.events.push_back(std::move(ev));
    }
    return trace;
}

void
encodeProfile(const Profile &profile, util::ByteBuffer &buf)
{
    buf.putU32(kProfileMagic);
    buf.putU32(kVersion);
    buf.putString(profile.game);
    buf.putU32(static_cast<uint32_t>(profile.records.size()));
    for (const auto &r : profile.records) {
        buf.putU8(static_cast<uint8_t>(r.type));
        buf.putU64(r.seq);
        encodeFields(r.inputs, buf);
        encodeFields(r.outputs, buf);
        buf.putU64(r.necessary_hash);
        buf.putU64(r.cpu_instructions);
        buf.putU64(r.memory_bytes);
        buf.putU32(static_cast<uint32_t>(r.ip_calls.size()));
        for (const auto &c : r.ip_calls) {
            buf.putU8(static_cast<uint8_t>(c.kind));
            buf.putU64(static_cast<uint64_t>(c.work_units * 1e6));
        }
        buf.putU64(static_cast<uint64_t>(r.maxcpu_fraction * 1e6));
        buf.putU8(static_cast<uint8_t>((r.state_changed ? 1 : 0) |
                                       (r.useless ? 2 : 0) |
                                       (r.scoring ? 4 : 0)));
    }
}

Profile
decodeProfile(util::ByteBuffer &buf)
{
    if (buf.getU32() != kProfileMagic)
        util::fatal("decodeProfile: bad magic");
    if (buf.getU32() != kVersion)
        util::fatal("decodeProfile: unsupported version");
    Profile profile;
    profile.game = buf.getString();
    uint32_t n = buf.getU32();
    profile.records.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        games::HandlerExecution r;
        r.type = static_cast<events::EventType>(buf.getU8());
        r.seq = buf.getU64();
        r.inputs = decodeFields(buf);
        r.outputs = decodeFields(buf);
        r.necessary_hash = buf.getU64();
        r.cpu_instructions = buf.getU64();
        r.memory_bytes = buf.getU64();
        uint32_t calls = buf.getU32();
        for (uint32_t c = 0; c < calls; ++c) {
            games::IpCall call;
            call.kind = static_cast<soc::IpKind>(buf.getU8());
            call.work_units = static_cast<double>(buf.getU64()) * 1e-6;
            r.ip_calls.push_back(call);
        }
        r.maxcpu_fraction = static_cast<double>(buf.getU64()) * 1e-6;
        uint8_t flags = buf.getU8();
        r.state_changed = flags & 1;
        r.useless = flags & 2;
        r.scoring = flags & 4;
        profile.records.push_back(std::move(r));
    }
    return profile;
}

void
saveBuffer(const util::ByteBuffer &buf, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        util::fatal("saveBuffer: cannot open %s for writing",
                    path.c_str());
    size_t written = std::fwrite(buf.data().data(), 1, buf.size(), f);
    std::fclose(f);
    if (written != buf.size())
        util::fatal("saveBuffer: short write to %s", path.c_str());
}

util::ByteBuffer
loadBuffer(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        util::fatal("loadBuffer: cannot open %s", path.c_str());
    util::ByteBuffer buf;
    uint8_t chunk[4096];
    size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        for (size_t i = 0; i < got; ++i)
            buf.putU8(chunk[i]);
    std::fclose(f);
    return buf;
}

}  // namespace trace
}  // namespace snip
