#include "trace/trace_log.h"

#include <cstdio>

#include "util/logging.h"

namespace snip {
namespace trace {

namespace {

constexpr uint32_t kEventTraceMagic = 0x534e5045;  // "SNPE"
constexpr uint32_t kProfileMagic = 0x534e5050;     // "SNPP"
constexpr uint32_t kVersion = 1;

/** Minimum encoded sizes, used to sanity-bound decoded counts. */
constexpr uint64_t kMinFieldBytes = 12;   // id u32 + value u64
constexpr uint64_t kMinEventBytes = 21;   // type + seq + ts + nfields
constexpr uint64_t kMinRecordBytes = 54;  // fixed record scalars
constexpr uint64_t kMinIpCallBytes = 9;   // kind u8 + work u64

void
encodeFields(const std::vector<events::FieldValue> &fields,
             util::ByteBuffer &buf)
{
    buf.putU32(static_cast<uint32_t>(fields.size()));
    for (const auto &fv : fields) {
        buf.putU32(fv.id);
        buf.putU64(fv.value);
    }
}

util::Status
decodeFields(util::ByteReader &r,
             std::vector<events::FieldValue> *fields)
{
    uint32_t n = r.u32();
    if (!r.fits(n, kMinFieldBytes))
        return util::Status::Error("truncated field list");
    fields->clear();
    fields->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        events::FieldValue fv;
        fv.id = r.u32();
        fv.value = r.u64();
        fields->push_back(fv);
    }
    return util::Status::Ok();
}

util::Status
checkHeader(util::ByteReader &r, uint32_t magic, const char *what)
{
    uint32_t got_magic = r.u32();
    uint32_t got_version = r.u32();
    if (!r.ok())
        return util::Status::Errorf("%s: truncated header", what);
    if (got_magic != magic)
        return util::Status::Errorf("%s: bad magic 0x%08x", what,
                                    got_magic);
    if (got_version != kVersion)
        return util::Status::Errorf(
            "%s: unsupported version %u (expected %u)", what,
            got_version, kVersion);
    return util::Status::Ok();
}

}  // namespace

void
encodeEventTrace(const EventTrace &trace, util::ByteBuffer &buf)
{
    buf.putU32(kEventTraceMagic);
    buf.putU32(kVersion);
    buf.putString(trace.game);
    buf.putU32(static_cast<uint32_t>(trace.events.size()));
    for (const auto &ev : trace.events) {
        buf.putU8(static_cast<uint8_t>(ev.type));
        buf.putU64(ev.seq);
        buf.putU64(static_cast<uint64_t>(ev.timestamp * 1e9));
        encodeFields(ev.fields, buf);
    }
}

util::Status
decodeEventTrace(util::ByteBuffer &buf, EventTrace *out)
{
    util::ByteReader r(buf);
    util::Status st =
        checkHeader(r, kEventTraceMagic, "decodeEventTrace");
    if (!st.ok())
        return st;
    EventTrace trace;
    trace.game = r.str();
    uint32_t n = r.u32();
    if (!r.fits(n, kMinEventBytes))
        return util::Status::Error(
            "decodeEventTrace: truncated event list");
    trace.events.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        events::EventObject ev;
        uint8_t type = r.u8();
        if (type >= events::kNumEventTypes)
            return util::Status::Errorf(
                "decodeEventTrace: bad event type %u", type);
        ev.type = static_cast<events::EventType>(type);
        ev.seq = r.u64();
        ev.timestamp = static_cast<double>(r.u64()) * 1e-9;
        st = decodeFields(r, &ev.fields);
        if (!st.ok())
            return st;
        trace.events.push_back(std::move(ev));
    }
    if (!r.ok())
        return util::Status::Error("decodeEventTrace: truncated");
    *out = std::move(trace);
    return util::Status::Ok();
}

void
encodeProfile(const Profile &profile, util::ByteBuffer &buf)
{
    buf.putU32(kProfileMagic);
    buf.putU32(kVersion);
    buf.putString(profile.game);
    buf.putU32(static_cast<uint32_t>(profile.records.size()));
    for (const auto &r : profile.records) {
        buf.putU8(static_cast<uint8_t>(r.type));
        buf.putU64(r.seq);
        encodeFields(r.inputs, buf);
        encodeFields(r.outputs, buf);
        buf.putU64(r.necessary_hash);
        buf.putU64(r.cpu_instructions);
        buf.putU64(r.memory_bytes);
        buf.putU32(static_cast<uint32_t>(r.ip_calls.size()));
        for (const auto &c : r.ip_calls) {
            buf.putU8(static_cast<uint8_t>(c.kind));
            buf.putU64(static_cast<uint64_t>(c.work_units * 1e6));
        }
        buf.putU64(static_cast<uint64_t>(r.maxcpu_fraction * 1e6));
        buf.putU8(static_cast<uint8_t>((r.state_changed ? 1 : 0) |
                                       (r.useless ? 2 : 0) |
                                       (r.scoring ? 4 : 0)));
    }
}

util::Status
decodeProfile(util::ByteBuffer &buf, Profile *out)
{
    util::ByteReader r(buf);
    util::Status st = checkHeader(r, kProfileMagic, "decodeProfile");
    if (!st.ok())
        return st;
    Profile profile;
    profile.game = r.str();
    uint32_t n = r.u32();
    if (!r.fits(n, kMinRecordBytes))
        return util::Status::Error(
            "decodeProfile: truncated record list");
    profile.records.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        games::HandlerExecution rec;
        uint8_t type = r.u8();
        if (r.ok() && type >= events::kNumEventTypes)
            return util::Status::Errorf(
                "decodeProfile: bad event type %u", type);
        rec.type = static_cast<events::EventType>(type);
        rec.seq = r.u64();
        st = decodeFields(r, &rec.inputs);
        if (!st.ok())
            return st;
        st = decodeFields(r, &rec.outputs);
        if (!st.ok())
            return st;
        rec.necessary_hash = r.u64();
        rec.cpu_instructions = r.u64();
        rec.memory_bytes = r.u64();
        uint32_t calls = r.u32();
        if (!r.fits(calls, kMinIpCallBytes))
            return util::Status::Error(
                "decodeProfile: truncated ip-call list");
        rec.ip_calls.reserve(calls);
        for (uint32_t c = 0; c < calls; ++c) {
            games::IpCall call;
            uint8_t kind = r.u8();
            if (r.ok() && kind >= soc::kNumIpKinds)
                return util::Status::Errorf(
                    "decodeProfile: bad ip kind %u", kind);
            call.kind = static_cast<soc::IpKind>(kind);
            call.work_units = static_cast<double>(r.u64()) * 1e-6;
            rec.ip_calls.push_back(call);
        }
        rec.maxcpu_fraction = static_cast<double>(r.u64()) * 1e-6;
        uint8_t flags = r.u8();
        rec.state_changed = flags & 1;
        rec.useless = flags & 2;
        rec.scoring = flags & 4;
        profile.records.push_back(std::move(rec));
    }
    if (!r.ok())
        return util::Status::Error("decodeProfile: truncated");
    *out = std::move(profile);
    return util::Status::Ok();
}

util::Status
saveBuffer(const util::ByteBuffer &buf, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return util::Status::Errorf(
            "saveBuffer: cannot open %s for writing", path.c_str());
    size_t written = std::fwrite(buf.data().data(), 1, buf.size(), f);
    int close_err = std::fclose(f);
    if (written != buf.size() || close_err != 0)
        return util::Status::Errorf("saveBuffer: short write to %s",
                                    path.c_str());
    return util::Status::Ok();
}

util::Status
loadBuffer(const std::string &path, util::ByteBuffer *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return util::Status::Errorf("loadBuffer: cannot open %s",
                                    path.c_str());
    util::ByteBuffer buf;
    uint8_t chunk[4096];
    size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        for (size_t i = 0; i < got; ++i)
            buf.putU8(chunk[i]);
    bool read_err = std::ferror(f) != 0;
    std::fclose(f);
    if (read_err)
        return util::Status::Errorf("loadBuffer: read error on %s",
                                    path.c_str());
    *out = std::move(buf);
    return util::Status::Ok();
}

}  // namespace trace
}  // namespace snip
