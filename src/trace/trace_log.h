/**
 * @file
 * Binary serialization of event traces and profiles — the "send to
 * cloud" / "over-the-air update" transport of the paper's Fig. 10
 * flow. Format is a small versioned little-endian encoding over
 * util::ByteBuffer, with file save/load helpers.
 */

#ifndef SNIP_TRACE_TRACE_LOG_H
#define SNIP_TRACE_TRACE_LOG_H

#include <string>

#include "trace/profile.h"
#include "util/bytes.h"

namespace snip {
namespace trace {

/** Serialize an event trace. */
void encodeEventTrace(const EventTrace &trace, util::ByteBuffer &buf);
/** Deserialize an event trace; fatal() on malformed input. */
EventTrace decodeEventTrace(util::ByteBuffer &buf);

/** Serialize a full profile. */
void encodeProfile(const Profile &profile, util::ByteBuffer &buf);
/** Deserialize a profile; fatal() on malformed input. */
Profile decodeProfile(util::ByteBuffer &buf);

/** Write a buffer to a file; fatal() on I/O errors. */
void saveBuffer(const util::ByteBuffer &buf, const std::string &path);
/** Read a file into a buffer; fatal() on I/O errors. */
util::ByteBuffer loadBuffer(const std::string &path);

}  // namespace trace
}  // namespace snip

#endif  // SNIP_TRACE_TRACE_LOG_H
