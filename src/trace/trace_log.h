/**
 * @file
 * Binary serialization of event traces and profiles — the "send to
 * cloud" / "over-the-air update" transport of the paper's Fig. 10
 * flow. Format is a small versioned little-endian encoding over
 * util::ByteBuffer, with file save/load helpers.
 *
 * Decoding is *recoverable*: these buffers arrive over real
 * transports, so a malformed, truncated, or version-mismatched
 * input returns an error Status instead of terminating — the caller
 * drops the upload (or falls back to baseline execution) and keeps
 * running.
 */

#ifndef SNIP_TRACE_TRACE_LOG_H
#define SNIP_TRACE_TRACE_LOG_H

#include <string>

#include "trace/profile.h"
#include "util/bytes.h"
#include "util/status.h"

namespace snip {
namespace trace {

/** Serialize an event trace. */
void encodeEventTrace(const EventTrace &trace, util::ByteBuffer &buf);
/** Deserialize an event trace; error Status on malformed input. */
util::Status decodeEventTrace(util::ByteBuffer &buf, EventTrace *out);

/** Serialize a full profile. */
void encodeProfile(const Profile &profile, util::ByteBuffer &buf);
/** Deserialize a profile; error Status on malformed input. */
util::Status decodeProfile(util::ByteBuffer &buf, Profile *out);

/** Write a buffer to a file; error Status on I/O errors. */
util::Status saveBuffer(const util::ByteBuffer &buf,
                        const std::string &path);
/** Read a file into a buffer; error Status on I/O errors. */
util::Status loadBuffer(const std::string &path,
                        util::ByteBuffer *out);

}  // namespace trace
}  // namespace snip

#endif  // SNIP_TRACE_TRACE_LOG_H
