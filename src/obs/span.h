/**
 * @file
 * Scoped wall-time spans with parent nesting.
 *
 * A Span times a region with std::chrono::steady_clock (monotonic —
 * this is telemetry about the host run, so the no-wall-clock rule
 * for simulated time does not apply) and, on destruction, records
 * the elapsed seconds into its registry under
 * `span.<parent-path>.<name>`. Nesting is tracked per thread: a
 * span opened while another is live on the same thread becomes its
 * child and inherits the dotted path prefix.
 *
 * Spans are for coarse phases (Shrink training, PFI, selection,
 * learning epochs) — constructing one builds the dotted path, so
 * they do not belong on per-event hot paths; use pre-resolved
 * Counter handles there. A Span built with a null registry is fully
 * inert: no clock read, no path, no thread-local update.
 */

#ifndef SNIP_OBS_SPAN_H
#define SNIP_OBS_SPAN_H

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace snip {
namespace obs {

/** RAII wall-time span; see file header for semantics. */
class Span
{
  public:
    /**
     * Open a span named `name` under the current thread's innermost
     * live span. A null registry disables the span entirely.
     */
    Span(Registry *reg, std::string_view name);

    /** Closes the span and records elapsed seconds. */
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Seconds since the span opened (0 when disabled). */
    double elapsedSeconds() const;

    /** Dotted path, e.g. "shrink.select.pfi" (empty when disabled). */
    const std::string &path() const { return path_; }

    /** The calling thread's innermost live span (may be null). */
    static const Span *current();

  private:
    Registry *reg_ = nullptr;
    Span *parent_ = nullptr;
    std::string path_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace snip

#endif  // SNIP_OBS_SPAN_H
