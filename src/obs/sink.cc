#include "obs/sink.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/table_printer.h"

namespace snip {
namespace obs {

namespace {

/** Minimal JSON string escape (names are ours, but be safe). */
std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** JSON number; non-finite values become 0 so output always parses. */
std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

void
writeTimerObject(std::ostream &os, const util::Summary &t)
{
    os << "{\"count\": " << t.count()
       << ", \"sum_s\": " << jsonNum(t.sum())
       << ", \"mean_s\": " << jsonNum(t.mean())
       << ", \"min_s\": " << jsonNum(t.min())
       << ", \"max_s\": " << jsonNum(t.max()) << "}";
}

void
writeHistogramObject(std::ostream &os, const util::Log2Histogram &h)
{
    os << "{\"count\": " << h.count() << ", \"buckets\": {";
    bool first = true;
    for (const auto &[bucket, n] : h.buckets()) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << bucket << "\": " << n;
    }
    os << "}}";
}

/** One human-readable line for a histogram's bucket counts. */
std::string
bucketSummary(const util::Log2Histogram &h)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &[bucket, n] : h.buckets()) {
        if (!first)
            os << " ";
        first = false;
        if (bucket == util::Log2Histogram::kUnderflowBucket)
            os << "<1:" << n;
        else
            os << bucket << ":" << n;
    }
    return os.str();
}

}  // namespace

void
JsonSink::write(const Registry &reg)
{
    os_ << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : reg.counters()) {
        os_ << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
            << "\": " << c.value();
        first = false;
    }
    os_ << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : reg.gauges()) {
        os_ << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
            << "\": " << jsonNum(g.value());
        first = false;
    }
    os_ << (first ? "" : "\n  ") << "},\n  \"timers\": {";
    first = true;
    for (const auto &[name, t] : reg.timers()) {
        os_ << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
            << "\": ";
        writeTimerObject(os_, t);
        first = false;
    }
    os_ << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : reg.histograms()) {
        os_ << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
            << "\": ";
        writeHistogramObject(os_, h);
        first = false;
    }
    os_ << (first ? "" : "\n  ") << "}\n}\n";
}

void
TableSink::write(const Registry &reg)
{
    if (!reg.counters().empty()) {
        util::TablePrinter t({"counter", "value"});
        for (const auto &[name, c] : reg.counters())
            t.addRow({name, std::to_string(c.value())});
        t.print(os_);
        os_ << "\n";
    }
    if (!reg.gauges().empty()) {
        util::TablePrinter t({"gauge", "value"});
        for (const auto &[name, g] : reg.gauges())
            t.addRow({name, util::TablePrinter::num(g.value(), 4)});
        t.print(os_);
        os_ << "\n";
    }
    if (!reg.timers().empty()) {
        util::TablePrinter t(
            {"timer", "count", "sum s", "mean s", "max s"});
        for (const auto &[name, s] : reg.timers()) {
            t.addRow({name, std::to_string(s.count()),
                      util::TablePrinter::num(s.sum(), 4),
                      util::TablePrinter::num(s.mean(), 4),
                      util::TablePrinter::num(s.max(), 4)});
        }
        t.print(os_);
        os_ << "\n";
    }
    if (!reg.histograms().empty()) {
        util::TablePrinter t({"histogram", "count", "buckets"});
        for (const auto &[name, h] : reg.histograms()) {
            t.addRow({name, std::to_string(h.count()),
                      bucketSummary(h)});
        }
        t.print(os_);
        os_ << "\n";
    }
}

std::string
toJson(const Registry &reg)
{
    std::ostringstream os;
    JsonSink sink(os);
    sink.write(reg);
    return os.str();
}

util::Status
writeJsonFile(const Registry &reg, const std::string &path)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return util::Status::Errorf("obs: cannot open %s for write",
                                    path.c_str());
    f << toJson(reg);
    f.flush();
    if (!f)
        return util::Status::Errorf("obs: short write to %s",
                                    path.c_str());
    return util::Status::Ok();
}

}  // namespace obs
}  // namespace snip
