/**
 * @file
 * Pluggable export sinks for an obs::Registry snapshot: a JSON
 * exporter (machine-readable, consumed by tools/ci.sh and the bench
 * `--obs-json` flag), a human-readable table via util::TablePrinter
 * (`snip stats`), and a NullSink for callers that must hand a sink
 * somewhere but want observability off. Note the cheaper and more
 * common way to disable observability is a null `Registry *` at the
 * instrumentation site — see obs/metrics.h for the overhead
 * contract.
 */

#ifndef SNIP_OBS_SINK_H
#define SNIP_OBS_SINK_H

#include <ostream>
#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace snip {
namespace obs {

/** Consumes a registry snapshot. */
class Sink
{
  public:
    virtual ~Sink() = default;

    /** Export the registry's current contents. */
    virtual void write(const Registry &reg) = 0;
};

/** Discards everything. */
class NullSink final : public Sink
{
  public:
    void write(const Registry &) override {}
};

/**
 * Writes one JSON object:
 * `{"counters": {...}, "gauges": {...}, "timers": {name:
 * {count,sum_s,mean_s,min_s,max_s}}, "histograms": {name:
 * {count, buckets: {"<lower-bound>": n}}}}`.
 * Non-finite gauge values serialize as 0 so the output always
 * parses.
 */
class JsonSink final : public Sink
{
  public:
    explicit JsonSink(std::ostream &os) : os_(os) {}

    void write(const Registry &reg) override;

  private:
    std::ostream &os_;
};

/** Renders per-kind tables through util::TablePrinter. */
class TableSink final : public Sink
{
  public:
    explicit TableSink(std::ostream &os) : os_(os) {}

    void write(const Registry &reg) override;

  private:
    std::ostream &os_;
};

/** The JsonSink output as a string. */
std::string toJson(const Registry &reg);

/** Write the JsonSink output to a file. */
util::Status writeJsonFile(const Registry &reg,
                           const std::string &path);

}  // namespace obs
}  // namespace snip

#endif  // SNIP_OBS_SINK_H
