#include "obs/metrics.h"

#include "util/task_pool.h"

namespace snip {
namespace obs {

namespace {

/**
 * Heterogeneous find-or-create: the std::string key is only
 * materialized on the first reference to a name.
 */
template <typename Map>
typename Map::mapped_type &
findOrCreate(Map &m, std::string_view name)
{
    auto it = m.find(name);
    if (it == m.end()) {
        it = m.emplace(std::string(name),
                       typename Map::mapped_type{}).first;
    }
    return it->second;
}

}  // namespace

Counter &
Registry::counter(std::string_view name)
{
    return findOrCreate(counters_, name);
}

Gauge &
Registry::gauge(std::string_view name)
{
    return findOrCreate(gauges_, name);
}

util::Summary &
Registry::timer(std::string_view name)
{
    return findOrCreate(timers_, name);
}

util::Log2Histogram &
Registry::histogram(std::string_view name)
{
    return findOrCreate(histograms_, name);
}

uint64_t
Registry::counterValue(std::string_view name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
Registry::gaugeValue(std::string_view name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second.value();
}

const util::Summary *
Registry::findTimer(std::string_view name) const
{
    auto it = timers_.find(name);
    return it == timers_.end() ? nullptr : &it->second;
}

const util::Log2Histogram *
Registry::findHistogram(std::string_view name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
Registry::merge(const Registry &other)
{
    for (const auto &[name, c] : other.counters_)
        counter(name).add(c.value());
    for (const auto &[name, g] : other.gauges_)
        gauge(name).set(g.value());
    for (const auto &[name, t] : other.timers_)
        timer(name).merge(t);
    for (const auto &[name, h] : other.histograms_)
        histogram(name).merge(h);
}

bool
Registry::empty() const
{
    return counters_.empty() && gauges_.empty() && timers_.empty() &&
           histograms_.empty();
}

Registry &
ShardedRegistry::local()
{
    std::lock_guard<std::mutex> lock(mu_);
    auto id = std::this_thread::get_id();
    auto it = by_thread_.find(id);
    if (it == by_thread_.end()) {
        shards_.emplace_back();
        it = by_thread_.emplace(id, &shards_.back()).first;
    }
    return *it->second;
}

std::vector<const Registry *>
ShardedRegistry::shards() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<const Registry *> out;
    out.reserve(shards_.size());
    for (const Registry &r : shards_)
        out.push_back(&r);
    return out;
}

void
ShardedRegistry::mergeInto(Registry &target) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const Registry &r : shards_)
        target.merge(r);
}

void
exportTaskPoolStats(Registry &reg)
{
    const util::TaskPool &pool = util::TaskPool::instance();
    util::TaskPool::Stats s = pool.stats();
    reg.gauge("pool.size").set(static_cast<double>(pool.size()));
    reg.gauge("pool.threads_spawned")
        .set(static_cast<double>(s.threads_spawned));
    reg.gauge("pool.tasks").set(static_cast<double>(s.tasks));
    reg.gauge("pool.steals").set(static_cast<double>(s.steals));
    reg.gauge("pool.overflow").set(static_cast<double>(s.overflow));
    reg.gauge("pool.park_ns").set(static_cast<double>(s.park_ns));
}

}  // namespace obs
}  // namespace snip
