#include "obs/span.h"

namespace snip {
namespace obs {

namespace {

/** Innermost live span on this thread; nesting is per-thread only. */
thread_local Span *t_current = nullptr;

}  // namespace

Span::Span(Registry *reg, std::string_view name) : reg_(reg)
{
    if (!reg_)
        return;
    parent_ = t_current;
    if (parent_) {
        path_.reserve(parent_->path_.size() + 1 + name.size());
        path_ = parent_->path_;
        path_ += '.';
        path_ += name;
    } else {
        path_ = name;
    }
    t_current = this;
    start_ = std::chrono::steady_clock::now();
}

Span::~Span()
{
    if (!reg_)
        return;
    double s = elapsedSeconds();
    std::string key;
    key.reserve(5 + path_.size());
    key = "span.";
    key += path_;
    reg_->timer(key).add(s);
    t_current = parent_;
}

double
Span::elapsedSeconds() const
{
    if (!reg_)
        return 0.0;
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(d).count();
}

const Span *
Span::current()
{
    return t_current;
}

}  // namespace obs
}  // namespace snip
