/**
 * @file
 * Runtime observability: a low-overhead metrics registry.
 *
 * The Deploy/continuous-learning loop (paper §4–5) is operated by
 * watching the deployed table's hit rate, erroneous-output rate, and
 * lookup overhead. obs::Registry is the single place those signals
 * accumulate: named monotonic counters, last-value gauges,
 * util::Summary timers (fed by obs::Span), and util::Log2Histogram
 * size spreads.
 *
 * Overhead contract: observability is disabled by default. Every
 * instrumented call site holds an `obs::Registry *` that is nullptr
 * unless the caller opted in, so the disabled hot path costs exactly
 * one predictable branch and zero allocations. Hot loops resolve
 * `Counter *` handles once up front (name lookup happens outside the
 * loop) and bump plain uint64_t fields inside it.
 *
 * Thread safety: a Registry is single-writer, like the rest of the
 * runtime's per-session state. Parallel phases (util::parallelFor
 * bodies) write into per-worker shards of a ShardedRegistry and
 * merge them into the main registry at join — see computePfi for
 * the canonical use.
 *
 * The metric namespace (dotted lower_snake segments: `lookup.*`,
 * `decide.*`, `session.*`, `span.shrink.*`, `learn.*`, `table.*`)
 * is documented in DESIGN.md.
 */

#ifndef SNIP_OBS_METRICS_H
#define SNIP_OBS_METRICS_H

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/stats.h"

namespace snip {
namespace obs {

/**
 * Monotonic event count. References handed out by Registry stay
 * valid for the registry's lifetime (node-stable storage), so hot
 * paths resolve once and bump through the pointer.
 */
class Counter
{
  public:
    /** Increment by `by` (default 1). */
    void add(uint64_t by = 1) { value_ += by; }

    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/** Last-value instantaneous measurement (rates, sizes, joules). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }

    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Named metric registry. Metrics are created on first reference and
 * live as long as the registry; lookups by existing name allocate
 * nothing (heterogeneous string_view find).
 */
class Registry
{
  public:
    using CounterMap = std::map<std::string, Counter, std::less<>>;
    using GaugeMap = std::map<std::string, Gauge, std::less<>>;
    using TimerMap = std::map<std::string, util::Summary, std::less<>>;
    using HistogramMap =
        std::map<std::string, util::Log2Histogram, std::less<>>;

    /** Find-or-create; the returned reference is stable. */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    /** Timers are Summaries of seconds, fed by obs::Span. */
    util::Summary &timer(std::string_view name);
    util::Log2Histogram &histogram(std::string_view name);

    /** Read a counter; 0 when absent. */
    uint64_t counterValue(std::string_view name) const;
    /** Read a gauge; 0.0 when absent. */
    double gaugeValue(std::string_view name) const;
    /** Read-only lookups; nullptr when absent. */
    const util::Summary *findTimer(std::string_view name) const;
    const util::Log2Histogram *
    findHistogram(std::string_view name) const;

    /**
     * Fold another registry into this one: counters sum, timers and
     * histograms merge, gauges take the other's value (last writer
     * wins — recompute derived rates after merging shards).
     */
    void merge(const Registry &other);

    /** True when no metric has been created. */
    bool empty() const;

    /** Ordered views for sinks. */
    const CounterMap &counters() const { return counters_; }
    const GaugeMap &gauges() const { return gauges_; }
    const TimerMap &timers() const { return timers_; }
    const HistogramMap &histograms() const { return histograms_; }

  private:
    CounterMap counters_;
    GaugeMap gauges_;
    TimerMap timers_;
    HistogramMap histograms_;
};

/**
 * Per-worker registry shards for parallel phases. Each worker calls
 * local() once at task start (mutex-guarded create-on-first-use,
 * lock-free after that thread's shard exists is NOT guaranteed —
 * callers should hold the returned reference for the task body) and
 * writes to its own shard; the coordinating thread merges all
 * shards into the main registry after the parallelFor join.
 */
class ShardedRegistry
{
  public:
    /** This thread's shard (created on first use). */
    Registry &local();

    /** All shards, in creation order. Call only after the join. */
    std::vector<const Registry *> shards() const;

    /** Merge every shard into `target` (after the join). */
    void mergeInto(Registry &target) const;

  private:
    mutable std::mutex mu_;
    /** Node-stable so local() references survive later creates. */
    std::deque<Registry> shards_;
    std::map<std::thread::id, Registry *> by_thread_;
};

/**
 * Snapshot the process-wide util::TaskPool counters into `reg` as
 * `pool.*` gauges: threads_spawned, size, tasks, steals, overflow,
 * park_ns. Gauges (not counters) because the pool totals are
 * process-lifetime monotonic values, not per-phase deltas — call
 * this once per export, after any shard merging, so a merged
 * registry doesn't double-count them.
 */
void exportTaskPoolStats(Registry &reg);

}  // namespace obs
}  // namespace snip

#endif  // SNIP_OBS_METRICS_H
