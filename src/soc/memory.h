/**
 * @file
 * LPDDR4 memory model charged per byte moved, with background
 * refresh power. Event-object transfers (Binder), handler data
 * traffic, and memoization-table lookups all account here.
 */

#ifndef SNIP_SOC_MEMORY_H
#define SNIP_SOC_MEMORY_H

#include <cstdint>

#include "soc/component.h"
#include "soc/energy_model.h"

namespace snip {
namespace soc {

/** Per-byte LPDDR4 energy model. */
class Memory : public Component
{
  public:
    /** Construct from the model constants. */
    explicit Memory(const EnergyModel &model);

    /** Charge a transfer of @p bytes (read or write). */
    void access(uint64_t bytes);

    /** Total bytes moved so far. */
    uint64_t bytesMoved() const { return bytes_; }

    void reset() override;

  private:
    util::Energy byteJ_;
    double bytesPerS_ = 1.0;
    uint64_t bytes_ = 0;
};

}  // namespace soc
}  // namespace snip

#endif  // SNIP_SOC_MEMORY_H
