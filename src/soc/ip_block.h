/**
 * @file
 * Accelerator/IP block model. Every IP is charged per "work unit"
 * (a render job, a composed frame, a decoded block, an ISP frame,
 * a DSP kernel, an audio buffer) and supports the Active/Idle/Sleep
 * power-state machine exploited by the Max-IP baseline.
 */

#ifndef SNIP_SOC_IP_BLOCK_H
#define SNIP_SOC_IP_BLOCK_H

#include <cstdint>

#include "soc/component.h"
#include "soc/energy_model.h"

namespace snip {
namespace soc {

/**
 * A single IP block. Invocations wake the block if it sleeps,
 * charge work energy, and count invocations/work for the reports.
 */
class IpBlock : public Component
{
  public:
    /**
     * @param kind Which IP this is.
     * @param params Energy/power parameters for this IP.
     */
    IpBlock(IpKind kind, const IpParams &params);

    /** Which IP kind this block is. */
    IpKind kind() const { return kind_; }

    /**
     * Run @p work_units of work on this IP. Wakes the block from
     * sleep (charging wake energy) and records busy time.
     */
    void invoke(double work_units);

    /** Number of invoke() calls so far. */
    uint64_t invocations() const { return invocations_; }
    /** Total work units executed. */
    double workUnits() const { return work_; }

    void reset() override;

  private:
    IpKind kind_;
    util::Energy workJ_;
    util::Time unitTimeS_ = 0.0;
    uint64_t invocations_ = 0;
    double work_ = 0.0;
};

}  // namespace soc
}  // namespace snip

#endif  // SNIP_SOC_IP_BLOCK_H
