/**
 * @file
 * Per-operation energy and static-power constants of the simulated
 * SoC. The default values are calibrated so that (a) the component
 * energy breakdown of the seven game workloads matches the paper's
 * Fig. 2 bands (CPU 40-60%, IPs 34-51%, sensors+memory < 10%) and
 * (b) whole-device power lands in the paper's Fig. 3 battery-drain
 * range (idle ~20 h, Colorphun ~8.5 h, Race Kings ~3 h on a
 * 3450 mAh pack).
 *
 * These are *model* constants, not measurements; see DESIGN.md §2.
 */

#ifndef SNIP_SOC_ENERGY_MODEL_H
#define SNIP_SOC_ENERGY_MODEL_H

#include "util/units.h"

namespace snip {
namespace soc {

/** Kinds of accelerator/IP blocks on the SoC. */
enum class IpKind {
    Gpu = 0,    ///< 3D render / compute jobs.
    Display,    ///< Composition + panel refresh.
    Codec,      ///< Video/image encode/decode.
    CameraIsp,  ///< Camera image signal processor.
    Dsp,        ///< Hexagon-class DSP (physics/audio effects).
    Audio,      ///< Audio output pipeline.
    NumKinds,
};

/** Number of IP kinds. */
constexpr int kNumIpKinds = static_cast<int>(IpKind::NumKinds);

/** Display name of an IP kind. */
const char *ipKindName(IpKind k);

/** Per-IP energy/power parameters. */
struct IpParams {
    /** Dynamic energy per unit of work (J/work-unit). */
    util::Energy work_j;
    /** Static power while Active (W). */
    util::Power active_static_w;
    /** Static power while Idle (W). */
    util::Power idle_static_w;
    /** Static power while power-gated (W). */
    util::Power sleep_static_w;
    /** One-time energy to wake from Sleep (J). */
    util::Energy wake_j;
    /** Execution time per unit of work (s) — drives busy time. */
    util::Time unit_time_s;
};

/**
 * The full constant set. Construct via snapdragon821() for the
 * calibrated defaults, or tweak fields for ablations.
 */
struct EnergyModel {
    /** CPU dynamic energy per instruction, performance cluster (J). */
    util::Energy cpu_big_instr_j = util::nanojoules(0.45);
    /** CPU dynamic energy per instruction, efficiency cluster (J). */
    util::Energy cpu_little_instr_j = util::nanojoules(0.16);
    /** CPU static power while Active (W). */
    util::Power cpu_active_static_w = util::milliwatts(220);
    /** CPU static power while Idle (W). */
    util::Power cpu_idle_static_w = util::milliwatts(45);
    /** CPU static power in cluster sleep (W). */
    util::Power cpu_sleep_static_w = util::milliwatts(6);
    /** Effective CPU throughput (giga-instructions/s, all cores). */
    double cpu_giga_ips = 2.6;

    /** DRAM dynamic energy per byte moved (J). */
    util::Energy mem_byte_j = util::nanojoules(0.35);
    /** DRAM background/refresh power (W). */
    util::Power mem_static_w = util::milliwatts(38);
    /** DRAM sustained bandwidth (bytes/s) — drives busy time. */
    double mem_bytes_per_s = 12e9;

    /** Sensor-hub energy per raw sensor sample (J). */
    util::Energy sensor_sample_j = util::microjoules(3.5);
    /** Camera sensor (not ISP) energy per captured frame (J). */
    util::Energy camera_frame_j = util::microjoules(110);
    /** Sensor hub static power (W). */
    util::Power sensor_static_w = util::milliwatts(14);

    /** Per-IP parameters, indexed by IpKind. */
    IpParams ip[kNumIpKinds] = {};

    /**
     * Platform rest-of-system power (PMIC, RF, misc rails) while the
     * device is in use (W) and while idle in the pocket (W). Kept
     * outside the four Fig. 2 groups.
     */
    util::Power platform_active_w = util::milliwatts(300);
    util::Power platform_idle_w = util::milliwatts(210);

    /** Battery pack capacity (mAh) and nominal voltage (V). */
    double battery_mah = 3450.0;
    double battery_volts = 3.85;

    /** Calibrated Snapdragon-821-class defaults. */
    static EnergyModel snapdragon821();
};

}  // namespace soc
}  // namespace snip

#endif  // SNIP_SOC_ENERGY_MODEL_H
