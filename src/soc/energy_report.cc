#include "soc/energy_report.h"

#include <sstream>

#include "util/logging.h"

namespace snip {
namespace soc {

const char *
energyGroupName(EnergyGroup g)
{
    switch (g) {
      case EnergyGroup::Sensors: return "sensors";
      case EnergyGroup::Memory: return "memory";
      case EnergyGroup::Cpu: return "cpu";
      case EnergyGroup::Ips: return "ips";
      case EnergyGroup::Platform: return "platform";
      case EnergyGroup::NumGroups: break;
    }
    return "?";
}

EnergyReport::EnergyReport(std::vector<ComponentEnergy> components,
                           util::Time elapsed)
    : components_(std::move(components)), elapsed_(elapsed)
{
    if (elapsed_ <= 0)
        util::panic("EnergyReport: non-positive elapsed time %f", elapsed_);
    for (const auto &c : components_) {
        total_ += c.total();
        group_[static_cast<int>(c.group)] += c.total();
    }
}

util::Energy
EnergyReport::groupEnergy(EnergyGroup g) const
{
    return group_[static_cast<int>(g)];
}

double
EnergyReport::socGroupFraction(EnergyGroup g) const
{
    util::Energy soc_total = groupEnergy(EnergyGroup::Sensors) +
                             groupEnergy(EnergyGroup::Memory) +
                             groupEnergy(EnergyGroup::Cpu) +
                             groupEnergy(EnergyGroup::Ips);
    if (soc_total <= 0)
        return 0.0;
    return groupEnergy(g) / soc_total;
}

util::Power
EnergyReport::averagePower() const
{
    return elapsed_ > 0 ? total_ / elapsed_ : 0.0;
}

std::string
EnergyReport::toString() const
{
    std::ostringstream os;
    os << "energy report (" << util::formatTime(elapsed_) << ", "
       << util::formatEnergy(total_) << ", "
       << util::formatPower(averagePower()) << " avg)\n";
    for (const auto &c : components_) {
        os << "  " << c.name << " [" << energyGroupName(c.group) << "]: "
           << util::formatEnergy(c.total())
           << " (dyn " << util::formatEnergy(c.dynamic_j)
           << ", static " << util::formatEnergy(c.static_j) << ")\n";
    }
    return os.str();
}

}  // namespace soc
}  // namespace snip
