#include "soc/component.h"

#include <algorithm>

#include "util/logging.h"

namespace snip {
namespace soc {

Component::Component(std::string name, util::Power active_static_w,
                     util::Power idle_static_w, util::Power sleep_static_w)
    : name_(std::move(name)),
      activeStaticW_(active_static_w),
      idleStaticW_(idle_static_w),
      sleepStaticW_(sleep_static_w)
{
    if (activeStaticW_ < 0 || idleStaticW_ < 0 || sleepStaticW_ < 0)
        util::fatal("component %s: negative static power", name_.c_str());
}

void
Component::recordBusy(util::Time t)
{
    if (t < 0)
        util::panic("component %s: negative busy time %g",
                    name_.c_str(), t);
    if (t == 0)
        return;
    setSleeping(false);  // work wakes the block
    pendingBusy_ += t;
}

void
Component::accrue(util::Time dt)
{
    if (dt < 0)
        util::panic("component %s: negative dt %g", name_.c_str(), dt);
    util::Time active_t = std::min(pendingBusy_, dt);
    pendingBusy_ -= active_t;
    busyAccrued_ += active_t;
    util::Time rest = dt - active_t;
    util::Power floor_w = sleeping_ ? sleepStaticW_ : idleStaticW_;
    static_ += activeStaticW_ * active_t + floor_w * rest;
}

void
Component::setSleeping(bool sleeping)
{
    if (sleeping_ && !sleeping) {
        dynamic_ += wakeEnergy_;
        ++wakeCount_;
    }
    sleeping_ = sleeping;
}

void
Component::addDynamic(util::Energy j)
{
    if (j < 0)
        util::panic("component %s: negative dynamic energy %g",
                    name_.c_str(), j);
    dynamic_ += j;
}

void
Component::reset()
{
    dynamic_ = 0.0;
    static_ = 0.0;
    pendingBusy_ = 0.0;
    busyAccrued_ = 0.0;
    wakeCount_ = 0;
    sleeping_ = false;
}

}  // namespace soc
}  // namespace snip
