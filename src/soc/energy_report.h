/**
 * @file
 * Energy accounting summary for one simulated session: per-component
 * joules, the paper's four-group breakdown (sensors / memory / CPU /
 * IPs), average power, and battery-life projection.
 */

#ifndef SNIP_SOC_ENERGY_REPORT_H
#define SNIP_SOC_ENERGY_REPORT_H

#include <map>
#include <string>
#include <vector>

#include "util/units.h"

namespace snip {
namespace soc {

/** The paper's Fig. 2 component groups. */
enum class EnergyGroup {
    Sensors = 0,
    Memory,
    Cpu,
    Ips,
    Platform,  ///< Rest-of-system rails; excluded from Fig. 2 bars.
    NumGroups,
};

/** Display name of a group. */
const char *energyGroupName(EnergyGroup g);

/** Per-component entry in a report. */
struct ComponentEnergy {
    std::string name;
    EnergyGroup group;
    util::Energy dynamic_j = 0.0;
    util::Energy static_j = 0.0;

    util::Energy total() const { return dynamic_j + static_j; }
};

/** Immutable snapshot of a session's energy accounting. */
class EnergyReport
{
  public:
    /**
     * Empty placeholder report (no components, zero elapsed time)
     * so result slots can be pre-allocated and assigned later —
     * e.g. by ParallelRunner workers filling a result vector.
     */
    EnergyReport() = default;

    /**
     * @param components Per-component energies.
     * @param elapsed Simulated session length (s).
     */
    EnergyReport(std::vector<ComponentEnergy> components,
                 util::Time elapsed);

    /** Per-component entries. */
    const std::vector<ComponentEnergy> &components() const
    {
        return components_;
    }

    /** Simulated wall time of the session (s). */
    util::Time elapsed() const { return elapsed_; }

    /** Total energy across all components (J). */
    util::Energy total() const { return total_; }

    /** Energy of one group (J). */
    util::Energy groupEnergy(EnergyGroup g) const;

    /**
     * Fraction of the *SoC* energy (sensors+memory+cpu+ips, i.e.
     * excluding Platform) contributed by @p g, as plotted in Fig. 2.
     */
    double socGroupFraction(EnergyGroup g) const;

    /** Average whole-device power over the session (W). */
    util::Power averagePower() const;

    /** Render a human-readable multi-line breakdown. */
    std::string toString() const;

  private:
    std::vector<ComponentEnergy> components_;
    util::Time elapsed_ = 0.0;
    util::Energy total_ = 0.0;
    util::Energy group_[static_cast<int>(EnergyGroup::NumGroups)] = {};
};

}  // namespace soc
}  // namespace snip

#endif  // SNIP_SOC_ENERGY_REPORT_H
