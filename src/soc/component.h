/**
 * @file
 * Base class for energy-accounted hardware components of the
 * simulated SoC. Components accumulate dynamic energy (charged
 * explicitly per operation) plus static energy accrued as simulated
 * time advances: work recorded via recordBusy() accrues at the
 * active static power (race-to-idle), the remainder of each
 * interval at the idle or sleep floor depending on the component's
 * sleep mode. The sleep mode is what the Max-IP baseline toggles
 * aggressively; waking from sleep charges a wake-energy penalty.
 */

#ifndef SNIP_SOC_COMPONENT_H
#define SNIP_SOC_COMPONENT_H

#include <cstdint>
#include <string>

#include "util/units.h"

namespace snip {
namespace soc {

/**
 * An energy-accounted component. Subclasses charge dynamic energy
 * via addDynamic() and busy time via recordBusy(); the owning Soc
 * advances time, which converts busy/idle/sleep time into static
 * energy.
 */
class Component
{
  public:
    /**
     * @param name Component name for reports.
     * @param active_static_w Static power while executing (W).
     * @param idle_static_w Static power while idle (W).
     * @param sleep_static_w Static power while power-gated (W).
     */
    Component(std::string name, util::Power active_static_w,
              util::Power idle_static_w, util::Power sleep_static_w);
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Component name. */
    const std::string &name() const { return name_; }

    /**
     * Record @p t seconds of execution time. Busy time is consumed
     * by subsequent accrue() calls at the active static power;
     * recording work on a sleeping component wakes it (charging the
     * wake energy).
     */
    void recordBusy(util::Time t);

    /**
     * Convert @p dt seconds of simulated time into static energy:
     * pending busy time (clamped to dt) at active power, the rest
     * at the idle or sleep floor.
     */
    void accrue(util::Time dt);

    /**
     * Enter/leave the power-gated sleep mode. Leaving charges the
     * configured wake energy and counts a wake.
     */
    void setSleeping(bool sleeping);

    /** Whether the component is currently power-gated. */
    bool sleeping() const { return sleeping_; }

    /** Configure the energy charged on each wake from sleep. */
    void setWakeEnergy(util::Energy j) { wakeEnergy_ = j; }

    /** Total dynamic energy charged so far (J). */
    util::Energy dynamicEnergy() const { return dynamic_; }
    /** Total static energy accrued so far (J). */
    util::Energy staticEnergy() const { return static_; }
    /** Dynamic + static (J). */
    util::Energy totalEnergy() const { return dynamic_ + static_; }

    /** Cumulative busy time accrued at active power (s). */
    util::Time busyTime() const { return busyAccrued_; }

    /** Number of sleep -> wake transitions. */
    uint64_t wakeCount() const { return wakeCount_; }

    /** Zero all accumulators; leaves sleep mode. */
    virtual void reset();

  protected:
    /** Charge dynamic energy (J). Panics on negative values. */
    void addDynamic(util::Energy j);

  private:
    std::string name_;
    util::Power activeStaticW_;
    util::Power idleStaticW_;
    util::Power sleepStaticW_;
    util::Energy wakeEnergy_ = 0.0;

    bool sleeping_ = false;
    util::Time pendingBusy_ = 0.0;
    util::Time busyAccrued_ = 0.0;
    util::Energy dynamic_ = 0.0;
    util::Energy static_ = 0.0;
    uint64_t wakeCount_ = 0;
};

}  // namespace soc
}  // namespace snip

#endif  // SNIP_SOC_COMPONENT_H
