#include "soc/soc.h"

#include "util/logging.h"

namespace snip {
namespace soc {

Soc::Soc(const EnergyModel &model)
    : model_(model),
      cpu_(std::make_unique<Cpu>(model)),
      memory_(std::make_unique<Memory>(model)),
      sensorHub_(std::make_unique<SensorHubDevice>(model)),
      platform_(std::make_unique<Component>(
          "platform", model.platform_active_w, model.platform_active_w,
          model.platform_idle_w)),
      battery_(std::make_unique<Battery>(model.battery_mah,
                                         model.battery_volts))
{
    for (int k = 0; k < kNumIpKinds; ++k) {
        ips_[k] = std::make_unique<IpBlock>(static_cast<IpKind>(k),
                                            model.ip[k]);
    }
}

void
Soc::executeCpu(uint64_t instructions, CpuCluster cluster)
{
    cpu_->execute(instructions, cluster);
}

void
Soc::accessMemory(uint64_t bytes)
{
    memory_->access(bytes);
}

void
Soc::sampleSensors(uint64_t samples)
{
    sensorHub_->sample(samples);
}

void
Soc::captureCameraFrame()
{
    sensorHub_->captureCameraFrame();
}

void
Soc::invokeIp(IpKind kind, double work_units)
{
    ip(kind).invoke(work_units);
}

IpBlock &
Soc::ip(IpKind kind)
{
    int k = static_cast<int>(kind);
    if (k < 0 || k >= kNumIpKinds)
        util::panic("Soc::ip: bad kind %d", k);
    return *ips_[k];
}

const IpBlock &
Soc::ip(IpKind kind) const
{
    int k = static_cast<int>(kind);
    if (k < 0 || k >= kNumIpKinds)
        util::panic("Soc::ip: bad kind %d", k);
    return *ips_[k];
}

void
Soc::advance(util::Time dt)
{
    if (dt < 0)
        util::panic("Soc::advance: negative dt %f", dt);
    now_ += dt;
    cpu_->accrue(dt);
    memory_->accrue(dt);
    sensorHub_->accrue(dt);
    platform_->accrue(dt);
    for (auto &ipb : ips_)
        ipb->accrue(dt);
}

void
Soc::setInUse(bool in_use)
{
    // The platform component models active-use rails as its
    // idle power and standby rails as its sleep floor.
    platform_->setSleeping(!in_use);
}

EnergyReport
Soc::report() const
{
    std::vector<ComponentEnergy> comps;
    auto add = [&](const Component &c, EnergyGroup g) {
        comps.push_back({c.name(), g, c.dynamicEnergy(), c.staticEnergy()});
    };
    add(*sensorHub_, EnergyGroup::Sensors);
    add(*memory_, EnergyGroup::Memory);
    add(*cpu_, EnergyGroup::Cpu);
    for (const auto &ipb : ips_)
        add(*ipb, EnergyGroup::Ips);
    add(*platform_, EnergyGroup::Platform);
    return EnergyReport(std::move(comps), now_ > 0 ? now_ : 1e-9);
}

void
Soc::reset()
{
    cpu_->reset();
    memory_->reset();
    sensorHub_->reset();
    platform_->reset();
    for (auto &ipb : ips_)
        ipb->reset();
    battery_->recharge();
    now_ = 0.0;
}

}  // namespace soc
}  // namespace snip
