#include "soc/memory.h"

namespace snip {
namespace soc {

Memory::Memory(const EnergyModel &model)
    : Component("memory", model.mem_static_w, model.mem_static_w,
                model.mem_static_w * 0.25),
      byteJ_(model.mem_byte_j),
      bytesPerS_(model.mem_bytes_per_s)
{
}

void
Memory::access(uint64_t bytes)
{
    if (bytes == 0)
        return;
    recordBusy(static_cast<double>(bytes) / bytesPerS_);
    bytes_ += bytes;
    addDynamic(byteJ_ * static_cast<double>(bytes));
}

void
Memory::reset()
{
    Component::reset();
    bytes_ = 0;
}

}  // namespace soc
}  // namespace snip
