#include "soc/cpu.h"

namespace snip {
namespace soc {

Cpu::Cpu(const EnergyModel &model)
    : Component("cpu", model.cpu_active_static_w, model.cpu_idle_static_w,
                model.cpu_sleep_static_w),
      bigInstrJ_(model.cpu_big_instr_j),
      littleInstrJ_(model.cpu_little_instr_j),
      ips_(model.cpu_giga_ips * 1e9)
{
}

void
Cpu::execute(uint64_t instructions, CpuCluster cluster)
{
    if (instructions == 0)
        return;
    recordBusy(static_cast<double>(instructions) / ips_);
    if (cluster == CpuCluster::Big) {
        bigInstr_ += instructions;
        addDynamic(bigInstrJ_ * static_cast<double>(instructions));
    } else {
        littleInstr_ += instructions;
        addDynamic(littleInstrJ_ * static_cast<double>(instructions));
    }
}

void
Cpu::reset()
{
    Component::reset();
    bigInstr_ = 0;
    littleInstr_ = 0;
}

}  // namespace soc
}  // namespace snip
