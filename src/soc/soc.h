/**
 * @file
 * The assembled SoC: CPU cluster, LPDDR4 memory, sensor hub, the six
 * accelerator/IP blocks, rest-of-system platform rails, and the
 * battery. This is the single charging surface the event framework,
 * games, and SNIP runtime account energy against.
 */

#ifndef SNIP_SOC_SOC_H
#define SNIP_SOC_SOC_H

#include <array>
#include <memory>

#include "soc/battery.h"
#include "soc/cpu.h"
#include "soc/energy_model.h"
#include "soc/energy_report.h"
#include "soc/ip_block.h"
#include "soc/memory.h"
#include "soc/sensor_hub.h"

namespace snip {
namespace soc {

/**
 * Snapdragon-821-class SoC simulation. All charging methods are
 * cheap accumulator updates; advance() moves the simulated clock and
 * accrues state-dependent static power on every component.
 */
class Soc
{
  public:
    /** Build from an energy model (defaults to snapdragon821()). */
    explicit Soc(const EnergyModel &model = EnergyModel::snapdragon821());

    /** Charge CPU work. */
    void executeCpu(uint64_t instructions, CpuCluster cluster);
    /** Charge a memory transfer. */
    void accessMemory(uint64_t bytes);
    /** Charge raw sensor samples. */
    void sampleSensors(uint64_t samples);
    /** Charge a camera frame capture (sensor side). */
    void captureCameraFrame();
    /** Charge IP work. */
    void invokeIp(IpKind kind, double work_units);

    /** Advance the simulated clock by dt seconds. */
    void advance(util::Time dt);

    /** Simulated time since construction/reset (s). */
    util::Time now() const { return now_; }

    /** Direct component access (power-state control, counters). */
    Cpu &cpu() { return *cpu_; }
    Memory &memory() { return *memory_; }
    SensorHubDevice &sensorHub() { return *sensorHub_; }
    IpBlock &ip(IpKind kind);
    const IpBlock &ip(IpKind kind) const;
    /** Rest-of-system rails (PMIC, RF, misc). */
    Component &platform() { return *platform_; }
    Battery &battery() { return *battery_; }

    /** Put the device in "in use" mode (platform rails active). */
    void setInUse(bool in_use);

    /** The energy model this SoC was built with. */
    const EnergyModel &model() const { return model_; }

    /** Snapshot the current accounting. */
    EnergyReport report() const;

    /** Zero all accounting and the clock; battery recharges. */
    void reset();

  private:
    EnergyModel model_;
    std::unique_ptr<Cpu> cpu_;
    std::unique_ptr<Memory> memory_;
    std::unique_ptr<SensorHubDevice> sensorHub_;
    std::array<std::unique_ptr<IpBlock>, kNumIpKinds> ips_;
    std::unique_ptr<Component> platform_;
    std::unique_ptr<Battery> battery_;
    util::Time now_ = 0.0;
};

}  // namespace soc
}  // namespace snip

#endif  // SNIP_SOC_SOC_H
