#include "soc/battery.h"

#include <algorithm>

#include "util/logging.h"

namespace snip {
namespace soc {

Battery::Battery(double mah, double volts)
    : capacity_(util::batteryCapacityJoules(mah, volts))
{
}

void
Battery::drain(util::Energy j)
{
    if (j < 0)
        util::panic("Battery::drain: negative energy %g", j);
    consumed_ = std::min(consumed_ + j, capacity_ * 1.0);
}

double
Battery::remainingFraction() const
{
    return std::clamp(1.0 - consumed_ / capacity_, 0.0, 1.0);
}

double
Battery::hoursToEmpty(util::Power avg_watts) const
{
    return util::hoursToDrain(capacity_, avg_watts);
}

}  // namespace soc
}  // namespace snip
