/**
 * @file
 * CPU cluster model: a Kryo-like big.LITTLE pair charged per retired
 * instruction. Event-handler work runs on the performance cluster;
 * framework bookkeeping (sensor plumbing, binder transfers, lookup
 * comparisons) runs on the efficiency cluster.
 */

#ifndef SNIP_SOC_CPU_H
#define SNIP_SOC_CPU_H

#include <cstdint>

#include "soc/component.h"
#include "soc/energy_model.h"

namespace snip {
namespace soc {

/** Which cluster executes a chunk of work. */
enum class CpuCluster {
    Big,     ///< Performance (Kryo gold) cluster.
    Little,  ///< Efficiency (Kryo silver) cluster.
};

/**
 * Per-instruction-energy CPU model. Tracks instruction counts per
 * cluster so benchmarks can report "% execution" weighted by dynamic
 * instructions, as the paper does.
 */
class Cpu : public Component
{
  public:
    /** Construct from the model constants. */
    explicit Cpu(const EnergyModel &model);

    /**
     * Charge the execution of @p instructions on @p cluster and
     * record the corresponding busy time (race-to-idle model).
     */
    void execute(uint64_t instructions, CpuCluster cluster);

    /** Instructions retired on the big cluster. */
    uint64_t bigInstructions() const { return bigInstr_; }
    /** Instructions retired on the little cluster. */
    uint64_t littleInstructions() const { return littleInstr_; }
    /** Total instructions retired. */
    uint64_t totalInstructions() const { return bigInstr_ + littleInstr_; }

    void reset() override;

  private:
    util::Energy bigInstrJ_;
    util::Energy littleInstrJ_;
    double ips_;
    uint64_t bigInstr_ = 0;
    uint64_t littleInstr_ = 0;
};

}  // namespace soc
}  // namespace snip

#endif  // SNIP_SOC_CPU_H
