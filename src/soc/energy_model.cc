#include "soc/energy_model.h"

namespace snip {
namespace soc {

const char *
ipKindName(IpKind k)
{
    switch (k) {
      case IpKind::Gpu: return "gpu";
      case IpKind::Display: return "display";
      case IpKind::Codec: return "codec";
      case IpKind::CameraIsp: return "camera_isp";
      case IpKind::Dsp: return "dsp";
      case IpKind::Audio: return "audio";
      case IpKind::NumKinds: break;
    }
    return "?";
}

EnergyModel
EnergyModel::snapdragon821()
{
    EnergyModel m;
    auto &ip = m.ip;
    // work_j, active_static_w, idle_static_w, sleep_static_w,
    // wake_j, unit_time_s
    ip[static_cast<int>(IpKind::Gpu)] = {
        util::millijoules(1.1), util::milliwatts(95),
        util::milliwatts(34), util::milliwatts(2.5),
        util::microjoules(700), util::milliseconds(0.7),
    };
    ip[static_cast<int>(IpKind::Display)] = {
        util::millijoules(1.4), util::milliwatts(310),
        util::milliwatts(60), util::milliwatts(1.5),
        util::microjoules(900), util::milliseconds(2.5),
    };
    ip[static_cast<int>(IpKind::Codec)] = {
        util::millijoules(0.8), util::milliwatts(26),
        util::milliwatts(12), util::milliwatts(1.0),
        util::microjoules(450), util::milliseconds(1.0),
    };
    ip[static_cast<int>(IpKind::CameraIsp)] = {
        util::millijoules(7.5), util::milliwatts(70),
        util::milliwatts(22), util::milliwatts(1.5),
        util::microjoules(1200), util::milliseconds(6.0),
    };
    ip[static_cast<int>(IpKind::Dsp)] = {
        util::millijoules(0.45), util::milliwatts(22),
        util::milliwatts(9), util::milliwatts(0.8),
        util::microjoules(250), util::milliseconds(0.4),
    };
    ip[static_cast<int>(IpKind::Audio)] = {
        util::millijoules(0.25), util::milliwatts(28),
        util::milliwatts(10), util::milliwatts(0.8),
        util::microjoules(200), util::milliseconds(1.0),
    };
    return m;
}

}  // namespace soc
}  // namespace snip
