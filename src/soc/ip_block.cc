#include "soc/ip_block.h"

#include "util/logging.h"

namespace snip {
namespace soc {

IpBlock::IpBlock(IpKind kind, const IpParams &params)
    : Component(ipKindName(kind), params.active_static_w,
                params.idle_static_w, params.sleep_static_w),
      kind_(kind),
      workJ_(params.work_j),
      unitTimeS_(params.unit_time_s)
{
    setWakeEnergy(params.wake_j);
}

void
IpBlock::invoke(double work_units)
{
    if (work_units < 0)
        util::panic("ip %s: negative work %f", name().c_str(), work_units);
    if (work_units == 0)
        return;
    recordBusy(work_units * unitTimeS_);
    ++invocations_;
    work_ += work_units;
    addDynamic(workJ_ * work_units);
}

void
IpBlock::reset()
{
    Component::reset();
    invocations_ = 0;
    work_ = 0.0;
}

}  // namespace soc
}  // namespace snip
