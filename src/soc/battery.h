/**
 * @file
 * Battery model: a fixed-capacity pack drained by the SoC's
 * accumulated energy; answers "hours from 100% to 0%" (Fig. 3).
 */

#ifndef SNIP_SOC_BATTERY_H
#define SNIP_SOC_BATTERY_H

#include "util/units.h"

namespace snip {
namespace soc {

/** A Li-ion pack with fixed usable capacity. */
class Battery
{
  public:
    /**
     * @param mah Rated capacity (mAh).
     * @param volts Nominal cell voltage (V).
     */
    Battery(double mah, double volts);

    /** Usable capacity (J). */
    util::Energy capacity() const { return capacity_; }

    /** Drain @p j joules. Clamps at empty. */
    void drain(util::Energy j);

    /** Energy consumed so far (J). */
    util::Energy consumed() const { return consumed_; }

    /** Remaining charge fraction in [0, 1]. */
    double remainingFraction() const;

    /** True when fully drained. */
    bool empty() const { return consumed_ >= capacity_; }

    /**
     * Hours to go from 100% to 0% at a constant average power.
     * This is how the paper converts a 5-10 minute measured session
     * into a battery-life figure.
     */
    double hoursToEmpty(util::Power avg_watts) const;

    /** Refill to 100%. */
    void recharge() { consumed_ = 0.0; }

  private:
    util::Energy capacity_;
    util::Energy consumed_ = 0.0;
};

}  // namespace soc
}  // namespace snip

#endif  // SNIP_SOC_BATTERY_H
