#include "soc/sensor_hub.h"

namespace snip {
namespace soc {

SensorHubDevice::SensorHubDevice(const EnergyModel &model)
    : Component("sensors", model.sensor_static_w, model.sensor_static_w,
                model.sensor_static_w * 0.2),
      sampleJ_(model.sensor_sample_j),
      cameraFrameJ_(model.camera_frame_j)
{
}

void
SensorHubDevice::sample(uint64_t samples)
{
    if (samples == 0)
        return;
    samples_ += samples;
    addDynamic(sampleJ_ * static_cast<double>(samples));
}

void
SensorHubDevice::captureCameraFrame()
{
    ++cameraFrames_;
    addDynamic(cameraFrameJ_);
}

void
SensorHubDevice::reset()
{
    Component::reset();
    samples_ = 0;
    cameraFrames_ = 0;
}

}  // namespace soc
}  // namespace snip
