/**
 * @file
 * Sensor-hub device model: charges per raw sensor sample and per
 * captured camera frame (the camera sensor itself; the ISP is a
 * separate IP block, matching the paper's note that the camera is
 * not part of the sensor hub).
 */

#ifndef SNIP_SOC_SENSOR_HUB_H
#define SNIP_SOC_SENSOR_HUB_H

#include <cstdint>

#include "soc/component.h"
#include "soc/energy_model.h"

namespace snip {
namespace soc {

/** Energy model of the always-on sensor hub. */
class SensorHubDevice : public Component
{
  public:
    /** Construct from the model constants. */
    explicit SensorHubDevice(const EnergyModel &model);

    /** Charge @p samples raw sensor reads (touch, gyro, GPS...). */
    void sample(uint64_t samples);

    /** Charge one camera frame capture. */
    void captureCameraFrame();

    /** Raw samples taken so far. */
    uint64_t samplesTaken() const { return samples_; }
    /** Camera frames captured so far. */
    uint64_t cameraFrames() const { return cameraFrames_; }

    void reset() override;

  private:
    util::Energy sampleJ_;
    util::Energy cameraFrameJ_;
    uint64_t samples_ = 0;
    uint64_t cameraFrames_ = 0;
};

}  // namespace soc
}  // namespace snip

#endif  // SNIP_SOC_SENSOR_HUB_H
