/**
 * @file
 * CART-style decision tree over the dataset's (numeric-encoded)
 * features, used as a reference learner in the predictor ablation
 * (and as the building block of RandomForest, the model family the
 * PFI literature [6] is defined on).
 */

#ifndef SNIP_ML_DECISION_TREE_H
#define SNIP_ML_DECISION_TREE_H

#include "ml/predictor.h"
#include "util/rng.h"

namespace snip {
namespace ml {

/** Tree hyperparameters. */
struct TreeConfig {
    int max_depth = 12;
    size_t min_samples_split = 4;
    /** Candidate thresholds tried per feature at a split. */
    int threshold_candidates = 12;
    /**
     * Features considered per split: 0 = all, else a random subset
     * of this size (for forests).
     */
    size_t feature_subsample = 0;
    uint64_t seed = 0x7ee5eedULL;
};

/** Single classification tree with weighted Gini splits. */
class DecisionTree : public Predictor
{
  public:
    explicit DecisionTree(TreeConfig cfg = {});

    void train(const Dataset &ds,
               const std::vector<size_t> &feature_cols) override;

    /** Train on a row subset (bootstrap sample) — forest use. */
    void trainOnRows(const Dataset &ds,
                     const std::vector<size_t> &feature_cols,
                     const std::vector<size_t> &rows);

    uint64_t predict(const Dataset &ds, size_t row,
                     size_t override_col = SIZE_MAX,
                     uint64_t override_value = 0) const override;

    size_t predictRow(const Dataset &ds, size_t row,
                      size_t override_col = SIZE_MAX,
                      uint64_t override_value = 0) const override;

    void predictRows(const Dataset &ds, size_t row_begin,
                     size_t row_end, uint64_t *out_labels,
                     size_t override_col = SIZE_MAX,
                     const uint64_t *override_values =
                         nullptr) const override;

    /** Node count (tests / complexity reporting). */
    size_t nodeCount() const { return nodes_.size(); }

    /**
     * Leaf node index reached by @p row — the forest's batched vote
     * path descends once and reads label/representative by node id
     * instead of descending again per query.
     */
    size_t leafIndex(const Dataset &ds, size_t row,
                     size_t override_col = SIZE_MAX,
                     uint64_t override_value = 0) const
    {
        return static_cast<size_t>(
            walk(ds, row, override_col, override_value));
    }

    /** Majority label stored at node @p node (leaves only). */
    uint64_t nodeLabel(size_t node) const
    {
        return nodes_[node].label;
    }

    /** Representative training row of node @p node (leaves only). */
    size_t nodeRepresentative(size_t node) const
    {
        return nodes_[node].representative;
    }

  private:
    struct Node {
        bool leaf = true;
        size_t col = SIZE_MAX;        // split column (dataset index)
        uint64_t threshold = 0;       // go left when value <= threshold
        int left = -1;
        int right = -1;
        uint64_t label = kNoLabel;    // leaf majority label
        size_t representative = SIZE_MAX;
    };

    int build(const Dataset &ds, const std::vector<size_t> &cols,
              std::vector<size_t> &rows, int depth, util::Rng &rng);
    int makeLeaf(const Dataset &ds, const std::vector<size_t> &rows);
    int walk(const Dataset &ds, size_t row, size_t override_col,
             uint64_t override_value) const;

    TreeConfig cfg_;
    std::vector<Node> nodes_;

    /**
     * Training-time dense label dictionary (the forest-voting
     * pattern): labels_ lists the distinct training labels
     * ascending, row_label_idx_ maps a dataset row to its dense
     * index, and the flat tally/representative vectors below replace
     * per-split std::map tallies — same ascending-label iteration
     * order, so impurities and tie-breaks are bitwise identical.
     */
    std::vector<uint64_t> labels_;
    std::vector<uint32_t> row_label_idx_;
    /** Reusable split scratch (total / left / right tallies). */
    std::vector<uint64_t> tally_, lt_, rt_;
    /** First training row seen per label (leaf representatives). */
    std::vector<size_t> repr_;
};

}  // namespace ml
}  // namespace snip

#endif  // SNIP_ML_DECISION_TREE_H
