/**
 * @file
 * CART-style decision tree over the dataset's (numeric-encoded)
 * features, used as a reference learner in the predictor ablation
 * (and as the building block of RandomForest, the model family the
 * PFI literature [6] is defined on).
 *
 * Construction is streaming / out-of-core friendly: nodes reference
 * [begin, end) ranges of ONE row-index frontier that is partitioned
 * in place (stable, left rows first), instead of materializing
 * per-node row vectors — index memory is O(rows) for the whole
 * build, while the O(rows x features) value matrix is only ever
 * *read* through DatasetView columns in block-sized passes
 * (ds.noteStreamed() fires every streamBlockRows() rows so a
 * memory-mapped store can cap its residency). Split evaluation
 * tallies a per-distinct-value weight histogram in one pass and
 * prefix-sums it across thresholds; all tallies are uint64, so the
 * restructuring is bitwise identical to the legacy per-threshold
 * rescan — the Gini doubles are computed from the exact same
 * integers in the same order.
 */

#ifndef SNIP_ML_DECISION_TREE_H
#define SNIP_ML_DECISION_TREE_H

#include "ml/predictor.h"
#include "util/rng.h"

namespace snip {
namespace ml {

/** Tree hyperparameters. */
struct TreeConfig {
    int max_depth = 12;
    size_t min_samples_split = 4;
    /** Candidate thresholds tried per feature at a split. */
    int threshold_candidates = 12;
    /**
     * Features considered per split: 0 = all, else a random subset
     * of this size (for forests).
     */
    size_t feature_subsample = 0;
    uint64_t seed = 0x7ee5eedULL;
};

/** Single classification tree with weighted Gini splits. */
class DecisionTree : public Predictor
{
  public:
    explicit DecisionTree(TreeConfig cfg = {});

    void train(const DatasetView &ds,
               const std::vector<size_t> &feature_cols) override;

    /** Train on a row subset (bootstrap sample) — forest use. */
    void trainOnRows(const DatasetView &ds,
                     const std::vector<size_t> &feature_cols,
                     const std::vector<size_t> &rows);

    uint64_t predict(const DatasetView &ds, size_t row,
                     size_t override_col = SIZE_MAX,
                     uint64_t override_value = 0) const override;

    size_t predictRow(const DatasetView &ds, size_t row,
                      size_t override_col = SIZE_MAX,
                      uint64_t override_value = 0) const override;

    void predictRows(const DatasetView &ds, size_t row_begin,
                     size_t row_end, uint64_t *out_labels,
                     size_t override_col = SIZE_MAX,
                     const uint64_t *override_values =
                         nullptr) const override;

    /** Node count (tests / complexity reporting). */
    size_t nodeCount() const { return nodes_.size(); }

    /**
     * Leaf node index reached by @p row — the forest's batched vote
     * path descends once and reads label/representative by node id
     * instead of descending again per query.
     */
    size_t leafIndex(const DatasetView &ds, size_t row,
                     size_t override_col = SIZE_MAX,
                     uint64_t override_value = 0) const
    {
        return static_cast<size_t>(
            walk(ds, row, override_col, override_value));
    }

    /** Majority label stored at node @p node (leaves only). */
    uint64_t nodeLabel(size_t node) const
    {
        return nodes_[node].label;
    }

    /** Representative training row of node @p node (leaves only). */
    size_t nodeRepresentative(size_t node) const
    {
        return nodes_[node].representative;
    }

    /** Structural hash of the trained tree (see Predictor). */
    uint64_t fingerprint() const override;

  private:
    struct Node {
        bool leaf = true;
        size_t col = SIZE_MAX;        // split column (dataset index)
        uint64_t threshold = 0;       // go left when value <= threshold
        int left = -1;
        int right = -1;
        uint64_t label = kNoLabel;    // leaf majority label
        size_t representative = SIZE_MAX;
    };

    int build(const DatasetView &ds, const std::vector<size_t> &cols,
              size_t lo, size_t hi, int depth, util::Rng &rng);
    int makeLeaf(const DatasetView &ds, size_t lo, size_t hi);
    int walk(const DatasetView &ds, size_t row, size_t override_col,
             uint64_t override_value) const;

    TreeConfig cfg_;
    std::vector<Node> nodes_;

    /**
     * Training-time dense label dictionary (the forest-voting
     * pattern): labels_ lists the distinct training labels
     * ascending, row_label_idx_ maps a dataset row to its dense
     * index, and the flat tally/representative vectors below replace
     * per-split std::map tallies — same ascending-label iteration
     * order, so impurities and tie-breaks are bitwise identical.
     */
    std::vector<uint64_t> labels_;
    std::vector<uint32_t> row_label_idx_;
    /** Reusable split scratch (total / left / right tallies). */
    std::vector<uint64_t> tally_, lt_, rt_;
    /** First training row seen per label (leaf representatives). */
    std::vector<size_t> repr_;

    /**
     * The row-index frontier: one array holding every training row,
     * partitioned in place as the tree grows. Nodes under
     * construction reference [lo, hi) ranges of it.
     */
    std::vector<size_t> frontier_;
    /** Right-side rows during the stable in-place partition. */
    std::vector<size_t> partScratch_;
    /** Gathered column values of the current node (sorted/uniqued). */
    std::vector<uint64_t> vals_;
    /** distinct-value x label weight histogram (one split pass). */
    std::vector<uint64_t> hist_;
    /** Per-distinct-value total weight (parallel to vals_). */
    std::vector<uint64_t> histW_;
};

}  // namespace ml
}  // namespace snip

#endif  // SNIP_ML_DECISION_TREE_H
