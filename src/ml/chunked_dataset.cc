#include "ml/chunked_dataset.h"

#include <algorithm>

namespace snip {
namespace ml {

// Mapped feature columns feed the ML layer verbatim, so the two
// absent markers must be the same bit pattern.
static_assert(kAbsent == trace::kTrainingAbsent,
              "ml::kAbsent must match trace::kTrainingAbsent");

util::Result<std::shared_ptr<const ChunkedDataset>>
ChunkedDataset::attach(std::shared_ptr<const trace::ColumnarLog> log,
                       events::EventType type,
                       const events::FieldSchema &schema,
                       const ChunkedConfig &cfg)
{
    if (!log)
        return util::Status::Error("chunked: null trace");
    const trace::ColumnarLog::TrainingCols *tc = log->training(type);
    if (!tc)
        return util::Status::Errorf(
            "chunked: no training section for type %d",
            static_cast<int>(type));
    if (tc->nrows == 0)
        return util::Status::Errorf(
            "chunked: training section for type %d is empty",
            static_cast<int>(type));

    // The trace was validated structurally at attach(); here we
    // validate it *against this game's schema* — a section recorded
    // for a different game must fail with a Status, not a panic in
    // FieldSchema::def() later.
    auto check_ids = [&](const uint32_t *ids, uint32_t n,
                         events::FieldSide side) {
        for (uint32_t i = 0; i < n; ++i) {
            if (ids[i] >= schema.size() ||
                schema.defs()[ids[i]].side != side)
                return false;
        }
        return true;
    };
    if (!check_ids(tc->feat_ids, tc->nfeat,
                   events::FieldSide::Input) ||
        !check_ids(tc->out_ids, tc->nout, events::FieldSide::Output))
        return util::Status::Errorf(
            "chunked: training section for type %d does not match "
            "the game schema", static_cast<int>(type));

    auto ds = std::shared_ptr<ChunkedDataset>(new ChunkedDataset());
    ds->log_ = std::move(log);
    ds->tc_ = tc;
    ds->type_ = type;
    ds->budget_ = cfg.residency_budget_bytes;
    ds->schema_ = &schema;
    ds->rows_ = tc->nrows;
    ds->values_ = tc->feat_cols;
    ds->labels_ = tc->labels;
    ds->weights_ = tc->weights;
    ds->streamBlockRows_ = std::max<size_t>(1, cfg.block_rows);
    ds->featureFields_.assign(tc->feat_ids,
                              tc->feat_ids + tc->nfeat);

    // One streaming pass fixes the weight total (and rejects zero
    // weights, which would poison the error-rate denominators).
    uint64_t total = 0;
    size_t blk = ds->streamBlockRows_;
    for (uint64_t base = 0; base < tc->nrows; base += blk) {
        uint64_t n = std::min<uint64_t>(blk, tc->nrows - base);
        for (uint64_t i = 0; i < n; ++i) {
            uint64_t w = tc->weights[base + i];
            if (w == 0)
                return util::Status::Errorf(
                    "chunked: zero weight at row %llu",
                    static_cast<unsigned long long>(base + i));
            total += w;
        }
        ds->noteStreamed(static_cast<size_t>(n) * 8);
    }
    ds->totalWeight_ = total;
    return util::Result<std::shared_ptr<const ChunkedDataset>>(
        std::shared_ptr<const ChunkedDataset>(std::move(ds)));
}

void
ChunkedDataset::materializeRecord(size_t row,
                                  games::HandlerExecution *out) const
{
    out->type = type_;
    out->seq = row;
    out->inputs.clear();
    out->outputs.clear();
    // Columns are keyed by ascending field id, so pushing in column
    // order reproduces the canonical record order directly.
    for (uint32_t f = 0; f < tc_->nfeat; ++f) {
        uint64_t v = tc_->feat_cols[f * rows_ + row];
        if (v != kAbsent)
            out->inputs.push_back({tc_->feat_ids[f], v});
    }
    for (uint32_t o = 0; o < tc_->nout; ++o) {
        uint64_t v = tc_->out_cols[o * rows_ + row];
        if (v != kAbsent)
            out->outputs.push_back({tc_->out_ids[o], v});
    }
    out->cpu_instructions = tc_->weights[row];
}

void
ChunkedDataset::noteStreamed(size_t bytes) const
{
    if (budget_ == 0 || !log_->mmapBacked())
        return;
    uint64_t seen =
        streamed_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (seen >= budget_ / 2) {
        streamed_.store(0, std::memory_order_relaxed);
        log_->releaseResidency();
    }
}

void
ChunkedDataset::releaseResidency() const
{
    streamed_.store(0, std::memory_order_relaxed);
    log_->releaseResidency();
}

}  // namespace ml
}  // namespace snip
