/**
 * @file
 * Permutation Feature Importance (paper §V-A, citing [6, 7]): the
 * importance of a feature is how much the model's output-prediction
 * error grows when that feature's column is randomly permuted
 * across rows, breaking its relationship with the label while
 * preserving its marginal distribution.
 *
 * Evaluation is task-parallel (one task per feature x repeat). Each
 * task's permutation stream is seeded from (cfg.seed, column id,
 * repeat) — not from the task's position in the column list — so a
 * column's importance is a pure function of the seed and the column:
 * identical for any thread count AND for any subset of columns it is
 * computed alongside (what lets the feature selector cache
 * importances of untouched columns exactly).
 */

#ifndef SNIP_ML_PFI_H
#define SNIP_ML_PFI_H

#include <deque>
#include <vector>

#include "ml/predictor.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace snip {
namespace ml {

class PfiCache;

/** PFI knobs. */
struct PfiConfig {
    /** Permutation repeats per feature (importances averaged). */
    int repeats = 2;
    uint64_t seed = 0x9f1bea7ULL;
    /**
     * Worker threads for the feature x repeat task fan-out
     * (0 = SNIP_THREADS / all cores). Results are identical for any
     * value.
     */
    unsigned threads = 0;
    /**
     * Optional metrics sink (nullptr = observability off). Records
     * the `shrink.pfi` span plus per-task timings attributed to the
     * parallelFor workers that ran them (thread-local shards merged
     * at join); never alters results.
     */
    obs::Registry *obs = nullptr;
    /**
     * Optional cross-run result cache (nullptr = off). Safe because
     * hits are exact: the lookup key covers everything the result is
     * a function of (see pfiCacheKey), so a cached PfiResult is the
     * bitwise value a fresh run would compute. Used by the feature
     * selector / continuous learner to skip re-scoring columns whose
     * inputs did not change between refreshes or epochs.
     */
    PfiCache *cache = nullptr;
};

/** Result of one PFI run. */
struct PfiResult {
    /** Weighted error of the unpermuted model. */
    double base_error = 0.0;
    /**
     * Per-feature importance, parallel to the feature-column list
     * passed in: mean(permuted error) - base_error, floored at 0.
     */
    std::vector<double> importance;
};

/**
 * Bounded FIFO cache of PfiResults keyed by pfiCacheKey(). One cache
 * persists across feature-selection refreshes and continuous-learning
 * epochs; capacity covers the refresh sequence of a full selection
 * run (each Phase A commit shrinks the column set, giving a new key),
 * so an epoch that replays the same sequence hits every entry.
 */
class PfiCache
{
  public:
    /** Cached result for @p key, or nullptr. Never returns for 0. */
    const PfiResult *find(uint64_t key) const;

    /** Insert (evicting the oldest beyond capacity). Ignores 0. */
    void insert(uint64_t key, PfiResult result);

    size_t size() const { return entries_.size(); }

  private:
    static constexpr size_t kMaxEntries = 64;
    struct Entry {
        uint64_t key = 0;
        PfiResult result;
    };
    std::deque<Entry> entries_;  // FIFO, newest at back
};

/**
 * Exact content key of a PFI run: mixes the predictor fingerprint,
 * row count, seed and repeats, label/weight CRCs, and per scored
 * column (column index, field id, value CRC). Permutation streams
 * are seeded per (seed, column, repeat) — never by list position —
 * and prediction reads only the scored columns, so two runs with
 * equal keys produce bitwise-identical PfiResults. Returns 0 (no
 * caching) when the predictor is unfingerprintable.
 */
uint64_t pfiCacheKey(const Predictor &predictor,
                     const DatasetView &ds,
                     const std::vector<size_t> &cols,
                     const PfiConfig &cfg);

/**
 * Compute PFI of @p predictor (already trained on @p cols) over
 * @p ds. Only columns in @p cols are permuted. With cfg.cache set,
 * serves exact hits from the cache (counter shrink.pfi.cols_cached)
 * instead of re-scoring (counter shrink.pfi.cols_rescored).
 */
PfiResult computePfi(const Predictor &predictor, const DatasetView &ds,
                     const std::vector<size_t> &cols,
                     const PfiConfig &cfg = {});

}  // namespace ml
}  // namespace snip

#endif  // SNIP_ML_PFI_H
