/**
 * @file
 * Permutation Feature Importance (paper §V-A, citing [6, 7]): the
 * importance of a feature is how much the model's output-prediction
 * error grows when that feature's column is randomly permuted
 * across rows, breaking its relationship with the label while
 * preserving its marginal distribution.
 *
 * Evaluation is task-parallel (one task per feature x repeat). Each
 * task's permutation stream is seeded from (cfg.seed, column id,
 * repeat) — not from the task's position in the column list — so a
 * column's importance is a pure function of the seed and the column:
 * identical for any thread count AND for any subset of columns it is
 * computed alongside (what lets the feature selector cache
 * importances of untouched columns exactly).
 */

#ifndef SNIP_ML_PFI_H
#define SNIP_ML_PFI_H

#include <vector>

#include "ml/predictor.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace snip {
namespace ml {

/** PFI knobs. */
struct PfiConfig {
    /** Permutation repeats per feature (importances averaged). */
    int repeats = 2;
    uint64_t seed = 0x9f1bea7ULL;
    /**
     * Worker threads for the feature x repeat task fan-out
     * (0 = SNIP_THREADS / all cores). Results are identical for any
     * value.
     */
    unsigned threads = 0;
    /**
     * Optional metrics sink (nullptr = observability off). Records
     * the `shrink.pfi` span plus per-task timings attributed to the
     * parallelFor workers that ran them (thread-local shards merged
     * at join); never alters results.
     */
    obs::Registry *obs = nullptr;
};

/** Result of one PFI run. */
struct PfiResult {
    /** Weighted error of the unpermuted model. */
    double base_error = 0.0;
    /**
     * Per-feature importance, parallel to the feature-column list
     * passed in: mean(permuted error) - base_error, floored at 0.
     */
    std::vector<double> importance;
};

/**
 * Compute PFI of @p predictor (already trained on @p cols) over
 * @p ds. Only columns in @p cols are permuted.
 */
PfiResult computePfi(const Predictor &predictor, const Dataset &ds,
                     const std::vector<size_t> &cols,
                     const PfiConfig &cfg = {});

}  // namespace ml
}  // namespace snip

#endif  // SNIP_ML_PFI_H
