/**
 * @file
 * Bagged random forest (Breiman 2001, the paper's citation [6] for
 * PFI) over decision trees: bootstrap row sampling plus per-split
 * feature subsampling, majority vote.
 */

#ifndef SNIP_ML_RANDOM_FOREST_H
#define SNIP_ML_RANDOM_FOREST_H

#include <memory>

#include "ml/decision_tree.h"

namespace snip {
namespace ml {

/** Forest hyperparameters. */
struct ForestConfig {
    int num_trees = 16;
    TreeConfig tree;
    uint64_t seed = 0xf02e57ULL;
};

/** Majority-vote forest. */
class RandomForest : public Predictor
{
  public:
    explicit RandomForest(ForestConfig cfg = {});

    void train(const Dataset &ds,
               const std::vector<size_t> &feature_cols) override;

    uint64_t predict(const Dataset &ds, size_t row,
                     size_t override_col = SIZE_MAX,
                     uint64_t override_value = 0) const override;

    size_t predictRow(const Dataset &ds, size_t row,
                      size_t override_col = SIZE_MAX,
                      uint64_t override_value = 0) const override;

    /** Number of trained trees. */
    size_t treeCount() const { return trees_.size(); }

  private:
    ForestConfig cfg_;
    std::vector<std::unique_ptr<DecisionTree>> trees_;
};

}  // namespace ml
}  // namespace snip

#endif  // SNIP_ML_RANDOM_FOREST_H
