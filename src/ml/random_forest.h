/**
 * @file
 * Bagged random forest (Breiman 2001, the paper's citation [6] for
 * PFI) over decision trees: bootstrap row sampling plus per-split
 * feature subsampling, majority vote.
 *
 * Training is tree-parallel (util::parallelFor): every tree's seed
 * and bootstrap stream are derived up-front from the forest seed, so
 * 1-thread and N-thread runs build bitwise-identical forests. Voting
 * uses a dense label dictionary built at train time and flat
 * per-caller vote buffers — no per-prediction heap allocation.
 */

#ifndef SNIP_ML_RANDOM_FOREST_H
#define SNIP_ML_RANDOM_FOREST_H

#include <memory>

#include "ml/decision_tree.h"
#include "obs/metrics.h"

namespace snip {
namespace ml {

/** Forest hyperparameters. */
struct ForestConfig {
    int num_trees = 16;
    TreeConfig tree;
    uint64_t seed = 0xf02e57ULL;
    /**
     * Worker threads for tree training (0 = SNIP_THREADS / all
     * cores). Results are identical for any value.
     */
    unsigned threads = 0;
    /**
     * Optional metrics sink (nullptr = observability off): records
     * the `train_forest` span and a trained-trees counter. Never
     * alters results.
     */
    obs::Registry *obs = nullptr;
};

/** Majority-vote forest. */
class RandomForest : public Predictor
{
  public:
    explicit RandomForest(ForestConfig cfg = {});

    void train(const DatasetView &ds,
               const std::vector<size_t> &feature_cols) override;

    uint64_t predict(const DatasetView &ds, size_t row,
                     size_t override_col = SIZE_MAX,
                     uint64_t override_value = 0) const override;

    size_t predictRow(const DatasetView &ds, size_t row,
                      size_t override_col = SIZE_MAX,
                      uint64_t override_value = 0) const override;

    void predictRows(const DatasetView &ds, size_t row_begin,
                     size_t row_end, uint64_t *out_labels,
                     size_t override_col = SIZE_MAX,
                     const uint64_t *override_values =
                         nullptr) const override;

    /** Number of trained trees. */
    size_t treeCount() const { return trees_.size(); }

    /** Distinct leaf labels across the forest (vote-buffer width). */
    size_t labelCount() const { return labels_.size(); }

    /** Structural hash over all trees (see Predictor). */
    uint64_t fingerprint() const override;

  private:
    /** Majority label index from a tally, ties to smallest label. */
    size_t majorityIndex(const uint32_t *votes) const;

    ForestConfig cfg_;
    std::vector<std::unique_ptr<DecisionTree>> trees_;
    /** Sorted distinct leaf labels; votes are tallied by index. */
    std::vector<uint64_t> labels_;
    /** Per tree: node index -> dense label index (leaves only). */
    std::vector<std::vector<uint32_t>> leaf_label_idx_;
};

}  // namespace ml
}  // namespace snip

#endif  // SNIP_ML_RANDOM_FOREST_H
