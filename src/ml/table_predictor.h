/**
 * @file
 * Exact-match table predictor: the learned model *is* a lookup
 * table keyed on the selected feature values; each key maps to the
 * majority output signature seen for that key in training. This is
 * precisely the structure SNIP deploys to the phone, so measuring
 * its error under feature trimming measures deployed behaviour.
 */

#ifndef SNIP_ML_TABLE_PREDICTOR_H
#define SNIP_ML_TABLE_PREDICTOR_H

#include <unordered_map>

#include "ml/predictor.h"

namespace snip {
namespace ml {

/** Majority-vote exact-match table over selected features. */
class TablePredictor : public Predictor
{
  public:
    void train(const DatasetView &ds,
               const std::vector<size_t> &feature_cols) override;

    /** Train on a row subset (for held-out evaluation). */
    void trainOnRows(const DatasetView &ds,
                     const std::vector<size_t> &feature_cols,
                     const std::vector<size_t> &rows);

    uint64_t predict(const DatasetView &ds, size_t row,
                     size_t override_col = SIZE_MAX,
                     uint64_t override_value = 0) const override;

    size_t predictRow(const DatasetView &ds, size_t row,
                      size_t override_col = SIZE_MAX,
                      uint64_t override_value = 0) const override;

    void predictRows(const DatasetView &ds, size_t row_begin,
                     size_t row_end, uint64_t *out_labels,
                     size_t override_col = SIZE_MAX,
                     const uint64_t *override_values =
                         nullptr) const override;

    /**
     * Strict lookup: true (and the majority label) only when the
     * row's key exists in the trained table — a deployment "hit".
     * Misses fall back to full processing and are therefore not
     * errors, the distinction the feature selector relies on.
     */
    bool lookupLabel(const DatasetView &ds, size_t row,
                     uint64_t &label) const;

    /**
     * Online insert: add the row's key -> label mapping unless the
     * key already exists (append-only, first wins — the deployed
     * table's semantics between cloud re-learns).
     */
    void insertRow(const DatasetView &ds, size_t row);

    /** Number of distinct keys in the trained table. */
    size_t tableRows() const { return fkeys_.size() + delta_.size(); }

    /**
     * Number of distinct labels observed under a key averaged over
     * keys — > 1 means the selected features are ambiguous (the
     * Fig. 8a "more than one possible output" situation).
     */
    double meanLabelsPerKey() const;

    /** Fraction of training weight under keys with > 1 label. */
    double ambiguousWeightFraction() const
    {
        return ambiguousWeightFraction_;
    }

    /**
     * Content hash over the full table state (see Predictor):
     * covers the frozen columns, the fallback, AND the online delta
     * (sorted by key), since insertRow() changes predictions too.
     */
    uint64_t fingerprint() const override;

  private:
    struct Entry {
        uint64_t majority_label = kNoLabel;
        size_t representative_row = SIZE_MAX;
        uint32_t distinct_labels = 0;
    };

    uint64_t keyOf(const DatasetView &ds, size_t row, size_t override_col,
                   uint64_t override_value) const;

    /** Frozen-table probe: entry index for @p key, or SIZE_MAX. */
    size_t probe(uint64_t key) const;
    struct Hit {
        bool hit = false;
        uint64_t label = kNoLabel;
        size_t repr = SIZE_MAX;
    };
    /** Probe frozen then delta; the PFI inner loop lives here. */
    Hit find(uint64_t key) const;

    std::vector<size_t> cols_;

    /**
     * The trained table is frozen after trainOnRows into the same
     * shape the runtime deploys (core::FrozenTable): a power-of-two
     * open-addressing slot array over flat entry columns, probed
     * with one index hit + linear scan and zero allocation. Online
     * insertRow() keys land in the small delta_ map instead — the
     * frozen arrays stay immutable between re-trains.
     */
    std::vector<uint64_t> fkeys_;        // entry keys, ascending
    std::vector<uint64_t> flabels_;      // majority label per entry
    std::vector<size_t> freprs_;         // representative row
    std::vector<uint32_t> fdistinct_;    // distinct labels per key
    std::vector<uint32_t> fslots_;       // entry index + 1; 0 = empty
    std::unordered_map<uint64_t, Entry> delta_;
    uint64_t fallbackLabel_ = kNoLabel;
    size_t fallbackRow_ = SIZE_MAX;
    double ambiguousWeightFraction_ = 0.0;
};

}  // namespace ml
}  // namespace snip

#endif  // SNIP_ML_TABLE_PREDICTOR_H
