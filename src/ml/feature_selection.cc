#include "ml/feature_selection.h"

#include <algorithm>

#include "obs/span.h"
#include "util/logging.h"

namespace snip {
namespace ml {

namespace {

/** How far past the knee the exploratory tail charts (Fig. 9). */
constexpr double kCurveStopError = 0.40;
/** Importances are recomputed every this many committed drops. */
constexpr int kPfiRefreshEvery = 6;
/** Fraction of (time-ordered) records used for training. */
constexpr double kTrainFraction = 0.7;

/** Held-out wrong-hit rate and hit rate of a trained table. */
struct HoldoutEval {
    double wrong_hit = 0.0;
    double hit_rate = 0.0;

    /** Wrong hits as a fraction of hits (0 when nothing hit). */
    double conditionalError() const
    {
        return hit_rate > 0.0 ? wrong_hit / hit_rate : 0.0;
    }
};

HoldoutEval
evaluateHoldout(TablePredictor &model, const DatasetView &ds,
                const std::vector<size_t> &holdout)
{
    // Prequential walk: misses are inserted (first-wins), exactly
    // like the deployed table's online fill, so degenerate key sets
    // that memorize rather than generalize reveal their wrong hits
    // here rather than on the user's phone.
    uint64_t total = 0, hits = 0, wrong = 0;
    for (size_t row : holdout) {
        total += ds.weight(row);
        uint64_t label;
        if (model.lookupLabel(ds, row, label)) {
            hits += ds.weight(row);
            if (label != ds.label(row))
                wrong += ds.weight(row);
        } else {
            model.insertRow(ds, row);
        }
    }
    HoldoutEval ev;
    if (total) {
        ev.wrong_hit = static_cast<double>(wrong) /
                       static_cast<double>(total);
        ev.hit_rate = static_cast<double>(hits) /
                      static_cast<double>(total);
    }
    return ev;
}

}  // namespace

SelectionResult
selectNecessaryInputs(const DatasetView &ds, const SelectionConfig &cfg)
{
    SelectionResult out;
    obs::Span sel_span(cfg.obs, "select");

    // The nested PFI runs inherit the selector's registry unless the
    // caller wired one explicitly.
    PfiConfig pfi_cfg = cfg.pfi;
    if (!pfi_cfg.obs)
        pfi_cfg.obs = cfg.obs;

    std::vector<size_t> cols(ds.numFeatures());
    for (size_t i = 0; i < cols.size(); ++i)
        cols[i] = i;

    // Time-ordered split: train on the earlier 70%, evaluate
    // deployment behaviour (wrong hits) on the later 30%. This is
    // what catches row-id-like features (e.g. context-block hashes)
    // that memorize the training profile but never match again.
    size_t n = ds.numRows();
    size_t train_n = std::max<size_t>(1, static_cast<size_t>(
                                             n * kTrainFraction));
    if (train_n >= n)
        train_n = n - (n > 1 ? 1 : 0);
    std::vector<size_t> train_rows, holdout_rows;
    for (size_t i = 0; i < n; ++i)
        (i < train_n ? train_rows : holdout_rows).push_back(i);
    if (holdout_rows.empty())
        holdout_rows.push_back(n - 1);

    std::vector<char> locked(ds.numFeatures(), 0);
    for (events::FieldId fid : cfg.forced_keep) {
        size_t c = ds.columnOf(fid);
        if (c != SIZE_MAX)
            locked[c] = 1;
    }

    TablePredictor model;
    // Span-wrapped phase helpers; with a null registry the spans are
    // inert and these are plain calls.
    auto train_model = [&](const std::vector<size_t> &use_cols) {
        obs::Span s(cfg.obs, "train");
        model.trainOnRows(ds, use_cols, train_rows);
    };
    auto eval_holdout = [&]() {
        obs::Span s(cfg.obs, "holdout");
        return evaluateHoldout(model, ds, holdout_rows);
    };
    train_model(cols);
    HoldoutEval cur = eval_holdout();
    out.full_error = cur.wrong_hit;
    out.full_bytes = ds.bytesOfColumns(cols);

    auto record_step = [&](size_t col, const HoldoutEval &ev) {
        TrimStep step;
        step.dropped = ds.featureField(col);
        step.dropped_cat = ds.schema().def(step.dropped).in_cat;
        step.dropped_bytes = ds.featureBytes(col);
        step.remaining_bytes = ds.bytesOfColumns(cols);
        step.error = ev.wrong_hit;
        step.hit_rate = ev.hit_rate;
        out.curve.push_back(step);
    };

    // PFI (on a model trained over the training split, evaluated
    // with the miss-is-error metric) only *orders* drop candidates;
    // correctness comes from the try-drop-with-restore loop below.
    // Importance is normalized per byte so that bulky proxies (4 kB
    // context blocks mirroring a 4 B state variable) sweep out
    // first — a minimal-byte necessary set is SNIP's objective.
    //
    // Importances live in a direct per-column array (no per-compare
    // list scan), refreshed every kPfiRefreshEvery committed drops.
    // Only unlocked columns are ever ordered as drop candidates, so
    // with cache_pfi the refresh recomputes just those and keeps
    // cached values for locked columns — identical output, because
    // per-column PFI permutation streams are column-keyed (pfi.h).
    std::vector<double> imp_by_col(ds.numFeatures(), 0.0);
    auto refresh_pfi = [&]() {
        std::vector<size_t> want;
        want.reserve(cols.size());
        for (size_t c : cols)
            if (!cfg.cache_pfi || !locked[c])
                want.push_back(c);
        PfiResult pfi = computePfi(model, ds, want, pfi_cfg);
        for (size_t i = 0; i < want.size(); ++i)
            imp_by_col[want[i]] = pfi.importance[i];
        if (cfg.obs)
            cfg.obs->counter("shrink.select.pfi_refreshes").add(1);
    };
    refresh_pfi();
    auto per_byte_cmp = [&](size_t a, size_t b) {
        double ia = imp_by_col[a] /
                    static_cast<double>(ds.featureBytes(a));
        double ib = imp_by_col[b] /
                    static_cast<double>(ds.featureBytes(b));
        if (ia != ib)
            return ia < ib;
        return ds.featureBytes(a) > ds.featureBytes(b);
    };

    // --- Phase A: backward elimination with restore-and-lock.
    int commits_since_refresh = 0;
    for (;;) {
        std::vector<size_t> order;
        for (size_t c : cols)
            if (!locked[c])
                order.push_back(c);
        if (order.empty() || cols.size() <= 1)
            break;
        std::sort(order.begin(), order.end(), per_byte_cmp);

        bool committed = false;
        for (size_t col : order) {
            std::vector<size_t> trial;
            trial.reserve(cols.size() - 1);
            for (size_t c : cols)
                if (c != col)
                    trial.push_back(c);
            train_model(trial);
            HoldoutEval ev = eval_holdout();
            if (ev.wrong_hit <= cfg.max_error &&
                ev.conditionalError() <= cfg.max_conditional_error) {
                cols = std::move(trial);
                cur = ev;
                record_step(col, ev);
                committed = true;
                if (cfg.obs) {
                    cfg.obs->counter("shrink.select.drops_committed")
                        .add(1);
                }
                if (++commits_since_refresh >= kPfiRefreshEvery) {
                    train_model(cols);
                    refresh_pfi();
                    commits_since_refresh = 0;
                }
                break;
            }
            locked[col] = 1;  // necessary: keep it from now on
            if (cfg.obs)
                cfg.obs->counter("shrink.select.drops_restored").add(1);
        }
        if (!committed)
            break;
    }

    out.selected.clear();
    for (size_t c : cols)
        out.selected.push_back(ds.featureField(c));
    std::sort(out.selected.begin(), out.selected.end());
    out.selected_bytes = ds.bytesOfColumns(cols);
    out.selected_error = cur.wrong_hit;
    out.selected_hit_rate = cur.hit_rate;

    // --- Phase B: exploratory tail past the knee. Keep dropping the
    // least-important remaining feature regardless of the budget so
    // the Fig. 9 curve shows the error ramp; does not affect the
    // selected set.
    train_model(cols);
    PfiResult pfi = computePfi(model, ds, cols, pfi_cfg);
    while (cols.size() > 1) {
        size_t pick = 0;
        auto per_byte = [&](size_t i) {
            return pfi.importance[i] /
                   static_cast<double>(ds.featureBytes(cols[i]));
        };
        for (size_t i = 1; i < cols.size(); ++i) {
            if (per_byte(i) < per_byte(pick) ||
                (per_byte(i) == per_byte(pick) &&
                 ds.featureBytes(cols[i]) > ds.featureBytes(cols[pick])))
                pick = i;
        }
        size_t col = cols[pick];
        cols.erase(cols.begin() + static_cast<long>(pick));
        pfi.importance.erase(pfi.importance.begin() +
                             static_cast<long>(pick));
        train_model(cols);
        HoldoutEval ev = eval_holdout();
        record_step(col, ev);
        if (ev.wrong_hit > kCurveStopError)
            break;
    }
    return out;
}

}  // namespace ml
}  // namespace snip
