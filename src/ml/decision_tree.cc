#include "ml/decision_tree.h"

#include <algorithm>

#include "util/logging.h"

namespace snip {
namespace ml {

namespace {

/**
 * Weighted Gini impurity of a dense label tally (indexed by the
 * tree's label dictionary). Ascending index is ascending label, and
 * empty labels are skipped, so the summation order — and hence the
 * floating-point result — matches the old ordered-map tally exactly.
 */
double
gini(const std::vector<uint64_t> &tally, uint64_t total)
{
    if (total == 0)
        return 0.0;
    double g = 1.0;
    for (uint64_t c : tally) {
        if (c == 0)
            continue;
        double p = static_cast<double>(c) /
                   static_cast<double>(total);
        g -= p * p;
    }
    return g;
}

}  // namespace

DecisionTree::DecisionTree(TreeConfig cfg) : cfg_(cfg) {}

void
DecisionTree::train(const Dataset &ds,
                    const std::vector<size_t> &feature_cols)
{
    std::vector<size_t> rows(ds.numRows());
    for (size_t i = 0; i < rows.size(); ++i)
        rows[i] = i;
    trainOnRows(ds, feature_cols, rows);
}

void
DecisionTree::trainOnRows(const Dataset &ds,
                          const std::vector<size_t> &feature_cols,
                          const std::vector<size_t> &rows)
{
    nodes_.clear();

    // Build the label dictionary once per training run; every split
    // then tallies through dense indices instead of an ordered map.
    labels_.clear();
    labels_.reserve(rows.size());
    for (size_t r : rows)
        labels_.push_back(ds.label(r));
    std::sort(labels_.begin(), labels_.end());
    labels_.erase(std::unique(labels_.begin(), labels_.end()),
                  labels_.end());
    row_label_idx_.assign(ds.numRows(), 0);
    for (size_t r : rows)
        row_label_idx_[r] = static_cast<uint32_t>(
            std::lower_bound(labels_.begin(), labels_.end(),
                             ds.label(r)) -
            labels_.begin());
    tally_.assign(labels_.size(), 0);
    lt_.assign(labels_.size(), 0);
    rt_.assign(labels_.size(), 0);
    repr_.assign(labels_.size(), SIZE_MAX);

    std::vector<size_t> work = rows;
    util::Rng rng(cfg_.seed);
    build(ds, feature_cols, work, 0, rng);
}

int
DecisionTree::makeLeaf(const Dataset &ds, const std::vector<size_t> &rows)
{
    Node n;
    std::fill(tally_.begin(), tally_.end(), 0);
    std::fill(repr_.begin(), repr_.end(), SIZE_MAX);
    for (size_t r : rows) {
        uint32_t li = row_label_idx_[r];
        tally_[li] += ds.weight(r);
        if (repr_[li] == SIZE_MAX)
            repr_[li] = r;  // first row seen, as before
    }
    // Strict > over ascending labels keeps the smallest-label
    // tie-break of the ordered-map scan.
    uint64_t best = 0;
    for (size_t i = 0; i < labels_.size(); ++i) {
        if (tally_[i] > best) {
            best = tally_[i];
            n.label = labels_[i];
            n.representative = repr_[i];
        }
    }
    nodes_.push_back(n);
    return static_cast<int>(nodes_.size() - 1);
}

int
DecisionTree::build(const Dataset &ds, const std::vector<size_t> &cols,
                    std::vector<size_t> &rows, int depth, util::Rng &rng)
{
    // Homogeneous or tiny partitions become leaves.
    bool uniform = true;
    for (size_t i = 1; i < rows.size(); ++i) {
        if (ds.label(rows[i]) != ds.label(rows[0])) {
            uniform = false;
            break;
        }
    }
    if (uniform || depth >= cfg_.max_depth ||
        rows.size() < cfg_.min_samples_split)
        return makeLeaf(ds, rows);

    // Candidate feature set.
    std::vector<size_t> cand = cols;
    if (cfg_.feature_subsample > 0 &&
        cfg_.feature_subsample < cand.size()) {
        auto perm = rng.permutation(cand.size());
        std::vector<size_t> sub;
        for (size_t i = 0; i < cfg_.feature_subsample; ++i)
            sub.push_back(cand[perm[i]]);
        cand = std::move(sub);
    }

    std::fill(tally_.begin(), tally_.end(), 0);
    uint64_t total_w = 0;
    for (size_t r : rows) {
        tally_[row_label_idx_[r]] += ds.weight(r);
        total_w += ds.weight(r);
    }
    double parent_gini = gini(tally_, total_w);

    double best_gain = 1e-12;
    size_t best_col = SIZE_MAX;
    uint64_t best_thr = 0;

    for (size_t col : cand) {
        // Distinct values as threshold candidates (capped). The
        // contiguous column keeps the two scans below cache-linear
        // in the column even though rows is a bootstrap subset.
        const uint64_t *colv = ds.columnData(col);
        std::vector<uint64_t> values;
        values.reserve(rows.size());
        for (size_t r : rows)
            values.push_back(colv[r]);
        std::sort(values.begin(), values.end());
        values.erase(std::unique(values.begin(), values.end()),
                     values.end());
        if (values.size() < 2)
            continue;
        size_t step = std::max<size_t>(
            1, values.size() /
                   static_cast<size_t>(cfg_.threshold_candidates));
        for (size_t i = 0; i + 1 < values.size(); i += step) {
            uint64_t thr = values[i];
            std::fill(lt_.begin(), lt_.end(), 0);
            std::fill(rt_.begin(), rt_.end(), 0);
            uint64_t lw = 0, rw = 0;
            for (size_t r : rows) {
                uint64_t w = ds.weight(r);
                if (colv[r] <= thr) {
                    lt_[row_label_idx_[r]] += w;
                    lw += w;
                } else {
                    rt_[row_label_idx_[r]] += w;
                    rw += w;
                }
            }
            if (lw == 0 || rw == 0)
                continue;
            double child =
                (static_cast<double>(lw) * gini(lt_, lw) +
                 static_cast<double>(rw) * gini(rt_, rw)) /
                static_cast<double>(total_w);
            double gain = parent_gini - child;
            if (gain > best_gain) {
                best_gain = gain;
                best_col = col;
                best_thr = thr;
            }
        }
    }

    if (best_col == SIZE_MAX)
        return makeLeaf(ds, rows);

    const uint64_t *bestv = ds.columnData(best_col);
    std::vector<size_t> left, right;
    for (size_t r : rows) {
        if (bestv[r] <= best_thr)
            left.push_back(r);
        else
            right.push_back(r);
    }

    // Reserve this node's slot before recursing.
    nodes_.emplace_back();
    int self = static_cast<int>(nodes_.size() - 1);
    int li = build(ds, cols, left, depth + 1, rng);
    int ri = build(ds, cols, right, depth + 1, rng);
    Node &n = nodes_[static_cast<size_t>(self)];
    n.leaf = false;
    n.col = best_col;
    n.threshold = best_thr;
    n.left = li;
    n.right = ri;
    return self;
}

int
DecisionTree::walk(const Dataset &ds, size_t row, size_t override_col,
                   uint64_t override_value) const
{
    if (nodes_.empty())
        util::panic("DecisionTree::walk before train()");
    int idx = 0;
    for (;;) {
        const Node &n = nodes_[static_cast<size_t>(idx)];
        if (n.leaf)
            return idx;
        uint64_t v = (n.col == override_col) ? override_value
                                             : ds.value(row, n.col);
        idx = (v <= n.threshold) ? n.left : n.right;
    }
}

uint64_t
DecisionTree::predict(const Dataset &ds, size_t row, size_t override_col,
                      uint64_t override_value) const
{
    return nodes_[static_cast<size_t>(
                      walk(ds, row, override_col, override_value))]
        .label;
}

size_t
DecisionTree::predictRow(const Dataset &ds, size_t row,
                         size_t override_col,
                         uint64_t override_value) const
{
    return nodes_[static_cast<size_t>(
                      walk(ds, row, override_col, override_value))]
        .representative;
}

void
DecisionTree::predictRows(const Dataset &ds, size_t row_begin,
                          size_t row_end, uint64_t *out_labels,
                          size_t override_col,
                          const uint64_t *override_values) const
{
    for (size_t r = row_begin; r < row_end; ++r) {
        uint64_t ov =
            override_col != SIZE_MAX ? override_values[r] : 0;
        out_labels[r - row_begin] =
            nodes_[static_cast<size_t>(
                       walk(ds, r, override_col, ov))]
                .label;
    }
}

}  // namespace ml
}  // namespace snip
