#include "ml/decision_tree.h"

#include <algorithm>

#include "util/logging.h"

namespace snip {
namespace ml {

namespace {

/**
 * Weighted Gini impurity of a dense label tally (indexed by the
 * tree's label dictionary). Ascending index is ascending label, and
 * empty labels are skipped, so the summation order — and hence the
 * floating-point result — matches the old ordered-map tally exactly.
 */
double
gini(const std::vector<uint64_t> &tally, uint64_t total)
{
    if (total == 0)
        return 0.0;
    double g = 1.0;
    for (uint64_t c : tally) {
        if (c == 0)
            continue;
        double p = static_cast<double>(c) /
                   static_cast<double>(total);
        g -= p * p;
    }
    return g;
}

/**
 * Cells budget of the distinct-value x label histogram. Splits whose
 * matrix would exceed it (e.g. a row-unique blob column against many
 * labels) fall back to the per-threshold rescan, which evaluates the
 * identical integers — the histogram is purely a one-pass
 * acceleration of the same tallies.
 */
constexpr size_t kHistCells = size_t{1} << 21;

/**
 * Residency charged for gathering @p n frontier rows from one mapped
 * column, inside a scan that visits @p scan_rows rows of that column
 * in total. Node frontiers are bootstrap-shuffled, so each touched
 * row can fault in a whole page; deep in the tree the nodes are tiny
 * and byte-accurate accounting (n * 8) would never reach the release
 * threshold while the sparse touches quietly fault in every page of
 * every candidate column. Charging min(page, column / scan_rows) per
 * row tracks the true fresh residency at both ends: a dense scan
 * amortizes to the column's own bytes (its pages are shared between
 * rows), a sparse leaf-node scan pays a page per row. Purely
 * advisory — in-memory datasets no-op the hook.
 */
constexpr size_t kGatherPage = 4096;

size_t
gatherBytes(const DatasetView &ds, size_t n, size_t scan_rows)
{
    size_t col = ds.numRows() * 8;
    size_t per_row = std::min(
        kGatherPage,
        std::max<size_t>(8, col / std::max<size_t>(1, scan_rows)));
    return n * per_row;
}

}  // namespace

DecisionTree::DecisionTree(TreeConfig cfg) : cfg_(cfg) {}

void
DecisionTree::train(const DatasetView &ds,
                    const std::vector<size_t> &feature_cols)
{
    std::vector<size_t> rows(ds.numRows());
    for (size_t i = 0; i < rows.size(); ++i)
        rows[i] = i;
    trainOnRows(ds, feature_cols, rows);
}

void
DecisionTree::trainOnRows(const DatasetView &ds,
                          const std::vector<size_t> &feature_cols,
                          const std::vector<size_t> &rows)
{
    nodes_.clear();

    // Build the label dictionary once per training run; every split
    // then tallies through dense indices instead of an ordered map.
    labels_.clear();
    labels_.reserve(rows.size());
    for (size_t r : rows)
        labels_.push_back(ds.label(r));
    std::sort(labels_.begin(), labels_.end());
    labels_.erase(std::unique(labels_.begin(), labels_.end()),
                  labels_.end());
    row_label_idx_.assign(ds.numRows(), 0);
    for (size_t r : rows)
        row_label_idx_[r] = static_cast<uint32_t>(
            std::lower_bound(labels_.begin(), labels_.end(),
                             ds.label(r)) -
            labels_.begin());
    ds.noteStreamed(gatherBytes(ds, rows.size(), rows.size()));
    tally_.assign(labels_.size(), 0);
    lt_.assign(labels_.size(), 0);
    rt_.assign(labels_.size(), 0);
    repr_.assign(labels_.size(), SIZE_MAX);

    // One frontier array for the whole build; build() partitions it
    // in place and recurses on [lo, hi) ranges.
    frontier_.assign(rows.begin(), rows.end());
    vals_.reserve(frontier_.size());
    util::Rng rng(cfg_.seed);
    build(ds, feature_cols, 0, frontier_.size(), 0, rng);

    // Everything but the node array is build-time scratch. Release
    // it (capacity included) so a trained tree holds O(nodes), not
    // O(rows) — across a sequentially-trained out-of-core forest the
    // retained frontiers would otherwise multiply by the tree count.
    for (auto *v : {&labels_, &tally_, &lt_, &rt_, &vals_, &hist_,
                    &histW_})
        std::vector<uint64_t>().swap(*v);
    std::vector<uint32_t>().swap(row_label_idx_);
    std::vector<size_t>().swap(repr_);
    std::vector<size_t>().swap(frontier_);
    std::vector<size_t>().swap(partScratch_);
}

int
DecisionTree::makeLeaf(const DatasetView &ds, size_t lo, size_t hi)
{
    Node n;
    std::fill(tally_.begin(), tally_.end(), 0);
    std::fill(repr_.begin(), repr_.end(), SIZE_MAX);
    for (size_t i = lo; i < hi; ++i) {
        size_t r = frontier_[i];
        uint32_t li = row_label_idx_[r];
        tally_[li] += ds.weight(r);
        if (repr_[li] == SIZE_MAX)
            repr_[li] = r;  // first row seen, as before
    }
    ds.noteStreamed(gatherBytes(ds, hi - lo, hi - lo));
    // Strict > over ascending labels keeps the smallest-label
    // tie-break of the ordered-map scan.
    uint64_t best = 0;
    for (size_t i = 0; i < labels_.size(); ++i) {
        if (tally_[i] > best) {
            best = tally_[i];
            n.label = labels_[i];
            n.representative = repr_[i];
        }
    }
    nodes_.push_back(n);
    return static_cast<int>(nodes_.size() - 1);
}

int
DecisionTree::build(const DatasetView &ds,
                    const std::vector<size_t> &cols, size_t lo,
                    size_t hi, int depth, util::Rng &rng)
{
    size_t nrows = hi - lo;
    // Homogeneous or tiny partitions become leaves.
    bool uniform = true;
    for (size_t i = lo + 1; i < hi; ++i) {
        if (ds.label(frontier_[i]) != ds.label(frontier_[lo])) {
            uniform = false;
            break;
        }
    }
    ds.noteStreamed(gatherBytes(ds, nrows, nrows));
    if (uniform || depth >= cfg_.max_depth ||
        nrows < cfg_.min_samples_split)
        return makeLeaf(ds, lo, hi);

    // Candidate feature set.
    std::vector<size_t> cand = cols;
    if (cfg_.feature_subsample > 0 &&
        cfg_.feature_subsample < cand.size()) {
        auto perm = rng.permutation(cand.size());
        std::vector<size_t> sub;
        for (size_t i = 0; i < cfg_.feature_subsample; ++i)
            sub.push_back(cand[perm[i]]);
        cand = std::move(sub);
    }

    std::fill(tally_.begin(), tally_.end(), 0);
    uint64_t total_w = 0;
    for (size_t i = lo; i < hi; ++i) {
        size_t r = frontier_[i];
        tally_[row_label_idx_[r]] += ds.weight(r);
        total_w += ds.weight(r);
    }
    ds.noteStreamed(gatherBytes(ds, nrows, nrows));
    double parent_gini = gini(tally_, total_w);

    double best_gain = 1e-12;
    size_t best_col = SIZE_MAX;
    uint64_t best_thr = 0;
    size_t nlabels = labels_.size();
    size_t blk = std::max<size_t>(1, ds.streamBlockRows());

    for (size_t col : cand) {
        // Distinct values as threshold candidates (capped). The
        // contiguous column keeps the scans below cache-linear in
        // the column even though the node rows are a bootstrap
        // subset; block-sized passes let a mapped store release
        // pages behind the scan.
        const uint64_t *colv = ds.columnData(col);
        vals_.clear();
        for (size_t base = 0; base < nrows; base += blk) {
            size_t n = std::min(blk, nrows - base);
            for (size_t i = 0; i < n; ++i)
                vals_.push_back(colv[frontier_[lo + base + i]]);
            ds.noteStreamed(gatherBytes(ds, n, nrows));
        }
        std::sort(vals_.begin(), vals_.end());
        vals_.erase(std::unique(vals_.begin(), vals_.end()),
                    vals_.end());
        size_t nvals = vals_.size();
        if (nvals < 2)
            continue;
        size_t step = std::max<size_t>(
            1, nvals / static_cast<size_t>(cfg_.threshold_candidates));

        bool use_hist =
            nlabels != 0 && nvals <= kHistCells / nlabels;
        if (use_hist) {
            // One pass: per-(distinct value, label) weight tallies,
            // then a running prefix over ascending distinct values
            // yields the exact left/right tallies at each threshold.
            // Everything is uint64, so the result is bitwise equal
            // to rescanning the rows per threshold.
            hist_.assign(nvals * nlabels, 0);
            histW_.assign(nvals, 0);
            for (size_t base = 0; base < nrows; base += blk) {
                size_t n = std::min(blk, nrows - base);
                for (size_t i = 0; i < n; ++i) {
                    size_t r = frontier_[lo + base + i];
                    size_t di = static_cast<size_t>(
                        std::lower_bound(vals_.begin(), vals_.end(),
                                         colv[r]) -
                        vals_.begin());
                    uint64_t w = ds.weight(r);
                    hist_[di * nlabels + row_label_idx_[r]] += w;
                    histW_[di] += w;
                }
                ds.noteStreamed(2 * gatherBytes(ds, n, nrows));
            }
            std::fill(lt_.begin(), lt_.end(), 0);
            uint64_t lw = 0;
            size_t next_di = 0;
            for (size_t i = 0; i + 1 < nvals; i += step) {
                for (; next_di <= i; ++next_di) {
                    const uint64_t *h = &hist_[next_di * nlabels];
                    for (size_t l = 0; l < nlabels; ++l)
                        lt_[l] += h[l];
                    lw += histW_[next_di];
                }
                uint64_t rw = total_w - lw;
                if (lw == 0 || rw == 0)
                    continue;
                for (size_t l = 0; l < nlabels; ++l)
                    rt_[l] = tally_[l] - lt_[l];
                double child =
                    (static_cast<double>(lw) * gini(lt_, lw) +
                     static_cast<double>(rw) * gini(rt_, rw)) /
                    static_cast<double>(total_w);
                double gain = parent_gini - child;
                if (gain > best_gain) {
                    best_gain = gain;
                    best_col = col;
                    best_thr = vals_[i];
                }
            }
        } else {
            // Oversized matrix (row-unique blob columns): the
            // legacy per-threshold rescan, identical tallies.
            for (size_t i = 0; i + 1 < nvals; i += step) {
                uint64_t thr = vals_[i];
                std::fill(lt_.begin(), lt_.end(), 0);
                std::fill(rt_.begin(), rt_.end(), 0);
                uint64_t lw = 0, rw = 0;
                for (size_t j = lo; j < hi; ++j) {
                    size_t r = frontier_[j];
                    uint64_t w = ds.weight(r);
                    if (colv[r] <= thr) {
                        lt_[row_label_idx_[r]] += w;
                        lw += w;
                    } else {
                        rt_[row_label_idx_[r]] += w;
                        rw += w;
                    }
                }
                ds.noteStreamed(2 * gatherBytes(ds, nrows, nrows));
                if (lw == 0 || rw == 0)
                    continue;
                double child =
                    (static_cast<double>(lw) * gini(lt_, lw) +
                     static_cast<double>(rw) * gini(rt_, rw)) /
                    static_cast<double>(total_w);
                double gain = parent_gini - child;
                if (gain > best_gain) {
                    best_gain = gain;
                    best_col = col;
                    best_thr = thr;
                }
            }
        }
    }

    if (best_col == SIZE_MAX)
        return makeLeaf(ds, lo, hi);

    // Stable in-place partition of the frontier range: left rows
    // compact forward in original order, right rows return from the
    // scratch in original order — the same sequences the legacy
    // left/right vectors held, without O(rows) memory per node.
    const uint64_t *bestv = ds.columnData(best_col);
    partScratch_.clear();
    size_t w = lo;
    for (size_t base = 0; base < nrows; base += blk) {
        size_t n = std::min(blk, nrows - base);
        for (size_t i = 0; i < n; ++i) {
            size_t r = frontier_[lo + base + i];
            if (bestv[r] <= best_thr)
                frontier_[w++] = r;
            else
                partScratch_.push_back(r);
        }
        ds.noteStreamed(gatherBytes(ds, n, nrows));
    }
    std::copy(partScratch_.begin(), partScratch_.end(),
              frontier_.begin() + static_cast<long>(w));
    size_t mid = w;

    // Reserve this node's slot before recursing.
    nodes_.emplace_back();
    int self = static_cast<int>(nodes_.size() - 1);
    int li = build(ds, cols, lo, mid, depth + 1, rng);
    int ri = build(ds, cols, mid, hi, depth + 1, rng);
    Node &n = nodes_[static_cast<size_t>(self)];
    n.leaf = false;
    n.col = best_col;
    n.threshold = best_thr;
    n.left = li;
    n.right = ri;
    return self;
}

int
DecisionTree::walk(const DatasetView &ds, size_t row,
                   size_t override_col, uint64_t override_value) const
{
    if (nodes_.empty())
        util::panic("DecisionTree::walk before train()");
    int idx = 0;
    for (;;) {
        const Node &n = nodes_[static_cast<size_t>(idx)];
        if (n.leaf)
            return idx;
        uint64_t v = (n.col == override_col) ? override_value
                                             : ds.value(row, n.col);
        idx = (v <= n.threshold) ? n.left : n.right;
    }
}

uint64_t
DecisionTree::predict(const DatasetView &ds, size_t row,
                      size_t override_col,
                      uint64_t override_value) const
{
    return nodes_[static_cast<size_t>(
                      walk(ds, row, override_col, override_value))]
        .label;
}

size_t
DecisionTree::predictRow(const DatasetView &ds, size_t row,
                         size_t override_col,
                         uint64_t override_value) const
{
    return nodes_[static_cast<size_t>(
                      walk(ds, row, override_col, override_value))]
        .representative;
}

void
DecisionTree::predictRows(const DatasetView &ds, size_t row_begin,
                          size_t row_end, uint64_t *out_labels,
                          size_t override_col,
                          const uint64_t *override_values) const
{
    for (size_t r = row_begin; r < row_end; ++r) {
        uint64_t ov =
            override_col != SIZE_MAX ? override_values[r] : 0;
        out_labels[r - row_begin] =
            nodes_[static_cast<size_t>(
                       walk(ds, r, override_col, ov))]
                .label;
    }
}

uint64_t
DecisionTree::fingerprint() const
{
    uint64_t h = util::mixCombine(0x7ee5f1ULL, nodes_.size());
    for (const Node &n : nodes_) {
        h = util::mixCombine(h, n.leaf ? 1 : 0);
        h = util::mixCombine(h, static_cast<uint64_t>(n.col));
        h = util::mixCombine(h, n.threshold);
        h = util::mixCombine(
            h, static_cast<uint64_t>(static_cast<int64_t>(n.left)));
        h = util::mixCombine(
            h, static_cast<uint64_t>(static_cast<int64_t>(n.right)));
        h = util::mixCombine(h, n.label);
        h = util::mixCombine(h, static_cast<uint64_t>(n.representative));
    }
    return h ? h : 1;
}

}  // namespace ml
}  // namespace snip
