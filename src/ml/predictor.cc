#include "ml/predictor.h"

#include <algorithm>

#include "util/logging.h"

namespace snip {
namespace ml {

void
Predictor::predictRows(const DatasetView &ds, size_t row_begin,
                       size_t row_end, uint64_t *out_labels,
                       size_t override_col,
                       const uint64_t *override_values) const
{
    if (override_col != SIZE_MAX && override_values == nullptr)
        util::panic("Predictor::predictRows: override_col without "
                    "override_values");
    for (size_t r = row_begin; r < row_end; ++r) {
        out_labels[r - row_begin] =
            predict(ds, r, override_col,
                    override_col != SIZE_MAX ? override_values[r] : 0);
    }
}

double
weightedErrorRate(const Predictor &p, const DatasetView &ds)
{
    // Batched so forests pay the per-range cost once, in blocks
    // small enough to stay cache-resident.
    constexpr size_t kBlock = 512;
    uint64_t labels[kBlock];
    uint64_t wrong = 0;
    size_t n = ds.numRows();
    for (size_t begin = 0; begin < n; begin += kBlock) {
        size_t end = std::min(n, begin + kBlock);
        p.predictRows(ds, begin, end, labels);
        for (size_t r = begin; r < end; ++r) {
            if (labels[r - begin] != ds.label(r))
                wrong += ds.weight(r);
        }
    }
    return static_cast<double>(wrong) /
           static_cast<double>(ds.totalWeight());
}

}  // namespace ml
}  // namespace snip
