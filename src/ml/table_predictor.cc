#include "ml/table_predictor.h"

#include <algorithm>
#include <map>

#include "util/rng.h"

namespace snip {
namespace ml {

size_t
TablePredictor::probe(uint64_t key) const
{
    if (fslots_.empty())
        return SIZE_MAX;
    size_t mask = fslots_.size() - 1;
    size_t idx = static_cast<size_t>(key) & mask;
    for (size_t step = 0; step < fslots_.size(); ++step) {
        uint32_t v = fslots_[idx];
        if (v == 0)
            return SIZE_MAX;
        if (fkeys_[v - 1] == key)
            return static_cast<size_t>(v - 1);
        idx = (idx + 1) & mask;
    }
    return SIZE_MAX;
}

TablePredictor::Hit
TablePredictor::find(uint64_t key) const
{
    Hit h;
    size_t e = probe(key);
    if (e != SIZE_MAX) {
        h.hit = true;
        h.label = flabels_[e];
        h.repr = freprs_[e];
        return h;
    }
    auto it = delta_.find(key);
    if (it != delta_.end()) {
        h.hit = true;
        h.label = it->second.majority_label;
        h.repr = it->second.representative_row;
    }
    return h;
}

uint64_t
TablePredictor::keyOf(const DatasetView &ds, size_t row, size_t override_col,
                      uint64_t override_value) const
{
    uint64_t h = 0x5eedf00d5eedULL;
    for (size_t c : cols_) {
        uint64_t v = (c == override_col) ? override_value
                                         : ds.value(row, c);
        h = util::mixCombine(h, util::mixCombine(c, v));
    }
    return h;
}

void
TablePredictor::train(const DatasetView &ds,
                      const std::vector<size_t> &feature_cols)
{
    std::vector<size_t> rows(ds.numRows());
    for (size_t i = 0; i < rows.size(); ++i)
        rows[i] = i;
    trainOnRows(ds, feature_cols, rows);
}

void
TablePredictor::trainOnRows(const DatasetView &ds,
                            const std::vector<size_t> &feature_cols,
                            const std::vector<size_t> &rows)
{
    cols_ = feature_cols;
    std::unordered_map<uint64_t, Entry> table;
    delta_.clear();

    // Per-key label tallies (weighted), then majority.
    struct Tally {
        std::map<uint64_t, uint64_t> label_weight;
        std::map<uint64_t, size_t> label_row;
        uint64_t total_weight = 0;
    };
    std::unordered_map<uint64_t, Tally> tallies;
    std::map<uint64_t, uint64_t> global;
    std::map<uint64_t, size_t> global_row;

    uint64_t trained_weight = 0;
    for (size_t row : rows) {
        uint64_t key = keyOf(ds, row, SIZE_MAX, 0);
        Tally &t = tallies[key];
        uint64_t lbl = ds.label(row);
        t.label_weight[lbl] += ds.weight(row);
        t.label_row.emplace(lbl, row);
        t.total_weight += ds.weight(row);
        global[lbl] += ds.weight(row);
        global_row.emplace(lbl, row);
        trained_weight += ds.weight(row);
    }

    uint64_t ambiguous_weight = 0;
    for (auto &kv : tallies) {
        Entry e;
        uint64_t best_w = 0;
        for (const auto &lw : kv.second.label_weight) {
            if (lw.second > best_w) {
                best_w = lw.second;
                e.majority_label = lw.first;
                e.representative_row = kv.second.label_row[lw.first];
            }
        }
        e.distinct_labels =
            static_cast<uint32_t>(kv.second.label_weight.size());
        if (e.distinct_labels > 1)
            ambiguous_weight += kv.second.total_weight;
        table[kv.first] = e;
    }
    ambiguousWeightFraction_ =
        trained_weight ? static_cast<double>(ambiguous_weight) /
                             static_cast<double>(trained_weight)
                       : 0.0;

    uint64_t best_w = 0;
    for (const auto &lw : global) {
        if (lw.second > best_w) {
            best_w = lw.second;
            fallbackLabel_ = lw.first;
            fallbackRow_ = global_row[lw.first];
        }
    }

    // Freeze: flat entry columns in ascending-key order plus a
    // power-of-two open-addressing slot index (load factor <= 0.5),
    // the deployed FrozenTable shape. Lookups from here on are one
    // probe + column reads, no node allocation or pointer chasing.
    size_t n = table.size();
    fkeys_.clear();
    fkeys_.reserve(n);
    for (const auto &kv : table)
        fkeys_.push_back(kv.first);
    std::sort(fkeys_.begin(), fkeys_.end());
    flabels_.resize(n);
    freprs_.resize(n);
    fdistinct_.resize(n);
    size_t cap = 4;
    while (cap < 2 * n)
        cap <<= 1;
    fslots_.assign(cap, 0);
    size_t mask = cap - 1;
    for (size_t i = 0; i < n; ++i) {
        const Entry &e = table[fkeys_[i]];
        flabels_[i] = e.majority_label;
        freprs_[i] = e.representative_row;
        fdistinct_[i] = e.distinct_labels;
        size_t idx = static_cast<size_t>(fkeys_[i]) & mask;
        while (fslots_[idx] != 0)
            idx = (idx + 1) & mask;
        fslots_[idx] = static_cast<uint32_t>(i + 1);
    }
}

uint64_t
TablePredictor::predict(const DatasetView &ds, size_t row,
                        size_t override_col,
                        uint64_t override_value) const
{
    Hit h = find(keyOf(ds, row, override_col, override_value));
    return h.hit ? h.label : fallbackLabel_;
}

void
TablePredictor::predictRows(const DatasetView &ds, size_t row_begin,
                            size_t row_end, uint64_t *out_labels,
                            size_t override_col,
                            const uint64_t *override_values) const
{
    // Hash-and-probe per row with no virtual hop per row; the PFI
    // inner loop spends its time here.
    for (size_t r = row_begin; r < row_end; ++r) {
        uint64_t ov =
            override_col != SIZE_MAX ? override_values[r] : 0;
        Hit h = find(keyOf(ds, r, override_col, ov));
        out_labels[r - row_begin] = h.hit ? h.label : fallbackLabel_;
    }
}

size_t
TablePredictor::predictRow(const DatasetView &ds, size_t row,
                           size_t override_col,
                           uint64_t override_value) const
{
    Hit h = find(keyOf(ds, row, override_col, override_value));
    return h.hit ? h.repr : fallbackRow_;
}

bool
TablePredictor::lookupLabel(const DatasetView &ds, size_t row,
                            uint64_t &label) const
{
    Hit h = find(keyOf(ds, row, SIZE_MAX, 0));
    if (!h.hit)
        return false;
    label = h.label;
    return true;
}

void
TablePredictor::insertRow(const DatasetView &ds, size_t row)
{
    // Online inserts never touch the frozen arrays; first-wins
    // semantics across both layers (frozen keys shadow the delta).
    uint64_t key = keyOf(ds, row, SIZE_MAX, 0);
    if (probe(key) != SIZE_MAX || delta_.count(key))
        return;
    Entry e;
    e.majority_label = ds.label(row);
    e.representative_row = row;
    e.distinct_labels = 1;
    delta_[key] = e;
}

uint64_t
TablePredictor::fingerprint() const
{
    uint64_t h = util::mixCombine(0x7ab1ef9ULL, fkeys_.size());
    for (size_t c : cols_)
        h = util::mixCombine(h, c);
    for (size_t i = 0; i < fkeys_.size(); ++i) {
        h = util::mixCombine(h, fkeys_[i]);
        h = util::mixCombine(h, flabels_[i]);
        h = util::mixCombine(h, static_cast<uint64_t>(freprs_[i]));
    }
    h = util::mixCombine(h, fallbackLabel_);
    h = util::mixCombine(h, static_cast<uint64_t>(fallbackRow_));
    std::vector<uint64_t> dkeys;
    dkeys.reserve(delta_.size());
    for (const auto &kv : delta_)
        dkeys.push_back(kv.first);
    std::sort(dkeys.begin(), dkeys.end());
    for (uint64_t k : dkeys) {
        const Entry &e = delta_.at(k);
        h = util::mixCombine(h, k);
        h = util::mixCombine(h, e.majority_label);
        h = util::mixCombine(
            h, static_cast<uint64_t>(e.representative_row));
    }
    return h ? h : 1;
}

double
TablePredictor::meanLabelsPerKey() const
{
    size_t n = fkeys_.size() + delta_.size();
    if (n == 0)
        return 0.0;
    double sum = 0.0;
    for (uint32_t d : fdistinct_)
        sum += d;
    for (const auto &kv : delta_)
        sum += kv.second.distinct_labels;
    return sum / static_cast<double>(n);
}

}  // namespace ml
}  // namespace snip
