#include "ml/table_predictor.h"

#include <map>

#include "util/rng.h"

namespace snip {
namespace ml {

uint64_t
TablePredictor::keyOf(const Dataset &ds, size_t row, size_t override_col,
                      uint64_t override_value) const
{
    uint64_t h = 0x5eedf00d5eedULL;
    for (size_t c : cols_) {
        uint64_t v = (c == override_col) ? override_value
                                         : ds.value(row, c);
        h = util::mixCombine(h, util::mixCombine(c, v));
    }
    return h;
}

void
TablePredictor::train(const Dataset &ds,
                      const std::vector<size_t> &feature_cols)
{
    std::vector<size_t> rows(ds.numRows());
    for (size_t i = 0; i < rows.size(); ++i)
        rows[i] = i;
    trainOnRows(ds, feature_cols, rows);
}

void
TablePredictor::trainOnRows(const Dataset &ds,
                            const std::vector<size_t> &feature_cols,
                            const std::vector<size_t> &rows)
{
    cols_ = feature_cols;
    table_.clear();

    // Per-key label tallies (weighted), then majority.
    struct Tally {
        std::map<uint64_t, uint64_t> label_weight;
        std::map<uint64_t, size_t> label_row;
        uint64_t total_weight = 0;
    };
    std::unordered_map<uint64_t, Tally> tallies;
    std::map<uint64_t, uint64_t> global;
    std::map<uint64_t, size_t> global_row;

    uint64_t trained_weight = 0;
    for (size_t row : rows) {
        uint64_t key = keyOf(ds, row, SIZE_MAX, 0);
        Tally &t = tallies[key];
        uint64_t lbl = ds.label(row);
        t.label_weight[lbl] += ds.weight(row);
        t.label_row.emplace(lbl, row);
        t.total_weight += ds.weight(row);
        global[lbl] += ds.weight(row);
        global_row.emplace(lbl, row);
        trained_weight += ds.weight(row);
    }

    uint64_t ambiguous_weight = 0;
    for (auto &kv : tallies) {
        Entry e;
        uint64_t best_w = 0;
        for (const auto &lw : kv.second.label_weight) {
            if (lw.second > best_w) {
                best_w = lw.second;
                e.majority_label = lw.first;
                e.representative_row = kv.second.label_row[lw.first];
            }
        }
        e.distinct_labels =
            static_cast<uint32_t>(kv.second.label_weight.size());
        if (e.distinct_labels > 1)
            ambiguous_weight += kv.second.total_weight;
        table_[kv.first] = e;
    }
    ambiguousWeightFraction_ =
        trained_weight ? static_cast<double>(ambiguous_weight) /
                             static_cast<double>(trained_weight)
                       : 0.0;

    uint64_t best_w = 0;
    for (const auto &lw : global) {
        if (lw.second > best_w) {
            best_w = lw.second;
            fallbackLabel_ = lw.first;
            fallbackRow_ = global_row[lw.first];
        }
    }
}

uint64_t
TablePredictor::predict(const Dataset &ds, size_t row,
                        size_t override_col,
                        uint64_t override_value) const
{
    auto it = table_.find(keyOf(ds, row, override_col, override_value));
    return it == table_.end() ? fallbackLabel_
                              : it->second.majority_label;
}

void
TablePredictor::predictRows(const Dataset &ds, size_t row_begin,
                            size_t row_end, uint64_t *out_labels,
                            size_t override_col,
                            const uint64_t *override_values) const
{
    // Hash-and-probe per row with no virtual hop per row; the PFI
    // inner loop spends its time here.
    for (size_t r = row_begin; r < row_end; ++r) {
        uint64_t ov =
            override_col != SIZE_MAX ? override_values[r] : 0;
        auto it = table_.find(keyOf(ds, r, override_col, ov));
        out_labels[r - row_begin] = it == table_.end()
                                        ? fallbackLabel_
                                        : it->second.majority_label;
    }
}

size_t
TablePredictor::predictRow(const Dataset &ds, size_t row,
                           size_t override_col,
                           uint64_t override_value) const
{
    auto it = table_.find(keyOf(ds, row, override_col, override_value));
    return it == table_.end() ? fallbackRow_
                              : it->second.representative_row;
}

bool
TablePredictor::lookupLabel(const Dataset &ds, size_t row,
                            uint64_t &label) const
{
    auto it = table_.find(keyOf(ds, row, SIZE_MAX, 0));
    if (it == table_.end())
        return false;
    label = it->second.majority_label;
    return true;
}

void
TablePredictor::insertRow(const Dataset &ds, size_t row)
{
    uint64_t key = keyOf(ds, row, SIZE_MAX, 0);
    auto it = table_.find(key);
    if (it != table_.end())
        return;
    Entry e;
    e.majority_label = ds.label(row);
    e.representative_row = row;
    e.distinct_labels = 1;
    table_[key] = e;
}

double
TablePredictor::meanLabelsPerKey() const
{
    if (table_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &kv : table_)
        sum += kv.second.distinct_labels;
    return sum / static_cast<double>(table_.size());
}

}  // namespace ml
}  // namespace snip
