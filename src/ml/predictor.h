/**
 * @file
 * Predictor interface for the PFI machinery: given a row's feature
 * values (restricted to a feature subset), predict the output
 * signature. Implementations: TablePredictor (exact-match majority
 * table — what the deployed lookup table is), DecisionTree and
 * RandomForest (reference learners for the predictor ablation).
 */

#ifndef SNIP_ML_PREDICTOR_H
#define SNIP_ML_PREDICTOR_H

#include <cstdint>
#include <vector>

#include "ml/dataset.h"

namespace snip {
namespace ml {

/** Sentinel label meaning "no prediction available". */
constexpr uint64_t kNoLabel = 0x90a6e100090a6e10ULL;

/** Abstract output-signature predictor. */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /**
     * Fit on @p ds using only @p feature_cols (column indices).
     */
    virtual void train(const DatasetView &ds,
                       const std::vector<size_t> &feature_cols) = 0;

    /**
     * Predict the label for row @p row of @p ds, with the values of
     * selected columns optionally overridden: when @p override_col
     * != SIZE_MAX, the value of that column is @p override_value
     * (how PFI permutes a column without copying the matrix).
     */
    virtual uint64_t predict(const DatasetView &ds, size_t row,
                             size_t override_col = SIZE_MAX,
                             uint64_t override_value = 0) const = 0;

    /**
     * Row index of a *representative* training row carrying the
     * predicted label, or SIZE_MAX when unavailable. Lets callers
     * recover concrete output field values behind a prediction.
     */
    virtual size_t predictRow(const DatasetView &ds, size_t row,
                              size_t override_col = SIZE_MAX,
                              uint64_t override_value = 0) const = 0;

    /**
     * Batched prediction over the row range [row_begin, row_end):
     * out_labels[r - row_begin] receives the prediction for row r.
     * When @p override_col != SIZE_MAX, @p override_values must be
     * non-null and override_values[r] replaces the value of that
     * column for row r — how PFI feeds a whole permuted column in
     * one call. Label-for-label identical to calling predict() per
     * row; implementations override it to amortize per-call work
     * (the forest walks each tree once over the range instead of
     * re-descending every tree per row).
     */
    virtual void predictRows(const DatasetView &ds, size_t row_begin,
                             size_t row_end, uint64_t *out_labels,
                             size_t override_col = SIZE_MAX,
                             const uint64_t *override_values =
                                 nullptr) const;

    /**
     * Content fingerprint of the trained model: equal fingerprints
     * must imply identical prediction behaviour for identical
     * inputs. 0 means "unfingerprintable" and disables any caching
     * keyed on it (the base-class default; concrete predictors hash
     * their trained state). Never 0 from an implementation that
     * supports it.
     */
    virtual uint64_t fingerprint() const { return 0; }
};

/**
 * Weighted misclassification rate of @p p over all rows of @p ds
 * (weights = dynamic instructions, matching the paper's
 * "% execution" accounting).
 */
double weightedErrorRate(const Predictor &p, const DatasetView &ds);

}  // namespace ml
}  // namespace snip

#endif  // SNIP_ML_PREDICTOR_H
