/**
 * @file
 * Iterative PFI-driven input trimming (the heart of SNIP, §V-A and
 * Fig. 9): starting from the complete union-of-locations feature
 * set, repeatedly retrain the table predictor, compute PFI, and
 * drop the least-important feature (largest location first among
 * near-zero importances, which is what sweeps out the megabytes of
 * context payloads early). Each step logs the remaining input
 * bytes and the resulting output-prediction error — the Fig. 9
 * curve — and the selector returns the last feature set whose
 * error stays within the configured budget (the "necessary
 * inputs").
 */

#ifndef SNIP_ML_FEATURE_SELECTION_H
#define SNIP_ML_FEATURE_SELECTION_H

#include "events/field.h"
#include "ml/pfi.h"
#include "ml/table_predictor.h"

namespace snip {
namespace ml {

/** One trimming step of the Fig. 9 curve. */
struct TrimStep {
    /** Field dropped at this step. */
    events::FieldId dropped = events::kInvalidField;
    events::InputCategory dropped_cat = events::InputCategory::Event;
    uint32_t dropped_bytes = 0;
    /** Bytes of input fields still kept after the drop. */
    uint64_t remaining_bytes = 0;
    /**
     * Held-out *wrong-hit* rate with the remaining set: weight of
     * records whose key matches a trained entry but with different
     * outputs. Misses are neutral — they fall back to full
     * processing.
     */
    double error = 0.0;
    /** Held-out hit rate (short-circuit coverage proxy). */
    double hit_rate = 0.0;
};

/** Selector output. */
struct SelectionResult {
    /** Error of the full feature set (leftmost Fig. 9 bar). */
    double full_error = 0.0;
    /** Total bytes of the full feature set. */
    uint64_t full_bytes = 0;
    /** The trimming trajectory, in drop order. */
    std::vector<TrimStep> curve;
    /** Necessary input fields (the knee set), sorted by id. */
    std::vector<events::FieldId> selected;
    /** Bytes of the selected set. */
    uint64_t selected_bytes = 0;
    /** Held-out wrong-hit rate of the selected set. */
    double selected_error = 0.0;
    /** Held-out hit rate of the selected set. */
    double selected_hit_rate = 0.0;
};

/** Selector knobs. */
struct SelectionConfig {
    /** Absolute wrong-hit budget the selected set must respect. */
    double max_error = 0.01;
    /**
     * Conditional budget: wrong hits as a fraction of hits. Catches
     * degenerate keys that rarely hit on the holdout but hit (and
     * mispredict) at runtime.
     */
    double max_conditional_error = 0.04;
    /**
     * Fast path: drop all features whose PFI importance is below
     * this threshold in one batch before fine-grained trimming.
     */
    double batch_drop_importance = 1e-9;
    PfiConfig pfi;
    /**
     * Cache importances between the periodic PFI refreshes: locked
     * (known-necessary / forced-keep) columns are never ordered as
     * drop candidates, so refreshes recompute only the still-
     * droppable columns and keep cached values for the rest. Exact,
     * not approximate — per-column PFI streams are keyed by column
     * id (see pfi.h), so a subset compute returns the same
     * importances a full-matrix recompute would. `false` restores
     * the full-recompute behaviour (A/B hook for tests/benches).
     */
    bool cache_pfi = true;
    /**
     * Fields the developer marked as must-keep (Option 1 overrides,
     * §V-B); never dropped regardless of importance.
     */
    std::vector<events::FieldId> forced_keep;
    /**
     * Optional metrics sink (nullptr = observability off): per-phase
     * spans (`span.*.select` with nested `train` / `holdout` /
     * `pfi`) and drop/restore/refresh counters. Also handed to the
     * nested PFI runs unless cfg.pfi.obs is already set. Never
     * alters results.
     */
    obs::Registry *obs = nullptr;
};

/** Run the iterative trimming on one event type's dataset. */
SelectionResult selectNecessaryInputs(const DatasetView &ds,
                                      const SelectionConfig &cfg = {});

}  // namespace ml
}  // namespace snip

#endif  // SNIP_ML_FEATURE_SELECTION_H
