#include "ml/pfi.h"

#include <algorithm>
#include <chrono>

#include "obs/span.h"
#include "util/crc32.h"
#include "util/parallel.h"

namespace snip {
namespace ml {

namespace {

/**
 * Per-worker scratch for one permutation pass, reused across tasks
 * on the same worker thread (thread_local: tasks never share).
 */
struct PfiScratch {
    std::vector<size_t> perm;       // row permutation
    std::vector<uint64_t> permuted; // permuted column values, by row
    std::vector<uint64_t> pred;     // predicted labels, block-sized
};

thread_local PfiScratch t_scratch;

/** Rows per batched prediction block. */
constexpr size_t kPredBlock = 512;

/**
 * Weighted error of @p predictor with column @p col permuted by the
 * stream (seed, col, rep). Allocation-free after scratch warm-up.
 */
double
permutedError(const Predictor &predictor, const DatasetView &ds,
              size_t col, uint64_t seed, int rep)
{
    size_t n = ds.numRows();
    PfiScratch &s = t_scratch;

    // Fisher-Yates permutation of row indices into reusable scratch
    // (same algorithm as util::Rng::permutation, minus its per-call
    // allocation): row r reads the value of row perm[r].
    util::Rng rng(util::mixCombine(
        seed, util::mixCombine(col, static_cast<uint64_t>(rep))));
    s.perm.resize(n);
    for (size_t i = 0; i < n; ++i)
        s.perm[i] = i;
    for (size_t i = n; i > 1; --i) {
        size_t j = static_cast<size_t>(rng.uniformInt(0, i - 1));
        std::swap(s.perm[i - 1], s.perm[j]);
    }

    // Materialize the permuted column once (cache-linear gather from
    // the dataset's contiguous column store) so prediction can run
    // batched with a per-row override array.
    const uint64_t *colv = ds.columnData(col);
    s.permuted.resize(n);
    for (size_t r = 0; r < n; ++r)
        s.permuted[r] = colv[s.perm[r]];

    s.pred.resize(std::min(n, kPredBlock));
    uint64_t wrong = 0;
    for (size_t begin = 0; begin < n; begin += kPredBlock) {
        size_t end = std::min(n, begin + kPredBlock);
        predictor.predictRows(ds, begin, end, s.pred.data(), col,
                              s.permuted.data());
        for (size_t r = begin; r < end; ++r) {
            if (s.pred[r - begin] != ds.label(r))
                wrong += ds.weight(r);
        }
    }
    return static_cast<double>(wrong) /
           static_cast<double>(ds.totalWeight());
}

/**
 * CRC of @p n uint64s, streamed in block-sized slices so a mapped
 * store can bound residency while we hash a multi-GB column.
 */
uint32_t
crcOfU64(const DatasetView &ds, const uint64_t *p, size_t n)
{
    size_t blk = std::max<size_t>(1, ds.streamBlockRows());
    uint32_t crc = 0;
    for (size_t base = 0; base < n; base += blk) {
        size_t m = std::min(blk, n - base);
        crc = util::crc32(p + base, m * sizeof(uint64_t), crc);
        ds.noteStreamed(m * sizeof(uint64_t));
    }
    return crc;
}

}  // namespace

const PfiResult *
PfiCache::find(uint64_t key) const
{
    if (key == 0)
        return nullptr;
    for (const Entry &e : entries_) {
        if (e.key == key)
            return &e.result;
    }
    return nullptr;
}

void
PfiCache::insert(uint64_t key, PfiResult result)
{
    if (key == 0 || find(key))
        return;
    if (entries_.size() >= kMaxEntries)
        entries_.pop_front();
    entries_.push_back(Entry{key, std::move(result)});
}

uint64_t
pfiCacheKey(const Predictor &predictor, const DatasetView &ds,
            const std::vector<size_t> &cols, const PfiConfig &cfg)
{
    uint64_t fp = predictor.fingerprint();
    if (fp == 0)
        return 0;
    size_t n = ds.numRows();
    uint64_t h = util::mixCombine(0x9f1cac4eULL, fp);
    h = util::mixCombine(h, static_cast<uint64_t>(n));
    h = util::mixCombine(h, cfg.seed);
    h = util::mixCombine(h, static_cast<uint64_t>(cfg.repeats));
    // Dataset content: scoring reads labels, weights, and exactly
    // the scored columns (the predictor was trained on this column
    // set and predicts from it alone), so hashing those covers every
    // input of the result.
    h = util::mixCombine(h, crcOfU64(ds, ds.labelData(), n));
    h = util::mixCombine(h, crcOfU64(ds, ds.weightData(), n));
    h = util::mixCombine(h, static_cast<uint64_t>(cols.size()));
    for (size_t c : cols) {
        uint64_t ch = util::mixCombine(
            static_cast<uint64_t>(c),
            static_cast<uint64_t>(ds.featureField(c)));
        ch = util::mixCombine(ch, crcOfU64(ds, ds.columnData(c), n));
        h = util::mixCombine(h, ch);
    }
    return h ? h : 1;
}

PfiResult
computePfi(const Predictor &predictor, const DatasetView &ds,
           const std::vector<size_t> &cols, const PfiConfig &cfg)
{
    uint64_t cache_key = 0;
    if (cfg.cache) {
        cache_key = pfiCacheKey(predictor, ds, cols, cfg);
        if (const PfiResult *hit = cfg.cache->find(cache_key)) {
            if (cfg.obs)
                cfg.obs->counter("shrink.pfi.cols_cached")
                    .add(cols.size());
            return *hit;
        }
    }
    if (cfg.obs)
        cfg.obs->counter("shrink.pfi.cols_rescored").add(cols.size());

    PfiResult result;
    result.base_error = weightedErrorRate(predictor, ds);
    result.importance.assign(cols.size(), 0.0);
    if (cols.empty() || cfg.repeats <= 0) {
        if (cfg.cache)
            cfg.cache->insert(cache_key, result);
        return result;
    }

    // One task per (feature, repeat); every task writes only its
    // own slot of the error matrix, and the reduction below runs
    // serially in task order, so the result is bitwise identical
    // for any worker count.
    obs::Span span(cfg.obs, "pfi");
    obs::ShardedRegistry shards;
    size_t repeats = static_cast<size_t>(cfg.repeats);
    std::vector<double> err(cols.size() * repeats, 0.0);
    util::parallelFor(err.size(), [&](size_t k) {
        size_t ci = k / repeats;
        int rep = static_cast<int>(k % repeats);
        if (!cfg.obs) {
            err[k] = permutedError(predictor, ds, cols[ci], cfg.seed,
                                   rep);
            return;
        }
        // Each worker accumulates into its own shard; merged after
        // the join so the main registry stays single-writer.
        obs::Registry &local = shards.local();
        auto t0 = std::chrono::steady_clock::now();
        err[k] = permutedError(predictor, ds, cols[ci], cfg.seed,
                               rep);
        auto t1 = std::chrono::steady_clock::now();
        local.counter("shrink.pfi.tasks").add(1);
        local.timer("shrink.pfi.task_s")
            .add(std::chrono::duration<double>(t1 - t0).count());
    }, cfg.threads);

    if (cfg.obs) {
        // Worker attribution: one busy-seconds sample per worker
        // shard, then fold the shards into the main registry.
        size_t workers = 0;
        for (const obs::Registry *shard : shards.shards()) {
            const util::Summary *busy =
                shard->findTimer("shrink.pfi.task_s");
            if (!busy || busy->count() == 0)
                continue;
            cfg.obs->timer("shrink.pfi.worker_busy_s")
                .add(busy->sum());
            ++workers;
        }
        cfg.obs->gauge("shrink.pfi.workers")
            .set(static_cast<double>(workers));
        shards.mergeInto(*cfg.obs);
    }

    for (size_t ci = 0; ci < cols.size(); ++ci) {
        double err_sum = 0.0;
        for (size_t rep = 0; rep < repeats; ++rep)
            err_sum += err[ci * repeats + rep];
        double imp = err_sum / static_cast<double>(repeats) -
                     result.base_error;
        result.importance[ci] = imp > 0.0 ? imp : 0.0;
    }
    if (cfg.cache)
        cfg.cache->insert(cache_key, result);
    return result;
}

}  // namespace ml
}  // namespace snip
