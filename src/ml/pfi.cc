#include "ml/pfi.h"

namespace snip {
namespace ml {

PfiResult
computePfi(const Predictor &predictor, const Dataset &ds,
           const std::vector<size_t> &cols, const PfiConfig &cfg)
{
    PfiResult result;
    result.base_error = weightedErrorRate(predictor, ds);
    result.importance.assign(cols.size(), 0.0);

    util::Rng rng(cfg.seed);
    size_t n = ds.numRows();
    double total_w = static_cast<double>(ds.totalWeight());

    for (size_t ci = 0; ci < cols.size(); ++ci) {
        size_t col = cols[ci];
        double err_sum = 0.0;
        for (int rep = 0; rep < cfg.repeats; ++rep) {
            // A permutation of row indices: row r reads the value of
            // row perm[r] in the permuted column.
            std::vector<size_t> perm = rng.permutation(n);
            uint64_t wrong = 0;
            for (size_t row = 0; row < n; ++row) {
                uint64_t pv = ds.value(perm[row], col);
                if (predictor.predict(ds, row, col, pv) != ds.label(row))
                    wrong += ds.weight(row);
            }
            err_sum += static_cast<double>(wrong) / total_w;
        }
        double mean_err = err_sum / cfg.repeats;
        double imp = mean_err - result.base_error;
        result.importance[ci] = imp > 0.0 ? imp : 0.0;
    }
    return result;
}

}  // namespace ml
}  // namespace snip
