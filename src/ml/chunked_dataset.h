/**
 * @file
 * Out-of-core DatasetView over a memory-mapped SNCT v2 training
 * section (trace::ColumnarLog): the column-major feature / label /
 * weight arrays of one event type are used *in place* — attach()
 * copies nothing but the feature-id list — so training over a
 * multi-GB trace touches pages on demand and the view can keep peak
 * RSS near a configured budget.
 *
 * Residency control is advisory and value-invariant: consumers
 * (DecisionTree, PFI, the CRC keys) call noteStreamed(bytes) every
 * streamBlockRows() rows; once the accumulated volume crosses half
 * the budget, the whole mapping is MADV_DONTNEED'd and clean pages
 * refault from the page cache on the next touch. Dropping pages
 * never changes bytes, so chunked and in-memory training produce
 * bitwise-identical models at any block size or thread count (the
 * digest-equality contract; see DESIGN.md).
 */

#ifndef SNIP_ML_CHUNKED_DATASET_H
#define SNIP_ML_CHUNKED_DATASET_H

#include <atomic>
#include <memory>

#include "ml/dataset.h"
#include "trace/columnar_log.h"
#include "util/status.h"

namespace snip {
namespace ml {

/** Out-of-core geometry knobs. */
struct ChunkedConfig {
    /**
     * Soft peak-RSS target for trace pages (bytes). Streamed-volume
     * accounting releases residency at half this value, keeping the
     * page footprint oscillating below it. 0 = never release.
     */
    size_t residency_budget_bytes = size_t{512} << 20;
    /**
     * Rows a consumer processes between noteStreamed() calls. Any
     * value >= 1 yields identical results; smaller blocks bound RSS
     * tighter at slightly more accounting overhead.
     */
    size_t block_rows = 4096;
};

/** Bounded-RSS feature matrix mapped from a training trace. */
class ChunkedDataset : public DatasetView
{
  public:
    /**
     * View the training section for @p type of @p log. Validates
     * every field id against @p schema (input fields for features,
     * output fields for outputs) and streams one pass over the
     * weights to fix the total; errors instead of panicking on a
     * foreign or mismatched trace. @p log is retained (shared
     * ownership keeps the mapping alive).
     */
    static util::Result<std::shared_ptr<const ChunkedDataset>>
    attach(std::shared_ptr<const trace::ColumnarLog> log,
           events::EventType type, const events::FieldSchema &schema,
           const ChunkedConfig &cfg = {});

    /**
     * Reconstruct row @p row as a handler-execution record (type,
     * inputs, outputs, weight as instructions) — exactly the fields
     * table prefill consumes. Inputs/outputs come out in canonical
     * (ascending-id) order with absent locations skipped.
     */
    void materializeRecord(size_t row,
                           games::HandlerExecution *out) const;

    /** Streamed-volume accounting (see file header). */
    void noteStreamed(size_t bytes) const override;

    /** Drop trace residency immediately (mmap-backed logs). */
    void releaseResidency() const override;

  private:
    ChunkedDataset() = default;

    std::shared_ptr<const trace::ColumnarLog> log_;
    const trace::ColumnarLog::TrainingCols *tc_ = nullptr;
    events::EventType type_ = events::EventType::Touch;
    size_t budget_ = 0;
    mutable std::atomic<uint64_t> streamed_{0};
};

}  // namespace ml
}  // namespace snip

#endif  // SNIP_ML_CHUNKED_DATASET_H
