#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "obs/span.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace snip {
namespace ml {

namespace {

/** Stream tags decorrelating the per-tree seed derivations. */
constexpr uint64_t kTreeStream = 0x7ee5eedULL;
constexpr uint64_t kBootStream = 0xb0075eedULL;

/**
 * Per-caller vote scratch. thread_local (not a mutable member) so
 * that concurrent PFI tasks predicting on one shared const forest
 * never share a buffer; reused across calls, so the vote path does
 * zero heap allocations once warmed up.
 */
struct VoteScratch {
    std::vector<uint32_t> votes;      // block_rows x label count
    std::vector<uint32_t> tree_leaf;  // per-tree leaf (predictRow)
};

thread_local VoteScratch t_scratch;

/** Rows per batched voting block (bounds the vote matrix). */
constexpr size_t kVoteBlock = 64;

}  // namespace

RandomForest::RandomForest(ForestConfig cfg) : cfg_(cfg) {}

void
RandomForest::train(const DatasetView &ds,
                    const std::vector<size_t> &feature_cols)
{
    size_t num_trees = static_cast<size_t>(cfg_.num_trees);
    obs::Span span(cfg_.obs, "train_forest");
    if (cfg_.obs)
        cfg_.obs->counter("shrink.forest.trees").add(num_trees);
    trees_.clear();
    trees_.resize(num_trees);

    // Draw every tree's seed serially up-front; each tree task then
    // forks its own config and bootstrap streams from that one seed,
    // so tree t's content is a pure function of (forest seed, t) and
    // the worker count cannot leak into the result.
    util::Rng rng(cfg_.seed);
    std::vector<uint64_t> seeds(num_trees);
    for (size_t t = 0; t < num_trees; ++t)
        seeds[t] = rng.next();

    size_t n = ds.numRows();
    util::parallelFor(num_trees, [&](size_t t) {
        TreeConfig tc = cfg_.tree;
        tc.seed = util::mixCombine(seeds[t], kTreeStream);
        if (tc.feature_subsample == 0) {
            tc.feature_subsample = static_cast<size_t>(std::ceil(
                std::sqrt(static_cast<double>(feature_cols.size()))));
        }
        auto tree = std::make_unique<DecisionTree>(tc);
        util::Rng boot_rng(util::mixCombine(seeds[t], kBootStream));
        std::vector<size_t> boot(n);
        for (size_t i = 0; i < n; ++i)
            boot[i] = static_cast<size_t>(
                boot_rng.uniformInt(0, n - 1));
        tree->trainOnRows(ds, feature_cols, boot);
        trees_[t] = std::move(tree);
    }, cfg_.threads);

    // Dense label dictionary: sorted distinct leaf labels across the
    // forest, plus a per-tree node -> label-index table, so voting
    // is flat array increments instead of map inserts.
    labels_.clear();
    for (const auto &t : trees_) {
        for (size_t node = 0; node < t->nodeCount(); ++node) {
            uint64_t lbl = t->nodeLabel(node);
            if (lbl != kNoLabel)
                labels_.push_back(lbl);
        }
    }
    std::sort(labels_.begin(), labels_.end());
    labels_.erase(std::unique(labels_.begin(), labels_.end()),
                  labels_.end());

    leaf_label_idx_.assign(num_trees, {});
    for (size_t t = 0; t < num_trees; ++t) {
        const DecisionTree &tree = *trees_[t];
        leaf_label_idx_[t].assign(tree.nodeCount(), 0);
        for (size_t node = 0; node < tree.nodeCount(); ++node) {
            uint64_t lbl = tree.nodeLabel(node);
            if (lbl == kNoLabel)
                continue;
            auto it = std::lower_bound(labels_.begin(),
                                       labels_.end(), lbl);
            leaf_label_idx_[t][node] =
                static_cast<uint32_t>(it - labels_.begin());
        }
    }
}

size_t
RandomForest::majorityIndex(const uint32_t *votes) const
{
    // labels_ is sorted ascending and the scan takes the first
    // strict maximum, so ties break toward the smallest label —
    // the same rule the old std::map-based tally applied.
    size_t best = 0;
    for (size_t i = 1; i < labels_.size(); ++i) {
        if (votes[i] > votes[best])
            best = i;
    }
    return best;
}

uint64_t
RandomForest::predict(const DatasetView &ds, size_t row,
                      size_t override_col,
                      uint64_t override_value) const
{
    if (trees_.empty())
        util::panic("RandomForest::predict before train()");
    VoteScratch &s = t_scratch;
    s.votes.assign(labels_.size(), 0);
    for (size_t t = 0; t < trees_.size(); ++t) {
        size_t leaf = trees_[t]->leafIndex(ds, row, override_col,
                                           override_value);
        ++s.votes[leaf_label_idx_[t][leaf]];
    }
    return labels_[majorityIndex(s.votes.data())];
}

size_t
RandomForest::predictRow(const DatasetView &ds, size_t row,
                         size_t override_col,
                         uint64_t override_value) const
{
    if (trees_.empty())
        util::panic("RandomForest::predictRow before train()");
    // One descent per tree: remember each tree's leaf while voting,
    // then reuse it — the old code re-descended every tree a second
    // time to find a representative for the winning label.
    VoteScratch &s = t_scratch;
    s.votes.assign(labels_.size(), 0);
    s.tree_leaf.resize(trees_.size());
    for (size_t t = 0; t < trees_.size(); ++t) {
        size_t leaf = trees_[t]->leafIndex(ds, row, override_col,
                                           override_value);
        s.tree_leaf[t] = static_cast<uint32_t>(leaf);
        ++s.votes[leaf_label_idx_[t][leaf]];
    }
    uint32_t best = static_cast<uint32_t>(
        majorityIndex(s.votes.data()));
    for (size_t t = 0; t < trees_.size(); ++t) {
        size_t leaf = s.tree_leaf[t];
        if (leaf_label_idx_[t][leaf] == best)
            return trees_[t]->nodeRepresentative(leaf);
    }
    return SIZE_MAX;
}

void
RandomForest::predictRows(const DatasetView &ds, size_t row_begin,
                          size_t row_end, uint64_t *out_labels,
                          size_t override_col,
                          const uint64_t *override_values) const
{
    if (trees_.empty())
        util::panic("RandomForest::predictRows before train()");
    if (override_col != SIZE_MAX && override_values == nullptr)
        util::panic("RandomForest::predictRows: override_col "
                    "without override_values");
    VoteScratch &s = t_scratch;
    size_t num_labels = labels_.size();
    for (size_t b0 = row_begin; b0 < row_end; b0 += kVoteBlock) {
        size_t b1 = std::min(row_end, b0 + kVoteBlock);
        size_t block = b1 - b0;
        s.votes.assign(block * num_labels, 0);
        // Tree-outer, row-inner: each tree's node array stays hot
        // while it descends the whole block, instead of re-touching
        // every tree for every row.
        for (size_t t = 0; t < trees_.size(); ++t) {
            const DecisionTree &tree = *trees_[t];
            const uint32_t *idx = leaf_label_idx_[t].data();
            for (size_t r = b0; r < b1; ++r) {
                uint64_t ov = override_col != SIZE_MAX
                                  ? override_values[r]
                                  : 0;
                size_t leaf =
                    tree.leafIndex(ds, r, override_col, ov);
                ++s.votes[(r - b0) * num_labels + idx[leaf]];
            }
        }
        for (size_t r = b0; r < b1; ++r) {
            out_labels[r - row_begin] = labels_[majorityIndex(
                s.votes.data() + (r - b0) * num_labels)];
        }
        // Blocks walk the rows in order, so each descent reads a
        // consecutive slice of whichever columns its path tests;
        // charging every feature column for the block upper-bounds
        // the fresh residency (no-op on in-memory datasets).
        ds.noteStreamed(block * 8 * ds.numFeatures());
    }
}

uint64_t
RandomForest::fingerprint() const
{
    uint64_t h = util::mixCombine(0xf02e57f9ULL, trees_.size());
    for (const auto &t : trees_)
        h = util::mixCombine(h, t->fingerprint());
    for (uint64_t lbl : labels_)
        h = util::mixCombine(h, lbl);
    return h ? h : 1;
}

}  // namespace ml
}  // namespace snip
