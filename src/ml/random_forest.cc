#include "ml/random_forest.h"

#include <cmath>
#include <map>

#include "util/logging.h"

namespace snip {
namespace ml {

RandomForest::RandomForest(ForestConfig cfg) : cfg_(cfg) {}

void
RandomForest::train(const Dataset &ds,
                    const std::vector<size_t> &feature_cols)
{
    trees_.clear();
    util::Rng rng(cfg_.seed);
    size_t n = ds.numRows();
    for (int t = 0; t < cfg_.num_trees; ++t) {
        TreeConfig tc = cfg_.tree;
        tc.seed = rng.next();
        if (tc.feature_subsample == 0) {
            tc.feature_subsample = static_cast<size_t>(std::ceil(
                std::sqrt(static_cast<double>(feature_cols.size()))));
        }
        auto tree = std::make_unique<DecisionTree>(tc);
        std::vector<size_t> boot(n);
        for (size_t i = 0; i < n; ++i)
            boot[i] = static_cast<size_t>(rng.uniformInt(0, n - 1));
        tree->trainOnRows(ds, feature_cols, boot);
        trees_.push_back(std::move(tree));
    }
}

uint64_t
RandomForest::predict(const Dataset &ds, size_t row, size_t override_col,
                      uint64_t override_value) const
{
    if (trees_.empty())
        util::panic("RandomForest::predict before train()");
    std::map<uint64_t, int> votes;
    for (const auto &t : trees_)
        ++votes[t->predict(ds, row, override_col, override_value)];
    uint64_t best_label = kNoLabel;
    int best = 0;
    for (const auto &kv : votes) {
        if (kv.second > best) {
            best = kv.second;
            best_label = kv.first;
        }
    }
    return best_label;
}

size_t
RandomForest::predictRow(const Dataset &ds, size_t row,
                         size_t override_col,
                         uint64_t override_value) const
{
    uint64_t label = predict(ds, row, override_col, override_value);
    for (const auto &t : trees_) {
        if (t->predict(ds, row, override_col, override_value) == label)
            return t->predictRow(ds, row, override_col, override_value);
    }
    return SIZE_MAX;
}

}  // namespace ml
}  // namespace snip
