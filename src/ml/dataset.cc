#include "ml/dataset.h"

#include <algorithm>

#include "util/logging.h"

namespace snip {
namespace ml {

events::FieldId
DatasetView::featureField(size_t col) const
{
    if (col >= featureFields_.size())
        util::panic("DatasetView::featureField: bad column %zu", col);
    return featureFields_[col];
}

size_t
DatasetView::columnOf(events::FieldId fid) const
{
    auto it = std::lower_bound(featureFields_.begin(),
                               featureFields_.end(), fid);
    if (it == featureFields_.end() || *it != fid)
        return SIZE_MAX;
    return static_cast<size_t>(it - featureFields_.begin());
}

uint32_t
DatasetView::featureBytes(size_t col) const
{
    return schema_->def(featureField(col)).size_bytes;
}

uint64_t
DatasetView::bytesOfColumns(const std::vector<size_t> &cols) const
{
    uint64_t total = 0;
    for (size_t c : cols)
        total += featureBytes(c);
    return total;
}

Dataset::Dataset(
    std::span<const games::HandlerExecution *const> records,
    const events::FieldSchema &schema)
{
    schema_ = &schema;
    rows_ = records.size();
    if (rows_ == 0)
        util::fatal("Dataset: no records");

    // Field-id union without a node-based set: one counting pass to
    // reserve, one gather pass, then sort + unique — a fixed number
    // of allocations however many rows/fields there are.
    size_t total_inputs = 0;
    for (const auto *r : records) {
        if (r->type != records[0]->type)
            util::fatal("Dataset: mixed event types");
        total_inputs += r->inputs.size();
    }
    featureFields_.reserve(total_inputs);
    for (const auto *r : records)
        for (const auto &fv : r->inputs)
            featureFields_.push_back(fv.id);
    std::sort(featureFields_.begin(), featureFields_.end());
    featureFields_.erase(
        std::unique(featureFields_.begin(), featureFields_.end()),
        featureFields_.end());
    featureFields_.shrink_to_fit();

    ownedValues_.assign(featureFields_.size() * rows_, kAbsent);
    ownedLabels_.resize(rows_);
    ownedWeights_.resize(rows_);
    for (size_t row = 0; row < rows_; ++row) {
        const auto *r = records[row];
        // Inputs are canonicalized (sorted by id); walk both sorted
        // sequences in lockstep. Everything below writes into the
        // pre-sized arrays — no allocation per row.
        size_t col = 0;
        for (const auto &fv : r->inputs) {
            while (col < featureFields_.size() &&
                   featureFields_[col] < fv.id)
                ++col;
            if (col < featureFields_.size() &&
                featureFields_[col] == fv.id)
                ownedValues_[col * rows_ + row] = fv.value;
        }
        ownedLabels_[row] = events::hashFields(r->outputs);
        ownedWeights_[row] =
            std::max<uint64_t>(1, r->cpu_instructions);
        totalWeight_ += ownedWeights_[row];
    }
    values_ = ownedValues_.data();
    labels_ = ownedLabels_.data();
    weights_ = ownedWeights_.data();
}

}  // namespace ml
}  // namespace snip
