#include "ml/dataset.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace snip {
namespace ml {

Dataset::Dataset(std::vector<const games::HandlerExecution *> records,
                 const events::FieldSchema &schema)
    : records_(std::move(records)), schema_(&schema)
{
    rows_ = records_.size();
    if (rows_ == 0)
        util::fatal("Dataset: no records");

    std::set<events::FieldId> fields;
    for (const auto *r : records_) {
        if (r->type != records_[0]->type)
            util::fatal("Dataset: mixed event types");
        for (const auto &fv : r->inputs)
            fields.insert(fv.id);
    }
    featureFields_.assign(fields.begin(), fields.end());

    values_.assign(featureFields_.size() * rows_, kAbsent);
    labels_.resize(rows_);
    weights_.resize(rows_);
    for (size_t row = 0; row < rows_; ++row) {
        const auto *r = records_[row];
        // Inputs are canonicalized (sorted by id); walk both sorted
        // sequences in lockstep.
        size_t col = 0;
        for (const auto &fv : r->inputs) {
            while (col < featureFields_.size() &&
                   featureFields_[col] < fv.id)
                ++col;
            if (col < featureFields_.size() &&
                featureFields_[col] == fv.id)
                values_[col * rows_ + row] = fv.value;
        }
        labels_[row] = events::hashFields(r->outputs);
        weights_[row] = std::max<uint64_t>(1, r->cpu_instructions);
        totalWeight_ += weights_[row];
    }
}

events::FieldId
Dataset::featureField(size_t col) const
{
    if (col >= featureFields_.size())
        util::panic("Dataset::featureField: bad column %zu", col);
    return featureFields_[col];
}

size_t
Dataset::columnOf(events::FieldId fid) const
{
    auto it = std::lower_bound(featureFields_.begin(),
                               featureFields_.end(), fid);
    if (it == featureFields_.end() || *it != fid)
        return SIZE_MAX;
    return static_cast<size_t>(it - featureFields_.begin());
}

uint32_t
Dataset::featureBytes(size_t col) const
{
    return schema_->def(featureField(col)).size_bytes;
}

uint64_t
Dataset::bytesOfColumns(const std::vector<size_t> &cols) const
{
    uint64_t total = 0;
    for (size_t c : cols)
        total += featureBytes(c);
    return total;
}

}  // namespace ml
}  // namespace snip
