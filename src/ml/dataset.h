/**
 * @file
 * Tabular view of a profile for the ML layer. Rows are handler
 * executions of one event type; columns (features) are the union of
 * input field locations those executions ever read — exactly the
 * union-of-locations record the naive lookup table stores (§III).
 * Records that did not read a location carry an explicit ABSENT
 * marker there. The label of a row is the signature of its output
 * writes; predicting the label IS predicting the memoized outputs.
 */

#ifndef SNIP_ML_DATASET_H
#define SNIP_ML_DATASET_H

#include <cstdint>
#include <vector>

#include "events/field.h"
#include "games/handler.h"

namespace snip {
namespace ml {

/** Marker for "this record did not read this location". */
constexpr uint64_t kAbsent = 0xab5e9700ab5e9700ULL;

/** Feature matrix over one event type's records. */
class Dataset
{
  public:
    /**
     * @param records Handler executions (all the same event type).
     * @param schema The game's field schema (sizes/categories).
     */
    Dataset(std::vector<const games::HandlerExecution *> records,
            const events::FieldSchema &schema);

    size_t numRows() const { return rows_; }
    size_t numFeatures() const { return featureFields_.size(); }

    /** Field id behind feature column @p col. */
    events::FieldId featureField(size_t col) const;
    /** Column index of a field id; SIZE_MAX when absent. */
    size_t columnOf(events::FieldId fid) const;

    /** Value of (row, col); kAbsent when the record lacks it. */
    uint64_t value(size_t row, size_t col) const
    {
        return values_[col * rows_ + row];
    }

    /**
     * Contiguous column @p col (rows_ values). The value store is
     * column-major in one allocation, so the PFI permutation and
     * tree-split loops over a column are cache-linear.
     */
    const uint64_t *columnData(size_t col) const
    {
        return values_.data() + col * rows_;
    }

    /** Output-signature label of a row. */
    uint64_t label(size_t row) const { return labels_[row]; }

    /** Dynamic-instruction weight of a row. */
    uint64_t weight(size_t row) const { return weights_[row]; }
    /** Sum of all row weights. */
    uint64_t totalWeight() const { return totalWeight_; }

    /** The underlying execution record of a row. */
    const games::HandlerExecution &record(size_t row) const
    {
        return *records_[row];
    }

    /** The schema this dataset was built against. */
    const events::FieldSchema &schema() const { return *schema_; }

    /** Declared size (bytes) of the field behind a column. */
    uint32_t featureBytes(size_t col) const;

    /** Sum of declared sizes over a set of columns. */
    uint64_t bytesOfColumns(const std::vector<size_t> &cols) const;

  private:
    std::vector<const games::HandlerExecution *> records_;
    const events::FieldSchema *schema_;
    size_t rows_ = 0;
    std::vector<events::FieldId> featureFields_;  // sorted
    std::vector<uint64_t> values_;  // column-major, cols * rows
    std::vector<uint64_t> labels_;
    std::vector<uint64_t> weights_;
    uint64_t totalWeight_ = 0;
};

}  // namespace ml
}  // namespace snip

#endif  // SNIP_ML_DATASET_H
