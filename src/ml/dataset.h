/**
 * @file
 * Tabular view of a profile for the ML layer. Rows are handler
 * executions of one event type; columns (features) are the union of
 * input field locations those executions ever read — exactly the
 * union-of-locations record the naive lookup table stores (§III).
 * Records that did not read a location carry an explicit ABSENT
 * marker there. The label of a row is the signature of its output
 * writes; predicting the label IS predicting the memoized outputs.
 *
 * Two concrete storages share one view type:
 *
 *   - Dataset: in-memory, built from HandlerExecution records (the
 *     seed-scale path);
 *   - ChunkedDataset (chunked_dataset.h): a bounded-RSS view over a
 *     memory-mapped SNCT training trace (the out-of-core path).
 *
 * DatasetView's hot accessors (value/label/weight/columnData) are
 * non-virtual reads through base-class pointers, so the ML inner
 * loops compile identically for both storages; only the residency
 * hooks (noteStreamed/releaseResidency) are virtual, and those sit
 * outside the per-row loops.
 */

#ifndef SNIP_ML_DATASET_H
#define SNIP_ML_DATASET_H

#include <cstdint>
#include <span>
#include <vector>

#include "events/field.h"
#include "games/handler.h"

namespace snip {
namespace ml {

/** Marker for "this record did not read this location". */
constexpr uint64_t kAbsent = 0xab5e9700ab5e9700ULL;

/**
 * Read-only feature matrix over one event type's records: the
 * interface every predictor / PFI / selection routine trains
 * against. Column-major value storage (column c occupies
 * values_[c * rows .. (c + 1) * rows)), so per-column scans are
 * cache-linear regardless of the backing storage.
 */
class DatasetView
{
  public:
    virtual ~DatasetView() = default;

    size_t numRows() const { return rows_; }
    size_t numFeatures() const { return featureFields_.size(); }

    /** Field id behind feature column @p col. */
    events::FieldId featureField(size_t col) const;
    /** Column index of a field id; SIZE_MAX when absent. */
    size_t columnOf(events::FieldId fid) const;

    /** Value of (row, col); kAbsent when the record lacks it. */
    uint64_t value(size_t row, size_t col) const
    {
        return values_[col * rows_ + row];
    }

    /**
     * Contiguous column @p col (rows_ values). The value store is
     * column-major, so the PFI permutation and tree-split loops over
     * a column are cache-linear.
     */
    const uint64_t *columnData(size_t col) const
    {
        return values_ + col * rows_;
    }

    /** Output-signature label of a row. */
    uint64_t label(size_t row) const { return labels_[row]; }
    /** Contiguous label array (rows_ values) — digesting/scans. */
    const uint64_t *labelData() const { return labels_; }

    /** Dynamic-instruction weight of a row. */
    uint64_t weight(size_t row) const { return weights_[row]; }
    /** Contiguous weight array (rows_ values) — digesting/scans. */
    const uint64_t *weightData() const { return weights_; }
    /** Sum of all row weights. */
    uint64_t totalWeight() const { return totalWeight_; }

    /** The schema this dataset was built against. */
    const events::FieldSchema &schema() const { return *schema_; }

    /** Declared size (bytes) of the field behind a column. */
    uint32_t featureBytes(size_t col) const;

    /** Sum of declared sizes over a set of columns. */
    uint64_t bytesOfColumns(const std::vector<size_t> &cols) const;

    /**
     * Rows a streaming consumer should process between
     * noteStreamed() calls (the out-of-core block geometry).
     * SIZE_MAX for fully resident storage: never interrupt.
     */
    size_t streamBlockRows() const { return streamBlockRows_; }

    /**
     * Residency hook: a consumer just streamed @p bytes of the value
     * store. A bounded-RSS storage uses the accumulated volume to
     * decide when to drop clean pages; in-memory storage ignores it.
     * Never affects values, so results are invariant under any call
     * cadence (the block-size digest-equality contract).
     */
    virtual void noteStreamed(size_t bytes) const { (void)bytes; }

    /** Drop any droppable residency immediately (no-op in memory). */
    virtual void releaseResidency() const {}

  protected:
    DatasetView() = default;

    const uint64_t *values_ = nullptr;  // column-major, cols x rows
    const uint64_t *labels_ = nullptr;
    const uint64_t *weights_ = nullptr;
    const events::FieldSchema *schema_ = nullptr;
    size_t rows_ = 0;
    uint64_t totalWeight_ = 0;
    size_t streamBlockRows_ = SIZE_MAX;
    std::vector<events::FieldId> featureFields_;  // sorted
};

/** In-memory feature matrix over one event type's records. */
class Dataset : public DatasetView
{
  public:
    /**
     * @param records Handler executions (all the same event type).
     *        Borrowed only for the constructor's duration; the
     *        dataset copies the values out and keeps no pointers.
     * @param schema The game's field schema (sizes/categories);
     *        must outlive the dataset.
     *
     * Construction does a fixed number of allocations (the column /
     * label / weight arrays), never O(rows): the field-id union is
     * gathered into a reserved vector + sort + unique instead of a
     * node-based set, and the column-major fill writes into
     * pre-sized storage.
     */
    Dataset(std::span<const games::HandlerExecution *const> records,
            const events::FieldSchema &schema);

  private:
    std::vector<uint64_t> ownedValues_;
    std::vector<uint64_t> ownedLabels_;
    std::vector<uint64_t> ownedWeights_;
};

}  // namespace ml
}  // namespace snip

#endif  // SNIP_ML_DATASET_H
