/**
 * @file
 * snip — command-line driver for the SNIP pipeline.
 *
 *   snip games
 *       List the available game workloads.
 *   snip characterize --game G [--seconds S] [--seed N]
 *       Baseline session: energy breakdown, battery projection,
 *       useless-event and repetition statistics.
 *   snip record --game G --out events.bin [--seconds S] [--seed N]
 *       Record a play session's event stream (the phone-side step).
 *   snip select --in events.bin --out profile.bin [--verbose]
 *       Replay the stream offline, run PFI selection, report the
 *       necessary inputs per event type (the cloud-side step).
 *   snip convert --in A --out B [--training]
 *       Convert a recorded event trace between the row transport
 *       encoding ("SNPE") and the mmap-friendly binary columnar
 *       replay format ("SNCT"); direction is detected from the
 *       input's magic. With --training, replay the trace through
 *       the game and emit SNCT v2 per-type training sections (the
 *       feature/label/weight columns ml::ChunkedDataset maps for
 *       out-of-core Shrink) instead of the event stream.
 *   snip eval --game G [--seconds S] [--scheme snip|baseline|
 *             maxcpu|maxip|nooverheads] [--audit N]
 *       Profile + deploy + evaluate one scheme; prints savings,
 *       coverage, error rate, and QoE.
 *   snip learn --game G [--epochs E]
 *       Continuous-learning loop (Fig. 12 style) with per-epoch
 *       error rates.
 *   snip pack --game G --out model.bin [--profile-seconds S]
 *       Profile + PFI-select + serialize the deployable model into
 *       the OTA package format (steps 4-5 of the paper's flow).
 *   snip inspect --in model.bin [--verbose]
 *       Print a package's header, integrity state, selections, and
 *       table statistics.
 *   snip verify --in model.bin
 *       Integrity-check a package; exit 0 when deployable, 1 when
 *       rejected (never aborts on corrupt input).
 *   snip stats --game G [--seconds S] [--audit N] [--json F]
 *       Profile + deploy + evaluate with the snip::obs metrics
 *       registry enabled: lookup hit/miss/byte counters, decide
 *       outcomes, erroneous-shortcircuit classes, per-Shrink-phase
 *       wall times, and table gauges, printed as tables (and
 *       optionally exported as JSON).
 *   snip fleet publish --registry D --in model.bin [--game G]
 *       Add a package to an on-disk versioned model registry
 *       (content-digest version ids, parent-per-epoch lineage).
 *   snip fleet diff --from old.bin --to new.bin --out patch.snpd
 *       Byte-level SNPD delta patch between two packages (the
 *       delta-OTA wire format).
 *   snip fleet apply --base old.bin --patch patch.snpd --out new.bin
 *       Apply a patch the way a device does: corruption-safe, with
 *       an optional --full fallback package.
 *
 * Every command is deterministic under --seed (obs span timers
 * measure host wall time and are the one exception).
 */

#include <cstdio>
#include <iostream>
#include <cstring>
#include <map>
#include <string>

#include "core/continuous_learning.h"
#include "core/model_codec.h"
#include "core/qoe.h"
#include "core/simulation.h"
#include "core/snip.h"
#include "fleet/delta.h"
#include "fleet/registry.h"
#include "games/registry.h"
#include "obs/sink.h"
#include "trace/columnar_log.h"
#include "trace/field_stats.h"
#include "trace/recorder.h"
#include "trace/trace_log.h"
#include "util/bytes.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/units.h"

namespace {

using namespace snip;

/** Parsed `--key value` options plus positional command. */
struct Args {
    std::string command;
    std::map<std::string, std::string> opts;

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = opts.find(key);
        return it == opts.end() ? fallback : it->second;
    }

    double
    getD(const std::string &key, double fallback) const
    {
        auto it = opts.find(key);
        return it == opts.end() ? fallback : std::atof(it->second.c_str());
    }

    uint64_t
    getU(const std::string &key, uint64_t fallback) const
    {
        auto it = opts.find(key);
        return it == opts.end()
                   ? fallback
                   : std::strtoull(it->second.c_str(), nullptr, 0);
    }
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        return args;
    args.command = argv[1];
    int first_opt = 2;
    // `fleet` carries a positional subcommand: fold it into the
    // command so dispatch stays a flat string match.
    if (args.command == "fleet" && argc >= 3 &&
        argv[2][0] != '-') {
        args.command += ' ';
        args.command += argv[2];
        first_opt = 3;
    }
    for (int i = first_opt; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) == 0) {
            std::string key = a.substr(2);
            if (i + 1 < argc && argv[i + 1][0] != '-')
                args.opts[key] = argv[++i];
            else
                args.opts[key] = "1";
        } else {
            util::fatal("unexpected argument '%s'", a.c_str());
        }
    }
    return args;
}

int
cmdGames()
{
    util::TablePrinter t({"name", "display", "events/s", "types",
                          "input locations"});
    for (const auto &name : games::allGameNames()) {
        auto g = games::makeGame(name);
        t.addRow({name, g->displayName(),
                  util::TablePrinter::num(g->totalEventRate(), 1),
                  std::to_string(g->params().mix.size()),
                  std::to_string(g->schema().size())});
    }
    t.print(std::cout);
    return 0;
}

int
cmdCharacterize(const Args &args)
{
    auto game = games::makeGame(args.get("game", "ab_evolution"));
    core::BaselineScheme baseline;
    core::SimulationConfig cfg;
    cfg.duration_s = args.getD("seconds", 120.0);
    cfg.seed = args.getU("seed", 77);
    cfg.record_events = true;
    core::SessionResult res = core::runSession(*game, baseline, cfg);

    std::printf("%s", res.report.toString().c_str());
    soc::Battery battery(cfg.model.battery_mah, cfg.model.battery_volts);
    std::printf("battery projection: %.1f h from 100%%\n",
                battery.hoursToEmpty(res.report.averagePower()));

    auto replica = games::makeGame(game->name());
    trace::Profile profile =
        trace::Replayer::replay(res.trace, *replica);
    trace::FieldStatistics stats(profile, game->schema());
    std::printf("events: %zu  useless: %.1f%%  exact repeats: %.1f%%  "
                "output redundancy: %.1f%%\n",
                profile.records.size(),
                100.0 * stats.uselessFraction(),
                100.0 * stats.exactRepeatFraction(),
                100.0 * stats.outputRedundancyFraction());
    return 0;
}

int
cmdRecord(const Args &args)
{
    std::string out = args.get("out");
    if (out.empty())
        util::fatal("record: --out <file> is required");
    auto game = games::makeGame(args.get("game", "ab_evolution"));
    core::BaselineScheme baseline;
    core::SimulationConfig cfg;
    cfg.duration_s = args.getD("seconds", 300.0);
    cfg.seed = args.getU("seed", 77);
    cfg.record_events = true;
    core::SessionResult res = core::runSession(*game, baseline, cfg);

    util::ByteBuffer buf;
    trace::encodeEventTrace(res.trace, buf);
    util::Status st = trace::saveBuffer(buf, out);
    if (!st.ok())
        util::fatal("record: %s", st.message().c_str());
    std::printf("recorded %zu events of %s -> %s (%s)\n",
                res.trace.events.size(), game->name().c_str(),
                out.c_str(),
                util::formatSize(static_cast<double>(buf.size()))
                    .c_str());
    return 0;
}

int
cmdSelect(const Args &args)
{
    std::string in = args.get("in");
    if (in.empty())
        util::fatal("select: --in <events.bin> is required");
    util::ByteBuffer buf;
    util::Status st = trace::loadBuffer(in, &buf);
    if (!st.ok())
        util::fatal("select: %s", st.message().c_str());
    trace::EventTrace tr;
    st = trace::decodeEventTrace(buf, &tr);
    if (!st.ok())
        util::fatal("select: %s", st.message().c_str());
    auto game = games::makeGame(tr.game);
    trace::Profile profile = trace::Replayer::replay(tr, *game);

    std::string out = args.get("out");
    if (!out.empty()) {
        util::ByteBuffer pbuf;
        trace::encodeProfile(profile, pbuf);
        st = trace::saveBuffer(pbuf, out);
        if (!st.ok())
            util::fatal("select: %s", st.message().c_str());
        std::printf("profile -> %s (%s)\n", out.c_str(),
                    util::formatSize(static_cast<double>(pbuf.size()))
                        .c_str());
    }

    core::SnipConfig cfg;
    cfg.seed = args.getU("seed", 0x51139);
    cfg.overrides.force_keep = game->params().recommended_overrides;
    core::SnipModel model = core::buildSnipModel(profile, *game, cfg);

    std::printf("game %s: %zu records, %zu event types deployed\n",
                tr.game.c_str(), profile.records.size(),
                model.types.size());
    for (const auto &t : model.types) {
        std::printf("  %-12s %2zu necessary fields (%llu B), "
                    "holdout wrong hits %.2f%%, hit rate %.0f%%\n",
                    events::eventTypeName(t.type),
                    t.selection.selected.size(),
                    static_cast<unsigned long long>(
                        t.selection.selected_bytes),
                    100.0 * t.selection.selected_error,
                    100.0 * t.selection.selected_hit_rate);
        if (!args.get("verbose").empty()) {
            for (events::FieldId fid : t.selection.selected)
                std::printf("      %s\n",
                            game->schema().def(fid).name.c_str());
        }
    }
    std::printf("deployable table: %zu entries, %s\n",
                model.table->entryCount(),
                util::formatSize(static_cast<double>(
                                     model.table->totalBytes()))
                    .c_str());
    return 0;
}

int
cmdConvert(const Args &args)
{
    std::string in = args.get("in");
    std::string out = args.get("out");
    if (in.empty() || out.empty())
        util::fatal("convert: --in <file> and --out <file> are "
                    "required");
    util::ByteBuffer buf;
    util::Status st = trace::loadBuffer(in, &buf);
    if (!st.ok())
        util::fatal("convert: %s", st.message().c_str());
    if (buf.size() < 4)
        util::fatal("convert: '%s' is too short to carry a trace "
                    "magic", in.c_str());
    uint32_t magic;
    std::memcpy(&magic, buf.data().data(), 4);

    if (!args.get("training").empty()) {
        // Any trace -> SNCT v2 training sections: replay the events
        // through the game and encode the per-type feature/label/
        // weight columns ml::ChunkedDataset maps for out-of-core
        // Shrink.
        trace::EventTrace tr;
        if (magic == trace::kColumnarMagic) {
            auto log = trace::ColumnarLog::attach(buf.data().data(),
                                                  buf.size(),
                                                  nullptr);
            if (!log.ok())
                util::fatal("convert: %s",
                            log.status().message().c_str());
            log.value()->toTrace(&tr);
        } else {
            st = trace::decodeEventTrace(buf, &tr);
            if (!st.ok())
                util::fatal("convert: %s", st.message().c_str());
        }
        auto game = games::makeGame(tr.game);
        trace::Profile profile = trace::Replayer::replay(tr, *game);
        std::vector<uint8_t> bytes;
        st = trace::ColumnarLog::encodeTraining(profile, &bytes);
        if (!st.ok())
            util::fatal("convert: %s", st.message().c_str());
        st = trace::ColumnarLog::save(bytes, out);
        if (!st.ok())
            util::fatal("convert: %s", st.message().c_str());
        std::printf("trace -> training columns: %zu records of %s "
                    "-> %s (%s)\n",
                    profile.records.size(), tr.game.c_str(),
                    out.c_str(),
                    util::formatSize(static_cast<double>(
                                         bytes.size()))
                        .c_str());
        return 0;
    }

    if (magic == trace::kColumnarMagic) {
        // Columnar -> rows.
        auto log = trace::ColumnarLog::attach(buf.data().data(),
                                              buf.size(), nullptr);
        if (!log.ok())
            util::fatal("convert: %s",
                        log.status().message().c_str());
        trace::EventTrace tr;
        log.value()->toTrace(&tr);
        util::ByteBuffer rows;
        trace::encodeEventTrace(tr, rows);
        st = trace::saveBuffer(rows, out);
        if (!st.ok())
            util::fatal("convert: %s", st.message().c_str());
        std::printf("columnar -> rows: %zu events of %s -> %s (%s)\n",
                    tr.events.size(), tr.game.c_str(), out.c_str(),
                    util::formatSize(static_cast<double>(rows.size()))
                        .c_str());
        return 0;
    }

    // Rows -> columnar.
    trace::EventTrace tr;
    st = trace::decodeEventTrace(buf, &tr);
    if (!st.ok())
        util::fatal("convert: %s", st.message().c_str());
    std::vector<uint8_t> bytes;
    st = trace::ColumnarLog::encode(tr, &bytes);
    if (!st.ok())
        util::fatal("convert: %s", st.message().c_str());
    st = trace::ColumnarLog::save(bytes, out);
    if (!st.ok())
        util::fatal("convert: %s", st.message().c_str());
    std::printf("rows -> columnar: %zu events of %s -> %s (%s)\n",
                tr.events.size(), tr.game.c_str(), out.c_str(),
                util::formatSize(static_cast<double>(bytes.size()))
                    .c_str());
    return 0;
}

int
cmdEval(const Args &args)
{
    auto game = games::makeGame(args.get("game", "ab_evolution"));
    std::string scheme_name = args.get("scheme", "snip");

    // Profile + model.
    core::BaselineScheme baseline;
    core::SimulationConfig pcfg;
    pcfg.duration_s = args.getD("profile-seconds", 300.0);
    pcfg.seed = args.getU("seed", 77);
    pcfg.record_events = true;
    core::SessionResult prof =
        core::runSession(*game, baseline, pcfg);
    auto replica = games::makeGame(game->name());
    trace::Profile profile =
        trace::Replayer::replay(prof.trace, *replica);
    core::SnipConfig scfg;
    scfg.overrides.force_keep = game->params().recommended_overrides;
    core::SnipModel model = core::buildSnipModel(profile, *game, scfg);

    core::SimulationConfig ecfg;
    ecfg.duration_s = args.getD("seconds", 60.0);
    ecfg.seed = util::mixCombine(pcfg.seed, 0xe7a1);

    core::BaselineScheme base_eval;
    double e_base =
        core::runSession(*game, base_eval, ecfg).report.total();

    std::unique_ptr<core::Scheme> scheme;
    if (scheme_name == "baseline") {
        scheme = core::makeScheme(core::SchemeKind::Baseline);
    } else if (scheme_name == "maxcpu") {
        scheme = core::makeScheme(core::SchemeKind::MaxCpu);
    } else if (scheme_name == "maxip") {
        scheme = core::makeScheme(core::SchemeKind::MaxIp);
    } else if (scheme_name == "nooverheads") {
        scheme = core::makeScheme(core::SchemeKind::NoOverheads,
                                  &model);
    } else if (scheme_name == "snip") {
        core::SnipRuntimeConfig rcfg;
        rcfg.audit_every =
            static_cast<uint32_t>(args.getU("audit", 0));
        scheme = std::make_unique<core::SnipScheme>(model, rcfg);
    } else {
        util::fatal("unknown scheme '%s'", scheme_name.c_str());
    }

    core::SessionResult res = core::runSession(*game, *scheme, ecfg);
    core::QoeReport qoe =
        core::scoreQoe(res.stats, res.report.elapsed());

    std::printf("scheme: %s on %s (%.0f s)\n", scheme_name.c_str(),
                game->displayName().c_str(), ecfg.duration_s);
    std::printf("energy: %s (baseline %s) -> %.1f%% saved\n",
                util::formatEnergy(res.report.total()).c_str(),
                util::formatEnergy(e_base).c_str(),
                100.0 * (1.0 - res.report.total() / e_base));
    std::printf("coverage: %.1f%% of execution; %llu/%llu events "
                "short-circuited\n",
                100.0 * res.stats.coverageInstr(),
                static_cast<unsigned long long>(
                    res.stats.shortcircuits),
                static_cast<unsigned long long>(res.stats.events));
    std::printf("errors: %.3f%% output fields; QoE %s (%.2f "
                "perceptible glitches/min, %.2f corruptions/min)\n",
                100.0 * res.stats.errorFieldRate(),
                qoe.acceptable ? "acceptable" : "NOT acceptable",
                qoe.perceptible_glitches_per_minute,
                qoe.corruptions_per_minute);
    if (res.stats.lookup_bytes) {
        std::printf("lookup: %s/event compared, %.1f%% of energy\n",
                    util::formatSize(
                        static_cast<double>(res.stats.lookup_bytes) /
                        static_cast<double>(res.stats.events))
                        .c_str(),
                    100.0 * res.stats.lookup_energy_j /
                        res.report.total());
    }
    return 0;
}

int
cmdLearn(const Args &args)
{
    std::string name = args.get("game", "ab_evolution");
    auto game = games::makeGame(name);
    auto replica = games::makeGame(name);
    core::LearningConfig cfg;
    cfg.epochs = static_cast<int>(args.getU("epochs", 24));
    cfg.session_s = args.getD("seconds", 15.0);
    cfg.initial_profile_records = 24;
    cfg.snip.min_records_per_type = 8;
    cfg.sim.seed = args.getU("seed", 77);
    cfg.confidence_gate = !args.get("gate").empty();
    core::ContinuousLearner learner(*game, *replica, cfg);
    auto epochs = learner.run();
    std::printf("epoch  deployed  err fields  coverage  table\n");
    for (const auto &e : epochs) {
        std::printf("%5d  %-8s  %9.3f%%  %7.1f%%  %s\n", e.epoch,
                    e.deployed ? "yes" : "WAIT",
                    100.0 * e.error_field_rate, 100.0 * e.coverage,
                    util::formatSize(static_cast<double>(
                                         e.table_bytes))
                        .c_str());
    }
    return 0;
}

int
cmdPack(const Args &args)
{
    std::string out = args.get("out");
    if (out.empty())
        util::fatal("pack: --out <model.bin> is required");
    auto game = games::makeGame(args.get("game", "ab_evolution"));

    core::BaselineScheme baseline;
    core::SimulationConfig pcfg;
    pcfg.duration_s = args.getD("profile-seconds", 300.0);
    pcfg.seed = args.getU("seed", 77);
    pcfg.record_events = true;
    core::SessionResult prof = core::runSession(*game, baseline, pcfg);
    auto replica = games::makeGame(game->name());
    trace::Profile profile =
        trace::Replayer::replay(prof.trace, *replica);

    core::SnipConfig scfg;
    scfg.seed = args.getU("seed", 77);
    scfg.overrides.force_keep = game->params().recommended_overrides;
    core::SnipModel model = core::buildSnipModel(profile, *game, scfg);

    util::Status st = core::saveModel(model, out);
    if (!st.ok())
        util::fatal("pack: %s", st.message().c_str());
    std::printf("packed %s: %zu event types, %zu entries (%s table) "
                "-> %s (%s on the wire)\n",
                game->name().c_str(), model.types.size(),
                model.table->entryCount(),
                util::formatSize(static_cast<double>(
                                     model.table->totalBytes()))
                    .c_str(),
                out.c_str(),
                util::formatSize(static_cast<double>(
                                     core::packedModelBytes(model)))
                    .c_str());
    return 0;
}

int
cmdInspect(const Args &args)
{
    std::string in = args.get("in");
    if (in.empty())
        util::fatal("inspect: --in <model.bin> is required");
    util::ByteBuffer buf;
    util::Status st = trace::loadBuffer(in, &buf);
    if (!st.ok())
        util::fatal("inspect: %s", st.message().c_str());

    core::PackageInfo info;
    st = core::inspectPackage(buf, &info);
    if (!st.ok()) {
        std::printf("%s: NOT a model package: %s\n", in.c_str(),
                    st.message().c_str());
        return 1;
    }
    std::printf("%s: version %u, payload %s, crc 0x%08x (%s)\n",
                in.c_str(), info.version,
                util::formatSize(
                    static_cast<double>(info.payload_bytes))
                    .c_str(),
                info.crc, info.crc_ok ? "ok" : "MISMATCH");

    util::Result<core::SnipModel> model = core::unpackModel(buf);
    if (!model.ok()) {
        std::printf("payload rejected: %s\n",
                    model.status().message().c_str());
        return 1;
    }
    const core::SnipModel &m = model.value();
    std::printf("game %s: %zu event types deployed\n",
                m.game.c_str(), m.types.size());
    for (const auto &t : m.types) {
        std::printf("  %-12s %2zu necessary fields (%llu B), %llu "
                    "records, holdout wrong hits %.2f%%\n",
                    events::eventTypeName(t.type),
                    t.selection.selected.size(),
                    static_cast<unsigned long long>(
                        t.selection.selected_bytes),
                    static_cast<unsigned long long>(t.records),
                    100.0 * t.selection.selected_error);
        if (m.table && !args.get("verbose").empty()) {
            for (events::FieldId fid : t.selection.selected)
                std::printf("      %s\n",
                            m.table->schema().def(fid).name.c_str());
        }
    }
    if (m.table) {
        std::printf("table: %zu entries, %s modeled on-device\n",
                    m.table->entryCount(),
                    util::formatSize(static_cast<double>(
                                         m.table->totalBytes()))
                        .c_str());
        // Both layouts: the mutable build table above and the flat
        // arena the runtime actually probes.
        auto fz = m.table->freeze();
        std::printf("frozen: %s arena, index load %.2f "
                    "(%zu entries, one probe + linear scan)\n",
                    util::formatSize(
                        static_cast<double>(fz->arenaSize()))
                        .c_str(),
                    fz->indexLoadFactor(), fz->entryCount());
    } else {
        std::printf("table: (none)\n");
    }
    return 0;
}

int
cmdVerify(const Args &args)
{
    std::string in = args.get("in");
    if (in.empty())
        util::fatal("verify: --in <model.bin> is required");
    util::Result<core::SnipModel> model = core::loadModel(in);
    if (!model.ok()) {
        std::printf("%s: REJECTED: %s\n", in.c_str(),
                    model.status().message().c_str());
        return 1;
    }
    std::printf("%s: OK (%s, %zu types, %zu entries)\n", in.c_str(),
                model.value().game.c_str(),
                model.value().types.size(),
                model.value().table
                    ? model.value().table->entryCount()
                    : 0);
    return 0;
}

int
cmdStats(const Args &args)
{
    auto game = games::makeGame(args.get("game", "ab_evolution"));
    obs::Registry reg;

    // Profile (un-instrumented, so the runtime metrics below
    // reflect only the deployed session) and Shrink with the
    // per-phase spans enabled.
    core::BaselineScheme baseline;
    core::SimulationConfig pcfg;
    pcfg.duration_s = args.getD("profile-seconds", 120.0);
    pcfg.seed = args.getU("seed", 77);
    pcfg.record_events = true;
    core::SessionResult prof =
        core::runSession(*game, baseline, pcfg);
    auto replica = games::makeGame(game->name());
    trace::Profile profile =
        trace::Replayer::replay(prof.trace, *replica);

    core::SnipConfig scfg;
    scfg.seed = pcfg.seed;
    scfg.overrides.force_keep = game->params().recommended_overrides;
    scfg.obs = &reg;
    core::SnipModel model =
        core::buildSnipModel(profile, *game, scfg);

    // Deploy + evaluate with the runtime counters on.
    core::SimulationConfig ecfg;
    ecfg.duration_s = args.getD("seconds", 60.0);
    ecfg.seed = util::mixCombine(pcfg.seed, 0xe7a1);
    ecfg.obs = &reg;
    core::SnipRuntimeConfig rcfg;
    rcfg.audit_every = static_cast<uint32_t>(args.getU("audit", 0));
    rcfg.obs = &reg;
    core::SnipScheme scheme(model, rcfg);
    core::runSession(*game, scheme, ecfg);
    // Refresh the table gauges from the scheme: they describe the
    // deployed layout (frozen arena + whatever online fill grew in
    // the overlay during the session), not the build-side table.
    scheme.recordTableStats(reg);
    obs::exportTaskPoolStats(reg);

    std::printf("obs metrics: %s, %.0f s profile + %.0f s deployed "
                "session\n\n", game->displayName().c_str(),
                pcfg.duration_s, ecfg.duration_s);
    obs::TableSink sink(std::cout);
    sink.write(reg);

    std::string json = args.get("json");
    if (!json.empty()) {
        util::Status st = obs::writeJsonFile(reg, json);
        if (!st.ok())
            util::fatal("stats: %s", st.message().c_str());
        std::printf("metrics -> %s\n", json.c_str());
    }
    return 0;
}

int
cmdFleetPublish(const Args &args)
{
    std::string dir = args.get("registry");
    std::string in = args.get("in");
    if (dir.empty() || in.empty())
        util::fatal("fleet publish: --registry <dir> and --in "
                    "<model.bin> are required");

    // Open (or start) the on-disk registry.
    fleet::ModelRegistry reg;
    auto loaded = fleet::ModelRegistry::loadDir(dir);
    if (loaded.ok())
        reg = std::move(loaded.value());

    auto pkg = std::make_shared<util::ByteBuffer>();
    util::Status st = trace::loadBuffer(in, pkg.get());
    if (!st.ok())
        util::fatal("fleet publish: %s", st.message().c_str());

    // The game line is read from the package itself unless pinned.
    std::string game = args.get("game");
    if (game.empty()) {
        util::ByteBuffer probe;
        probe.putBytes(pkg->data().data(), pkg->size());
        util::Result<core::SnipModel> m = core::unpackModel(probe);
        if (!m.ok())
            util::fatal("fleet publish: %s is not a deployable "
                        "package: %s", in.c_str(),
                        m.status().message().c_str());
        game = m.value().game;
    }

    util::Result<fleet::VersionId> id =
        reg.publish(game, std::move(pkg),
                    args.getU("parent", 0));
    if (!id.ok())
        util::fatal("fleet publish: %s",
                    id.status().message().c_str());
    st = reg.saveDir(dir);
    if (!st.ok())
        util::fatal("fleet publish: %s", st.message().c_str());

    const fleet::ModelVersion *head = reg.head(game);
    std::printf("published %s version %016llx (epoch %u, parent "
                "%016llx) -> %s (%zu versions)\n",
                game.c_str(),
                static_cast<unsigned long long>(id.value()),
                head->epoch,
                static_cast<unsigned long long>(head->parent),
                dir.c_str(), reg.versionCount(game));
    return 0;
}

int
cmdFleetDiff(const Args &args)
{
    std::string from = args.get("from");
    std::string to = args.get("to");
    std::string out = args.get("out");
    if (from.empty() || to.empty() || out.empty())
        util::fatal("fleet diff: --from <old.bin>, --to <new.bin> "
                    "and --out <patch.snpd> are required");
    util::ByteBuffer a, b;
    util::Status st = trace::loadBuffer(from, &a);
    if (st.ok())
        st = trace::loadBuffer(to, &b);
    if (!st.ok())
        util::fatal("fleet diff: %s", st.message().c_str());

    util::ByteBuffer patch;
    fleet::diffBytes(std::span<const uint8_t>(a.data()),
                     std::span<const uint8_t>(b.data()), patch);
    st = trace::saveBuffer(patch, out);
    if (!st.ok())
        util::fatal("fleet diff: %s", st.message().c_str());

    fleet::PatchInfo info;
    st = fleet::inspectPatch(patch, &info);
    if (!st.ok())
        util::fatal("fleet diff: produced patch fails inspection: "
                    "%s", st.message().c_str());
    std::printf("%s -> %s: patch %s (full package %s, %.1f%%); %u "
                "copy ops reuse %s, %u inserts carry %s\n",
                from.c_str(), to.c_str(),
                util::formatSize(static_cast<double>(patch.size()))
                    .c_str(),
                util::formatSize(static_cast<double>(b.size()))
                    .c_str(),
                b.size() ? 100.0 * static_cast<double>(patch.size()) /
                               static_cast<double>(b.size())
                         : 0.0,
                info.copy_ops,
                util::formatSize(
                    static_cast<double>(info.copied_bytes))
                    .c_str(),
                info.insert_ops,
                util::formatSize(
                    static_cast<double>(info.inserted_bytes))
                    .c_str());
    return 0;
}

int
cmdFleetApply(const Args &args)
{
    std::string base = args.get("base");
    std::string patch_path = args.get("patch");
    std::string out = args.get("out");
    if (base.empty() || patch_path.empty() || out.empty())
        util::fatal("fleet apply: --base <old.bin>, --patch "
                    "<patch.snpd> and --out <new.bin> are required");
    util::ByteBuffer src, patch;
    util::Status st = trace::loadBuffer(base, &src);
    if (st.ok())
        st = trace::loadBuffer(patch_path, &patch);
    if (!st.ok())
        util::fatal("fleet apply: %s", st.message().c_str());

    util::Result<util::ByteBuffer> got =
        fleet::applyPatch(std::span<const uint8_t>(src.data()),
                          patch);
    if (!got.ok()) {
        // The device fallback: --full supplies the full package the
        // fetch would retrieve when the delta is rejected.
        std::string full = args.get("full");
        if (full.empty()) {
            std::printf("fleet apply: REJECTED: %s\n",
                        got.status().message().c_str());
            return 1;
        }
        util::ByteBuffer full_pkg;
        st = trace::loadBuffer(full, &full_pkg);
        if (!st.ok())
            util::fatal("fleet apply: %s", st.message().c_str());
        std::printf("fleet apply: delta rejected (%s); falling back "
                    "to full package %s\n",
                    got.status().message().c_str(), full.c_str());
        got = std::move(full_pkg);
    }
    st = trace::saveBuffer(got.value(), out);
    if (!st.ok())
        util::fatal("fleet apply: %s", st.message().c_str());
    std::printf("reconstructed %s (%s)\n", out.c_str(),
                util::formatSize(
                    static_cast<double>(got.value().size()))
                    .c_str());
    return 0;
}

void
usage()
{
    std::printf(
        "snip — selective event processing pipeline driver\n"
        "\n"
        "usage: snip <command> [options]\n"
        "  games                                list workloads\n"
        "  characterize --game G [--seconds S]  baseline stats\n"
        "  record --game G --out F [--seconds S] record events\n"
        "  select --in F [--out P] [--verbose]  replay + PFI\n"
        "  convert --in F --out F [--training]  rows <-> columnar trace\n"
        "                                       (--training: replay and\n"
        "                                       emit SNCT v2 training\n"
        "                                       columns for out-of-core\n"
        "                                       Shrink)\n"
        "  eval --game G [--scheme S] [--audit N] deploy + measure\n"
        "  learn --game G [--epochs E] [--gate]  continuous learning\n"
        "  pack --game G --out F                 build + serialize OTA model\n"
        "  inspect --in F [--verbose]            show a packed model\n"
        "  verify --in F                         integrity-check a model\n"
        "  stats --game G [--audit N] [--json F] obs metrics of a deploy\n"
        "  fleet publish --registry D --in F [--game G] [--parent H]\n"
        "                                       add a package to the\n"
        "                                       versioned model registry\n"
        "  fleet diff --from F --to F --out P    SNPD delta patch between\n"
        "                                       two packages\n"
        "  fleet apply --base F --patch P --out F [--full F]\n"
        "                                       apply a patch (falls back\n"
        "                                       to --full when rejected)\n"
        "common: --seed N\n");
}

}  // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);
    if (args.command == "games")
        return cmdGames();
    if (args.command == "characterize")
        return cmdCharacterize(args);
    if (args.command == "record")
        return cmdRecord(args);
    if (args.command == "select")
        return cmdSelect(args);
    if (args.command == "convert")
        return cmdConvert(args);
    if (args.command == "eval")
        return cmdEval(args);
    if (args.command == "learn")
        return cmdLearn(args);
    if (args.command == "pack")
        return cmdPack(args);
    if (args.command == "inspect")
        return cmdInspect(args);
    if (args.command == "verify")
        return cmdVerify(args);
    if (args.command == "stats")
        return cmdStats(args);
    if (args.command == "fleet publish")
        return cmdFleetPublish(args);
    if (args.command == "fleet diff")
        return cmdFleetDiff(args);
    if (args.command == "fleet apply")
        return cmdFleetApply(args);
    usage();
    return args.command.empty() ? 0 : 1;
}
