/**
 * @file
 * Name-based access to the seven game workloads, in the paper's
 * Fig. 2/3 complexity order.
 */

#ifndef SNIP_GAMES_REGISTRY_H
#define SNIP_GAMES_REGISTRY_H

#include <memory>
#include <string>
#include <vector>

#include "games/game.h"

namespace snip {
namespace games {

/** Game names in the paper's complexity order (light -> heavy). */
const std::vector<std::string> &allGameNames();

/** Parameters for a named game; fatal() on unknown names. */
GameParams paramsFor(const std::string &name);

/** Construct a named game; fatal() on unknown names. */
std::unique_ptr<Game> makeGame(const std::string &name);

/** Construct every game in complexity order. */
std::vector<std::unique_ptr<Game>> makeAllGames();

}  // namespace games
}  // namespace snip

#endif  // SNIP_GAMES_REGISTRY_H
