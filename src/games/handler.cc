#include "games/handler.h"

namespace snip {
namespace games {

double
HandlerExecution::ipWorkUnits() const
{
    double total = 0.0;
    for (const auto &c : ip_calls)
        total += c.work_units;
    return total;
}

}  // namespace games
}  // namespace snip
