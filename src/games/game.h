/**
 * @file
 * The parameterized game workload model. A Game is built from a
 * GameParams description (event mix, handler specs, state fields,
 * user-behaviour knobs) and provides the three operations the rest
 * of the system needs:
 *
 *  - makeEvent(): draw the next user event (seeded, reproducible);
 *  - process(): deterministically compute the full handler
 *    execution (inputs, outputs, costs) for an event against the
 *    current state *without* mutating anything — the ground truth
 *    schemes charge, memoize, or compare against;
 *  - applyOutputs(): commit a set of output writes (computed or
 *    memoized — possibly wrong) to the state.
 *
 * Seven concrete configurations (the paper's games) are provided by
 * catalog.h.
 */

#ifndef SNIP_GAMES_GAME_H
#define SNIP_GAMES_GAME_H

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "events/event.h"
#include "events/field.h"
#include "games/game_state.h"
#include "games/handler.h"
#include "util/rng.h"

namespace snip {
namespace games {

/** User-behaviour knobs (drives repetition and redundancy). */
struct UserModelParams {
    /** Zipf skew of necessary-value popularity (hot zones). */
    double zipf_s = 1.1;
    /**
     * Probability the next event of a type is an *exact* repeat of
     * the previous one (finger held still / re-pressed button);
     * yields the paper's 2-5% exactly-repeated events.
     */
    double exact_repeat_prob = 0.04;
    /**
     * Probability a gesture burst continues: necessary values are
     * kept from the previous event of the type while noise fields
     * are redrawn.
     */
    double burst_continue_prob = 0.55;
    /**
     * Entropy of the noise fields: every event draws two Zipf
     * "micro-context" latents from [0, noise_pool) and all noise
     * field values derive deterministically from them. Low-entropy
     * noise is what lets full input records revisit at all (the
     * paper's naive-table coverage, Fig. 6); raising the pool makes
     * records effectively unique.
     */
    uint32_t noise_pool = 40;
};

/** Complete declarative description of one game workload. */
struct GameParams {
    std::string name;      ///< Identifier, e.g. "ab_evolution".
    std::string display;   ///< Pretty name, e.g. "AB Evolution".
    uint64_t salt = 1;     ///< Per-game hash salt.

    /** One entry per event type the game consumes. */
    struct MixEntry {
        events::EventType type;
        double rate_hz;
    };
    std::vector<MixEntry> mix;

    /** Background (non-event) load, charged per frame/second. */
    double frame_rate = 60.0;
    double frame_gpu_units = 0.1;      ///< UI animation per frame.
    double frame_display_units = 1.0;  ///< Composition per frame.
    double frame_cpu_minstr = 0.3;     ///< Little-core M instr/frame.
    double audio_units_per_s = 10.0;   ///< Audio IP work per second.

    /** Handler behaviour per event type in the mix. */
    std::vector<HandlerSpec> handlers;
    /** Game state fields. */
    std::vector<HistoryFieldDecl> history_fields;
    /** In.Extern sources (registered as "x.<name>"). */
    std::vector<std::string> extern_fields;
    /**
     * Developer-recommended necessary fields (paper §V-B Option 1):
     * schema names the developer marks as must-keep because the
     * profile alone under-samples them (e.g. rarely-changing board
     * rows). Consumed by the SNIP pipeline as force-keep overrides.
     */
    std::vector<std::string> recommended_overrides;
    /** Size of each In.Extern location (bytes). */
    uint32_t extern_bytes = 1u << 20;

    UserModelParams user;
};

/** A runnable game workload. */
class Game
{
  public:
    /** Validate params, build the field schema, init state. */
    explicit Game(GameParams params);

    const std::string &name() const { return params_.name; }
    const std::string &displayName() const { return params_.display; }
    const GameParams &params() const { return params_; }
    const events::FieldSchema &schema() const { return schema_; }

    /** Sum of event rates across the mix (events/s). */
    double totalEventRate() const;

    /** Handler spec for a type; panics when the game lacks it. */
    const HandlerSpec &handler(events::EventType t) const;

    /**
     * Draw the next event of type @p t at simulated time @p now.
     * Consumes randomness from @p rng; advances per-type gesture
     * memory (bursts / exact repeats).
     */
    events::EventObject makeEvent(events::EventType t, double now,
                                  util::Rng &rng);

    /**
     * Compute the full execution of @p ev against the current state.
     * Pure: identical (event, state) gives identical results.
     */
    HandlerExecution process(const events::EventObject &ev) const;

    /** Commit output writes to the state. */
    void applyOutputs(const std::vector<events::FieldValue> &outputs);

    /** Mutable state access (tests, error injection). */
    GameState &state() { return state_; }
    const GameState &state() const { return state_; }

    /** Ground truth: ids of the necessary input fields of @p t. */
    std::vector<events::FieldId>
    necessaryInputIds(events::EventType t) const;

    /**
     * Read the *current* value of any non-event input location
     * (history slot, context block, extern source) — what the SNIP
     * runtime loads when comparing necessary inputs. Returns false
     * for event-object fields (those come from the event itself).
     */
    bool gatherInputValue(events::FieldId fid, uint64_t &value) const;

    /** Reset state and gesture memory to initial conditions. */
    void reset();

  private:
    void buildSchema();
    const std::vector<double> &zipfCdf(uint32_t cardinality) const;
    uint64_t typeSalt(events::EventType t) const;

    GameParams params_;
    events::FieldSchema schema_;
    GameState state_;

    /** Per-type handler index; -1 when absent. */
    std::array<int, events::kNumEventTypes> handlerIdx_;

    /** Per-type last generated event (bursts / repeats). */
    struct GenMemory {
        bool valid = false;
        std::vector<events::FieldValue> fields;
    };
    std::array<GenMemory, events::kNumEventTypes> genMem_;

    /** Registered auxiliary ids. */
    std::unordered_map<std::string, events::FieldId> externIn_;
    /** Context-block field id -> block index. */
    std::unordered_map<events::FieldId, uint32_t> blockIndex_;
    struct HandlerIds {
        std::vector<events::FieldId> temp_out;
        events::FieldId extern_out = events::kInvalidField;
        std::vector<events::FieldId> blocks;
    };
    std::vector<HandlerIds> handlerIds_;

    uint64_t seq_ = 0;
    mutable std::unordered_map<uint32_t, std::vector<double>> zipfCdfs_;
};

}  // namespace games
}  // namespace snip

#endif  // SNIP_GAMES_GAME_H
