#include "games/game.h"

#include <algorithm>
#include <cmath>

#include "util/bytes.h"
#include "util/logging.h"

namespace snip {
namespace games {

namespace {

// Salts decorrelating the deterministic draws inside process().
constexpr uint64_t kSaltUseless = 0x075e1e55ULL;
constexpr uint64_t kSaltPattern = 0x09a77e24ULL;
constexpr uint64_t kSaltScore = 0x05c042eaULL;
constexpr uint64_t kSaltDelta = 0x0de17a00ULL;
constexpr uint64_t kSaltExtIn = 0x0e871a10ULL;
constexpr uint64_t kSaltExtOut = 0x0e871a20ULL;
constexpr uint64_t kSaltCost = 0x0c057c05ULL;
constexpr uint64_t kSaltWhich = 0x0071c400ULL;
constexpr uint64_t kSaltTempOnly = 0x007e3b01ULL;

/** Value of a field within an event object; panics when absent. */
uint64_t
eventValue(const events::EventObject &ev, events::FieldId fid)
{
    const events::FieldValue *fv = events::findField(ev.fields, fid);
    if (!fv)
        util::panic("event %s missing field id %u",
                    events::eventTypeName(ev.type), fid);
    return fv->value;
}

}  // namespace

Game::Game(GameParams params)
    : params_(std::move(params))
{
    if (params_.name.empty())
        util::fatal("Game: empty name");
    if (params_.mix.empty())
        util::fatal("game %s: empty event mix", params_.name.c_str());
    if (params_.handlers.size() != params_.mix.size())
        util::fatal("game %s: %zu handlers for %zu mix entries",
                    params_.name.c_str(), params_.handlers.size(),
                    params_.mix.size());
    handlerIdx_.fill(-1);
    buildSchema();
    state_.build(params_.history_fields);
}

void
Game::buildSchema()
{
    // History fields first: input side ("h.<name>") and output side
    // ("o.<name>") bind to the same state slot.
    std::unordered_map<std::string, size_t> hist_idx;
    for (size_t i = 0; i < params_.history_fields.size(); ++i) {
        auto &d = params_.history_fields[i];
        if (hist_idx.count(d.name))
            util::fatal("game %s: duplicate history field %s",
                        params_.name.c_str(), d.name.c_str());
        d.in_fid = schema_.addInput("h." + d.name,
                                    events::InputCategory::History,
                                    d.size_bytes);
        d.out_fid = schema_.addOutput("o." + d.name,
                                      events::OutputCategory::History,
                                      d.size_bytes);
        hist_idx[d.name] = i;
    }

    for (const auto &name : params_.extern_fields) {
        externIn_[name] = schema_.addInput(
            "x." + name, events::InputCategory::Extern,
            params_.extern_bytes);
    }

    auto hist_decl = [&](const std::string &name) -> HistoryFieldDecl & {
        auto it = hist_idx.find(name);
        if (it == hist_idx.end())
            util::fatal("game %s: unknown history field %s",
                        params_.name.c_str(), name.c_str());
        return params_.history_fields[it->second];
    };

    handlerIds_.resize(params_.handlers.size());
    for (size_t h = 0; h < params_.handlers.size(); ++h) {
        HandlerSpec &spec = params_.handlers[h];
        if (spec.type != params_.mix[h].type)
            util::fatal("game %s: handler %zu type mismatch with mix",
                        params_.name.c_str(), h);
        int ti = static_cast<int>(spec.type);
        if (handlerIdx_[ti] != -1)
            util::fatal("game %s: duplicate handler for %s",
                        params_.name.c_str(),
                        events::eventTypeName(spec.type));
        handlerIdx_[ti] = static_cast<int>(h);

        const char *tn = events::eventTypeName(spec.type);

        uint32_t size_sum = 0;
        for (auto &efs : spec.event_fields) {
            efs.fid = schema_.addInput(
                std::string(tn) + "." + efs.name,
                events::InputCategory::Event, efs.size_bytes);
            size_sum += efs.size_bytes;
            if (efs.cardinality < 2)
                util::fatal("game %s: field %s.%s cardinality < 2",
                            params_.name.c_str(), tn, efs.name.c_str());
        }
        if (size_sum != events::eventObjectBytes(spec.type))
            util::fatal("game %s: %s event fields sum to %u B, object "
                        "is %u B", params_.name.c_str(), tn, size_sum,
                        events::eventObjectBytes(spec.type));

        HandlerIds &ids = handlerIds_[h];
        for (uint32_t j = 0; j < spec.max_history_blocks; ++j) {
            events::FieldId bf = schema_.addInput(
                std::string(tn) + ".blk" + std::to_string(j),
                events::InputCategory::History,
                spec.history_block_bytes);
            ids.blocks.push_back(bf);
            blockIndex_[bf] = j;
        }
        for (uint32_t j = 0; j < spec.temp_outputs; ++j) {
            ids.temp_out.push_back(schema_.addOutput(
                std::string(tn) + ".t" + std::to_string(j),
                events::OutputCategory::Temp, 16));
        }
        if (!spec.extern_output.empty()) {
            ids.extern_out = schema_.addOutput(
                std::string(tn) + ".xo." + spec.extern_output,
                events::OutputCategory::Extern, 256);
        }

        // Validate cross-references.
        for (const auto &n : spec.necessary_history) {
            if (hist_decl(n).isAccumulator())
                util::fatal("game %s: necessary_history %s is an "
                            "accumulator", params_.name.c_str(),
                            n.c_str());
        }
        for (const auto &n : spec.scoring_history) {
            if (!hist_decl(n).isAccumulator())
                util::fatal("game %s: scoring_history %s is not an "
                            "accumulator", params_.name.c_str(),
                            n.c_str());
        }
        for (const auto &n : spec.history_outputs)
            hist_decl(n);
        if (!spec.complexity_field.empty())
            hist_decl(spec.complexity_field);
        if (!spec.plateau_history_field.empty()) {
            const auto &d = hist_decl(spec.plateau_history_field);
            if (d.isAccumulator())
                util::fatal("game %s: plateau field %s is an "
                            "accumulator", params_.name.c_str(),
                            d.name.c_str());
            bool found = false;
            for (const auto &efs : spec.event_fields)
                found |= (efs.name == spec.plateau_event_field &&
                          efs.necessary);
            if (!found)
                util::fatal("game %s: plateau event field %s missing "
                            "or not necessary", params_.name.c_str(),
                            spec.plateau_event_field.c_str());
            bool nec = false;
            for (const auto &n : spec.necessary_history)
                nec |= (n == spec.plateau_history_field);
            if (!nec)
                util::fatal("game %s: plateau history field %s must "
                            "be in necessary_history",
                            params_.name.c_str(),
                            spec.plateau_history_field.c_str());
        }
        if (!spec.extern_field.empty() && !externIn_.count(spec.extern_field))
            util::fatal("game %s: unknown extern field %s",
                        params_.name.c_str(), spec.extern_field.c_str());
    }
}

double
Game::totalEventRate() const
{
    double total = 0.0;
    for (const auto &m : params_.mix)
        total += m.rate_hz;
    return total;
}

const HandlerSpec &
Game::handler(events::EventType t) const
{
    int idx = handlerIdx_[static_cast<int>(t)];
    if (idx < 0)
        util::panic("game %s: no handler for %s", params_.name.c_str(),
                    events::eventTypeName(t));
    return params_.handlers[static_cast<size_t>(idx)];
}

uint64_t
Game::typeSalt(events::EventType t) const
{
    return util::mixCombine(params_.salt,
                            0x7717e000ULL + static_cast<uint64_t>(t));
}

const std::vector<double> &
Game::zipfCdf(uint32_t cardinality) const
{
    auto it = zipfCdfs_.find(cardinality);
    if (it != zipfCdfs_.end())
        return it->second;
    std::vector<double> cdf(cardinality);
    double acc = 0.0;
    for (uint32_t r = 0; r < cardinality; ++r) {
        acc += 1.0 / std::pow(static_cast<double>(r + 1),
                              params_.user.zipf_s);
        cdf[r] = acc;
    }
    for (auto &v : cdf)
        v /= acc;
    return zipfCdfs_.emplace(cardinality, std::move(cdf)).first->second;
}

events::EventObject
Game::makeEvent(events::EventType t, double now, util::Rng &rng)
{
    const HandlerSpec &spec = handler(t);
    GenMemory &mem = genMem_[static_cast<int>(t)];

    events::EventObject ev;
    ev.type = t;
    ev.seq = seq_++;
    ev.timestamp = now;

    if (mem.valid && rng.chance(params_.user.exact_repeat_prob)) {
        ev.fields = mem.fields;  // finger held still: exact repeat
        return ev;
    }

    bool burst = mem.valid && rng.chance(params_.user.burst_continue_prob);

    // Two shared micro-context latents drive all noise fields; see
    // UserModelParams::noise_pool.
    auto zipf_draw = [&](uint32_t cardinality) -> uint64_t {
        const auto &cdf = zipfCdf(cardinality);
        double r = rng.uniformReal();
        auto pos = std::lower_bound(cdf.begin(), cdf.end(), r);
        uint64_t v = static_cast<uint64_t>(pos - cdf.begin());
        return v >= cardinality ? cardinality - 1 : v;
    };
    uint64_t latent[2] = {zipf_draw(params_.user.noise_pool),
                          zipf_draw(params_.user.noise_pool)};

    size_t noise_idx = 0;
    for (const auto &efs : spec.event_fields) {
        uint64_t value;
        if (efs.necessary) {
            value = burst ? events::findField(mem.fields, efs.fid)->value
                          : zipf_draw(efs.cardinality);
        } else {
            value = util::mixCombine(
                efs.fid, latent[noise_idx++ % 2]);
        }
        ev.fields.push_back({efs.fid, value});
    }
    events::canonicalize(ev.fields);
    mem.valid = true;
    mem.fields = ev.fields;
    return ev;
}

HandlerExecution
Game::process(const events::EventObject &ev) const
{
    int idx = handlerIdx_[static_cast<int>(ev.type)];
    if (idx < 0)
        util::panic("game %s: process() for unhandled type %s",
                    params_.name.c_str(), events::eventTypeName(ev.type));
    const HandlerSpec &spec = params_.handlers[static_cast<size_t>(idx)];
    const HandlerIds &ids = handlerIds_[static_cast<size_t>(idx)];

    auto hist_decl = [&](const std::string &name) -> const HistoryFieldDecl & {
        for (const auto &d : params_.history_fields)
            if (d.name == name)
                return d;
        util::panic("game %s: unknown history field %s",
                    params_.name.c_str(), name.c_str());
    };

    HandlerExecution ex;
    ex.type = ev.type;
    ex.seq = ev.seq;
    ex.inputs = ev.fields;

    // --- Necessary-input vector (the ground truth PFI must find) ---
    std::vector<uint64_t> vals;
    vals.push_back(typeSalt(ev.type));
    for (const auto &efs : spec.event_fields) {
        if (efs.necessary)
            vals.push_back(util::mixCombine(efs.fid,
                                            eventValue(ev, efs.fid)));
    }
    for (const auto &name : spec.necessary_history) {
        const auto &d = hist_decl(name);
        uint64_t v = state_.get(d.in_fid);
        ex.inputs.push_back({d.in_fid, v});
        vals.push_back(util::mixCombine(d.in_fid, v));
    }
    uint64_t vhash = util::hashWords(vals);

    // --- Unnecessary reads: complexity, context blocks, extern ---
    uint64_t complexity = 0;
    if (!spec.complexity_field.empty()) {
        const auto &d = hist_decl(spec.complexity_field);
        complexity = state_.get(d.in_fid);
        if (!events::findField(ex.inputs, d.in_fid))
            ex.inputs.push_back({d.in_fid, complexity});
        uint32_t blocks = d.buckets
            ? static_cast<uint32_t>(complexity * spec.max_history_blocks /
                                    d.buckets)
            : 0;
        if (spec.max_history_blocks > 0 && blocks == 0)
            blocks = 1;  // even a bare scene has one context block
        blocks = std::min<uint32_t>(blocks, spec.max_history_blocks);
        for (uint32_t j = 0; j < blocks; ++j)
            ex.inputs.push_back({ids.blocks[j], state_.blockContent(j)});
    }
    if (!spec.extern_field.empty() &&
        util::mixCombine(vhash, kSaltExtIn) % 1000000 <
            spec.extern_per_million) {
        events::FieldId xf = externIn_.at(spec.extern_field);
        ex.inputs.push_back({xf, util::mixCombine(params_.salt, xf)});
    }

    // --- Useless (no-op) decision: deterministic in the combo ---
    bool useless = false;
    if (!spec.plateau_history_field.empty()) {
        const auto &d = hist_decl(spec.plateau_history_field);
        uint64_t hv = state_.get(d.in_fid);
        for (const auto &efs : spec.event_fields) {
            if (efs.name == spec.plateau_event_field) {
                uint64_t evv = eventValue(ev, efs.fid);
                if (d.buckets && hv == d.buckets - 1 &&
                    evv * 4 >= 3ull * efs.cardinality)
                    useless = true;
            }
        }
    }
    useless = useless ||
        util::mixCombine(vhash, kSaltUseless) % 10000 <
            spec.useless_per_myriad;
    ex.useless = useless;

    bool state_changed = false;
    if (!useless) {
        uint64_t pattern = util::mixCombine(vhash, kSaltPattern) %
                           std::max<uint32_t>(1, spec.output_cardinality);
        uint64_t pkey = util::mixCombine(typeSalt(ev.type), pattern + 1);
        bool scoring = util::mixCombine(vhash, kSaltScore) % 100 <
                       spec.scoring_per_cent;
        scoring = scoring && !spec.scoring_history.empty();
        ex.scoring = scoring;

        for (events::FieldId tf : ids.temp_out)
            ex.outputs.push_back({tf, util::mixCombine(pkey, tf)});
        // Some reactions are render/haptic-only (Out.Temp) and leave
        // the state untouched; otherwise a single event advances
        // only one piece of game state (a tile, the stretch, the
        // detected plane). Both choices, like the written value, are
        // deterministic functions of the necessary-input combo. The
        // written value derives from a *coarsened* pattern so that
        // distinct reactions can share the same state effect while
        // differing in their transient output.
        bool temp_only = util::mixCombine(vhash, kSaltTempOnly) % 100 <
                         spec.temp_only_per_cent;
        if (!spec.history_outputs.empty() && !temp_only) {
            size_t which = util::mixCombine(vhash, kSaltWhich) %
                           spec.history_outputs.size();
            const auto &d = hist_decl(spec.history_outputs[which]);
            uint64_t coarse = util::mixCombine(typeSalt(ev.type),
                                               pattern / 4 + 1);
            uint64_t value = util::mixCombine(coarse, d.out_fid);
            ex.outputs.push_back({d.out_fid, value});
            state_changed |= state_.wouldChange(d.out_fid, value);
        }
        if (scoring) {
            uint32_t k = 0;
            for (const auto &name : spec.scoring_history) {
                const auto &d = hist_decl(name);
                uint64_t cur = state_.get(d.in_fid);
                ex.inputs.push_back({d.in_fid, cur});
                vals.push_back(util::mixCombine(d.in_fid, cur));
                uint64_t u = util::mixCombine(vhash, kSaltDelta + k++);
                ex.outputs.push_back({d.out_fid, cur + 1 + u % 50});
                state_changed = true;
            }
            if (ids.extern_out != events::kInvalidField &&
                util::mixCombine(vhash, kSaltExtOut) % 5 == 0) {
                ex.outputs.push_back(
                    {ids.extern_out,
                     util::mixCombine(pkey, ids.extern_out)});
            }
        }
    }
    ex.necessary_hash = util::hashWords(vals);
    ex.state_changed = state_changed;

    // --- Cost model (deterministic in combo + complexity) ---
    uint64_t cu = util::mixCombine(vhash, kSaltCost);
    double spread = 1.0 - spec.minstr_spread +
        2.0 * spec.minstr_spread *
            (static_cast<double>(cu % 1024) / 1024.0);
    double scale = spread *
        (1.0 + spec.complexity_cost_factor *
                   static_cast<double>(complexity)) *
        (ex.scoring ? 1.3 : 1.0);
    ex.cpu_instructions =
        static_cast<uint64_t>(spec.minstr_mean * scale * 1e6);
    for (const auto &c : spec.ip_calls)
        ex.ip_calls.push_back({c.kind, c.work_units * scale});
    uint64_t input_bytes = schema_.bytesOf(ex.inputs);
    ex.memory_bytes = static_cast<uint64_t>(
        spec.mem_bytes_factor * static_cast<double>(input_bytes)) +
        ex.cpu_instructions / 16;
    ex.maxcpu_fraction = spec.maxcpu_repeat_fraction;

    events::canonicalize(ex.inputs);
    events::canonicalize(ex.outputs);
    return ex;
}

void
Game::applyOutputs(const std::vector<events::FieldValue> &outputs)
{
    for (const auto &fv : outputs)
        state_.apply(fv.id, fv.value);
}

std::vector<events::FieldId>
Game::necessaryInputIds(events::EventType t) const
{
    const HandlerSpec &spec = handler(t);
    std::vector<events::FieldId> ids;
    for (const auto &efs : spec.event_fields)
        if (efs.necessary)
            ids.push_back(efs.fid);
    auto add_hist = [&](const std::string &name) {
        for (const auto &d : params_.history_fields)
            if (d.name == name)
                ids.push_back(d.in_fid);
    };
    for (const auto &n : spec.necessary_history)
        add_hist(n);
    for (const auto &n : spec.scoring_history)
        add_hist(n);
    std::sort(ids.begin(), ids.end());
    return ids;
}

bool
Game::gatherInputValue(events::FieldId fid, uint64_t &value) const
{
    if (state_.tryGet(fid, value))
        return true;
    auto bit = blockIndex_.find(fid);
    if (bit != blockIndex_.end()) {
        value = state_.blockContent(bit->second);
        return true;
    }
    const auto &d = schema_.def(fid);
    if (d.side == events::FieldSide::Input &&
        d.in_cat == events::InputCategory::Extern) {
        value = util::mixCombine(params_.salt, fid);
        return true;
    }
    return false;
}

void
Game::reset()
{
    state_.reset();
    for (auto &m : genMem_)
        m.valid = false;
    seq_ = 0;
}

}  // namespace games
}  // namespace snip
