#include "games/game_state.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace snip {
namespace games {

void
GameState::build(const std::vector<HistoryFieldDecl> &decls)
{
    slots_.clear();
    outToIn_.clear();
    boundedOrder_.clear();
    epoch_ = 0;
    for (const auto &d : decls) {
        if (d.in_fid == events::kInvalidField ||
            d.out_fid == events::kInvalidField) {
            util::panic("GameState::build: field %s has unbound ids",
                        d.name.c_str());
        }
        uint64_t init = d.buckets ? d.init % d.buckets : d.init;
        slots_[d.in_fid] = Slot{init, d.buckets, init};
        outToIn_[d.out_fid] = d.in_fid;
        if (!d.isAccumulator())
            boundedOrder_.push_back(d.in_fid);
    }
    std::sort(boundedOrder_.begin(), boundedOrder_.end());
    fp_ = computeFingerprint();
    refreshedFp_ = fp_;
}

uint64_t
GameState::get(events::FieldId in_fid) const
{
    auto it = slots_.find(in_fid);
    if (it == slots_.end())
        util::panic("GameState::get: unknown history field id %u", in_fid);
    return it->second.value;
}

bool
GameState::tryGet(events::FieldId in_fid, uint64_t &value) const
{
    auto it = slots_.find(in_fid);
    if (it == slots_.end())
        return false;
    value = it->second.value;
    return true;
}

bool
GameState::apply(events::FieldId out_fid, uint64_t value)
{
    auto oit = outToIn_.find(out_fid);
    if (oit == outToIn_.end())
        return false;  // Out.Temp / Out.Extern: not state.
    Slot &slot = slots_[oit->second];
    uint64_t stored = slot.buckets ? value % slot.buckets : value;
    if (slot.value == stored)
        return false;
    slot.value = stored;
    ++epoch_;
    fp_ = computeFingerprint();
    if (epoch_ % kBlockRefreshPeriod == 0)
        refreshedFp_ = fp_;
    return true;
}

bool
GameState::isHistoryOutput(events::FieldId out_fid) const
{
    return outToIn_.count(out_fid) != 0;
}

bool
GameState::wouldChange(events::FieldId out_fid, uint64_t value) const
{
    auto oit = outToIn_.find(out_fid);
    if (oit == outToIn_.end())
        return false;
    const Slot &slot = slots_.at(oit->second);
    uint64_t stored = slot.buckets ? value % slot.buckets : value;
    return slot.value != stored;
}

uint64_t
GameState::boundedFingerprint() const
{
    return fp_;
}

uint64_t
GameState::computeFingerprint() const
{
    uint64_t h = 0xf19e0000ULL;
    for (events::FieldId fid : boundedOrder_)
        h = util::mixCombine(h,
                             util::mixCombine(fid,
                                              slots_.at(fid).value));
    return h;
}

uint64_t
GameState::blockContent(uint32_t index) const
{
    return util::mixCombine(refreshedFp_, 0xb10c0000ULL + index);
}

void
GameState::reset()
{
    for (auto &kv : slots_)
        kv.second.value = kv.second.init;
    epoch_ = 0;
    fp_ = computeFingerprint();
    refreshedFp_ = fp_;
}

}  // namespace games
}  // namespace snip
