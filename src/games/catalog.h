/**
 * @file
 * The seven game workload models the paper evaluates (§VI-A), as
 * GameParams factories:
 *
 *  - Simple touch games: Colorphun, Memory Game — light CPU/GPU,
 *    occasional touch events.
 *  - Swipe games: Candy Crush, Greenwall — swipe-driven with
 *    heavier animation work per event.
 *  - Multi-In.Event games: AB Evolution (drag/tilt catapult with
 *    the maxed-stretch plateau), Chase Whisply (AR: continuous
 *    camera feed through the ISP), Race Kings (3D racing, heavy
 *    GPU/physics).
 *
 * Rates, costs, and redundancy knobs are calibrated against the
 * paper's characterization (Figs. 2-4) — see DESIGN.md §5.
 */

#ifndef SNIP_GAMES_CATALOG_H
#define SNIP_GAMES_CATALOG_H

#include "games/game.h"

namespace snip {
namespace games {

/** Colorphun: occasional-touch color game. */
GameParams makeColorphun();
/** Memory Game: touch-driven tile matching (wide board state). */
GameParams makeMemoryGame();
/** Candy Crush: swipe-driven match-3 with heavy animations. */
GameParams makeCandyCrush();
/** Greenwall: swipe-driven fruit-flinging (open-source Fruit Ninja). */
GameParams makeGreenwall();
/** AB Evolution: drag/tilt catapult, 3D rendering, physics DSP. */
GameParams makeAbEvolution();
/** Chase Whisply: AR shooter, continuous camera ISP + GPU. */
GameParams makeChaseWhisply();
/** Race Kings: 3D racing, heaviest GPU + multi-touch/gyro mix. */
GameParams makeRaceKings();

}  // namespace games
}  // namespace snip

#endif  // SNIP_GAMES_CATALOG_H
