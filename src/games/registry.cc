#include "games/registry.h"

#include "games/catalog.h"
#include "util/logging.h"

namespace snip {
namespace games {

const std::vector<std::string> &
allGameNames()
{
    static const std::vector<std::string> names = {
        "colorphun", "memory_game", "candy_crush", "greenwall",
        "ab_evolution", "chase_whisply", "race_kings",
    };
    return names;
}

GameParams
paramsFor(const std::string &name)
{
    if (name == "colorphun")
        return makeColorphun();
    if (name == "memory_game")
        return makeMemoryGame();
    if (name == "candy_crush")
        return makeCandyCrush();
    if (name == "greenwall")
        return makeGreenwall();
    if (name == "ab_evolution")
        return makeAbEvolution();
    if (name == "chase_whisply")
        return makeChaseWhisply();
    if (name == "race_kings")
        return makeRaceKings();
    util::fatal("unknown game '%s' (expected one of: colorphun, "
                "memory_game, candy_crush, greenwall, ab_evolution, "
                "chase_whisply, race_kings)", name.c_str());
}

std::unique_ptr<Game>
makeGame(const std::string &name)
{
    return std::make_unique<Game>(paramsFor(name));
}

std::vector<std::unique_ptr<Game>>
makeAllGames()
{
    std::vector<std::unique_ptr<Game>> games;
    for (const auto &n : allGameNames())
        games.push_back(makeGame(n));
    return games;
}

}  // namespace games
}  // namespace snip
