/**
 * @file
 * The event-handler model. A game's reaction to an event is an
 * end-to-end *handler execution*: a deterministic function from
 * (event object, game state, external data) to outputs, plus a cost
 * vector (CPU instructions, IP invocations, memory traffic) spanning
 * app, OS, and IP boundaries — exactly the unit SNIP memoizes.
 *
 * Handlers are described declaratively by HandlerSpec and executed
 * by HandlerEngine (handler_engine.h). Determinism matters: outputs
 * depend only on the *necessary* input fields, which is the ground
 * truth that PFI must rediscover from profile data.
 */

#ifndef SNIP_GAMES_HANDLER_H
#define SNIP_GAMES_HANDLER_H

#include <cstdint>
#include <string>
#include <vector>

#include "events/event.h"
#include "events/field.h"
#include "soc/energy_model.h"

namespace snip {
namespace games {

/** One accelerator invocation issued by a handler execution. */
struct IpCall {
    soc::IpKind kind = soc::IpKind::Gpu;
    double work_units = 0.0;
};

/**
 * Everything one handler execution consumed, produced, and cost.
 * This is the record the profiler captures and the schemes act on.
 */
struct HandlerExecution {
    events::EventType type = events::EventType::Touch;
    uint64_t seq = 0;

    /** All input fields read (every category), canonical order. */
    std::vector<events::FieldValue> inputs;
    /** All output fields written, canonical order. */
    std::vector<events::FieldValue> outputs;

    /** Hash over the ground-truth necessary inputs (see HandlerSpec). */
    uint64_t necessary_hash = 0;

    /** Performance-cluster instructions the handler executed. */
    uint64_t cpu_instructions = 0;
    /** Bytes of memory traffic. */
    uint64_t memory_bytes = 0;
    /** Accelerator work issued. */
    std::vector<IpCall> ip_calls;

    /**
     * Fraction of cpu_instructions that function-granularity
     * memoization (the Max-CPU baseline) could skip *if* the
     * necessary inputs repeat a prior execution.
     */
    double maxcpu_fraction = 0.0;

    /** True when any Out.History value differs from current state. */
    bool state_changed = false;
    /** True when the execution produced no output writes at all. */
    bool useless = false;
    /** True when this execution read accumulator state (scoring). */
    bool scoring = false;

    /** Sum of IP work units. */
    double ipWorkUnits() const;
};

/** Declarative spec of one In.Event field of a handler. */
struct EventFieldSpec {
    /** Short name; registered as "<event>.<name>" in the schema. */
    std::string name;
    /** Declared location size (bytes) for table sizing. */
    uint32_t size_bytes = 4;
    /** True when the handler's logic depends on this field. */
    bool necessary = false;
    /**
     * Value space: necessary fields take Zipf-distributed values in
     * [0, cardinality); noise fields take uniform values.
     */
    uint32_t cardinality = 16;
    /** Filled in when the schema is built. */
    events::FieldId fid = events::kInvalidField;
};

/**
 * Declarative description of how a game reacts to one event type.
 * See DESIGN.md §4 for how the knobs create the paper's repeated /
 * redundant / useless event structure.
 */
struct HandlerSpec {
    events::EventType type = events::EventType::Touch;

    /** In.Event layout. Sizes must sum to eventObjectBytes(type). */
    std::vector<EventFieldSpec> event_fields;

    /** Bounded history fields read on every execution (necessary). */
    std::vector<std::string> necessary_history;
    /** Accumulator fields read only on the scoring branch. */
    std::vector<std::string> scoring_history;

    /** History field whose value drives context-payload size. */
    std::string complexity_field;
    /** Size of one In.History context block (bytes). */
    uint32_t history_block_bytes = 4096;
    /** Max context blocks read (scaled by complexity). */
    uint32_t max_history_blocks = 0;

    /** Optional In.Extern field name read on rare executions. */
    std::string extern_field;
    /** Rare-read rate: executions per 10^6 that touch In.Extern. */
    uint32_t extern_per_million = 400;

    /** Number of Out.Temp fields written (auto-named/registered). */
    uint32_t temp_outputs = 2;
    /** Bounded Out.History fields written on state change. */
    std::vector<std::string> history_outputs;
    /** Optional Out.Extern field written on rare scoring events. */
    std::string extern_output;
    /** Distinct output patterns the handler can produce. */
    uint32_t output_cardinality = 48;

    /** Per-10^4 chance a necessary-input combo is a no-op. */
    uint32_t useless_per_myriad = 2000;
    /**
     * Per-cent chance a (non-useless) combo produces only Out.Temp
     * effects — a render/haptic reaction with no state change.
     * These are what make Fig. 8b's tolerable-error class possible.
     */
    uint32_t temp_only_per_cent = 30;
    /** Per-cent chance a combo takes the scoring (accumulator) branch. */
    uint32_t scoring_per_cent = 12;

    /**
     * Optional semantic plateau (AB Evolution's maxed catapult):
     * when @p plateau_history_field is at its top bucket and
     * @p plateau_event_field is in its top quartile, the execution
     * is useless regardless of the hash draw.
     */
    std::string plateau_history_field;
    std::string plateau_event_field;

    /** Mean handler cost in millions of big-core instructions. */
    double minstr_mean = 20.0;
    /** Multiplicative cost spread (uniform in [1-s, 1+s]). */
    double minstr_spread = 0.25;
    /** Cost multiplier per complexity bucket. */
    double complexity_cost_factor = 0.08;
    /** Accelerator work per execution (scaled like CPU cost). */
    std::vector<IpCall> ip_calls;
    /** Memory traffic = factor * input_bytes + instructions / 16. */
    double mem_bytes_factor = 24.0;
    /** Fraction of CPU work reusable at function granularity. */
    double maxcpu_repeat_fraction = 0.25;
};

}  // namespace games
}  // namespace snip

#endif  // SNIP_GAMES_HANDLER_H
