#include "games/catalog.h"

namespace snip {
namespace games {

namespace {

using events::EventType;
using soc::IpKind;

/**
 * In.Event layouts per type. Coarse semantic fields (UI zone, swipe
 * direction, detected AR plane...) are the *necessary* fields; raw
 * coordinates, pressure series, and timestamps are noise the game
 * logic ignores. Sizes sum exactly to eventObjectBytes(type).
 */

std::vector<EventFieldSpec>
touchFields(uint32_t zones)
{
    return {
        {"zone", 2, true, zones, events::kInvalidField},
        {"x_raw", 4, false, 4096, events::kInvalidField},
        {"y_raw", 4, false, 4096, events::kInvalidField},
        {"pressure", 2, false, 256, events::kInvalidField},
        {"pointer", 2, false, 8, events::kInvalidField},
        {"action", 2, false, 4, events::kInvalidField},
        {"ts", 4, false, 65536, events::kInvalidField},
        {"pad", 4, false, 65536, events::kInvalidField},
    };
}

std::vector<EventFieldSpec>
swipeFields(uint32_t zones)
{
    return {
        {"dir", 2, true, 8, events::kInvalidField},
        {"from", 2, true, zones, events::kInvalidField},
        {"to", 2, true, zones, events::kInvalidField},
        {"speed", 2, false, 8, events::kInvalidField},
        {"x0", 4, false, 4096, events::kInvalidField},
        {"y0", 4, false, 4096, events::kInvalidField},
        {"x1", 4, false, 4096, events::kInvalidField},
        {"y1", 4, false, 4096, events::kInvalidField},
        {"pressure_series", 32, false, 1u << 20, events::kInvalidField},
        {"hist_pts", 24, false, 1u << 20, events::kInvalidField},
        {"meta", 4, false, 256, events::kInvalidField},
        {"ts", 4, false, 65536, events::kInvalidField},
        {"pad", 8, false, 65536, events::kInvalidField},
    };
}

std::vector<EventFieldSpec>
dragFields(uint32_t dist_buckets)
{
    return {
        {"dir", 2, true, 8, events::kInvalidField},
        {"dist", 2, true, dist_buckets, events::kInvalidField},
        {"zone", 2, true, 16, events::kInvalidField},
        {"force", 2, false, 8, events::kInvalidField},
        {"path", 96, false, 1u << 20, events::kInvalidField},
        {"x", 4, false, 4096, events::kInvalidField},
        {"y", 4, false, 4096, events::kInvalidField},
        {"vx", 4, false, 4096, events::kInvalidField},
        {"vy", 4, false, 4096, events::kInvalidField},
        {"meta", 16, false, 65536, events::kInvalidField},
        {"ts", 4, false, 65536, events::kInvalidField},
        {"pad", 20, false, 65536, events::kInvalidField},
    };
}

std::vector<EventFieldSpec>
multiTouchFields()
{
    return {
        {"gesture", 2, true, 10, events::kInvalidField},
        {"zone_a", 2, true, 16, events::kInvalidField},
        {"zone_b", 2, true, 16, events::kInvalidField},
        {"scale", 2, true, 12, events::kInvalidField},
        {"pts", 192, false, 1u << 20, events::kInvalidField},
        {"trail", 80, false, 1u << 20, events::kInvalidField},
        {"meta", 36, false, 65536, events::kInvalidField},
        {"ts", 4, false, 65536, events::kInvalidField},
    };
}

std::vector<EventFieldSpec>
gyroFields()
{
    return {
        {"orient", 2, true, 12, events::kInvalidField},
        {"tilt", 2, true, 16, events::kInvalidField},
        {"ax", 8, false, 1u << 20, events::kInvalidField},
        {"ay", 8, false, 1u << 20, events::kInvalidField},
        {"az", 8, false, 1u << 20, events::kInvalidField},
        {"bias", 12, false, 65536, events::kInvalidField},
        {"ts", 8, false, 65536, events::kInvalidField},
    };
}

std::vector<EventFieldSpec>
cameraFields(uint32_t planes)
{
    return {
        {"plane", 2, true, planes, events::kInvalidField},
        {"light", 2, true, 16, events::kInvalidField},
        {"motion", 2, true, 16, events::kInvalidField},
        {"feat", 64, false, 1u << 20, events::kInvalidField},
        {"exposure", 16, false, 65536, events::kInvalidField},
        {"hist", 512, false, 1u << 20, events::kInvalidField},
        {"meta", 36, false, 65536, events::kInvalidField},
        {"ts", 4, false, 65536, events::kInvalidField},
        {"pad", 2, false, 256, events::kInvalidField},
    };
}

}  // namespace

GameParams
makeColorphun()
{
    GameParams p;
    p.name = "colorphun";
    p.display = "Colorphun";
    p.salt = 101;
    p.mix = {{EventType::Touch, 6.0}};
    p.frame_gpu_units = 0.12;
    p.frame_cpu_minstr = 0.4;
    p.audio_units_per_s = 8.0;
    p.history_fields = {
        {"mode", 4, 6, 0, events::kInvalidField, events::kInvalidField},
        {"streak", 4, 8, 0, events::kInvalidField, events::kInvalidField},
        {"palette", 4, 5, 1, events::kInvalidField, events::kInvalidField},
        {"clutter", 4, 4, 1, events::kInvalidField, events::kInvalidField},
        {"score", 8, 0, 0, events::kInvalidField, events::kInvalidField},
    };
    p.extern_fields = {"assets"};

    HandlerSpec touch;
    touch.type = EventType::Touch;
    touch.event_fields = touchFields(24);
    touch.necessary_history = {"mode", "streak", "palette"};
    touch.scoring_history = {"score"};
    touch.complexity_field = "clutter";
    touch.history_block_bytes = 1024;
    touch.max_history_blocks = 4;
    touch.extern_field = "assets";
    touch.extern_per_million = 350;
    touch.temp_outputs = 3;
    touch.history_outputs = {"mode", "streak", "palette", "clutter"};
    touch.extern_output = "leaderboard";
    touch.output_cardinality = 40;
    touch.useless_per_myriad = 1750;
    touch.scoring_per_cent = 15;
    touch.minstr_mean = 135.0;
    touch.minstr_spread = 0.3;
    touch.ip_calls = {{IpKind::Gpu, 38.0}, {IpKind::Display, 3.5},
                      {IpKind::Audio, 2.0}};
    touch.maxcpu_repeat_fraction = 0.5;
    p.handlers = {touch};

    p.user.zipf_s = 1.02;
    p.user.exact_repeat_prob = 0.05;
    p.user.burst_continue_prob = 0.25;
    return p;
}

GameParams
makeMemoryGame()
{
    GameParams p;
    p.name = "memory_game";
    p.display = "Memory Game";
    p.salt = 102;
    p.mix = {{EventType::Touch, 6.0}};
    p.frame_gpu_units = 0.08;
    p.frame_cpu_minstr = 0.3;
    p.audio_units_per_s = 5.0;
    // A wide board: the necessary state is eight 48-byte row
    // descriptors, which makes SNIP's per-event comparisons large —
    // the paper's Memory Game lookup-overhead outlier (Fig. 11c).
    p.history_fields = {
        {"row0", 512, 5, 0, events::kInvalidField, events::kInvalidField},
        {"row1", 512, 5, 1, events::kInvalidField, events::kInvalidField},
        {"row2", 512, 5, 2, events::kInvalidField, events::kInvalidField},
        {"row3", 512, 5, 3, events::kInvalidField, events::kInvalidField},
        {"row4", 512, 5, 0, events::kInvalidField, events::kInvalidField},
        {"row5", 512, 5, 1, events::kInvalidField, events::kInvalidField},
        {"row6", 512, 5, 2, events::kInvalidField, events::kInvalidField},
        {"row7", 512, 5, 3, events::kInvalidField, events::kInvalidField},
        {"phase", 4, 5, 0, events::kInvalidField, events::kInvalidField},
        {"pairs", 8, 0, 0, events::kInvalidField, events::kInvalidField},
    };
    p.extern_fields = {"assets"};

    HandlerSpec touch;
    touch.type = EventType::Touch;
    touch.event_fields = touchFields(20);
    touch.necessary_history = {"row0", "row1", "row2", "row3",
                               "row4", "row5", "row6", "row7", "phase"};
    touch.scoring_history = {"pairs"};
    touch.complexity_field = "phase";
    touch.history_block_bytes = 512;
    touch.max_history_blocks = 4;
    touch.extern_field = "assets";
    touch.extern_per_million = 300;
    touch.temp_outputs = 2;
    touch.history_outputs = {"row0", "row3", "row5", "phase"};
    touch.extern_output = "sync";
    touch.output_cardinality = 64;
    touch.useless_per_myriad = 2200;
    touch.scoring_per_cent = 10;
    touch.minstr_mean = 150.0;
    touch.minstr_spread = 0.25;
    touch.ip_calls = {{IpKind::Gpu, 40.0}, {IpKind::Display, 4.0},
                      {IpKind::Codec, 3.0}};
    touch.maxcpu_repeat_fraction = 0.4;
    p.handlers = {touch};

    p.recommended_overrides = {"h.row0", "h.row3", "h.row5", "h.phase",
                               "h.pairs", "touch.zone"};
    p.user.zipf_s = 1.18;
    p.user.exact_repeat_prob = 0.04;
    p.user.burst_continue_prob = 0.38;
    return p;
}

GameParams
makeCandyCrush()
{
    GameParams p;
    p.name = "candy_crush";
    p.display = "Candy Crush";
    p.salt = 103;
    p.mix = {{EventType::Swipe, 8.0}, {EventType::Touch, 3.0}};
    p.frame_gpu_units = 0.25;
    p.frame_cpu_minstr = 0.5;
    p.audio_units_per_s = 15.0;
    p.history_fields = {
        {"board_zone", 6, 6, 0, events::kInvalidField,
         events::kInvalidField},
        {"combo", 4, 6, 0, events::kInvalidField, events::kInvalidField},
        {"boosters", 4, 4, 1, events::kInvalidField, events::kInvalidField},
        {"fill", 4, 6, 3, events::kInvalidField, events::kInvalidField},
        {"score", 8, 0, 0, events::kInvalidField, events::kInvalidField},
    };
    p.extern_fields = {"assets"};

    HandlerSpec swipe;
    swipe.type = EventType::Swipe;
    swipe.event_fields = swipeFields(8);
    swipe.necessary_history = {"board_zone", "combo", "boosters"};
    swipe.scoring_history = {"score"};
    swipe.complexity_field = "fill";
    swipe.history_block_bytes = 3072;
    swipe.max_history_blocks = 8;
    swipe.extern_field = "assets";
    swipe.extern_per_million = 400;
    swipe.temp_outputs = 4;
    swipe.history_outputs = {"board_zone", "combo", "fill"};
    swipe.extern_output = "leaderboard";
    swipe.output_cardinality = 56;
    swipe.useless_per_myriad = 3300;
    swipe.scoring_per_cent = 16;
    swipe.minstr_mean = 150.0;
    swipe.minstr_spread = 0.3;
    swipe.ip_calls = {{IpKind::Gpu, 34.0}, {IpKind::Display, 3.0},
                      {IpKind::Dsp, 6.0}, {IpKind::Audio, 2.0}};
    swipe.maxcpu_repeat_fraction = 0.3;

    HandlerSpec touch;
    touch.type = EventType::Touch;
    touch.event_fields = touchFields(20);
    touch.necessary_history = {"boosters", "combo"};
    touch.scoring_history = {"score"};
    touch.complexity_field = "fill";
    touch.history_block_bytes = 2048;
    touch.max_history_blocks = 4;
    touch.temp_outputs = 2;
    touch.history_outputs = {"boosters"};
    touch.output_cardinality = 32;
    touch.useless_per_myriad = 2300;
    touch.scoring_per_cent = 8;
    touch.minstr_mean = 60.0;
    touch.minstr_spread = 0.25;
    touch.ip_calls = {{IpKind::Gpu, 10.0}, {IpKind::Display, 1.5},
                      {IpKind::Audio, 1.0}};
    touch.maxcpu_repeat_fraction = 0.35;

    p.handlers = {swipe, touch};

    p.user.zipf_s = 1.38;
    p.user.exact_repeat_prob = 0.04;
    p.user.burst_continue_prob = 0.58;
    return p;
}

GameParams
makeGreenwall()
{
    GameParams p;
    p.name = "greenwall";
    p.display = "Greenwall";
    p.salt = 104;
    p.mix = {{EventType::Swipe, 12.0}, {EventType::Touch, 2.0}};
    p.frame_gpu_units = 0.3;
    p.frame_cpu_minstr = 0.5;
    p.audio_units_per_s = 12.0;
    p.history_fields = {
        {"wave", 4, 6, 0, events::kInvalidField, events::kInvalidField},
        {"fruit_set", 4, 6, 2, events::kInvalidField,
         events::kInvalidField},
        {"multiplier", 4, 4, 1, events::kInvalidField,
         events::kInvalidField},
        {"debris", 4, 6, 2, events::kInvalidField, events::kInvalidField},
        {"score", 8, 0, 0, events::kInvalidField, events::kInvalidField},
    };
    p.extern_fields = {"assets"};

    HandlerSpec swipe;
    swipe.type = EventType::Swipe;
    swipe.event_fields = swipeFields(8);
    swipe.necessary_history = {"wave", "fruit_set", "multiplier"};
    swipe.scoring_history = {"score"};
    swipe.complexity_field = "debris";
    swipe.history_block_bytes = 2048;
    swipe.max_history_blocks = 10;
    swipe.extern_field = "assets";
    swipe.extern_per_million = 350;
    swipe.temp_outputs = 3;
    swipe.history_outputs = {"wave", "fruit_set", "debris"};
    swipe.extern_output = "leaderboard";
    swipe.output_cardinality = 48;
    swipe.useless_per_myriad = 2900;
    swipe.scoring_per_cent = 18;
    swipe.minstr_mean = 120.0;
    swipe.minstr_spread = 0.3;
    swipe.ip_calls = {{IpKind::Gpu, 30.0}, {IpKind::Display, 2.5},
                      {IpKind::Dsp, 5.0}, {IpKind::Audio, 1.5}};
    swipe.maxcpu_repeat_fraction = 0.3;

    HandlerSpec touch;
    touch.type = EventType::Touch;
    touch.event_fields = touchFields(12);
    touch.necessary_history = {"multiplier"};
    touch.scoring_history = {"score"};
    touch.temp_outputs = 2;
    touch.history_outputs = {"multiplier"};
    touch.output_cardinality = 24;
    touch.useless_per_myriad = 1500;
    touch.scoring_per_cent = 6;
    touch.minstr_mean = 45.0;
    touch.minstr_spread = 0.25;
    touch.ip_calls = {{IpKind::Gpu, 7.0}, {IpKind::Display, 1.0}};
    touch.maxcpu_repeat_fraction = 0.35;

    p.handlers = {swipe, touch};

    p.user.zipf_s = 1.28;
    p.user.exact_repeat_prob = 0.035;
    p.user.burst_continue_prob = 0.52;
    return p;
}

GameParams
makeAbEvolution()
{
    GameParams p;
    p.name = "ab_evolution";
    p.display = "AB Evolution";
    p.salt = 105;
    p.mix = {{EventType::Drag, 18.0}, {EventType::Touch, 4.0},
             {EventType::Gyro, 10.0}};
    p.frame_gpu_units = 0.5;
    p.frame_cpu_minstr = 0.8;
    p.audio_units_per_s = 18.0;
    p.history_fields = {
        {"stretch", 4, 8, 2, events::kInvalidField, events::kInvalidField},
        {"aim", 4, 8, 6, events::kInvalidField, events::kInvalidField},
        {"birds", 4, 6, 5, events::kInvalidField, events::kInvalidField},
        {"target_cfg", 6, 6, 0, events::kInvalidField,
         events::kInvalidField},
        {"scene", 4, 6, 3, events::kInvalidField, events::kInvalidField},
        {"menu", 4, 5, 0, events::kInvalidField, events::kInvalidField},
        {"orient_state", 4, 4, 0, events::kInvalidField,
         events::kInvalidField},
        {"score", 8, 0, 0, events::kInvalidField, events::kInvalidField},
    };
    p.extern_fields = {"assets"};

    // The drag handler carries the paper's signature plateau: once
    // the catapult is at max stretch, further outward drags change
    // nothing (AB Evolution's 43% useless events, Fig. 4).
    HandlerSpec drag;
    drag.type = EventType::Drag;
    drag.event_fields = dragFields(8);
    drag.necessary_history = {"stretch", "aim", "target_cfg"};
    drag.scoring_history = {"score"};
    drag.complexity_field = "scene";
    drag.history_block_bytes = 4096;
    drag.max_history_blocks = 12;
    drag.extern_field = "assets";
    drag.extern_per_million = 400;
    drag.temp_outputs = 4;
    drag.history_outputs = {"stretch", "aim", "scene"};
    drag.extern_output = "leaderboard";
    drag.output_cardinality = 56;
    drag.useless_per_myriad = 3300;
    drag.scoring_per_cent = 15;
    drag.plateau_history_field = "stretch";
    drag.plateau_event_field = "dist";
    drag.minstr_mean = 110.0;
    drag.minstr_spread = 0.35;
    drag.ip_calls = {{IpKind::Gpu, 23.0}, {IpKind::Display, 2.0},
                     {IpKind::Dsp, 6.0}, {IpKind::Audio, 1.5}};
    drag.maxcpu_repeat_fraction = 0.3;

    HandlerSpec touch;
    touch.type = EventType::Touch;
    touch.event_fields = touchFields(18);
    touch.necessary_history = {"menu", "birds"};
    touch.scoring_history = {"score"};
    touch.temp_outputs = 2;
    touch.history_outputs = {"menu", "birds"};
    touch.output_cardinality = 32;
    touch.useless_per_myriad = 2100;
    touch.scoring_per_cent = 9;
    touch.minstr_mean = 45.0;
    touch.minstr_spread = 0.25;
    touch.ip_calls = {{IpKind::Gpu, 8.0}, {IpKind::Display, 1.0},
                      {IpKind::Audio, 0.8}};
    touch.maxcpu_repeat_fraction = 0.35;

    HandlerSpec gyro;
    gyro.type = EventType::Gyro;
    gyro.event_fields = gyroFields();
    gyro.necessary_history = {"orient_state"};
    gyro.temp_outputs = 2;
    gyro.history_outputs = {"orient_state"};
    gyro.output_cardinality = 16;
    gyro.useless_per_myriad = 4200;
    gyro.scoring_per_cent = 0;
    gyro.minstr_mean = 25.0;
    gyro.minstr_spread = 0.2;
    gyro.ip_calls = {{IpKind::Gpu, 5.0}, {IpKind::Display, 0.6}};
    gyro.maxcpu_repeat_fraction = 0.4;

    p.handlers = {drag, touch, gyro};

    p.user.zipf_s = 1.12;
    p.user.exact_repeat_prob = 0.03;
    p.user.burst_continue_prob = 0.4;
    return p;
}

GameParams
makeChaseWhisply()
{
    GameParams p;
    p.name = "chase_whisply";
    p.display = "Chase Whisply";
    p.salt = 106;
    p.mix = {{EventType::CameraFrame, 30.0}, {EventType::Touch, 5.0},
             {EventType::Gyro, 15.0}};
    p.frame_gpu_units = 0.4;
    p.frame_cpu_minstr = 0.8;
    p.audio_units_per_s = 15.0;
    p.history_fields = {
        {"plane_state", 4, 8, 0, events::kInvalidField,
         events::kInvalidField},
        {"ghost_cfg", 6, 8, 4, events::kInvalidField,
         events::kInvalidField},
        {"aim_state", 4, 8, 0, events::kInvalidField,
         events::kInvalidField},
        {"clutter", 4, 10, 4, events::kInvalidField,
         events::kInvalidField},
        {"ammo", 4, 8, 6, events::kInvalidField, events::kInvalidField},
        {"score", 8, 0, 0, events::kInvalidField, events::kInvalidField},
    };
    p.extern_fields = {"assets"};

    // Camera frames dominate: most re-detect the same plane in the
    // same light (low useless rate per paper's 17%, but massive
    // redundancy across frames).
    HandlerSpec cam;
    cam.type = EventType::CameraFrame;
    cam.event_fields = cameraFields(24);
    cam.necessary_history = {"plane_state", "ghost_cfg"};
    cam.complexity_field = "clutter";
    cam.history_block_bytes = 4096;
    cam.max_history_blocks = 28;
    cam.extern_field = "assets";
    cam.extern_per_million = 300;
    cam.temp_outputs = 4;
    cam.history_outputs = {"plane_state", "clutter"};
    cam.output_cardinality = 40;
    cam.useless_per_myriad = 1200;
    cam.scoring_per_cent = 0;
    cam.minstr_mean = 75.0;
    cam.minstr_spread = 0.3;
    cam.ip_calls = {{IpKind::CameraIsp, 1.0}, {IpKind::Gpu, 17.0},
                    {IpKind::Display, 1.0}};
    cam.maxcpu_repeat_fraction = 0.25;

    HandlerSpec touch;
    touch.type = EventType::Touch;
    touch.event_fields = touchFields(16);
    touch.necessary_history = {"aim_state", "ghost_cfg", "ammo"};
    touch.scoring_history = {"score"};
    touch.temp_outputs = 3;
    touch.history_outputs = {"aim_state", "ammo", "ghost_cfg"};
    touch.extern_output = "leaderboard";
    touch.output_cardinality = 48;
    touch.useless_per_myriad = 1900;
    touch.scoring_per_cent = 16;
    touch.minstr_mean = 60.0;
    touch.minstr_spread = 0.3;
    touch.ip_calls = {{IpKind::Gpu, 10.0}, {IpKind::Display, 1.2},
                      {IpKind::Audio, 1.0}};
    touch.maxcpu_repeat_fraction = 0.3;

    HandlerSpec gyro;
    gyro.type = EventType::Gyro;
    gyro.event_fields = gyroFields();
    gyro.necessary_history = {"aim_state"};
    gyro.temp_outputs = 2;
    gyro.history_outputs = {"aim_state"};
    gyro.output_cardinality = 24;
    gyro.useless_per_myriad = 1900;
    gyro.scoring_per_cent = 0;
    gyro.minstr_mean = 25.0;
    gyro.minstr_spread = 0.2;
    gyro.ip_calls = {{IpKind::Gpu, 4.0}, {IpKind::Display, 0.5}};
    gyro.maxcpu_repeat_fraction = 0.35;

    p.handlers = {cam, touch, gyro};

    p.user.zipf_s = 0.9;
    p.user.exact_repeat_prob = 0.03;
    p.user.burst_continue_prob = 0.25;
    return p;
}

GameParams
makeRaceKings()
{
    GameParams p;
    p.name = "race_kings";
    p.display = "Race Kings";
    p.salt = 107;
    p.mix = {{EventType::Drag, 25.0}, {EventType::MultiTouch, 8.0},
             {EventType::Gyro, 20.0}};
    p.frame_gpu_units = 1.2;
    p.frame_cpu_minstr = 1.2;
    p.audio_units_per_s = 20.0;
    p.history_fields = {
        {"track_seg", 6, 8, 0, events::kInvalidField,
         events::kInvalidField},
        {"speed_band", 4, 6, 3, events::kInvalidField,
         events::kInvalidField},
        {"steer_state", 4, 6, 4, events::kInvalidField,
         events::kInvalidField},
        {"gear", 4, 5, 1, events::kInvalidField, events::kInvalidField},
        {"traffic", 4, 6, 5, events::kInvalidField,
         events::kInvalidField},
        {"camera_mode", 4, 4, 0, events::kInvalidField,
         events::kInvalidField},
        {"distance", 8, 0, 0, events::kInvalidField,
         events::kInvalidField},
    };
    p.extern_fields = {"assets"};

    // Steering drags: the least-redundant workload (fast-changing
    // track segment state), hence the paper's lowest SNIP coverage.
    HandlerSpec drag;
    drag.type = EventType::Drag;
    drag.event_fields = dragFields(10);
    drag.necessary_history = {"track_seg", "speed_band", "steer_state",
                              "gear"};
    drag.scoring_history = {"distance"};
    drag.complexity_field = "traffic";
    drag.history_block_bytes = 4096;
    drag.max_history_blocks = 10;
    drag.extern_field = "assets";
    drag.extern_per_million = 350;
    drag.temp_outputs = 4;
    drag.history_outputs = {"steer_state", "speed_band", "track_seg",
                            "traffic"};
    drag.output_cardinality = 72;
    drag.useless_per_myriad = 1900;
    drag.scoring_per_cent = 14;
    drag.minstr_mean = 90.0;
    drag.minstr_spread = 0.35;
    drag.ip_calls = {{IpKind::Gpu, 22.0}, {IpKind::Display, 1.5},
                     {IpKind::Dsp, 6.0}, {IpKind::Audio, 1.0}};
    drag.maxcpu_repeat_fraction = 0.55;

    HandlerSpec multi;
    multi.type = EventType::MultiTouch;
    multi.event_fields = multiTouchFields();
    multi.necessary_history = {"gear", "camera_mode"};
    multi.scoring_history = {"distance"};
    multi.temp_outputs = 3;
    multi.history_outputs = {"gear", "camera_mode"};
    multi.output_cardinality = 32;
    multi.useless_per_myriad = 1900;
    multi.scoring_per_cent = 7;
    multi.minstr_mean = 70.0;
    multi.minstr_spread = 0.3;
    multi.ip_calls = {{IpKind::Gpu, 14.0}, {IpKind::Display, 1.2},
                      {IpKind::Dsp, 3.0}};
    multi.maxcpu_repeat_fraction = 0.5;

    HandlerSpec gyro;
    gyro.type = EventType::Gyro;
    gyro.event_fields = gyroFields();
    gyro.necessary_history = {"steer_state", "speed_band"};
    gyro.temp_outputs = 2;
    gyro.history_outputs = {"steer_state"};
    gyro.output_cardinality = 28;
    gyro.useless_per_myriad = 2000;
    gyro.scoring_per_cent = 0;
    gyro.minstr_mean = 30.0;
    gyro.minstr_spread = 0.25;
    gyro.ip_calls = {{IpKind::Gpu, 7.0}, {IpKind::Display, 0.6},
                     {IpKind::Dsp, 1.5}};
    gyro.maxcpu_repeat_fraction = 0.55;

    p.handlers = {drag, multi, gyro};

    p.user.zipf_s = 1.2;
    p.user.exact_repeat_prob = 0.06;
    p.user.burst_continue_prob = 0.52;
    return p;
}

}  // namespace games
}  // namespace snip
