/**
 * @file
 * Mutable game state: the In.History / Out.History store. Bounded
 * fields hold bucketed values (UI mode, catapult stretch, detected
 * AR plane...); accumulators grow monotonically (score, distance);
 * an epoch counter versions the bulk context blocks so their
 * contents change whenever real state changes.
 */

#ifndef SNIP_GAMES_GAME_STATE_H
#define SNIP_GAMES_GAME_STATE_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "events/field.h"

namespace snip {
namespace games {

/** Declaration of one history (state) field of a game. */
struct HistoryFieldDecl {
    /** Short name; registered as "h.<name>". */
    std::string name;
    /** Location size in bytes. */
    uint32_t size_bytes = 8;
    /**
     * Value space. Bounded fields wrap modulo @p buckets;
     * accumulators (buckets == 0) grow without bound.
     */
    uint32_t buckets = 8;
    /** Initial value. */
    uint64_t init = 0;
    /** Filled when the schema is built: the input-side field id. */
    events::FieldId in_fid = events::kInvalidField;
    /** Filled when the schema is built: the output-side field id. */
    events::FieldId out_fid = events::kInvalidField;

    bool isAccumulator() const { return buckets == 0; }
};

/**
 * The state store. Values are addressed by the *input-side* field
 * id; the paired output-side id writes through to the same slot.
 */
class GameState
{
  public:
    /** Build from declarations (called by Game). */
    void build(const std::vector<HistoryFieldDecl> &decls);

    /** Read a field by input-side id; panics on unknown id. */
    uint64_t get(events::FieldId in_fid) const;

    /**
     * Read a field if it is a state slot. Returns false for ids
     * that are not history fields (event/extern/block locations).
     */
    bool tryGet(events::FieldId in_fid, uint64_t &value) const;

    /**
     * Write a field via its *output-side* id; bounded fields wrap
     * modulo their bucket count. Bumps the epoch when the stored
     * value actually changes. Unknown output ids are ignored (they
     * are Out.Temp / Out.Extern writes that do not land in state).
     *
     * @return true when the stored value changed.
     */
    bool apply(events::FieldId out_fid, uint64_t value);

    /** Whether @p out_fid writes through to a state slot. */
    bool isHistoryOutput(events::FieldId out_fid) const;

    /**
     * Whether apply(out_fid, value) would change stored state,
     * without mutating anything. False for non-state outputs.
     */
    bool wouldChange(events::FieldId out_fid, uint64_t value) const;

    /** Version counter: bumps on every real state change. */
    uint64_t epoch() const { return epoch_; }

    /**
     * Fingerprint of all *bounded* state fields (accumulators
     * excluded). Context-block contents derive from it, so bulk
     * In.History payloads revisit whenever the bounded game state
     * revisits — the correlation that makes whole-record
     * memoization possible at all.
     */
    uint64_t boundedFingerprint() const;

    /**
     * Content hash of context block @p index. Block contents are a
     * *stale* snapshot of the bounded state: they refresh only every
     * few state changes (scene meshes are rebuilt occasionally, not
     * on every tiny state tick). The staleness matters: it keeps a
     * block from being a perfect stand-in for the live state fields,
     * so PFI-style selection cannot soundly key on blocks alone.
     */
    uint64_t blockContent(uint32_t index) const;

    /** Reset all fields to their declared initial values. */
    void reset();

  private:
    struct Slot {
        uint64_t value = 0;
        uint32_t buckets = 0;
        uint64_t init = 0;
    };

    /** Recompute the bounded-state hash (fp_'s value). */
    uint64_t computeFingerprint() const;

    std::unordered_map<events::FieldId, Slot> slots_;        // by in_fid
    std::unordered_map<events::FieldId, events::FieldId> outToIn_;
    std::vector<events::FieldId> boundedOrder_;
    uint64_t epoch_ = 0;
    uint64_t refreshedFp_ = 0;
    /** Maintained eagerly on every state change so all const reads
     *  (fingerprint, block contents) are safe from concurrent
     *  readers — no lazily-filled mutable caches. */
    uint64_t fp_ = 0;

    /** State changes between context-block refreshes. */
    static constexpr uint64_t kBlockRefreshPeriod = 3;
};

}  // namespace games
}  // namespace snip

#endif  // SNIP_GAMES_GAME_STATE_H
