/**
 * @file
 * Generic deterministic data-parallel loop, usable from any layer
 * (it lives in util so that snip_ml's Shrink-phase training/PFI and
 * snip_core's session harness share one engine without a dependency
 * cycle — core::ParallelRunner delegates here).
 *
 * The contract is the same one DESIGN.md's threading model states
 * for ParallelRunner::forEach: fn(i) must only write state owned by
 * index i (or otherwise disjoint per index). Indices are pulled from
 * an atomic cursor, so *which worker* runs an index varies run to
 * run, but under the write-disjointness contract the aggregate
 * result is schedule-independent and identical to a serial loop.
 *
 * Execution is backed by the process-wide util::TaskPool: workers
 * are spawned once (lazily, up to the largest thread count ever
 * requested) and reused by every subsequent call, so a warm
 * parallelFor costs a queue push, not a pthread_create. The callable
 * is taken as a non-owning FunctionRef — zero heap allocations per
 * dispatch — and lambdas at existing call sites convert implicitly.
 */

#ifndef SNIP_UTIL_PARALLEL_H
#define SNIP_UTIL_PARALLEL_H

#include <cstddef>

#include "util/function_ref.h"

namespace snip {
namespace util {

/**
 * Worker count used when a parallel loop is given threads == 0: the
 * SNIP_THREADS environment variable when set (a complete integer
 * >= 1; partial parses like "4abc" are warned about and ignored),
 * otherwise std::thread::hardware_concurrency(). SNIP_THREADS
 * therefore caps *all* library parallelism — session fan-out and
 * Shrink-phase training/PFI alike.
 */
unsigned defaultThreadCount();

/**
 * Run fn(i) for every i in [0, n) across @p threads workers
 * (0 = defaultThreadCount()): the calling thread plus pool workers.
 * With one worker (or n <= 1) this degenerates to a plain serial
 * loop with no thread or atomic traffic at all. Safe to call from
 * inside a task that is itself running on the pool (nested loops
 * help-wait instead of deadlocking). The first exception thrown by
 * fn is rethrown on the calling thread after the loop winds down.
 */
void parallelFor(size_t n, FunctionRef<void(size_t)> fn,
                 unsigned threads = 0);

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_PARALLEL_H
