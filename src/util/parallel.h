/**
 * @file
 * Generic deterministic data-parallel loop, usable from any layer
 * (it lives in util so that snip_ml's Shrink-phase training/PFI and
 * snip_core's session harness share one engine without a dependency
 * cycle — core::ParallelRunner delegates here).
 *
 * The contract is the same one DESIGN.md's threading model states
 * for ParallelRunner::forEach: fn(i) must only write state owned by
 * index i (or otherwise disjoint per index). Indices are pulled from
 * an atomic cursor, so *which worker* runs an index varies run to
 * run, but under the write-disjointness contract the aggregate
 * result is schedule-independent and identical to a serial loop.
 */

#ifndef SNIP_UTIL_PARALLEL_H
#define SNIP_UTIL_PARALLEL_H

#include <cstddef>
#include <functional>

namespace snip {
namespace util {

/**
 * Worker count used when a parallel loop is given threads == 0: the
 * SNIP_THREADS environment variable when set (>= 1), otherwise
 * std::thread::hardware_concurrency(). SNIP_THREADS therefore caps
 * *all* library parallelism — session fan-out and Shrink-phase
 * training/PFI alike.
 */
unsigned defaultThreadCount();

/**
 * Run fn(i) for every i in [0, n) across a transient pool of
 * @p threads workers (0 = defaultThreadCount()). The calling thread
 * is worker 0; with one worker (or n <= 1) this degenerates to a
 * plain serial loop with no thread or atomic traffic at all.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &fn,
                 unsigned threads = 0);

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_PARALLEL_H
