/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in the library flows through Rng so that
 * simulations, profiles, and ML training are exactly reproducible
 * from a seed. Uses SplitMix64 for seeding/stateless mixing and
 * xoshiro256** for the stream generator.
 */

#ifndef SNIP_UTIL_RNG_H
#define SNIP_UTIL_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snip {
namespace util {

/**
 * Stateless 64-bit mixer (SplitMix64 finalizer). Useful for turning
 * structured identifiers into well-distributed hash values
 * deterministically. Inline: this sits on the per-event lookup hot
 * path (table subkeys hash a handful of fields per event).
 *
 * @param x Value to mix.
 * @return Avalanche-mixed 64-bit value.
 */
inline uint64_t
mix64(uint64_t x)
{
    // SplitMix64 finalizer (Steele, Lea, Flood 2014).
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into one mixed value. */
inline uint64_t
mixCombine(uint64_t a, uint64_t b)
{
    uint64_t m = mix64(b);
    return mix64(a ^ ((m << 17) | (m >> 47)));
}

/**
 * Seedable xoshiro256** pseudo-random generator.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can be
 * used with <random> distributions, but also provides the handful of
 * distributions the simulator needs directly (avoiding libstdc++
 * implementation differences that would hurt reproducibility).
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

    /** Re-seed the generator. */
    void seed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** UniformRandomBitGenerator interface. */
    uint64_t operator()() { return next(); }
    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return ~0ULL; }

    /** Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. */
    uint64_t uniformInt(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Standard normal via Box-Muller (deterministic, cached pair). */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Log-normal sample parameterized by the *target* median and a
     * dimensionless spread sigma (stddev of the underlying normal).
     */
    double logNormal(double median, double sigma);

    /** Geometric-ish burst length in [1, cap] with mean roughly m. */
    uint64_t burstLength(double m, uint64_t cap);

    /**
     * Sample an index from a discrete distribution given by
     * non-negative weights. Requires at least one positive weight.
     */
    size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of indices [0, n). */
    std::vector<size_t> permutation(size_t n);

    /** Fork a child generator with a decorrelated seed. */
    Rng fork(uint64_t stream_id);

  private:
    uint64_t s_[4];
    bool hasCachedGaussian_ = false;
    double cachedGaussian_ = 0.0;
};

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_RNG_H
