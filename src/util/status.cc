#include "util/status.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace snip {
namespace util {

Status
Status::Errorf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string msg;
    if (needed < 0) {
        msg = fmt;
    } else {
        std::vector<char> buf(static_cast<size_t>(needed) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, args);
        msg.assign(buf.data());
    }
    va_end(args);
    return Error(std::move(msg));
}

}  // namespace util
}  // namespace snip
