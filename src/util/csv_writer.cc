#include "util/csv_writer.h"

#include "util/logging.h"

namespace snip {
namespace util {

CsvWriter::CsvWriter(std::ostream &os, const std::vector<std::string> &header)
    : os_(os), arity_(header.size())
{
    if (arity_ == 0)
        panic("CsvWriter needs at least one column");
    writeRow(header);
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    if (cells.size() != arity_)
        panic("CsvWriter row arity %zu != header arity %zu",
              cells.size(), arity_);
    writeRow(cells);
    ++rows_;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ",";
        os_ << escape(cells[i]);
    }
    os_ << "\n";
}

std::string
CsvWriter::escape(const std::string &cell)
{
    bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

}  // namespace util
}  // namespace snip
