#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace snip {
namespace util {

namespace {

/** Rotate left. */
inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(uint64_t seed_value)
{
    // Expand the seed into the four xoshiro words via SplitMix64,
    // per the reference implementation's recommendation.
    uint64_t sm = seed_value;
    for (auto &word : s_) {
        sm += 0x9e3779b97f4a7c15ULL;
        word = mix64(sm);
    }
    hasCachedGaussian_ = false;
}

uint64_t
Rng::next()
{
    // xoshiro256** (Blackman & Vigna 2018).
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::uniformInt(uint64_t lo, uint64_t hi)
{
    if (lo > hi)
        panic("Rng::uniformInt: lo (%llu) > hi (%llu)",
              (unsigned long long)lo, (unsigned long long)hi);
    uint64_t span = hi - lo;
    if (span == ~0ULL)
        return next();
    // Rejection sampling to avoid modulo bias.
    uint64_t bound = span + 1;
    uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) % bound
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return lo + (r % bound);
    }
}

double
Rng::uniformReal()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniformReal();
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    // Box-Muller.
    double u1, u2;
    do {
        u1 = uniformReal();
    } while (u1 <= 1e-300);
    u2 = uniformReal();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::logNormal(double median, double sigma)
{
    if (median <= 0.0)
        panic("Rng::logNormal: median must be positive (%f)", median);
    return median * std::exp(sigma * gaussian());
}

uint64_t
Rng::burstLength(double m, uint64_t cap)
{
    if (cap == 0)
        panic("Rng::burstLength: cap must be >= 1");
    if (m <= 1.0)
        return 1;
    double p = 1.0 / m;
    uint64_t len = 1;
    while (len < cap && !chance(p))
        ++len;
    return len;
}

size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            panic("Rng::weightedIndex: negative weight %f", w);
        total += w;
    }
    if (total <= 0.0)
        panic("Rng::weightedIndex: no positive weights");
    double target = uniformReal() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (target < acc)
            return i;
    }
    return weights.size() - 1;
}

std::vector<size_t>
Rng::permutation(size_t n)
{
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i)
        idx[i] = i;
    for (size_t i = n; i > 1; --i) {
        size_t j = static_cast<size_t>(uniformInt(0, i - 1));
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

Rng
Rng::fork(uint64_t stream_id)
{
    return Rng(mixCombine(next(), stream_id));
}

}  // namespace util
}  // namespace snip
