/**
 * @file
 * Console table renderer used by the benchmark harnesses so that
 * every figure/table reproduction prints aligned, readable rows.
 */

#ifndef SNIP_UTIL_TABLE_PRINTER_H
#define SNIP_UTIL_TABLE_PRINTER_H

#include <ostream>
#include <string>
#include <vector>

namespace snip {
namespace util {

/**
 * Collects a header and rows of strings and prints them with
 * column-aligned padding. Numeric cells are right-aligned (detected
 * heuristically), text cells left-aligned.
 */
class TablePrinter
{
  public:
    /** Construct with column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Render to the stream with a rule under the header. */
    void print(std::ostream &os) const;

    /** Helpers for formatting numeric cells. */
    static std::string num(double v, int precision = 2);
    static std::string pct(double fraction, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_TABLE_PRINTER_H
