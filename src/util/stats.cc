#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace snip {
namespace util {

void
Summary::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
Summary::merge(const Summary &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    uint64_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double nn = static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * na * nb / nn;
    mean_ = (na * mean_ + nb * other.mean_) / nn;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = n;
}

double
Summary::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
Summary::min() const
{
    return count_ ? min_ : 0.0;
}

double
Summary::max() const
{
    return count_ ? max_ : 0.0;
}

double
Summary::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

EmpiricalCdf::EmpiricalCdf(const EmpiricalCdf &other)
    : samples_(other.samples_),
      sorted_(other.sorted_.load(std::memory_order_acquire))
{
}

EmpiricalCdf &
EmpiricalCdf::operator=(const EmpiricalCdf &other)
{
    if (this != &other) {
        samples_ = other.samples_;
        sorted_.store(other.sorted_.load(std::memory_order_acquire),
                      std::memory_order_release);
    }
    return *this;
}

void
EmpiricalCdf::add(double x)
{
    samples_.push_back(x);
    sorted_.store(false, std::memory_order_release);
}

void
EmpiricalCdf::ensureSorted() const
{
    // Double-checked: concurrent readers of a shared const CDF all
    // funnel through here, and exactly one sorts under the lock.
    if (sorted_.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(sort_mu_);
    if (sorted_.load(std::memory_order_relaxed))
        return;
    std::sort(samples_.begin(), samples_.end());
    sorted_.store(true, std::memory_order_release);
}

double
EmpiricalCdf::quantile(double q) const
{
    if (samples_.empty())
        panic("EmpiricalCdf::quantile on empty distribution");
    ensureSorted();
    q = std::clamp(q, 0.0, 1.0);
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples_.size())));
    if (rank == 0)
        rank = 1;
    return samples_[rank - 1];
}

double
EmpiricalCdf::cdfAt(double x) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

double
EmpiricalCdf::minValue() const
{
    if (samples_.empty())
        panic("EmpiricalCdf::minValue on empty distribution");
    ensureSorted();
    return samples_.front();
}

double
EmpiricalCdf::maxValue() const
{
    if (samples_.empty())
        panic("EmpiricalCdf::maxValue on empty distribution");
    ensureSorted();
    return samples_.back();
}

std::vector<std::pair<double, double>>
EmpiricalCdf::curve(const std::vector<double> &quantiles) const
{
    std::vector<std::pair<double, double>> pts;
    pts.reserve(quantiles.size());
    for (double q : quantiles)
        pts.emplace_back(quantile(q), q);
    return pts;
}

void
Log2Histogram::add(double x)
{
    if (std::isnan(x))
        return;
    uint64_t bucket = kUnderflowBucket;
    if (x >= 1.0) {
        int e = static_cast<int>(std::floor(std::log2(x)));
        e = std::min(e, 62);
        bucket = 1ULL << e;
    }
    ++bins_[bucket];
    ++total_;
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    for (const auto &[bucket, n] : other.bins_)
        bins_[bucket] += n;
    total_ += other.total_;
}

void
CounterSet::inc(const std::string &name, uint64_t by)
{
    counters_[name] += by;
}

uint64_t
CounterSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

}  // namespace util
}  // namespace snip
