/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the integrity footer
 * of the OTA model package. FNV (bytes.h) stays the in-memory hash;
 * CRC is used where payloads cross a transport and bit corruption
 * must be *detected*, not just scrambled.
 */

#ifndef SNIP_UTIL_CRC32_H
#define SNIP_UTIL_CRC32_H

#include <cstddef>
#include <cstdint>

namespace snip {
namespace util {

/**
 * CRC-32 over a byte range. @p seed chains partial computations:
 * crc32(ab) == crc32(b, crc32(a)).
 */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_CRC32_H
