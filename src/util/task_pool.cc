#include "util/task_pool.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "util/logging.h"

namespace snip {
namespace util {

namespace {

/** Hard ceiling on resident workers (sanity bound, not a target). */
constexpr unsigned kMaxWorkers = 512;
/** Per-worker deque capacity (tickets, not indices — stays tiny). */
constexpr size_t kDequeCap = 256;
/** Shared overflow ring capacity. */
constexpr size_t kOverflowCap = 4096;
/** Lease lane capacity (pipelines lease 1–2 workers at a time). */
constexpr size_t kLeaseCap = 256;
/** Spin iterations before a job waiter parks on the job condvar. */
constexpr int kWaitSpins = 512;

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

/**
 * One parallel loop in flight. Stack-resident in the submitting
 * frame; guaranteed not to be referenced once parallelFor returns
 * because the submitter waits for `pending` (indices not yet run +
 * tickets not yet retired) to reach zero before unwinding.
 *
 * Lifetime discipline: an executor's LAST access to a Job is the
 * pending.fetch_sub that retires its claim — after that it may only
 * touch immortal pool state (the completion condvar lives in Impl,
 * not here), so the submitter can destroy the Job the instant it
 * observes pending == 0. A per-Job condvar would race its own
 * destruction on the fast path.
 */
struct Job {
    Job(size_t n, FunctionRef<void(size_t)> fn, unsigned tickets)
        : n(n), fn(fn), pending(static_cast<int64_t>(n) + tickets)
    {
    }

    const size_t n;
    FunctionRef<void(size_t)> fn;

    /** Index cursor: same atomic-cursor semantics as the old
     *  spawn-per-call engine, so scheduling stays a pure
     *  implementation detail under the write-disjointness
     *  contract. */
    std::atomic<size_t> next{0};
    /**
     * Indices whose fn has not finished plus tickets not yet
     * retired (executed or reclaimed). The seq_cst fetch_sub that
     * takes this to zero identifies the unique finisher, with no
     * follow-up Job read needed; the zero is also the submitter's
     * license to unwind (acquire on the observed 0 orders every
     * executor's prior writes — including eptr — before it).
     */
    std::atomic<int64_t> pending;

    /** First exception out of fn; rethrown on the submitter. */
    std::mutex eptr_mu;
    std::exception_ptr eptr;

    bool
    complete() const
    {
        return pending.load(std::memory_order_seq_cst) == 0;
    }
};

namespace {

/**
 * Bounded Chase–Lev work-stealing deque. The owning worker pushes
 * and pops at the bottom; thieves CAS the top. seq_cst on the
 * cursor handoffs instead of standalone fences (same algorithm as
 * Le et al. 2013, expressed fence-free so TSan models it exactly).
 * Slots hold raw Job pointers; a full deque spills to the shared
 * overflow ring, never grows.
 */
class Deque
{
  public:
    /** Owner only. False when full (caller spills to overflow). */
    bool
    push(Job *job)
    {
        int64_t b = bottom_.load(std::memory_order_relaxed);
        int64_t t = top_.load(std::memory_order_acquire);
        if (b - t >= static_cast<int64_t>(kDequeCap))
            return false;
        slot(b).store(job, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_release);
        return true;
    }

    /** Owner only; LIFO end (newest ticket first). */
    Job *
    pop()
    {
        int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        bottom_.store(b, std::memory_order_seq_cst);
        int64_t t = top_.load(std::memory_order_seq_cst);
        Job *job = nullptr;
        if (t <= b) {
            job = slot(b).load(std::memory_order_relaxed);
            if (t == b) {
                // Last entry: race the thieves for it.
                if (!top_.compare_exchange_strong(
                        t, t + 1, std::memory_order_seq_cst,
                        std::memory_order_relaxed))
                    job = nullptr;
                bottom_.store(b + 1, std::memory_order_relaxed);
            }
        } else {
            bottom_.store(b + 1, std::memory_order_relaxed);
        }
        return job;
    }

    /** Any thread; FIFO end (oldest ticket first). */
    Job *
    steal()
    {
        int64_t t = top_.load(std::memory_order_seq_cst);
        int64_t b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b)
            return nullptr;
        Job *job = slot(t).load(std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(
                t, t + 1, std::memory_order_seq_cst,
                std::memory_order_relaxed))
            return nullptr;  // lost the race; caller just rescans
        return job;
    }

  private:
    std::atomic<Job *> &
    slot(int64_t i)
    {
        return buf_[static_cast<size_t>(i) % kDequeCap];
    }

    alignas(64) std::atomic<int64_t> top_{0};
    alignas(64) std::atomic<int64_t> bottom_{0};
    std::atomic<Job *> buf_[kDequeCap] = {};
};

struct Worker {
    Deque deque;
    unsigned index = 0;
};

struct LeaseTask {
    TaskPool::WorkerLease *lease = nullptr;
    unsigned index = 0;
};

/** This thread's pool worker, if it is one. */
thread_local Worker *t_worker = nullptr;

}  // namespace

struct TaskPool::Impl {
    // ------------------------------------------------ worker registry
    /** Slots filled left to right, published via nworkers_. */
    Worker *workers[kMaxWorkers] = {};
    std::atomic<unsigned> nworkers{0};

    // ------------------------------------------------ shared queues
    std::mutex mu;  ///< Guards rings, parking, growth, commits.
    std::condition_variable cv;
    /** Bumped (under mu) whenever new work arrives; parking workers
     *  wait for it to move so no submission is ever slept through. */
    std::atomic<uint64_t> epoch{0};
    unsigned parked = 0;

    Job *overflow[kOverflowCap] = {};
    size_t overflow_head = 0;  ///< Next pop slot.
    size_t overflow_tail = 0;  ///< Next push slot.
    std::atomic<size_t> overflow_count{0};

    LeaseTask leases[kLeaseCap];
    size_t lease_head = 0;
    size_t lease_tail = 0;
    std::atomic<size_t> lease_count{0};

    /** Workers pinned (or about to be) by unfinished lease bodies
     *  plus lease callers waiting on a pool worker: the spawn
     *  guarantee keeps nworkers >= min(committed, kMaxWorkers). */
    size_t committed = 0;

    /**
     * Completion channel for job submitters and lease waiters.
     * Deliberately pool-global (and therefore immortal): a finisher
     * signals completion of a stack-resident Job/WorkerLease here
     * AFTER its final fetch_sub on that object, so it never touches
     * memory the woken waiter is about to unwind. Shared by all
     * concurrent waiters — parking is rare (post-spin), so the
     * broadcast herd is noise.
     */
    std::mutex done_mu;
    std::condition_variable done_cv;

    // ------------------------------------------------ stats
    std::atomic<uint64_t> stat_spawned{0};
    std::atomic<uint64_t> stat_tasks{0};
    std::atomic<uint64_t> stat_steals{0};
    std::atomic<uint64_t> stat_overflow{0};
    std::atomic<uint64_t> stat_park_ns{0};

    void workerLoop(Worker *self);
    bool runOne(Worker *self);
    void runTicket(Job *job);
    void runLeaseBody(LeaseTask task);
    void participate(Job &job);
    void signalDone();
    void spawnLocked();
    void ensureWorkersLocked(size_t want);
    void wakeLocked();
    void submitTickets(Job &job, unsigned tickets);
    void reclaimTickets(Job &job);
    void waitJob(Job &job);
};

// ---------------------------------------------------------- execution

void
TaskPool::Impl::signalDone()
{
    // Empty critical section: pairs with the waiter's
    // predicate-under-done_mu so the notify can't slide into the
    // gap between its check and its wait.
    { std::lock_guard<std::mutex> lock(done_mu); }
    done_cv.notify_all();
}

void
TaskPool::Impl::participate(Job &job)
{
    for (;;) {
        size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n)
            return;
        try {
            job.fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(job.eptr_mu);
            if (!job.eptr)
                job.eptr = std::current_exception();
        }
        // Last access to the Job for this index; hitting zero makes
        // this thread the unique finisher.
        if (job.pending.fetch_sub(1, std::memory_order_seq_cst) ==
            1)
            signalDone();
    }
}

void
TaskPool::Impl::runTicket(Job *job)
{
    stat_tasks.fetch_add(1, std::memory_order_relaxed);
    participate(*job);
    // Retire the ticket itself. After this fetch_sub the Job must
    // not be touched: the submitter is free to destroy it the
    // moment pending reads zero.
    if (job->pending.fetch_sub(1, std::memory_order_seq_cst) == 1)
        signalDone();
}

void
TaskPool::Impl::runLeaseBody(LeaseTask task)
{
    stat_tasks.fetch_add(1, std::memory_order_relaxed);
    try {
        task.lease->body_(task.index);
    } catch (...) {
        // Lease bodies own their error channel (core::Pipeline
        // captures worker exceptions itself); one escaping here
        // would strand the pool worker's loop state.
        panic("TaskPool: lease body %u threw", task.index);
    }
    {
        std::lock_guard<std::mutex> lock(mu);
        --committed;
    }
    // Same lifetime discipline as Job: this fetch_sub is the last
    // access to the (stack-resident) lease; completion is signaled
    // through the pool's immortal channel.
    if (task.lease->remaining_.fetch_sub(
            1, std::memory_order_seq_cst) == 1)
        signalDone();
}

bool
TaskPool::Impl::runOne(Worker *self)
{
    if (Job *job = self->deque.pop()) {
        runTicket(job);
        return true;
    }
    if (lease_count.load(std::memory_order_acquire) > 0) {
        LeaseTask task;
        bool got = false;
        {
            std::lock_guard<std::mutex> lock(mu);
            if (lease_count.load(std::memory_order_relaxed) > 0) {
                task = leases[lease_head % kLeaseCap];
                ++lease_head;
                lease_count.fetch_sub(1,
                                      std::memory_order_release);
                got = true;
            }
        }
        if (got) {
            runLeaseBody(task);
            return true;
        }
    }
    if (overflow_count.load(std::memory_order_acquire) > 0) {
        Job *job = nullptr;
        {
            std::lock_guard<std::mutex> lock(mu);
            // Reclaimed slots are nulled in place; skip them.
            while (overflow_head != overflow_tail) {
                job = overflow[overflow_head % kOverflowCap];
                ++overflow_head;
                if (job) {
                    overflow_count.fetch_sub(
                        1, std::memory_order_release);
                    break;
                }
            }
        }
        if (job) {
            runTicket(job);
            return true;
        }
    }
    unsigned n = nworkers.load(std::memory_order_acquire);
    for (unsigned k = 1; k < n; ++k) {
        Worker *victim = workers[(self->index + k) % n];
        if (Job *job = victim->deque.steal()) {
            stat_steals.fetch_add(1, std::memory_order_relaxed);
            runTicket(job);
            return true;
        }
    }
    return false;
}

void
TaskPool::Impl::workerLoop(Worker *self)
{
    t_worker = self;
    for (;;) {
        uint64_t e = epoch.load(std::memory_order_acquire);
        if (runOne(self))
            continue;
        std::unique_lock<std::mutex> lock(mu);
        if (epoch.load(std::memory_order_relaxed) != e)
            continue;  // work arrived during the scan: rescan
        ++parked;
        uint64_t t0 = nowNs();
        cv.wait(lock, [&] {
            return epoch.load(std::memory_order_relaxed) != e;
        });
        stat_park_ns.fetch_add(nowNs() - t0,
                               std::memory_order_relaxed);
        --parked;
    }
}

// ---------------------------------------------------------- submission

void
TaskPool::Impl::spawnLocked()
{
    unsigned n = nworkers.load(std::memory_order_relaxed);
    if (n >= kMaxWorkers)
        return;
    Worker *w = new Worker;
    w->index = n;
    workers[n] = w;
    nworkers.store(n + 1, std::memory_order_release);
    stat_spawned.fetch_add(1, std::memory_order_relaxed);
    std::thread([this, w] { workerLoop(w); }).detach();
}

void
TaskPool::Impl::ensureWorkersLocked(size_t want)
{
    want = std::min<size_t>(want, kMaxWorkers);
    while (nworkers.load(std::memory_order_relaxed) < want)
        spawnLocked();
}

void
TaskPool::Impl::wakeLocked()
{
    epoch.fetch_add(1, std::memory_order_release);
    if (parked > 0)
        cv.notify_all();
}

void
TaskPool::Impl::submitTickets(Job &job, unsigned tickets)
{
    if (tickets == 0)
        return;
    unsigned queued_local = 0;
    if (t_worker && workers[t_worker->index] == t_worker) {
        // Nested submission from a pool worker: lock-free owner
        // pushes; thieves pick the tickets up from the deque.
        while (queued_local < tickets &&
               t_worker->deque.push(&job))
            ++queued_local;
        if (queued_local == tickets) {
            // Skip the lock when nobody is parked: running workers
            // steal without a wakeup, and a ticket missed in the
            // narrow park race is simply reclaimed by this owner in
            // waitJob — parallelism lost for one call, never
            // progress.
            bool maybe_parked;
            {
                std::lock_guard<std::mutex> lock(mu);
                maybe_parked = parked > 0;
                if (maybe_parked)
                    wakeLocked();
            }
            (void)maybe_parked;
            return;
        }
    }
    std::lock_guard<std::mutex> lock(mu);
    unsigned queued = queued_local;
    while (queued < tickets &&
           overflow_tail - overflow_head < kOverflowCap) {
        overflow[overflow_tail % kOverflowCap] = &job;
        ++overflow_tail;
        overflow_count.fetch_add(1, std::memory_order_release);
        stat_overflow.fetch_add(1, std::memory_order_relaxed);
        ++queued;
    }
    // Both rings full: run with fewer helpers. Correctness is the
    // caller's cursor drain, help is best-effort. (Safe to touch
    // the Job here: the submitter is this thread, and it has not
    // begun waiting yet.)
    if (queued < tickets)
        job.pending.fetch_sub(static_cast<int64_t>(tickets - queued),
                              std::memory_order_seq_cst);
    wakeLocked();
}

void
TaskPool::Impl::reclaimTickets(Job &job)
{
    if (job.complete())
        return;
    int64_t reclaimed = 0;
    if (t_worker && workers[t_worker->index] == t_worker) {
        // Our tickets are the newest entries of our own deque, so
        // pop until a foreign ticket (an older job's) surfaces —
        // push it straight back and stop: everything below it
        // predates ours.
        for (;;) {
            Job *got = t_worker->deque.pop();
            if (!got)
                break;
            if (got == &job) {
                ++reclaimed;
                continue;
            }
            if (!t_worker->deque.push(got)) {
                // Deque momentarily full (thief raced us): run the
                // foreign ticket here instead of losing it.
                runTicket(got);
            }
            break;
        }
    } else {
        std::lock_guard<std::mutex> lock(mu);
        for (size_t i = overflow_head; i != overflow_tail; ++i) {
            if (overflow[i % kOverflowCap] == &job) {
                overflow[i % kOverflowCap] = nullptr;
                overflow_count.fetch_sub(
                    1, std::memory_order_release);
                ++reclaimed;
            }
        }
    }
    // This thread is the job's submitter, so even a decrement to
    // zero needs no signal: the only waiter is itself.
    if (reclaimed)
        job.pending.fetch_sub(reclaimed, std::memory_order_seq_cst);
}

void
TaskPool::Impl::waitJob(Job &job)
{
    for (int s = 0; s < kWaitSpins; ++s) {
        if (job.complete())
            return;
        std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return job.complete(); });
}

// ---------------------------------------------------------- public API

TaskPool::TaskPool() : impl_(new Impl) {}

TaskPool &
TaskPool::instance()
{
    // Intentionally leaked: workers are detached process-lifetime
    // threads that park against this object, so it must outlive
    // every static destructor.
    static TaskPool *pool = new TaskPool;
    return *pool;
}

void
TaskPool::parallelFor(size_t n, FunctionRef<void(size_t)> fn,
                      unsigned threads)
{
    if (n == 0)
        return;
    unsigned workers =
        static_cast<unsigned>(std::min<size_t>(threads, n));
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    unsigned tickets = workers - 1;
    Job job(n, fn, tickets);
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->ensureWorkersLocked(tickets);
    }
    impl_->submitTickets(job, tickets);
    impl_->participate(job);
    impl_->reclaimTickets(job);
    impl_->waitJob(job);
    if (job.eptr)
        std::rethrow_exception(job.eptr);
}

TaskPool::WorkerLease::WorkerLease(TaskPool &pool, unsigned count,
                                   FunctionRef<void(unsigned)> body)
    : pool_(pool), body_(body), count_(count), remaining_(count)
{
    if (count == 0) {
        waited_ = true;
        return;
    }
    Impl &impl = *pool.impl_;
    unsigned queued = 0;
    {
        std::lock_guard<std::mutex> lock(impl.mu);
        size_t extra =
            (t_worker &&
             impl.workers[t_worker->index] == t_worker)
                ? 1   // the committed caller occupies a worker too
                : 0;
        impl.committed += count + extra;
        impl.ensureWorkersLocked(impl.committed);
        while (queued < count &&
               impl.lease_tail - impl.lease_head < kLeaseCap) {
            impl.leases[impl.lease_tail % kLeaseCap] =
                LeaseTask{this, queued};
            ++impl.lease_tail;
            impl.lease_count.fetch_add(1,
                                       std::memory_order_release);
            ++queued;
        }
        impl.wakeLocked();
    }
    // Lease lane full (pathological fan-out): fall back to direct
    // dedicated threads so the start guarantee still holds.
    for (unsigned i = queued; i < count; ++i) {
        impl.stat_spawned.fetch_add(1, std::memory_order_relaxed);
        std::thread([&impl, this, i] {
            impl.runLeaseBody(LeaseTask{this, i});
        }).detach();
    }
}

void
TaskPool::WorkerLease::wait()
{
    if (waited_)
        return;
    Impl &impl = *pool_.impl_;
    {
        // Pool-global completion channel (see Impl::done_mu): the
        // finishing worker's last access to this lease is its
        // remaining_ decrement, so this object is destructible the
        // moment the predicate holds.
        std::unique_lock<std::mutex> lock(impl.done_mu);
        impl.done_cv.wait(lock, [&] {
            return remaining_.load(std::memory_order_seq_cst) == 0;
        });
    }
    {
        std::lock_guard<std::mutex> lock(impl.mu);
        if (t_worker && impl.workers[t_worker->index] == t_worker)
            --impl.committed;  // release the caller's own slot
    }
    waited_ = true;
}

unsigned
TaskPool::size() const
{
    return impl_->nworkers.load(std::memory_order_acquire);
}

TaskPool::Stats
TaskPool::stats() const
{
    Stats s;
    s.threads_spawned =
        impl_->stat_spawned.load(std::memory_order_relaxed);
    s.tasks = impl_->stat_tasks.load(std::memory_order_relaxed);
    s.steals = impl_->stat_steals.load(std::memory_order_relaxed);
    s.overflow =
        impl_->stat_overflow.load(std::memory_order_relaxed);
    s.park_ns =
        impl_->stat_park_ns.load(std::memory_order_relaxed);
    return s;
}

}  // namespace util
}  // namespace snip
