/**
 * @file
 * Bounded lock-free single-producer/single-consumer ring buffer —
 * the stage-to-stage channel of the pipelined session runtime
 * (core::Pipeline). One thread pushes, one thread pops; capacity is
 * rounded up to a power of two so the index math is a mask, and the
 * head/tail cursors live on separate cache lines so the producer
 * and consumer never false-share.
 *
 * The SPSC contract is strict: tryPush() may only ever be called by
 * one thread at a time and tryPop() by one thread at a time (the
 * two may differ, and either side may migrate between threads as
 * long as the migration itself is synchronized — core::Pipeline
 * pins each stage to exactly one worker for the whole run, which
 * satisfies this by construction). Under that contract the acquire/
 * release pairing below makes every popped element's writes visible
 * to the consumer, and the buffer is wait-free on both sides.
 */

#ifndef SNIP_UTIL_RING_BUFFER_H
#define SNIP_UTIL_RING_BUFFER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace snip {
namespace util {

/** Round @p n up to the next power of two (min 1). */
constexpr size_t
ceilPow2(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

template <typename T>
class SpscRing
{
  public:
    /**
     * @param capacity Requested slot count; rounded up to a power
     *        of two, minimum 1. A capacity-1 ring is a valid (fully
     *        serializing) channel.
     */
    explicit SpscRing(size_t capacity)
        : slots_(ceilPow2(capacity < 1 ? 1 : capacity)),
          mask_(slots_.size() - 1)
    {
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Usable slot count (power of two). */
    size_t capacity() const { return slots_.size(); }

    /**
     * Producer: move @p v into the ring. Returns false (leaving
     * @p v untouched) when the ring is full.
     */
    bool
    tryPush(T &v)
    {
        uint64_t t = tail_.load(std::memory_order_relaxed);
        uint64_t h = head_.load(std::memory_order_acquire);
        if (t - h >= slots_.size())
            return false;
        slots_[t & mask_] = std::move(v);
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    /** Producer: whether a tryPush() now would fail. */
    bool
    full() const
    {
        return tail_.load(std::memory_order_relaxed) -
                   head_.load(std::memory_order_acquire) >=
               slots_.size();
    }

    /**
     * Consumer: move the oldest element into @p out. Returns false
     * when the ring is empty.
     */
    bool
    tryPop(T &out)
    {
        uint64_t h = head_.load(std::memory_order_relaxed);
        uint64_t t = tail_.load(std::memory_order_acquire);
        if (h == t)
            return false;
        out = std::move(slots_[h & mask_]);
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    /**
     * Snapshot of the current element count. Exact only when read
     * by the producer or consumer; other threads get a racy but
     * bounded estimate (monitoring only).
     */
    size_t
    sizeApprox() const
    {
        uint64_t t = tail_.load(std::memory_order_acquire);
        uint64_t h = head_.load(std::memory_order_acquire);
        return t >= h ? static_cast<size_t>(t - h) : 0;
    }

  private:
    std::vector<T> slots_;
    size_t mask_;
    /** Consumer cursor (next slot to pop). */
    alignas(64) std::atomic<uint64_t> head_{0};
    /** Producer cursor (next slot to fill). */
    alignas(64) std::atomic<uint64_t> tail_{0};
    /** Keep tail_ off whatever the next object shares a line with. */
    char pad_[64 - sizeof(std::atomic<uint64_t>)];
};

/**
 * An SpscRing plus the close protocol pipeline stages need: the
 * producer calls close() after its final push; the consumer treats
 * "empty and closed" as end-of-stream. close() uses release order
 * so everything pushed before it is visible to a consumer that
 * observes closed().
 */
template <typename T>
class StageQueue
{
  public:
    explicit StageQueue(size_t capacity) : ring_(capacity) {}

    SpscRing<T> &ring() { return ring_; }
    const SpscRing<T> &ring() const { return ring_; }

    void close() { closed_.store(true, std::memory_order_release); }
    bool closed() const
    {
        return closed_.load(std::memory_order_acquire);
    }

  private:
    SpscRing<T> ring_;
    std::atomic<bool> closed_{false};
};

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_RING_BUFFER_H
