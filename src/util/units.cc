#include "util/units.h"

#include <cstdio>

#include "util/logging.h"

namespace snip {
namespace util {

Energy
batteryCapacityJoules(double mah, double volts)
{
    if (mah <= 0.0 || volts <= 0.0)
        fatal("batteryCapacityJoules: non-positive capacity/voltage "
              "(%f mAh @ %f V)", mah, volts);
    // mAh -> C (A*s): mah * 3600 / 1000; times volts -> joules.
    return mah * 3.6 * volts;
}

double
hoursToDrain(Energy capacity_j, Power watts)
{
    if (watts <= 0.0)
        fatal("hoursToDrain: non-positive power %f W", watts);
    return capacity_j / watts / 3600.0;
}

std::string
formatEnergy(Energy joules)
{
    char buf[64];
    double a = joules < 0 ? -joules : joules;
    if (a >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.2f kJ", joules / 1e3);
    else if (a >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f J", joules);
    else if (a >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.2f mJ", joules * 1e3);
    else if (a >= 1e-6)
        std::snprintf(buf, sizeof(buf), "%.2f uJ", joules * 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.2f nJ", joules * 1e9);
    return std::string(buf);
}

std::string
formatPower(Power watts)
{
    char buf[64];
    double a = watts < 0 ? -watts : watts;
    if (a >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f W", watts);
    else
        std::snprintf(buf, sizeof(buf), "%.0f mW", watts * 1e3);
    return std::string(buf);
}

std::string
formatTime(Time seconds)
{
    char buf[64];
    double a = seconds < 0 ? -seconds : seconds;
    if (a >= 3600.0)
        std::snprintf(buf, sizeof(buf), "%.2f h", seconds / 3600.0);
    else if (a >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
    else if (a >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
    return std::string(buf);
}

}  // namespace util
}  // namespace snip
