#include "util/bytes.h"

#include <cstdio>

#include "util/logging.h"

namespace snip {
namespace util {

uint64_t
fnv1a(const void *data, size_t len, uint64_t seed)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

uint64_t
fnv1a(const std::string &s)
{
    return fnv1a(s.data(), s.size());
}

uint64_t
hashWords(const std::vector<uint64_t> &words)
{
    return fnv1a(words.data(), words.size() * sizeof(uint64_t));
}

std::string
toHex(const void *data, size_t len)
{
    static const char digits[] = "0123456789abcdef";
    const uint8_t *p = static_cast<const uint8_t *>(data);
    std::string out;
    out.reserve(len * 2);
    for (size_t i = 0; i < len; ++i) {
        out.push_back(digits[p[i] >> 4]);
        out.push_back(digits[p[i] & 0xf]);
    }
    return out;
}

std::string
formatSize(double bytes)
{
    static const char *suffixes[] = {"B", "kB", "MB", "GB", "TB"};
    int idx = 0;
    while (bytes >= 1024.0 && idx < 4) {
        bytes /= 1024.0;
        ++idx;
    }
    char buf[64];
    if (idx == 0)
        std::snprintf(buf, sizeof(buf), "%.0f %s", bytes, suffixes[idx]);
    else
        std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, suffixes[idx]);
    return std::string(buf);
}

void
ByteBuffer::putU8(uint8_t v)
{
    data_.push_back(v);
}

void
ByteBuffer::putU32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        data_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteBuffer::putU64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        data_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteBuffer::putString(const std::string &s)
{
    putU32(static_cast<uint32_t>(s.size()));
    data_.insert(data_.end(), s.begin(), s.end());
}

void
ByteBuffer::putBytes(const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    data_.insert(data_.end(), p, p + len);
}

void
ByteBuffer::need(size_t n) const
{
    if (cursor_ + n > data_.size())
        panic("ByteBuffer underrun: need %zu bytes, have %zu",
              n, data_.size() - cursor_);
}

uint8_t
ByteBuffer::getU8()
{
    need(1);
    return data_[cursor_++];
}

uint32_t
ByteBuffer::getU32()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(data_[cursor_++]) << (8 * i);
    return v;
}

uint64_t
ByteBuffer::getU64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(data_[cursor_++]) << (8 * i);
    return v;
}

std::string
ByteBuffer::getString()
{
    uint32_t len = getU32();
    need(len);
    std::string s(data_.begin() + static_cast<long>(cursor_),
                  data_.begin() + static_cast<long>(cursor_ + len));
    cursor_ += len;
    return s;
}

bool
ByteBuffer::tryGetU8(uint8_t *v)
{
    if (remaining() < 1)
        return false;
    *v = data_[cursor_++];
    return true;
}

bool
ByteBuffer::tryGetU32(uint32_t *v)
{
    if (remaining() < 4)
        return false;
    *v = getU32();
    return true;
}

bool
ByteBuffer::tryGetU64(uint64_t *v)
{
    if (remaining() < 8)
        return false;
    *v = getU64();
    return true;
}

bool
ByteBuffer::tryGetString(std::string *s)
{
    size_t start = cursor_;
    uint32_t len = 0;
    if (!tryGetU32(&len))
        return false;
    if (remaining() < len) {
        cursor_ = start;
        return false;
    }
    s->assign(data_.begin() + static_cast<long>(cursor_),
              data_.begin() + static_cast<long>(cursor_ + len));
    cursor_ += len;
    return true;
}

}  // namespace util
}  // namespace snip
