/**
 * @file
 * Non-owning callable reference, the `function_ref` idiom: two words
 * (object pointer + trampoline), no heap, no virtual dispatch. Used
 * by the parallel layer so that dispatching a loop body never
 * allocates — std::function heap-allocates for capturing lambdas
 * larger than its SBO, which put one malloc/free pair on every
 * parallelFor call site.
 *
 * Lifetime contract: a FunctionRef does NOT extend the life of the
 * callable it refers to. It is only safe to call while the referred
 * callable is alive — the intended use is as a by-value parameter
 * invoked during the call it was passed to (exactly how
 * util::parallelFor and TaskPool use it). Never store one beyond the
 * callee's return unless the caller guarantees the callable outlives
 * it (TaskPool::lease documents this for its worker bodies).
 */

#ifndef SNIP_UTIL_FUNCTION_REF_H
#define SNIP_UTIL_FUNCTION_REF_H

#include <memory>
#include <type_traits>
#include <utility>

namespace snip {
namespace util {

template <typename Signature>
class FunctionRef;  // undefined; only the partial specialization below

template <typename R, typename... Args>
class FunctionRef<R(Args...)>
{
  public:
    /** Bind to any callable invocable as R(Args...). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                  std::is_invocable_r_v<R, F &, Args...>>>
    FunctionRef(F &&f) noexcept  // NOLINT: implicit by design
        : obj_(const_cast<void *>(static_cast<const void *>(
              std::addressof(f)))),
          call_([](void *obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F> *>(
                  obj))(std::forward<Args>(args)...);
          })
    {
    }

    R
    operator()(Args... args) const
    {
        return call_(obj_, std::forward<Args>(args)...);
    }

  private:
    void *obj_;
    R (*call_)(void *, Args...);
};

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_FUNCTION_REF_H
