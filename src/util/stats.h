/**
 * @file
 * Lightweight statistics primitives used across the simulator:
 * running summaries, fixed-bin histograms, and empirical CDFs
 * (for the Fig. 7 input/output size characterization).
 */

#ifndef SNIP_UTIL_STATS_H
#define SNIP_UTIL_STATS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace snip {
namespace util {

/**
 * Running scalar summary: count / sum / mean / min / max / variance
 * via Welford's online algorithm.
 */
class Summary
{
  public:
    /** Add one sample. */
    void add(double x);
    /** Merge another summary into this one. */
    void merge(const Summary &other);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double min() const;
    double max() const;
    /** Sample variance (n-1 denominator); 0 when count < 2. */
    double variance() const;
    /** Sample standard deviation. */
    double stddev() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Empirical distribution: stores samples and answers quantile and
 * CDF queries. Used for size-spread characterization (Fig. 7).
 *
 * Thread safety: add() is single-writer and must not race with any
 * other call, but every const read (quantile/cdfAt/minValue/
 * maxValue/curve) is safe to issue concurrently from many threads on
 * a shared CDF — the first read sorts the samples exactly once under
 * an internal lock, later reads are lock-free.
 */
class EmpiricalCdf
{
  public:
    EmpiricalCdf() = default;
    EmpiricalCdf(const EmpiricalCdf &other);
    EmpiricalCdf &operator=(const EmpiricalCdf &other);

    /** Add a sample. Not safe concurrently with reads. */
    void add(double x);

    /** Number of samples. */
    size_t count() const { return samples_.size(); }

    /**
     * Quantile in [0, 1] via nearest-rank on the sorted samples.
     * Panics when empty.
     */
    double quantile(double q) const;

    /** Fraction of samples <= x. */
    double cdfAt(double x) const;

    /** Smallest and largest sample. Panics when empty. */
    double minValue() const;
    double maxValue() const;

    /**
     * Render the CDF as (value, cumulative fraction) points at the
     * given quantile steps, e.g. {0.1, 0.2, ..., 1.0}.
     */
    std::vector<std::pair<double, double>>
    curve(const std::vector<double> &quantiles) const;

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    /**
     * Double-checked sort latch: readers acquire-load it and only
     * the first one (under sort_mu_) pays for the sort. add()
     * clears it, which is why add() may not race with reads.
     */
    mutable std::atomic<bool> sorted_{false};
    mutable std::mutex sort_mu_;
};

/**
 * Histogram over logarithmic (power-of-two) size buckets, handy for
 * byte-size spreads spanning 2 B .. 1 MB.
 */
class Log2Histogram
{
  public:
    /**
     * Bucket key for samples below 1.0 (including negatives), kept
     * distinct from the [1, 2) bucket whose key is 1. NaN samples
     * are dropped entirely.
     */
    static constexpr uint64_t kUnderflowBucket = 0;

    /**
     * Add a sample. Values in [2^k, 2^(k+1)) land in the bucket
     * keyed 2^k; values < 1 land in kUnderflowBucket; NaN is
     * ignored.
     */
    void add(double x);

    /** Merge another histogram into this one. */
    void merge(const Log2Histogram &other);

    /** Total samples (NaN drops excluded). */
    uint64_t count() const { return total_; }

    /** Map from bucket lower bound (2^k, or 0) to sample count. */
    const std::map<uint64_t, uint64_t> &buckets() const { return bins_; }

  private:
    std::map<uint64_t, uint64_t> bins_;
    uint64_t total_ = 0;
};

/** Named counter registry for a simulation run. */
class CounterSet
{
  public:
    /** Increment a named counter. */
    void inc(const std::string &name, uint64_t by = 1);
    /** Read a counter (0 when absent). */
    uint64_t get(const std::string &name) const;
    /** All counters, sorted by name. */
    const std::map<std::string, uint64_t> &all() const { return counters_; }

  private:
    std::map<std::string, uint64_t> counters_;
};

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_STATS_H
