/**
 * @file
 * Physical units used by the energy model. Energy is carried in
 * joules (double), time in seconds (double), power in watts. The
 * helpers here keep conversions (mAh batteries, nJ/instruction,
 * hours of battery life) in one audited place.
 */

#ifndef SNIP_UTIL_UNITS_H
#define SNIP_UTIL_UNITS_H

#include <cstdint>
#include <string>

namespace snip {
namespace util {

/** Joules. */
using Energy = double;
/** Seconds. */
using Time = double;
/** Watts. */
using Power = double;

/** Nanojoules to joules. */
constexpr Energy
nanojoules(double nj)
{
    return nj * 1e-9;
}

/** Microjoules to joules. */
constexpr Energy
microjoules(double uj)
{
    return uj * 1e-6;
}

/** Millijoules to joules. */
constexpr Energy
millijoules(double mj)
{
    return mj * 1e-3;
}

/** Milliwatts to watts. */
constexpr Power
milliwatts(double mw)
{
    return mw * 1e-3;
}

/** Milliseconds to seconds. */
constexpr Time
milliseconds(double ms)
{
    return ms * 1e-3;
}

/** Hours to seconds. */
constexpr Time
hours(double h)
{
    return h * 3600.0;
}

/**
 * Battery capacity in joules for a given mAh rating at a nominal
 * cell voltage (Li-ion nominal 3.85 V for the Pixel XL pack).
 */
Energy batteryCapacityJoules(double mah, double volts = 3.85);

/** Hours to drain a capacity (J) at a constant power (W). */
double hoursToDrain(Energy capacity_j, Power watts);

/** Pretty-print an energy value ("12.3 mJ", "4.5 J", "1.2 kJ"). */
std::string formatEnergy(Energy joules);

/** Pretty-print a power value ("853 mW", "4.20 W"). */
std::string formatPower(Power watts);

/** Pretty-print a duration ("16.7 ms", "2.0 s", "3.4 h"). */
std::string formatTime(Time seconds);

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_UNITS_H
