#include "util/table_printer.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "util/logging.h"

namespace snip {
namespace util {

namespace {

/** Heuristic: a cell is numeric if it parses fully as a double
 *  (allowing a trailing '%' or unit suffix after a space). */
bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    size_t i = 0;
    if (s[0] == '-' || s[0] == '+')
        ++i;
    bool digit = false;
    for (; i < s.size(); ++i) {
        char c = s[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digit = true;
        } else if (c == '.' || c == ',') {
            continue;
        } else if (c == '%' || c == ' ') {
            break;
        } else {
            return false;
        }
    }
    return digit;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        panic("TablePrinter needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size())
        panic("TablePrinter row arity %zu != header arity %zu",
              row.size(), headers_.size());
    rows_.push_back(std::move(row));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            const std::string &cell = row[c];
            size_t pad = widths[c] - cell.size();
            os << (c == 0 ? "" : "  ");
            if (looksNumeric(cell)) {
                os << std::string(pad, ' ') << cell;
            } else {
                os << cell << std::string(pad, ' ');
            }
        }
        os << "\n";
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return std::string(buf);
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return std::string(buf);
}

}  // namespace util
}  // namespace snip
