/**
 * @file
 * Recoverable-error plumbing for data that crosses a transport
 * boundary (OTA model packages, uploaded traces, files on disk).
 * Unlike fatal()/panic() — which are for configuration errors and
 * internal bugs — a Status expresses "this *input* is bad": the
 * caller rejects it and keeps running (for SNIP that means falling
 * back to baseline full execution, since snipping is always
 * optional).
 */

#ifndef SNIP_UTIL_STATUS_H
#define SNIP_UTIL_STATUS_H

#include <string>
#include <utility>

namespace snip {
namespace util {

/** Success-or-error of a decode/I/O operation. Default is success. */
class Status
{
  public:
    Status() = default;

    /** Success. */
    static Status Ok() { return Status(); }

    /** Failure with a human-readable reason. */
    static Status Error(std::string message)
    {
        Status s;
        s.ok_ = false;
        s.message_ = std::move(message);
        return s;
    }

    /** Failure with a printf-formatted reason. */
    static Status Errorf(const char *fmt, ...)
        __attribute__((format(printf, 1, 2)));

    bool ok() const { return ok_; }
    /** Empty when ok(). */
    const std::string &message() const { return message_; }

  private:
    bool ok_ = true;
    std::string message_;
};

/**
 * A Status plus the decoded value when ok(). T must be default- and
 * move-constructible; value() is meaningful only when ok().
 */
template <typename T>
class Result
{
  public:
    /** Success. */
    Result(T value) : value_(std::move(value)) {}
    /** Failure (status must not be ok). */
    Result(Status status) : status_(std::move(status)) {}

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    T &value() { return value_; }
    const T &value() const { return value_; }

  private:
    Status status_;
    T value_{};
};

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_STATUS_H
