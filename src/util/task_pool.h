/**
 * @file
 * Persistent work-stealing task pool: one lazily-started,
 * process-lifetime set of worker threads shared by every parallel
 * phase in the library — Shrink training/PFI, fleet aggregation,
 * session fan-out, and the pipelined session runtime. Before this
 * existed, util::parallelFor spawned and joined fresh std::threads
 * on every call, and the callers invoke it *in loops* (PFI once per
 * refresh, fleet aggregation three times per round, the continuous
 * learner every epoch), so thread creation was a recurring per-epoch
 * tax. The pool pays it once.
 *
 * Structure (the SNIG/SparseDNN persistent-executor idiom):
 *
 *  - one Chase–Lev-style deque per worker: the owner pushes/pops at
 *    the bottom lock-free, thieves CAS the top (Le et al., "Correct
 *    and Efficient Work-Stealing for Weak Memory Models");
 *  - a shared mutex-protected overflow ring for submissions from
 *    threads that are not pool workers (every external parallelFor
 *    caller), and for deque spill;
 *  - a lease lane for callers that need *dedicated* workers running
 *    a long cooperative loop (core::Pipeline's stage workers):
 *    leased bodies are guaranteed to start — the pool spawns
 *    additional workers when every resident one is already
 *    committed — so a pipeline can never deadlock against a busy
 *    pool.
 *
 * Scheduling units are "participation tickets", not per-index tasks:
 * a parallel loop publishes one stack-resident Job carrying an
 * atomic index cursor and submits up to (workers - 1) tickets; every
 * ticket (and the calling thread, which always participates) drains
 * the same cursor. Which executor runs which index therefore varies
 * run to run exactly as it did with spawned threads — the
 * schedule-independence contract of util::parallelFor is unchanged.
 *
 * Nesting: a task running on a pool worker may submit a nested loop
 * and help-wait without deadlock. The waiter first drains the nested
 * cursor itself, then retires its own still-queued tickets (they are
 * the newest entries of its own deque, or reclaimable from the
 * overflow ring for external callers), and only then waits for
 * indices in flight on other workers — all of which terminate by
 * induction. Waiting never blocks the pool: tickets left in queues
 * are no-ops once the cursor is exhausted.
 *
 * Observability: stats() exposes monotonic totals —
 * threads_spawned / tasks / steals / overflow / park_ns — exported
 * as `pool.*` gauges by obs::exportTaskPoolStats. threads_spawned
 * equals the resident worker count in steady state; it growing with
 * epochs is the regression the `tools/ci.sh` pool stage guards
 * against.
 */

#ifndef SNIP_UTIL_TASK_POOL_H
#define SNIP_UTIL_TASK_POOL_H

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/function_ref.h"

namespace snip {
namespace util {

class TaskPool
{
  public:
    /** Monotonic lifetime totals (relaxed snapshots). */
    struct Stats {
        uint64_t threads_spawned = 0;  ///< Workers ever created.
        uint64_t tasks = 0;     ///< Tickets + lease bodies executed.
        uint64_t steals = 0;    ///< Successful cross-deque steals.
        uint64_t overflow = 0;  ///< Tickets routed via the shared ring.
        uint64_t park_ns = 0;   ///< Cumulative worker idle-park time.
    };

    /**
     * The process-wide pool. Never destroyed (workers are detached
     * and park forever at exit; the instance is reachable through a
     * static pointer, so leak checkers stay quiet).
     */
    static TaskPool &instance();

    /**
     * Run fn(i) for every i in [0, n) with at most @p threads
     * concurrent executors: the calling thread plus up to
     * threads - 1 pool workers. Grows the pool (once) toward
     * threads - 1 resident workers; never spawns on a warm path.
     * Returns after every index ran and every ticket retired.
     * The first exception thrown by fn is rethrown here, on the
     * calling thread, after the loop winds down.
     *
     * Safe to call from inside a task already running on a pool
     * worker (nested submission + help-wait, see file comment).
     */
    void parallelFor(size_t n, FunctionRef<void(size_t)> fn,
                     unsigned threads);

    /**
     * Dedicated-worker lease for long cooperative loops. Guaranteed
     * to start all @p count bodies even when every resident worker
     * is busy (the pool spawns what the guarantee needs, counted in
     * threads_spawned; leased workers return to the pool when the
     * body finishes). body(i) runs for every i in [0, count), each
     * on its own worker. The FunctionRef must stay valid until
     * wait() returns.
     */
    class WorkerLease
    {
      public:
        ~WorkerLease() { wait(); }

        WorkerLease(const WorkerLease &) = delete;
        WorkerLease &operator=(const WorkerLease &) = delete;

        /** Block until every leased body returned. Idempotent. */
        void wait();

      private:
        friend class TaskPool;
        WorkerLease(TaskPool &pool, unsigned count,
                    FunctionRef<void(unsigned)> body);

        TaskPool &pool_;
        FunctionRef<void(unsigned)> body_;
        unsigned count_;
        std::atomic<unsigned> remaining_;
        bool waited_ = false;
    };

    WorkerLease lease(unsigned count, FunctionRef<void(unsigned)> body)
    {
        return WorkerLease(*this, count, body);
    }

    /** Resident worker count (monotonic; 0 until first parallel use). */
    unsigned size() const;

    Stats stats() const;

  private:
    TaskPool();
    ~TaskPool() = delete;  // process-lifetime by design

    struct Impl;
    Impl *impl_;
};

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_TASK_POOL_H
