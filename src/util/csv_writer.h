/**
 * @file
 * Minimal CSV writer so benchmark harnesses can optionally dump the
 * exact series behind each reproduced figure for external plotting.
 */

#ifndef SNIP_UTIL_CSV_WRITER_H
#define SNIP_UTIL_CSV_WRITER_H

#include <ostream>
#include <string>
#include <vector>

namespace snip {
namespace util {

/**
 * Streams rows of cells in RFC-4180-ish CSV (quotes cells that
 * contain commas, quotes, or newlines).
 */
class CsvWriter
{
  public:
    /** Bind to an output stream; writes the header immediately. */
    CsvWriter(std::ostream &os, const std::vector<std::string> &header);

    /** Write one data row; must match the header arity. */
    void row(const std::vector<std::string> &cells);

    /** Number of data rows written so far. */
    size_t rowsWritten() const { return rows_; }

  private:
    void writeRow(const std::vector<std::string> &cells);
    static std::string escape(const std::string &cell);

    std::ostream &os_;
    size_t arity_;
    size_t rows_ = 0;
};

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_CSV_WRITER_H
