#include "util/logging.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include <unistd.h>

namespace snip {
namespace util {

namespace {

LogLevel g_level = LogLevel::Inform;
bool g_throw_on_error = false;

/** Format a va_list into a std::string. */
std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data());
}

/**
 * Write one complete log line to stderr with a single write(2).
 * stderr is unbuffered, so a multi-argument fprintf can reach the
 * fd in several chunks and interleave with lines from other threads
 * (the SNIP audit watchdog warns from whatever thread runs the
 * session); one syscall per line keeps every line intact.
 */
void
emitLine(std::string line)
{
    line.push_back('\n');
    size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::write(STDERR_FILENO, line.data() + off,
                            line.size() - off);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return;
        }
        off += static_cast<size_t>(n);
    }
}

void
emit(const char *prefix, const char *fmt, va_list args)
{
    std::string line(prefix);
    line += ": ";
    line += vformat(fmt, args);
    emitLine(std::move(line));
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Inform)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    emit("debug", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    if (g_throw_on_error)
        throw std::runtime_error("fatal: " + msg);
    emitLine("fatal: " + msg);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    if (g_throw_on_error)
        throw std::runtime_error("panic: " + msg);
    emitLine("panic: " + msg);
    std::abort();
}

bool
setThrowOnError(bool enable)
{
    bool prev = g_throw_on_error;
    g_throw_on_error = enable;
    return prev;
}

}  // namespace util
}  // namespace snip
