#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace snip {
namespace util {

namespace {

LogLevel g_level = LogLevel::Inform;
bool g_throw_on_error = false;

/** Format a va_list into a std::string. */
std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data());
}

void
emit(const char *prefix, const char *fmt, va_list args)
{
    std::string msg = vformat(fmt, args);
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Inform)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    emit("debug", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    if (g_throw_on_error)
        throw std::runtime_error("fatal: " + msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    if (g_throw_on_error)
        throw std::runtime_error("panic: " + msg);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

bool
setThrowOnError(bool enable)
{
    bool prev = g_throw_on_error;
    g_throw_on_error = enable;
    return prev;
}

}  // namespace util
}  // namespace snip
