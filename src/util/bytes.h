/**
 * @file
 * Byte-level helpers: a growable byte buffer with primitive
 * serialization, hex formatting, and the FNV-1a hash used to key
 * memoization tables.
 */

#ifndef SNIP_UTIL_BYTES_H
#define SNIP_UTIL_BYTES_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace snip {
namespace util {

/** 64-bit FNV-1a over a raw byte range. */
uint64_t fnv1a(const void *data, size_t len,
               uint64_t seed = 0xcbf29ce484222325ULL);

/** 64-bit FNV-1a over a string. */
uint64_t fnv1a(const std::string &s);

/** Hash a vector of 64-bit words (order-sensitive). */
uint64_t hashWords(const std::vector<uint64_t> &words);

/** Format bytes as lowercase hex. */
std::string toHex(const void *data, size_t len);

/** Human-readable size string, e.g. "1.5 GB", "640 B". */
std::string formatSize(double bytes);

/**
 * Append-only byte buffer with little-endian primitive writers and a
 * cursor-based reader, used by the trace log serialization.
 */
class ByteBuffer
{
  public:
    ByteBuffer() = default;

    /** Append a single byte. */
    void putU8(uint8_t v);
    /** Append a 32-bit little-endian value. */
    void putU32(uint32_t v);
    /** Append a 64-bit little-endian value. */
    void putU64(uint64_t v);
    /** Append a length-prefixed string. */
    void putString(const std::string &s);
    /** Append a raw byte range (no length prefix). */
    void putBytes(const void *data, size_t len);

    /** Read back (cursor-based); panics on underrun. */
    uint8_t getU8();
    uint32_t getU32();
    uint64_t getU64();
    std::string getString();

    /**
     * Non-panicking reads for untrusted input (OTA payloads, files):
     * on underrun they return false and leave the cursor unchanged.
     */
    bool tryGetU8(uint8_t *v);
    bool tryGetU32(uint32_t *v);
    bool tryGetU64(uint64_t *v);
    bool tryGetString(std::string *s);

    /** Advance the read cursor past @p n bytes without copying;
     *  false (cursor unchanged) on underrun. */
    bool trySkip(size_t n)
    {
        if (n > remaining())
            return false;
        cursor_ += n;
        return true;
    }

    /** Reset the read cursor to the beginning. */
    void rewind() { cursor_ = 0; }

    /** Current read-cursor position. */
    size_t cursor() const { return cursor_; }

    /** Number of bytes stored. */
    size_t size() const { return data_.size(); }
    /** Bytes remaining after the read cursor. */
    size_t remaining() const { return data_.size() - cursor_; }
    /** Raw storage access. */
    const std::vector<uint8_t> &data() const { return data_; }

    /** Hash of the whole contents. */
    uint64_t hash() const { return fnv1a(data_.data(), data_.size()); }

  private:
    void need(size_t n) const;

    std::vector<uint8_t> data_;
    size_t cursor_ = 0;
};

/**
 * Failure-latching reader over a ByteBuffer for decoding untrusted
 * input. Reads return zero values after the first underrun and ok()
 * turns false; decoders check ok() before trusting a value that
 * controls allocation or iteration, then once more at the end.
 */
class ByteReader
{
  public:
    explicit ByteReader(ByteBuffer &buf) : buf_(buf) {}

    uint8_t u8()
    {
        uint8_t v = 0;
        ok_ = ok_ && buf_.tryGetU8(&v);
        return v;
    }
    uint32_t u32()
    {
        uint32_t v = 0;
        ok_ = ok_ && buf_.tryGetU32(&v);
        return v;
    }
    uint64_t u64()
    {
        uint64_t v = 0;
        ok_ = ok_ && buf_.tryGetU64(&v);
        return v;
    }
    std::string str()
    {
        std::string s;
        ok_ = ok_ && buf_.tryGetString(&s);
        return s;
    }
    /** Skip @p n bytes (latching, like a read). */
    void skip(size_t n) { ok_ = ok_ && buf_.trySkip(n); }

    /**
     * Sanity-bound a decoded element count before reserving memory
     * for it: true iff @p count elements of at least
     * @p min_bytes_each could still fit in the remaining bytes.
     * Latches the failure like a read would.
     */
    bool fits(uint64_t count, uint64_t min_bytes_each)
    {
        if (ok_ && min_bytes_each > 0 &&
            count > buf_.remaining() / min_bytes_each)
            ok_ = false;
        return ok_;
    }

    /** No read so far has underrun (and every fits() held). */
    bool ok() const { return ok_; }

  private:
    ByteBuffer &buf_;
    bool ok_ = true;
};

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_BYTES_H
