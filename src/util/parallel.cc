#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace snip {
namespace util {

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("SNIP_THREADS")) {
        long n = std::strtol(env, nullptr, 0);
        if (n >= 1)
            return static_cast<unsigned>(n);
        warn("ignoring SNIP_THREADS='%s' (need an integer >= 1)", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
parallelFor(size_t n, const std::function<void(size_t)> &fn,
            unsigned threads)
{
    if (n == 0)
        return;
    if (threads == 0)
        threads = defaultThreadCount();
    unsigned workers =
        static_cast<unsigned>(std::min<size_t>(threads, n));
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Work-stealing-free dynamic dispatch: a shared atomic cursor.
    // Which worker runs which index varies run to run, but every
    // index runs exactly once and writes only its own slot, so the
    // aggregate result is schedule-independent.
    std::atomic<size_t> next{0};
    auto body = [&] {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(body);
    body();  // the calling thread is worker 0
    for (auto &t : pool)
        t.join();
}

}  // namespace util
}  // namespace snip
