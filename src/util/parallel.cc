#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "util/logging.h"
#include "util/task_pool.h"

namespace snip {
namespace util {

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("SNIP_THREADS")) {
        char *end = nullptr;
        long n = std::strtol(env, &end, 0);
        if (end != env && *end == '\0' && n >= 1)
            return static_cast<unsigned>(n);
        warn("ignoring SNIP_THREADS='%s' (need an integer >= 1)", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
parallelFor(size_t n, FunctionRef<void(size_t)> fn, unsigned threads)
{
    if (n == 0)
        return;
    if (threads == 0)
        threads = defaultThreadCount();
    unsigned workers =
        static_cast<unsigned>(std::min<size_t>(threads, n));
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    TaskPool::instance().parallelFor(n, fn, workers);
}

}  // namespace util
}  // namespace snip
