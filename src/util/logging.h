/**
 * @file
 * Simulation status and error reporting, modeled after gem5's
 * logging discipline: inform()/warn() for status, fatal() for user
 * errors (bad configuration), panic() for internal invariant
 * violations (bugs in this library).
 */

#ifndef SNIP_UTIL_LOGGING_H
#define SNIP_UTIL_LOGGING_H

#include <cstdarg>
#include <string>

namespace snip {
namespace util {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Silent = 0,  ///< Only fatal/panic output.
    Warn = 1,    ///< warn() and above.
    Inform = 2,  ///< inform() and above (default).
    Debug = 3,   ///< debugLog() and above.
};

/** Set the global log level. Thread-compatible (set before spawning). */
void setLogLevel(LogLevel level);

/** Get the current global log level. */
LogLevel logLevel();

/**
 * Print an informational status message (printf-style) to stderr.
 * Never terminates the process.
 */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Print a warning about suspicious-but-tolerable conditions
 * (printf-style) to stderr. Never terminates the process.
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message, shown only at LogLevel::Debug. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable *user* error (bad configuration, invalid
 * arguments) and terminate with exit code 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (a bug in this library) and
 * abort(), allowing a core dump / debugger entry.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Install a handler that throws std::runtime_error instead of
 * terminating, for use in death-avoidant unit tests. Returns the
 * previous setting.
 */
bool setThrowOnError(bool enable);

}  // namespace util
}  // namespace snip

#endif  // SNIP_UTIL_LOGGING_H
