#include "events/event.h"

namespace snip {
namespace events {

const char *
eventTypeName(EventType t)
{
    switch (t) {
      case EventType::Touch: return "touch";
      case EventType::Swipe: return "swipe";
      case EventType::Drag: return "drag";
      case EventType::MultiTouch: return "multi_touch";
      case EventType::Gyro: return "gyro";
      case EventType::CameraFrame: return "camera_frame";
      case EventType::Gps: return "gps";
      case EventType::NumTypes: break;
    }
    return "?";
}

uint32_t
eventObjectBytes(EventType t)
{
    // In.Event objects span 2..640 B with a fixed size per type
    // (paper Fig. 7a). Values mirror Android event packing: a bare
    // key/button event is tiny, MotionEvent batches grow with
    // pointer history, camera-frame metadata is the largest.
    switch (t) {
      case EventType::Touch: return 24;
      case EventType::Swipe: return 96;
      case EventType::Drag: return 160;
      case EventType::MultiTouch: return 320;
      case EventType::Gyro: return 48;
      case EventType::CameraFrame: return 640;
      case EventType::Gps: return 32;
      case EventType::NumTypes: break;
    }
    return 2;
}

uint32_t
rawSamplesPerEvent(EventType t)
{
    switch (t) {
      case EventType::Touch: return 4;
      case EventType::Swipe: return 24;
      case EventType::Drag: return 48;
      case EventType::MultiTouch: return 40;
      case EventType::Gyro: return 8;
      case EventType::CameraFrame: return 1;
      case EventType::Gps: return 2;
      case EventType::NumTypes: break;
    }
    return 1;
}

}  // namespace events
}  // namespace snip
