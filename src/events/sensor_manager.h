/**
 * @file
 * The OS sensor framework: turns raw sensor samples into high-level
 * events (Android's SensorManager role) and charges the SoC for the
 * plumbing — sensor-hub sampling energy plus efficiency-core cycles
 * for sample filtering and event assembly. This cost is paid for
 * *every* event, short-circuited or not; SNIP only removes handler
 * processing downstream of delivery.
 */

#ifndef SNIP_EVENTS_SENSOR_MANAGER_H
#define SNIP_EVENTS_SENSOR_MANAGER_H

#include <cstdint>

#include "events/event.h"
#include "soc/soc.h"

namespace snip {
namespace events {

/** Framework plumbing cost constants. */
struct FrameworkCosts {
    /** Efficiency-core instructions to filter one raw sample. */
    uint64_t instr_per_raw_sample = 900;
    /** Efficiency-core instructions to assemble one event object. */
    uint64_t instr_per_event = 14000;
    /** Memory bytes touched per raw sample (hub FIFO drain). */
    uint64_t bytes_per_raw_sample = 16;
};

/**
 * SensorManager: accounts the sensor-to-event path on the SoC and
 * counts delivered events.
 */
class SensorManager
{
  public:
    /**
     * @param soc SoC to charge.
     * @param costs Plumbing cost constants.
     */
    SensorManager(soc::Soc &soc, const FrameworkCosts &costs = {});

    /**
     * Deliver one event: charge raw sampling (or a camera capture),
     * filtering, and event assembly.
     */
    void deliver(const EventObject &ev);

    /** Events delivered so far. */
    uint64_t eventsDelivered() const { return delivered_; }

  private:
    soc::Soc &soc_;
    FrameworkCosts costs_;
    uint64_t delivered_ = 0;
};

}  // namespace events
}  // namespace snip

#endif  // SNIP_EVENTS_SENSOR_MANAGER_H
