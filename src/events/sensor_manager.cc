#include "events/sensor_manager.h"

namespace snip {
namespace events {

SensorManager::SensorManager(soc::Soc &soc, const FrameworkCosts &costs)
    : soc_(soc), costs_(costs)
{
}

void
SensorManager::deliver(const EventObject &ev)
{
    uint64_t raw = rawSamplesPerEvent(ev.type);
    if (ev.type == EventType::CameraFrame)
        soc_.captureCameraFrame();
    else
        soc_.sampleSensors(raw);
    soc_.executeCpu(costs_.instr_per_raw_sample * raw +
                        costs_.instr_per_event,
                    soc::CpuCluster::Little);
    soc_.accessMemory(costs_.bytes_per_raw_sample * raw);
    ++delivered_;
}

}  // namespace events
}  // namespace snip
