#include "events/binder.h"

namespace snip {
namespace events {

BinderChannel::BinderChannel(soc::Soc &soc, const BinderCosts &costs)
    : soc_(soc), costs_(costs)
{
}

void
BinderChannel::transfer(const EventObject &ev)
{
    uint32_t bytes = ev.sizeBytes();
    soc_.executeCpu(costs_.instr_per_txn, soc::CpuCluster::Little);
    soc_.accessMemory(static_cast<uint64_t>(bytes) * costs_.copies);
    ++txns_;
    payloadBytes_ += bytes;
    if (tap_)
        tap_(ev);
}

}  // namespace events
}  // namespace snip
