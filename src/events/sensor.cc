#include "events/sensor.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace snip {
namespace events {

const char *
sensorKindName(SensorKind k)
{
    switch (k) {
      case SensorKind::Touchscreen: return "touchscreen";
      case SensorKind::Gyroscope: return "gyroscope";
      case SensorKind::Accelerometer: return "accelerometer";
      case SensorKind::Camera: return "camera";
      case SensorKind::Gps: return "gps";
      case SensorKind::NumKinds: break;
    }
    return "?";
}

SensorKind
sensorForEvent(EventType t)
{
    switch (t) {
      case EventType::Touch:
      case EventType::Swipe:
      case EventType::Drag:
      case EventType::MultiTouch:
        return SensorKind::Touchscreen;
      case EventType::Gyro:
        return SensorKind::Gyroscope;
      case EventType::CameraFrame:
        return SensorKind::Camera;
      case EventType::Gps:
        return SensorKind::Gps;
      case EventType::NumTypes:
        break;
    }
    return SensorKind::Touchscreen;
}

Sensor::Sensor(SensorKind kind, double rate_hz, int resolution_bits)
    : kind_(kind), rateHz_(rate_hz), resolutionBits_(resolution_bits)
{
    if (rate_hz <= 0)
        util::fatal("Sensor %s: non-positive rate %f",
                    sensorKindName(kind), rate_hz);
    if (resolution_bits < 1 || resolution_bits > 32)
        util::fatal("Sensor %s: bad resolution %d bits",
                    sensorKindName(kind), resolution_bits);
}

int
Sensor::effectiveBits() const
{
    return lowFidelity_ ? std::max(1, resolutionBits_ / 2)
                        : resolutionBits_;
}

uint64_t
Sensor::quantize(double reading, double lo, double hi) const
{
    if (hi <= lo)
        util::panic("Sensor::quantize: bad range [%f, %f]", lo, hi);
    double x = std::clamp(reading, lo, hi);
    double norm = (x - lo) / (hi - lo);
    uint64_t levels = (1ULL << effectiveBits()) - 1;
    return static_cast<uint64_t>(std::llround(norm *
                                              static_cast<double>(levels)));
}

}  // namespace events
}  // namespace snip
