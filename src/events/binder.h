/**
 * @file
 * Binder-like IPC channel between the sensor framework runtime and
 * the game process (paper §II-A: events reach the game "through
 * shared memory between the sensor hub's runtime and the game
 * workload execution ... accomplished using the Binder framework").
 * Charges a marshal/unmarshal copy plus kernel-crossing cycles per
 * transaction, and can log every transaction to a tap — the hook the
 * paper proposes for recording event data ("future android versions
 * can instrument the Binder instances ... to dump all the events").
 */

#ifndef SNIP_EVENTS_BINDER_H
#define SNIP_EVENTS_BINDER_H

#include <cstdint>
#include <functional>

#include "events/event.h"
#include "soc/soc.h"

namespace snip {
namespace events {

/** Binder transaction cost constants. */
struct BinderCosts {
    /** Efficiency-core instructions per transaction (syscall path). */
    uint64_t instr_per_txn = 9000;
    /** Copies of the event object per transaction (in + out). */
    uint32_t copies = 2;
};

/**
 * One-way event channel: framework -> app. Counts transactions and
 * bytes, charges the SoC, and invokes an optional tap for tracing.
 */
class BinderChannel
{
  public:
    /** Tap invoked for every transferred event (may be empty). */
    using Tap = std::function<void(const EventObject &)>;

    /**
     * @param soc SoC to charge.
     * @param costs Transaction cost constants.
     */
    BinderChannel(soc::Soc &soc, const BinderCosts &costs = {});

    /** Install (or clear) the trace tap. */
    void setTap(Tap tap) { tap_ = std::move(tap); }

    /** Transfer one event object across the channel. */
    void transfer(const EventObject &ev);

    /** Transactions completed. */
    uint64_t transactions() const { return txns_; }
    /** Payload bytes moved (before copy multiplication). */
    uint64_t payloadBytes() const { return payloadBytes_; }

  private:
    soc::Soc &soc_;
    BinderCosts costs_;
    Tap tap_;
    uint64_t txns_ = 0;
    uint64_t payloadBytes_ = 0;
};

}  // namespace events
}  // namespace snip

#endif  // SNIP_EVENTS_BINDER_H
