/**
 * @file
 * Input/output field model. Every datum an event-handler execution
 * consumes or produces is a *field*: a named, categorized, sized
 * location. The paper's entire argument is about which fields must
 * be tracked (In.Event / In.History / In.Extern on the input side,
 * Out.Temp / Out.History / Out.Extern on the output side), so fields
 * are the common currency of the trace, ML, and memoization layers.
 *
 * Field values are carried as 64-bit scalars (semantic fields hold
 * their quantity; bulk payload fields hold a content hash). The
 * declared size_bytes is what lookup-table sizing accounts, matching
 * the paper's byte-level table-size analysis.
 */

#ifndef SNIP_EVENTS_FIELD_H
#define SNIP_EVENTS_FIELD_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace snip {
namespace events {

/** Identifier of a field location within one game's schema. */
using FieldId = uint32_t;

/** Sentinel for "no such field". */
constexpr FieldId kInvalidField = ~0u;

/** Input categories (paper §IV-A). */
enum class InputCategory : uint8_t {
    Event = 0,   ///< In.Event: the event object itself.
    History,     ///< In.History: previous execution outputs.
    Extern,      ///< In.Extern: network/cloud/file data.
};

/** Output categories (paper §IV-B). */
enum class OutputCategory : uint8_t {
    Temp = 0,    ///< Out.Temp: ephemeral user-visible effects.
    History,     ///< Out.History: consumed by future executions.
    Extern,      ///< Out.Extern: leaves the device.
};

/** Display name of an input category. */
const char *inputCategoryName(InputCategory c);
/** Display name of an output category. */
const char *outputCategoryName(OutputCategory c);

/** Side of a field: input or output. */
enum class FieldSide : uint8_t { Input, Output };

/** Static description of one field location. */
struct FieldDef {
    FieldId id = kInvalidField;
    std::string name;
    FieldSide side = FieldSide::Input;
    /** Valid when side == Input. */
    InputCategory in_cat = InputCategory::Event;
    /** Valid when side == Output. */
    OutputCategory out_cat = OutputCategory::Temp;
    /** Size of the location in bytes (for table sizing). */
    uint32_t size_bytes = 0;
};

/** One observed (field, value) pair. */
struct FieldValue {
    FieldId id = kInvalidField;
    uint64_t value = 0;

    bool operator==(const FieldValue &o) const
    {
        return id == o.id && value == o.value;
    }
};

/**
 * A game's field universe: the union of all input/output locations
 * its handlers ever touch (what the naive lookup table must store a
 * column for).
 */
class FieldSchema
{
  public:
    /** Register an input field; returns its id. Names are unique. */
    FieldId addInput(const std::string &name, InputCategory cat,
                     uint32_t size_bytes);

    /** Register an output field; returns its id. */
    FieldId addOutput(const std::string &name, OutputCategory cat,
                      uint32_t size_bytes);

    /** Look up a definition; panics on unknown id. */
    const FieldDef &def(FieldId id) const;

    /** Find a field id by name; kInvalidField when absent. */
    FieldId find(const std::string &name) const;

    /** Number of registered fields. */
    size_t size() const { return defs_.size(); }

    /** All definitions in registration order. */
    const std::vector<FieldDef> &defs() const { return defs_; }

    /** Sum of sizes of the given fields (bytes). */
    uint64_t bytesOf(const std::vector<FieldValue> &values) const;

    /** Sum of sizes of all registered *input* fields (bytes). */
    uint64_t totalInputBytes() const;

    /** Sum of sizes of all registered *output* fields (bytes). */
    uint64_t totalOutputBytes() const;

  private:
    FieldId add(FieldDef def);

    std::vector<FieldDef> defs_;
    std::unordered_map<std::string, FieldId> byName_;
};

/** Sort a field-value vector by id (canonical record order). */
void canonicalize(std::vector<FieldValue> &values);

/** Find a value by field id; returns nullptr when absent. */
const FieldValue *findField(const std::vector<FieldValue> &values,
                            FieldId id);

/** Order-insensitive hash of a field-value set. */
uint64_t hashFields(const std::vector<FieldValue> &values);

}  // namespace events
}  // namespace snip

#endif  // SNIP_EVENTS_FIELD_H
