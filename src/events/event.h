/**
 * @file
 * High-level input events as delivered to game event handlers:
 * the Android-like event types the paper's games consume, and the
 * EventObject (the In.Event record) with its fixed per-type size.
 */

#ifndef SNIP_EVENTS_EVENT_H
#define SNIP_EVENTS_EVENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "events/field.h"

namespace snip {
namespace events {

/** High-level event types produced by the sensor framework. */
enum class EventType : uint8_t {
    Touch = 0,    ///< Single tap (MotionEvent ACTION_DOWN/UP).
    Swipe,        ///< Directional swipe (MotionEvent series).
    Drag,         ///< Sustained drag (catapult stretch, steering).
    MultiTouch,   ///< Multi-pointer gesture (pinch, two-finger).
    Gyro,         ///< Rotation/tilt sample batch.
    CameraFrame,  ///< One processed camera frame (AR games).
    Gps,          ///< Position fix.
    NumTypes,
};

/** Number of event types. */
constexpr int kNumEventTypes = static_cast<int>(EventType::NumTypes);

/** Display name of an event type. */
const char *eventTypeName(EventType t);

/**
 * Fixed In.Event object size per type, in bytes. The paper reports
 * In.Event objects of 2..640 bytes with a fixed size per type
 * (§IV-A); these mirror Android's MotionEvent/SensorEvent packing.
 */
uint32_t eventObjectBytes(EventType t);

/**
 * Raw sensor samples consumed by the hub to synthesize one event of
 * this type (a swipe is a series of touch samples, etc.).
 */
uint32_t rawSamplesPerEvent(EventType t);

/**
 * A high-level event as handed to a game's event handler: the
 * In.Event record. Field values are game-schema fields of category
 * InputCategory::Event.
 */
struct EventObject {
    EventType type = EventType::Touch;
    /** Monotonic sequence number within a session. */
    uint64_t seq = 0;
    /** Delivery timestamp (simulated seconds). */
    double timestamp = 0.0;
    /** In.Event field values (canonical id order). */
    std::vector<FieldValue> fields;

    /** Object size in bytes (fixed per type). */
    uint32_t sizeBytes() const { return eventObjectBytes(type); }
};

}  // namespace events
}  // namespace snip

#endif  // SNIP_EVENTS_EVENT_H
