/**
 * @file
 * Physical sensor models. Each Sensor produces raw sample batches
 * for the sensor hub; the hub turns them into high-level events.
 * A sensor's fidelity mode trades sampling energy for value
 * resolution (the low-fidelity opportunity the paper discusses and
 * rejects as insufficient in §II-C).
 */

#ifndef SNIP_EVENTS_SENSOR_H
#define SNIP_EVENTS_SENSOR_H

#include <cstdint>
#include <string>

#include "events/event.h"
#include "util/rng.h"

namespace snip {
namespace events {

/** Kinds of physical sensors feeding the hub. */
enum class SensorKind : uint8_t {
    Touchscreen = 0,
    Gyroscope,
    Accelerometer,
    Camera,
    Gps,
    NumKinds,
};

/** Display name of a sensor kind. */
const char *sensorKindName(SensorKind k);

/** Which physical sensor sources a given high-level event type. */
SensorKind sensorForEvent(EventType t);

/**
 * A physical sensor: sampling rate, value resolution, and fidelity
 * mode. Games' user models draw raw values through sensors so that
 * quantization behaviour is centralized.
 */
class Sensor
{
  public:
    /**
     * @param kind Sensor kind.
     * @param rate_hz Native sampling rate.
     * @param resolution_bits ADC resolution (full-fidelity).
     */
    Sensor(SensorKind kind, double rate_hz, int resolution_bits);

    SensorKind kind() const { return kind_; }
    double rateHz() const { return rateHz_; }
    int resolutionBits() const { return resolutionBits_; }

    /**
     * Low-fidelity mode halves the effective resolution (and would
     * save sensor energy on real hardware).
     */
    void setLowFidelity(bool low) { lowFidelity_ = low; }
    bool lowFidelity() const { return lowFidelity_; }

    /**
     * Quantize a raw physical reading in [lo, hi] to this sensor's
     * current resolution, returning an integer code.
     */
    uint64_t quantize(double reading, double lo, double hi) const;

    /** Effective resolution in bits given the fidelity mode. */
    int effectiveBits() const;

  private:
    SensorKind kind_;
    double rateHz_;
    int resolutionBits_;
    bool lowFidelity_ = false;
};

}  // namespace events
}  // namespace snip

#endif  // SNIP_EVENTS_SENSOR_H
