#include "events/field.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace snip {
namespace events {

const char *
inputCategoryName(InputCategory c)
{
    switch (c) {
      case InputCategory::Event: return "In.Event";
      case InputCategory::History: return "In.History";
      case InputCategory::Extern: return "In.Extern";
    }
    return "?";
}

const char *
outputCategoryName(OutputCategory c)
{
    switch (c) {
      case OutputCategory::Temp: return "Out.Temp";
      case OutputCategory::History: return "Out.History";
      case OutputCategory::Extern: return "Out.Extern";
    }
    return "?";
}

FieldId
FieldSchema::add(FieldDef def)
{
    if (def.name.empty())
        util::fatal("FieldSchema: empty field name");
    if (def.size_bytes == 0)
        util::fatal("FieldSchema: field %s has zero size", def.name.c_str());
    if (byName_.count(def.name))
        util::fatal("FieldSchema: duplicate field name %s",
                    def.name.c_str());
    def.id = static_cast<FieldId>(defs_.size());
    byName_[def.name] = def.id;
    defs_.push_back(std::move(def));
    return defs_.back().id;
}

FieldId
FieldSchema::addInput(const std::string &name, InputCategory cat,
                      uint32_t size_bytes)
{
    FieldDef d;
    d.name = name;
    d.side = FieldSide::Input;
    d.in_cat = cat;
    d.size_bytes = size_bytes;
    return add(std::move(d));
}

FieldId
FieldSchema::addOutput(const std::string &name, OutputCategory cat,
                       uint32_t size_bytes)
{
    FieldDef d;
    d.name = name;
    d.side = FieldSide::Output;
    d.out_cat = cat;
    d.size_bytes = size_bytes;
    return add(std::move(d));
}

const FieldDef &
FieldSchema::def(FieldId id) const
{
    if (id >= defs_.size())
        util::panic("FieldSchema: unknown field id %u", id);
    return defs_[id];
}

FieldId
FieldSchema::find(const std::string &name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? kInvalidField : it->second;
}

uint64_t
FieldSchema::bytesOf(const std::vector<FieldValue> &values) const
{
    uint64_t total = 0;
    for (const auto &v : values)
        total += def(v.id).size_bytes;
    return total;
}

uint64_t
FieldSchema::totalInputBytes() const
{
    uint64_t total = 0;
    for (const auto &d : defs_)
        if (d.side == FieldSide::Input)
            total += d.size_bytes;
    return total;
}

uint64_t
FieldSchema::totalOutputBytes() const
{
    uint64_t total = 0;
    for (const auto &d : defs_)
        if (d.side == FieldSide::Output)
            total += d.size_bytes;
    return total;
}

void
canonicalize(std::vector<FieldValue> &values)
{
    std::sort(values.begin(), values.end(),
              [](const FieldValue &a, const FieldValue &b) {
                  return a.id < b.id;
              });
}

const FieldValue *
findField(const std::vector<FieldValue> &values, FieldId id)
{
    for (const auto &v : values)
        if (v.id == id)
            return &v;
    return nullptr;
}

uint64_t
hashFields(const std::vector<FieldValue> &values)
{
    // Order-insensitive: XOR of per-pair mixed hashes.
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const auto &v : values)
        h ^= util::mixCombine(v.id, v.value);
    return h;
}

}  // namespace events
}  // namespace snip
