/**
 * @file
 * Versioned model registry: the fleet backend's source of truth for
 * which SNPM packages exist per game and how they descend from each
 * other. A version id is the content digest of the whole package
 * (FNV-1a over the envelope bytes), so ids are stable across
 * processes and identical republishes are idempotent; each version
 * carries a parent pointer (the epoch it was re-learned from),
 * giving every game a CRC-checked lineage chain the delta-OTA layer
 * diffs along.
 *
 * Integrity contract: publish() refuses packages whose envelope or
 * payload CRC fails (a registry never stores a package a device
 * would reject), fetch() re-verifies the stored payload CRC before
 * handing bytes out, and lineage() re-walks parent pointers
 * verifying every hop exists — all via util::Status, never a crash.
 *
 * Thread safety: single-writer like obs::Registry; concurrent
 * readers are safe once publishing stops (all read paths are const
 * except the delta cache, which delta() guards for exact reuse).
 */

#ifndef SNIP_FLEET_REGISTRY_H
#define SNIP_FLEET_REGISTRY_H

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace snip {

namespace obs {
class Registry;
}  // namespace obs

namespace fleet {

/** Content digest of a package (0 is reserved for "no version"). */
using VersionId = uint64_t;

/** One published model epoch. */
struct ModelVersion {
    VersionId id = 0;
    /** Version this epoch was re-learned from (0 = lineage root). */
    VersionId parent = 0;
    /** Publish sequence number within the game (0-based). */
    uint32_t epoch = 0;
    /** Envelope payload CRC (the SNPM footer). */
    uint32_t crc = 0;
    /** Whole-package size on the wire. */
    uint64_t bytes = 0;
    /** The exact published bytes (shared with deploy views). */
    std::shared_ptr<const util::ByteBuffer> package;
};

class ModelRegistry
{
  public:
    /** @param obs Optional `fleet.*` metrics sink (nullptr = off). */
    explicit ModelRegistry(obs::Registry *obs = nullptr) : obs_(obs) {}

    /**
     * Validate and store a package as @p game's new head version.
     * @p parent pins the lineage explicitly; 0 chains onto the
     * current head (the continuous-learning epoch push). Returns the
     * content-digest version id. Re-publishing identical bytes is
     * idempotent (same id, no new version); a package that fails
     * integrity checks, or a parent that does not exist, is an error
     * and the registry is unchanged.
     */
    util::Result<VersionId>
    publish(const std::string &game,
            std::shared_ptr<util::ByteBuffer> pkg,
            VersionId parent = 0);

    /** Look up one version (nullptr when unknown). */
    const ModelVersion *find(const std::string &game,
                             VersionId id) const;

    /** Newest published version of a game (nullptr when none). */
    const ModelVersion *head(const std::string &game) const;

    /**
     * Version @p behind publishes behind the head along parent
     * pointers (behind == 0 is the head itself); nullptr when the
     * lineage is shorter than that.
     */
    const ModelVersion *behindHead(const std::string &game,
                                   uint32_t behind) const;

    /**
     * The ancestry of @p id, newest first, ending at the lineage
     * root. Errors on an unknown id or a broken parent chain.
     */
    util::Result<std::vector<VersionId>>
    lineage(const std::string &game, VersionId id) const;

    /**
     * Fetch stored package bytes, re-verifying the payload CRC
     * against the stored footer first (a registry whose storage
     * rotted must not serve the corrupt bytes).
     */
    util::Result<std::shared_ptr<const util::ByteBuffer>>
    fetch(const std::string &game, VersionId id) const;

    /**
     * The SNPD patch upgrading @p from to @p to (both must be stored
     * versions of @p game). Patches are memoized per (from, to) pair
     * — a million-device push computes each cohort's patch once.
     */
    util::Result<std::shared_ptr<const util::ByteBuffer>>
    delta(const std::string &game, VersionId from, VersionId to);

    /** Published versions of a game (0 when unknown). */
    size_t versionCount(const std::string &game) const;

    /** Games with at least one version, in name order. */
    std::vector<std::string> gameNames() const;

    /** Versions of a game in publish order (empty when unknown). */
    const std::vector<ModelVersion> &
    versions(const std::string &game) const;

    /**
     * Persist to a directory: one `<id-hex>.snpm` file per version
     * plus an `index.txt` lineage file. Creates the directory when
     * missing.
     */
    util::Status saveDir(const std::string &dir) const;

    /**
     * Load a registry persisted by saveDir(), re-validating every
     * package (digest must match its index entry, CRC must hold).
     */
    static util::Result<ModelRegistry>
    loadDir(const std::string &dir, obs::Registry *obs = nullptr);

  private:
    struct GameLine {
        /** Publish order. */
        std::vector<ModelVersion> versions;
        /** id -> index into versions. */
        std::unordered_map<VersionId, size_t> by_id;
    };

    const GameLine *line(const std::string &game) const;

    std::map<std::string, GameLine> games_;
    /** Memoized patches keyed by (from, to) content digests. */
    std::map<std::pair<VersionId, VersionId>,
             std::shared_ptr<const util::ByteBuffer>>
        deltas_;
    obs::Registry *obs_ = nullptr;
};

}  // namespace fleet
}  // namespace snip

#endif  // SNIP_FLEET_REGISTRY_H
