#include "fleet/registry.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/model_codec.h"
#include "fleet/delta.h"
#include "obs/metrics.h"
#include "trace/trace_log.h"
#include "util/crc32.h"

namespace snip {
namespace fleet {

namespace {

/** Content digest of the whole package envelope. */
VersionId
digestOf(const util::ByteBuffer &pkg)
{
    VersionId id = util::fnv1a(pkg.data().data(), pkg.size());
    // 0 means "no version" in the API; remap the (astronomically
    // unlikely) zero digest rather than ban the package.
    return id ? id : 1;
}

std::string
hex16(VersionId id)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

}  // namespace

util::Result<VersionId>
ModelRegistry::publish(const std::string &game,
                       std::shared_ptr<util::ByteBuffer> pkg,
                       VersionId parent)
{
    if (!pkg)
        return util::Status::Error("registry: null package");
    if (game.empty())
        return util::Status::Error("registry: empty game name");
    core::PackageInfo info;
    util::Status st = core::inspectPackage(*pkg, &info);
    if (!st.ok())
        return st;
    if (!info.crc_ok)
        return util::Status::Errorf(
            "registry: refusing corrupt package (payload CRC "
            "0x%08x does not hold)",
            info.crc);

    GameLine &gl = games_[game];
    VersionId id = digestOf(*pkg);
    if (auto it = gl.by_id.find(id); it != gl.by_id.end()) {
        // Identical bytes, identical id: idempotent republish.
        if (obs_)
            obs_->counter("fleet.registry.duplicate_publishes")
                .add(1);
        return id;
    }
    if (parent == 0) {
        if (!gl.versions.empty())
            parent = gl.versions.back().id;
    } else if (!gl.by_id.count(parent)) {
        // Leave the just-created empty line in place; an empty
        // GameLine is indistinguishable from an absent one.
        return util::Status::Errorf(
            "registry: parent version %s is not published",
            hex16(parent).c_str());
    }

    ModelVersion v;
    v.id = id;
    v.parent = parent;
    v.epoch = static_cast<uint32_t>(gl.versions.size());
    v.crc = info.crc;
    v.bytes = pkg->size();
    v.package = std::move(pkg);
    gl.by_id.emplace(id, gl.versions.size());
    gl.versions.push_back(std::move(v));
    if (obs_) {
        obs_->counter("fleet.registry.publishes").add(1);
        obs_->counter("fleet.registry.published_bytes")
            .add(gl.versions.back().bytes);
    }
    return id;
}

const ModelRegistry::GameLine *
ModelRegistry::line(const std::string &game) const
{
    auto it = games_.find(game);
    return it == games_.end() ? nullptr : &it->second;
}

const ModelVersion *
ModelRegistry::find(const std::string &game, VersionId id) const
{
    const GameLine *gl = line(game);
    if (!gl)
        return nullptr;
    auto it = gl->by_id.find(id);
    return it == gl->by_id.end() ? nullptr
                                 : &gl->versions[it->second];
}

const ModelVersion *
ModelRegistry::head(const std::string &game) const
{
    const GameLine *gl = line(game);
    return gl && !gl->versions.empty() ? &gl->versions.back()
                                       : nullptr;
}

const ModelVersion *
ModelRegistry::behindHead(const std::string &game,
                          uint32_t behind) const
{
    const ModelVersion *v = head(game);
    for (uint32_t i = 0; v && i < behind; ++i)
        v = v->parent ? find(game, v->parent) : nullptr;
    return v;
}

util::Result<std::vector<VersionId>>
ModelRegistry::lineage(const std::string &game, VersionId id) const
{
    const GameLine *gl = line(game);
    if (!gl)
        return util::Status::Errorf("registry: unknown game '%s'",
                                    game.c_str());
    std::vector<VersionId> chain;
    VersionId cur = id;
    while (cur != 0) {
        auto it = gl->by_id.find(cur);
        if (it == gl->by_id.end())
            return util::Status::Errorf(
                "registry: broken lineage at version %s",
                hex16(cur).c_str());
        if (chain.size() > gl->versions.size())
            return util::Status::Error(
                "registry: lineage cycle detected");
        chain.push_back(cur);
        cur = gl->versions[it->second].parent;
    }
    if (chain.empty())
        return util::Status::Error("registry: no such version");
    return chain;
}

util::Result<std::shared_ptr<const util::ByteBuffer>>
ModelRegistry::fetch(const std::string &game, VersionId id) const
{
    const ModelVersion *v = find(game, id);
    if (!v)
        return util::Status::Errorf(
            "registry: version %s of '%s' is not published",
            hex16(id).c_str(), game.c_str());
    // Re-verify before serving: the envelope payload CRC must still
    // hold over the stored bytes.
    util::ByteBuffer probe;
    probe.putBytes(v->package->data().data(), v->package->size());
    core::PackageInfo info;
    util::Status st = core::inspectPackage(probe, &info);
    if (!st.ok() || !info.crc_ok || info.crc != v->crc) {
        if (obs_)
            obs_->counter("fleet.registry.fetch_failures").add(1);
        return util::Status::Errorf(
            "registry: stored version %s fails integrity re-check",
            hex16(id).c_str());
    }
    if (obs_)
        obs_->counter("fleet.registry.fetches").add(1);
    return v->package;
}

util::Result<std::shared_ptr<const util::ByteBuffer>>
ModelRegistry::delta(const std::string &game, VersionId from,
                     VersionId to)
{
    auto key = std::make_pair(from, to);
    if (auto it = deltas_.find(key); it != deltas_.end()) {
        if (obs_)
            obs_->counter("fleet.registry.delta_cache_hits").add(1);
        return it->second;
    }
    const ModelVersion *src = find(game, from);
    const ModelVersion *tgt = find(game, to);
    if (!src || !tgt)
        return util::Status::Errorf(
            "registry: delta endpoints %s -> %s not both published",
            hex16(from).c_str(), hex16(to).c_str());
    auto patch = std::make_shared<util::ByteBuffer>();
    diffBytes(std::span<const uint8_t>(src->package->data()),
              std::span<const uint8_t>(tgt->package->data()),
              *patch);
    if (obs_) {
        obs_->counter("fleet.registry.delta_builds").add(1);
        obs_->counter("fleet.registry.delta_bytes")
            .add(patch->size());
    }
    deltas_.emplace(key, patch);
    return std::shared_ptr<const util::ByteBuffer>(patch);
}

size_t
ModelRegistry::versionCount(const std::string &game) const
{
    const GameLine *gl = line(game);
    return gl ? gl->versions.size() : 0;
}

std::vector<std::string>
ModelRegistry::gameNames() const
{
    std::vector<std::string> names;
    for (const auto &[name, gl] : games_)
        if (!gl.versions.empty())
            names.push_back(name);
    return names;
}

const std::vector<ModelVersion> &
ModelRegistry::versions(const std::string &game) const
{
    static const std::vector<ModelVersion> kEmpty;
    const GameLine *gl = line(game);
    return gl ? gl->versions : kEmpty;
}

util::Status
ModelRegistry::saveDir(const std::string &dir) const
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        return util::Status::Errorf("registry: mkdir %s: %s",
                                    dir.c_str(),
                                    std::strerror(errno));
    std::ostringstream index;
    for (const auto &[game, gl] : games_) {
        for (const ModelVersion &v : gl.versions) {
            util::Status st = trace::saveBuffer(
                *v.package, dir + "/" + hex16(v.id) + ".snpm");
            if (!st.ok())
                return st;
            index << game << '\t' << hex16(v.id) << '\t'
                  << hex16(v.parent) << '\t' << v.epoch << '\t'
                  << v.bytes << '\n';
        }
    }
    std::ofstream out(dir + "/index.txt",
                      std::ios::binary | std::ios::trunc);
    out << index.str();
    out.close();
    if (!out)
        return util::Status::Errorf("registry: cannot write %s",
                                    (dir + "/index.txt").c_str());
    return util::Status::Ok();
}

util::Result<ModelRegistry>
ModelRegistry::loadDir(const std::string &dir, obs::Registry *obs)
{
    std::ifstream in(dir + "/index.txt", std::ios::binary);
    if (!in)
        return util::Status::Errorf(
            "registry: cannot read %s (not a registry directory?)",
            (dir + "/index.txt").c_str());
    ModelRegistry reg(obs);
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string game, id_hex, parent_hex;
        uint32_t epoch = 0;
        uint64_t bytes = 0;
        if (!(ls >> game >> id_hex >> parent_hex >> epoch >> bytes))
            return util::Status::Errorf(
                "registry: malformed index line %zu", lineno);
        VersionId id = std::strtoull(id_hex.c_str(), nullptr, 16);
        VersionId parent =
            std::strtoull(parent_hex.c_str(), nullptr, 16);
        auto pkg = std::make_shared<util::ByteBuffer>();
        util::Status st = trace::loadBuffer(
            dir + "/" + id_hex + ".snpm", pkg.get());
        if (!st.ok())
            return st;
        if (digestOf(*pkg) != id || pkg->size() != bytes)
            return util::Status::Errorf(
                "registry: stored package %s does not match its "
                "index entry",
                id_hex.c_str());
        util::Result<VersionId> pub =
            reg.publish(game, std::move(pkg), parent);
        if (!pub.ok())
            return pub.status();
        if (pub.value() != id)
            return util::Status::Errorf(
                "registry: digest drift loading %s",
                id_hex.c_str());
    }
    return reg;
}

}  // namespace fleet
}  // namespace snip
