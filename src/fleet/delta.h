/**
 * @file
 * Delta OTA patches ("SNPD"): a byte-level patch between two model
 * packages (or any two byte strings — the frozen "SNPF" arena is the
 * canonical wire format, so diffing consecutive epochs' packages is
 * well-defined). A patch is the versioned little-endian envelope
 *
 *   u32 magic "SNPD" | u32 version | u32 payload_len |
 *   payload bytes    | u32 crc32(payload)
 *
 * whose payload pins both endpoints —
 *
 *   u64 src_len | u32 crc32(src) | u64 tgt_len | u32 crc32(tgt) |
 *   u32 nops | ops
 *
 * — followed by a copy/insert op stream: `copy{src_off, len}` reuses
 * a run of the source the device already holds, `insert{len, bytes}`
 * carries bytes only the target has. For incremental epochs (the
 * table grows, the rest of the arena is shared) the patch is a small
 * fraction of the full package, which is the fig06_ota_payload
 * baseline it beats.
 *
 * Application is corruption-safe in the model_codec.h sense: a
 * truncated or bit-flipped patch, a patch built against a different
 * source, an op that walks out of bounds, or a reconstruction whose
 * length/CRC misses the pinned target is *rejected* with an error
 * Status — never a crash — and the device falls back to fetching the
 * full package (fetchWithDelta below; snipping stays optional all
 * the way down).
 */

#ifndef SNIP_FLEET_DELTA_H
#define SNIP_FLEET_DELTA_H

#include <span>

#include "util/bytes.h"
#include "util/status.h"

namespace snip {
namespace fleet {

/** Patch magic ("SNPD", same style as the SNPM/SNPF magics). */
constexpr uint32_t kPatchMagic = 0x534e5044;
/** Current patch format version. */
constexpr uint32_t kPatchVersion = 1;

/** Shallow summary of a patch (header + op accounting). */
struct PatchInfo {
    uint64_t src_bytes = 0;
    uint64_t tgt_bytes = 0;
    uint32_t src_crc = 0;
    uint32_t tgt_crc = 0;
    /** Op counts and the bytes they cover. */
    uint32_t copy_ops = 0;
    uint32_t insert_ops = 0;
    uint64_t copied_bytes = 0;
    uint64_t inserted_bytes = 0;
};

/**
 * Compute a patch transforming @p src into @p tgt, appended to
 * @p out. Deterministic (greedy block matching over a rolling hash):
 * the same endpoints always produce the same patch bytes, so patch
 * sizes are reproducible fleet metrics. applyPatch(src, out) == tgt
 * always holds — in the worst case (nothing shared) the patch
 * degenerates to one insert op carrying the whole target.
 */
void diffBytes(std::span<const uint8_t> src,
               std::span<const uint8_t> tgt, util::ByteBuffer &out);

/**
 * Apply a patch to @p src and return the reconstructed target.
 * Validates the envelope (magic, version, length, payload CRC), that
 * @p src matches the pinned source length + CRC, that every op stays
 * in bounds, and that the reconstruction matches the pinned target
 * length + CRC. Any mismatch is an error Status, never UB.
 */
util::Result<util::ByteBuffer> applyPatch(std::span<const uint8_t> src,
                                          util::ByteBuffer &patch);

/**
 * Decode header + op accounting without reconstructing the target.
 * Errors on a malformed envelope or op stream.
 */
util::Status inspectPatch(util::ByteBuffer &patch, PatchInfo *info);

/**
 * The device-side OTA receive path: try the delta, fall back to the
 * full package on any rejection. Returns the deployed bytes (always
 * byte-identical to @p full when full is the patch's target) and
 * reports via @p used_delta whether the cheap path worked.
 */
util::ByteBuffer fetchWithDelta(std::span<const uint8_t> base,
                                util::ByteBuffer &patch,
                                const util::ByteBuffer &full,
                                bool *used_delta = nullptr);

}  // namespace fleet
}  // namespace snip

#endif  // SNIP_FLEET_DELTA_H
