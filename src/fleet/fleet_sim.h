/**
 * @file
 * Fleet-scale epoch push simulation: the backend publishes a new
 * model epoch and a simulated device fleet — partitioned into
 * cohorts pinned at different staleness depths along the registry
 * lineage — fetches the update. Each cohort's devices hold the
 * version `versions_behind` publishes behind the new head, so the
 * OTA layer serves them the memoized SNPD patch from that base (or
 * the full package when the device has no usable base), and each
 * cohort's stale-version lookup hit rate is measured by replaying an
 * evaluation session against the model those devices were running
 * *before* the push — the skew across cohorts is the operational
 * signal for how much a lagging ring loses.
 *
 * Devices inside a cohort are identical by construction (same base
 * version, same patch), so a million-device epoch costs one patch
 * build + one verification + one eval session per cohort; the
 * per-device byte accounting then scales by cohort population.
 */

#ifndef SNIP_FLEET_FLEET_SIM_H
#define SNIP_FLEET_FLEET_SIM_H

#include <string>
#include <vector>

#include "core/continuous_learning.h"
#include "fleet/registry.h"

namespace snip {
namespace fleet {

/** One staleness ring of the fleet. */
struct CohortSpec {
    std::string name;
    /** Fraction of the fleet in this cohort (normalized over all). */
    double share = 0.0;
    /**
     * Publishes behind the new head the cohort's deployed version
     * sits (1 = devices hold the head's parent). A depth exceeding
     * the lineage means the devices hold nothing usable and must
     * full-fetch.
     */
    uint32_t versions_behind = 1;
};

/** Simulation knobs. */
struct FleetSimConfig {
    std::string game = "candy_crush";
    /** Fleet size the per-cohort byte accounting scales to. */
    uint64_t devices = 1000000;
    /** Staleness rings; empty uses defaultCohorts(). */
    std::vector<CohortSpec> cohorts;
    /** Upload shards for the aggregation half of the epoch. */
    size_t shards = 8;
    unsigned threads = 0;
    uint64_t seed = 0xf1ee7ULL;
    /** Stale-version evaluation session length (s). */
    double eval_seconds = 20.0;
    /** Optional `fleet.*` metrics sink (nullptr = off). */
    obs::Registry *obs = nullptr;
};

/** The canonical ring layout (stable/slow/lagging/fresh installs). */
std::vector<CohortSpec> defaultCohorts();

/** What one cohort saw during an epoch push. */
struct CohortReport {
    std::string name;
    uint64_t devices = 0;
    uint32_t versions_behind = 0;
    /** Version the cohort ran before the push (0 = none). */
    VersionId base_version = 0;
    /** Per-device patch size (0 when the cohort full-fetched). */
    uint64_t patch_bytes = 0;
    /** Cohort total if every device full-fetched the head. */
    uint64_t full_bytes = 0;
    /** Cohort total actually shipped under delta OTA. */
    uint64_t delta_bytes = 0;
    /** The patch applied cleanly against the base (verified). */
    bool used_delta = false;
    /** Lookup hit rate of the cohort's pre-push (stale) model. */
    double hit_rate = 0.0;
};

/** Fleet-wide outcome of pushing the head to every cohort. */
struct EpochPushReport {
    VersionId head = 0;
    uint64_t head_bytes = 0;
    uint64_t devices = 0;
    /** Fleet totals: full-fetch baseline vs what delta OTA shipped. */
    uint64_t full_bytes = 0;
    uint64_t delta_bytes = 0;
    /** Cohorts that fell back to the full package. */
    size_t fallbacks = 0;
    /** max - min stale-model hit rate across cohorts. */
    double staleness_skew = 0.0;
    std::vector<CohortReport> cohorts;
};

/**
 * Push the registry head of cfg.game to the whole fleet. The
 * registry must hold at least one version; every patch is verified
 * end-to-end (applyPatch reconstruction == head bytes) with the
 * full-package fallback engaging on any rejection, exactly as a
 * device would. Errors when the game has no published head.
 */
util::Result<EpochPushReport> pushEpoch(ModelRegistry &reg,
                                        const FleetSimConfig &cfg);

/**
 * Produce @p count per-device upload payloads for the aggregation
 * half of an epoch: each simulated device plays a short seeded
 * session, replays it locally, projects the profile onto
 * @p agreed's selected sets, and packs its table as an SNPM payload
 * — the exact payload shape core::buildFederated's device loop
 * uploads. Devices are independent, so they record in parallel.
 */
std::vector<util::ByteBuffer>
recordUploadPayloads(const std::string &game_name,
                     const core::SnipModel &agreed, size_t count,
                     uint64_t seed, double session_s,
                     unsigned threads = 0);

/**
 * Wire a ContinuousLearner's deploy seam into the registry: every
 * epoch package the learner ships is also published (upstream of any
 * ota_tamper transport loss), growing cfg.game's lineage one version
 * per epoch. A package the registry refuses is warned about and the
 * learner keeps running — publishing is observability, not a gate.
 */
void bindLearner(core::LearningConfig &cfg, ModelRegistry &reg,
                 const std::string &game);

}  // namespace fleet
}  // namespace snip

#endif  // SNIP_FLEET_FLEET_SIM_H
